/** @file Tests for the synthetic workload generator and app catalog. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/app_catalog.hh"
#include "workload/synthetic.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::workload;

WorkloadParams
simpleParams()
{
    WorkloadParams p;
    p.name = "test";
    p.warpsPerCore = 4;
    p.memRatio = 0.5;
    p.bypassFrac = 0.0;
    p.sharedLines = 100;
    p.sharedFrac = 0.5;
    p.privateLines = 200;
    return p;
}

TEST(Workload, Deterministic)
{
    SyntheticSource a(simpleParams(), 4, 128, 7);
    SyntheticSource b(simpleParams(), 4, 128, 7);
    for (Cycle t = 0; t < 500; ++t) {
        WarpInstr ia, ib;
        a.nextInstr(t % 4, t % 3, t, ia);
        b.nextInstr(t % 4, t % 3, t, ib);
        ASSERT_EQ(ia.isMem, ib.isMem);
        ASSERT_EQ(ia.numAccesses, ib.numAccesses);
        for (int k = 0; k < ia.numAccesses; ++k)
            ASSERT_EQ(ia.accesses[k].addr, ib.accesses[k].addr);
    }
}

TEST(Workload, SeedChangesStream)
{
    SyntheticSource a(simpleParams(), 2, 128, 1);
    SyntheticSource b(simpleParams(), 2, 128, 2);
    int diff = 0;
    for (Cycle t = 0; t < 200; ++t) {
        WarpInstr ia, ib;
        a.nextInstr(0, 0, t, ia);
        b.nextInstr(0, 0, t, ib);
        if (ia.isMem != ib.isMem)
            ++diff;
    }
    EXPECT_GT(diff, 0);
}

TEST(Workload, MemRatioApproximate)
{
    WorkloadParams p = simpleParams();
    p.memRatio = 0.3;
    SyntheticSource src(p, 1, 128, 3);
    int mem = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        WarpInstr instr;
        src.nextInstr(0, 0, i, instr);
        mem += instr.isMem;
    }
    EXPECT_NEAR(double(mem) / n, 0.3, 0.02);
}

TEST(Workload, SharedAddressesInRange)
{
    WorkloadParams p = simpleParams();
    p.sharedFrac = 1.0;
    p.sharedLines = 64;
    SyntheticSource src(p, 4, 128, 5);
    for (int i = 0; i < 5000; ++i) {
        WarpInstr instr;
        src.nextInstr(i % 4, 0, i, instr);
        for (int k = 0; k < instr.numAccesses; ++k)
            EXPECT_LT(instr.accesses[k].addr, 64u * 128u);
    }
}

TEST(Workload, PrivateSegmentsDisjointAcrossCores)
{
    WorkloadParams p = simpleParams();
    p.sharedFrac = 0.0;
    SyntheticSource src(p, 8, 128, 5);
    std::map<CoreId, std::set<Addr>> per_core;
    for (int i = 0; i < 4000; ++i) {
        const CoreId c = i % 8;
        WarpInstr instr;
        src.nextInstr(c, i % 4, i, instr);
        for (int k = 0; k < instr.numAccesses; ++k)
            per_core[c].insert(instr.accesses[k].addr / 128);
    }
    for (auto &[c1, s1] : per_core) {
        for (auto &[c2, s2] : per_core) {
            if (c1 >= c2)
                continue;
            for (Addr a : s1)
                EXPECT_EQ(s2.count(a), 0u);
        }
    }
}

TEST(Workload, HotColdConcentrates)
{
    WorkloadParams p = simpleParams();
    p.sharedFrac = 1.0;
    p.sharedPattern = Pattern::HotCold;
    p.sharedLines = 1000;
    p.hotLines = 4;
    p.hotProb = 0.9;
    SyntheticSource src(p, 1, 128, 5);
    int hot = 0, total = 0;
    for (int i = 0; i < 10000; ++i) {
        WarpInstr instr;
        src.nextInstr(0, 0, i, instr);
        for (int k = 0; k < instr.numAccesses; ++k) {
            ++total;
            hot += instr.accesses[k].addr / 128 < 4;
        }
    }
    EXPECT_NEAR(double(hot) / total, 0.9, 0.03);
}

TEST(Workload, WindowSlides)
{
    WorkloadParams p = simpleParams();
    p.sharedFrac = 1.0;
    p.sharedPattern = Pattern::Window;
    p.sharedLines = 1000;
    p.windowLines = 10;
    p.windowPeriodCycles = 100;
    SyntheticSource src(p, 1, 128, 5);

    auto lines_at = [&](Cycle now) {
        std::set<LineAddr> lines;
        for (int i = 0; i < 300; ++i) {
            WarpInstr instr;
            src.nextInstr(0, 0, now, instr);
            for (int k = 0; k < instr.numAccesses; ++k)
                lines.insert(instr.accesses[k].addr / 128);
        }
        return lines;
    };
    auto w0 = lines_at(0);
    auto w5 = lines_at(550);
    EXPECT_LE(w0.size(), 10u);
    EXPECT_LE(w5.size(), 10u);
    for (LineAddr l : w5)
        EXPECT_EQ(w0.count(l), 0u); // the window moved
}

TEST(Workload, CtaLocalityConfinesCores)
{
    WorkloadParams p = simpleParams();
    p.sharedFrac = 1.0;
    p.sharedLines = 1000;
    p.ctaLocality = 0.8;
    SyntheticSource src(p, 10, 128, 5);
    // Core 0 and core 9 should draw from mostly disjoint subranges.
    std::set<LineAddr> c0, c9;
    for (int i = 0; i < 3000; ++i) {
        WarpInstr instr;
        src.nextInstr(0, 0, i, instr);
        if (instr.isMem)
            c0.insert(instr.accesses[0].addr / 128);
        src.nextInstr(9, 0, i, instr);
        if (instr.isMem)
            c9.insert(instr.accesses[0].addr / 128);
    }
    int overlap = 0;
    for (LineAddr l : c0)
        overlap += c9.count(l);
    EXPECT_LT(double(overlap) / double(c0.size()), 0.1);
}

TEST(Workload, HotCoreFactorScalesFootprint)
{
    WorkloadParams p = simpleParams();
    p.hotCoreFactor = 4.0;
    p.privateLines = 100;
    SyntheticSource src(p, 8, 128, 5);
    EXPECT_EQ(src.privateLinesOf(0), 400u); // core 0 is hot (id % 4 == 0)
    EXPECT_EQ(src.privateLinesOf(1), 100u);
    EXPECT_EQ(src.privateLinesOf(4), 400u);
}

TEST(Workload, WriteFraction)
{
    WorkloadParams p = simpleParams();
    p.writeFrac = 0.2;
    p.memRatio = 1.0;
    SyntheticSource src(p, 1, 128, 5);
    int writes = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        WarpInstr instr;
        src.nextInstr(0, 0, i, instr);
        for (int k = 0; k < instr.numAccesses; ++k) {
            ++total;
            writes += instr.accesses[k].op == mem::MemOp::Write;
        }
    }
    EXPECT_NEAR(double(writes) / total, 0.2, 0.02);
}

TEST(Workload, BypassGeneratesFullLineNonL1)
{
    WorkloadParams p = simpleParams();
    p.bypassFrac = 1.0;
    p.memRatio = 0.0;
    SyntheticSource src(p, 1, 128, 5);
    WarpInstr instr;
    src.nextInstr(0, 0, 0, instr);
    ASSERT_TRUE(instr.isMem);
    EXPECT_EQ(instr.accesses[0].op, mem::MemOp::Bypass);
    EXPECT_EQ(instr.accesses[0].bytes, 128u);
}

// ---------------- catalog ----------------

TEST(AppCatalog, Has28Apps)
{
    EXPECT_EQ(appCatalog().size(), 28u);
}

TEST(AppCatalog, ClassificationCounts)
{
    EXPECT_EQ(replicationSensitiveApps().size(), 12u);
    EXPECT_EQ(replicationInsensitiveApps().size(), 16u);
    EXPECT_EQ(poorPerformingApps().size(), 5u);
}

TEST(AppCatalog, UniqueNames)
{
    std::set<std::string> names;
    for (const auto &app : appCatalog())
        names.insert(app.params.name);
    EXPECT_EQ(names.size(), 28u);
}

TEST(AppCatalog, LookupByName)
{
    const AppInfo &app = appByName("T-AlexNet");
    EXPECT_TRUE(app.replicationSensitive);
    EXPECT_EQ(app.params.suite, "T");
    EXPECT_EXIT(appByName("no-such-app"), ::testing::ExitedWithCode(1),
                "unknown application");
}

TEST(AppCatalog, PoorPerformersAreInsensitive)
{
    for (const auto &app : poorPerformingApps())
        EXPECT_FALSE(app.replicationSensitive) << app.params.name;
}

TEST(AppCatalog, PaperNamedAppsPresent)
{
    for (const char *name :
         {"T-AlexNet", "T-ResNet", "T-SqueezeNet", "C-BFS", "C-BLK",
          "C-RAY", "C-NN", "R-LUD", "R-SC", "S-Reduction", "P-2DCONV",
          "P-3DCONV", "P-2MM", "P-3MM", "P-GEMM", "P-SYRK", "F-2MM"}) {
        EXPECT_NO_FATAL_FAILURE(appByName(name)) << name;
    }
}

TEST(AppCatalog, SuitesCovered)
{
    std::set<std::string> suites;
    for (const auto &app : appCatalog())
        suites.insert(app.params.suite);
    for (const char *s : {"C", "R", "S", "P", "T"})
        EXPECT_EQ(suites.count(s), 1u) << s;
}

} // anonymous namespace
