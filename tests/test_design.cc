/** @file Tests for design presets and the crossbar inventory (Table I). */

#include <gtest/gtest.h>

#include "core/design.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::core;

TEST(Design, PresetNames)
{
    EXPECT_EQ(baselineDesign().name, "Baseline");
    EXPECT_EQ(privateDcl1(40).name, "Pr40");
    EXPECT_EQ(sharedDcl1(40).name, "Sh40");
    EXPECT_EQ(clusteredDcl1(40, 10).name, "Sh40+C10");
    EXPECT_EQ(clusteredDcl1(40, 10, true).name, "Sh40+C10+Boost");
    EXPECT_EQ(clusteredDcl1(40, 1).name, "Sh40");
    EXPECT_EQ(clusteredDcl1(40, 40).name, "Pr40");
    EXPECT_EQ(cdxbarDesign(false, false).name, "CDXBar");
    EXPECT_EQ(cdxbarDesign(true, false).name, "CDXBar+2xNoC1");
    EXPECT_EQ(cdxbarDesign(true, true).name, "CDXBar+2xNoC");
}

TEST(Design, BoostDoublesNoc1Clock)
{
    const DesignConfig d = clusteredDcl1(40, 10, true);
    EXPECT_DOUBLE_EQ(d.noc1ClockRatio, 1.0);
    EXPECT_DOUBLE_EQ(d.noc2ClockRatio, 0.5); // NoC#2 kept at baseline
}

TEST(Design, Geometry)
{
    SystemConfig sys;
    const DesignConfig d = clusteredDcl1(40, 10);
    EXPECT_EQ(d.coresPerNode(sys), 2u);
    EXPECT_EQ(d.nodesPerCluster(), 4u);
    EXPECT_EQ(d.coresPerCluster(sys), 8u);
}

TEST(Design, DcL1CapacityAggregation)
{
    SystemConfig sys;
    // Pr40 doubles per-node capacity, preserving the total.
    EXPECT_EQ(privateDcl1(40).l1SizeFor(sys), 32u * 1024u);
    EXPECT_EQ(privateDcl1(80).l1SizeFor(sys), 16u * 1024u);
    EXPECT_EQ(privateDcl1(10).l1SizeFor(sys), 128u * 1024u);
    EXPECT_EQ(baselineDesign().l1SizeFor(sys), 16u * 1024u);
    EXPECT_EQ(withCapacityScale(baselineDesign(), 16.0).l1SizeFor(sys),
              256u * 1024u);
}

TEST(Design, DcL1LatencyGrowsWithAggregation)
{
    SystemConfig sys; // base L1 latency 28
    // 2x capacity -> ~+7 %: the paper's 30 cycles.
    EXPECT_EQ(privateDcl1(40).l1LatencyFor(sys), 30u);
    EXPECT_EQ(privateDcl1(80).l1LatencyFor(sys), 28u);
    EXPECT_GT(privateDcl1(10).l1LatencyFor(sys), 30u);
    EXPECT_EQ(baselineDesign().l1LatencyFor(sys), 28u);
}

TEST(Design, LatencyOverride)
{
    SystemConfig sys;
    EXPECT_EQ(withL1Latency(clusteredDcl1(40, 10), 0).l1LatencyFor(sys),
              0u);
    EXPECT_EQ(withL1Latency(baselineDesign(), 64).l1LatencyFor(sys), 64u);
}

TEST(Design, ValidateRejectsBadGeometry)
{
    SystemConfig sys;
    DesignConfig d = clusteredDcl1(33, 3); // 80 % 33 != 0
    EXPECT_EXIT(d.validate(sys), ::testing::ExitedWithCode(1),
                "not divisible");
    DesignConfig d2 = clusteredDcl1(40, 3); // 40 % 3 != 0
    EXPECT_EXIT(d2.validate(sys), ::testing::ExitedWithCode(1),
                "not divisible");
    DesignConfig d3 = clusteredDcl1(0, 1); // zero nodes
    EXPECT_EXIT(d3.validate(sys), ::testing::ExitedWithCode(1),
                "nonzero");
    DesignConfig d4 = baselineDesign();
    d4.noc2ClockRatio = 0.0; // a clockless crossbar moves nothing
    EXPECT_EXIT(d4.validate(sys), ::testing::ExitedWithCode(1),
                "clock ratios must be positive");
}

TEST(Design, PlatformValidateAcceptsTheTable2Machine)
{
    SystemConfig sys;
    sys.validate(); // must not die
    SystemConfig scaled = SystemConfig::scaled(120, 48, 24);
    scaled.validate();
}

TEST(Design, PlatformValidateRejectsImpossibleConfigs)
{
    // Front-door rejection: each impossible platform dies with a
    // config error (exit 1) at validation, not a mid-run panic.
    SystemConfig zero_cores;
    zero_cores.numCores = 0;
    EXPECT_EXIT(zero_cores.validate(), ::testing::ExitedWithCode(1),
                "must be nonzero");

    SystemConfig zero_ways;
    zero_ways.l1Assoc = 0;
    EXPECT_EXIT(zero_ways.validate(), ::testing::ExitedWithCode(1),
                "associativity is zero");

    SystemConfig zero_sets;
    zero_sets.l1SizeBytes = 256; // 256 / (128 * 4) == 0 sets
    EXPECT_EXIT(zero_sets.validate(), ::testing::ExitedWithCode(1),
                "zero sets");

    SystemConfig odd_sets;
    odd_sets.l1SizeBytes = 24 * 1024; // 48 sets: not a power of two
    EXPECT_EXIT(odd_sets.validate(), ::testing::ExitedWithCode(1),
                "not a power of two");

    SystemConfig bad_flits;
    bad_flits.flitBytes = 48; // 128 % 48 != 0
    EXPECT_EXIT(bad_flits.validate(), ::testing::ExitedWithCode(1),
                "do not divide");

    SystemConfig zero_mshrs;
    zero_mshrs.l2Mshrs = 0;
    EXPECT_EXIT(zero_mshrs.validate(), ::testing::ExitedWithCode(1),
                "MSHR geometry");

    SystemConfig zero_queue;
    zero_queue.nodeQueueCap = 0;
    EXPECT_EXIT(zero_queue.validate(), ::testing::ExitedWithCode(1),
                "queue capacity");
}

TEST(Design, DesignByName)
{
    EXPECT_EQ(designByName("Baseline").topology,
              Topology::PrivateBaseline);
    EXPECT_EQ(designByName("Pr40").clusters, 40u);
    EXPECT_EQ(designByName("Sh40").clusters, 1u);
    const DesignConfig c10 = designByName("Sh40+C10");
    EXPECT_EQ(c10.numNodes, 40u);
    EXPECT_EQ(c10.clusters, 10u);
    EXPECT_DOUBLE_EQ(c10.noc1ClockRatio, 0.5);
    const DesignConfig boost = designByName("Sh40+C10+Boost");
    EXPECT_DOUBLE_EQ(boost.noc1ClockRatio, 1.0);
    EXPECT_EQ(designByName("CDXBar+2xNoC").cdxGlobalClockRatio, 1.0);
    EXPECT_EXIT(designByName("Sh40+Boost"), ::testing::ExitedWithCode(1),
                "cluster count");
    EXPECT_EXIT(designByName("nonsense"), ::testing::ExitedWithCode(1),
                "unknown design");
    EXPECT_EXIT(designByName("PrXY"), ::testing::ExitedWithCode(1),
                "bad design name");
}

TEST(Design, NameRoundTrip)
{
    // designByName(preset.name) reproduces the preset.
    for (const auto &d :
         {baselineDesign(), privateDcl1(40), sharedDcl1(40),
          clusteredDcl1(40, 10), clusteredDcl1(40, 10, true),
          cdxbarDesign(true, true)}) {
        const DesignConfig r = designByName(d.name);
        EXPECT_EQ(r.topology, d.topology) << d.name;
        EXPECT_EQ(r.numNodes, d.numNodes) << d.name;
        EXPECT_EQ(r.clusters, d.clusters) << d.name;
        EXPECT_DOUBLE_EQ(r.noc1ClockRatio, d.noc1ClockRatio) << d.name;
    }
}

TEST(Design, FullLineRepliesModifier)
{
    const DesignConfig d =
        withFullLineReplies(clusteredDcl1(40, 10, true));
    EXPECT_TRUE(d.fullLineReplies);
    EXPECT_EQ(d.name, "Sh40+C10+Boost+FullLine");
}

// ---------------- Table I: crossbar inventory ----------------

/** Find the (single) NoC#2-level entry set of an inventory. */
std::vector<XbarGeometry>
levelEntries(const std::vector<XbarGeometry> &inv, std::uint32_t level)
{
    std::vector<XbarGeometry> out;
    for (const auto &g : inv)
        if (g.level == level)
            out.push_back(g);
    return out;
}

TEST(Inventory, BaselineIs80x32)
{
    SystemConfig sys;
    const auto inv = crossbarInventory(baselineDesign(), sys);
    ASSERT_EQ(inv.size(), 2u); // request + reply
    EXPECT_EQ(inv[0].numInputs, 80u);
    EXPECT_EQ(inv[0].numOutputs, 32u);
    EXPECT_EQ(inv[1].numInputs, 32u);
    EXPECT_EQ(inv[1].numOutputs, 80u);
}

TEST(Inventory, Pr80MatchesTable1)
{
    // Table I: Pr80 = direct links in NoC#1 + 80x32 in NoC#2.
    SystemConfig sys;
    const auto inv = crossbarInventory(privateDcl1(80), sys);
    const auto noc1 = levelEntries(inv, 1);
    ASSERT_EQ(noc1.size(), 2u);
    EXPECT_EQ(noc1[0].numInputs, 1u);
    EXPECT_EQ(noc1[0].numOutputs, 1u);
    EXPECT_EQ(noc1[0].count, 80u);
    const auto noc2 = levelEntries(inv, 2);
    EXPECT_EQ(noc2[0].numInputs, 80u);
    EXPECT_EQ(noc2[0].numOutputs, 32u);
}

TEST(Inventory, Pr40MatchesTable1)
{
    // Table I: Pr40 = 40 2x1 crossbars + 40x32.
    SystemConfig sys;
    const auto inv = crossbarInventory(privateDcl1(40), sys);
    const auto noc1 = levelEntries(inv, 1);
    EXPECT_EQ(noc1[0].numInputs, 2u);
    EXPECT_EQ(noc1[0].numOutputs, 1u);
    EXPECT_EQ(noc1[0].count, 40u);
    const auto noc2 = levelEntries(inv, 2);
    EXPECT_EQ(noc2[0].numInputs, 40u);
    EXPECT_EQ(noc2[0].numOutputs, 32u);
}

TEST(Inventory, Sh40UsesFullCrossbars)
{
    // Sec. V: Sh40 = 80x40 in NoC#1 plus 40x32 in NoC#2.
    SystemConfig sys;
    const auto inv = crossbarInventory(sharedDcl1(40), sys);
    const auto noc1 = levelEntries(inv, 1);
    EXPECT_EQ(noc1[0].numInputs, 80u);
    EXPECT_EQ(noc1[0].numOutputs, 40u);
    EXPECT_EQ(noc1[0].count, 1u);
    const auto noc2 = levelEntries(inv, 2);
    EXPECT_EQ(noc2[0].numInputs, 40u);
    EXPECT_EQ(noc2[0].numOutputs, 32u);
}

TEST(Inventory, Sh40C10MatchesPaperFig10)
{
    // Fig. 10: ten 8x4 crossbars in NoC#1; four 10x8 in NoC#2.
    SystemConfig sys;
    const auto inv = crossbarInventory(clusteredDcl1(40, 10), sys);
    const auto noc1 = levelEntries(inv, 1);
    EXPECT_EQ(noc1[0].numInputs, 8u);
    EXPECT_EQ(noc1[0].numOutputs, 4u);
    EXPECT_EQ(noc1[0].count, 10u);
    const auto noc2 = levelEntries(inv, 2);
    EXPECT_EQ(noc2[0].numInputs, 10u);
    EXPECT_EQ(noc2[0].numOutputs, 8u);
    EXPECT_EQ(noc2[0].count, 4u);
}

TEST(Inventory, BoostOnlyChangesClockRatio)
{
    SystemConfig sys;
    const auto plain = crossbarInventory(clusteredDcl1(40, 10), sys);
    const auto boost =
        crossbarInventory(clusteredDcl1(40, 10, true), sys);
    ASSERT_EQ(plain.size(), boost.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].numInputs, boost[i].numInputs);
        EXPECT_EQ(plain[i].numOutputs, boost[i].numOutputs);
        EXPECT_EQ(plain[i].count, boost[i].count);
        if (plain[i].level == 1)
            EXPECT_DOUBLE_EQ(boost[i].clockRatio, 1.0);
        else
            EXPECT_DOUBLE_EQ(boost[i].clockRatio, plain[i].clockRatio);
    }
}

TEST(Inventory, Noc1LinksAreShort)
{
    // Sec. VIII: 3.3 mm cluster links, 12.3 mm NoC#2 links.
    SystemConfig sys;
    for (const auto &g :
         crossbarInventory(clusteredDcl1(40, 10, true), sys)) {
        if (g.level == 1)
            EXPECT_DOUBLE_EQ(g.linkMm, 3.3);
        else
            EXPECT_DOUBLE_EQ(g.linkMm, 12.3);
    }
}

} // anonymous namespace
