/**
 * @file
 * Tests for the telemetry layer: timeline sampler, request-latency
 * attribution, Chrome trace export, and their GpuSystem integration
 * (zero perturbation when off, determinism when on).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/gpu_system.hh"
#include "stats/latency_attr.hh"
#include "stats/timeline.hh"
#include "stats/trace_export.hh"
#include "workload/app_catalog.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::stats;

// ---------------------------------------------------------------- //
// TimelineSampler
// ---------------------------------------------------------------- //

TEST(TimelineSampler, DeltasRatesGaugesInOneRow)
{
    std::vector<std::string> rows;
    std::uint64_t ctr = 0, num = 0, den = 0;
    double g = 1.5;
    TimelineSampler tl(10,
                       [&](const std::string &r) { rows.push_back(r); });
    tl.addCounter("c", [&] { return ctr; });
    tl.addPerCycle("r", [&] { return ctr; });
    tl.addRatio("q", [&] { return num; }, [&] { return den; });
    tl.addGauge("g", [&] { return g; });
    tl.addGaugeArray("qs", 2,
                     [&](std::size_t i) { return double(i) + g; });
    tl.start(0);
    ctr = 5;
    num = 2;
    den = 4;
    tl.maybeSample(9); // not due yet
    EXPECT_TRUE(rows.empty());
    tl.maybeSample(10);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], "{\"cycle\":10,\"dt\":10,\"phase\":\"warmup\","
                       "\"c\":5,\"r\":0.5,\"q\":0.5,\"g\":1.5,"
                       "\"qs\":[1.5,2.5]}");

    // Nothing moved: deltas are 0 and the ratio reports 0, not NaN.
    g = 0.0;
    tl.maybeSample(20);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1], "{\"cycle\":20,\"dt\":10,\"phase\":\"warmup\","
                       "\"c\":0,\"r\":0,\"q\":0,\"g\":0,\"qs\":[0,1]}");
}

TEST(TimelineSampler, RebaseHidesResetDiscontinuity)
{
    std::vector<std::string> rows;
    std::uint64_t ctr = 0;
    TimelineSampler tl(10,
                       [&](const std::string &r) { rows.push_back(r); });
    tl.addCounter("c", [&] { return ctr; });
    tl.start(0);

    // Partial warmup tail before the stats reset.
    ctr = 7;
    tl.flushTail(4);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0],
              "{\"cycle\":4,\"dt\":4,\"phase\":\"warmup\",\"c\":7}");

    // The reset jumps the underlying counter; rebase re-reads the
    // baseline so the discontinuity never shows up as a delta.
    ctr = 100;
    tl.rebase(4);
    ctr = 103;
    tl.maybeSample(14);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1],
              "{\"cycle\":14,\"dt\":10,\"phase\":\"measure\",\"c\":3}");

    // finish() flushes the final partial interval exactly once.
    ctr = 104;
    tl.finish(17);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[2],
              "{\"cycle\":17,\"dt\":3,\"phase\":\"measure\",\"c\":1}");
    tl.finish(17);
    EXPECT_EQ(rows.size(), 3u);
    EXPECT_EQ(tl.rows(), 3u);
}

TEST(TimelineSampler, SampleHookSeesCycleAndDt)
{
    std::vector<std::pair<Cycle, Cycle>> hooks;
    TimelineSampler tl(8, [](const std::string &) {});
    tl.setSampleHook(
        [&](Cycle now, Cycle dt) { hooks.emplace_back(now, dt); });
    tl.start(0);
    tl.maybeSample(8);
    tl.maybeSample(16);
    tl.finish(19);
    ASSERT_EQ(hooks.size(), 3u);
    EXPECT_EQ(hooks[2], std::make_pair(Cycle(19), Cycle(3)));
}

// ---------------------------------------------------------------- //
// LatencyAttribution
// ---------------------------------------------------------------- //

TEST(LatencyAttribution, SegmentsSumExactlyToRoundTrip)
{
    LatencyAttribution la(1234, 1);
    ReqTelemetry t;
    la.onCreate(t, 100);
    ASSERT_NE(t.sampleId, 0u);
    tlmEnter(t, Seg::NocReq, 105);   // Issue: 5
    tlmEnter(t, Seg::Cache, 107);    // NocReq: 2
    tlmEnter(t, Seg::L2, 112);       // Cache: 5
    tlmEnter(t, Seg::Dram, 120);     // L2: 8
    tlmEnter(t, Seg::Cache, 130);    // Dram: 10 (reply revisits cache)
    tlmEnter(t, Seg::NocReply, 133); // Cache: +3 -> 8
    la.onRetire(t, 140);             // NocReply: 7
    EXPECT_EQ(t.sampleId, 0u);       // retires exactly once

    EXPECT_EQ(la.total().count(), 1u);
    EXPECT_EQ(la.total().sum(), 40u); // == retire - create
    EXPECT_EQ(la.segment(Seg::Issue).sum(), 5u);
    EXPECT_EQ(la.segment(Seg::NocReq).sum(), 2u);
    EXPECT_EQ(la.segment(Seg::Cache).sum(), 8u);
    EXPECT_EQ(la.segment(Seg::L2).sum(), 8u);
    EXPECT_EQ(la.segment(Seg::Dram).sum(), 10u);
    EXPECT_EQ(la.segment(Seg::NocReply).sum(), 7u);

    std::ostringstream os;
    la.printBreakdown(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("1 sampled read(s), 1-in-1"), std::string::npos);
    for (const char *seg :
         {"issue", "noc-req", "cache", "l2", "dram", "noc-reply",
          "total"})
        EXPECT_NE(out.find(seg), std::string::npos) << seg;
}

TEST(LatencyAttribution, UnsampledRequestsAreInert)
{
    LatencyAttribution la(99, 1);
    ReqTelemetry t; // sampleId == 0: never picked
    tlmEnter(t, Seg::Dram, 50);
    EXPECT_EQ(t.lastStamp, 0u);
    la.onRetire(t, 60);
    EXPECT_EQ(la.total().count(), 0u);
}

TEST(LatencyAttribution, SamplingIsSeedDeterministic)
{
    // Same seed -> the same subset of requests is attributed.
    auto picks = [](std::uint64_t seed) {
        LatencyAttribution la(seed, 4);
        std::vector<bool> out;
        for (int i = 0; i < 200; ++i) {
            ReqTelemetry t;
            la.onCreate(t, Cycle(i));
            out.push_back(t.sampleId != 0);
        }
        return out;
    };
    const auto a = picks(42), b = picks(42), c = picks(43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // Roughly 1-in-4 with a deterministic draw per candidate.
    const auto n =
        std::size_t(std::count(a.begin(), a.end(), true));
    EXPECT_GT(n, 25u);
    EXPECT_LT(n, 90u);
}

// ---------------------------------------------------------------- //
// TraceExport
// ---------------------------------------------------------------- //

TEST(TraceExport, WritesSlicesAndCounters)
{
    TraceExport te(1, 100);
    te.reqSlice(1, "issue", 0, 5); // lint: trace-ok (test fixture)
    te.counterEvent("q", 10, 2.5); // lint: trace-ok (test fixture)
    EXPECT_EQ(te.events(), 2u);

    std::ostringstream os;
    te.writeJson(os);
    EXPECT_EQ(os.str(),
              "{\"traceEvents\":["
              "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"issue\","
              "\"ts\":0,\"dur\":5},"
              "{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"q\","
              "\"ts\":10,\"args\":{\"value\":2.5}}"
              "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(TraceExport, ThinsLifecyclesAndCapsEvents)
{
    TraceExport te(2, 3);
    // Direct emission exercises the exporter itself (lint R8).
    te.reqSlice(1, "issue", 0, 1); // lint: trace-ok; kept (1-1)%2==0
    te.reqSlice(2, "issue", 0, 1); // lint: trace-ok; thinned out
    te.reqSlice(3, "issue", 0, 1); // lint: trace-ok; kept
    te.counterEvent("q", 0, 1.0);  // lint: trace-ok; fills the cap
    te.counterEvent("q", 1, 1.0);  // lint: trace-ok; dropped (cap)
    te.reqSlice(5, "issue", 0, 1); // lint: trace-ok; dropped (cap)
    EXPECT_EQ(te.events(), 3u);
    EXPECT_EQ(te.dropped(), 2u);
}

// ---------------------------------------------------------------- //
// GpuSystem integration
// ---------------------------------------------------------------- //

workload::WorkloadParams
telemetryApp()
{
    workload::WorkloadParams p;
    p.name = "telemetry-app";
    p.warpsPerCore = 16;
    p.memRatio = 0.4;
    p.sharedLines = 800;
    p.sharedFrac = 0.9;
    p.privateLines = 512;
    p.coalescedAccesses = 2;
    return p;
}

struct TelemetryRun
{
    core::RunMetrics metrics;
    std::vector<std::string> rows;
    std::string traceJson;
    std::uint64_t totalSum = 0;
    std::uint64_t segSum = 0;
    std::string statsDump;
};

TelemetryRun
runWithTelemetry(const core::DesignConfig &design)
{
    TelemetryRun out;
    core::GpuSystem gpu(core::SystemConfig(), design, telemetryApp());
    gpu.enableTimeline(
        64, [&](const std::string &r) { out.rows.push_back(r); });
    gpu.enableLatency(1);
    TraceExport trace(4, 1u << 16);
    gpu.enableTrace(&trace);
    gpu.run(2000, 1000);
    gpu.finishTelemetry();
    out.metrics = gpu.metrics();
    out.totalSum = gpu.latency()->total().sum();
    for (std::size_t i = 0; i < kNumSegs; ++i)
        out.segSum += gpu.latency()->segment(static_cast<Seg>(i)).sum();
    std::ostringstream ts;
    trace.writeJson(ts);
    out.traceJson = ts.str();
    std::ostringstream ss;
    gpu.dumpStats(ss);
    out.statsDump = ss.str();
    return out;
}

TEST(GpuSystemTelemetry, OffMeansUnperturbed)
{
    // Metrics with the full telemetry stack on equal the plain run's.
    core::GpuSystem plain(core::SystemConfig(), core::sharedDcl1(40),
                          telemetryApp());
    plain.run(2000, 1000);
    const core::RunMetrics off = plain.metrics();
    const core::RunMetrics on =
        runWithTelemetry(core::sharedDcl1(40)).metrics;

    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.instructions, off.instructions);
    EXPECT_DOUBLE_EQ(on.ipc, off.ipc);
    EXPECT_EQ(on.l1Accesses, off.l1Accesses);
    EXPECT_EQ(on.l1Misses, off.l1Misses);
    EXPECT_EQ(on.noc1Flits, off.noc1Flits);
    EXPECT_EQ(on.noc2Flits, off.noc2Flits);
    EXPECT_EQ(on.dramReads, off.dramReads);
    EXPECT_EQ(on.dramWrites, off.dramWrites);
    EXPECT_DOUBLE_EQ(on.avgReadLatency, off.avgReadLatency);
}

TEST(GpuSystemTelemetry, SegmentsAccountForEveryReadCycle)
{
    const TelemetryRun r = runWithTelemetry(core::sharedDcl1(40));
    ASSERT_GT(r.totalSum, 0u);
    // Per-segment custody spans partition each round trip, so the
    // segment sums reconstruct the total exactly...
    EXPECT_EQ(r.segSum, r.totalSum);
    // ...and with 1-in-1 sampling the total equals the cores' own
    // read-latency accounting (same create/retire stamps).
    std::uint64_t read_latency_sum = 0;
    std::istringstream in(r.statsDump);
    std::string line;
    while (std::getline(in, line)) {
        const auto pos = line.find(".read_latency_sum ");
        if (pos != std::string::npos)
            read_latency_sum += std::strtoull(
                line.c_str() + pos + 18, nullptr, 10);
    }
    EXPECT_EQ(r.totalSum, read_latency_sum);
    // The attribution group publishes through the stats tree too.
    EXPECT_NE(r.statsDump.find("latency.total.p95"),
              std::string::npos);
}

TEST(GpuSystemTelemetry, SameSeedRunsAreIdentical)
{
    const TelemetryRun a = runWithTelemetry(core::sharedDcl1(40));
    const TelemetryRun b = runWithTelemetry(core::sharedDcl1(40));
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.statsDump, b.statsDump);
    EXPECT_GT(a.rows.size(), 10u); // 3000 cycles / 64-cycle interval
    EXPECT_NE(a.traceJson.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(a.traceJson.find("\"ph\":\"C\""), std::string::npos);
}

TEST(GpuSystemTelemetry, TimelineRowsCoverBothPhases)
{
    const TelemetryRun r = runWithTelemetry(core::baselineDesign());
    ASSERT_GT(r.rows.size(), 2u);
    bool warmup = false, measure = false;
    Cycle last = 0;
    for (const std::string &row : r.rows) {
        EXPECT_EQ(row.front(), '{');
        EXPECT_EQ(row.back(), '}');
        warmup = warmup ||
                 row.find("\"phase\":\"warmup\"") != std::string::npos;
        measure = measure ||
                  row.find("\"phase\":\"measure\"") != std::string::npos;
        // Cycles strictly increase row to row.
        const Cycle c = std::strtoull(row.c_str() + 9, nullptr, 10);
        EXPECT_GT(c, last);
        last = c;
    }
    EXPECT_TRUE(warmup);
    EXPECT_TRUE(measure);
    // The DcL1 per-node queue tracks are absent on the baseline...
    EXPECT_EQ(r.rows.back().find("node_q1"), std::string::npos);
    // ...and present on a DcL1 topology.
    const TelemetryRun d = runWithTelemetry(core::sharedDcl1(40));
    EXPECT_NE(d.rows.back().find("node_q1"), std::string::npos);
}

TEST(GpuSystemTelemetry, StatsJsonDumpIsWellFormed)
{
    core::GpuSystem gpu(core::SystemConfig(), core::sharedDcl1(40),
                        telemetryApp());
    gpu.enableLatency(1);
    gpu.run(1000, 500);
    std::ostringstream os;
    gpu.dumpStatsJson(os);
    const std::string out = os.str();
    ASSERT_GT(out.size(), 2u);
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.substr(out.size() - 2), "}\n");
    EXPECT_NE(out.find("\"name\":\"gpu\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"latency\""), std::string::npos);
    EXPECT_NE(out.find("\"p99\":"), std::string::npos);
}

} // anonymous namespace
