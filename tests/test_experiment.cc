/** @file Tests for the experiment runner helpers. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.hh"

namespace
{

using namespace dcl1::core;

TEST(Experiment, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({4.0}), 4.0);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Experiment, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Experiment, EnvOverrides)
{
    setenv("DCL1_CYCLES", "1234", 1);
    setenv("DCL1_WARMUP", "99", 1);
    const auto opts = ExperimentOptions::fromEnv();
    EXPECT_EQ(opts.measureCycles, 1234u);
    EXPECT_EQ(opts.warmupCycles, 99u);
    unsetenv("DCL1_CYCLES");
    unsetenv("DCL1_WARMUP");
}

TEST(Experiment, EnvDefaults)
{
    unsetenv("DCL1_CYCLES");
    unsetenv("DCL1_WARMUP");
    const auto opts = ExperimentOptions::fromEnv();
    EXPECT_GT(opts.measureCycles, 0u);
}

TEST(Experiment, BadEnvIsFatal)
{
    setenv("DCL1_CYCLES", "-5", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "must be positive");
    unsetenv("DCL1_CYCLES");
}

} // anonymous namespace
