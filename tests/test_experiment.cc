/** @file Tests for the experiment runner helpers. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.hh"

namespace
{

using namespace dcl1::core;

TEST(Experiment, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({4.0}), 4.0);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // Tiny-but-positive values are fine (log-domain accumulation).
    EXPECT_NEAR(geoMean({1e-300, 1e300}), 1.0, 1e-9);
}

TEST(Experiment, GeoMeanRejectsNonPositive)
{
    EXPECT_EXIT(geoMean({1.0, 0.0}), ::testing::ExitedWithCode(1),
                "requires positive values");
    EXPECT_EXIT(geoMean({2.0, -3.0}), ::testing::ExitedWithCode(1),
                "requires positive values");
}

TEST(Experiment, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Experiment, EnvOverrides)
{
    setenv("DCL1_CYCLES", "1234", 1);
    setenv("DCL1_WARMUP", "99", 1);
    const auto opts = ExperimentOptions::fromEnv();
    EXPECT_EQ(opts.measureCycles, 1234u);
    EXPECT_EQ(opts.warmupCycles, 99u);
    unsetenv("DCL1_CYCLES");
    unsetenv("DCL1_WARMUP");
}

TEST(Experiment, EnvDefaults)
{
    unsetenv("DCL1_CYCLES");
    unsetenv("DCL1_WARMUP");
    const auto opts = ExperimentOptions::fromEnv();
    EXPECT_GT(opts.measureCycles, 0u);
}

TEST(Experiment, BadEnvIsFatal)
{
    setenv("DCL1_CYCLES", "-5", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "out of range");
    unsetenv("DCL1_CYCLES");
}

TEST(Experiment, EnvStrictParsing)
{
    // Zero measured cycles makes no experiment at all.
    setenv("DCL1_CYCLES", "0", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "out of range");

    // Trailing garbage must not silently truncate ("30k" != 30).
    setenv("DCL1_CYCLES", "30k", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "trailing garbage");

    setenv("DCL1_CYCLES", "1e6", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "trailing garbage");

    // Entirely non-numeric.
    setenv("DCL1_CYCLES", "lots", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "is not a number");

    // Empty string is not a usable default.
    setenv("DCL1_CYCLES", "", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "empty value");

    // Overflow.
    setenv("DCL1_CYCLES", "99999999999999999999999", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "does not fit");
    unsetenv("DCL1_CYCLES");

    // Warmup may be zero, but not negative or garbage.
    setenv("DCL1_WARMUP", "0", 1);
    EXPECT_EQ(ExperimentOptions::fromEnv().warmupCycles, 0u);
    setenv("DCL1_WARMUP", "-1", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "out of range");
    setenv("DCL1_WARMUP", "12abc", 1);
    EXPECT_EXIT(ExperimentOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "trailing garbage");
    unsetenv("DCL1_WARMUP");
}

} // anonymous namespace
