/**
 * @file
 * Tests for the invariant-checking subsystem: fault injection proving
 * that each invariant class actually fires, plus the same-seed
 * determinism regression across the paper's main design points.
 */

#include <gtest/gtest.h>

#include "check/check.hh"
#include "exec/determinism.hh"
#include "check/request_ledger.hh"
#include "core/design.hh"
#include "core/gpu_system.hh"
#include "mem/queues.hh"
#include "mem/request.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::core;

/** Resets shared ledger state so tests cannot pollute each other. */
class LedgerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!check::checksCompiledIn)
            GTEST_SKIP() << "built with DCL1_CHECK=OFF";
        check::ledger().setStrictDestroy(false);
        check::ledger().clear();
    }

    void
    TearDown() override
    {
        check::ledger().setStrictDestroy(false);
        check::ledger().clear();
    }

    mem::MemRequestPtr
    tracked(Addr addr = 0x1000)
    {
        auto req = mem::makeRequest(mem::MemOp::Read, addr, 4, 0, 0, 0);
        check::ledger().onCreate(*req, 0);
        return req;
    }
};

using LedgerDeathTest = LedgerTest;

TEST_F(LedgerTest, HappyPathLifecycle)
{
    auto req = tracked();
    EXPECT_NE(req->chkSeq, 0u);
    EXPECT_EQ(check::ledger().liveCount(), 1u);

    check::ledger().onTransition(*req, check::ReqStage::InNoc);
    check::ledger().onTransition(*req, check::ReqStage::AtCache);
    check::ledger().onTransition(*req, check::ReqStage::AtDram);
    check::ledger().onTransition(*req, check::ReqStage::AtCache);
    check::ledger().onTransition(*req, check::ReqStage::InNoc);
    check::ledger().onRetire(*req);

    EXPECT_EQ(check::ledger().liveCount(), 0u);
    check::ledger().audit("happy-path"); // must not panic
    req.reset();                         // retired: destroy is legal
}

TEST_F(LedgerTest, EventRingRecordsLifecycleForCrashForensics)
{
    auto req = tracked(0x1f80);
    check::ledger().onTransition(*req, check::ReqStage::InNoc);
    check::ledger().onRetire(*req);

    const std::string json = check::ledger().recentEventsJson();
    EXPECT_NE(json.find("\"ev\":\"create\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"ev\":\"transition\""), std::string::npos);
    EXPECT_NE(json.find("\"ev\":\"retire\""), std::string::npos);
    EXPECT_NE(json.find("\"from\":\"Issued\",\"to\":\"InNoc\""),
              std::string::npos);
    EXPECT_NE(json.find("\"to\":\"Retired\""), std::string::npos);
    EXPECT_NE(json.find("\"addr\":\"0x1f80\""), std::string::npos);
    req.reset();

    // The ring keeps only the most recent kEventRing events: after
    // many more lifecycles the early request's events are gone.
    for (int i = 0; i < 40; ++i) {
        auto r2 = tracked(0x4000 + Addr(i) * 0x80);
        check::ledger().onTransition(*r2, check::ReqStage::InNoc);
        check::ledger().onRetire(*r2);
        r2.reset();
    }
    const std::string later = check::ledger().recentEventsJson();
    EXPECT_EQ(later.find("\"addr\":\"0x1f80\""), std::string::npos);

    // clear() resets the forensic tail along with the session state.
    check::ledger().clear();
    EXPECT_EQ(check::ledger().recentEventsJson(), "[]");
}

TEST_F(LedgerTest, UntrackedRequestsAreIgnored)
{
    auto req = mem::makeRequest(mem::MemOp::Read, 0x2000, 4, 0, 0, 0);
    ASSERT_EQ(req->chkSeq, 0u);
    check::ledger().onTransition(*req, check::ReqStage::AtDram);
    check::ledger().onRetire(*req);
    EXPECT_EQ(check::ledger().liveCount(), 0u);
}

TEST_F(LedgerDeathTest, DoubleRegistrationPanics)
{
    auto req = tracked();
    EXPECT_DEATH(check::ledger().onCreate(*req, 0), "registered twice");
}

TEST_F(LedgerDeathTest, IllegalTransitionPanics)
{
    // A request cannot teleport from its core straight into DRAM.
    auto req = tracked();
    EXPECT_DEATH(
        check::ledger().onTransition(*req, check::ReqStage::AtDram),
        "illegal transition Issued -> AtDram");
}

TEST_F(LedgerDeathTest, MshrDoubleMergePanics)
{
    // Re-merging an already merged request is the classic MSHR bug.
    auto req = tracked();
    check::ledger().onTransition(*req, check::ReqStage::AtCache);
    check::ledger().onTransition(*req, check::ReqStage::InMshr);
    EXPECT_DEATH(
        check::ledger().onTransition(*req, check::ReqStage::InMshr),
        "illegal transition InMshr -> InMshr");
}

TEST_F(LedgerDeathTest, UseAfterRetirePanics)
{
    auto req = tracked();
    check::ledger().onTransition(*req, check::ReqStage::InNoc);
    check::ledger().onRetire(*req);
    EXPECT_DEATH(
        check::ledger().onTransition(*req, check::ReqStage::AtCache),
        "illegal transition Retired -> AtCache");
}

TEST_F(LedgerDeathTest, DoubleRetirePanics)
{
    auto req = tracked();
    check::ledger().onTransition(*req, check::ReqStage::InNoc);
    check::ledger().onRetire(*req);
    EXPECT_DEATH(check::ledger().onRetire(*req), "double retire");
}

TEST_F(LedgerDeathTest, RetireFromIllegalStagePanics)
{
    // Consuming a request that is still merged inside an MSHR entry
    // would duplicate (or lose) the eventual fill.
    auto req = tracked();
    check::ledger().onTransition(*req, check::ReqStage::AtCache);
    check::ledger().onTransition(*req, check::ReqStage::InMshr);
    EXPECT_DEATH(check::ledger().onRetire(*req),
                 "retire from illegal stage InMshr");
}

TEST_F(LedgerDeathTest, StrictDestroyCatchesLeaks)
{
    auto req = tracked();
    check::ledger().setStrictDestroy(true);
    EXPECT_DEATH(req.reset(), "leaked");
    check::ledger().setStrictDestroy(false);
}

TEST_F(LedgerDeathTest, AuditReportsLiveRequests)
{
    auto req = tracked();
    check::ledger().onTransition(*req, check::ReqStage::InNoc);
    EXPECT_DEATH(check::ledger().audit("unit-test"),
                 "1 request\\(s\\) still live");
}

TEST(BoundedQueueDeathTest, OverflowPushPanics)
{
    if (!check::checksCompiledIn)
        GTEST_SKIP() << "built with DCL1_CHECK=OFF";
    mem::BoundedQueue<int> q(1);
    q.push(1);
    EXPECT_DEATH(q.push(2), "push beyond capacity");
}

TEST(BoundedQueueDeathTest, EmptyPopPanics)
{
    if (!check::checksCompiledIn)
        GTEST_SKIP() << "built with DCL1_CHECK=OFF";
    mem::BoundedQueue<int> q(1);
    EXPECT_DEATH(q.pop(), "pop from empty");
}

/**
 * End-to-end meta-check: a full simulation must actually exercise the
 * instrumentation (hooks wired, requests registered and retired) and
 * finish with a clean system-wide audit.
 */
TEST(CheckIntegration, SimulationIsAudited)
{
    if (!check::checksCompiledIn)
        GTEST_SKIP() << "built with DCL1_CHECK=OFF";
    const std::uint64_t reg_before = check::ledger().registered();

    GpuSystem gpu(SystemConfig(), privateDcl1(40),
                  workload::WorkloadParams());
    gpu.run(2000, 500);
    EXPECT_GT(check::ledger().registered(), reg_before);
    EXPECT_GT(check::ledger().retired(), 0u);

    gpu.checkInvariants("test");
    EXPECT_TRUE(gpu.drain()); // drain() runs the ledger leak audit
}

/** Same-seed determinism across the paper's headline design points. */
class DeterminismTest : public ::testing::TestWithParam<DesignConfig>
{
};

TEST_P(DeterminismTest, SameSeedSameDigest)
{
    const auto r = exec::runTwiceAndCompare(
        SystemConfig(), GetParam(), workload::WorkloadParams(), 2000, 500);
    EXPECT_TRUE(r.ok) << "digest A " << r.digestA << " != digest B "
                      << r.digestB;
}

INSTANTIATE_TEST_SUITE_P(
    Designs, DeterminismTest,
    ::testing::Values(baselineDesign(), privateDcl1(40), sharedDcl1(40),
                      clusteredDcl1(40, 10, true)),
    [](const ::testing::TestParamInfo<DesignConfig> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
