/** @file Unit tests for the timed cache bank. */

#include <gtest/gtest.h>

#include "mem/cache_bank.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::mem;

CacheBankParams
smallParams()
{
    CacheBankParams p;
    p.name = "test";
    p.sizeBytes = 4 * 1024; // 32 lines
    p.assoc = 4;
    p.lineBytes = 128;
    p.latency = 10;
    p.mshrs = 4;
    p.targetsPerMshr = 4;
    p.downstreamCap = 4;
    return p;
}

MemRequestPtr
read(Addr addr, CoreId core = 0, Cycle now = 0)
{
    return makeRequest(MemOp::Read, addr, 32, core, 0, now);
}

MemRequestPtr
write(Addr addr, Cycle now = 0)
{
    return makeRequest(MemOp::Write, addr, 32, 0, 0, now);
}

/** Drive the bank so line @p addr becomes resident. */
void
installViaFill(CacheBank &bank, Addr addr, Cycle &now)
{
    auto r = read(addr);
    ASSERT_EQ(bank.access(r, ++now), AccessOutcome::Miss);
    auto fetch = bank.takeDownstream();
    ASSERT_TRUE(fetch.has_value());
    (*fetch)->isReply = true;
    bank.fill(std::move(*fetch), ++now);
    // Drain the completion.
    now += 1;
    auto done = bank.takeCompleted(now);
    ASSERT_TRUE(done.has_value());
}

TEST(CacheBank, MissSendsFetchDownstream)
{
    CacheBank bank(smallParams());
    auto r = read(0x1000);
    EXPECT_EQ(bank.access(r, 1), AccessOutcome::Miss);
    EXPECT_FALSE(r);
    auto fetch = bank.takeDownstream();
    ASSERT_TRUE(fetch.has_value());
    EXPECT_TRUE((*fetch)->isFetch());
    EXPECT_EQ((*fetch)->addr, 0x1000u);
    EXPECT_EQ(bank.misses(), 1u);
}

TEST(CacheBank, HitAfterFillWithLatency)
{
    CacheBank bank(smallParams());
    Cycle now = 0;
    installViaFill(bank, 0x2000, now);

    auto r = read(0x2000);
    const Cycle at = ++now;
    EXPECT_EQ(bank.access(r, at), AccessOutcome::Hit);
    EXPECT_FALSE(bank.takeCompleted(at + 9).has_value());
    auto done = bank.takeCompleted(at + 10);
    ASSERT_TRUE(done.has_value());
    EXPECT_TRUE((*done)->isReply);
    EXPECT_EQ(bank.hits(), 1u);
}

TEST(CacheBank, PortIsSingleIssuePerCycle)
{
    CacheBank bank(smallParams());
    auto r1 = read(0x0);
    EXPECT_TRUE(bank.canAccept(5));
    bank.access(r1, 5);
    EXPECT_FALSE(bank.canAccept(5));
    EXPECT_TRUE(bank.canAccept(6));
}

TEST(CacheBank, MshrMergeAcrossCores)
{
    CacheBank bank(smallParams());
    auto r1 = read(0x3000, /*core=*/0);
    auto r2 = read(0x3000, /*core=*/1);
    EXPECT_EQ(bank.access(r1, 1), AccessOutcome::Miss);
    EXPECT_EQ(bank.access(r2, 2), AccessOutcome::Miss);
    EXPECT_EQ(bank.mshrMerges(), 1u);
    // Only one fetch goes downstream.
    EXPECT_TRUE(bank.takeDownstream().has_value());
    EXPECT_FALSE(bank.takeDownstream().has_value());
}

TEST(CacheBank, FillFansOutMergedTargets)
{
    CacheBank bank(smallParams());
    auto r1 = read(0x3000, 0);
    auto r2 = read(0x3000, 1);
    bank.access(r1, 1);
    bank.access(r2, 2);
    auto fetch = bank.takeDownstream();
    (*fetch)->isReply = true;
    bank.fill(std::move(*fetch), 50);

    int completions = 0;
    for (Cycle t = 50; t < 60; ++t) {
        while (auto done = bank.takeCompleted(t)) {
            EXPECT_TRUE((*done)->isReply);
            ++completions;
        }
    }
    EXPECT_EQ(completions, 2);
    EXPECT_TRUE(bank.tags().contains(0x3000 / 128));
}

TEST(CacheBank, WriteEvictInvalidatesAndForwards)
{
    CacheBank bank(smallParams());
    Cycle now = 0;
    installViaFill(bank, 0x4000, now);
    ASSERT_TRUE(bank.tags().contains(0x4000 / 128));

    auto w = write(0x4000);
    EXPECT_EQ(bank.access(w, ++now), AccessOutcome::Miss);
    // The line is gone (write-evict) and the write went downstream.
    EXPECT_FALSE(bank.tags().contains(0x4000 / 128));
    auto down = bank.takeDownstream();
    ASSERT_TRUE(down.has_value());
    EXPECT_TRUE((*down)->isWrite());
    EXPECT_EQ((*down)->payloadBytes, 32u);
}

TEST(CacheBank, WriteDoesNotAllocate)
{
    CacheBank bank(smallParams());
    auto w = write(0x5000);
    bank.access(w, 1);
    EXPECT_FALSE(bank.tags().contains(0x5000 / 128));
}

TEST(CacheBank, WriteAckCompletesViaFill)
{
    CacheBank bank(smallParams());
    auto w = write(0x5000);
    bank.access(w, 1);
    auto down = bank.takeDownstream();
    (*down)->isReply = true;
    bank.fill(std::move(*down), 20);
    auto done = bank.takeCompleted(20);
    ASSERT_TRUE(done.has_value());
    EXPECT_TRUE((*done)->isWrite());
}

TEST(CacheBank, WriteBackPolicyCompletesLocally)
{
    CacheBankParams p = smallParams();
    p.policy = WritePolicy::WriteBack;
    CacheBank bank(p);

    auto w = write(0x6000);
    EXPECT_EQ(bank.access(w, 1), AccessOutcome::Hit);
    EXPECT_TRUE(bank.tags().contains(0x6000 / 128)); // write-validate
    auto done = bank.takeCompleted(1 + p.latency);
    ASSERT_TRUE(done.has_value());
    // No downstream write-through under write-back.
    EXPECT_FALSE(bank.takeDownstream().has_value());
}

TEST(CacheBank, WriteBackDirtyEvictionEmitsWriteback)
{
    CacheBankParams p = smallParams();
    p.sizeBytes = 128; // 1 line total
    p.assoc = 1;
    p.policy = WritePolicy::WriteBack;
    CacheBank bank(p);

    auto w = write(0x0);
    bank.access(w, 1);
    bank.takeCompleted(1 + p.latency);

    auto w2 = write(0x80); // evicts dirty line 0
    bank.access(w2, 2);
    auto wb = bank.takeDownstream();
    ASSERT_TRUE(wb.has_value());
    EXPECT_TRUE((*wb)->isWrite());
    EXPECT_EQ((*wb)->core, invalidId); // fire-and-forget writeback
    EXPECT_EQ((*wb)->payloadBytes, 128u);
}

TEST(CacheBank, BlockedWhenMshrsExhausted)
{
    CacheBankParams p = smallParams();
    p.mshrs = 1;
    CacheBank bank(p);
    auto r1 = read(0x0);
    auto r2 = read(0x1000);
    EXPECT_EQ(bank.access(r1, 1), AccessOutcome::Miss);
    EXPECT_EQ(bank.access(r2, 2), AccessOutcome::Blocked);
    EXPECT_TRUE(r2); // retained by the caller for retry
    EXPECT_GT(bank.blockedEvents(), 0u);
}

TEST(CacheBank, BlockedWhenDownstreamFull)
{
    CacheBankParams p = smallParams();
    p.downstreamCap = 1;
    CacheBank bank(p);
    auto r1 = read(0x0);
    bank.access(r1, 1); // occupies the downstream slot
    auto r2 = read(0x1000);
    EXPECT_EQ(bank.access(r2, 2), AccessOutcome::Blocked);
}

TEST(CacheBank, PerfectModeAlwaysHits)
{
    CacheBankParams p = smallParams();
    p.perfect = true;
    CacheBank bank(p);
    for (Cycle t = 1; t <= 64; ++t) {
        auto r = read(t * 0x1000);
        EXPECT_EQ(bank.access(r, t), AccessOutcome::Hit);
        while (bank.takeCompleted(t)) {
        }
    }
    EXPECT_EQ(bank.misses(), 0u);
}

TEST(CacheBank, FetchReplyPayloadIsFullLine)
{
    // An L2-style bank hit on an upstream fetch returns the whole line.
    CacheBankParams p = smallParams();
    p.policy = WritePolicy::WriteBack;
    CacheBank bank(p);
    Cycle now = 0;

    auto warm = read(0x7000);
    warm->op = MemOp::Read;
    bank.access(warm, ++now);
    auto f = bank.takeDownstream();
    (*f)->isReply = true;
    bank.fill(std::move(*f), ++now);
    ++now;
    bank.takeCompleted(now);

    auto fetch = read(0x7000);
    ++fetch->fetchDepth; // simulate an upstream L1's fetch
    const Cycle at = ++now;
    EXPECT_EQ(bank.access(fetch, at), AccessOutcome::Hit);
    auto done = bank.takeCompleted(at + p.latency);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ((*done)->payloadBytes, 128u);
    EXPECT_TRUE((*done)->isFetch()); // still the upstream cache's fetch
}

TEST(CacheBank, MissRateStat)
{
    CacheBank bank(smallParams());
    Cycle now = 0;
    installViaFill(bank, 0x0, now);
    auto h = read(0x0);
    bank.access(h, ++now);
    auto m = read(0x8000);
    bank.access(m, ++now);
    // installViaFill made 1 miss; then 1 hit and 1 miss.
    EXPECT_DOUBLE_EQ(bank.missRate(), 2.0 / 3.0);
}

} // anonymous namespace
