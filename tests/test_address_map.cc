/** @file Unit and property tests for the global address map. */

#include <gtest/gtest.h>

#include <map>

#include "mem/address_map.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::mem;

TEST(AddressMap, ChunkInterleave)
{
    AddressMap map(32, 16, 256);
    EXPECT_EQ(map.slice(0), 0u);
    EXPECT_EQ(map.slice(255), 0u);
    EXPECT_EQ(map.slice(256), 1u);
    EXPECT_EQ(map.slice(256 * 32), 0u);
    EXPECT_EQ(map.slice(256 * 33), 1u);
}

TEST(AddressMap, BothLinesOfAChunkShareASlice)
{
    AddressMap map(32, 16, 256);
    for (Addr chunk = 0; chunk < 1000; ++chunk) {
        EXPECT_EQ(map.slice(chunk * 256), map.slice(chunk * 256 + 128));
    }
}

TEST(AddressMap, ChannelGrouping)
{
    AddressMap map(32, 16, 256);
    for (SliceId s = 0; s < 32; ++s)
        EXPECT_EQ(map.channelOfSlice(s), s % 16);
    EXPECT_EQ(map.channel(256 * 17), map.channelOfSlice(17));
}

TEST(AddressMap, RejectsBadGeometry)
{
    EXPECT_EXIT(AddressMap(30, 16), ::testing::ExitedWithCode(1),
                "not divisible");
    EXPECT_EXIT(AddressMap(0, 4), ::testing::ExitedWithCode(1),
                "nonzero");
}

/** Property: slices are evenly loaded by a linear sweep. */
class AddressBalanceTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(AddressBalanceTest, LinearSweepIsBalanced)
{
    const auto [slices, channels] = GetParam();
    AddressMap map(slices, channels);
    std::map<SliceId, int> counts;
    const int chunks = 32 * int(slices);
    for (int c = 0; c < chunks; ++c)
        counts[map.slice(Addr(c) * map.chunkBytes())]++;
    for (const auto &[slice, n] : counts)
        EXPECT_EQ(n, 32);
    EXPECT_EQ(counts.size(), slices);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddressBalanceTest,
    ::testing::Values(std::make_pair(32u, 16u), std::make_pair(48u, 24u),
                      std::make_pair(16u, 16u), std::make_pair(8u, 4u)));

} // anonymous namespace
