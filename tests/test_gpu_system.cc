/** @file End-to-end integration and property tests for GpuSystem. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/gpu_system.hh"
#include "workload/app_catalog.hh"
#include "workload/trace_file.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::core;

workload::WorkloadParams
sharedHeavyApp()
{
    workload::WorkloadParams p;
    p.name = "itest-shared";
    p.warpsPerCore = 16;
    p.memRatio = 0.4;
    p.sharedLines = 800;
    p.sharedFrac = 0.9;
    p.privateLines = 512;
    p.coalescedAccesses = 2;
    return p;
}

RunMetrics
runSmall(const DesignConfig &d,
         const workload::WorkloadParams &app = sharedHeavyApp(),
         const SystemConfig &sys = SystemConfig())
{
    GpuSystem gpu(sys, d, app);
    gpu.run(4000, 6000);
    return gpu.metrics();
}

/** Integration: every design preset simulates and makes progress. */
class AllDesignsTest : public ::testing::TestWithParam<DesignConfig>
{
};

TEST_P(AllDesignsTest, MakesProgress)
{
    const RunMetrics rm = runSmall(GetParam());
    EXPECT_GT(rm.instructions, 0u);
    EXPECT_GT(rm.ipc, 0.0);
    EXPECT_GT(rm.l1Accesses, 0u);
    EXPECT_GT(rm.avgReadLatency, 0.0);
    EXPECT_LE(rm.l1MissRate, 1.0);
    EXPECT_GE(rm.l1MissRate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, AllDesignsTest,
    ::testing::Values(baselineDesign(), privateDcl1(80), privateDcl1(40),
                      privateDcl1(20), privateDcl1(10), sharedDcl1(40),
                      clusteredDcl1(40, 5), clusteredDcl1(40, 10),
                      clusteredDcl1(40, 20), clusteredDcl1(40, 10, true),
                      cdxbarDesign(false, false),
                      cdxbarDesign(true, true)),
    [](const ::testing::TestParamInfo<DesignConfig> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(GpuSystem, SharedEliminatesReplication)
{
    // The defining property of ShY: one home per line -> no copies.
    const RunMetrics rm = runSmall(sharedDcl1(40));
    EXPECT_DOUBLE_EQ(rm.replicationRatio, 0.0);
    EXPECT_LE(rm.avgReplicas, 1.0 + 1e-9);
}

TEST(GpuSystem, ClusteredBoundsReplicas)
{
    // Sh40+C10 allows at most one copy per cluster (10 total).
    GpuSystem gpu(SystemConfig(), clusteredDcl1(40, 10),
                  sharedHeavyApp());
    gpu.run(4000, 6000);
    const RunMetrics rm = gpu.metrics();
    EXPECT_LE(rm.avgReplicas, 10.0 + 1e-9);
    // And the directory never sees more than 10 copies of any line.
    auto &tracker = gpu.tracker();
    for (LineAddr l = 0; l < 800; ++l)
        EXPECT_LE(tracker.copies(l), 10u);
}

TEST(GpuSystem, PrivateAllowsWideReplication)
{
    const RunMetrics base = runSmall(baselineDesign());
    const RunMetrics shared = runSmall(sharedDcl1(40));
    EXPECT_GT(base.replicationRatio, 0.3);
    EXPECT_LT(shared.l1MissRate, base.l1MissRate);
}

TEST(GpuSystem, PerfectL1HasNoMisses)
{
    workload::WorkloadParams p = sharedHeavyApp();
    p.writeFrac = 0.0; // writes always travel downstream (write-evict)
    const RunMetrics rm =
        runSmall(withPerfectL1(baselineDesign()), p);
    EXPECT_DOUBLE_EQ(rm.l1MissRate, 0.0);
}

TEST(GpuSystem, PerfectDcL1HasNoReadMisses)
{
    const RunMetrics rm =
        runSmall(withPerfectL1(clusteredDcl1(40, 10)));
    // Writes still go downstream under write-evict; read misses are 0,
    // so the rate is bounded by the write fraction.
    EXPECT_LT(rm.l1MissRate, 0.1);
}

TEST(GpuSystem, BiggerCacheLowersMissRate)
{
    // Footprint (300 lines) exceeds one L1 (128 lines) but fits the
    // 16x cache; the warmup must touch the whole footprint.
    workload::WorkloadParams p = sharedHeavyApp();
    p.sharedLines = 300;
    p.sharedFrac = 1.0;
    GpuSystem base_gpu(SystemConfig(), baselineDesign(), p);
    base_gpu.run(4000, 12000);
    GpuSystem big_gpu(SystemConfig(),
                      withCapacityScale(baselineDesign(), 16.0), p);
    big_gpu.run(4000, 12000);
    EXPECT_LT(big_gpu.metrics().l1MissRate,
              base_gpu.metrics().l1MissRate * 0.7);
}

TEST(GpuSystem, Deterministic)
{
    const RunMetrics a = runSmall(clusteredDcl1(40, 10, true));
    const RunMetrics b = runSmall(clusteredDcl1(40, 10, true));
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.noc1Flits, b.noc1Flits);
}

TEST(GpuSystem, SeedChangesOutcome)
{
    SystemConfig s1, s2;
    s2.seed = 999;
    const RunMetrics a =
        runSmall(baselineDesign(), sharedHeavyApp(), s1);
    const RunMetrics b =
        runSmall(baselineDesign(), sharedHeavyApp(), s2);
    EXPECT_NE(a.instructions, b.instructions);
}

TEST(GpuSystem, ScaledSystemRuns)
{
    // The 120-core Sh60+C10 sensitivity configuration (Sec. VIII-A).
    SystemConfig sys = SystemConfig::scaled(120, 48, 24);
    const RunMetrics rm =
        runSmall(clusteredDcl1(60, 10, true), sharedHeavyApp(), sys);
    EXPECT_GT(rm.ipc, 0.0);
}

TEST(GpuSystem, LatencyIncludesL1Latency)
{
    const RunMetrics rm = runSmall(baselineDesign());
    EXPECT_GE(rm.avgReadLatency, 28.0);
}

TEST(GpuSystem, DcL1LatencyExceedsBaselineForHits)
{
    // Decoupling adds core<->DC-L1 communication latency (Sec. VIII).
    workload::WorkloadParams p = sharedHeavyApp();
    p.sharedLines = 200; // fits everywhere: hit-dominated
    p.memRatio = 0.1;    // low load: pure latency comparison
    const RunMetrics base = runSmall(baselineDesign(), p);
    const RunMetrics dc = runSmall(clusteredDcl1(40, 10), p);
    EXPECT_GT(dc.avgReadLatency, base.avgReadLatency);
}

TEST(GpuSystem, NocFlitsAccounted)
{
    const RunMetrics base = runSmall(baselineDesign());
    EXPECT_EQ(base.noc1Flits, 0u);
    EXPECT_GT(base.noc2Flits, 0u);
    const RunMetrics dc = runSmall(clusteredDcl1(40, 10));
    EXPECT_GT(dc.noc1Flits, 0u);
    EXPECT_GT(dc.noc2Flits, 0u);
}

TEST(GpuSystem, DistributedCtaReducesReplication)
{
    const RunMetrics rr = runSmall(baselineDesign());
    const RunMetrics dist =
        runSmall(withDistributedCta(baselineDesign()));
    EXPECT_LT(dist.replicationRatio, rr.replicationRatio);
}

TEST(GpuSystem, DrainsCleanly)
{
    // Request conservation: after gating issue, every in-flight
    // request completes and every queue empties.
    for (const auto &d :
         {baselineDesign(), clusteredDcl1(40, 10, true),
          cdxbarDesign(false, false)}) {
        GpuSystem gpu(SystemConfig(), d, sharedHeavyApp());
        gpu.run(1500, 1500);
        EXPECT_TRUE(gpu.drain()) << d.name;
        EXPECT_FALSE(gpu.busy()) << d.name;
    }
}

TEST(GpuSystem, DumpStatsContainsComponents)
{
    GpuSystem gpu(SystemConfig(), clusteredDcl1(40, 10),
                  sharedHeavyApp());
    gpu.run(1000, 1000);
    std::ostringstream os;
    gpu.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("gpu.core0.instructions"), std::string::npos);
    EXPECT_NE(out.find("gpu.node0.dcl1.accesses"), std::string::npos);
    EXPECT_NE(out.find("gpu.replication.misses"), std::string::npos);
    EXPECT_NE(out.find("gpu.dram0.reads"), std::string::npos);
    EXPECT_NE(out.find("gpu.noc1.req0.packets"), std::string::npos);
}

TEST(GpuSystem, FullLineRepliesMoveMoreNoc1Flits)
{
    // Ablating the paper's Sec. III "only requested data" choice must
    // inflate NoC#1 traffic for the same work.
    const RunMetrics sector = runSmall(clusteredDcl1(40, 10));
    const RunMetrics full =
        runSmall(withFullLineReplies(clusteredDcl1(40, 10)));
    const double sector_fpi =
        double(sector.noc1Flits) / double(sector.instructions);
    const double full_fpi =
        double(full.noc1Flits) / double(full.instructions);
    EXPECT_GT(full_fpi, 1.5 * sector_fpi);
}

TEST(GpuSystem, ReplacementPolicyKnobChangesBehaviour)
{
    workload::WorkloadParams p = sharedHeavyApp();
    p.sharedLines = 200; // near-capacity: policy matters
    SystemConfig lru_sys, rnd_sys;
    rnd_sys.l1Repl = mem::ReplPolicy::Random;
    GpuSystem lru(lru_sys, baselineDesign(), p);
    lru.run(3000, 6000);
    GpuSystem rnd(rnd_sys, baselineDesign(), p);
    rnd.run(3000, 6000);
    EXPECT_NE(lru.metrics().l1Misses, rnd.metrics().l1Misses);
}

TEST(GpuSystem, TraceSourceInjection)
{
    std::istringstream trace("0 0 R 1000 32\n"
                             "0 0 X 4\n"
                             "1 0 R 2000 32\n");
    workload::WorkloadParams shell;
    shell.name = "trace";
    GpuSystem gpu(SystemConfig(), baselineDesign(), shell,
                  std::make_unique<workload::TraceFileSource>(trace, 80));
    gpu.run(500, 500);
    EXPECT_GT(gpu.metrics().instructions, 0u);
    EXPECT_GT(gpu.metrics().l1Accesses, 0u);
}

TEST(GpuSystem, TickOnceAdvancesCycle)
{
    GpuSystem gpu(SystemConfig(), baselineDesign(), sharedHeavyApp());
    const Cycle before = gpu.cycle();
    gpu.tickOnce();
    EXPECT_EQ(gpu.cycle(), before + 1);
}

TEST(GpuSystem, MetricsAfterResetCoverOnlyInterval)
{
    GpuSystem gpu(SystemConfig(), baselineDesign(), sharedHeavyApp());
    gpu.run(2000, 2000);
    const RunMetrics rm = gpu.metrics();
    EXPECT_EQ(rm.cycles, 2000u);
}

} // anonymous namespace
