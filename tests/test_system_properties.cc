/**
 * @file
 * Cross-cutting system property sweeps (TEST_P): for random
 * (design, workload-profile, seed) combinations the simulated machine
 * must preserve its core invariants — request conservation via drain,
 * replication bounds of each organization, monotone capacity effects,
 * and determinism.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/gpu_system.hh"
#include "workload/workload.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::core;

/** (clusters selector, workload profile id, seed) */
using Param = std::tuple<int, int, int>;

DesignConfig
designFor(int id)
{
    switch (id) {
      case 0:
        return baselineDesign();
      case 1:
        return privateDcl1(40);
      case 2:
        return sharedDcl1(40);
      case 3:
        return clusteredDcl1(40, 10);
      case 4:
        return clusteredDcl1(40, 10, true);
      default:
        return clusteredDcl1(40, 20);
    }
}

workload::WorkloadParams
profileFor(int id)
{
    workload::WorkloadParams p;
    p.name = "prop" + std::to_string(id);
    p.warpsPerCore = 16;
    switch (id) {
      case 0: // shared-heavy, replication-prone
        p.memRatio = 0.4;
        p.sharedLines = 700;
        p.sharedFrac = 0.9;
        break;
      case 1: // private streaming
        p.memRatio = 0.2;
        p.privateLines = 3000;
        break;
      case 2: // camping hot-cold with writes
        p.memRatio = 0.4;
        p.sharedLines = 300;
        p.sharedFrac = 0.6;
        p.sharedPattern = workload::Pattern::HotCold;
        p.hotLines = 8;
        p.hotProb = 0.8;
        p.writeFrac = 0.15;
        break;
      default: // mixed with atomics/bypass
        p.memRatio = 0.5;
        p.sharedLines = 1000;
        p.sharedFrac = 0.5;
        p.privateLines = 500;
        p.atomicFrac = 0.03;
        p.bypassFrac = 0.03;
        p.coalescedAccesses = 3;
        break;
    }
    return p;
}

class SystemPropertyTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(SystemPropertyTest, InvariantsHold)
{
    const auto [design_id, profile_id, seed] = GetParam();
    const DesignConfig design = designFor(design_id);
    const workload::WorkloadParams app = profileFor(profile_id);
    SystemConfig sys;
    sys.seed = static_cast<std::uint64_t>(seed);

    GpuSystem gpu(sys, design, app);
    gpu.run(2500, 2500);
    const RunMetrics rm = gpu.metrics();

    // Progress and sane rates.
    EXPECT_GT(rm.instructions, 0u);
    EXPECT_LE(rm.ipc, double(sys.numCores));
    EXPECT_GE(rm.l1MissRate, 0.0);
    EXPECT_LE(rm.l1MissRate, 1.0);
    EXPECT_GE(rm.avgReadLatency, 1.0);

    // Organization-specific replication bounds.
    if (design.topology == Topology::DcL1) {
        const std::uint32_t max_copies = design.clusters;
        auto &tracker = gpu.tracker();
        for (LineAddr l = 0; l < 64; ++l)
            EXPECT_LE(tracker.copies(l), max_copies) << design.name;
        if (design.clusters == 1) {
            EXPECT_DOUBLE_EQ(rm.replicationRatio, 0.0);
        }
    }

    // Request conservation: everything in flight completes.
    EXPECT_TRUE(gpu.drain(300000)) << design.name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystemPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 7)));

/** Determinism across the whole grid: rerunning a cell matches. */
TEST(SystemPropertyExtra, GridDeterminism)
{
    for (int design_id : {0, 2, 4}) {
        SystemConfig sys;
        sys.seed = 5;
        auto once = [&]() {
            GpuSystem gpu(sys, designFor(design_id), profileFor(3));
            gpu.run(1500, 1500);
            return gpu.metrics();
        };
        const RunMetrics a = once();
        const RunMetrics b = once();
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.l1Misses, b.l1Misses);
        EXPECT_EQ(a.noc2Flits, b.noc2Flits);
        EXPECT_EQ(a.dramReads, b.dramReads);
    }
}

/** Capacity monotonicity: more L1 never hurts the miss count much. */
TEST(SystemPropertyExtra, CapacityMonotoneOnCapacitySensitiveApp)
{
    workload::WorkloadParams p = profileFor(0);
    double prev = 1.1;
    for (double scale : {1.0, 4.0, 16.0}) {
        DesignConfig d = baselineDesign();
        if (scale != 1.0)
            d = withCapacityScale(d, scale);
        GpuSystem gpu(SystemConfig(), d, p);
        gpu.run(3000, 10000);
        const double mr = gpu.metrics().l1MissRate;
        EXPECT_LE(mr, prev + 0.05) << scale;
        prev = mr;
    }
}

} // anonymous namespace
