/**
 * @file
 * Tests for the fleet-coordination layer: file-based cell leases
 * (claim / renew / reclaim), the heartbeat renewal thread, the
 * JobRunner's CellCoordinator integration (deferred and lost cells),
 * cross-process manifest refresh, the coordinator summary, and the
 * DCL1_CHAOS fault-injection spec parser.
 *
 * Suite names matter: CI's TSan and -Wthread-safety lanes select
 * `Lease|Heartbeat|Fleet` by regex.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "common/log.hh"
#include "exec/atomic_file.hh"
#include "exec/chaos.hh"
#include "exec/exit_codes.hh"
#include "exec/heartbeat.hh"
#include "exec/job_runner.hh"
#include "exec/lease.hh"
#include "exec/result_sink.hh"
#include "exec/run_manifest.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::exec;

// Host-paced sleeps/polls below are test scheduling, never simulated
// time (tests are outside the no-wallclock lint's scope).
void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** Unlink every regular file in @p dir (one level; no recursion). */
void
clearDirectory(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    while (const struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name != "." && name != "..")
            ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
}

/**
 * Per-test scratch run directory, wiped of manifest, WAL and leases a
 * previous (possibly killed) test run left behind.
 */
std::string
freshRunDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() +
                            csprintf("dcl1-fleet-%d-", int(getpid())) +
                            name;
    ensureDirectory(dir);
    std::remove((dir + "/manifest.json").c_str());
    std::remove(csprintf("%s/manifest.json.tmp.%d", dir.c_str(),
                         int(getpid()))
                    .c_str());
    std::remove((dir + "/jobs.jsonl").c_str());
    clearDirectory(dir + "/leases");
    return dir;
}

/** A worker identity that is guaranteed dead: no such pid exists. */
WorkerIdentity
deadIdentity(const std::string &id)
{
    WorkerIdentity who = WorkerIdentity::local(id);
    who.pid = 999999999; // beyond pid_max on any Linux config
    return who;
}

ExecOptions
quietOpts(unsigned jobs)
{
    ExecOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    return opts;
}

/** Deterministic synthetic cell: metrics are a pure function of @p i. */
JobSpec
synthSpec(std::size_t i)
{
    JobSpec spec;
    spec.label = csprintf("synth/cell-%zu", i);
    spec.key = csprintf("design=S%zu|app=synth|seed=%zu", i, i);
    spec.fn = [i](JobContext &) {
        core::RunMetrics rm;
        rm.cycles = 1000 + i;
        rm.instructions = 500 * (i + 1);
        rm.ipc = 1.0 / double(3 + i); // infinite decimal: %.17g test
        rm.l1MissRate = 0.25 * double(i);
        rm.avgReadLatency = 100.0 + double(i) / 3.0;
        return rm;
    };
    return spec;
}

std::string
csvOf(const std::vector<JobResult> &results)
{
    std::string csv = "label,ipc,l1_miss_rate,avg_read_latency\n";
    for (const auto &r : results)
        csv += csprintf("%s,%.17g,%.17g,%.17g\n", r.label.c_str(),
                        r.metrics.ipc, r.metrics.l1MissRate,
                        r.metrics.avgReadLatency);
    return csv;
}

/** Captures the end-of-run summary for assertions. */
class SummarySink : public ResultSink
{
  public:
    RunSummary last;

    void
    onRunEnd(const RunSummary &summary,
             const std::vector<JobResult> &) override
    {
        last = summary;
    }
};

// ---------------------------------------------------------------- Lease

TEST(Lease, ClaimIsExclusiveUntilReleased)
{
    const std::string dir = freshRunDir("claim");
    LeaseDir a(dir, WorkerIdentity::local("wa"), 60000);
    LeaseDir b(dir, WorkerIdentity::local("wb"), 60000);
    const std::string key = "design=A|app=x|seed=0";

    EXPECT_TRUE(a.tryClaim(key));
    EXPECT_TRUE(a.owned(key));
    EXPECT_FALSE(b.tryClaim(key)); // O_EXCL lost: exactly one winner
    EXPECT_FALSE(b.owned(key));

    a.release(key);
    EXPECT_FALSE(a.owned(key));
    EXPECT_TRUE(b.tryClaim(key)); // claimable again after release
    b.release(key);

    EXPECT_EQ(a.counters().claims, 1u);
    EXPECT_EQ(a.counters().released, 1u);
    EXPECT_EQ(b.counters().claims, 1u);

    // Empty keys are never leased (unkeyed jobs bypass coordination).
    EXPECT_FALSE(a.tryClaim(""));
}

TEST(Lease, FileNameIsSanitizedAndCollisionResistant)
{
    const std::string ugly = "design=Sh40+C10|app=T-AlexNet/x|seed=1";
    const std::string name = LeaseDir::leaseFileName(ugly);
    EXPECT_EQ(name.find('|'), std::string::npos);
    EXPECT_EQ(name.find('/'), std::string::npos);
    EXPECT_EQ(name.find('+'), std::string::npos);
    EXPECT_EQ(name.find('='), std::string::npos);
    EXPECT_EQ(name.substr(name.size() - 6), ".lease");

    // Same sanitized prefix, different keys: the hash disambiguates.
    const std::string other = "design=Sh40-C10|app=T-AlexNet|x|seed=1";
    EXPECT_NE(name, LeaseDir::leaseFileName(other));
    // Stable across calls (cross-process file rendezvous).
    EXPECT_EQ(name, LeaseDir::leaseFileName(ugly));
}

TEST(Lease, RenewBumpsSequenceAndRefreshesLease)
{
    const std::string dir = freshRunDir("renew");
    LeaseDir a(dir, WorkerIdentity::local("wa"), 60000);
    const std::string key = "cell-renew";
    ASSERT_TRUE(a.tryClaim(key));
    EXPECT_TRUE(a.renew(key));
    EXPECT_TRUE(a.renew(key));

    std::size_t torn = 999;
    const auto leases = a.scan(&torn);
    ASSERT_EQ(leases.size(), 1u);
    EXPECT_EQ(torn, 0u);
    EXPECT_EQ(leases[0].key, key);
    EXPECT_EQ(leases[0].workerId, "wa");
    EXPECT_EQ(leases[0].seq, 3u); // claim=1, two renewals
    EXPECT_TRUE(leases[0].ownerAlive);
    EXPECT_EQ(a.counters().renewals, 2u);
}

TEST(Lease, RenewAfterReclamationReportsLossAndBlocksPublish)
{
    const std::string dir = freshRunDir("lost");
    LeaseDir a(dir, WorkerIdentity::local("wa"), 60000);
    const std::string key = "cell-lost";
    ASSERT_TRUE(a.tryClaim(key));

    // Simulate a reclaimer: the lease file vanishes under the owner.
    ::unlink((dir + "/leases/" + LeaseDir::leaseFileName(key)).c_str());

    EXPECT_FALSE(a.renew(key));            // ownership is gone
    EXPECT_FALSE(a.verifyForPublish(key)); // result must be dropped
    EXPECT_GE(a.counters().lost, 2u);      // both paths counted it
    a.release(key);                        // no-op, not owned
    EXPECT_EQ(a.counters().released, 0u);
}

TEST(Lease, TornFilesAreToleratedAndAgeOutAsDebris)
{
    const std::string dir = freshRunDir("torn");
    LeaseDir a(dir, WorkerIdentity::local("wa"), 5);
    // A worker killed between open and write leaves a truncated claim.
    {
        std::ofstream out(dir + "/leases/half-written.lease");
        out << "{\"key\":\"cel"; // no newline, no closing quote
    }

    std::size_t torn = 0;
    auto leases = a.scan(&torn);
    ASSERT_EQ(leases.size(), 1u); // the scan never throws or skips
    EXPECT_EQ(torn, 1u);
    EXPECT_TRUE(leases[0].torn);
    EXPECT_TRUE(leases[0].key.empty());

    // Fresh torn files may still be mid-write; old ones are debris
    // reclaimed by the same TTL rule as real leases.
    sleepMs(20);
    leases = a.scan(&torn);
    ASSERT_EQ(leases.size(), 1u);
    EXPECT_TRUE(a.stale(leases[0]));
    EXPECT_TRUE(a.reclaim(leases[0]));
    EXPECT_EQ(a.tombstoneCount(), 1u);
    EXPECT_TRUE(a.scan(&torn).empty());
}

TEST(Lease, StaleRequiresTtlExpiryAndNeverOwnLease)
{
    const std::string dir = freshRunDir("stale");
    LeaseDir mine(dir, WorkerIdentity::local("wa"), 30);
    LeaseDir dead(dir, deadIdentity("dead"), 30);

    ASSERT_TRUE(mine.tryClaim("cell-own"));
    ASSERT_TRUE(dead.tryClaim("cell-dead"));

    for (const auto &info : mine.scan()) {
        // Nothing is stale before the TTL, dead owner or not.
        EXPECT_FALSE(mine.stale(info)) << info.key;
    }
    EXPECT_EQ(mine.orphanCount(), 1u); // dead pid is visible debris

    sleepMs(60);
    std::size_t reclaimed = 0;
    for (const auto &info : mine.scan()) {
        if (info.workerId == "wa") {
            // Our own held lease is never stale to us, however old:
            // the heartbeat may merely be slow, and self-reclamation
            // would guarantee the publish-time loss it exists to stop.
            EXPECT_FALSE(mine.stale(info));
            continue;
        }
        EXPECT_TRUE(mine.stale(info));
        reclaimed += mine.reclaim(info) ? 1 : 0;
    }
    EXPECT_EQ(reclaimed, 1u);
    EXPECT_EQ(mine.counters().reclamations, 1u);
    mine.release("cell-own");
}

TEST(Lease, ConcurrentReclamationHasExactlyOneWinner)
{
    const std::string dir = freshRunDir("race");
    LeaseDir dead(dir, deadIdentity("dead"), 1);
    ASSERT_TRUE(dead.tryClaim("cell-contested"));
    sleepMs(15); // age the lease past its 1 ms TTL

    // N workers spot the same stale lease and race to reclaim it;
    // rename(2) must pick exactly one winner.
    constexpr int kWorkers = 8;
    std::vector<std::unique_ptr<LeaseDir>> dirs;
    for (int i = 0; i < kWorkers; ++i)
        dirs.push_back(std::make_unique<LeaseDir>(
            dir, WorkerIdentity::local(csprintf("w%d", i)), 1));
    const auto leases = dirs[0]->scan();
    ASSERT_EQ(leases.size(), 1u);
    ASSERT_TRUE(dirs[0]->stale(leases[0]));

    std::atomic<int> wins{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kWorkers; ++i) {
        threads.emplace_back([&, i] {
            if (dirs[i]->reclaim(leases[0]))
                wins.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(wins.load(), 1);
    EXPECT_EQ(dirs[0]->tombstoneCount(), 1u);
    EXPECT_TRUE(dirs[0]->scan().empty());
    // The cell is claimable again — the crash-recovery retry path.
    EXPECT_TRUE(dirs[0]->tryClaim("cell-contested"));
}

// ------------------------------------------------------------ Heartbeat

TEST(Heartbeat, RenewsTrackedLeases)
{
    const std::string dir = freshRunDir("beat");
    LeaseDir a(dir, WorkerIdentity::local("wa"), 60000);
    const std::string key = "cell-beating";
    ASSERT_TRUE(a.tryClaim(key));

    HeartbeatThread hb(a, 5);
    hb.track(key);
    hb.start();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (hb.beats() < 3 &&
           std::chrono::steady_clock::now() < deadline)
        sleepMs(5);
    hb.stop();
    hb.stop(); // idempotent

    EXPECT_GE(hb.beats(), 3u);
    EXPECT_GE(a.counters().renewals, 3u);
    const auto leases = a.scan();
    ASSERT_EQ(leases.size(), 1u);
    EXPECT_GE(leases[0].seq, 4u); // claim=1 plus >= 3 renewals
    EXPECT_FALSE(hb.lost(key));
    a.release(key);
}

TEST(Heartbeat, DetectsReclaimedLeaseAsLost)
{
    const std::string dir = freshRunDir("beat-lost");
    LeaseDir a(dir, WorkerIdentity::local("wa"), 60000);
    const std::string key = "cell-reclaimed-under-us";
    ASSERT_TRUE(a.tryClaim(key));

    HeartbeatThread hb(a, 5);
    hb.track(key);
    hb.start();
    // A reclaimer takes the lease while the owner is mid-simulation.
    ::unlink((dir + "/leases/" + LeaseDir::leaseFileName(key)).c_str());

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (!hb.lost(key) &&
           std::chrono::steady_clock::now() < deadline)
        sleepMs(5);
    hb.stop();

    EXPECT_TRUE(hb.lost(key)); // the failed renewal flagged the loss
    EXPECT_GE(a.counters().lost, 1u);
}

// ---------------------------------------------------------------- Fleet

TEST(Fleet, DeferredWhenAnotherWorkerHoldsTheCell)
{
    const std::string dir = freshRunDir("defer");
    std::vector<JobSpec> specs = {synthSpec(0), synthSpec(1)};

    // Another live worker already owns cell 0.
    LeaseDir other(dir, WorkerIdentity::local("other"), 60000);
    ASSERT_TRUE(other.tryClaim(specs[0].key));

    auto manifest = RunManifest::openOrCreate(dir, "fleet-defer");
    LeaseDir mine(dir, WorkerIdentity::local("me"), 60000);
    LeaseCoordinator coordinator(mine, nullptr);
    JobRunner runner(quietOpts(1));
    runner.attachManifest(manifest.get());
    runner.attachCoordinator(&coordinator);
    SummarySink summary;
    runner.addSink(&summary);
    const auto results = runner.run(specs);

    EXPECT_TRUE(results[0].deferred); // busy elsewhere, not failed
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 0u);
    EXPECT_TRUE(results[1].ok);
    EXPECT_EQ(summary.last.deferredJobs, 1u);
    EXPECT_EQ(summary.last.failedJobs, 0u);
    EXPECT_EQ(manifest->completedCount(), 1u);

    // The holder finishes and releases; the next round picks it up.
    other.release(specs[0].key);
    const auto retry = runner.run(specs);
    EXPECT_TRUE(retry[0].ok);
    EXPECT_TRUE(retry[1].resumed);
    EXPECT_EQ(manifest->completedCount(), 2u);
}

TEST(Fleet, ZombieResultIsDroppedUnpublished)
{
    const std::string dir = freshRunDir("zombie");
    // The cell simulates the zombie scenario from inside: while it
    // "runs", its lease is reclaimed out from under it.
    JobSpec spec = synthSpec(0);
    const std::string lease_file =
        dir + "/leases/" + LeaseDir::leaseFileName(spec.key);
    const auto inner = spec.fn;
    spec.fn = [inner, lease_file](JobContext &ctx) {
        ::unlink(lease_file.c_str());
        return inner(ctx);
    };

    auto manifest = RunManifest::openOrCreate(dir, "fleet-zombie");
    LeaseDir mine(dir, WorkerIdentity::local("me"), 60000);
    LeaseCoordinator coordinator(mine, nullptr);
    JobRunner runner(quietOpts(1));
    runner.attachManifest(manifest.get());
    runner.attachCoordinator(&coordinator);
    SummarySink summary;
    runner.addSink(&summary);
    const auto results = runner.run({spec});

    // Executed fine — but the pre-publish ownership check failed, so
    // nothing may land in the WAL (the reclaimer's re-run owns it).
    EXPECT_TRUE(results[0].lost);
    EXPECT_EQ(summary.last.lostJobs, 1u);
    EXPECT_EQ(summary.last.failedJobs, 0u);
    EXPECT_EQ(manifest->completedCount(), 0u);
    EXPECT_GE(mine.counters().lost, 1u);

    std::ifstream wal(dir + "/jobs.jsonl");
    std::string line;
    while (std::getline(wal, line))
        EXPECT_EQ(line.find(spec.key), std::string::npos) << line;
}

TEST(Fleet, AbandonedClaimsAreReclaimedAndResumeByteIdentically)
{
    // In-process analog of the kill-3-of-4 fleet scenario: a worker
    // dies holding claims on two cells; a survivor reclaims them and
    // the merged output must match an undisturbed run byte for byte.
    std::vector<JobSpec> specs;
    for (std::size_t i = 0; i < 4; ++i)
        specs.push_back(synthSpec(i));

    // Reference: the same batch, no fleet machinery.
    const std::string ref_dir = freshRunDir("ref");
    std::string ref_csv;
    {
        auto manifest = RunManifest::openOrCreate(ref_dir, "fleet-id");
        JobRunner runner(quietOpts(1));
        runner.attachManifest(manifest.get());
        ref_csv = csvOf(runner.run(specs));
    }

    const std::string dir = freshRunDir("crashed");
    LeaseDir dead(dir, deadIdentity("dead"), 40);
    ASSERT_TRUE(dead.tryClaim(specs[1].key));
    ASSERT_TRUE(dead.tryClaim(specs[2].key));

    auto manifest = RunManifest::openOrCreate(dir, "fleet-id");
    LeaseDir mine(dir, WorkerIdentity::local("survivor"), 40);
    LeaseCoordinator coordinator(mine, nullptr);
    JobRunner runner(quietOpts(1));
    runner.attachManifest(manifest.get());
    runner.attachCoordinator(&coordinator);

    // Round 1: the dead worker's cells defer; the rest complete.
    const auto round1 = runner.run(specs);
    EXPECT_TRUE(round1[0].ok);
    EXPECT_TRUE(round1[1].deferred);
    EXPECT_TRUE(round1[2].deferred);
    EXPECT_TRUE(round1[3].ok);
    EXPECT_EQ(manifest->completedCount(), 2u);

    // The dcl1sweep worker round loop: age out, reclaim, go again.
    sleepMs(80);
    std::size_t reclaimed = 0;
    for (const auto &info : mine.scan())
        if (mine.stale(info) && mine.reclaim(info))
            ++reclaimed;
    EXPECT_EQ(reclaimed, 2u);
    EXPECT_EQ(mine.tombstoneCount(), 2u);

    // Round 2: reclaimed cells run fresh, finished ones resume.
    manifest->refresh();
    const auto round2 = runner.run(specs);
    EXPECT_TRUE(round2[0].resumed);
    EXPECT_FALSE(round2[1].resumed);
    EXPECT_TRUE(round2[1].ok);
    EXPECT_FALSE(round2[2].resumed);
    EXPECT_TRUE(round2[2].ok);
    EXPECT_TRUE(round2[3].resumed);
    EXPECT_EQ(manifest->completedCount(), 4u);

    EXPECT_EQ(csvOf(round2), ref_csv);
    EXPECT_EQ(mine.counters().reclamations, 2u);
    EXPECT_EQ(mine.counters().lost, 0u);
}

TEST(Fleet, ManifestRefreshAbsorbsForeignAppends)
{
    const std::string dir = freshRunDir("refresh");
    auto mine = RunManifest::openOrCreate(dir, "fleet-refresh");
    auto theirs = RunManifest::openOrCreate(dir, "fleet-refresh");

    JobRecord rec;
    rec.key = "design=B|app=y|seed=2";
    rec.label = "B/y";
    rec.ok = true;
    rec.metrics.ipc = 0.5;
    theirs->append(rec);

    // Invisible to this process until the between-rounds refresh.
    EXPECT_EQ(mine->find(rec.key), nullptr);
    EXPECT_EQ(mine->refresh(), 1u);
    ASSERT_NE(mine->find(rec.key), nullptr);
    EXPECT_EQ(mine->find(rec.key)->label, "B/y");
    EXPECT_EQ(mine->refresh(), 0u); // idempotent when nothing new
}

TEST(Fleet, CoordinatorSummarySurvivesReopen)
{
    const std::string dir = freshRunDir("summary");
    const std::string summary =
        "{\"workers\":2,\"claims\":5,\"reclamations\":3}";
    {
        auto manifest = RunManifest::openOrCreate(dir, "fleet-sum");
        EXPECT_EQ(manifest->coordinatorSummary(), "");
        manifest->setCoordinatorSummary(summary);
        manifest->finalize("complete");
    }
    // The next worker (or a human with an editor) sees the record.
    std::ifstream in(dir + "/manifest.json");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"coordinator\":" + summary),
              std::string::npos);

    auto reopened = RunManifest::openOrCreate(dir, "fleet-sum");
    EXPECT_EQ(reopened->coordinatorSummary(), summary);
}

TEST(Fleet, ChaosSpecParses)
{
    const ChaosConfig off = ChaosConfig::parse("");
    EXPECT_FALSE(off.any());
    EXPECT_EQ(off.killAfterCells, 0u);

    const ChaosConfig cfg = ChaosConfig::parse(
        "kill-after=2,kill-at-cycle=5000,drop-heartbeat");
    EXPECT_TRUE(cfg.any());
    EXPECT_EQ(cfg.killAfterCells, 2u);
    EXPECT_EQ(cfg.killAtCycle, 5000u);
    EXPECT_TRUE(cfg.dropHeartbeat);

    // Tokens compose in any order; stray commas are harmless.
    const ChaosConfig hb = ChaosConfig::parse(",drop-heartbeat,");
    EXPECT_TRUE(hb.dropHeartbeat);
    EXPECT_EQ(hb.killAfterCells, 0u);
}

// ------------------------------------------------------- FleetDeathTest

TEST(FleetDeathTest, ChaosSpecRejectsUnknownTokens)
{
    EXPECT_EXIT(ChaosConfig::parse("explode=1"),
                ::testing::ExitedWithCode(1), "unknown token");
    EXPECT_EXIT(ChaosConfig::parse("kill-after"),
                ::testing::ExitedWithCode(1), "needs a value");
    EXPECT_EXIT(ChaosConfig::parse("drop-heartbeat=1"),
                ::testing::ExitedWithCode(1), "takes no value");
    EXPECT_EXIT(ChaosConfig::parse("kill-after=nope"),
                ::testing::ExitedWithCode(1), "kill-after");
}

TEST(FleetDeathTest, LeaseDirRejectsBrokenConfiguration)
{
    const std::string dir = freshRunDir("bad-config");
    EXPECT_EXIT(LeaseDir(dir, WorkerIdentity::local("w"), 0),
                ::testing::ExitedWithCode(1), "TTL must be positive");
    EXPECT_EXIT(LeaseDir(dir, WorkerIdentity::local(""), 1000),
                ::testing::ExitedWithCode(1), "empty worker id");
    EXPECT_EXIT(LeaseDir("", WorkerIdentity::local("w"), 1000),
                ::testing::ExitedWithCode(1), "empty run-directory");
}

} // namespace
