/** @file Unit tests for the replication presence directory. */

#include <gtest/gtest.h>

#include "mem/replication_tracker.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::mem;

TEST(Replication, InstallAndCopies)
{
    ReplicationTracker t(80);
    EXPECT_EQ(t.copies(5), 0u);
    t.onInstall(0, 5);
    t.onInstall(1, 5);
    t.onInstall(79, 5);
    EXPECT_EQ(t.copies(5), 3u);
}

TEST(Replication, DuplicateInstallIgnored)
{
    ReplicationTracker t(8);
    t.onInstall(3, 9);
    t.onInstall(3, 9);
    EXPECT_EQ(t.copies(9), 1u);
}

TEST(Replication, EvictRemoves)
{
    ReplicationTracker t(8);
    t.onInstall(0, 1);
    t.onInstall(1, 1);
    t.onEvict(0, 1);
    EXPECT_EQ(t.copies(1), 1u);
    t.onEvict(1, 1);
    EXPECT_EQ(t.copies(1), 0u);
    t.onEvict(1, 1); // idempotent
    EXPECT_EQ(t.copies(1), 0u);
}

TEST(Replication, PresentElsewhere)
{
    ReplicationTracker t(8);
    t.onInstall(0, 7);
    EXPECT_FALSE(t.presentElsewhere(0, 7));
    EXPECT_TRUE(t.presentElsewhere(1, 7));
    t.onInstall(1, 7);
    EXPECT_TRUE(t.presentElsewhere(0, 7));
}

TEST(Replication, RatioCountsReplicatedMisses)
{
    ReplicationTracker t(4);
    t.onInstall(0, 10);
    t.onMiss(1, 10); // replicated: cache 0 has it
    t.onMiss(1, 11); // not replicated
    EXPECT_EQ(t.totalMisses(), 2u);
    EXPECT_EQ(t.replicatedMisses(), 1u);
    EXPECT_DOUBLE_EQ(t.replicationRatio(), 0.5);
}

TEST(Replication, SelfCopyDoesNotCountAsElsewhere)
{
    ReplicationTracker t(4);
    t.onInstall(2, 3);
    t.onMiss(2, 3); // only this cache holds it (stale miss)
    EXPECT_EQ(t.replicatedMisses(), 0u);
}

TEST(Replication, AvgReplicas)
{
    ReplicationTracker t(4);
    // First install sees 1 copy, second 2, third 3.
    t.onInstall(0, 1);
    t.onInstall(1, 1);
    t.onInstall(2, 1);
    EXPECT_DOUBLE_EQ(t.avgReplicas(), 2.0);
}

TEST(Replication, ResetStatsKeepsPresence)
{
    ReplicationTracker t(4);
    t.onInstall(0, 1);
    t.onMiss(1, 1);
    t.resetStats();
    EXPECT_EQ(t.totalMisses(), 0u);
    // Presence survives the stat reset.
    EXPECT_EQ(t.copies(1), 1u);
}

TEST(Replication, HighCacheIds)
{
    ReplicationTracker t(128);
    t.onInstall(127, 42);
    t.onInstall(64, 42);
    EXPECT_EQ(t.copies(42), 2u);
    EXPECT_TRUE(t.presentElsewhere(0, 42));
    t.onEvict(127, 42);
    EXPECT_EQ(t.copies(42), 1u);
}

TEST(Replication, RejectsTooManyCaches)
{
    EXPECT_EXIT(ReplicationTracker(129), ::testing::ExitedWithCode(1),
                "1..128");
}

} // anonymous namespace
