/**
 * @file
 * Tests for the DSENT-like NoC model and CACTI-like cache area model,
 * checked against the paper's published relative numbers.
 */

#include <gtest/gtest.h>

#include "core/design.hh"
#include "power/cache_model.hh"
#include "power/energy_model.hh"
#include "power/xbar_model.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::core;
using namespace dcl1::power;

double
areaOf(const DesignConfig &d)
{
    SystemConfig sys;
    XbarModel model;
    return model.cost(crossbarInventory(d, sys)).areaMm2;
}

double
powerOf(const DesignConfig &d)
{
    SystemConfig sys;
    XbarModel model;
    return model.cost(crossbarInventory(d, sys)).staticPowerW;
}

TEST(XbarModel, Fig6PrivateAreaTrend)
{
    const double base = areaOf(baselineDesign());
    // Paper Fig. 6: Pr80 ~= baseline; Pr40 -28 %; Pr20 -54 %; Pr10 -67 %.
    EXPECT_NEAR(areaOf(privateDcl1(80)) / base, 1.0, 0.1);
    EXPECT_NEAR(areaOf(privateDcl1(40)) / base, 0.72, 0.08);
    EXPECT_NEAR(areaOf(privateDcl1(20)) / base, 0.46, 0.08);
    EXPECT_NEAR(areaOf(privateDcl1(10)) / base, 0.33, 0.08);
}

TEST(XbarModel, Sh40AreaOverhead)
{
    // Paper Sec. V-B: Sh40 -> +69 % NoC area.
    const double ratio = areaOf(sharedDcl1(40)) / areaOf(baselineDesign());
    EXPECT_NEAR(ratio, 1.69, 0.15);
}

TEST(XbarModel, Fig12ClusteredAreaSavings)
{
    const double base = areaOf(baselineDesign());
    // Paper Fig. 12: C5 -45 %, C10 -50 %, C20 -45 %.
    EXPECT_NEAR(areaOf(clusteredDcl1(40, 5)) / base, 0.55, 0.08);
    EXPECT_NEAR(areaOf(clusteredDcl1(40, 10)) / base, 0.50, 0.08);
    EXPECT_NEAR(areaOf(clusteredDcl1(40, 20)) / base, 0.55, 0.08);
}

TEST(XbarModel, StaticPowerTrends)
{
    const double base = powerOf(baselineDesign());
    // Paper: Pr40 -4 %, Sh40 +57 %, C10 -16 % (we accept +-10 pts).
    EXPECT_NEAR(powerOf(privateDcl1(40)) / base, 0.96, 0.10);
    EXPECT_GT(powerOf(sharedDcl1(40)) / base, 1.4);
    EXPECT_NEAR(powerOf(clusteredDcl1(40, 10)) / base, 0.84, 0.10);
    // Pr20 and Pr10 reduce static power more than Pr40 (Sec. IV-B).
    EXPECT_LT(powerOf(privateDcl1(20)), powerOf(privateDcl1(40)));
    EXPECT_LT(powerOf(privateDcl1(10)), powerOf(privateDcl1(20)));
}

TEST(XbarModel, Fig13bMaxFrequency)
{
    XbarModel model;
    const double f_base = model.maxFrequencyGHz(80, 32);
    const double f_sh40 = model.maxFrequencyGHz(80, 40);
    const double f_cluster = model.maxFrequencyGHz(8, 4);
    const double f_pr40 = model.maxFrequencyGHz(2, 1);
    // Paper Fig. 13b: 80x32 and 80x40 cannot run at 2x 700 MHz; the
    // small 8x4 and 2x1 crossbars can.
    EXPECT_LT(f_base, 1.4);
    EXPECT_LT(f_sh40, 1.4);
    EXPECT_GT(f_cluster, 1.4);
    EXPECT_GT(f_pr40, f_cluster);
    EXPECT_GT(f_cluster, f_sh40);
}

TEST(XbarModel, FlitEnergyGrowsWithSizeAndLength)
{
    XbarModel model;
    XbarGeometry small{8, 4, 1, 1.0, 3.3, 1};
    XbarGeometry big{80, 32, 1, 0.5, 12.3, 2};
    EXPECT_GT(model.flitEnergyPj(big), model.flitEnergyPj(small));
}

TEST(CacheModel, Fig18bQueueOverhead)
{
    // Four 4-entry 128 B queues per node over 40 nodes = 6.25 % of the
    // 1.25 MB total L1 capacity (paper Sec. VIII).
    SystemConfig sys;
    CacheAreaModel model;
    const auto dc = model.l1Breakdown(clusteredDcl1(40, 10, true), sys);
    const double total_l1 = 80.0 * 16.0 * 1024.0;
    EXPECT_NEAR(dc.queueArea / total_l1, 0.0625, 1e-9);
}

TEST(CacheModel, Fig18bCacheAreaSavings)
{
    // Aggregating 80 banks into 40 saves ~8 % cache area.
    SystemConfig sys;
    CacheAreaModel model;
    const auto base = model.l1Breakdown(baselineDesign(), sys);
    const auto dc = model.l1Breakdown(clusteredDcl1(40, 10, true), sys);
    EXPECT_EQ(base.banks, 80u);
    EXPECT_EQ(dc.banks, 40u); // "50 % fewer cache ports"
    const double savings = 1.0 - dc.cacheArea / base.cacheArea;
    EXPECT_NEAR(savings, 0.08, 0.04);
}

TEST(EnergyModel, StaticMatchesXbarModel)
{
    SystemConfig sys;
    NocEnergyModel model;
    RunMetrics rm;
    rm.cycles = 10000;
    const auto report =
        model.evaluate(clusteredDcl1(40, 10, true), sys, rm);
    XbarModel xm;
    const double expect =
        xm.cost(crossbarInventory(clusteredDcl1(40, 10, true), sys))
            .staticPowerW;
    EXPECT_DOUBLE_EQ(report.staticPowerW, expect);
    EXPECT_DOUBLE_EQ(report.dynamicPowerW, 0.0); // no flits recorded
}

TEST(EnergyModel, DynamicScalesWithFlits)
{
    SystemConfig sys;
    NocEnergyModel model;
    RunMetrics rm;
    rm.cycles = 10000;
    rm.noc1Flits = 1000;
    rm.noc2Flits = 1000;
    const auto r1 = model.evaluate(clusteredDcl1(40, 10), sys, rm);
    rm.noc1Flits = 2000;
    rm.noc2Flits = 2000;
    const auto r2 = model.evaluate(clusteredDcl1(40, 10), sys, rm);
    EXPECT_NEAR(r2.dynamicPowerW, 2.0 * r1.dynamicPowerW, 1e-12);
    EXPECT_GT(r2.energyUj, r1.energyUj);
}

TEST(EnergyModel, Noc2FlitsCostMoreThanNoc1)
{
    // Long 12.3 mm links and big crossbars make NoC#2 flits pricier.
    SystemConfig sys;
    NocEnergyModel model;
    RunMetrics a, b;
    a.cycles = b.cycles = 1000;
    a.noc1Flits = 1000;
    b.noc2Flits = 1000;
    const auto ra = model.evaluate(clusteredDcl1(40, 10), sys, a);
    const auto rb = model.evaluate(clusteredDcl1(40, 10), sys, b);
    EXPECT_GT(rb.dynamicPowerW, ra.dynamicPowerW);
}

} // anonymous namespace
