/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::mem;

MemRequestPtr
req(Addr addr, CoreId core = 0)
{
    return makeRequest(MemOp::Read, addr, 32, core, 0, 0);
}

TEST(Mshr, NewEntryThenMerge)
{
    Mshr mshr(4, 4);
    auto r1 = req(0x1000);
    EXPECT_EQ(mshr.registerMiss(32, r1), MshrOutcome::NewEntry);
    EXPECT_TRUE(r1); // caller keeps the primary
    EXPECT_TRUE(mshr.hasEntry(32));

    auto r2 = req(0x1000, 1);
    EXPECT_EQ(mshr.registerMiss(32, r2), MshrOutcome::Merged);
    EXPECT_FALSE(r2); // consumed into the entry
}

TEST(Mshr, CompleteFetchReturnsTargets)
{
    Mshr mshr(4, 4);
    auto r1 = req(0x1000, 0);
    mshr.registerMiss(32, r1);
    auto r2 = req(0x1000, 1);
    auto r3 = req(0x1000, 2);
    mshr.registerMiss(32, r2);
    mshr.registerMiss(32, r3);

    auto targets = mshr.completeFetch(32);
    EXPECT_EQ(targets.size(), 2u);
    EXPECT_FALSE(mshr.hasEntry(32));
    // Cross-core merge preserved the requests.
    EXPECT_EQ(targets[0]->core, 1u);
    EXPECT_EQ(targets[1]->core, 2u);
}

TEST(Mshr, EntryExhaustion)
{
    Mshr mshr(2, 4);
    auto a = req(0x0);
    auto b = req(0x80);
    auto c = req(0x100);
    EXPECT_EQ(mshr.registerMiss(0, a), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.registerMiss(1, b), MshrOutcome::NewEntry);
    EXPECT_TRUE(mshr.full());
    EXPECT_EQ(mshr.registerMiss(2, c), MshrOutcome::NoEntryFree);
    EXPECT_TRUE(c); // untouched on failure
}

TEST(Mshr, TargetExhaustion)
{
    Mshr mshr(2, 2); // primary + one merged target
    auto a = req(0x0, 0);
    auto b = req(0x0, 1);
    auto c = req(0x0, 2);
    EXPECT_EQ(mshr.registerMiss(0, a), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.registerMiss(0, b), MshrOutcome::Merged);
    EXPECT_EQ(mshr.registerMiss(0, c), MshrOutcome::NoTargetFree);
    EXPECT_TRUE(c);
}

TEST(Mshr, EntryFreedAfterComplete)
{
    Mshr mshr(1, 2);
    auto a = req(0x0);
    mshr.registerMiss(0, a);
    EXPECT_TRUE(mshr.full());
    mshr.completeFetch(0);
    EXPECT_FALSE(mshr.full());
    auto b = req(0x80);
    EXPECT_EQ(mshr.registerMiss(1, b), MshrOutcome::NewEntry);
}

TEST(Mshr, CompleteUnknownLineDies)
{
    Mshr mshr(2, 2);
    EXPECT_DEATH(mshr.completeFetch(77), "no entry");
}

TEST(Mshr, InUseCount)
{
    Mshr mshr(8, 2);
    EXPECT_EQ(mshr.inUse(), 0u);
    auto a = req(0x0);
    auto b = req(0x80);
    mshr.registerMiss(0, a);
    mshr.registerMiss(1, b);
    EXPECT_EQ(mshr.inUse(), 2u);
    mshr.completeFetch(0);
    EXPECT_EQ(mshr.inUse(), 1u);
}

} // anonymous namespace
