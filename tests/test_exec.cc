/**
 * @file
 * Tests for the parallel experiment-execution engine: deterministic
 * result ordering, fault isolation, memoization, the cycle-budget
 * watchdog and the observability sinks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "exec/determinism.hh"
#include "common/log.hh"
#include "core/design.hh"
#include "exec/exit_codes.hh"
#include "exec/job_runner.hh"
#include "exec/job_set.hh"
#include "exec/result_sink.hh"
#include "workload/app_catalog.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::exec;

ExecOptions
quietOpts(unsigned jobs)
{
    ExecOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    return opts;
}

core::ExperimentOptions
shortRun()
{
    core::ExperimentOptions opts;
    opts.measureCycles = 2000;
    opts.warmupCycles = 500;
    return opts;
}

TEST(Exec, ResolveWorkers)
{
    JobRunner serial(quietOpts(1));
    EXPECT_EQ(serial.resolveWorkers(100), 1u);

    JobRunner four(quietOpts(4));
    EXPECT_EQ(four.resolveWorkers(100), 4u);
    // Never more workers than jobs.
    EXPECT_EQ(four.resolveWorkers(2), 2u);
    EXPECT_EQ(four.resolveWorkers(0), 1u);

    JobRunner defaulted(quietOpts(0));
    EXPECT_EQ(defaulted.resolveWorkers(1000),
              ExecOptions::hardwareConcurrency());
}

TEST(Exec, ResultsLandByIndexNotCompletionOrder)
{
    // Jobs with wildly uneven runtimes: results must still come back
    // in submission order with each job's own payload.
    const std::size_t n = 64;
    std::vector<JobSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
        specs.push_back(
            {csprintf("job%zu", i), [i, n](JobContext &ctx) {
                 // Earlier jobs spin longer, so with several workers
                 // later jobs finish first.
                 volatile double sink = 0;
                 for (std::size_t k = 0; k < (n - i) * 2000; ++k)
                     sink = sink + double(k);
                 core::RunMetrics rm;
                 rm.ipc = double(i);
                 rm.cycles = ctx.index();
                 return rm;
             }});
    }
    JobRunner runner(quietOpts(4));
    const auto results = runner.run(specs);
    ASSERT_EQ(results.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].label, csprintf("job%zu", i));
        EXPECT_TRUE(results[i].ok);
        EXPECT_DOUBLE_EQ(results[i].metrics.ipc, double(i));
        EXPECT_EQ(results[i].metrics.cycles, i);
    }
}

TEST(Exec, FaultIsolation)
{
    // A throwing job, a panicking job and a fatal()ing job must all be
    // captured as failed records; the healthy jobs still complete.
    std::vector<JobSpec> specs;
    specs.push_back({"throws", [](JobContext &) -> core::RunMetrics {
                         throw std::runtime_error("broken model");
                     }});
    specs.push_back({"panics", [](JobContext &) -> core::RunMetrics {
                         panic("deadlock at cycle %d", 42);
                     }});
    specs.push_back({"fatals", [](JobContext &) -> core::RunMetrics {
                         fatal("bad config");
                     }});
    for (int i = 0; i < 4; ++i)
        specs.push_back({csprintf("ok%d", i), [](JobContext &) {
                             core::RunMetrics rm;
                             rm.ipc = 1.0;
                             return rm;
                         }});

    JobRunner runner(quietOpts(3));
    const auto results = runner.run(specs);
    ASSERT_EQ(results.size(), 7u);

    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("broken model"), std::string::npos);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("deadlock at cycle 42"),
              std::string::npos);
    EXPECT_FALSE(results[2].ok);
    EXPECT_NE(results[2].error.find("bad config"), std::string::npos);
    for (std::size_t i = 3; i < 7; ++i)
        EXPECT_TRUE(results[i].ok) << results[i].error;
}

TEST(Exec, PanicStillAbortsOutsideTheEngine)
{
    // The error trap is scoped to engine jobs; elsewhere panic()
    // remains fatal (death tests across the suite depend on this).
    EXPECT_EXIT(panic("untrapped"), ::testing::KilledBySignal(SIGABRT),
                "untrapped");
}

TEST(Exec, CycleBudgetWatchdog)
{
    ExecOptions opts = quietOpts(2);
    opts.cycleBudget = 1000;
    std::vector<JobSpec> specs;
    specs.push_back({"overruns", [](JobContext &ctx) -> core::RunMetrics {
                         core::RunMetrics rm;
                         for (Cycle c = 0; c < 100000; c += 100)
                             ctx.checkCycleBudget(c);
                         rm.ipc = 1.0; // not reached
                         return rm;
                     }});
    specs.push_back({"fits", [](JobContext &ctx) {
                         ctx.checkCycleBudget(500);
                         core::RunMetrics rm;
                         rm.ipc = 2.0;
                         return rm;
                     }});
    JobRunner runner(opts);
    const auto results = runner.run(specs);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("cycle budget"), std::string::npos);
    EXPECT_TRUE(results[1].ok);
    EXPECT_DOUBLE_EQ(results[1].metrics.ipc, 2.0);
}

TEST(Exec, GridCellHonoursBudget)
{
    // A real grid cell whose warmup+measure interval exceeds the
    // budget fails up front instead of simulating.
    core::SystemConfig sys;
    const auto &app = workload::appCatalog().front();
    JobSet set;
    set.addCell(sys, core::baselineDesign(), app.params, shortRun());

    ExecOptions opts = quietOpts(1);
    opts.cycleBudget = 100; // far below warmup+measure = 2500
    JobRunner runner(opts);
    const auto results = runner.run(set.specs());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("cycle budget"), std::string::npos);
}

TEST(Exec, JobSetMemoization)
{
    core::SystemConfig sys;
    const auto &app = workload::appCatalog().front();
    const auto opts = shortRun();
    JobSet set;

    const std::size_t a =
        set.addCell(sys, core::baselineDesign(), app.params, opts);
    const std::size_t b =
        set.addCell(sys, core::baselineDesign(), app.params, opts);
    EXPECT_EQ(a, b);
    EXPECT_EQ(set.size(), 1u);

    // A different design is a different job...
    const std::size_t c =
        set.addCell(sys, core::sharedDcl1(40), app.params, opts);
    EXPECT_NE(c, a);

    // ...and so is the same cell with a distinguishing key suffix
    // (caller mutated something the memo key cannot see).
    const std::size_t d = set.addCell(sys, core::baselineDesign(),
                                      app.params, opts, "q8");
    EXPECT_NE(d, a);

    EXPECT_EQ(set.cellsRequested(), 4u);
    EXPECT_EQ(set.cellsDeduped(), 1u);
    EXPECT_EQ(set.size(), 3u);
}

TEST(Exec, SerialAndParallelRunsAreIdentical)
{
    // The acceptance property: the same grid run at --jobs=1 and
    // --jobs=4 yields identical stat digests, computed on the worker
    // thread that owns each simulation.
    core::SystemConfig sys;
    const auto opts = shortRun();
    const std::vector<core::DesignConfig> designs = {
        core::baselineDesign(), core::sharedDcl1(40)};

    auto digests = [&](unsigned jobs) {
        std::vector<JobSpec> specs;
        std::vector<std::uint64_t> out;
        std::size_t i = 0;
        for (const auto &design : designs) {
            for (const auto &app :
                 {workload::appByName("C-BFS"),
                  workload::appByName("T-AlexNet")}) {
                specs.push_back(
                    {csprintf("cell%zu", i++),
                     [&, design, app, slot = out.size()](JobContext &) {
                         core::GpuSystem gpu(sys, design, app.params);
                         gpu.run(opts.measureCycles, opts.warmupCycles);
                         out[slot] = exec::statDigest(gpu);
                         return gpu.metrics();
                     }});
                out.push_back(0);
            }
        }
        JobRunner runner(quietOpts(jobs));
        const auto results = runner.run(specs);
        for (const auto &r : results)
            EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
        return out;
    };

    const auto serial = digests(1);
    const auto parallel = digests(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_NE(serial[i], 0u);
        EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    }
}

TEST(Exec, SinksObserveEveryJob)
{
    struct CountingSink : ResultSink
    {
        std::size_t starts = 0, dones = 0, failed = 0;
        RunSummary last;
        void onJobStart(std::size_t, const std::string &,
                        unsigned) override
        {
            ++starts;
        }
        void onJobDone(const JobResult &r) override
        {
            ++dones;
            failed += r.ok ? 0 : 1;
        }
        void onRunEnd(const RunSummary &summary,
                      const std::vector<JobResult> &) override
        {
            last = summary;
        }
    };

    std::vector<JobSpec> specs;
    for (int i = 0; i < 9; ++i)
        specs.push_back({csprintf("j%d", i), [i](JobContext &) {
                             if (i == 4)
                                 throw std::runtime_error("x");
                             core::RunMetrics rm;
                             rm.ipc = 1.0;
                             return rm;
                         }});
    CountingSink sink;
    JobRunner runner(quietOpts(3));
    runner.addSink(&sink);
    const auto results = runner.run(specs);
    (void)results;

    EXPECT_EQ(sink.starts, 9u);
    EXPECT_EQ(sink.dones, 9u);
    EXPECT_EQ(sink.failed, 1u);
    EXPECT_EQ(sink.last.totalJobs, 9u);
    EXPECT_EQ(sink.last.failedJobs, 1u);
    EXPECT_EQ(sink.last.workers, 3u);
    EXPECT_GT(sink.last.cpuMs, 0.0);
    EXPECT_LE(sink.last.slowest.size(), 5u);
}

TEST(Exec, JsonlSinkWritesOneRecordPerJob)
{
    const std::string path = ::testing::TempDir() + "/exec_jobs.jsonl";
    std::remove(path.c_str());
    {
        std::vector<JobSpec> specs;
        specs.push_back({"good \"quoted\"", [](JobContext &) {
                             core::RunMetrics rm;
                             rm.ipc = 1.5;
                             rm.cycles = 2000;
                             return rm;
                         }});
        specs.push_back({"bad", [](JobContext &) -> core::RunMetrics {
                             throw std::runtime_error("line1\nline2");
                         }});
        JsonlSink sink(path);
        JobRunner runner(quietOpts(2));
        runner.addSink(&sink);
        runner.run(specs);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    // Two job records plus the summary record.
    ASSERT_EQ(lines.size(), 3u);

    std::string all = lines[0] + "\n" + lines[1];
    EXPECT_NE(all.find("\"label\":\"good \\\"quoted\\\"\""),
              std::string::npos);
    EXPECT_NE(all.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(all.find("\"ok\":false"), std::string::npos);
    // Newlines in error text must be escaped, not break the framing.
    EXPECT_NE(all.find("line1\\nline2"), std::string::npos);
    EXPECT_NE(lines[2].find("\"summary\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Exec, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Exec, FromEnvStrictParsing)
{
    setenv("DCL1_JOBS", "3", 1);
    EXPECT_EQ(ExecOptions::fromEnv().jobs, 3u);
    setenv("DCL1_JOBS", "many", 1);
    EXPECT_EXIT(ExecOptions::fromEnv(), ::testing::ExitedWithCode(1),
                "is not a number");
    setenv("DCL1_JOBS", "-2", 1);
    EXPECT_EXIT(ExecOptions::fromEnv(), ::testing::ExitedWithCode(1),
                "out of range");
    unsetenv("DCL1_JOBS");

    setenv("DCL1_JOB_BUDGET", "5000", 1);
    EXPECT_EQ(ExecOptions::fromEnv().cycleBudget, 5000u);
    setenv("DCL1_JOB_BUDGET", "5k", 1);
    EXPECT_EXIT(ExecOptions::fromEnv(), ::testing::ExitedWithCode(1),
                "trailing garbage");
    unsetenv("DCL1_JOB_BUDGET");

    setenv("DCL1_RETRIES", "7", 1);
    EXPECT_EQ(ExecOptions::fromEnv().maxRetries, 7u);
    setenv("DCL1_RETRIES", "lots", 1);
    EXPECT_EXIT(ExecOptions::fromEnv(), ::testing::ExitedWithCode(1),
                "is not a number");
    unsetenv("DCL1_RETRIES");

    setenv("DCL1_CRASH_DIR", "/tmp/crash", 1);
    EXPECT_EQ(ExecOptions::fromEnv().crashDir, "/tmp/crash");
    unsetenv("DCL1_CRASH_DIR");
}

TEST(Exec, ExitCodeContractIsPinned)
{
    // The numeric contract is documented in --help, the README and CI
    // scripts; a silent renumbering would break all of them.
    EXPECT_EQ(kExitOk, 0);
    EXPECT_EQ(kExitConfigError, 1);
    EXPECT_EQ(kExitRunFailed, 2);
    EXPECT_EQ(kExitFailedCells, 3);
    EXPECT_EQ(kExitResumable, 4);
    EXPECT_EQ(kExitQuarantined, 5);
    EXPECT_EQ(kExitIncompatibleRunDir, 6);
}

TEST(Exec, FailureKindNamesAreStable)
{
    // Serialized into WAL records and crash files; renames would make
    // old run directories unreadable.
    EXPECT_STREQ(failureKindName(FailureKind::None), "none");
    EXPECT_STREQ(failureKindName(FailureKind::Timeout), "timeout");
    EXPECT_STREQ(failureKindName(FailureKind::SimBug), "sim-bug");
    EXPECT_STREQ(failureKindName(FailureKind::ConfigError),
                 "config-error");
    EXPECT_STREQ(failureKindName(FailureKind::WorkerException),
                 "worker-exception");
}

TEST(Exec, TimeoutRetriesWithEscalatingBudget)
{
    ExecOptions opts = quietOpts(1);
    opts.cycleBudget = 1000;
    opts.maxRetries = 2;
    opts.budgetEscalation = 2.0;

    std::vector<Cycle> budgets; // serial runner: no locking needed
    std::vector<JobSpec> specs;
    specs.push_back(
        {"overruns", [&](JobContext &ctx) -> core::RunMetrics {
             budgets.push_back(ctx.cycleBudget());
             ctx.checkCycleBudget(1000000);
             return {};
         }});
    const auto results = JobRunner(opts).run(specs);

    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].kind, FailureKind::Timeout);
    EXPECT_FALSE(results[0].quarantined);
    EXPECT_EQ(results[0].attempts, 3u);
    ASSERT_EQ(budgets.size(), 3u);
    EXPECT_EQ(budgets[0], 1000u);
    EXPECT_EQ(budgets[1], 2000u);
    EXPECT_EQ(budgets[2], 4000u);
}

TEST(Exec, TimeoutRecoversWhenEscalationSuffices)
{
    ExecOptions opts = quietOpts(1);
    opts.cycleBudget = 1000;
    opts.maxRetries = 2;

    std::vector<JobSpec> specs;
    specs.push_back({"nearmiss", [](JobContext &ctx) {
                         // Needs 1500 cycles: over the first budget,
                         // under the doubled one.
                         ctx.checkCycleBudget(1500);
                         core::RunMetrics rm;
                         rm.ipc = 1.0;
                         return rm;
                     }});
    const auto results = JobRunner(opts).run(specs);

    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_EQ(results[0].kind, FailureKind::None);
}

TEST(Exec, DeterministicFailuresAreQuarantinedWithoutRetry)
{
    ExecOptions opts = quietOpts(1);
    opts.maxRetries = 5; // must NOT be spent on deterministic failures

    int panic_runs = 0, fatal_runs = 0;
    std::vector<JobSpec> specs;
    specs.push_back({"panics", [&](JobContext &) -> core::RunMetrics {
                         ++panic_runs;
                         panic("invariant violated");
                     }});
    specs.push_back({"fatals", [&](JobContext &) -> core::RunMetrics {
                         ++fatal_runs;
                         fatal("impossible configuration");
                     }});
    const auto results = JobRunner(opts).run(specs);

    EXPECT_FALSE(results[0].ok);
    EXPECT_TRUE(results[0].quarantined);
    EXPECT_EQ(results[0].kind, FailureKind::SimBug);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_EQ(panic_runs, 1);

    EXPECT_FALSE(results[1].ok);
    EXPECT_TRUE(results[1].quarantined);
    EXPECT_EQ(results[1].kind, FailureKind::ConfigError);
    EXPECT_EQ(results[1].attempts, 1u);
    EXPECT_EQ(fatal_runs, 1);
}

TEST(Exec, WorkerExceptionsRetryAtConstantBudget)
{
    ExecOptions opts = quietOpts(1);
    opts.cycleBudget = 1000;
    opts.maxRetries = 2;

    int runs = 0;
    std::vector<Cycle> budgets;
    std::vector<JobSpec> specs;
    specs.push_back({"flaky", [&](JobContext &ctx) -> core::RunMetrics {
                         budgets.push_back(ctx.cycleBudget());
                         if (++runs < 3)
                             throw std::runtime_error("transient");
                         core::RunMetrics rm;
                         rm.ipc = 1.0;
                         return rm;
                     }});
    const auto results = JobRunner(opts).run(specs);

    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].attempts, 3u);
    // No escalation for unclassified exceptions: the budget was not
    // the problem.
    ASSERT_EQ(budgets.size(), 3u);
    EXPECT_EQ(budgets[1], 1000u);
    EXPECT_EQ(budgets[2], 1000u);
}

TEST(Exec, SummaryCountsQuarantinedJobs)
{
    class CaptureSink : public ResultSink
    {
      public:
        RunSummary last;
        void
        onRunEnd(const RunSummary &summary,
                 const std::vector<JobResult> &) override
        {
            last = summary;
        }
    };

    std::vector<JobSpec> specs;
    specs.push_back({"ok", [](JobContext &) {
                         core::RunMetrics rm;
                         rm.ipc = 1.0;
                         return rm;
                     }});
    specs.push_back({"panics", [](JobContext &) -> core::RunMetrics {
                         panic("bug");
                     }});
    specs.push_back({"throws", [](JobContext &) -> core::RunMetrics {
                         throw std::runtime_error("flake");
                     }});

    ExecOptions opts = quietOpts(1);
    opts.maxRetries = 0;
    CaptureSink sink;
    JobRunner runner(opts);
    runner.addSink(&sink);
    runner.run(specs);

    EXPECT_EQ(sink.last.totalJobs, 3u);
    EXPECT_EQ(sink.last.failedJobs, 2u);
    EXPECT_EQ(sink.last.quarantinedJobs, 1u);
    EXPECT_EQ(sink.last.resumedJobs, 0u);
    EXPECT_EQ(sink.last.skippedJobs, 0u);
    EXPECT_FALSE(sink.last.interrupted);
}

} // anonymous namespace
