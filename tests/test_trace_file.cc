/** @file Tests for the trace-file workload source. */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace_file.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::workload;

TraceFileSource
fromString(const std::string &text, std::uint32_t cores = 4,
           bool loop = true)
{
    std::istringstream in(text);
    return TraceFileSource(in, cores, loop);
}

TEST(TraceFile, ParsesArithAndMem)
{
    auto src = fromString("0 0 X 2\n"
                          "0 0 R 1000 32\n");
    EXPECT_EQ(src.instructionCount(), 3u);
    EXPECT_EQ(src.warpsPerCore(0), 1u);

    WarpInstr i;
    src.nextInstr(0, 0, 0, i);
    EXPECT_FALSE(i.isMem);
    src.nextInstr(0, 0, 0, i);
    EXPECT_FALSE(i.isMem);
    src.nextInstr(0, 0, 0, i);
    ASSERT_TRUE(i.isMem);
    EXPECT_EQ(i.accesses[0].addr, 0x1000u);
    EXPECT_EQ(i.accesses[0].bytes, 32u);
    EXPECT_EQ(i.accesses[0].op, mem::MemOp::Read);
}

TEST(TraceFile, OpKinds)
{
    auto src = fromString("0 0 R 100 32\n"
                          "0 0 W 200 32\n"
                          "0 0 A 300 32\n"
                          "0 0 B 400 128\n");
    WarpInstr i;
    src.nextInstr(0, 0, 0, i);
    EXPECT_EQ(i.accesses[0].op, mem::MemOp::Read);
    src.nextInstr(0, 0, 0, i);
    EXPECT_EQ(i.accesses[0].op, mem::MemOp::Write);
    src.nextInstr(0, 0, 0, i);
    EXPECT_EQ(i.accesses[0].op, mem::MemOp::Atomic);
    src.nextInstr(0, 0, 0, i);
    EXPECT_EQ(i.accesses[0].op, mem::MemOp::Bypass);
}

TEST(TraceFile, CoalescedRecords)
{
    auto src = fromString("0 0 R 1000 32 +\n"
                          "0 0 R 1080 32 +\n"
                          "0 0 R 1100 32\n");
    EXPECT_EQ(src.instructionCount(), 1u);
    WarpInstr i;
    src.nextInstr(0, 0, 0, i);
    ASSERT_TRUE(i.isMem);
    EXPECT_EQ(i.numAccesses, 3u);
    EXPECT_EQ(i.accesses[1].addr, 0x1080u);
}

TEST(TraceFile, HexAddresses)
{
    auto src = fromString("0 0 R deadbeef 32\n");
    WarpInstr i;
    src.nextInstr(0, 0, 0, i);
    EXPECT_EQ(i.accesses[0].addr, 0xdeadbeefull);
}

TEST(TraceFile, CommentsAndBlanks)
{
    auto src = fromString("# header\n"
                          "\n"
                          "0 0 X 1  # trailing comment\n");
    EXPECT_EQ(src.instructionCount(), 1u);
}

TEST(TraceFile, LoopingReplay)
{
    auto src = fromString("0 0 R 1000 32\n");
    WarpInstr a, b;
    src.nextInstr(0, 0, 0, a);
    src.nextInstr(0, 0, 0, b);
    EXPECT_TRUE(b.isMem); // looped
}

TEST(TraceFile, NonLoopingIdles)
{
    auto src = fromString("0 0 R 1000 32\n", 4, /*loop=*/false);
    WarpInstr a, b;
    src.nextInstr(0, 0, 0, a);
    src.nextInstr(0, 0, 0, b);
    EXPECT_FALSE(b.isMem); // exhausted: arithmetic spin
}

TEST(TraceFile, UntracedWarpIdles)
{
    auto src = fromString("0 1 R 1000 32\n");
    EXPECT_EQ(src.warpsPerCore(0), 2u);
    WarpInstr i;
    src.nextInstr(0, 0, 0, i); // warp 0 has no records
    EXPECT_FALSE(i.isMem);
}

TEST(TraceFile, PerWarpStreamsIndependent)
{
    auto src = fromString("0 0 R 1000 32\n"
                          "0 1 R 2000 32\n");
    WarpInstr i;
    src.nextInstr(0, 1, 0, i);
    EXPECT_EQ(i.accesses[0].addr, 0x2000u);
    src.nextInstr(0, 0, 0, i);
    EXPECT_EQ(i.accesses[0].addr, 0x1000u);
}

TEST(TraceFile, RejectsBadInput)
{
    EXPECT_EXIT(fromString("0 0 Q 100 32\n"),
                ::testing::ExitedWithCode(1), "bad op");
    EXPECT_EXIT(fromString("0 0 R 100\n"), ::testing::ExitedWithCode(1),
                "needs");
    EXPECT_EXIT(fromString("9 0 R 100 32\n", /*cores=*/4),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(fromString("# only comments\n"),
                ::testing::ExitedWithCode(1), "no records");
    EXPECT_EXIT(fromString("0 0 X 0\n"), ::testing::ExitedWithCode(1),
                "positive");
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceFileSource("/no/such/file.trace", 4),
                ::testing::ExitedWithCode(1), "cannot be opened");
}

} // anonymous namespace
