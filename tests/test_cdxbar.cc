/** @file Tests for the hierarchical two-stage (CDXBar) network. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "mem/request.hh"
#include "noc/cdxbar.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::noc;

CdxParams
params(CdxDirection dir)
{
    CdxParams p;
    p.name = "cdx";
    p.direction = dir;
    p.clusters = 4;
    p.perCluster = 8;
    p.trunksPerCluster = 2;
    p.globalPorts = 8;
    p.localClockRatio = 1.0;
    p.globalClockRatio = 1.0;
    return p;
}

mem::MemRequestPtr
tagged(std::uint32_t tag)
{
    auto r = mem::makeRequest(mem::MemOp::Read, tag * 128, 32, tag, 0, 0);
    return r;
}

TEST(CdXbar, GeometryAccessors)
{
    CdXbarNet net(params(CdxDirection::Concentrate));
    EXPECT_EQ(net.numNear(), 32u);
    EXPECT_EQ(net.numFar(), 8u);
}

TEST(CdXbar, ConcentrateDelivers)
{
    CdXbarNet net(params(CdxDirection::Concentrate));
    ASSERT_TRUE(net.canInject(5));
    net.inject(5, 3, tagged(42), 1);
    mem::MemRequestPtr got;
    for (int t = 0; t < 50 && !got; ++t) {
        net.tick();
        if (auto r = net.eject(3))
            got = std::move(*r);
    }
    ASSERT_TRUE(got);
    EXPECT_EQ(got->core, 42u);
}

TEST(CdXbar, DistributeDelivers)
{
    CdXbarNet net(params(CdxDirection::Distribute));
    ASSERT_TRUE(net.canInject(2));
    net.inject(2, 17, tagged(9), 4);
    mem::MemRequestPtr got;
    for (int t = 0; t < 50 && !got; ++t) {
        net.tick();
        if (auto r = net.eject(17))
            got = std::move(*r);
    }
    ASSERT_TRUE(got);
    EXPECT_EQ(got->core, 9u);
}

TEST(CdXbar, AllPairsEventuallyDeliver)
{
    CdXbarNet net(params(CdxDirection::Concentrate));
    std::map<std::uint32_t, int> received;
    int sent = 0;
    for (std::uint32_t src = 0; src < net.numNear(); ++src) {
        for (std::uint32_t dst = 0; dst < net.numFar(); ++dst) {
            // Inject lazily while ticking to respect backpressure.
            while (!net.canInject(src))
                net.tick();
            net.inject(src, dst, tagged(src * 100 + dst), 1);
            ++sent;
            net.tick();
            for (std::uint32_t d = 0; d < net.numFar(); ++d)
                while (auto r = net.eject(d))
                    received[d]++;
        }
    }
    for (int t = 0; t < 500; ++t) {
        net.tick();
        for (std::uint32_t d = 0; d < net.numFar(); ++d)
            while (auto r = net.eject(d))
                received[d]++;
    }
    int total = 0;
    for (auto &[d, n] : received)
        total += n;
    EXPECT_EQ(total, sent);
    EXPECT_FALSE(net.busy());
    // Every far port received one packet per near port.
    for (std::uint32_t d = 0; d < net.numFar(); ++d)
        EXPECT_EQ(received[d], int(net.numNear()));
}

TEST(CdXbar, SlowLocalStageLimitsThroughput)
{
    // Halving the local-stage clock roughly halves saturated
    // throughput when the local stage is the bottleneck.
    auto run = [](double local_ratio) {
        CdxParams p = params(CdxDirection::Concentrate);
        p.localClockRatio = local_ratio;
        CdXbarNet net(p);
        Rng rng(3);
        std::uint64_t done = 0;
        for (int t = 0; t < 3000; ++t) {
            for (std::uint32_t s = 0; s < net.numNear(); ++s)
                if (net.canInject(s))
                    net.inject(s, std::uint32_t(rng.below(8)),
                               tagged(s), 1);
            net.tick();
            for (std::uint32_t d = 0; d < net.numFar(); ++d)
                while (net.eject(d))
                    ++done;
        }
        return done;
    };
    const auto fast = run(1.0);
    const auto slow = run(0.5);
    EXPECT_GT(double(fast), 1.5 * double(slow));
}

} // anonymous namespace
