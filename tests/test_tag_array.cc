/** @file Unit and property tests for the set-associative tag array. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "mem/tag_array.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::mem;

TEST(TagArray, InsertProbe)
{
    TagArray tags(16, 4);
    EXPECT_FALSE(tags.probe(100));
    Victim v = tags.insert(100);
    EXPECT_FALSE(v.valid);
    EXPECT_TRUE(tags.probe(100));
    EXPECT_TRUE(tags.contains(100));
    EXPECT_EQ(tags.occupancy(), 1u);
}

TEST(TagArray, Invalidate)
{
    TagArray tags(8, 2);
    tags.insert(5);
    EXPECT_TRUE(tags.invalidate(5));
    EXPECT_FALSE(tags.contains(5));
    EXPECT_FALSE(tags.invalidate(5));
    EXPECT_EQ(tags.occupancy(), 0u);
}

TEST(TagArray, LruEviction)
{
    // Single set, 2 ways: the least recently used line is evicted.
    TagArray tags(1, 2);
    tags.insert(1);
    tags.insert(2);
    EXPECT_TRUE(tags.probe(1)); // 1 is now MRU
    Victim v = tags.insert(3);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.line, 2u);
    EXPECT_TRUE(tags.contains(1));
    EXPECT_TRUE(tags.contains(3));
    EXPECT_FALSE(tags.contains(2));
}

TEST(TagArray, ContainsDoesNotTouchLru)
{
    TagArray tags(1, 2);
    tags.insert(1);
    tags.insert(2);
    EXPECT_TRUE(tags.contains(1)); // no LRU update: 1 stays LRU
    Victim v = tags.insert(3);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.line, 1u);
}

TEST(TagArray, DirtyTracking)
{
    TagArray tags(1, 1);
    tags.insert(7, /*dirty=*/false);
    EXPECT_TRUE(tags.markDirty(7));
    Victim v = tags.insert(8);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.line, 7u);
    EXPECT_FALSE(tags.markDirty(7));
}

TEST(TagArray, Flush)
{
    TagArray tags(4, 4);
    for (LineAddr l = 0; l < 10; ++l)
        tags.insert(l);
    tags.flush();
    EXPECT_EQ(tags.occupancy(), 0u);
    for (LineAddr l = 0; l < 10; ++l)
        EXPECT_FALSE(tags.contains(l));
}

TEST(TagArray, InsertDuplicateDies)
{
    TagArray tags(4, 2);
    tags.insert(3);
    EXPECT_DEATH(tags.insert(3), "already-resident");
}

TEST(TagArray, FifoIgnoresTouches)
{
    TagArray tags(1, 2, ReplPolicy::Fifo);
    tags.insert(1);
    tags.insert(2);
    EXPECT_TRUE(tags.probe(1)); // touch does NOT protect under FIFO
    Victim v = tags.insert(3);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.line, 1u); // oldest insertion evicted
}

TEST(TagArray, RandomStaysWithinSet)
{
    TagArray tags(1, 4, ReplPolicy::Random);
    for (LineAddr l = 0; l < 4; ++l)
        tags.insert(l);
    // Insertions always evict *some* resident line of the set.
    for (LineAddr l = 4; l < 40; ++l) {
        Victim v = tags.insert(l);
        ASSERT_TRUE(v.valid);
        EXPECT_TRUE(v.line < l);
        EXPECT_EQ(tags.occupancy(), 4u);
    }
}

TEST(TagArray, RandomEventuallyEvictsDifferentWays)
{
    TagArray tags(1, 4, ReplPolicy::Random);
    std::set<LineAddr> victims;
    for (LineAddr l = 0; l < 4; ++l)
        tags.insert(l);
    for (LineAddr l = 4; l < 200; ++l) {
        Victim v = tags.insert(l);
        victims.insert(v.line);
    }
    EXPECT_GT(victims.size(), 20u); // not stuck on one way
}

/**
 * Property: the hashed set index must spread address-sliced line
 * streams across all sets. This is the reason the index is hashed:
 * home-bit interleaving fixes low line-address bits.
 */
class TagSpreadTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TagSpreadTest, SlicedStreamTouchesAllSets)
{
    const std::uint32_t stride = GetParam();
    TagArray tags(32, 4);
    std::set<std::uint32_t> sets;
    for (LineAddr l = 0; l < 512; ++l)
        sets.insert(tags.setIndex(l * stride));
    // With a good hash, far more than 32/stride sets are used.
    EXPECT_EQ(sets.size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Strides, TagSpreadTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 40u, 32u));

/** Property: occupancy never exceeds capacity; eviction keeps bounds. */
class TagCapacityTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(TagCapacityTest, OccupancyBounded)
{
    const auto [num_sets, assoc] = GetParam();
    TagArray tags(num_sets, assoc);
    Rng rng(num_sets * 131 + assoc);
    for (int i = 0; i < 5000; ++i) {
        LineAddr l = rng.below(10000);
        if (!tags.contains(l))
            tags.insert(l);
    }
    EXPECT_LE(tags.occupancy(), std::uint64_t(num_sets) * assoc);
    // A full-working-set stream should nearly fill the array.
    EXPECT_GE(tags.occupancy(), std::uint64_t(num_sets) * assoc * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagCapacityTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(8u, 2u),
                      std::make_pair(32u, 4u), std::make_pair(64u, 8u),
                      std::make_pair(33u, 3u)));

} // anonymous namespace
