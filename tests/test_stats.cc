/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "stats/stats.hh"

namespace
{

using namespace dcl1::stats;

TEST(Scalar, Basics)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    s.inc();
    s.inc(4);
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 16u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
    s.set(99);
    EXPECT_EQ(s.value(), 99u);
}

TEST(Distribution, MeanMinMax)
{
    Distribution d(10, 8);
    d.sample(5);
    d.sample(15);
    d.sample(25);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.sum(), 45u);
    EXPECT_EQ(d.min(), 5u);
    EXPECT_EQ(d.max(), 25u);
    EXPECT_DOUBLE_EQ(d.mean(), 15.0);
}

TEST(Distribution, Buckets)
{
    Distribution d(10, 4);
    d.sample(0);
    d.sample(9);
    d.sample(10);
    d.sample(39);
    d.sample(40);  // overflow
    d.sample(500); // overflow
    EXPECT_EQ(d.bucket(0), 2u);
    EXPECT_EQ(d.bucket(1), 1u);
    EXPECT_EQ(d.bucket(3), 1u);
    EXPECT_EQ(d.overflow(), 2u);
}

TEST(Distribution, Reset)
{
    Distribution d(4, 4);
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_EQ(d.bucket(0), 0u);
}

TEST(Distribution, Percentile)
{
    Distribution d(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        d.sample(v);
    EXPECT_NEAR(d.percentile(50), 50.0, 2.0);
    EXPECT_NEAR(d.percentile(90), 90.0, 2.0);
    EXPECT_NEAR(d.percentile(0), 0.5, 1.0);
}

TEST(Distribution, PercentileEmpty)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
}

TEST(Distribution, PercentileClampsP)
{
    Distribution d(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        d.sample(v);
    // Out-of-range p clamps rather than reading out of bounds.
    EXPECT_DOUBLE_EQ(d.percentile(-10), d.percentile(0));
    EXPECT_DOUBLE_EQ(d.percentile(250), d.percentile(100));
    // Width-1 buckets estimate at the bucket midpoint exactly.
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.5);
    EXPECT_DOUBLE_EQ(d.percentile(100), 99.5);
    EXPECT_DOUBLE_EQ(d.percentile(50), 49.5);
}

TEST(Distribution, PercentileSingleSample)
{
    Distribution d(10, 8);
    d.sample(42);
    // Every percentile of a one-sample distribution is that sample's
    // bucket midpoint.
    EXPECT_DOUBLE_EQ(d.percentile(0), 45.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 45.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 45.0);
}

TEST(Distribution, PercentileAllOverflow)
{
    Distribution d(1, 4);
    d.sample(1000);
    d.sample(2000);
    // Samples past the histogram fall back to the observed max.
    EXPECT_DOUBLE_EQ(d.percentile(50), 2000.0);
    EXPECT_DOUBLE_EQ(d.percentile(99), 2000.0);
}

TEST(FormatDouble, StableAndRoundTrips)
{
    EXPECT_EQ(formatDouble(0.0), "0");
    EXPECT_EQ(formatDouble(2.0), "2");
    EXPECT_EQ(formatDouble(0.25), "0.25");
    EXPECT_EQ(formatDouble(1.5), "1.5");
    // Shortest-round-trip: parsing the string recovers the exact bits.
    for (const double v : {0.1, 1.0 / 3.0, 12345.6789, 1e100, 3e-9})
        EXPECT_DOUBLE_EQ(std::strtod(formatDouble(v).c_str(), nullptr),
                         v);
}

TEST(StatGroup, RegisterAndDump)
{
    StatGroup g("top");
    Scalar a, b;
    a.inc(3);
    b.inc(7);
    g.addScalar("alpha", &a);
    g.addScalar("beta", &b);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("top.alpha 3"), std::string::npos);
    EXPECT_NE(out.find("top.beta 7"), std::string::npos);
}

TEST(StatGroup, ChildrenAndReset)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar a, b;
    a.inc(1);
    b.inc(2);
    parent.addScalar("a", &a);
    child.addScalar("b", &b);
    parent.addChild(&child);

    std::ostringstream os;
    parent.dump(os);
    EXPECT_NE(os.str().find("p.c.b 2"), std::string::npos);

    parent.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, FindScalar)
{
    StatGroup g("g");
    Scalar a;
    a.inc(5);
    g.addScalar("a", &a);
    ASSERT_NE(g.findScalar("a"), nullptr);
    EXPECT_EQ(g.findScalar("a")->value(), 5u);
    EXPECT_EQ(g.findScalar("nope"), nullptr);
}

TEST(StatGroup, FindScalarDottedPath)
{
    StatGroup root("gpu");
    // Child names themselves contain dots, like the crossbars'
    // "noc.req" groups — lookup must match whole child names, not
    // split at the first dot.
    StatGroup noc_req("noc.req");
    StatGroup dram("dram0");
    Scalar flits, row_hits;
    flits.inc(11);
    row_hits.inc(7);
    noc_req.addScalar("flits", &flits);
    dram.addScalar("row_hits", &row_hits);
    root.addChild(&noc_req);
    root.addChild(&dram);

    ASSERT_NE(root.findScalar("noc.req.flits"), nullptr);
    EXPECT_EQ(root.findScalar("noc.req.flits")->value(), 11u);
    ASSERT_NE(root.findScalar("dram0.row_hits"), nullptr);
    EXPECT_EQ(root.findScalar("dram0.row_hits")->value(), 7u);
    // A partial child-name match is not a path component.
    EXPECT_EQ(root.findScalar("noc.flits"), nullptr);
    EXPECT_EQ(root.findScalar("dram0.row_hits.extra"), nullptr);
}

TEST(StatGroup, FindDistribution)
{
    StatGroup root("gpu");
    StatGroup child("lat");
    Distribution d(4, 8);
    d.sample(6);
    child.addDistribution("read", &d);
    root.addChild(&child);

    ASSERT_NE(root.findDistribution("lat.read"), nullptr);
    EXPECT_EQ(root.findDistribution("lat.read")->count(), 1u);
    EXPECT_EQ(root.findDistribution("read"), nullptr);
    EXPECT_EQ(root.findDistribution("lat.nope"), nullptr);
    // Scalars and distributions live in separate namespaces.
    EXPECT_EQ(root.findScalar("lat.read"), nullptr);
}

TEST(StatGroup, DumpPercentileLines)
{
    StatGroup g("g");
    Distribution d(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        d.sample(v);
    g.addDistribution("lat", &d);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("g.lat.p50 49.5"), std::string::npos);
    EXPECT_NE(out.find("g.lat.p95 94.5"), std::string::npos);
    EXPECT_NE(out.find("g.lat.p99 98.5"), std::string::npos);
}

TEST(StatGroup, DumpJsonShape)
{
    StatGroup root("gpu");
    StatGroup child("core0");
    Scalar insts;
    insts.inc(3);
    Distribution d(2, 4);
    d.sample(1);
    d.sample(100); // overflow
    child.addScalar("instructions", &insts);
    root.addDistribution("lat", &d);
    root.addChild(&child);

    std::ostringstream os;
    root.dumpJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"name\":\"gpu\""), std::string::npos);
    EXPECT_NE(out.find("\"instructions\":3"), std::string::npos);
    EXPECT_NE(out.find("\"p95\":"), std::string::npos);
    EXPECT_NE(out.find("\"overflow\":1"), std::string::npos);
    EXPECT_NE(out.find("\"buckets\":[1,0,0,0]"), std::string::npos);
    // One JSON object, no trailing newline (callers add their own).
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '}');
}

} // anonymous namespace
