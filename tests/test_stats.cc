/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace
{

using namespace dcl1::stats;

TEST(Scalar, Basics)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    s.inc();
    s.inc(4);
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 16u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
    s.set(99);
    EXPECT_EQ(s.value(), 99u);
}

TEST(Distribution, MeanMinMax)
{
    Distribution d(10, 8);
    d.sample(5);
    d.sample(15);
    d.sample(25);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.sum(), 45u);
    EXPECT_EQ(d.min(), 5u);
    EXPECT_EQ(d.max(), 25u);
    EXPECT_DOUBLE_EQ(d.mean(), 15.0);
}

TEST(Distribution, Buckets)
{
    Distribution d(10, 4);
    d.sample(0);
    d.sample(9);
    d.sample(10);
    d.sample(39);
    d.sample(40);  // overflow
    d.sample(500); // overflow
    EXPECT_EQ(d.bucket(0), 2u);
    EXPECT_EQ(d.bucket(1), 1u);
    EXPECT_EQ(d.bucket(3), 1u);
    EXPECT_EQ(d.overflow(), 2u);
}

TEST(Distribution, Reset)
{
    Distribution d(4, 4);
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_EQ(d.bucket(0), 0u);
}

TEST(Distribution, Percentile)
{
    Distribution d(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        d.sample(v);
    EXPECT_NEAR(d.percentile(50), 50.0, 2.0);
    EXPECT_NEAR(d.percentile(90), 90.0, 2.0);
    EXPECT_NEAR(d.percentile(0), 0.5, 1.0);
}

TEST(Distribution, PercentileEmpty)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
}

TEST(StatGroup, RegisterAndDump)
{
    StatGroup g("top");
    Scalar a, b;
    a.inc(3);
    b.inc(7);
    g.addScalar("alpha", &a);
    g.addScalar("beta", &b);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("top.alpha 3"), std::string::npos);
    EXPECT_NE(out.find("top.beta 7"), std::string::npos);
}

TEST(StatGroup, ChildrenAndReset)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar a, b;
    a.inc(1);
    b.inc(2);
    parent.addScalar("a", &a);
    child.addScalar("b", &b);
    parent.addChild(&child);

    std::ostringstream os;
    parent.dump(os);
    EXPECT_NE(os.str().find("p.c.b 2"), std::string::npos);

    parent.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, FindScalar)
{
    StatGroup g("g");
    Scalar a;
    a.inc(5);
    g.addScalar("a", &a);
    ASSERT_NE(g.findScalar("a"), nullptr);
    EXPECT_EQ(g.findScalar("a")->value(), 5u);
    EXPECT_EQ(g.findScalar("nope"), nullptr);
}

} // anonymous namespace
