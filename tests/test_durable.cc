/**
 * @file
 * Tests for the durable-run layer: crash-safe result-file writers,
 * WAL record round-trips, run-manifest identity checking, crash
 * records, and the kill-and-resume path that must reproduce an
 * uninterrupted run's output byte for byte.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/log.hh"
#include "core/design.hh"
#include "exec/atomic_file.hh"
#include "exec/crash_record.hh"
#include "exec/exit_codes.hh"
#include "exec/interrupt.hh"
#include "exec/job_runner.hh"
#include "exec/job_set.hh"
#include "exec/result_sink.hh"
#include "exec/run_manifest.hh"
#include "workload/app_catalog.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::exec;

ExecOptions
quietOpts(unsigned jobs)
{
    ExecOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    return opts;
}

/**
 * Per-test scratch directory, wiped of any durable-run files a
 * previous (possibly killed) test run left behind.
 */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() +
                            csprintf("dcl1-durable-%d-", int(getpid())) +
                            name;
    ensureDirectory(dir);
    std::remove((dir + "/manifest.json").c_str());
    std::remove(csprintf("%s/manifest.json.tmp.%d", dir.c_str(),
                         int(getpid()))
                    .c_str());
    std::remove((dir + "/jobs.jsonl").c_str());
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::string text;
    for (std::string line; std::getline(in, line);) {
        text += line;
        text += '\n';
    }
    return text;
}

bool
fileExists(const std::string &path)
{
    return bool(std::ifstream(path));
}

core::RunMetrics
awkwardMetrics()
{
    core::RunMetrics rm;
    rm.cycles = 123456789;
    rm.instructions = 987654321;
    rm.ipc = 1.0 / 3.0; // not representable in any finite decimal
    rm.l1Accesses = 11;
    rm.l1Misses = 7;
    rm.l1MissRate = 0.1;
    rm.replicationRatio = 2.5e-10;
    rm.avgReplicas = 1.0000000000000002; // one ulp above 1.0
    rm.maxL1PortUtil = 0.7654321987654321;
    rm.maxCoreReplyLinkUtil = 1e300;
    rm.maxMemReplyLinkUtil = 0.0;
    rm.avgReadLatency = 417.66666666666669;
    rm.noc1Flits = 1;
    rm.noc2Flits = 2;
    rm.l2Accesses = 3;
    rm.l2Misses = 4;
    rm.dramReads = 5;
    rm.dramWrites = 6;
    return rm;
}

TEST(Durable, RunMetricsJsonRoundTripsDoublesExactly)
{
    // %.17g must reproduce every IEEE double bit for bit; anything
    // less and a resumed CSV would differ from an uninterrupted one.
    const core::RunMetrics rm = awkwardMetrics();
    core::RunMetrics back;
    ASSERT_TRUE(parseRunMetricsJson(runMetricsJson(rm), back));
    EXPECT_EQ(back.cycles, rm.cycles);
    EXPECT_EQ(back.instructions, rm.instructions);
    EXPECT_EQ(back.ipc, rm.ipc);
    EXPECT_EQ(back.l1MissRate, rm.l1MissRate);
    EXPECT_EQ(back.replicationRatio, rm.replicationRatio);
    EXPECT_EQ(back.avgReplicas, rm.avgReplicas);
    EXPECT_EQ(back.maxL1PortUtil, rm.maxL1PortUtil);
    EXPECT_EQ(back.maxCoreReplyLinkUtil, rm.maxCoreReplyLinkUtil);
    EXPECT_EQ(back.maxMemReplyLinkUtil, rm.maxMemReplyLinkUtil);
    EXPECT_EQ(back.avgReadLatency, rm.avgReadLatency);
    EXPECT_EQ(back.dramWrites, rm.dramWrites);

    core::RunMetrics rejected;
    EXPECT_FALSE(parseRunMetricsJson("{\"cycles\":1}", rejected));
}

TEST(Durable, JobRecordRoundTripsThroughJsonl)
{
    JobRecord rec;
    rec.key = "design=A|app=\"quoted\"|seed=1"; // escaping required
    rec.label = "A/back\\slash";
    rec.ok = true;
    rec.attempts = 2;
    rec.metrics = awkwardMetrics();

    JobRecord back;
    ASSERT_TRUE(JobRecord::fromJsonLine(rec.toJsonLine(), back));
    EXPECT_EQ(back.key, rec.key);
    EXPECT_EQ(back.label, rec.label);
    EXPECT_TRUE(back.ok);
    EXPECT_FALSE(back.quarantined);
    EXPECT_EQ(back.attempts, 2u);
    EXPECT_EQ(back.kind, FailureKind::None);
    EXPECT_EQ(back.metrics.ipc, rec.metrics.ipc);

    JobRecord quar;
    quar.key = "k2";
    quar.label = "bad";
    quar.quarantined = true;
    quar.kind = FailureKind::SimBug;
    quar.error = "panic: q1 overflow\nat cycle 42";
    ASSERT_TRUE(JobRecord::fromJsonLine(quar.toJsonLine(), back));
    EXPECT_FALSE(back.ok);
    EXPECT_TRUE(back.quarantined);
    EXPECT_EQ(back.kind, FailureKind::SimBug);
    EXPECT_EQ(back.error, quar.error);

    // Malformed input never half-parses.
    EXPECT_FALSE(JobRecord::fromJsonLine("", back));
    EXPECT_FALSE(JobRecord::fromJsonLine("{\"key\":\"torn", back));
    EXPECT_FALSE(JobRecord::fromJsonLine(
        "{\"key\":\"k\",\"label\":\"l\",\"ok\":true,"
        "\"quarantined\":false,\"attempts\":1}", // ok but no metrics
        back));
}

TEST(Durable, AtomicWriterPublishesAllOrNothing)
{
    const std::string dir = freshDir("atomic");
    const std::string path = dir + "/out.csv";
    std::remove(path.c_str());

    {
        AtomicFileWriter w(path);
        w.stream() << "design,ipc\nA,1.5\n";
        EXPECT_FALSE(fileExists(path)); // nothing until commit
        w.commit();
    }
    EXPECT_EQ(readFile(path), "design,ipc\nA,1.5\n");
    EXPECT_FALSE(fileExists(
        csprintf("%s.tmp.%d", path.c_str(), int(getpid())))); // no debris

    {
        // Abandoned writer (simulates dying mid-batch): the old file
        // must survive untouched.
        AtomicFileWriter w(path);
        w.stream() << "half-writ";
    }
    EXPECT_EQ(readFile(path), "design,ipc\nA,1.5\n");

    {
        AtomicFileWriter w(path);
        w.stream() << "v2\n";
        w.commit();
    }
    EXPECT_EQ(readFile(path), "v2\n");
}

TEST(Durable, AppendLogExtendsAcrossReopens)
{
    const std::string dir = freshDir("append");
    const std::string path = dir + "/log.jsonl";
    std::remove(path.c_str());

    {
        AppendLog log(path);
        EXPECT_TRUE(log.appendLine("{\"a\":1}"));
        EXPECT_TRUE(log.appendLine("{\"b\":2}"));
    }
    {
        // A second run must append, never truncate: that is what makes
        // the WAL a write-ahead log.
        AppendLog log(path);
        EXPECT_TRUE(log.appendLine("{\"c\":3}"));
    }
    EXPECT_EQ(readFile(path), "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
}

TEST(Durable, ManifestRecordsAndReloadsCompletedJobs)
{
    const std::string dir = freshDir("manifest");

    auto m = RunManifest::openOrCreate(dir, "unit-test grid=2x2");
    EXPECT_EQ(m->completedCount(), 0u);
    EXPECT_EQ(m->crashDir(), dir + "/crash");

    JobRecord ok;
    ok.key = "cell-1";
    ok.label = "A/app1";
    ok.ok = true;
    ok.metrics = awkwardMetrics();
    m->append(ok);

    JobRecord quar;
    quar.key = "cell-2";
    quar.label = "B/app1";
    quar.quarantined = true;
    quar.kind = FailureKind::ConfigError;
    m->append(quar);

    JobRecord keyless; // keyless jobs are not durable; must be ignored
    keyless.label = "adhoc";
    keyless.ok = true;
    m->append(keyless);

    m->finalize("complete");
    m.reset();

    auto re = RunManifest::openOrCreate(dir, "unit-test grid=2x2");
    EXPECT_EQ(re->completedCount(), 2u);
    ASSERT_NE(re->find("cell-1"), nullptr);
    EXPECT_TRUE(re->find("cell-1")->ok);
    EXPECT_EQ(re->find("cell-1")->metrics.ipc, ok.metrics.ipc);
    ASSERT_NE(re->find("cell-2"), nullptr);
    EXPECT_TRUE(re->find("cell-2")->quarantined);
    EXPECT_EQ(re->find("cell-2")->kind, FailureKind::ConfigError);
    EXPECT_EQ(re->find("cell-3"), nullptr);

    const std::string manifest = readFile(dir + "/manifest.json");
    EXPECT_NE(manifest.find("\"status\":\"running\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"completed\":2"), std::string::npos);
}

TEST(Durable, ManifestToleratesTornWalTail)
{
    const std::string dir = freshDir("torn");
    {
        auto m = RunManifest::openOrCreate(dir, "torn-test");
        JobRecord rec;
        rec.key = "survivor";
        rec.label = "ok";
        rec.ok = true;
        m->append(rec);
        m->finalize("interrupted");
    }
    {
        // A hard kill mid-append leaves a torn final line; the reopen
        // must keep every earlier record and just re-run that job.
        std::ofstream out(dir + "/jobs.jsonl", std::ios::app);
        out << "{\"key\":\"torn-victim\",\"label\":\"ha";
    }
    auto re = RunManifest::openOrCreate(dir, "torn-test");
    EXPECT_EQ(re->completedCount(), 1u);
    EXPECT_NE(re->find("survivor"), nullptr);
    EXPECT_EQ(re->find("torn-victim"), nullptr);
}

TEST(DurableDeathTest, ManifestRefusesForeignRunDirectory)
{
    const std::string dir = freshDir("mismatch");
    RunManifest::openOrCreate(dir, "sweep designs=A apps=x")
        ->finalize("interrupted");

    // Resuming with different grid options would silently mix
    // incompatible results into one complete-looking CSV.
    EXPECT_EXIT(RunManifest::openOrCreate(dir, "sweep designs=B apps=x"),
                ::testing::ExitedWithCode(1), "different batch");

    // Not a dcl1 manifest at all: the pinned incompatible-run-dir
    // code (6), so fleet launchers can tell "stop the whole fleet"
    // apart from one worker's bad flag (1).
    const std::string bogus = freshDir("bogus");
    {
        std::ofstream out(bogus + "/manifest.json");
        out << "not json at all\n";
    }
    EXPECT_EXIT(RunManifest::openOrCreate(bogus, "anything"),
                ::testing::ExitedWithCode(kExitIncompatibleRunDir),
                "unreadable manifest");

    // A manifest from an incompatible build signature (WAL schema /
    // DCL1_CHECK mode) exits the same way.
    const std::string old = freshDir("oldbuild");
    {
        std::ofstream out(old + "/manifest.json");
        out << "{\"signature\":\"wal-schema=0 check=0\","
               "\"config\":\"anything\",\"status\":\"complete\","
               "\"completed\":0}\n";
    }
    EXPECT_EXIT(RunManifest::openOrCreate(old, "anything"),
                ::testing::ExitedWithCode(kExitIncompatibleRunDir),
                "incompatible build");
}

TEST(Durable, CrashRecordRoundTripsReplayConfig)
{
    const std::string dir = freshDir("crash");

    JobResult result;
    result.index = 3;
    result.label = "Private-40/LeNet";
    result.kind = FailureKind::Timeout;
    result.attempts = 3;
    result.error = "cycle budget exceeded: 8000 > 4000";
    const std::string context =
        "\"design\":\"Private-40\",\"app\":\"LeNet\",\"cores\":40,"
        "\"slices\":16,\"channels\":8,\"seed\":7,\"measure\":2000,"
        "\"warmup\":500";
    writeCrashRecord(dir, result, context);

    // Labels contain '/', which must not become a path component.
    EXPECT_EQ(crashRecordName(3, "Private-40/LeNet"),
              "job003-Private-40_LeNet.json");
    const std::string path =
        dir + "/" + crashRecordName(result.index, result.label);
    ASSERT_TRUE(fileExists(path));

    const CrashConfig cfg = loadCrashRecord(path);
    EXPECT_EQ(cfg.design, "Private-40");
    EXPECT_EQ(cfg.app, "LeNet");
    EXPECT_TRUE(cfg.trace.empty());
    EXPECT_EQ(cfg.cores, 40u);
    EXPECT_EQ(cfg.slices, 16u);
    EXPECT_EQ(cfg.channels, 8u);
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_EQ(cfg.measure, 2000u);
    EXPECT_EQ(cfg.warmup, 500u);
    EXPECT_EQ(cfg.label, "Private-40/LeNet");
    EXPECT_EQ(cfg.error, result.error);
}

TEST(DurableDeathTest, ConfiglessCrashRecordCannotReplay)
{
    const std::string dir = freshDir("crash-bare");
    JobResult result;
    result.index = 0;
    result.label = "uncooperative";
    result.kind = FailureKind::WorkerException;
    writeCrashRecord(dir, result, ""); // job never set a crash context

    const std::string path =
        dir + "/" + crashRecordName(result.index, result.label);
    ASSERT_TRUE(fileExists(path));
    EXPECT_EXIT(loadCrashRecord(path), ::testing::ExitedWithCode(1),
                "no replayable config");
}

TEST(Durable, InterruptFlagIsCooperative)
{
    clearInterrupt();
    EXPECT_FALSE(interruptRequested());
    requestInterrupt();
    EXPECT_TRUE(interruptRequested());
    clearInterrupt();
    EXPECT_FALSE(interruptRequested());

    // A real SIGINT must only raise the flag, never kill the process.
    installSignalHandlers();
    std::raise(SIGINT);
    EXPECT_TRUE(interruptRequested());
    clearInterrupt();

    // SIGTERM — what fleet launchers send — drains the same way
    // instead of killing the worker mid-record.
    std::raise(SIGTERM);
    EXPECT_TRUE(interruptRequested());
    clearInterrupt();
}

/** Injects an interrupt after N fresh completions (deterministic
 *  stand-in for Ctrl-C at an exact point in the batch). */
class InterruptAfterSink : public ResultSink
{
  public:
    explicit InterruptAfterSink(std::size_t after) : after_(after) {}

    void
    onJobDone(const JobResult &result) override
    {
        if (result.resumed || result.skipped)
            return;
        if (++done_ >= after_)
            requestInterrupt();
    }

  private:
    std::size_t after_;
    std::size_t done_ = 0;
};

/** Captures the end-of-run summary for assertions. */
class SummarySink : public ResultSink
{
  public:
    RunSummary last;

    void
    onRunEnd(const RunSummary &summary,
             const std::vector<JobResult> &) override
    {
        last = summary;
    }
};

std::string
csvOf(const std::vector<JobResult> &results)
{
    // %.17g on purpose: byte-identity catches any round-trip loss in
    // the WAL, not just "close enough" agreement.
    std::string csv = "label,ipc,l1_miss_rate,avg_read_latency\n";
    for (const auto &r : results)
        csv += csprintf("%s,%.17g,%.17g,%.17g\n", r.label.c_str(),
                        r.metrics.ipc, r.metrics.l1MissRate,
                        r.metrics.avgReadLatency);
    return csv;
}

/**
 * The ISSUE-level contract: kill a 4-job sweep after 2 completions,
 * resume it, and the combined output is byte-identical to a run that
 * was never interrupted.
 */
TEST(Durable, InterruptedSweepResumesByteIdentically)
{
    const auto catalog = workload::appCatalog();
    ASSERT_GE(catalog.size(), 2u);
    core::ExperimentOptions eopts;
    eopts.measureCycles = 2000;
    eopts.warmupCycles = 500;

    exec::JobSet set;
    const core::SystemConfig sys;
    for (const auto &design :
         {core::baselineDesign(), core::privateDcl1(40)})
        for (std::size_t a = 0; a < 2; ++a)
            set.addCell(sys, design, catalog[a].params, eopts);
    ASSERT_EQ(set.size(), 4u);
    const std::string config = "test-sweep designs=2 apps=2";

    // Reference: the same batch, never interrupted.
    clearInterrupt();
    const std::string clean_dir = freshDir("resume-clean");
    std::string clean_csv;
    {
        auto manifest = RunManifest::openOrCreate(clean_dir, config);
        JobRunner runner(quietOpts(1));
        runner.attachManifest(manifest.get());
        const auto results = runner.run(set.specs());
        for (const auto &r : results)
            ASSERT_TRUE(r.ok) << r.label << ": " << r.error;
        clean_csv = csvOf(results);
    }

    // Interrupted: the injected Ctrl-C lands after two completions.
    const std::string dir = freshDir("resume-killed");
    {
        auto manifest = RunManifest::openOrCreate(dir, config);
        JobRunner runner(quietOpts(1));
        runner.attachManifest(manifest.get());
        InterruptAfterSink interrupter(2);
        SummarySink summary;
        runner.addSink(&interrupter);
        runner.addSink(&summary);
        const auto results = runner.run(set.specs());

        EXPECT_TRUE(summary.last.interrupted);
        EXPECT_EQ(summary.last.skippedJobs, 2u);
        EXPECT_TRUE(results[0].ok);
        EXPECT_TRUE(results[1].ok);
        EXPECT_TRUE(results[2].skipped);
        EXPECT_TRUE(results[3].skipped);
        EXPECT_EQ(manifest->completedCount(), 2u);

        const std::string manifest_json =
            readFile(dir + "/manifest.json");
        EXPECT_NE(manifest_json.find("\"status\":\"interrupted\""),
                  std::string::npos);
    }

    // Resume: first two cells come from the WAL, the rest simulate.
    clearInterrupt();
    {
        auto manifest = RunManifest::openOrCreate(dir, config);
        EXPECT_EQ(manifest->completedCount(), 2u);
        JobRunner runner(quietOpts(1));
        runner.attachManifest(manifest.get());
        SummarySink summary;
        runner.addSink(&summary);
        const auto results = runner.run(set.specs());

        EXPECT_TRUE(results[0].resumed);
        EXPECT_TRUE(results[1].resumed);
        EXPECT_FALSE(results[2].resumed);
        EXPECT_FALSE(results[3].resumed);
        for (const auto &r : results)
            ASSERT_TRUE(r.ok) << r.label << ": " << r.error;
        EXPECT_EQ(summary.last.resumedJobs, 2u);
        EXPECT_FALSE(summary.last.interrupted);
        EXPECT_EQ(manifest->completedCount(), 4u);

        EXPECT_EQ(csvOf(results), clean_csv);

        const std::string manifest_json =
            readFile(dir + "/manifest.json");
        EXPECT_NE(manifest_json.find("\"status\":\"complete\""),
                  std::string::npos);
    }
}

} // anonymous namespace
