/** @file Unit tests for the common substrate (bit utils, RNG, logging). */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitutils.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace
{

using namespace dcl1;

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitUtils, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_EQ(log2Floor(1024), 10u);
}

TEST(BitUtils, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    // The paper's home-bit count: ShY needs ceil(log2(Y)) bits.
    EXPECT_EQ(log2Ceil(40), 6u);
    EXPECT_EQ(log2Ceil(4), 2u); // Sh40+C10: log2(40/10)
}

TEST(BitUtils, DivCeil)
{
    EXPECT_EQ(divCeil(0, 32), 0u);
    EXPECT_EQ(divCeil(1, 32), 1u);
    EXPECT_EQ(divCeil(32, 32), 1u);
    EXPECT_EQ(divCeil(33, 32), 2u);
    EXPECT_EQ(divCeil(128, 32), 4u); // line -> flits
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 40ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 4000; ++i)
        seen.insert(rng.below(40));
    EXPECT_EQ(seen.size(), 40u);
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.01);
}

TEST(Log, Csprintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(csprintf("%u%%", 50u), "50%");
}

TEST(Log, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

} // anonymous namespace
