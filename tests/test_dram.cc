/** @file Unit tests for the GDDR5-like memory channel. */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::mem;

DramParams
params()
{
    DramParams p;
    p.name = "ch";
    p.numChannels = 16;
    return p;
}

MemRequestPtr
read(Addr addr)
{
    auto r = makeRequest(MemOp::Read, addr, 32, 0, 0, 0);
    r->fetchDepth = 1;
    return r;
}

/** Tick until a completion appears (or the deadline passes). */
MemRequestPtr
runUntilDone(DramChannel &ch, Cycle &now, Cycle deadline)
{
    while (now < deadline) {
        ++now;
        ch.tick(now);
        if (auto done = ch.takeCompleted(now))
            return std::move(*done);
    }
    return nullptr;
}

TEST(Dram, ReadCompletes)
{
    DramChannel ch(params());
    Cycle now = 0;
    ch.push(read(0x0), now);
    auto done = runUntilDone(ch, now, 200);
    ASSERT_TRUE(done);
    EXPECT_TRUE(done->isReply);
    EXPECT_EQ(done->payloadBytes, 128u); // fetch returns the line
    EXPECT_EQ(ch.reads(), 1u);
}

TEST(Dram, RowMissLatencyExceedsRowHit)
{
    DramParams p = params();
    DramChannel ch(p);
    Cycle now = 0;

    ch.push(read(0x0), now);
    const Cycle start1 = now;
    runUntilDone(ch, now, 500);
    const Cycle lat_miss = now - start1;

    // Same row (channel-local): next chunk owned by this channel.
    ch.push(read(Addr(p.chunkBytes) * p.numChannels), now);
    const Cycle start2 = now;
    runUntilDone(ch, now, 500);
    const Cycle lat_hit = now - start2;

    EXPECT_GT(lat_miss, lat_hit);
    EXPECT_EQ(ch.rowHits(), 1u);
    EXPECT_EQ(ch.rowMisses(), 1u);
}

TEST(Dram, FrfcfsPrefersRowHit)
{
    DramParams p = params();
    DramChannel ch(p);
    Cycle now = 0;
    // Open a row.
    ch.push(read(0x0), now);
    runUntilDone(ch, now, 500);

    // Queue a row miss (older) and a row hit (younger) to other banks /
    // same bank: the hit should be scheduled first.
    auto miss = read(Addr(p.rowBytes) * p.numChannels * p.numBanks * 7);
    auto hit = read(Addr(p.chunkBytes) * p.numChannels * 2);
    miss->warp = 1;
    hit->warp = 2;
    ch.push(std::move(miss), now);
    ch.push(std::move(hit), now);

    auto first = runUntilDone(ch, now, 500);
    ASSERT_TRUE(first);
    EXPECT_EQ(first->warp, 2u);
}

TEST(Dram, WritebackHasNoReply)
{
    DramChannel ch(params());
    Cycle now = 0;
    auto wb = makeRequest(MemOp::Write, 0x0, 128, invalidId, 0, 0);
    ch.push(std::move(wb), now);
    auto done = runUntilDone(ch, now, 300);
    EXPECT_FALSE(done);
    EXPECT_EQ(ch.writes(), 1u);
    EXPECT_FALSE(ch.busy());
}

TEST(Dram, QueueBackpressure)
{
    DramParams p = params();
    p.queueCap = 2;
    DramChannel ch(p);
    Cycle now = 0;
    ch.push(read(0x0), now);
    ch.push(read(0x1000000), now);
    EXPECT_FALSE(ch.canAccept());
}

TEST(Dram, BankLevelParallelismBeatsSingleBank)
{
    // N requests to N different banks finish much faster than N
    // requests to the same bank.
    DramParams p = params();
    const Addr bank_stride =
        Addr(p.rowBytes) * p.numChannels; // next local row -> next bank
    const Addr row_stride = bank_stride * p.numBanks; // same bank

    auto run_n = [&](Addr stride) {
        DramChannel ch(p);
        Cycle now = 0;
        for (int i = 0; i < 8; ++i)
            ch.push(read(stride * i), now);
        int done = 0;
        while (done < 8 && now < 5000) {
            ++now;
            ch.tick(now);
            while (ch.takeCompleted(now))
                ++done;
        }
        return now;
    };

    const Cycle parallel = run_n(bank_stride);
    const Cycle serial = run_n(row_stride);
    EXPECT_LT(parallel * 2, serial);
}

TEST(Dram, SaturatedThroughputNearBusBound)
{
    // Random traffic: the data bus (burstCycles per line) bounds
    // throughput; expect at least 60 % of the bus bound.
    DramParams p = params();
    DramChannel ch(p);
    Cycle now = 0;
    std::uint64_t pushed = 0, done = 0;
    while (now < 20000) {
        ++now;
        while (ch.canAccept()) {
            ch.push(read((pushed * 977) % 4096 * p.chunkBytes *
                         p.numChannels),
                    now);
            ++pushed;
        }
        ch.tick(now);
        while (ch.takeCompleted(now))
            ++done;
    }
    const double bus_bound = 1.0 / p.burstCycles;
    EXPECT_GT(double(done) / double(now), 0.6 * bus_bound);
}

} // anonymous namespace
