/** @file Unit tests for the DC-L1 node (Fig. 3 flows). */

#include <gtest/gtest.h>

#include "core/dcl1_node.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::core;
using namespace dcl1::mem;

CacheBankParams
nodeCache()
{
    CacheBankParams p;
    p.sizeBytes = 4 * 1024;
    p.assoc = 4;
    p.latency = 5;
    p.mshrs = 8;
    p.targetsPerMshr = 8;
    return p;
}

MemRequestPtr
read(Addr addr, CoreId core = 0)
{
    return makeRequest(MemOp::Read, addr, 32, core, 0, 0);
}

/** Run the node until a reply appears on Q2 (or deadline). */
MemRequestPtr
runUntilReply(DcL1Node &node, Cycle &now, Cycle deadline)
{
    while (now < deadline) {
        ++now;
        node.tick(now);
        if (auto r = node.takeToCore())
            return std::move(*r);
    }
    return nullptr;
}

TEST(DcL1Node, ReadMissFlowsQ1ToQ3)
{
    DcL1Node node(nodeCache(), 0, 4);
    ASSERT_TRUE(node.canAcceptFromCore());
    node.pushFromCore(read(0x1000));
    Cycle now = 0;
    node.tick(++now);
    node.tick(++now);
    auto fetch = node.takeToMem();
    ASSERT_TRUE(fetch.has_value());
    EXPECT_TRUE((*fetch)->isFetch());
}

TEST(DcL1Node, FillProducesReplyWithRequestedBytesOnly)
{
    DcL1Node node(nodeCache(), 0, 4);
    node.pushFromCore(read(0x1000));
    Cycle now = 0;
    node.tick(++now);
    node.tick(++now);
    auto fetch = node.takeToMem();
    ASSERT_TRUE(fetch.has_value());

    (*fetch)->isReply = true;
    (*fetch)->payloadBytes = 128; // L2 returned the full line
    node.pushFromMem(std::move(*fetch));

    auto reply = runUntilReply(node, now, now + 20);
    ASSERT_TRUE(reply);
    EXPECT_TRUE(reply->isReply);
    // Only the requested 32 B cross NoC#1 (paper Sec. III).
    EXPECT_EQ(reply->payloadBytes, 32u);
    EXPECT_TRUE(node.cache().tags().contains(0x1000 / 128));
}

TEST(DcL1Node, HitServedLocally)
{
    DcL1Node node(nodeCache(), 0, 4);
    Cycle now = 0;
    // Warm the line.
    node.pushFromCore(read(0x2000));
    node.tick(++now);
    node.tick(++now);
    auto fetch = node.takeToMem();
    (*fetch)->isReply = true;
    (*fetch)->payloadBytes = 128;
    node.pushFromMem(std::move(*fetch));
    ASSERT_TRUE(runUntilReply(node, now, now + 20));

    // A second read hits and never reaches Q3.
    node.pushFromCore(read(0x2000, 3));
    auto reply = runUntilReply(node, now, now + 20);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->core, 3u);
    EXPECT_FALSE(node.takeToMem().has_value());
    EXPECT_EQ(node.cache().hits(), 1u);
}

TEST(DcL1Node, BypassSkipsCache)
{
    DcL1Node node(nodeCache(), 0, 4);
    auto r = makeRequest(MemOp::Bypass, 0x9000, 128, 2, 0, 0);
    node.pushFromCore(std::move(r));
    Cycle now = 0;
    node.tick(++now);
    auto out = node.takeToMem();
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE((*out)->isBypass());
    EXPECT_EQ(node.cache().accesses(), 0u);
    EXPECT_EQ(node.bypassRequests(), 1u);

    // The bypass reply moves Q4 -> Q2 without touching the cache.
    (*out)->isReply = true;
    node.pushFromMem(std::move(*out));
    auto reply = runUntilReply(node, now, now + 10);
    ASSERT_TRUE(reply);
    EXPECT_TRUE(reply->isBypass());
    EXPECT_EQ(node.cache().accesses(), 0u);
}

TEST(DcL1Node, AtomicSkipsCache)
{
    DcL1Node node(nodeCache(), 0, 4);
    node.pushFromCore(makeRequest(MemOp::Atomic, 0x100, 32, 1, 0, 0));
    Cycle now = 0;
    node.tick(++now);
    auto out = node.takeToMem();
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE((*out)->isAtomic());
    EXPECT_EQ(node.cache().accesses(), 0u);
}

TEST(DcL1Node, WriteEvictFlow)
{
    DcL1Node node(nodeCache(), 0, 4);
    Cycle now = 0;
    // Warm a line.
    node.pushFromCore(read(0x3000));
    node.tick(++now);
    node.tick(++now);
    auto f = node.takeToMem();
    (*f)->isReply = true;
    (*f)->payloadBytes = 128;
    node.pushFromMem(std::move(*f));
    runUntilReply(node, now, now + 20);

    // Write hit: evicts the line and forwards the write to Q3.
    node.pushFromCore(makeRequest(MemOp::Write, 0x3000, 32, 0, 0, now));
    node.tick(++now);
    node.tick(++now);
    EXPECT_FALSE(node.cache().tags().contains(0x3000 / 128));
    auto w = node.takeToMem();
    ASSERT_TRUE(w.has_value());
    EXPECT_TRUE((*w)->isWrite());

    // The write ACK returns through Q4 to Q2.
    (*w)->isReply = true;
    (*w)->payloadBytes = 0;
    node.pushFromMem(std::move(*w));
    auto ack = runUntilReply(node, now, now + 10);
    ASSERT_TRUE(ack);
    EXPECT_TRUE(ack->isWrite());
}

TEST(DcL1Node, CrossCoreMshrMerge)
{
    DcL1Node node(nodeCache(), 0, 4);
    Cycle now = 0;
    node.pushFromCore(read(0x4000, 0));
    node.tick(++now);
    node.pushFromCore(read(0x4000, 1));
    node.tick(++now);
    node.tick(++now);

    // Exactly one fetch downstream.
    auto f = node.takeToMem();
    ASSERT_TRUE(f.has_value());
    EXPECT_FALSE(node.takeToMem().has_value());

    (*f)->isReply = true;
    (*f)->payloadBytes = 128;
    node.pushFromMem(std::move(*f));

    int replies = 0;
    std::set<CoreId> cores;
    while (now < 40) {
        ++now;
        node.tick(now);
        while (auto r = node.takeToCore()) {
            cores.insert((*r)->core);
            ++replies;
        }
    }
    EXPECT_EQ(replies, 2);
    EXPECT_EQ(cores.size(), 2u);
}

TEST(DcL1Node, QueueBackpressure)
{
    DcL1Node node(nodeCache(), 0, 2);
    node.pushFromCore(read(0x0));
    node.pushFromCore(read(0x80));
    EXPECT_FALSE(node.canAcceptFromCore());
    EXPECT_DEATH(node.pushFromCore(read(0x100)), "Q1 overflow");
}

TEST(DcL1Node, BusyUntilDrained)
{
    DcL1Node node(nodeCache(), 0, 4);
    EXPECT_FALSE(node.busy());
    node.pushFromCore(read(0x0));
    EXPECT_TRUE(node.busy());
}

} // anonymous namespace
