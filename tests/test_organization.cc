/** @file Property tests for the DC-L1 organization (home mapping). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/organization.hh"
#include "mem/address_map.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::core;

DesignConfig
dcl1Design(std::uint32_t nodes, std::uint32_t clusters)
{
    return clusteredDcl1(nodes, clusters);
}

TEST(Organization, PrivateMapsCoreGroupToOneNode)
{
    SystemConfig sys;
    Organization org(dcl1Design(40, 40), sys); // Pr40
    // Two cores per node; the home never depends on the address.
    for (CoreId c = 0; c < 80; ++c) {
        const NodeId n0 = org.homeNode(c, 0);
        for (Addr a = 0; a < 64 * 1024; a += 256)
            EXPECT_EQ(org.homeNode(c, a), n0);
        EXPECT_EQ(n0, c / 2);
    }
}

TEST(Organization, SharedUsesHomeBits)
{
    SystemConfig sys;
    Organization org(dcl1Design(40, 1), sys); // Sh40
    std::set<NodeId> homes;
    for (Addr a = 0; a < 40 * 256; a += 256)
        homes.insert(org.homeNode(0, a));
    EXPECT_EQ(homes.size(), 40u);
    // Every core agrees on the home of an address (fully shared).
    for (CoreId c = 0; c < 80; ++c)
        EXPECT_EQ(org.homeNode(c, 0x12340), org.homeNode(0, 0x12340));
}

TEST(Organization, ClusteredHomeStaysInCoreCluster)
{
    SystemConfig sys;
    Organization org(dcl1Design(40, 10), sys); // Sh40+C10
    for (CoreId c = 0; c < 80; ++c) {
        for (Addr a = 0; a < 32 * 1024; a += 256) {
            const NodeId n = org.homeNode(c, a);
            EXPECT_EQ(org.clusterOfNode(n), org.clusterOfCore(c));
        }
    }
}

TEST(Organization, ClusterGeometry)
{
    SystemConfig sys;
    Organization org(dcl1Design(40, 10), sys);
    EXPECT_EQ(org.nodesPerCluster(), 4u);
    EXPECT_EQ(org.coresPerCluster(), 8u);
    EXPECT_EQ(org.clusterOfCore(0), 0u);
    EXPECT_EQ(org.clusterOfCore(79), 9u);
    EXPECT_EQ(org.clusterOfNode(39), 9u);
}

TEST(Organization, PartitionedNoc2Predicate)
{
    SystemConfig sys;
    EXPECT_TRUE(Organization(dcl1Design(40, 10), sys).partitionedNoc2());
    EXPECT_TRUE(Organization(dcl1Design(40, 20), sys).partitionedNoc2());
    // Sh40: 40 homes do not divide 32 slices -> full crossbar.
    EXPECT_FALSE(Organization(dcl1Design(40, 1), sys).partitionedNoc2());
    // Pr40: one home per cluster -> trivially full crossbar.
    EXPECT_FALSE(Organization(dcl1Design(40, 40), sys).partitionedNoc2());
}

/**
 * The paper's key co-design property: with M homes per cluster and
 * M | numSlices, the L2 slice of an address is always in the home's
 * slice group, so NoC#2 decomposes into M small crossbars.
 */
class HomeSliceAlignmentTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(HomeSliceAlignmentTest, SliceMatchesHome)
{
    const auto [nodes, clusters] = GetParam();
    SystemConfig sys;
    Organization org(dcl1Design(nodes, clusters), sys);
    mem::AddressMap map(sys.numL2Slices, sys.numChannels, sys.chunkBytes);
    if (!org.partitionedNoc2())
        GTEST_SKIP() << "full NoC#2 crossbar";
    for (Addr a = 0; a < 1024 * 1024; a += 128) {
        EXPECT_TRUE(org.sliceMatchesHome(a, map.slice(a)))
            << "addr " << a;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HomeSliceAlignmentTest,
    ::testing::Values(std::make_pair(40u, 10u), std::make_pair(40u, 20u),
                      std::make_pair(40u, 5u), std::make_pair(80u, 20u),
                      std::make_pair(16u, 4u)));

/** Property: each cluster's homes partition the address space. */
class HomeCoverageTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(HomeCoverageTest, ChunksBalancedOverHomes)
{
    const auto [nodes, clusters] = GetParam();
    SystemConfig sys;
    Organization org(dcl1Design(nodes, clusters), sys);
    std::map<NodeId, int> counts;
    const int chunks = 1000 * int(org.nodesPerCluster());
    for (int i = 0; i < chunks; ++i)
        counts[org.homeNode(0, Addr(i) * 256)]++;
    EXPECT_EQ(counts.size(), org.nodesPerCluster());
    for (const auto &[node, n] : counts)
        EXPECT_EQ(n, 1000);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HomeCoverageTest,
    ::testing::Values(std::make_pair(40u, 1u), std::make_pair(40u, 10u),
                      std::make_pair(40u, 5u), std::make_pair(80u, 80u),
                      std::make_pair(20u, 4u)));

} // anonymous namespace
