/**
 * @file
 * Stress / failure-injection tests: adversarial configurations and
 * workloads must neither panic, deadlock, nor leak requests — every
 * run must still make progress and drain cleanly.
 */

#include <gtest/gtest.h>

#include "core/gpu_system.hh"
#include "workload/workload.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::core;

workload::WorkloadParams
mixedApp()
{
    workload::WorkloadParams p;
    p.name = "stress-mixed";
    p.warpsPerCore = 12;
    p.memRatio = 0.5;
    p.sharedLines = 600;
    p.sharedFrac = 0.7;
    p.privateLines = 400;
    p.coalescedAccesses = 2;
    p.writeFrac = 0.1;
    p.atomicFrac = 0.02;
    p.bypassFrac = 0.02;
    return p;
}

void
expectAlive(const SystemConfig &sys, const DesignConfig &design,
            const workload::WorkloadParams &app, Cycle cycles = 3000)
{
    GpuSystem gpu(sys, design, app);
    gpu.run(cycles, cycles);
    const RunMetrics rm = gpu.metrics();
    EXPECT_GT(rm.instructions, 0u) << design.name;
    EXPECT_TRUE(gpu.drain(200000)) << design.name;
}

TEST(Stress, MinimalNodeQueues)
{
    SystemConfig sys;
    sys.nodeQueueCap = 1; // every Q1..Q4 is a single entry
    expectAlive(sys, clusteredDcl1(40, 10, true), mixedApp());
}

TEST(Stress, SingleMshrAndTarget)
{
    SystemConfig sys;
    sys.l1Mshrs = 1;
    sys.l1TargetsPerMshr = 1;
    sys.l2Mshrs = 1;
    sys.l2TargetsPerMshr = 1;
    expectAlive(sys, baselineDesign(), mixedApp());
    expectAlive(sys, sharedDcl1(40), mixedApp());
}

TEST(Stress, TinyCaches)
{
    SystemConfig sys;
    sys.l1SizeBytes = 512; // one 4-way set of 128 B lines
    sys.l2SliceSizeBytes = 1024;
    expectAlive(sys, baselineDesign(), mixedApp());
    expectAlive(sys, clusteredDcl1(40, 10), mixedApp());
}

TEST(Stress, TinyDramQueues)
{
    SystemConfig sys;
    sys.dram.queueCap = 1;
    sys.dram.numBanks = 1;
    expectAlive(sys, baselineDesign(), mixedApp());
}

TEST(Stress, ZeroLatencyCaches)
{
    SystemConfig sys;
    sys.l1Latency = 0;
    sys.l2Latency = 0;
    expectAlive(sys, withL1Latency(clusteredDcl1(40, 10, true), 0),
                mixedApp());
}

TEST(Stress, WriteOnlyWorkload)
{
    workload::WorkloadParams p = mixedApp();
    p.writeFrac = 1.0;
    p.atomicFrac = 0.0;
    expectAlive(SystemConfig(), baselineDesign(), p);
    expectAlive(SystemConfig(), sharedDcl1(40), p);
}

TEST(Stress, AtomicHeavyWorkload)
{
    workload::WorkloadParams p = mixedApp();
    p.atomicFrac = 0.5;
    expectAlive(SystemConfig(), clusteredDcl1(40, 10), p);
}

TEST(Stress, BypassHeavyWorkload)
{
    workload::WorkloadParams p = mixedApp();
    p.bypassFrac = 0.4;
    p.memRatio = 0.2;
    expectAlive(SystemConfig(), clusteredDcl1(40, 10, true), p);
}

TEST(Stress, SingleWarpPerCore)
{
    workload::WorkloadParams p = mixedApp();
    p.warpsPerCore = 1;
    expectAlive(SystemConfig(), sharedDcl1(40), p);
}

TEST(Stress, MaximallyDivergentAccesses)
{
    workload::WorkloadParams p = mixedApp();
    p.coalescedAccesses = 8; // worst-case coalescer output
    p.memRatio = 0.8;
    expectAlive(SystemConfig(), clusteredDcl1(40, 10), p);
}

TEST(Stress, OneLineFootprint)
{
    // Every core hammers the same single line: maximal merging and
    // maximal camping at one home node.
    workload::WorkloadParams p = mixedApp();
    p.sharedLines = 1;
    p.sharedFrac = 1.0;
    p.writeFrac = 0.2;
    expectAlive(SystemConfig(), sharedDcl1(40), p);
    expectAlive(SystemConfig(), baselineDesign(), p);
}

TEST(Stress, ExtremeAggregation)
{
    // Pr10 pushes eight cores through each node; Sh80 runs with one
    // core per node but all-to-all homes.
    expectAlive(SystemConfig(), privateDcl1(10), mixedApp());
    expectAlive(SystemConfig(), sharedDcl1(80), mixedApp());
}

TEST(Stress, SmallMachine)
{
    SystemConfig sys = SystemConfig::scaled(8, 8, 4);
    expectAlive(sys, clusteredDcl1(4, 2), mixedApp());
}

TEST(Stress, WindowPatternSliding)
{
    workload::WorkloadParams p = mixedApp();
    p.sharedPattern = workload::Pattern::Window;
    p.windowLines = 8;
    p.windowPeriodCycles = 200;
    expectAlive(SystemConfig(), sharedDcl1(40), p);
}

} // anonymous namespace
