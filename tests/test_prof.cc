/**
 * @file
 * Host phase profiler (src/prof/) tests: nesting/self-time accounting,
 * thread-local stack correctness under the JobRunner, profiler-off
 * byte-identity against a golden run, and the JSON report schema.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/design.hh"
#include "core/gpu_system.hh"
#include "exec/job_runner.hh"
#include "prof/prof.hh"
#include "stats/prof_trace.hh"
#include "workload/workload.hh"

namespace
{

using namespace dcl1;

/** Find the first report node for @p phase, or nullptr. */
const prof::ReportNode *
findNode(const prof::Report &report, prof::Phase phase,
         std::uint8_t depth)
{
    for (const prof::ReportNode &n : report.nodes)
        if (n.phase == phase && n.depth == depth)
            return &n;
    return nullptr;
}

/**
 * Accounting drives enter()/exit() directly with synthetic durations:
 * the tree math must be exact, independent of any clock.
 */
TEST(ProfilerTest, NestingAndSelfTime)
{
    prof::Profiler p;
    p.enter(prof::Phase::Run);
    p.enter(prof::Phase::Core);
    p.exit(30);
    p.enter(prof::Phase::Core);
    p.exit(20);
    p.enter(prof::Phase::Noc);
    p.exit(10);
    p.exit(100);

    const prof::Report r = p.report();
    ASSERT_EQ(r.nodes.size(), 3u);
    EXPECT_TRUE(r.enabled);

    const prof::ReportNode *run = findNode(r, prof::Phase::Run, 0);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->count, 1u);
    EXPECT_EQ(run->totalNs, 100u);
    EXPECT_EQ(run->selfNs, 100u - 30u - 20u - 10u);

    const prof::ReportNode *core = findNode(r, prof::Phase::Core, 1);
    ASSERT_NE(core, nullptr);
    EXPECT_EQ(core->count, 2u); // same (parent, phase) scope merges
    EXPECT_EQ(core->totalNs, 50u);
    EXPECT_EQ(core->selfNs, 50u); // leaf: self == total

    const prof::ReportNode *noc = findNode(r, prof::Phase::Noc, 1);
    ASSERT_NE(noc, nullptr);
    EXPECT_EQ(noc->totalNs, 10u);

    // Pre-order: the root phase precedes its children.
    EXPECT_EQ(r.nodes[0].depth, 0u);
    EXPECT_EQ(r.nodes[0].phase, prof::Phase::Run);

    // coveredNs == sum of root totals == sum of all self times.
    std::uint64_t self_sum = 0;
    for (const prof::ReportNode &n : r.nodes)
        self_sum += n.selfNs;
    EXPECT_EQ(r.coveredNs(), 100u);
    EXPECT_EQ(self_sum, 100u);
}

TEST(ProfilerTest, CountersAccumulate)
{
    prof::Profiler p;
    p.count(prof::Counter::MemReqAlloc, 3);
    p.count(prof::Counter::MemReqAlloc);
    p.count(prof::Counter::QuiescentDram, 7);
    const prof::Report r = p.report();
    EXPECT_EQ(
        r.counters[static_cast<std::size_t>(prof::Counter::MemReqAlloc)],
        4u);
    EXPECT_EQ(r.counters[static_cast<std::size_t>(
                  prof::Counter::QuiescentDram)],
              7u);
}

TEST(ProfilerTest, CoverageAgainstExternalWall)
{
    prof::Profiler p;
    p.enter(prof::Phase::Build);
    p.exit(20);
    p.enter(prof::Phase::Run);
    p.exit(75);
    prof::Report r = p.report();
    EXPECT_EQ(r.coveredNs(), 95u);
    EXPECT_DOUBLE_EQ(r.coverage(), 0.0); // wall not yet set
    r.wallNs = 100;
    EXPECT_DOUBLE_EQ(r.coverage(), 0.95);
}

/** The tls() pointer is null by default and scoped by TlsGuard. */
TEST(ProfilerTest, TlsGuardInstallsAndRestores)
{
    EXPECT_EQ(prof::tls(), nullptr);
    EXPECT_FALSE(prof::active());
    prof::Profiler outer;
    {
        prof::TlsGuard g1(&outer);
        EXPECT_EQ(prof::tls(), &outer);
        prof::Profiler inner;
        {
            prof::TlsGuard g2(&inner);
            EXPECT_EQ(prof::tls(), &inner);
        }
        EXPECT_EQ(prof::tls(), &outer);
    }
    EXPECT_EQ(prof::tls(), nullptr);
}

/** With no profiler installed, hooks are inert and allocate nothing. */
TEST(ProfilerTest, HooksAreNoopsWhenOff)
{
    ASSERT_EQ(prof::tls(), nullptr);
    {
        DCL1_PROF_SCOPE(Run);
        DCL1_PROF_COUNT(MemReqAlloc, 5);
    } // must not crash or touch any profiler
    prof::ProfPhase scope(prof::Phase::Core);
    scope.stop();
    scope.stop(); // idempotent
}

TEST(ProfilerTest, JsonSchemaRoundTrip)
{
    prof::Profiler p;
    p.enter(prof::Phase::Run);
    p.enter(prof::Phase::Dram);
    p.exit(40);
    p.exit(90);
    p.count(prof::Counter::TickCycles, 123);
    prof::Report r = p.report();
    r.wallNs = 100;

    const std::string json = r.json();
    // Schema-versioned, with every field the consumers key on.
    EXPECT_NE(json.find("\"schema\":\"dcl1-prof-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"wall_ns\":100"), std::string::npos);
    EXPECT_NE(json.find("\"covered_ns\":90"), std::string::npos);
    EXPECT_NE(json.find("\"phase\":\"run\""), std::string::npos);
    EXPECT_NE(json.find("\"phase\":\"dram\""), std::string::npos);
    EXPECT_NE(json.find("\"total_ns\":40"), std::string::npos);
    EXPECT_NE(json.find("\"self_ns\":50"), std::string::npos);
    EXPECT_NE(json.find("\"tick_cycles\":123"), std::string::npos);
    // Depths distinguish the nesting.
    EXPECT_NE(json.find("\"depth\":0"), std::string::npos);
    EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
    // Balanced object (cheap well-formedness proxy without a parser).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(ProfilerTest, PhaseAndCounterNamesAreStable)
{
    for (std::size_t i = 0; i < prof::kPhaseCount; ++i)
        EXPECT_STRNE(prof::phaseName(static_cast<prof::Phase>(i)), "?");
    for (std::size_t i = 0; i < prof::kCounterCount; ++i)
        EXPECT_STRNE(prof::counterName(static_cast<prof::Counter>(i)),
                     "?");
}

/**
 * Thread-local stack correctness under the JobRunner: each of N
 * parallel jobs opens a distinctive scope pattern; every JobResult
 * must carry exactly its own counts, uncontaminated by the jobs that
 * shared the pool.
 */
TEST(ProfilerExecTest, PerJobReportsAreIsolated)
{
    exec::ExecOptions opts;
    opts.jobs = 4;
    opts.progress = false;
    opts.profile = true;
    exec::JobRunner runner(opts);

    std::vector<exec::JobSpec> specs(8);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        specs[i].label = "prof-job-" + std::to_string(i);
        specs[i].fn = [i](exec::JobContext &) {
            for (std::size_t k = 0; k <= i; ++k) {
                DCL1_PROF_SCOPE(Core);
                DCL1_PROF_COUNT(MemReqAlloc, 10);
            }
            return core::RunMetrics{};
        };
    }
    const std::vector<exec::JobResult> results = runner.run(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        const prof::Report &r = results[i].prof;
        EXPECT_TRUE(r.enabled);
        EXPECT_GT(r.wallNs, 0u);
        const prof::ReportNode *core =
            findNode(r, prof::Phase::Core, 0);
        ASSERT_NE(core, nullptr) << "job " << i;
        EXPECT_EQ(core->count, i + 1) << "job " << i;
        EXPECT_EQ(r.counters[static_cast<std::size_t>(
                      prof::Counter::MemReqAlloc)],
                  10u * (i + 1))
            << "job " << i;
    }
    // Worker threads must leave no profiler installed behind them.
    EXPECT_EQ(prof::tls(), nullptr);
}

/** Profiling off leaves JobResult::prof disabled and empty. */
TEST(ProfilerExecTest, DisabledByDefault)
{
    exec::ExecOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    exec::JobRunner runner(opts);
    std::vector<exec::JobSpec> specs(1);
    specs[0].label = "plain";
    specs[0].fn = [](exec::JobContext &) { return core::RunMetrics{}; };
    const std::vector<exec::JobResult> results = runner.run(specs);
    ASSERT_TRUE(results[0].ok);
    EXPECT_FALSE(results[0].prof.enabled);
    EXPECT_TRUE(results[0].prof.nodes.empty());
}

workload::WorkloadParams
profTestApp()
{
    workload::WorkloadParams p;
    p.name = "prof-test";
    p.warpsPerCore = 8;
    p.memRatio = 0.3;
    p.sharedLines = 400;
    p.sharedFrac = 0.7;
    p.privateLines = 256;
    p.coalescedAccesses = 2;
    return p;
}

/**
 * The zero-cost contract, at the source of truth: the same seed run
 * with and without a profiler installed must produce byte-identical
 * stats (text and JSON) and identical metrics. The profiler observes
 * the host; it must never perturb the simulated machine.
 */
TEST(ProfilerExecTest, ProfilerOffByteIdentity)
{
    const core::SystemConfig sys;
    const core::DesignConfig design = core::designByName("Sh40");

    auto golden = [&](bool profiled) {
        prof::Profiler profiler;
        std::ostringstream stats_txt, stats_json;
        core::RunMetrics rm;
        {
            prof::TlsGuard guard(profiled ? &profiler : nullptr);
            core::GpuSystem gpu(sys, design, profTestApp());
            gpu.run(2000, 1000);
            gpu.dumpStats(stats_txt);
            gpu.dumpStatsJson(stats_json);
            rm = gpu.metrics();
        }
        return std::make_tuple(stats_txt.str(), stats_json.str(), rm);
    };

    const auto [txt_off, json_off, rm_off] = golden(false);
    const auto [txt_on, json_on, rm_on] = golden(true);
    EXPECT_EQ(txt_off, txt_on);
    EXPECT_EQ(json_off, json_on);
    EXPECT_EQ(rm_off.cycles, rm_on.cycles);
    EXPECT_EQ(rm_off.instructions, rm_on.instructions);
    EXPECT_DOUBLE_EQ(rm_off.ipc, rm_on.ipc);
}

/**
 * A profiled GpuSystem run must attribute >= 95 % of its own bracket:
 * the acceptance criterion of the observability layer.
 */
TEST(ProfilerExecTest, CoverageAtLeast95Percent)
{
    exec::ExecOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    opts.profile = true;
    exec::JobRunner runner(opts);
    std::vector<exec::JobSpec> specs(1);
    specs[0].label = "coverage";
    specs[0].fn = [](exec::JobContext &) {
        const core::SystemConfig sys;
        core::GpuSystem gpu(sys, core::designByName("Sh40+C10+Boost"),
                            profTestApp());
        gpu.run(2000, 1000);
        return gpu.metrics();
    };
    const std::vector<exec::JobResult> results = runner.run(specs);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    const prof::Report &r = results[0].prof;
    ASSERT_TRUE(r.enabled);
    ASSERT_GT(r.wallNs, 0u);
    EXPECT_GE(r.coverage(), 0.95)
        << "covered " << r.coveredNs() << " of " << r.wallNs << " ns";
    // Build and Run both appear as root phases of a sweep-style job.
    EXPECT_NE(findNode(r, prof::Phase::Build, 0), nullptr);
    EXPECT_NE(findNode(r, prof::Phase::Run, 0), nullptr);
    // The tick hooks fired.
    EXPECT_GT(r.counters[static_cast<std::size_t>(
                  prof::Counter::TickCycles)],
              0u);
    EXPECT_GT(r.counters[static_cast<std::size_t>(
                  prof::Counter::MemReqAlloc)],
              0u);
}

/** Chrome-trace bridge: one flame-chart slice per report node. */
TEST(ProfTraceTest, ExportHostPhases)
{
    prof::Profiler p;
    p.enter(prof::Phase::Run);
    p.enter(prof::Phase::Core);
    p.exit(40000);
    p.enter(prof::Phase::Noc);
    p.exit(20000);
    p.exit(100000);
    prof::Report r = p.report();
    r.wallNs = 100000;

    stats::TraceExport trace;
    stats::exportHostPhases(trace, r);
    EXPECT_EQ(trace.events(), r.nodes.size());
    std::ostringstream os;
    trace.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"run\""), std::string::npos);
    EXPECT_NE(json.find("\"core\""), std::string::npos);
    EXPECT_NE(json.find("\"noc\""), std::string::npos);
}

} // anonymous namespace
