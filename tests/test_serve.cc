/** @file Tests for the multi-tenant serving layer. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hh"
#include "core/design.hh"
#include "core/experiment.hh"
#include "exec/determinism.hh"
#include "serve/arrival.hh"
#include "serve/job_mix.hh"
#include "serve/scheduler.hh"
#include "serve/serve_sim.hh"
#include "workload/app_catalog.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::serve;

// ---------------------------------------------------------------- arrivals

TEST(Arrival, PoissonSameSeedSameGaps)
{
    PoissonArrivals a(0.7, 42);
    PoissonArrivals b(0.7, 42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextGap(), b.nextGap());
}

TEST(Arrival, PoissonSeedChangesGaps)
{
    PoissonArrivals a(0.7, 1);
    PoissonArrivals b(0.7, 2);
    int diff = 0;
    for (int i = 0; i < 200; ++i)
        if (a.nextGap() != b.nextGap())
            ++diff;
    EXPECT_GT(diff, 100);
}

TEST(Arrival, PoissonEmpiricalRate)
{
    // lambda = 2 jobs/kcycle -> mean gap 500 cycles. Over 20k draws
    // the sample mean has standard error 500/sqrt(20000) ~ 3.5, so
    // +/-15 cycles is a > 4-sigma acceptance band; rounding to whole
    // cycles is bias-free to well under one cycle.
    PoissonArrivals a(2.0, 9);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += double(a.nextGap());
    const double mean = sum / n;
    EXPECT_NEAR(mean, 500.0, 15.0);
    EXPECT_EQ(a.meanGapCycles(), 500.0);
}

TEST(Arrival, PoissonRejectsNonPositiveRate)
{
    SimErrorTrap trap;
    EXPECT_THROW(PoissonArrivals(0.0, 1), SimAbort);
    EXPECT_THROW(PoissonArrivals(-1.0, 1), SimAbort);
}

TEST(Arrival, FixedRepeatsLastGap)
{
    FixedArrivals f({5, 0, 7});
    EXPECT_EQ(f.nextGap(), 5u);
    EXPECT_EQ(f.nextGap(), 1u); // zero gaps clamp to one cycle
    EXPECT_EQ(f.nextGap(), 7u);
    EXPECT_EQ(f.nextGap(), 7u);
    EXPECT_EQ(f.nextGap(), 7u);
}

// --------------------------------------------------------------- mix/trace

TEST(JobMixTest, ParseJsonMix)
{
    const JobMix mix = parseMixJson(
        "[{\"app\": \"T-AlexNet\", \"weight\": 3, \"cores\": 8,"
        "  \"budget\": 1000},\n"
        " {\"app\": \"C-BFS\"}]",
        "test");
    ASSERT_EQ(mix.entries.size(), 2u);
    EXPECT_EQ(mix.entries[0].app, "T-AlexNet");
    EXPECT_DOUBLE_EQ(mix.entries[0].weight, 3.0);
    EXPECT_EQ(mix.entries[0].cores, 8u);
    EXPECT_EQ(mix.entries[0].budget, 1000u);
    EXPECT_EQ(mix.entries[1].app, "C-BFS");
    EXPECT_DOUBLE_EQ(mix.entries[1].weight, 1.0);
    EXPECT_EQ(mix.entries[1].cores, 0u);
    EXPECT_EQ(mix.entries[1].budget, 0u);
}

TEST(JobMixTest, ParseRejectsGarbage)
{
    SimErrorTrap trap;
    // Unknown key, unknown app, non-positive weight, trailing junk.
    EXPECT_THROW(parseMixJson("[{\"app\":\"T-AlexNet\",\"zap\":1}]", "t"),
                 SimAbort);
    EXPECT_THROW(parseMixJson("[{\"app\":\"NoSuchApp\"}]", "t"), SimAbort);
    EXPECT_THROW(
        parseMixJson("[{\"app\":\"T-AlexNet\",\"weight\":0}]", "t"),
        SimAbort);
    EXPECT_THROW(parseMixJson("[{\"app\":\"T-AlexNet\"}] x", "t"),
                 SimAbort);
}

TEST(JobMixTest, AppListAndSampler)
{
    const JobMix mix = mixFromAppList("T-AlexNet,C-BFS");
    ASSERT_EQ(mix.entries.size(), 2u);
    MixSampler sampler(mix);
    Rng rng(5);
    int counts[2] = {0, 0};
    for (int i = 0; i < 2000; ++i)
        ++counts[sampler.draw(rng)];
    // Equal weights: both entries drawn, roughly evenly.
    EXPECT_GT(counts[0], 800);
    EXPECT_GT(counts[1], 800);
}

TEST(JobTraceTest, ParseAndValidate)
{
    const std::vector<TraceJob> jobs = parseJobTrace(
        "{\"cycle\": 0, \"app\": \"T-AlexNet\", \"cores\": 4}\n"
        "{\"cycle\": 100, \"app\": \"C-BFS\", \"budget\": 500}\n",
        "test");
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].arrival, 0u);
    EXPECT_EQ(jobs[0].cores, 4u);
    EXPECT_EQ(jobs[1].arrival, 100u);
    EXPECT_EQ(jobs[1].budget, 500u);

    SimErrorTrap trap;
    EXPECT_THROW(parseJobTrace("{\"cycle\":50,\"app\":\"T-AlexNet\"}\n"
                               "{\"cycle\":10,\"app\":\"T-AlexNet\"}\n",
                               "t"),
                 SimAbort); // arrivals must be non-decreasing
    EXPECT_THROW(parseJobTrace("{\"app\":\"T-AlexNet\"}\n", "t"),
                 SimAbort); // missing cycle
}

// ---------------------------------------------------------------- catalog

TEST(CatalogMetadata, EveryAppHasServingMetadata)
{
    for (const auto &app : workload::appCatalog()) {
        // The nominal budget is clamped to a sane serving range and
        // derived deterministically from the app's own parameters.
        EXPECT_GE(app.nominalInstrBudget, 50'000u) << app.params.name;
        EXPECT_LE(app.nominalInstrBudget, 1'000'000u) << app.params.name;
        EXPECT_EQ(app.nominalInstrBudget,
                  workload::nominalInstrBudgetFor(app.params))
            << app.params.name;
        EXPECT_EQ(app.footprint, workload::footprintClassFor(app.params))
            << app.params.name;
        // Name mapping is total and stable.
        const char *n = workload::footprintClassName(app.footprint);
        EXPECT_TRUE(std::string(n) == "small" ||
                    std::string(n) == "medium" ||
                    std::string(n) == "large");
    }
}

TEST(CatalogMetadata, FootprintClassBoundaries)
{
    workload::WorkloadParams p;
    p.sharedLines = 1000;
    p.privateLines = 500;
    EXPECT_EQ(workload::footprintClassFor(p),
              workload::FootprintClass::Small);
    p.privateLines = 4000;
    EXPECT_EQ(workload::footprintClassFor(p),
              workload::FootprintClass::Medium);
    p.privateLines = 8000;
    EXPECT_EQ(workload::footprintClassFor(p),
              workload::FootprintClass::Large);
}

// -------------------------------------------------------------- scheduler

TEST(SchedulerTest, CoreMapClaimRelease)
{
    CoreMap map(8);
    EXPECT_EQ(map.freeCount(), 8u);
    const std::vector<CoreId> got = map.claimLowest(3, 0, 8);
    EXPECT_EQ(got, (std::vector<CoreId>{0, 1, 2}));
    EXPECT_EQ(map.freeCount(), 5u);
    EXPECT_EQ(map.freeInRange(0, 4), 1u);
    map.release(got);
    EXPECT_EQ(map.freeCount(), 8u);
}

TEST(SchedulerTest, FcfsIsHeadOfLine)
{
    auto sched = makeScheduler(Policy::Fcfs, 8, 1);
    CoreMap map(8);
    map.claimLowest(6, 0, 8); // only 2 free
    std::vector<QueuedJob> waiting(2);
    waiting[0].id = 0;
    waiting[0].cores = 4; // head does not fit
    waiting[1].id = 1;
    waiting[1].cores = 1; // would fit, but FCFS must not backfill
    std::vector<CoreId> out;
    EXPECT_EQ(sched->pick(waiting, map, out), Scheduler::npos);
}

TEST(SchedulerTest, SjfBackfillsSmallestThatFits)
{
    auto sched = makeScheduler(Policy::Sjf, 8, 1);
    CoreMap map(8);
    map.claimLowest(6, 0, 8); // only 2 free
    std::vector<QueuedJob> waiting(3);
    waiting[0].id = 0;
    waiting[0].cores = 4;
    waiting[0].budget = 10; // smallest budget but does not fit
    waiting[1].id = 1;
    waiting[1].cores = 2;
    waiting[1].budget = 500;
    waiting[2].id = 2;
    waiting[2].cores = 1;
    waiting[2].budget = 90; // smallest that fits
    std::vector<CoreId> out;
    EXPECT_EQ(sched->pick(waiting, map, out), 2u);
    EXPECT_EQ(out.size(), 1u);
}

TEST(SchedulerTest, RoundRobinPartitionsTenants)
{
    auto sched = makeScheduler(Policy::RoundRobin, 8, 2);
    CoreMap map(8);
    std::vector<QueuedJob> waiting(2);
    waiting[0].id = 0;
    waiting[0].tenant = 0;
    waiting[0].cores = 8; // clamped to the 4-core partition
    waiting[1].id = 1;
    waiting[1].tenant = 1;
    waiting[1].cores = 2;
    std::vector<CoreId> out;
    ASSERT_EQ(sched->pick(waiting, map, out), 0u);
    EXPECT_EQ(out, (std::vector<CoreId>{0, 1, 2, 3})); // tenant 0's cores
    std::vector<QueuedJob> rest(waiting.begin() + 1, waiting.end());
    ASSERT_EQ(sched->pick(rest, map, out), 0u);
    EXPECT_EQ(out, (std::vector<CoreId>{4, 5})); // tenant 1's partition
}

TEST(SchedulerTest, PolicyNamesRoundTrip)
{
    EXPECT_EQ(policyByName("fcfs"), Policy::Fcfs);
    EXPECT_EQ(policyByName("sjf"), Policy::Sjf);
    EXPECT_EQ(policyByName("rr"), Policy::RoundRobin);
    EXPECT_STREQ(policyName(Policy::Sjf), "sjf");
    SimErrorTrap trap;
    EXPECT_THROW(policyByName("lifo"), SimAbort);
}

// ---------------------------------------------------------------- serving

JobMix
smallMix()
{
    JobMix mix;
    MixEntry a;
    a.app = "T-AlexNet";
    a.cores = 16;
    a.budget = 2000;
    mix.entries.push_back(a);
    MixEntry b;
    b.app = "C-BFS";
    b.cores = 8;
    b.budget = 1500;
    mix.entries.push_back(b);
    return mix;
}

TEST(ServeSim, CompletesUnderLowLoad)
{
    core::SystemConfig sys;
    ServeOptions opts;
    opts.policy = Policy::Fcfs;
    opts.lambdaJobsPerKcycle = 0.5;
    opts.numJobs = 10;
    opts.horizon = 400'000;
    opts.seed = 3;
    ServeSim sim(sys, core::baselineDesign(), smallMix(), opts);
    const ServeSummary s = sim.run();

    EXPECT_EQ(s.offered, 10u);
    EXPECT_EQ(s.completed, 10u);
    EXPECT_EQ(s.censored, 0u);
    EXPECT_LT(s.endCycle, opts.horizon); // early exit once all done
    EXPECT_GT(s.machine.instructions, 0u);
    for (const JobOutcome &o : sim.outcomes()) {
        EXPECT_TRUE(o.completed);
        EXPECT_GE(o.start, o.arrival);
        EXPECT_GT(o.complete, o.start);
        EXPECT_EQ(o.latency, o.complete - o.arrival);
        EXPECT_EQ(o.queueDelay, o.start - o.arrival);
        EXPECT_GE(o.instructions, o.budget); // budget reached
        EXPECT_GT(o.coresGranted, 0u);
    }
}

TEST(ServeSim, SameSeedByteIdenticalJobLog)
{
    core::SystemConfig sys;
    ServeOptions opts;
    opts.policy = Policy::Sjf;
    opts.lambdaJobsPerKcycle = 1.5;
    opts.numJobs = 8;
    opts.horizon = 150'000;
    opts.seed = 17;

    auto runOnce = [&](std::vector<std::string> &log) {
        ServeSim sim(sys, core::baselineDesign(), smallMix(), opts);
        sim.setJobLogSink(
            [&log](const std::string &line) { log.push_back(line); });
        sim.run();
        return exec::statDigest(sim.gpu());
    };
    std::vector<std::string> log_a, log_b;
    const std::uint64_t digest_a = runOnce(log_a);
    const std::uint64_t digest_b = runOnce(log_b);

    ASSERT_FALSE(log_a.empty());
    EXPECT_EQ(log_a, log_b);
    EXPECT_EQ(digest_a, digest_b);
}

TEST(ServeSim, SingleJobMatchesClassicSingleApp)
{
    core::SystemConfig sys;
    sys.seed = 5;
    const EquivalenceReport base = checkSingleJobEquivalence(
        sys, core::baselineDesign(), "T-AlexNet", 3000);
    EXPECT_TRUE(base.match)
        << "classic " << base.classicDigest << " serve "
        << base.serveDigest;
    const EquivalenceReport dcl1 = checkSingleJobEquivalence(
        sys, core::clusteredDcl1(40, 10, true), "T-AlexNet", 3000);
    EXPECT_TRUE(dcl1.match)
        << "classic " << dcl1.classicDigest << " serve "
        << dcl1.serveDigest;
}

TEST(ServeSim, P99MonotoneInOfferedLoad)
{
    core::SystemConfig sys;
    JobMix mix = smallMix();
    double prev = 0.0;
    for (const double lambda : {0.05, 0.5, 4.0}) {
        ServeOptions opts;
        opts.policy = Policy::Fcfs;
        opts.lambdaJobsPerKcycle = lambda;
        opts.numJobs = 12;
        opts.horizon = 400'000;
        opts.seed = 23;
        ServeSim sim(sys, core::baselineDesign(), mix, opts);
        const ServeSummary s = sim.run();
        EXPECT_GE(s.p99Latency, prev) << "lambda " << lambda;
        prev = s.p99Latency;
    }
}

TEST(ServeSim, TraceDrivenArrivals)
{
    core::SystemConfig sys;
    ServeOptions opts;
    opts.horizon = 200'000;
    opts.seed = 2;
    TraceJob j;
    j.app = "T-AlexNet";
    j.cores = 8;
    j.budget = 1000;
    j.arrival = 0;
    opts.trace.push_back(j);
    j.arrival = 50;
    opts.trace.push_back(j);
    ServeSim sim(sys, core::baselineDesign(), smallMix(), opts);
    const ServeSummary s = sim.run();
    EXPECT_EQ(s.offered, 2u);
    EXPECT_EQ(s.completed, 2u);
    // Both fit side by side: the second job must not wait for the
    // first (16 free cores remain).
    EXPECT_EQ(sim.outcomes()[1].queueDelay, 0u);
}

} // anonymous namespace
