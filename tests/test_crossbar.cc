/** @file Unit and property tests for the iSLIP crossbar. */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "noc/crossbar.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::noc;

Packet
packet(std::uint32_t src, std::uint32_t dst, std::uint32_t flits = 1)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.flits = flits;
    return p;
}

XbarParams
params(std::uint32_t in, std::uint32_t out, double ratio = 1.0)
{
    XbarParams p;
    p.name = "x";
    p.numInputs = in;
    p.numOutputs = out;
    p.clockRatio = ratio;
    return p;
}

TEST(Crossbar, DeliversAPacket)
{
    Crossbar x(params(2, 2));
    x.inject(packet(0, 1));
    for (int i = 0; i < 10; ++i)
        x.tick();
    auto p = x.eject(1);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->src, 0u);
    EXPECT_FALSE(x.eject(0).has_value());
    EXPECT_FALSE(x.busy());
}

TEST(Crossbar, FifoOrderWithinVoq)
{
    Crossbar x(params(1, 1));
    for (std::uint32_t i = 0; i < 4; ++i) {
        Packet p = packet(0, 0);
        p.endpoint = i;
        x.inject(std::move(p));
    }
    std::vector<std::uint32_t> order;
    for (int t = 0; t < 30; ++t) {
        x.tick();
        while (auto p = x.eject(0))
            order.push_back(p->endpoint);
    }
    ASSERT_EQ(order.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Crossbar, MultiFlitSerialization)
{
    // A 4-flit packet occupies the port 4x longer than a 1-flit one.
    auto deliver_time = [](std::uint32_t flits) {
        Crossbar x(params(1, 1));
        x.inject(packet(0, 0, flits));
        int t = 0;
        while (t < 100) {
            ++t;
            x.tick();
            if (x.eject(0))
                break;
        }
        return t;
    };
    const int t1 = deliver_time(1);
    const int t4 = deliver_time(4);
    EXPECT_EQ(t4 - t1, 3);
}

TEST(Crossbar, ClockRatioSlowsDelivery)
{
    auto deliver_time = [](double ratio) {
        Crossbar x(params(1, 1, ratio));
        x.inject(packet(0, 0, 4));
        int t = 0;
        while (t < 100) {
            ++t;
            x.tick();
            if (x.eject(0))
                break;
        }
        return t;
    };
    // Half-rate NoC takes about twice as long.
    EXPECT_NEAR(deliver_time(0.5), 2 * deliver_time(1.0), 2);
}

TEST(Crossbar, InputBackpressure)
{
    XbarParams p = params(1, 1);
    p.inputQueueCap = 2;
    Crossbar x(p);
    x.inject(packet(0, 0));
    x.inject(packet(0, 0));
    EXPECT_FALSE(x.canInject(0));
    x.tick();
    EXPECT_TRUE(x.canInject(0));
}

TEST(Crossbar, OutputQueueBackpressure)
{
    // Without ejection the output queue fills and transfers stop.
    XbarParams p = params(1, 1);
    p.outputQueueCap = 2;
    Crossbar x(p);
    for (int i = 0; i < 6; ++i)
        if (x.canInject(0))
            x.inject(packet(0, 0));
    for (int t = 0; t < 50; ++t)
        x.tick();
    // Only outputQueueCap packets were delivered.
    EXPECT_EQ(x.packetsDelivered(), 2u);
}

TEST(Crossbar, RejectsBadPorts)
{
    Crossbar x(params(2, 2));
    EXPECT_DEATH(x.inject(packet(2, 0)), "out of range");
    EXPECT_DEATH(x.inject(packet(0, 5)), "out of range");
}

TEST(Crossbar, TracksOutputFlits)
{
    Crossbar x(params(2, 2));
    x.inject(packet(0, 1, 3));
    for (int t = 0; t < 20; ++t) {
        x.tick();
        x.eject(1);
    }
    EXPECT_EQ(x.outputFlits(1), 3u);
    EXPECT_EQ(x.outputFlits(0), 0u);
    EXPECT_GT(x.outputUtilization(1), 0.0);
}

/** Property: no packets are lost or duplicated under random load. */
class XbarConservationTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t, double>>
{
};

TEST_P(XbarConservationTest, PacketsConserved)
{
    const auto [ins, outs, load] = GetParam();
    Crossbar x(params(ins, outs, 0.5));
    Rng rng(ins * 1000 + outs);
    std::uint64_t injected = 0, ejected = 0;
    std::vector<std::uint64_t> per_dst(outs, 0);

    for (int t = 0; t < 4000; ++t) {
        for (std::uint32_t in = 0; in < ins; ++in) {
            if (rng.uniform() < load && x.canInject(in)) {
                Packet p = packet(in, std::uint32_t(rng.below(outs)),
                                  1 + std::uint32_t(rng.below(4)));
                ++per_dst[p.dst];
                x.inject(std::move(p));
                ++injected;
            }
        }
        x.tick();
        for (std::uint32_t out = 0; out < outs; ++out) {
            while (auto p = x.eject(out)) {
                EXPECT_EQ(p->dst, out);
                ++ejected;
            }
        }
    }
    // Drain.
    for (int t = 0; t < 2000 && x.busy(); ++t) {
        x.tick();
        for (std::uint32_t out = 0; out < outs; ++out)
            while (x.eject(out))
                ++ejected;
    }
    EXPECT_EQ(injected, ejected);
    EXPECT_FALSE(x.busy());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, XbarConservationTest,
    ::testing::Values(std::make_tuple(2u, 1u, 0.3),
                      std::make_tuple(8u, 4u, 0.2),
                      std::make_tuple(80u, 32u, 0.05),
                      std::make_tuple(80u, 40u, 0.1),
                      std::make_tuple(10u, 8u, 0.4),
                      std::make_tuple(1u, 1u, 0.9)));

/** Property: saturated uniform traffic achieves decent throughput. */
TEST(Crossbar, SaturationThroughput)
{
    Crossbar x(params(16, 16, 1.0));
    Rng rng(5);
    std::uint64_t ejected = 0;
    const int cycles = 5000;
    for (int t = 0; t < cycles; ++t) {
        for (std::uint32_t in = 0; in < 16; ++in)
            while (x.canInject(in))
                x.inject(packet(in, std::uint32_t(rng.below(16))));
        x.tick();
        for (std::uint32_t out = 0; out < 16; ++out)
            while (x.eject(out))
                ++ejected;
    }
    // Single-iteration iSLIP on uniform traffic: >= 60 % of capacity.
    EXPECT_GT(double(ejected) / cycles, 0.6 * 16);
}

/** Property: inputs are served fairly under symmetric load. */
TEST(Crossbar, Fairness)
{
    Crossbar x(params(4, 1, 1.0));
    std::vector<std::uint64_t> served(4, 0);
    for (int t = 0; t < 4000; ++t) {
        for (std::uint32_t in = 0; in < 4; ++in)
            if (x.canInject(in))
                x.inject(packet(in, 0));
        x.tick();
        while (auto p = x.eject(0))
            ++served[p->src];
    }
    const double total = served[0] + served[1] + served[2] + served[3];
    for (int in = 0; in < 4; ++in)
        EXPECT_NEAR(served[in] / total, 0.25, 0.05);
}

} // anonymous namespace
