/** @file Unit tests for the lite GPU core's issue and memory model. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gpucore/lite_core.hh"
#include "workload/workload.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::gpucore;

/** Scripted trace source: every instruction is identical. */
class FixedSource : public workload::TraceSource
{
  public:
    FixedSource(std::uint32_t warps, workload::WarpInstr instr)
        : warps_(warps), instr_(instr)
    {}

    void
    nextInstr(CoreId, WarpId, Cycle, workload::WarpInstr &out) override
    {
        out = instr_;
        ++generated;
    }

    std::uint32_t warpsPerCore(CoreId) const override { return warps_; }

    std::uint64_t generated = 0;

  private:
    std::uint32_t warps_;
    workload::WarpInstr instr_;
};

workload::WarpInstr
arith()
{
    workload::WarpInstr i;
    i.isMem = false;
    return i;
}

workload::WarpInstr
load(Addr addr, std::uint8_t n = 1)
{
    workload::WarpInstr i;
    i.isMem = true;
    i.numAccesses = n;
    for (std::uint8_t k = 0; k < n; ++k) {
        i.accesses[k].op = mem::MemOp::Read;
        i.accesses[k].addr = addr + k * 128;
        i.accesses[k].bytes = 32;
    }
    return i;
}

workload::WarpInstr
store(Addr addr)
{
    workload::WarpInstr i;
    i.isMem = true;
    i.numAccesses = 1;
    i.accesses[0].op = mem::MemOp::Write;
    i.accesses[0].addr = addr;
    i.accesses[0].bytes = 32;
    return i;
}

LiteCoreParams
liteParams()
{
    LiteCoreParams p;
    p.id = 0;
    p.hasL1 = false;
    return p;
}

TEST(LiteCore, ArithmeticIssuesEveryCycle)
{
    FixedSource src(4, arith());
    LiteCore core(liteParams(), &src);
    for (Cycle t = 1; t <= 100; ++t)
        core.tick(t);
    EXPECT_EQ(core.instructions(), 100u);
    EXPECT_FALSE(core.busy());
}

TEST(LiteCore, LoadBlocksWarpUntilReply)
{
    FixedSource src(1, load(0x1000));
    LiteCore core(liteParams(), &src);
    core.tick(1); // issues the load, warp blocks
    core.tick(2);
    core.tick(3);
    EXPECT_EQ(core.instructions(), 1u);
    EXPECT_TRUE(core.busy());

    auto out = core.takeOutbound();
    ASSERT_TRUE(out.has_value());
    (*out)->isReply = true;
    (*out)->payloadBytes = 32;
    core.deliverReply(std::move(*out), 10);

    core.tick(11); // warp ready again
    EXPECT_EQ(core.instructions(), 2u);
}

TEST(LiteCore, MultipleWarpsHideLatency)
{
    // With many warps, issue continues while one warp waits.
    FixedSource src(8, load(0x0));
    LiteCore core(liteParams(), &src);
    for (Cycle t = 1; t <= 8; ++t)
        core.tick(t);
    EXPECT_EQ(core.instructions(), 8u); // one per warp
}

TEST(LiteCore, StoresDoNotBlockWarp)
{
    FixedSource src(1, store(0x2000));
    LiteCoreParams p = liteParams();
    p.maxOutstandingWrites = 4;
    LiteCore core(p, &src);
    // The single warp keeps issuing stores until the store buffer and
    // LSU fill, rather than blocking on the first one.
    for (Cycle t = 1; t <= 10; ++t)
        core.tick(t);
    EXPECT_GT(core.instructions(), 1u);
}

TEST(LiteCore, StoreBufferBounds)
{
    FixedSource src(1, store(0x2000));
    LiteCoreParams p = liteParams();
    p.maxOutstandingWrites = 2;
    p.outQueueCap = 64;
    p.lsuQueueCap = 64;
    LiteCore core(p, &src);
    for (Cycle t = 1; t <= 20; ++t)
        core.tick(t);
    // At most maxOutstandingWrites stores issued without ACKs.
    EXPECT_LE(core.instructions(), 2u);

    // ACK one store; another can issue.
    auto out = core.takeOutbound();
    ASSERT_TRUE(out.has_value());
    (*out)->isReply = true;
    core.deliverReply(std::move(*out), 30);
    core.tick(31);
    core.tick(32);
    EXPECT_GE(core.instructions(), 3u);
}

TEST(LiteCore, CoalescedBurstCountsOneInstruction)
{
    FixedSource src(1, load(0x0, 4));
    LiteCore core(liteParams(), &src);
    core.tick(1);
    core.tick(2);
    core.tick(3);
    EXPECT_EQ(core.instructions(), 1u);
    EXPECT_EQ(core.memInstructions(), 1u);
    // All four accesses drain to the outbound queue over time.
    int outbound = 0;
    for (Cycle t = 4; t <= 10; ++t) {
        core.tick(t);
        while (core.takeOutbound())
            ++outbound;
    }
    EXPECT_EQ(outbound, 4);
}

TEST(LiteCore, BaselineL1HitPathNoNoC)
{
    FixedSource src(1, load(0x0));
    LiteCoreParams p = liteParams();
    p.hasL1 = true;
    p.l1.sizeBytes = 4096;
    p.l1.latency = 4;
    p.l1.perfect = true; // every access hits locally
    LiteCore core(p, &src);
    for (Cycle t = 1; t <= 50; ++t)
        core.tick(t);
    EXPECT_GT(core.instructions(), 4u);
    EXPECT_FALSE(core.hasOutbound());
    EXPECT_GT(core.l1()->hits(), 0u);
}

TEST(LiteCore, BaselineMissGoesToNoC)
{
    FixedSource src(1, load(0x0));
    LiteCoreParams p = liteParams();
    p.hasL1 = true;
    p.l1.sizeBytes = 4096;
    LiteCore core(p, &src);
    for (Cycle t = 1; t <= 5; ++t)
        core.tick(t);
    auto out = core.takeOutbound();
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE((*out)->isFetch());

    // Returning the fill wakes the warp through the L1.
    (*out)->isReply = true;
    (*out)->payloadBytes = 128;
    core.deliverReply(std::move(*out), 20);
    for (Cycle t = 21; t <= 60; ++t)
        core.tick(t);
    EXPECT_GE(core.instructions(), 2u);
}

TEST(LiteCore, ReadLatencyTracked)
{
    FixedSource src(1, load(0x0));
    LiteCore core(liteParams(), &src);
    core.tick(1); // issue
    core.tick(2); // LSU -> outbound
    auto out = core.takeOutbound();
    ASSERT_TRUE(out.has_value());
    (*out)->isReply = true;
    core.deliverReply(std::move(*out), 41);
    EXPECT_EQ(core.readsCompleted(), 1u);
    EXPECT_DOUBLE_EQ(core.avgReadLatency(), 40.0);
}

TEST(LiteCore, BypassRequestSkipsL1)
{
    workload::WarpInstr i;
    i.isMem = true;
    i.numAccesses = 1;
    i.accesses[0].op = mem::MemOp::Bypass;
    i.accesses[0].addr = 0x8000;
    i.accesses[0].bytes = 128;
    FixedSource src(1, i);

    LiteCoreParams p = liteParams();
    p.hasL1 = true;
    p.l1.perfect = true;
    LiteCore core(p, &src);
    for (Cycle t = 1; t <= 5; ++t)
        core.tick(t);
    // The bypass access went to the NoC despite a perfect L1.
    EXPECT_TRUE(core.hasOutbound());
    EXPECT_EQ(core.l1()->accesses(), 0u);
}

TEST(LiteCore, GtoSticksToOneWarp)
{
    // Under GTO, a warp issuing arithmetic keeps the issue slot, so
    // after N cycles all N instructions came from warp 0. Use a
    // source that records which warp was asked.
    class RecordingSource : public workload::TraceSource
    {
      public:
        void
        nextInstr(CoreId, WarpId w, Cycle,
                  workload::WarpInstr &out) override
        {
            asked.push_back(w);
            out.isMem = false;
            out.numAccesses = 0;
        }
        std::uint32_t warpsPerCore(CoreId) const override { return 4; }
        std::vector<WarpId> asked;
    };

    RecordingSource gto_src;
    LiteCoreParams p = liteParams();
    p.sched = WarpSched::GreedyThenOldest;
    LiteCore gto(p, &gto_src);
    for (Cycle t = 1; t <= 20; ++t)
        gto.tick(t);
    for (WarpId w : gto_src.asked)
        EXPECT_EQ(w, 0u);

    RecordingSource rr_src;
    LiteCoreParams q = liteParams();
    q.sched = WarpSched::LooseRoundRobin;
    LiteCore rr(q, &rr_src);
    for (Cycle t = 1; t <= 20; ++t)
        rr.tick(t);
    // Round-robin touches every warp.
    std::set<WarpId> seen(rr_src.asked.begin(), rr_src.asked.end());
    EXPECT_EQ(seen.size(), 4u);
}

TEST(LiteCore, GtoWakesOldestFirst)
{
    // Two warps block on loads; replies arrive out of order, but GTO
    // issues the lower-id (older) warp first once both are ready.
    FixedSource src(2, load(0x0));
    LiteCoreParams p = liteParams();
    p.sched = WarpSched::GreedyThenOldest;
    LiteCore core(p, &src);
    for (Cycle t = 1; t <= 6; ++t)
        core.tick(t);
    std::vector<mem::MemRequestPtr> pending;
    while (auto r = core.takeOutbound())
        pending.push_back(std::move(*r));
    ASSERT_EQ(pending.size(), 2u);
    // Reply to warp 1 first, then warp 0.
    for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        (*it)->isReply = true;
        core.deliverReply(std::move(*it), 30);
    }
    core.tick(31);
    EXPECT_FALSE(core.busy() && false); // both woke; no crash
}

} // anonymous namespace
