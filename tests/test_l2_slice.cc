/** @file Unit tests for the L2 slice (bank + DRAM glue). */

#include <gtest/gtest.h>

#include "mem/l2_slice.hh"

namespace
{

using namespace dcl1;
using namespace dcl1::mem;

struct Rig
{
    Rig()
    {
        DramParams dp;
        dp.name = "ch";
        channel = std::make_unique<DramChannel>(dp);
        CacheBankParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 8 * 1024;
        l2p.latency = 4;
        slice = std::make_unique<L2Slice>(l2p, 0, channel.get());
    }

    /** Tick slice + channel, routing DRAM completions back. */
    void
    tick()
    {
        ++now;
        channel->tick(now);
        while (auto done = channel->takeCompleted(now))
            slice->onDramReply(std::move(*done), now);
        slice->tick(now);
    }

    MemRequestPtr
    runUntilReply(Cycle deadline)
    {
        while (now < deadline) {
            tick();
            if (auto r = slice->takeReply())
                return std::move(*r);
        }
        return nullptr;
    }

    Cycle now = 0;
    std::unique_ptr<DramChannel> channel;
    std::unique_ptr<L2Slice> slice;
};

MemRequestPtr
fetch(Addr addr, CoreId core = 0)
{
    auto r = makeRequest(MemOp::Read, addr, 32, core, 0, 0);
    ++r->fetchDepth; // an upstream L1's line fetch
    r->slice = 0;
    return r;
}

TEST(L2Slice, MissGoesToDramAndReplies)
{
    Rig rig;
    rig.slice->pushRequest(fetch(0x4000), rig.now);
    auto reply = rig.runUntilReply(500);
    ASSERT_TRUE(reply);
    EXPECT_TRUE(reply->isReply);
    EXPECT_TRUE(reply->isFetch()); // still the L1's fetch
    EXPECT_EQ(reply->payloadBytes, 128u);
    EXPECT_EQ(rig.channel->reads(), 1u);
    EXPECT_TRUE(rig.slice->bank().tags().contains(0x4000 / 128));
}

TEST(L2Slice, HitServedWithoutDram)
{
    Rig rig;
    rig.slice->pushRequest(fetch(0x4000), rig.now);
    ASSERT_TRUE(rig.runUntilReply(500));

    rig.slice->pushRequest(fetch(0x4000, 7), rig.now);
    auto reply = rig.runUntilReply(rig.now + 50);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->core, 7u);
    EXPECT_EQ(rig.channel->reads(), 1u); // no second DRAM access
}

TEST(L2Slice, WriteAckedLocally)
{
    Rig rig;
    auto w = makeRequest(MemOp::Write, 0x2000, 32, 3, 0, 0);
    w->slice = 0;
    rig.slice->pushRequest(std::move(w), rig.now);
    auto ack = rig.runUntilReply(100);
    ASSERT_TRUE(ack);
    EXPECT_TRUE(ack->isWrite());
    EXPECT_TRUE(ack->isReply);
    EXPECT_EQ(rig.channel->writes(), 0u); // absorbed (write-back L2)
}

TEST(L2Slice, BypassAllocatesAtL2)
{
    Rig rig;
    auto b = makeRequest(MemOp::Bypass, 0x8000, 128, 1, 0, 0);
    ++b->fetchDepth;
    b->slice = 0;
    rig.slice->pushRequest(std::move(b), rig.now);
    auto reply = rig.runUntilReply(500);
    ASSERT_TRUE(reply);
    // Instruction/texture data is cached at the L2 level.
    EXPECT_TRUE(rig.slice->bank().tags().contains(0x8000 / 128));
}

TEST(L2Slice, AtomicDoesNotAllocate)
{
    Rig rig;
    auto a = makeRequest(MemOp::Atomic, 0x6000, 32, 2, 0, 0);
    a->slice = 0;
    rig.slice->pushRequest(std::move(a), rig.now);
    auto reply = rig.runUntilReply(500);
    ASSERT_TRUE(reply);
    EXPECT_TRUE(reply->isAtomic());
    EXPECT_FALSE(rig.slice->bank().tags().contains(0x6000 / 128));
}

TEST(L2Slice, InputBackpressure)
{
    Rig rig;
    int pushed = 0;
    while (rig.slice->canAcceptRequest()) {
        rig.slice->pushRequest(fetch(Addr(pushed) * 0x4000), rig.now);
        ++pushed;
    }
    EXPECT_GT(pushed, 1);
    EXPECT_DEATH(rig.slice->pushRequest(fetch(0x0), rig.now), "full input");
}

TEST(L2Slice, BusyUntilDrained)
{
    Rig rig;
    EXPECT_FALSE(rig.slice->busy());
    rig.slice->pushRequest(fetch(0x4000), rig.now);
    EXPECT_TRUE(rig.slice->busy());
    ASSERT_TRUE(rig.runUntilReply(500));
    for (int i = 0; i < 10; ++i)
        rig.tick();
    EXPECT_FALSE(rig.slice->busy());
}

TEST(L2Slice, DirtyEvictionsReachDramAsWritebacks)
{
    // Fill the 64-line bank with dirty lines, then stream more writes
    // until victims flow to DRAM as fire-and-forget writebacks.
    Rig rig;
    for (int i = 0; i < 200; ++i) {
        while (!rig.slice->canAcceptRequest())
            rig.tick();
        auto w = makeRequest(MemOp::Write, Addr(i) * 128, 128, 0, 0,
                             rig.now);
        w->slice = 0;
        rig.slice->pushRequest(std::move(w), rig.now);
        rig.tick();
        while (rig.slice->takeReply()) {
        }
    }
    for (int i = 0; i < 300; ++i) {
        rig.tick();
        while (rig.slice->takeReply()) {
        }
    }
    EXPECT_GT(rig.channel->writes(), 0u);
}

} // anonymous namespace
