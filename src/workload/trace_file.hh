/**
 * @file
 * Trace-file workload source: replay per-warp instruction traces from
 * a text file, the adoption path for driving dcl1sim with real
 * application traces (e.g. extracted from GPGPU-Sim / NVBit).
 *
 * Format — one record per line, '#' starts a comment:
 *
 *   <core> <warp> X <count>            count arithmetic instructions
 *   <core> <warp> R <hex-addr> <bytes> global load
 *   <core> <warp> W <hex-addr> <bytes> global store
 *   <core> <warp> A <hex-addr> <bytes> atomic
 *   <core> <warp> B <hex-addr> <bytes> non-L1 (bypass) access
 *
 * Consecutive R/W records of the same (core, warp) marked with a
 * trailing '+' coalesce into one multi-access instruction:
 *
 *   0 3 R 1000 32 +
 *   0 3 R 1080 32
 *
 * Each warp replays its own stream; by default streams loop when
 * exhausted (throughput-style simulation).
 */

#ifndef DCL1_WORKLOAD_TRACE_FILE_HH
#define DCL1_WORKLOAD_TRACE_FILE_HH

#include <istream>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace dcl1::workload
{

/** See file comment. */
class TraceFileSource : public TraceSource
{
  public:
    /**
     * @param path trace file to load; fatal() on parse errors
     * @param num_cores cores in the simulated machine; trace records
     *        for cores outside [0, num_cores) are fatal
     * @param loop restart exhausted streams (default) or idle forever
     */
    TraceFileSource(const std::string &path, std::uint32_t num_cores,
                    bool loop = true);

    /** Parse from an already-open stream (unit tests). */
    TraceFileSource(std::istream &in, std::uint32_t num_cores,
                    bool loop = true);

    void nextInstr(CoreId core, WarpId warp, Cycle now,
                   WarpInstr &out) override;

    std::uint32_t warpsPerCore(CoreId core) const override;

    /** Total instruction records loaded. */
    std::uint64_t instructionCount() const { return instructions_; }

  private:
    void parse(std::istream &in, const std::string &name);
    std::vector<WarpInstr> &streamOf(CoreId core, WarpId warp);

    std::uint32_t numCores_;
    std::uint32_t warpsPerCore_ = 0;
    bool loop_;
    std::uint64_t instructions_ = 0;

    /** Per-(core, warp) instruction streams and replay cursors. */
    std::vector<std::vector<WarpInstr>> streams_;
    std::vector<std::size_t> cursor_;
};

} // namespace dcl1::workload

#endif // DCL1_WORKLOAD_TRACE_FILE_HH
