/**
 * @file
 * The synthetic TraceSource implementation driven by WorkloadParams.
 *
 * Address-space layout (line granularity, 128 B lines):
 *   shared segment   lines [0, sharedLines)
 *   private segments base 2^23 + core * 2^16 lines
 *   bypass segments  base 2^33 + core * 2^10 lines (I$/texture misses)
 */

#ifndef DCL1_WORKLOAD_SYNTHETIC_HH
#define DCL1_WORKLOAD_SYNTHETIC_HH

#include <vector>

#include "workload/workload.hh"

namespace dcl1::workload
{

/** See file comment. */
class SyntheticSource : public TraceSource
{
  public:
    /**
     * @param params application description
     * @param num_cores GPU core count
     * @param line_bytes cache line size
     * @param seed experiment seed (deterministic streams)
     */
    SyntheticSource(const WorkloadParams &params, std::uint32_t num_cores,
                    std::uint32_t line_bytes, std::uint64_t seed);

    void nextInstr(CoreId core, WarpId warp, Cycle now,
                   WarpInstr &out) override;

    std::uint32_t warpsPerCore(CoreId core) const override;

    const WorkloadParams &params() const { return params_; }

    /** Private working-set size of @p core in lines (imbalance-aware). */
    std::uint64_t privateLinesOf(CoreId core) const;

  private:
    LineAddr sharedLine(CoreId core, Cycle now, Rng &rng);
    LineAddr privateLine(CoreId core, WarpId warp, Rng &rng);

    WorkloadParams params_;
    std::uint32_t numCores_;
    std::uint32_t lineBytes_;

    struct WarpState
    {
        std::uint64_t streamPos = 0;
        std::array<LineAddr, 8> recent{};
        std::uint8_t recentCount = 0;
        std::uint8_t recentHead = 0;
    };

    std::vector<Rng> coreRng_;        ///< one RNG per core
    std::vector<WarpState> warpState_; ///< core-major [core][warp]
};

} // namespace dcl1::workload

#endif // DCL1_WORKLOAD_SYNTHETIC_HH
