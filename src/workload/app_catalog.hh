/**
 * @file
 * The 28-application catalog mirroring the paper's evaluation set
 * (CUDA-SDK C-*, Rodinia R-*, SHOC S-*, PolyBench P-*, Tango T-*).
 *
 * Each entry is a synthetic WorkloadParams record calibrated so the
 * application reproduces its published behaviour class:
 *  - replication-sensitive (12 apps; paper Fig. 1 blue boxes),
 *  - replication-insensitive, and within those
 *  - the five "poor-performing" apps that regress under Sh40
 *    (C-NN, C-RAY, P-3MM, P-GEMM, P-2DCONV; paper Fig. 9/13a).
 *
 * The paper's "F-2MIM" is reproduced here as F-2MM (a camping-limited
 * replication-sensitive app); see EXPERIMENTS.md.
 */

#ifndef DCL1_WORKLOAD_APP_CATALOG_HH
#define DCL1_WORKLOAD_APP_CATALOG_HH

#include <vector>

#include "workload/workload.hh"

namespace dcl1::workload
{

/**
 * Footprint class of an application: its combined shared + private
 * working set relative to one L1. The serving layer's job-mix
 * generator uses this to size a job's default core allocation.
 */
enum class FootprintClass : std::uint8_t
{
    Small,  ///< fits comfortably in one private L1
    Medium, ///< a few L1s; benefits from aggregation
    Large,  ///< approaches the aggregate L1 capacity
};

/** Stable lowercase name ("small"/"medium"/"large"). */
const char *footprintClassName(FootprintClass c);

/** Classify a workload by sharedLines + privateLines. */
FootprintClass footprintClassFor(const WorkloadParams &p);

/**
 * Nominal per-job instruction budget: roughly eight passes over the
 * application's footprint at its arithmetic intensity, clamped to
 * [50k, 1M]. The serving layer uses this as the default job length
 * when a mix entry does not override it.
 */
std::uint64_t nominalInstrBudgetFor(const WorkloadParams &p);

/** Catalog entry: parameters plus the paper's classification. */
struct AppInfo
{
    WorkloadParams params;
    bool replicationSensitive = false;
    bool poorUnderSh40 = false;

    /// @name Serving metadata (derived; see footprintClassFor)
    /// @{
    FootprintClass footprint = FootprintClass::Small;
    std::uint64_t nominalInstrBudget = 0;
    /// @}
};

/** All 28 applications, in catalog order. */
const std::vector<AppInfo> &appCatalog();

/** Lookup by name; fatal() if unknown. */
const AppInfo &appByName(const std::string &name);

/** The 12 replication-sensitive applications. */
std::vector<AppInfo> replicationSensitiveApps();

/** The 16 replication-insensitive applications. */
std::vector<AppInfo> replicationInsensitiveApps();

/** The five poor-performing (under Sh40) applications. */
std::vector<AppInfo> poorPerformingApps();

} // namespace dcl1::workload

#endif // DCL1_WORKLOAD_APP_CATALOG_HH
