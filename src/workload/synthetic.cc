#include "workload/synthetic.hh"

#include <algorithm>

#include "common/log.hh"

namespace dcl1::workload
{

namespace
{

constexpr LineAddr privateBaseLine = 1ull << 23;
constexpr LineAddr privateStrideLines = 1ull << 16;
constexpr LineAddr bypassBaseLine = 1ull << 33;
constexpr LineAddr bypassStrideLines = 1ull << 10;
constexpr std::uint64_t bypassSegLines = 64;

} // anonymous namespace

SyntheticSource::SyntheticSource(const WorkloadParams &params,
                                 std::uint32_t num_cores,
                                 std::uint32_t line_bytes,
                                 std::uint64_t seed)
    : params_(params), numCores_(num_cores), lineBytes_(line_bytes)
{
    if (num_cores == 0)
        fatal("SyntheticSource: zero cores");
    if (params.warpsPerCore == 0 || params.warpsPerCore > 64)
        fatal("SyntheticSource %s: warpsPerCore must be 1..64",
              params.name.c_str());
    if (params.sharedFrac > 0.0 && params.sharedLines == 0)
        fatal("SyntheticSource %s: sharedFrac without sharedLines",
              params.name.c_str());
    if (params.coalescedAccesses == 0 || params.coalescedAccesses > 8)
        fatal("SyntheticSource %s: coalescedAccesses must be 1..8",
              params.name.c_str());

    coreRng_.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c)
        coreRng_.emplace_back(seed * 0x9e3779b97f4a7c15ull + c + 1);
    warpState_.resize(std::size_t(num_cores) * params.warpsPerCore);
}

std::uint32_t
SyntheticSource::warpsPerCore(CoreId core) const
{
    (void)core;
    return params_.warpsPerCore;
}

std::uint64_t
SyntheticSource::privateLinesOf(CoreId core) const
{
    std::uint64_t lines = params_.privateLines;
    if (params_.hotCoreFactor > 1.0 && core % 4 == 0) {
        lines = static_cast<std::uint64_t>(double(lines) *
                                           params_.hotCoreFactor);
    }
    return std::max<std::uint64_t>(lines, 1);
}

LineAddr
SyntheticSource::sharedLine(CoreId core, Cycle now, Rng &rng)
{
    const std::uint64_t total = params_.sharedLines;

    // CTA-locality: confine this core's draws to a subrange.
    std::uint64_t range = total;
    std::uint64_t base = 0;
    if (params_.ctaLocality > 0.0 && numCores_ > 1) {
        range = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                double(total) * (1.0 - params_.ctaLocality)),
            1);
        base = (total - range) * core / (numCores_ - 1);
    }

    switch (params_.sharedPattern) {
      case Pattern::Uniform:
      case Pattern::Stream: // stream over shared data behaves uniformly
        return base + rng.below(range);
      case Pattern::HotCold:
        if (rng.chance(params_.hotProb))
            return rng.below(std::max<std::uint64_t>(params_.hotLines, 1));
        return base + rng.below(range);
      case Pattern::Window: {
        const std::uint64_t w =
            std::max<std::uint64_t>(params_.windowLines, 1);
        const std::uint64_t period =
            std::max<std::uint64_t>(params_.windowPeriodCycles, 1);
        const std::uint64_t pos = ((now / period) * w) % total;
        return (pos + rng.below(w)) % total;
      }
    }
    panic("SyntheticSource: bad shared pattern");
}

LineAddr
SyntheticSource::privateLine(CoreId core, WarpId warp, Rng &rng)
{
    const std::uint64_t lines = privateLinesOf(core);
    const LineAddr seg = privateBaseLine + core * privateStrideLines;
    WarpState &ws =
        warpState_[std::size_t(core) * params_.warpsPerCore + warp];

    if (params_.privatePattern == Pattern::Uniform)
        return seg + rng.below(lines);

    // Stream: sequential walk with optional short-distance reuse.
    if (params_.privateReuse > 0.0 && ws.recentCount > 0 &&
        rng.chance(params_.privateReuse)) {
        return ws.recent[rng.below(ws.recentCount)];
    }
    // Interleave warps across the segment so they stream disjoint parts.
    const std::uint64_t start =
        lines * warp / std::max<std::uint32_t>(params_.warpsPerCore, 1);
    const LineAddr line = seg + (start + ws.streamPos++) % lines;
    ws.recent[ws.recentHead] = line;
    ws.recentHead =
        std::uint8_t((ws.recentHead + 1u) % ws.recent.size());
    ws.recentCount = std::min<std::uint8_t>(
        ws.recentCount + 1, std::uint8_t(ws.recent.size()));
    return line;
}

void
SyntheticSource::nextInstr(CoreId core, WarpId warp, Cycle now,
                           WarpInstr &out)
{
    Rng &rng = coreRng_[core];
    out.isMem = false;
    out.numAccesses = 0;

    const double roll = rng.uniform();
    if (roll < params_.bypassFrac) {
        // Non-L1 access (instruction / texture / constant miss).
        out.isMem = true;
        out.numAccesses = 1;
        MemAccessDesc &a = out.accesses[0];
        a.op = mem::MemOp::Bypass;
        const LineAddr line = bypassBaseLine +
                              core * bypassStrideLines +
                              rng.below(bypassSegLines);
        a.addr = line * lineBytes_;
        a.bytes = lineBytes_;
        return;
    }
    if (roll >= params_.bypassFrac + params_.memRatio)
        return; // arithmetic instruction

    out.isMem = true;
    out.numAccesses = std::uint8_t(params_.coalescedAccesses);
    for (std::uint32_t i = 0; i < params_.coalescedAccesses; ++i) {
        MemAccessDesc &a = out.accesses[i];
        LineAddr line;
        if (params_.sharedFrac > 0.0 && rng.chance(params_.sharedFrac))
            line = sharedLine(core, now, rng);
        else
            line = privateLine(core, warp, rng);

        const double op_roll = rng.uniform();
        if (op_roll < params_.atomicFrac)
            a.op = mem::MemOp::Atomic;
        else if (op_roll < params_.atomicFrac + params_.writeFrac)
            a.op = mem::MemOp::Write;
        else
            a.op = mem::MemOp::Read;

        const std::uint32_t sectors = lineBytes_ / params_.accessBytes;
        a.addr = line * lineBytes_ +
                 (sectors > 1 ? rng.below(sectors) * params_.accessBytes
                              : 0);
        a.bytes = params_.accessBytes;
    }
}

} // namespace dcl1::workload
