#include "workload/trace_file.hh"

#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dcl1::workload
{

TraceFileSource::TraceFileSource(const std::string &path,
                                 std::uint32_t num_cores, bool loop)
    : numCores_(num_cores), loop_(loop)
{
    std::ifstream in(path);
    if (!in)
        fatal("trace file '%s' cannot be opened", path.c_str());
    parse(in, path);
}

TraceFileSource::TraceFileSource(std::istream &in,
                                 std::uint32_t num_cores, bool loop)
    : numCores_(num_cores), loop_(loop)
{
    parse(in, "<stream>");
}

std::vector<WarpInstr> &
TraceFileSource::streamOf(CoreId core, WarpId warp)
{
    const std::size_t idx = std::size_t(core) * warpsPerCore_ + warp;
    return streams_[idx];
}

void
TraceFileSource::parse(std::istream &in, const std::string &name)
{
    struct Record
    {
        CoreId core;
        WarpId warp;
        char op;
        Addr addr;
        std::uint32_t bytes;
        std::uint64_t count;
        bool coalesce;
    };
    std::vector<Record> records;

    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        Record r{};
        std::string op;
        if (!(ls >> r.core >> r.warp >> op))
            continue; // blank/comment line
        if (op.size() != 1 ||
            std::string("XRWAB").find(op[0]) == std::string::npos) {
            fatal("%s:%llu: bad op '%s' (expect X/R/W/A/B)",
                  name.c_str(), (unsigned long long)lineno, op.c_str());
        }
        r.op = op[0];
        if (r.op == 'X') {
            if (!(ls >> r.count) || r.count == 0)
                fatal("%s:%llu: X needs a positive count", name.c_str(),
                      (unsigned long long)lineno);
        } else {
            std::string addr_s;
            if (!(ls >> addr_s >> r.bytes) || r.bytes == 0)
                fatal("%s:%llu: memory op needs <hex-addr> <bytes>",
                      name.c_str(), (unsigned long long)lineno);
            r.addr = std::strtoull(addr_s.c_str(), nullptr, 16);
            std::string plus;
            if (ls >> plus && plus == "+")
                r.coalesce = true;
        }
        if (r.core >= numCores_)
            fatal("%s:%llu: core %u out of range (machine has %u)",
                  name.c_str(), (unsigned long long)lineno, r.core,
                  numCores_);
        records.push_back(r);
        warpsPerCore_ = std::max(warpsPerCore_, r.warp + 1);
    }
    if (records.empty())
        fatal("trace '%s' contains no records", name.c_str());

    streams_.resize(std::size_t(numCores_) * warpsPerCore_);
    cursor_.assign(streams_.size(), 0);

    // Assemble instructions, folding '+'-coalesced memory records.
    WarpInstr *open_mem = nullptr;
    CoreId open_core = invalidId;
    WarpId open_warp = invalidId;
    for (const Record &r : records) {
        auto &stream = streamOf(r.core, r.warp);
        if (r.op == 'X') {
            open_mem = nullptr;
            for (std::uint64_t i = 0; i < r.count; ++i) {
                WarpInstr instr;
                instr.isMem = false;
                stream.push_back(instr);
                ++instructions_;
            }
            continue;
        }

        MemAccessDesc acc;
        acc.addr = r.addr;
        acc.bytes = r.bytes;
        switch (r.op) {
          case 'R':
            acc.op = mem::MemOp::Read;
            break;
          case 'W':
            acc.op = mem::MemOp::Write;
            break;
          case 'A':
            acc.op = mem::MemOp::Atomic;
            break;
          default:
            acc.op = mem::MemOp::Bypass;
            break;
        }

        const bool continue_open = open_mem && open_core == r.core &&
                                   open_warp == r.warp;
        if (continue_open &&
            open_mem->numAccesses < open_mem->accesses.size()) {
            open_mem->accesses[open_mem->numAccesses++] = acc;
        } else {
            WarpInstr instr;
            instr.isMem = true;
            instr.numAccesses = 1;
            instr.accesses[0] = acc;
            stream.push_back(instr);
            ++instructions_;
            open_mem = &stream.back();
            open_core = r.core;
            open_warp = r.warp;
        }
        if (!r.coalesce)
            open_mem = nullptr;
    }
}

void
TraceFileSource::nextInstr(CoreId core, WarpId warp, Cycle now,
                           WarpInstr &out)
{
    (void)now;
    const std::size_t idx = std::size_t(core) * warpsPerCore_ + warp;
    const auto &stream = streams_[idx];
    if (stream.empty() || (!loop_ && cursor_[idx] >= stream.size())) {
        // Exhausted (or never-traced) warp: spin on arithmetic.
        out.isMem = false;
        out.numAccesses = 0;
        return;
    }
    out = stream[cursor_[idx] % stream.size()];
    ++cursor_[idx];
}

std::uint32_t
TraceFileSource::warpsPerCore(CoreId core) const
{
    (void)core;
    return warpsPerCore_;
}

} // namespace dcl1::workload
