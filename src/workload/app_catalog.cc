#include "workload/app_catalog.hh"

#include <algorithm>

#include "common/log.hh"

namespace dcl1::workload
{

namespace
{

/** Builder helpers keep the table readable. */
WorkloadParams
base(const char *name, const char *suite)
{
    WorkloadParams p;
    p.name = name;
    p.suite = suite;
    return p;
}

AppInfo
sensitive(WorkloadParams p)
{
    return AppInfo{std::move(p), /*replicationSensitive=*/true,
                   /*poorUnderSh40=*/false};
}

AppInfo
insensitive(WorkloadParams p, bool poor = false)
{
    return AppInfo{std::move(p), /*replicationSensitive=*/false, poor};
}

std::vector<AppInfo>
buildCatalog()
{
    std::vector<AppInfo> apps;

    // ---------------- replication-sensitive (12) ----------------
    // Tango CNNs: layer weights shared by every core; working set a few
    // times one L1 but well under the aggregate (paper: 86-95 %
    // replication, ~99 % miss-rate reduction with a single L1).
    {
        auto p = base("T-AlexNet", "T");
        p.warpsPerCore = 40;
        p.memRatio = 0.45;
        p.sharedLines = 950;
        p.sharedFrac = 0.97;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    {
        auto p = base("T-ResNet", "T");
        p.warpsPerCore = 40;
        p.memRatio = 0.42;
        p.sharedLines = 1000;
        p.sharedFrac = 0.94;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    {
        auto p = base("T-SqueezeNet", "T");
        p.warpsPerCore = 40;
        p.memRatio = 0.40;
        p.sharedLines = 850;
        p.sharedFrac = 0.92;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    {
        auto p = base("T-CifarNet", "T");
        p.warpsPerCore = 32;
        p.memRatio = 0.44;
        p.sharedLines = 700;
        p.sharedFrac = 0.90;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    // Graph traversal: large shared frontier, divergent accesses.
    {
        auto p = base("C-BFS", "C");
        p.memRatio = 0.50;
        p.sharedLines = 1600;
        p.sharedFrac = 0.75;
        p.coalescedAccesses = 4;
        p.atomicFrac = 0.01;
        apps.push_back(sensitive(p));
    }
    {
        auto p = base("R-SRAD", "R");
        p.memRatio = 0.35;
        p.sharedLines = 1200;
        p.sharedFrac = 0.60;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    {
        auto p = base("S-SPMV", "S");
        p.memRatio = 0.45;
        p.sharedLines = 1100;
        p.sharedFrac = 0.65;
        p.coalescedAccesses = 3;
        apps.push_back(sensitive(p));
    }
    // Footprint close to the full aggregate L1: only the fully shared
    // Sh40 dedups enough (paper: S-Reduction loses with Sh40+C10,
    // P-SYRK 13 % with C10 vs 2.4x with Sh40).
    {
        auto p = base("S-Reduction", "S");
        p.memRatio = 0.40;
        p.sharedLines = 9000;
        p.sharedFrac = 0.90;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    {
        auto p = base("P-SYRK", "P");
        p.memRatio = 0.45;
        p.sharedLines = 7800;
        p.sharedFrac = 0.85;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    // Matrix-multiply family: hot tile concentrated on few 256 B chunks
    // (partition camping under Sh40), plus a large cold shared region.
    {
        auto p = base("P-2MM", "P");
        p.memRatio = 0.45;
        p.sharedLines = 900;
        p.sharedFrac = 0.80;
        p.sharedPattern = Pattern::HotCold;
        p.hotLines = 8;
        p.hotProb = 0.50;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    {
        auto p = base("F-2MM", "F"); // the paper's F-2MIM
        p.memRatio = 0.45;
        p.sharedLines = 1000;
        p.sharedFrac = 0.80;
        p.sharedPattern = Pattern::HotCold;
        p.hotLines = 6;
        p.hotProb = 0.50;
        p.coalescedAccesses = 2;
        apps.push_back(sensitive(p));
    }
    // Bandwidth-sensitive: high hit rate under shared DC-L1s turns
    // NoC#1 into the bottleneck; only the Boost variant recovers it.
    {
        auto p = base("P-3DCONV", "P");
        p.memRatio = 0.55;
        p.sharedLines = 900;
        p.sharedFrac = 0.80;
        p.coalescedAccesses = 1;
        p.accessBytes = 128;
        p.writeFrac = 0.03;
        apps.push_back(sensitive(p));
    }

    // ---------------- replication-insensitive (16) ----------------
    // Poor performers under Sh40 (paper Fig. 9 / 13a):
    {
        // High local hit rate + low occupancy: cannot hide the
        // decoupled-L1 latency.
        auto p = base("C-NN", "C");
        p.warpsPerCore = 8;
        p.memRatio = 0.50;
        p.writeFrac = 0.02;
        p.privateLines = 96;
        p.privatePattern = Pattern::Uniform;
        apps.push_back(insensitive(p, /*poor=*/true));
    }
    {
        // Hot scene data on a handful of chunks: partition camping.
        auto p = base("C-RAY", "C");
        p.memRatio = 0.40;
        p.writeFrac = 0.01;
        p.sharedLines = 64;
        p.sharedFrac = 0.55;
        p.sharedPattern = Pattern::HotCold;
        p.hotLines = 8;
        p.hotProb = 0.95;
        p.privateLines = 1200;
        p.privateReuse = 0.85;
        apps.push_back(insensitive(p, /*poor=*/true));
    }
    {
        auto p = base("P-3MM", "P");
        p.memRatio = 0.40;
        p.sharedLines = 96;
        p.sharedFrac = 0.55;
        p.sharedPattern = Pattern::HotCold;
        p.hotLines = 12;
        p.hotProb = 0.90;
        p.privateLines = 1000;
        p.privateReuse = 0.80;
        apps.push_back(insensitive(p, /*poor=*/true));
    }
    {
        auto p = base("P-GEMM", "P");
        p.memRatio = 0.40;
        p.sharedLines = 128;
        p.sharedFrac = 0.50;
        p.sharedPattern = Pattern::HotCold;
        p.hotLines = 8;
        p.hotProb = 0.92;
        p.privateLines = 1200;
        p.privateReuse = 0.80;
        apps.push_back(insensitive(p, /*poor=*/true));
    }
    {
        // L1-bandwidth bound: high hit rate, very high intensity.
        auto p = base("P-2DCONV", "P");
        p.memRatio = 0.50;
        p.privateLines = 4000;
        p.privateReuse = 0.95;
        p.coalescedAccesses = 1;
        p.accessBytes = 128;
        apps.push_back(insensitive(p, /*poor=*/true));
    }
    // Neutral / latency-tolerant applications:
    {
        auto p = base("C-BLK", "C");
        p.memRatio = 0.05;
        p.privateLines = 8000;
        p.coalescedAccesses = 1;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("R-LUD", "R");
        p.memRatio = 0.12;
        p.sharedLines = 200;
        p.sharedFrac = 0.15;
        p.privateLines = 3000;
        p.privateReuse = 0.30;
        apps.push_back(insensitive(p));
    }
    {
        // Work-distribution imbalance: hot cores thrash their private
        // L1; a shared organization gives them the aggregate capacity.
        auto p = base("R-SC", "R");
        p.memRatio = 0.45;
        p.privateLines = 70;
        p.privatePattern = Pattern::Uniform;
        p.hotCoreFactor = 4.0;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("R-BP", "R");
        p.memRatio = 0.12;
        p.privateLines = 4000;
        p.privateReuse = 0.60;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("R-HS", "R");
        p.memRatio = 0.10;
        p.privateLines = 2500;
        p.privateReuse = 0.70;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("R-GAUSS", "R");
        p.memRatio = 0.10;
        p.privateLines = 3500;
        p.privateReuse = 0.50;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("R-NW", "R");
        p.warpsPerCore = 24;
        p.memRatio = 0.08;
        p.privateLines = 2000;
        p.privateReuse = 0.50;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("S-Scan", "S");
        p.memRatio = 0.07;
        p.privateLines = 6000;
        p.coalescedAccesses = 1;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("S-MD", "S");
        p.memRatio = 0.15;
        p.sharedLines = 300;
        p.sharedFrac = 0.20;
        p.privateLines = 1500;
        p.privatePattern = Pattern::Uniform;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("C-LPS", "C");
        p.memRatio = 0.10;
        p.privateLines = 3000;
        p.privateReuse = 0.60;
        apps.push_back(insensitive(p));
    }
    {
        auto p = base("C-SCAN", "C");
        p.memRatio = 0.06;
        p.privateLines = 5000;
        apps.push_back(insensitive(p));
    }

    if (apps.size() != 28)
        panic("app catalog must have 28 apps, has %zu", apps.size());

    // Serving metadata is derived, not hand-tuned: every entry gets a
    // footprint class and a nominal job length from its parameters.
    for (auto &app : apps) {
        app.footprint = footprintClassFor(app.params);
        app.nominalInstrBudget = nominalInstrBudgetFor(app.params);
    }
    return apps;
}

} // anonymous namespace

const char *
footprintClassName(FootprintClass c)
{
    switch (c) {
      case FootprintClass::Small:
        return "small";
      case FootprintClass::Medium:
        return "medium";
      case FootprintClass::Large:
        return "large";
    }
    panic("bad footprint class %u", static_cast<unsigned>(c));
}

FootprintClass
footprintClassFor(const WorkloadParams &p)
{
    const std::uint64_t lines = p.sharedLines + p.privateLines;
    if (lines < 2048)
        return FootprintClass::Small;
    if (lines < 8192)
        return FootprintClass::Medium;
    return FootprintClass::Large;
}

std::uint64_t
nominalInstrBudgetFor(const WorkloadParams &p)
{
    const std::uint64_t lines = p.sharedLines + p.privateLines;
    // Memory instructions per pass over the footprint, then total
    // instructions at the app's arithmetic intensity.
    const double mem_instrs =
        double(lines) / double(std::max(1u, p.coalescedAccesses));
    const double per_pass = mem_instrs / std::max(0.01, p.memRatio);
    const double budget = 8.0 * per_pass;
    const double clamped = std::min(1'000'000.0, std::max(50'000.0, budget));
    return static_cast<std::uint64_t>(clamped);
}

const std::vector<AppInfo> &
appCatalog()
{
    static const std::vector<AppInfo> catalog = buildCatalog();
    return catalog;
}

const AppInfo &
appByName(const std::string &name)
{
    for (const auto &app : appCatalog())
        if (app.params.name == name)
            return app;
    fatal("unknown application '%s'", name.c_str());
}

std::vector<AppInfo>
replicationSensitiveApps()
{
    std::vector<AppInfo> out;
    for (const auto &app : appCatalog())
        if (app.replicationSensitive)
            out.push_back(app);
    return out;
}

std::vector<AppInfo>
replicationInsensitiveApps()
{
    std::vector<AppInfo> out;
    for (const auto &app : appCatalog())
        if (!app.replicationSensitive)
            out.push_back(app);
    return out;
}

std::vector<AppInfo>
poorPerformingApps()
{
    std::vector<AppInfo> out;
    for (const auto &app : appCatalog())
        if (app.poorUnderSh40)
            out.push_back(app);
    return out;
}

} // namespace dcl1::workload
