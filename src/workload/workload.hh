/**
 * @file
 * Workload model: parameterized synthetic GPGPU memory-reference
 * streams.
 *
 * The paper evaluates 28 CUDA applications whose traces are not
 * available here. The cache designs under study react to *address
 * stream properties* — inter-core replication, working-set size,
 * access skew, arithmetic intensity, coalescing — so each application
 * is modelled as a WorkloadParams record that reproduces its published
 * characteristics (replication ratio, L1 miss rate, capacity
 * sensitivity; paper Fig. 1). See workload/app_catalog.hh.
 */

#ifndef DCL1_WORKLOAD_WORKLOAD_HH
#define DCL1_WORKLOAD_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "mem/request.hh"

namespace dcl1::workload
{

/** Address-generation pattern within a segment. */
enum class Pattern : std::uint8_t
{
    Uniform, ///< uniform random over the segment
    Stream,  ///< sequential per-warp walk (optionally with reuse)
    HotCold, ///< small hot subset with probability hotProb, else uniform
    Window,  ///< all cores access a sliding window (partition camping)
};

/** Per-application synthetic workload description. */
struct WorkloadParams
{
    std::string name = "app";
    std::string suite = "X";

    /// @name Occupancy and intensity
    /// @{
    std::uint32_t warpsPerCore = 48;
    double memRatio = 0.3;    ///< P(instruction is a global memory op)
    double bypassFrac = 0.01; ///< P(instruction is a non-L1 access)
    /// @}

    /// @name Shared (inter-core) footprint - the source of replication
    /// @{
    std::uint64_t sharedLines = 0; ///< shared segment size in lines
    double sharedFrac = 0.0;       ///< P(mem access targets shared data)
    Pattern sharedPattern = Pattern::Uniform;
    std::uint64_t hotLines = 0;  ///< HotCold: hot subset size
    double hotProb = 0.0;        ///< HotCold: P(access is hot)
    std::uint64_t windowLines = 0;        ///< Window: window size
    std::uint64_t windowPeriodCycles = 0; ///< Window: cycles per step
    /// @}

    /// @name Private (per-core) footprint
    /// @{
    std::uint64_t privateLines = 4096; ///< per-core segment in lines
    Pattern privatePattern = Pattern::Stream;
    double privateReuse = 0.0; ///< Stream: P(reuse a recent line)
    /**
     * Load imbalance (R-SC): cores with id % 4 == 0 get this factor
     * more private working set (1.0 = balanced).
     */
    double hotCoreFactor = 1.0;
    /// @}

    /// @name Access shape
    /// @{
    std::uint32_t coalescedAccesses = 1; ///< line requests per mem instr
    double writeFrac = 0.05;
    double atomicFrac = 0.0;
    std::uint32_t accessBytes = 32; ///< bytes needed per lane group
    /// @}

    /**
     * CTA-locality knob [0,1): fraction by which each core's shared
     * accesses are confined to a per-core subrange. 0 models the
     * default round-robin CTA scheduler (all cores touch everything);
     * larger values model the distributed CTA scheduler of [28].
     */
    double ctaLocality = 0.0;
};

/** One coalesced access of a memory instruction. */
struct MemAccessDesc
{
    mem::MemOp op = mem::MemOp::Read;
    Addr addr = 0;
    std::uint32_t bytes = 32;
};

/** A decoded warp instruction. */
struct WarpInstr
{
    bool isMem = false;
    std::uint8_t numAccesses = 0;
    std::array<MemAccessDesc, 8> accesses;
};

/** Produces per-warp instruction streams for the cores. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Generate the next instruction for (core, warp).
     * @param now current core cycle (drives Window phases)
     */
    virtual void nextInstr(CoreId core, WarpId warp, Cycle now,
                           WarpInstr &out) = 0;

    /** Warps resident on @p core (may differ per app). */
    virtual std::uint32_t warpsPerCore(CoreId core) const = 0;
};

} // namespace dcl1::workload

#endif // DCL1_WORKLOAD_WORKLOAD_HH
