/**
 * @file
 * Host-performance phase profiler.
 *
 * The simulator measures the *simulated* machine everywhere else; this
 * band measures the *host*: where does a wall-clock second of dcl1run
 * actually go? The profiler is a hierarchical phase timer — RAII
 * ProfPhase scopes nest into a tree keyed by a fixed Phase taxonomy —
 * plus a handful of event counters (MemRequest allocations, quiescent
 * tick-loop iterations) that explain *why* a phase is hot.
 *
 * Wiring follows the engine's one-simulation-per-worker-thread model:
 * an enabled run owns one Profiler per job and publishes it through a
 * thread_local pointer (prof::tls()). Every hook site — the
 * DCL1_PROF_SCOPE / DCL1_PROF_COUNT macros sprinkled through the tick
 * paths — loads that pointer and branches; when no profiler is
 * installed the hook is one TLS load and a predicted-not-taken branch,
 * which is the whole overhead contract: profiling off must leave
 * stdout/CSV/stats byte-identical *and* the hot loop effectively
 * untouched.
 *
 * The profiler reads the host clock by design — that is its entire
 * purpose — and never feeds a simulated value: a Report goes to
 * stderr, JSON files, and jobs.jsonl, all channels the determinism
 * contract already excludes. The audited `lint: wallclock-ok`
 * annotations below are honoured under src/prof/ (and src/exec/) and
 * nowhere else; see dcl1lint rule R6.
 */

#ifndef DCL1_PROF_PROF_HH
#define DCL1_PROF_PROF_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dcl1::prof
{

/**
 * Fixed phase taxonomy. A closed enum — not free-form strings — keeps
 * the hot-path cost of entering a phase at one array index and makes
 * reports comparable across runs, designs and PRs (perfdiff matches
 * phases by name).
 */
enum class Phase : std::uint8_t
{
    Build,     ///< GpuSystem construction (topology + component build)
    Run,       ///< the whole warmup+measure run loop
    Dram,      ///< DRAM channel ticks
    L2,        ///< L2 slice ticks
    Noc,       ///< crossbar/NoC arbitration, injection and ejection
    Core,      ///< SM core ticks (fetch/issue/mem-port drain)
    Node,      ///< DC-L1 node ticks (decoupled L1 bank + queues)
    Telemetry, ///< timeline sampling, latency attribution bookkeeping
    Check,     ///< invariant checker sweeps (heartbeat cadence)
    Drain,     ///< post-run quiesce/drain loops
};

/** Number of Phase values (array sizing). */
inline constexpr std::size_t kPhaseCount = 10;

/** Stable phase name (schema field in BENCH_perf.json / jobs.jsonl). */
const char *phaseName(Phase phase);

/** Cheap occurrence counters attributed to the profiled job. */
enum class Counter : std::uint8_t
{
    MemReqAlloc,    ///< MemRequest heap allocations (makeRequest)
    TickCycles,     ///< tickOnce iterations observed
    QuiescentDram,  ///< DRAM channel ticks with an empty queue
    QuiescentXbar,  ///< crossbar ticks with nothing in flight
    QuiescentCore,  ///< core ticks while !busy() (drained/idle)
    QuiescentNode,  ///< DC-L1 node ticks while !busy()
};

/** Number of Counter values (array sizing). */
inline constexpr std::size_t kCounterCount = 6;

/** Stable counter name (schema field). */
const char *counterName(Counter counter);

/**
 * One flattened node of a finished profile: the tree in pre-order,
 * self time already computed. Plain data so a Report can cross thread
 * and process boundaries (JobResult, jobs.jsonl) by value.
 */
struct ReportNode
{
    std::uint8_t depth = 0; ///< 0 = root phase
    Phase phase = Phase::Build;
    std::uint64_t count = 0;   ///< times the scope was entered
    std::uint64_t totalNs = 0; ///< inclusive wall time
    std::uint64_t selfNs = 0;  ///< totalNs minus direct children
};

/**
 * Copyable result of one profiled job.
 *
 * `wallNs` is the externally measured wall time of the whole job (set
 * by the JobRunner / dcl1run, which bracket the job more tightly than
 * any phase can); coverage() reports how much of it the phase tree
 * explains — the acceptance contract is >= 95 %.
 */
struct Report
{
    bool enabled = false;
    std::vector<ReportNode> nodes; ///< pre-order phase tree
    std::uint64_t counters[kCounterCount] = {};
    std::uint64_t wallNs = 0;

    /** Wall time attributed to root phases (== sum of all self). */
    std::uint64_t coveredNs() const;

    /** coveredNs / wallNs in [0, 1]; 0 when wallNs is unset. */
    double coverage() const;

    /**
     * Human table: one row per node (indented by depth), total / self
     * / share-of-wall columns, then the non-zero counters. Written to
     * @p out (stderr for tools) — never stdout, which belongs to the
     * deterministic simulated results.
     */
    void writeTable(std::FILE *out) const;

    /**
     * Compact JSON object (no trailing newline):
     * {"schema":"dcl1-prof-v1","wall_ns":...,"coverage":...,
     *  "phases":[{"phase":...,"depth":...,"count":...,"total_ns":...,
     *             "self_ns":...},...],"counters":{...}}
     * Embeddable as a jobs.jsonl field or dumpable to --profile=FILE.
     */
    std::string json() const;
};

/**
 * Per-thread hierarchical phase timer. Not thread-safe — by contract
 * a Profiler is driven by exactly one simulation thread through the
 * tls() pointer; the JobRunner installs a fresh one per job attempt.
 */
class Profiler
{
  public:
    Profiler();

    /** Open @p phase as a child of the current scope. */
    void enter(Phase phase);

    /** Close the current scope, charging it @p ns of wall time. */
    void exit(std::uint64_t ns);

    /** Bump @p counter by @p n. */
    void
    count(Counter counter, std::uint64_t n = 1)
    {
        counters_[static_cast<std::size_t>(counter)] += n;
    }

    /**
     * Flatten the tree into a Report. Callable mid-run (open scopes
     * contribute their completed children only); wallNs is left 0 for
     * the caller to fill in from its own bracket.
     */
    Report report() const;

  private:
    struct Node
    {
        Phase phase = Phase::Build;
        std::int32_t parent = -1;
        std::int32_t child[kPhaseCount];
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
    };

    std::int32_t childOf(std::int32_t parent, Phase phase);
    void flatten(std::int32_t index, std::uint8_t depth,
                 Report &out) const;

    std::vector<Node> nodes_;        ///< [0] is the synthetic root
    std::vector<std::int32_t> stack_; ///< open-scope node indices
    std::uint64_t counters_[kCounterCount] = {};
};

namespace detail
{
/** Backing store for tls(); install through TlsGuard only. */
extern thread_local Profiler *tlsProfiler;
} // namespace detail

/**
 * The profiler observing this thread's simulation; null (profiling
 * off) by default. The JobRunner and dcl1run install one per job via
 * TlsGuard; hook sites consult it through the macros below. Inline so
 * a disabled hook compiles to one TLS load and a branch.
 */
inline Profiler *tls() { return detail::tlsProfiler; }

/** True when a profiler is installed on this thread. */
inline bool active() { return tls() != nullptr; }

/** RAII install/restore of the thread's profiler pointer. */
class TlsGuard
{
  public:
    explicit TlsGuard(Profiler *profiler);
    ~TlsGuard();

    TlsGuard(const TlsGuard &) = delete;
    TlsGuard &operator=(const TlsGuard &) = delete;

  private:
    Profiler *saved_;
};

/**
 * RAII phase scope. When no profiler is installed on the thread the
 * constructor is one TLS load + branch and the destructor one branch —
 * cheap enough for per-cycle hook sites.
 */
class ProfPhase
{
    using HostClock = std::chrono::steady_clock; // lint: wallclock-ok

  public:
    explicit ProfPhase(Phase phase) : prof_(tls())
    {
        if (prof_) {
            prof_->enter(phase);
            start_ = HostClock::now();
        }
    }

    /**
     * Close the scope before end-of-block (idempotent). Lets one
     * function time consecutive sections without re-indenting each
     * into its own block.
     */
    void
    stop()
    {
        if (prof_) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    HostClock::now() - start_);
            prof_->exit(static_cast<std::uint64_t>(ns.count()));
            prof_ = nullptr;
        }
    }

    ~ProfPhase() { stop(); }

    ProfPhase(const ProfPhase &) = delete;
    ProfPhase &operator=(const ProfPhase &) = delete;

  private:
    Profiler *prof_;
    HostClock::time_point start_;
};

} // namespace dcl1::prof

// clang-format off
#define DCL1_PROF_CAT2(a, b) a##b
#define DCL1_PROF_CAT(a, b) DCL1_PROF_CAT2(a, b)

/** Time the rest of the enclosing scope as prof::Phase::name. */
#define DCL1_PROF_SCOPE(name)                                          \
    ::dcl1::prof::ProfPhase DCL1_PROF_CAT(dcl1_prof_scope_, __LINE__)( \
        ::dcl1::prof::Phase::name)

/** Bump prof::Counter::name by n when profiling is on. */
#define DCL1_PROF_COUNT(name, n)                                       \
    do {                                                               \
        if (::dcl1::prof::Profiler *dcl1_prof_p = ::dcl1::prof::tls()) \
            dcl1_prof_p->count(::dcl1::prof::Counter::name, (n));      \
    } while (0)
// clang-format on

#endif // DCL1_PROF_PROF_HH
