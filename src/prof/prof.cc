#include "prof/prof.hh"

#include <cinttypes>

#include "common/log.hh"

namespace dcl1::prof
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Build:
        return "build";
      case Phase::Run:
        return "run";
      case Phase::Dram:
        return "dram";
      case Phase::L2:
        return "l2";
      case Phase::Noc:
        return "noc";
      case Phase::Core:
        return "core";
      case Phase::Node:
        return "node";
      case Phase::Telemetry:
        return "telemetry";
      case Phase::Check:
        return "check";
      case Phase::Drain:
        return "drain";
    }
    return "?";
}

const char *
counterName(Counter counter)
{
    switch (counter) {
      case Counter::MemReqAlloc:
        return "memreq_alloc";
      case Counter::TickCycles:
        return "tick_cycles";
      case Counter::QuiescentDram:
        return "quiescent_dram_ticks";
      case Counter::QuiescentXbar:
        return "quiescent_xbar_ticks";
      case Counter::QuiescentCore:
        return "quiescent_core_ticks";
      case Counter::QuiescentNode:
        return "quiescent_node_ticks";
    }
    return "?";
}

Profiler::Profiler()
{
    // Synthetic root: every top-level phase is one of its children,
    // so the flattened report is a forest of depth-0 phases.
    Node root;
    for (auto &c : root.child)
        c = -1;
    nodes_.push_back(root);
    stack_.push_back(0);
    // A profiled job opens and closes a handful of distinct
    // (parent, phase) scopes; sizing for the full taxonomy squared
    // keeps the lazy child allocation out of the measured loop.
    nodes_.reserve(1 + kPhaseCount * kPhaseCount);
}

std::int32_t
Profiler::childOf(std::int32_t parent, Phase phase)
{
    const auto slot = static_cast<std::size_t>(phase);
    std::int32_t idx = nodes_[static_cast<std::size_t>(parent)].child[slot];
    if (idx >= 0)
        return idx;
    Node node;
    node.phase = phase;
    node.parent = parent;
    for (auto &c : node.child)
        c = -1;
    idx = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(node);
    nodes_[static_cast<std::size_t>(parent)].child[slot] = idx;
    return idx;
}

void
Profiler::enter(Phase phase)
{
    stack_.push_back(childOf(stack_.back(), phase));
}

void
Profiler::exit(std::uint64_t ns)
{
    if (stack_.size() <= 1)
        panic("prof: scope exit with no open scope");
    Node &node = nodes_[static_cast<std::size_t>(stack_.back())];
    node.count += 1;
    node.totalNs += ns;
    stack_.pop_back();
}

void
Profiler::flatten(std::int32_t index, std::uint8_t depth,
                  Report &out) const
{
    const Node &node = nodes_[static_cast<std::size_t>(index)];
    std::uint64_t child_ns = 0;
    for (const std::int32_t c : node.child)
        if (c >= 0)
            child_ns += nodes_[static_cast<std::size_t>(c)].totalNs;
    ReportNode rn;
    rn.depth = depth;
    rn.phase = node.phase;
    rn.count = node.count;
    rn.totalNs = node.totalNs;
    rn.selfNs = node.totalNs > child_ns ? node.totalNs - child_ns : 0;
    out.nodes.push_back(rn);
    // Pre-order children in taxonomy order: stable across runs, so
    // reports diff cleanly.
    for (const std::int32_t c : node.child)
        if (c >= 0)
            flatten(c, static_cast<std::uint8_t>(depth + 1), out);
}

Report
Profiler::report() const
{
    Report out;
    out.enabled = true;
    const Node &root = nodes_[0];
    for (const std::int32_t c : root.child)
        if (c >= 0)
            flatten(c, 0, out);
    for (std::size_t i = 0; i < kCounterCount; ++i)
        out.counters[i] = counters_[i];
    return out;
}

std::uint64_t
Report::coveredNs() const
{
    std::uint64_t total = 0;
    for (const ReportNode &n : nodes)
        if (n.depth == 0)
            total += n.totalNs;
    return total;
}

double
Report::coverage() const
{
    if (wallNs == 0)
        return 0.0;
    return static_cast<double>(coveredNs()) / static_cast<double>(wallNs);
}

void
Report::writeTable(std::FILE *out) const
{
    const double wall_ms = static_cast<double>(wallNs) / 1e6;
    std::fprintf(out,
                 "host phases (wall %.1f ms, %.1f%% attributed):\n",
                 wall_ms, 100.0 * coverage());
    std::fprintf(out, "  %-22s %12s %12s %7s %12s\n", "phase",
                 "total ms", "self ms", "%wall", "count");
    for (const ReportNode &n : nodes) {
        std::string label(static_cast<std::size_t>(n.depth) * 2, ' ');
        label += phaseName(n.phase);
        const double share =
            wallNs ? 100.0 * static_cast<double>(n.selfNs) /
                         static_cast<double>(wallNs)
                   : 0.0;
        std::fprintf(out, "  %-22s %12.3f %12.3f %6.1f%% %12" PRIu64 "\n",
                     label.c_str(),
                     static_cast<double>(n.totalNs) / 1e6,
                     static_cast<double>(n.selfNs) / 1e6, share,
                     n.count);
    }
    bool any = false;
    for (std::size_t i = 0; i < kCounterCount; ++i)
        any = any || counters[i] != 0;
    if (!any)
        return;
    std::fprintf(out, "  counters:\n");
    for (std::size_t i = 0; i < kCounterCount; ++i)
        if (counters[i] != 0)
            std::fprintf(out, "    %-24s %14" PRIu64 "\n",
                         counterName(static_cast<Counter>(i)),
                         counters[i]);
}

std::string
Report::json() const
{
    std::string out = csprintf(
        "{\"schema\":\"dcl1-prof-v1\",\"wall_ns\":%" PRIu64
        ",\"covered_ns\":%" PRIu64 ",\"coverage\":%.4f,\"phases\":[",
        wallNs, coveredNs(), coverage());
    bool first = true;
    for (const ReportNode &n : nodes) {
        if (!first)
            out += ',';
        first = false;
        out += csprintf("{\"phase\":\"%s\",\"depth\":%u,\"count\":%" PRIu64
                        ",\"total_ns\":%" PRIu64 ",\"self_ns\":%" PRIu64
                        "}",
                        phaseName(n.phase),
                        static_cast<unsigned>(n.depth), n.count,
                        n.totalNs, n.selfNs);
    }
    out += "],\"counters\":{";
    first = true;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
        if (!first)
            out += ',';
        first = false;
        out += csprintf("\"%s\":%" PRIu64,
                        counterName(static_cast<Counter>(i)),
                        counters[i]);
    }
    out += "}}";
    return out;
}

namespace detail
{

thread_local Profiler *tlsProfiler = nullptr;

} // namespace detail

TlsGuard::TlsGuard(Profiler *profiler) : saved_(detail::tlsProfiler)
{
    detail::tlsProfiler = profiler;
}

TlsGuard::~TlsGuard()
{
    detail::tlsProfiler = saved_;
}

} // namespace dcl1::prof
