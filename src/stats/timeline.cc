#include "stats/timeline.hh"

#include "common/log.hh"
#include "stats/stats.hh"

namespace dcl1::stats
{

TimelineSampler::TimelineSampler(Cycle interval, LineSink sink)
    : interval_(interval == 0 ? 1 : interval), sink_(std::move(sink))
{
    if (!sink_)
        fatal("TimelineSampler: null line sink");
}

void
TimelineSampler::addCounter(std::string name, CounterFn fn)
{
    Probe p;
    p.kind = Probe::Kind::Counter;
    p.name = std::move(name);
    p.num = std::move(fn);
    probes_.push_back(std::move(p));
}

void
TimelineSampler::addPerCycle(std::string name, CounterFn fn)
{
    Probe p;
    p.kind = Probe::Kind::PerCycle;
    p.name = std::move(name);
    p.num = std::move(fn);
    probes_.push_back(std::move(p));
}

void
TimelineSampler::addRatio(std::string name, CounterFn num, CounterFn den)
{
    Probe p;
    p.kind = Probe::Kind::Ratio;
    p.name = std::move(name);
    p.num = std::move(num);
    p.den = std::move(den);
    probes_.push_back(std::move(p));
}

void
TimelineSampler::addGauge(std::string name, GaugeFn fn)
{
    Probe p;
    p.kind = Probe::Kind::Gauge;
    p.name = std::move(name);
    p.gauge = std::move(fn);
    probes_.push_back(std::move(p));
}

void
TimelineSampler::addGaugeArray(std::string name, std::size_t count,
                               GaugeAtFn fn)
{
    Probe p;
    p.kind = Probe::Kind::GaugeArray;
    p.name = std::move(name);
    p.count = count;
    p.gaugeAt = std::move(fn);
    probes_.push_back(std::move(p));
}

void
TimelineSampler::setSampleHook(std::function<void(Cycle, Cycle)> hook)
{
    hook_ = std::move(hook);
}

void
TimelineSampler::start(Cycle now)
{
    for (Probe &p : probes_) {
        if (p.num)
            p.lastNum = p.num();
        if (p.den)
            p.lastDen = p.den();
    }
    lastCycle_ = now;
    nextSample_ = now + interval_;
    started_ = true;
}

void
TimelineSampler::flushTail(Cycle now)
{
    if (started_ && now > lastCycle_)
        sampleNow(now);
}

void
TimelineSampler::rebase(Cycle now)
{
    phase_ = "measure";
    start(now);
}

void
TimelineSampler::finish(Cycle now)
{
    flushTail(now);
}

void
TimelineSampler::sampleNow(Cycle now)
{
    const Cycle dt = now - lastCycle_;
    if (dt == 0)
        return;
    std::string row;
    row.reserve(192);
    row += "{\"cycle\":";
    row += std::to_string(now);
    row += ",\"dt\":";
    row += std::to_string(dt);
    row += ",\"phase\":\"";
    row += phase_;
    row += "\"";
    for (Probe &p : probes_) {
        row += ",\"";
        row += p.name;
        row += "\":";
        switch (p.kind) {
          case Probe::Kind::Counter: {
            const std::uint64_t v = p.num();
            row += std::to_string(v - p.lastNum);
            p.lastNum = v;
            break;
          }
          case Probe::Kind::PerCycle: {
            const std::uint64_t v = p.num();
            row += formatDouble(double(v - p.lastNum) / double(dt));
            p.lastNum = v;
            break;
          }
          case Probe::Kind::Ratio: {
            const std::uint64_t n = p.num();
            const std::uint64_t d = p.den();
            const std::uint64_t dn = n - p.lastNum;
            const std::uint64_t dd = d - p.lastDen;
            row += formatDouble(dd ? double(dn) / double(dd) : 0.0);
            p.lastNum = n;
            p.lastDen = d;
            break;
          }
          case Probe::Kind::Gauge:
            row += formatDouble(p.gauge());
            break;
          case Probe::Kind::GaugeArray: {
            row += "[";
            for (std::size_t i = 0; i < p.count; ++i) {
                if (i)
                    row += ",";
                row += formatDouble(p.gaugeAt(i));
            }
            row += "]";
            break;
          }
        }
    }
    row += "}";
    sink_(row);
    ++rows_;
    if (hook_)
        hook_(now, dt);
    lastCycle_ = now;
    nextSample_ = now + interval_;
}

} // namespace dcl1::stats
