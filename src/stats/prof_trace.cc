#include "stats/prof_trace.hh"

#include <vector>

namespace dcl1::stats
{

void
exportHostPhases(TraceExport &trace, const prof::Report &report,
                 std::uint32_t track_id)
{
    // cursor[d] is the next free host-ns offset for a depth-d slice;
    // entering a node resets cursor[d+1] to its own start so children
    // pack left-to-right inside the parent span.
    std::vector<std::uint64_t> cursor{0};
    for (const prof::ReportNode &n : report.nodes) {
        const std::size_t d = n.depth;
        if (cursor.size() > d + 1)
            cursor.resize(d + 1);
        const std::uint64_t start = cursor[d];
        trace.reqSlice(track_id, prof::phaseName(n.phase),
                       Cycle{start / 1000},
                       Cycle{(start + n.totalNs) / 1000});
        cursor[d] += n.totalNs;
        cursor.push_back(start);
    }
}

} // namespace dcl1::stats
