/**
 * @file
 * Chrome trace-event export.
 *
 * Collects two kinds of events and serializes them as a catapult /
 * Perfetto-loadable JSON trace (chrome://tracing "trace event format"):
 *
 *  - "X" complete events: one slice per (sampled request, segment)
 *    span, emitted live by the latency-attribution slow path. Each
 *    sampled request gets its own tid so its lifecycle reads as one
 *    horizontal track.
 *  - "C" counter events: per-interval utilization tracks (queue
 *    depths, MSHR occupancy, ...) fed by the timeline sampler's hook.
 *
 * Timestamps are simulated cycles reported through the trace format's
 * microsecond field; absolute wall time is meaningless in a simulator
 * and never enters the file, so same-seed traces are byte-identical.
 *
 * The exporter is wired to the attribution slow path through a
 * thread_local sink pointer (tlsTraceSink), matching the engine's
 * one-simulation-per-worker-thread model: parallel jobs never share a
 * trace buffer.
 */

#ifndef DCL1_STATS_TRACE_EXPORT_HH
#define DCL1_STATS_TRACE_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace dcl1::stats
{

/**
 * Thread-safe event sink: the buffer and drop counter are guarded by
 * an internal mutex. Today each exporter is owned by one simulation
 * thread (tlsTraceSink is thread_local), so the lock is uncontended;
 * the annotation-checked locking is what lets the multi-tenant arc
 * share an exporter later without a data race appearing first.
 */
class TraceExport
{
  public:
    /**
     * @param request_every keep 1 in N *sampled* request lifecycles
     *        (on top of attribution's 1-in-N request sampling)
     * @param max_events hard cap on buffered events; the excess is
     *        counted in dropped() instead of exhausting memory
     */
    explicit TraceExport(std::uint32_t request_every = 16,
                         std::size_t max_events = 1u << 20);

    /** One request-segment span [begin, end) on track @p sample_id. */
    void reqSlice(std::uint32_t sample_id, const char *seg, Cycle begin,
                  Cycle end) DCL1_EXCLUDES(mutex_);

    /** One counter-track sample at cycle @p t. */
    void counterEvent(const std::string &track, Cycle t, double value)
        DCL1_EXCLUDES(mutex_);

    /** Serialize the whole trace as one JSON document. */
    void writeJson(std::ostream &os) const DCL1_EXCLUDES(mutex_);

    std::size_t
    events() const DCL1_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return events_.size();
    }

    std::size_t
    dropped() const DCL1_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return dropped_;
    }

  private:
    struct Event
    {
        bool isCounter;
        std::uint32_t tid;  ///< sample id for slices, 0 for counters
        Cycle ts;
        Cycle dur;          ///< slices only
        const char *seg;    ///< slices only (static string)
        std::string track;  ///< counters only
        double value;       ///< counters only
    };

    std::uint32_t requestEvery_;
    std::size_t maxEvents_;
    mutable Mutex mutex_;
    std::size_t dropped_ DCL1_GUARDED_BY(mutex_) = 0;
    std::vector<Event> events_ DCL1_GUARDED_BY(mutex_);
};

/**
 * Per-thread trace sink consulted by the attribution slow path. Null
 * (no trace) by default; GpuSystem::enableTrace points it at the
 * system's exporter for the thread running that simulation.
 */
TraceExport *&tlsTraceSink();

} // namespace dcl1::stats

#endif // DCL1_STATS_TRACE_EXPORT_HH
