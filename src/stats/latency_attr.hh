/**
 * @file
 * Request-latency attribution.
 *
 * Splits a memory request's round trip into pipeline segments (core
 * issue -> NoC request -> cache/MSHR -> L2 -> DRAM -> NoC reply ->
 * retire) by accumulating cycles *per segment* instead of recording a
 * fixed stage order: every component that takes custody of a request
 * calls tlmEnter() with its segment, which closes the span the request
 * spent in the previous segment. Revisits (e.g. the reply passing back
 * through a cache) simply accumulate more cycles into that segment, so
 * the scheme is topology-agnostic and the per-segment cycles always sum
 * exactly to retire - issue.
 *
 * Overhead discipline: ReqTelemetry rides inside MemRequest and
 * tlmEnter() is a single load-and-branch when the request is unsampled
 * (sampleId == 0), which is also the state of every request when
 * attribution is disabled. Sampling (1-in-N) is driven by a private
 * Rng seeded from the simulation seed — never wall clock — so same-seed
 * runs attribute the same requests.
 */

#ifndef DCL1_STATS_LATENCY_ATTR_HH
#define DCL1_STATS_LATENCY_ATTR_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "common/rng.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace dcl1::stats
{

/** Pipeline segment a request can spend cycles in. */
enum class Seg : std::uint8_t
{
    Issue,    ///< core-side queueing before entering the NoC
    NocReq,   ///< request-network traversal
    Cache,    ///< L1 / DC-L1 port, MSHR and node queues
    L2,       ///< L2 slice input queue + bank
    Dram,     ///< DRAM channel queue + service
    NocReply, ///< reply-network traversal back to the core
};

constexpr std::size_t kNumSegs = 6;

/** Stable display name ("issue", "noc-req", ...). */
const char *segName(Seg s);

/**
 * Per-request attribution state, embedded in MemRequest. Sixteen-byte
 * fixed cost per request; dormant (sampleId == 0) unless the request
 * was picked by LatencyAttribution::onCreate.
 */
struct ReqTelemetry
{
    std::uint32_t sampleId = 0; ///< 0 = unsampled (the common case)
    std::uint8_t curSeg = 0;    ///< segment currently accumulating
    Cycle lastStamp = 0;        ///< cycle the current segment began
    std::array<std::uint32_t, kNumSegs> segCycles{};
};

/** Out-of-line slow path: close the previous segment's span. */
void tlmEnterSlow(ReqTelemetry &t, Seg s, Cycle now);

/**
 * Mark the request as entering segment @p s at cycle @p now. The
 * no-telemetry fast path is one branch on a field that is already in
 * cache next to the request's routing state.
 */
inline void
tlmEnter(ReqTelemetry &t, Seg s, Cycle now)
{
    if (t.sampleId != 0)
        tlmEnterSlow(t, s, now);
}

/**
 * Owns the per-segment latency Distributions and the sampling policy.
 * One instance per GpuSystem; cores call onCreate/onRetire, everything
 * in between stamps through the free tlmEnter().
 */
class LatencyAttribution
{
  public:
    /**
     * @param seed deterministic seed (derive from the sim seed)
     * @param sample_every attribute 1 in N read requests (1 = all)
     */
    LatencyAttribution(std::uint64_t seed, std::uint32_t sample_every);

    /** Maybe pick this request for attribution; stamps Issue. */
    void onCreate(ReqTelemetry &t, Cycle now);

    /** Close the final span and deposit the segments. */
    void onRetire(ReqTelemetry &t, Cycle now);

    /** Clear collected distributions (measurement-interval rebase). */
    void reset();

    StatGroup &statGroup() { return group_; }
    const Distribution &segment(Seg s) const
    {
        return segDists_[static_cast<std::size_t>(s)];
    }
    const Distribution &total() const { return totalDist_; }
    std::uint32_t sampleEvery() const { return sampleEvery_; }

    /** Human-readable latency-breakdown table (dcl1run headline). */
    void printBreakdown(std::ostream &os) const;

  private:
    Rng rng_;
    std::uint32_t sampleEvery_;
    std::uint32_t nextId_ = 0;
    std::array<Distribution, kNumSegs> segDists_;
    Distribution totalDist_;
    StatGroup group_;
};

} // namespace dcl1::stats

#endif // DCL1_STATS_LATENCY_ATTR_HH
