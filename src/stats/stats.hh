/**
 * @file
 * Lightweight statistics framework.
 *
 * Components own Scalar / Distribution stats registered in a StatGroup.
 * Groups form a tree; the root can be reset after warmup and dumped at
 * the end of simulation. Hot-path updates are plain integer adds.
 */

#ifndef DCL1_STATS_STATS_HH
#define DCL1_STATS_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dcl1::stats
{

/**
 * Shortest-round-trip decimal rendering of a double (std::to_chars),
 * byte-stable across locales and stream precision defaults. All stat
 * output (dump, dumpJson, timelines) funnels doubles through here.
 */
std::string formatDouble(double v);

/** A named 64-bit accumulating counter. */
class Scalar
{
  public:
    Scalar() = default;

    void inc(std::uint64_t v = 1) { value_ += v; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running distribution: count, sum, min, max and a fixed-width linear
 * histogram. Bucket width is chosen at construction.
 */
class Distribution
{
  public:
    /**
     * @param bucket_width width of each histogram bucket (>= 1)
     * @param num_buckets number of buckets; samples beyond the last
     *        bucket land in an overflow bucket
     */
    explicit Distribution(std::uint64_t bucket_width = 16,
                          std::uint32_t num_buckets = 32);

    /** Record one sample. */
    void sample(std::uint64_t v);

    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    double
    mean() const
    {
        return count_ ? double(sum_) / double(count_) : 0.0;
    }

    /** Histogram access: bucket i covers [i*w, (i+1)*w). */
    std::uint64_t bucket(std::uint32_t i) const { return buckets_[i]; }
    std::uint32_t numBuckets() const { return std::uint32_t(buckets_.size()); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucketWidth() const { return bucketWidth_; }

    /** p-th percentile (0..100) estimated from the histogram. */
    double percentile(double p) const;

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of stats. Groups register their children and can
 * reset/dump recursively. Registration stores pointers; the owning
 * component must outlive the group (they are members of the same object
 * in practice).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar stat under @p name. */
    void addScalar(const std::string &name, Scalar *s);

    /** Register a distribution stat under @p name. */
    void addDistribution(const std::string &name, Distribution *d);

    /** Register a child group. */
    void addChild(StatGroup *child);

    /** Reset all stats in this group and its children. */
    void reset();

    /** Dump "group.stat value" lines, depth-first. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Dump the tree as one JSON object: scalars as integers,
     * distributions as {count, sum, min, max, mean, p50, p95, p99,
     * bucket_width, buckets, overflow}, children nested by name.
     * Ordering follows registration order, so output is deterministic.
     */
    void dumpJson(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /**
     * Look up a registered scalar by name; nullptr if absent. A name
     * without a matching flat entry is resolved as a dotted path into
     * child groups ("noc.req.flits"). Child names may themselves
     * contain dots (the crossbars register as "noc.req" etc.), so the
     * path is matched against whole child names, never split blindly
     * at the first dot.
     */
    const Scalar *findScalar(const std::string &name) const;

    /** Distribution lookup with the same flat-then-dotted rules. */
    const Distribution *findDistribution(const std::string &name) const;

  private:
    std::string name_;
    std::vector<std::pair<std::string, Scalar *>> scalars_;
    std::vector<std::pair<std::string, Distribution *>> dists_;
    std::vector<StatGroup *> children_;
};

} // namespace dcl1::stats

#endif // DCL1_STATS_STATS_HH
