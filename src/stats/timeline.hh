/**
 * @file
 * Cycle-interval timeline sampler.
 *
 * Rides the GpuSystem run loop: every N cycles it snapshots registered
 * probes and emits one JSONL row describing the interval — counter
 * *deltas* normalized as rates/ratios, plus instantaneous gauges — so
 * warmup drift, queue saturation and phase behavior become visible per
 * run instead of being averaged away in end-of-run aggregates.
 *
 * The sampler owns no file handle: rows go to an injected LineSink, so
 * this layer stays free of I/O policy and the tools can route rows
 * through the crash-safe exec::AppendLog writer.
 *
 * Probe kinds:
 *  - counter:   emits value(now) - value(previous sample)
 *  - per-cycle: counter delta divided by the interval length
 *  - ratio:     delta(numerator) / delta(denominator), 0 when the
 *               denominator did not move
 *  - gauge:     instantaneous double
 *  - gauge array: fixed-length instantaneous vector (queue depths)
 */

#ifndef DCL1_STATS_TIMELINE_HH
#define DCL1_STATS_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dcl1::stats
{

/** Receives one finished JSONL row (no trailing newline). */
using LineSink = std::function<void(const std::string &)>;

class TimelineSampler
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;
    using GaugeAtFn = std::function<double(std::size_t)>;

    TimelineSampler(Cycle interval, LineSink sink);

    void addCounter(std::string name, CounterFn fn);
    void addPerCycle(std::string name, CounterFn fn);
    void addRatio(std::string name, CounterFn num, CounterFn den);
    void addGauge(std::string name, GaugeFn fn);
    void addGaugeArray(std::string name, std::size_t count, GaugeAtFn fn);

    /**
     * Called once per emitted row with (cycle, dt); the system uses it
     * to feed per-interval counter tracks into the trace exporter.
     */
    void setSampleHook(std::function<void(Cycle, Cycle)> hook);

    /** Record probe baselines; first row covers (now, now+interval]. */
    void start(Cycle now);

    /** Hot-path check, one compare when no sample is due. */
    void
    maybeSample(Cycle now)
    {
        if (now >= nextSample_)
            sampleNow(now);
    }

    /** Emit a partial row for any cycles since the last sample. */
    void flushTail(Cycle now);

    /**
     * Re-read baselines after a stats reset and switch the row phase
     * from "warmup" to "measure"; the reset's counter discontinuity
     * never reaches a row.
     */
    void rebase(Cycle now);

    /** Flush the final partial row at end of run. */
    void finish(Cycle now);

    Cycle interval() const { return interval_; }
    std::uint64_t rows() const { return rows_; }

  private:
    struct Probe
    {
        enum class Kind : std::uint8_t
        {
            Counter,
            PerCycle,
            Ratio,
            Gauge,
            GaugeArray,
        };
        Kind kind;
        std::string name;
        CounterFn num;
        CounterFn den;
        std::uint64_t lastNum = 0;
        std::uint64_t lastDen = 0;
        GaugeFn gauge;
        std::size_t count = 0;
        GaugeAtFn gaugeAt;
    };

    void sampleNow(Cycle now);

    Cycle interval_;
    LineSink sink_;
    std::vector<Probe> probes_;
    std::function<void(Cycle, Cycle)> hook_;
    Cycle lastCycle_ = 0;
    Cycle nextSample_ = 0;
    std::uint64_t rows_ = 0;
    const char *phase_ = "warmup";
    bool started_ = false;
};

} // namespace dcl1::stats

#endif // DCL1_STATS_TIMELINE_HH
