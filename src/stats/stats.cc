#include "stats/stats.hh"

#include <algorithm>

#include "common/log.hh"

namespace dcl1::stats
{

Distribution::Distribution(std::uint64_t bucket_width,
                           std::uint32_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    if (bucket_width == 0)
        fatal("Distribution bucket width must be nonzero");
    if (num_buckets == 0)
        fatal("Distribution must have at least one bucket");
}

void
Distribution::sample(std::uint64_t v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    std::uint64_t idx = v / bucketWidth_;
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

double
Distribution::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const std::uint64_t target =
        static_cast<std::uint64_t>(p / 100.0 * double(count_ - 1));
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target) {
            // Midpoint of the bucket as the estimate.
            return double(i) * double(bucketWidth_) +
                   double(bucketWidth_) / 2.0;
        }
    }
    // Overflow bucket: report the observed maximum.
    return double(max_);
}

void
StatGroup::addScalar(const std::string &name, Scalar *s)
{
    scalars_.emplace_back(name, s);
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d)
{
    dists_.emplace_back(name, d);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::reset()
{
    for (auto &[name, s] : scalars_)
        s->reset();
    for (auto &[name, d] : dists_)
        d->reset();
    for (auto *c : children_)
        c->reset();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &[name, s] : scalars_)
        os << full << "." << name << " " << s->value() << "\n";
    for (const auto &[name, d] : dists_) {
        os << full << "." << name << ".count " << d->count() << "\n";
        os << full << "." << name << ".mean " << d->mean() << "\n";
        os << full << "." << name << ".min " << d->min() << "\n";
        os << full << "." << name << ".max " << d->max() << "\n";
    }
    for (const auto *c : children_)
        c->dump(os, full);
}

const Scalar *
StatGroup::findScalar(const std::string &name) const
{
    for (const auto &[n, s] : scalars_)
        if (n == name)
            return s;
    return nullptr;
}

} // namespace dcl1::stats
