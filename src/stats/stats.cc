#include "stats/stats.hh"

#include <algorithm>
#include <charconv>

#include "common/log.hh"

namespace dcl1::stats
{

std::string
formatDouble(double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

Distribution::Distribution(std::uint64_t bucket_width,
                           std::uint32_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    if (bucket_width == 0)
        fatal("Distribution bucket width must be nonzero");
    if (num_buckets == 0)
        fatal("Distribution must have at least one bucket");
}

void
Distribution::sample(std::uint64_t v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    std::uint64_t idx = v / bucketWidth_;
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

double
Distribution::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const std::uint64_t target =
        static_cast<std::uint64_t>(p / 100.0 * double(count_ - 1));
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target) {
            // Midpoint of the bucket as the estimate.
            return double(i) * double(bucketWidth_) +
                   double(bucketWidth_) / 2.0;
        }
    }
    // Overflow bucket: report the observed maximum.
    return double(max_);
}

void
StatGroup::addScalar(const std::string &name, Scalar *s)
{
    scalars_.emplace_back(name, s);
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d)
{
    dists_.emplace_back(name, d);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::reset()
{
    for (auto &[name, s] : scalars_)
        s->reset();
    for (auto &[name, d] : dists_)
        d->reset();
    for (auto *c : children_)
        c->reset();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &[name, s] : scalars_)
        os << full << "." << name << " " << s->value() << "\n";
    for (const auto &[name, d] : dists_) {
        os << full << "." << name << ".count " << d->count() << "\n";
        os << full << "." << name << ".mean " << formatDouble(d->mean())
           << "\n";
        os << full << "." << name << ".min " << d->min() << "\n";
        os << full << "." << name << ".max " << d->max() << "\n";
        os << full << "." << name << ".p50 "
           << formatDouble(d->percentile(50)) << "\n";
        os << full << "." << name << ".p95 "
           << formatDouble(d->percentile(95)) << "\n";
        os << full << "." << name << ".p99 "
           << formatDouble(d->percentile(99)) << "\n";
    }
    for (const auto *c : children_)
        c->dump(os, full);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\"name\":\"" << name_ << "\"";
    if (!scalars_.empty()) {
        os << ",\"scalars\":{";
        bool first = true;
        for (const auto &[name, s] : scalars_) {
            os << (first ? "" : ",") << "\"" << name
               << "\":" << s->value();
            first = false;
        }
        os << "}";
    }
    if (!dists_.empty()) {
        os << ",\"dists\":{";
        bool first = true;
        for (const auto &[name, d] : dists_) {
            os << (first ? "" : ",") << "\"" << name << "\":{"
               << "\"count\":" << d->count() << ",\"sum\":" << d->sum()
               << ",\"min\":" << d->min() << ",\"max\":" << d->max()
               << ",\"mean\":" << formatDouble(d->mean())
               << ",\"p50\":" << formatDouble(d->percentile(50))
               << ",\"p95\":" << formatDouble(d->percentile(95))
               << ",\"p99\":" << formatDouble(d->percentile(99))
               << ",\"bucket_width\":" << d->bucketWidth()
               << ",\"overflow\":" << d->overflow() << ",\"buckets\":[";
            for (std::uint32_t i = 0; i < d->numBuckets(); ++i)
                os << (i ? "," : "") << d->bucket(i);
            os << "]}";
            first = false;
        }
        os << "}";
    }
    if (!children_.empty()) {
        os << ",\"children\":[";
        bool first = true;
        for (const auto *c : children_) {
            if (!first)
                os << ",";
            first = false;
            c->dumpJson(os);
        }
        os << "]";
    }
    os << "}";
}

const Scalar *
StatGroup::findScalar(const std::string &name) const
{
    for (const auto &[n, s] : scalars_)
        if (n == name)
            return s;
    // Dotted-path descent: "child.rest" where the child name itself
    // may contain dots, so match whole registered child names.
    for (const auto *c : children_) {
        const std::string &cn = c->name();
        if (name.size() > cn.size() + 1 && name[cn.size()] == '.' &&
            name.compare(0, cn.size(), cn) == 0) {
            if (const Scalar *s =
                    c->findScalar(name.substr(cn.size() + 1)))
                return s;
        }
    }
    return nullptr;
}

const Distribution *
StatGroup::findDistribution(const std::string &name) const
{
    for (const auto &[n, d] : dists_)
        if (n == name)
            return d;
    for (const auto *c : children_) {
        const std::string &cn = c->name();
        if (name.size() > cn.size() + 1 && name[cn.size()] == '.' &&
            name.compare(0, cn.size(), cn) == 0) {
            if (const Distribution *d =
                    c->findDistribution(name.substr(cn.size() + 1)))
                return d;
        }
    }
    return nullptr;
}

} // namespace dcl1::stats
