#include "stats/trace_export.hh"

#include "stats/stats.hh"

namespace dcl1::stats
{

TraceExport *&
tlsTraceSink()
{
    thread_local TraceExport *sink = nullptr;
    return sink;
}

TraceExport::TraceExport(std::uint32_t request_every,
                         std::size_t max_events)
    : requestEvery_(request_every == 0 ? 1 : request_every),
      maxEvents_(max_events)
{
}

void
TraceExport::reqSlice(std::uint32_t sample_id, const char *seg,
                      Cycle begin, Cycle end)
{
    // Keep 1 in requestEvery_ lifecycles; sample ids are dense (1, 2,
    // ...), so the subset is deterministic and spread across the run.
    if ((sample_id - 1) % requestEvery_ != 0)
        return;
    MutexLock lock(mutex_);
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    Event e{};
    e.isCounter = false;
    e.tid = sample_id;
    e.ts = begin;
    e.dur = end - begin;
    e.seg = seg;
    events_.push_back(std::move(e));
}

void
TraceExport::counterEvent(const std::string &track, Cycle t, double value)
{
    MutexLock lock(mutex_);
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    Event e{};
    e.isCounter = true;
    e.ts = t;
    e.track = track;
    e.value = value;
    events_.push_back(std::move(e));
}

void
TraceExport::writeJson(std::ostream &os) const
{
    MutexLock lock(mutex_);
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const Event &e : events_) {
        if (!first)
            os << ",";
        first = false;
        if (e.isCounter) {
            os << "{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\""
               << e.track << "\",\"ts\":" << e.ts
               << ",\"args\":{\"value\":" << formatDouble(e.value)
               << "}}";
        } else {
            os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
               << ",\"name\":\"" << e.seg << "\",\"ts\":" << e.ts
               << ",\"dur\":" << e.dur << "}";
        }
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
}

} // namespace dcl1::stats
