#include "stats/latency_attr.hh"

#include "common/log.hh"
#include "stats/trace_export.hh"

namespace dcl1::stats
{

const char *
segName(Seg s)
{
    switch (s) {
      case Seg::Issue:
        return "issue";
      case Seg::NocReq:
        return "noc-req";
      case Seg::Cache:
        return "cache";
      case Seg::L2:
        return "l2";
      case Seg::Dram:
        return "dram";
      case Seg::NocReply:
        return "noc-reply";
    }
    return "unknown";
}

void
tlmEnterSlow(ReqTelemetry &t, Seg s, Cycle now)
{
    if (now > t.lastStamp) {
        const Cycle span = now - t.lastStamp;
        t.segCycles[t.curSeg] += static_cast<std::uint32_t>(span);
        if (TraceExport *trace = tlsTraceSink())
            trace->reqSlice(t.sampleId,
                            segName(static_cast<Seg>(t.curSeg)),
                            t.lastStamp, now);
    }
    t.lastStamp = now;
    t.curSeg = static_cast<std::uint8_t>(s);
}

namespace
{

/**
 * Bucket geometry tuned for read round trips in the few-hundred-cycle
 * range: fine enough for meaningful p50/p95, overflow falls back to
 * the observed maximum (see Distribution::percentile).
 */
constexpr std::uint64_t kSegBucketWidth = 16;
constexpr std::uint32_t kSegBuckets = 128;
constexpr std::uint64_t kTotalBucketWidth = 32;
constexpr std::uint32_t kTotalBuckets = 128;

} // anonymous namespace

LatencyAttribution::LatencyAttribution(std::uint64_t seed,
                                       std::uint32_t sample_every)
    : rng_(seed), sampleEvery_(sample_every == 0 ? 1 : sample_every),
      segDists_{Distribution(kSegBucketWidth, kSegBuckets),
                Distribution(kSegBucketWidth, kSegBuckets),
                Distribution(kSegBucketWidth, kSegBuckets),
                Distribution(kSegBucketWidth, kSegBuckets),
                Distribution(kSegBucketWidth, kSegBuckets),
                Distribution(kSegBucketWidth, kSegBuckets)},
      totalDist_(kTotalBucketWidth, kTotalBuckets), group_("latency")
{
    for (std::size_t i = 0; i < kNumSegs; ++i)
        group_.addDistribution(segName(static_cast<Seg>(i)),
                               &segDists_[i]);
    group_.addDistribution("total", &totalDist_);
}

void
LatencyAttribution::onCreate(ReqTelemetry &t, Cycle now)
{
    // The 1-in-N draw happens for every candidate regardless of the
    // outcome, so the Rng stream — and therefore which requests are
    // attributed — is a pure function of the seed.
    if (sampleEvery_ > 1 && rng_.below(sampleEvery_) != 0)
        return;
    t.sampleId = ++nextId_;
    t.curSeg = static_cast<std::uint8_t>(Seg::Issue);
    t.lastStamp = now;
    t.segCycles.fill(0);
}

void
LatencyAttribution::onRetire(ReqTelemetry &t, Cycle now)
{
    if (t.sampleId == 0)
        return;
    // Close the span the request was in when it completed.
    tlmEnterSlow(t, static_cast<Seg>(t.curSeg), now);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumSegs; ++i) {
        if (t.segCycles[i] != 0)
            segDists_[i].sample(t.segCycles[i]);
        total += t.segCycles[i];
    }
    totalDist_.sample(total);
    t.sampleId = 0; // a request retires exactly once
}

void
LatencyAttribution::reset()
{
    group_.reset();
}

void
LatencyAttribution::printBreakdown(std::ostream &os) const
{
    const std::uint64_t n = totalDist_.count();
    os << csprintf("latency breakdown (%llu sampled read(s), 1-in-%u)\n",
                   static_cast<unsigned long long>(n), sampleEvery_);
    if (n == 0)
        return;
    os << csprintf("  %-10s %9s %7s %8s %8s %8s\n", "segment", "cycles",
                   "share", "p50", "p95", "p99");
    const double total_mean = totalDist_.mean();
    for (std::size_t i = 0; i < kNumSegs; ++i) {
        const Distribution &d = segDists_[i];
        // Mean *contribution*: segment sum over all sampled requests,
        // so the column sums to the total round trip.
        const double contrib = double(d.sum()) / double(n);
        os << csprintf("  %-10s %9.1f %6.1f%% %8.1f %8.1f %8.1f\n",
                       segName(static_cast<Seg>(i)), contrib,
                       total_mean > 0.0 ? 100.0 * contrib / total_mean
                                        : 0.0,
                       d.percentile(50), d.percentile(95),
                       d.percentile(99));
    }
    os << csprintf("  %-10s %9.1f %6.1f%% %8.1f %8.1f %8.1f\n", "total",
                   total_mean, 100.0, totalDist_.percentile(50),
                   totalDist_.percentile(95), totalDist_.percentile(99));
}

} // namespace dcl1::stats
