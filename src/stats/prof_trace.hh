/**
 * @file
 * Host-phase slices for the Chrome trace exporter.
 *
 * Bridges the prof band's aggregate phase tree into TraceExport "X"
 * slices so a --trace run can show *host* time next to the simulated
 * tracks. A finished Report has durations but no timestamps (it is an
 * aggregate, not an event log), so the export lays the tree out as a
 * flame chart: each phase becomes one slice whose span is its total
 * wall time, children packed left-to-right inside their parent. The
 * result reads like a profiler flame graph on a dedicated track.
 */

#ifndef DCL1_STATS_PROF_TRACE_HH
#define DCL1_STATS_PROF_TRACE_HH

#include "prof/prof.hh"
#include "stats/trace_export.hh"

namespace dcl1::stats
{

/**
 * Append @p report's phase tree to @p trace as nested complete
 * events on track @p track_id (timestamps in microseconds of host
 * wall time, laid out flame-chart style from t=0).
 */
void exportHostPhases(TraceExport &trace, const prof::Report &report,
                      std::uint32_t track_id = 0xD0C1u);

} // namespace dcl1::stats

#endif // DCL1_STATS_PROF_TRACE_HH
