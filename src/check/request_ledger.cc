#include "check/request_ledger.hh"

#include "common/log.hh"
#include "mem/request.hh"

namespace dcl1::check
{

const char *
stageName(ReqStage stage)
{
    switch (stage) {
      case ReqStage::Issued:
        return "Issued";
      case ReqStage::InNoc:
        return "InNoc";
      case ReqStage::AtCache:
        return "AtCache";
      case ReqStage::InMshr:
        return "InMshr";
      case ReqStage::AtDram:
        return "AtDram";
      case ReqStage::Retired:
        return "Retired";
    }
    return "?";
}

namespace
{

/** Allowed lifecycle moves (row = from, column = to). */
bool
transitionAllowed(ReqStage from, ReqStage to)
{
    switch (from) {
      case ReqStage::Issued:
        // Into a NoC, or straight into a private L1 (baseline cores).
        return to == ReqStage::InNoc || to == ReqStage::AtCache;
      case ReqStage::InNoc:
        // Hop between crossbar stages, or land at a cache level.
        return to == ReqStage::InNoc || to == ReqStage::AtCache;
      case ReqStage::AtCache:
        // Move between a node's queues and its bank, onward to a NoC,
        // to a memory channel, or get merged into an MSHR entry.
        return to == ReqStage::AtCache || to == ReqStage::InNoc ||
               to == ReqStage::AtDram || to == ReqStage::InMshr;
      case ReqStage::InMshr:
        // Only a fill completing the fetch releases merged targets.
        return to == ReqStage::AtCache;
      case ReqStage::AtDram:
        // A DRAM reply is collected by its L2 slice.
        return to == ReqStage::AtCache;
      case ReqStage::Retired:
        return false; // any move after retirement is use-after-retire
    }
    return false;
}

} // anonymous namespace

RequestLedger &
RequestLedger::instance()
{
    // Thread-local, not process-wide: the execution engine runs
    // independent simulations on concurrent worker threads, and a
    // GpuSystem lives entirely on the thread that constructed it, so
    // each thread auditing only its own requests is exactly the
    // isolation the ledger wants. Requests never migrate threads.
    static thread_local RequestLedger the_ledger;
    return the_ledger;
}

void
RequestLedger::record(std::uint8_t kind, std::uint64_t seq,
                      std::uint64_t addr, ReqStage from, ReqStage to)
{
    Event &e = events_[eventCount_ % kEventRing];
    e.seq = seq;
    e.addr = addr;
    e.from = from;
    e.to = to;
    e.kind = kind;
    ++eventCount_;
}

void
RequestLedger::onCreate(mem::MemRequest &req, Cycle now, ReqStage stage)
{
    if (!enabled_)
        return;
    if (req.chkSeq != 0)
        panic("ledger: request %llu registered twice",
              static_cast<unsigned long long>(req.chkSeq));
    req.chkSeq = ++nextSeq_;
    ++registered_;
    Entry e;
    e.stage = stage;
    e.createdAt = now;
    entries_.emplace(req.chkSeq, e);
    record(0, req.chkSeq, req.addr, stage, stage);
}

void
RequestLedger::onTransition(const mem::MemRequest &req, ReqStage to)
{
    if (!enabled_ || req.chkSeq == 0)
        return;
    auto it = entries_.find(req.chkSeq);
    if (it == entries_.end())
        panic("ledger: transition of unknown request %llu (addr %llx)",
              static_cast<unsigned long long>(req.chkSeq),
              static_cast<unsigned long long>(req.addr));
    Entry &e = it->second;
    if (!transitionAllowed(e.stage, to))
        panic("ledger: illegal transition %s -> %s "
              "(request %llu, addr %llx, core %u, %s)",
              stageName(e.stage), stageName(to),
              static_cast<unsigned long long>(req.chkSeq),
              static_cast<unsigned long long>(req.addr), req.core,
              req.isReply ? "reply" : "request");
    record(1, req.chkSeq, req.addr, e.stage, to);
    e.stage = to;
    ++e.hops;
    ++transitions_;
}

void
RequestLedger::onRetire(const mem::MemRequest &req)
{
    if (!enabled_ || req.chkSeq == 0)
        return;
    auto it = entries_.find(req.chkSeq);
    if (it == entries_.end())
        panic("ledger: retiring unknown request %llu",
              static_cast<unsigned long long>(req.chkSeq));
    const ReqStage from = it->second.stage;
    if (from == ReqStage::Retired)
        panic("ledger: double retire of request %llu (addr %llx)",
              static_cast<unsigned long long>(req.chkSeq),
              static_cast<unsigned long long>(req.addr));
    // A reply retires at a core (from a NoC or straight out of a
    // private L1) and a writeback retires where it is absorbed (L2 or
    // DRAM). A request still merged in an MSHR, or one that never left
    // its core, must not be consumed.
    if (from != ReqStage::InNoc && from != ReqStage::AtCache &&
        from != ReqStage::AtDram)
        panic("ledger: retire from illegal stage %s "
              "(request %llu, addr %llx)",
              stageName(from), static_cast<unsigned long long>(req.chkSeq),
              static_cast<unsigned long long>(req.addr));
    record(2, req.chkSeq, req.addr, from, ReqStage::Retired);
    it->second.stage = ReqStage::Retired;
    ++retiredCount_;
}

void
RequestLedger::onDestroy(const mem::MemRequest &req)
{
    if (!enabled_ || req.chkSeq == 0)
        return;
    auto it = entries_.find(req.chkSeq);
    if (it == entries_.end())
        return; // registered in a previous, since cleared, session
    if (strictDestroy_ && it->second.stage != ReqStage::Retired)
        panic("ledger: request %llu leaked (destroyed in stage %s, "
              "addr %llx, core %u)",
              static_cast<unsigned long long>(req.chkSeq),
              stageName(it->second.stage),
              static_cast<unsigned long long>(req.addr), req.core);
    entries_.erase(it);
}

std::size_t
RequestLedger::liveCount() const
{
    std::size_t live = 0;
    // Audit path only; never called from a ticked code path.
    for (const auto &kv : entries_) // lint: unordered-iter-ok
        if (kv.second.stage != ReqStage::Retired)
            ++live;
    return live;
}

void
RequestLedger::audit(const char *where) const
{
    if (!enabled_)
        return;
    const std::size_t live = liveCount();
    if (live != 0) {
        // Find one survivor to make the report actionable.
        for (const auto &kv : entries_) { // lint: unordered-iter-ok
            if (kv.second.stage != ReqStage::Retired) {
                panic("ledger audit (%s): %zu request(s) still live; "
                      "e.g. seq %llu stuck in stage %s since cycle %llu",
                      where, live,
                      static_cast<unsigned long long>(kv.first),
                      stageName(kv.second.stage),
                      static_cast<unsigned long long>(
                          kv.second.createdAt));
            }
        }
    }
}

std::string
RequestLedger::recentEventsJson() const
{
    static const char *const kind_names[] = {"create", "transition",
                                             "retire"};
    std::string out = "[";
    const std::uint64_t count =
        eventCount_ < kEventRing ? eventCount_ : kEventRing;
    const std::uint64_t first = eventCount_ - count;
    for (std::uint64_t i = 0; i < count; ++i) {
        const Event &e = events_[(first + i) % kEventRing];
        out += csprintf(
            "%s{\"seq\":%llu,\"ev\":\"%s\",\"from\":\"%s\","
            "\"to\":\"%s\",\"addr\":\"0x%llx\"}",
            i == 0 ? "" : ",", static_cast<unsigned long long>(e.seq),
            kind_names[e.kind], stageName(e.from), stageName(e.to),
            static_cast<unsigned long long>(e.addr));
    }
    out += "]";
    return out;
}

void
RequestLedger::clear()
{
    entries_.clear();
    eventCount_ = 0;
}

} // namespace dcl1::check
