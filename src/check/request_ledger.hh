/**
 * @file
 * End-to-end request lifecycle auditing.
 *
 * Every MemRequest a core's coalescer injects (and every writeback a
 * cache creates) is registered with the per-thread RequestLedger and
 * then audited as it moves through the machine:
 *
 *     Issued --> InNoc <--> AtCache <--> InMshr
 *                  |           |
 *                  |           v
 *                  |        AtDram
 *                  v           |
 *               Retired <------+
 *
 * Components report coarse stage transitions; the ledger panics on any
 * move the state machine does not allow (double retire, use after
 * retire, re-merge of an already merged request, a reply teleporting
 * from DRAM straight to a core, ...). Destroying a live (un-retired)
 * request while strict-destroy is armed — i.e. during the simulated
 * cycle loop — is a request leak and also panics. After a successful
 * GpuSystem::drain() the audit() entry point verifies that nothing is
 * left in flight anywhere in the machine.
 *
 * Requests with seq 0 (never registered, e.g. unit tests poking a
 * single component) are ignored, so component tests need no setup.
 * All of this compiles away when DCL1_CHECK is off.
 */

#ifndef DCL1_CHECK_REQUEST_LEDGER_HH
#define DCL1_CHECK_REQUEST_LEDGER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "check/check.hh"
#include "common/types.hh"

namespace dcl1::mem
{
struct MemRequest;
} // namespace dcl1::mem

namespace dcl1::check
{

/** Coarse pipeline stage of a tracked request. */
enum class ReqStage : std::uint8_t
{
    Issued,  ///< created; still inside the issuing core (LSU/outbound)
    InNoc,   ///< buffered or in flight inside any crossbar
    AtCache, ///< inside an L1/DC-L1 node or L2 slice (queues or bank)
    InMshr,  ///< held as a merged secondary target inside an MSHR entry
    AtDram,  ///< queued or in service at a memory channel
    Retired, ///< consumed: reply delivered, write ACKed, or WB absorbed
};

/** Human-readable stage name. */
const char *stageName(ReqStage stage);

/** See file comment. */
class RequestLedger
{
  public:
    /**
     * The calling thread's ledger. One instance per thread (a
     * simulation lives entirely on the thread that built it), so
     * concurrent jobs of the execution engine audit independently.
     */
    static RequestLedger &instance();

    /** Master switch; when false every call is a no-op. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * When armed, destroying a non-retired tracked request panics.
     * GpuSystem::run arms this for the duration of the cycle loop;
     * teardown of a half-finished simulation is legitimate.
     */
    void setStrictDestroy(bool on) { strictDestroy_ = on; }
    bool strictDestroy() const { return strictDestroy_; }

    /**
     * Register @p req, assigning its ledger sequence number.
     * @p stage is Issued for core requests and AtCache for writebacks
     * born inside a cache.
     */
    void onCreate(mem::MemRequest &req, Cycle now,
                  ReqStage stage = ReqStage::Issued);

    /** Report that @p req moved to @p to; panics on illegal moves. */
    void onTransition(const mem::MemRequest &req, ReqStage to);

    /** Terminal consumption of @p req; panics on double retire. */
    void onRetire(const mem::MemRequest &req);

    /** Called from ~MemRequest; leak detection (see setStrictDestroy). */
    void onDestroy(const mem::MemRequest &req);

    /** Number of registered, not-yet-retired requests. */
    std::size_t liveCount() const;

    /**
     * Panic unless zero requests are live (end-of-drain conservation
     * check). @p where names the call site for the message.
     */
    void audit(const char *where) const;

    /** Drop all tracked state (new simulation session). */
    void clear();

    /// @name Counters (never reset by clear())
    /// @{
    std::uint64_t registered() const { return registered_; }
    std::uint64_t retired() const { return retiredCount_; }
    std::uint64_t transitions() const { return transitions_; }
    /// @}

    /** Events kept in the forensic ring (see recentEventsJson). */
    static constexpr std::size_t kEventRing = 32;

    /**
     * The last kEventRing lifecycle events (create / transition /
     * retire) as a JSON array, oldest first. Crash records embed this
     * so a post-mortem shows what the machine was doing right before
     * it died. Cheap to maintain (fixed ring, no allocation per
     * event); building the JSON allocates and is for failure paths
     * only.
     */
    std::string recentEventsJson() const;

  private:
    struct Entry
    {
        ReqStage stage = ReqStage::Issued;
        Cycle createdAt = 0;
        std::uint32_t hops = 0;
    };

    /** One ring slot: a lifecycle event for the crash-forensics tail. */
    struct Event
    {
        std::uint64_t seq = 0;
        std::uint64_t addr = 0;
        ReqStage from = ReqStage::Issued;
        ReqStage to = ReqStage::Issued;
        std::uint8_t kind = 0; ///< 0 create, 1 transition, 2 retire
    };

    void record(std::uint8_t kind, std::uint64_t seq, std::uint64_t addr,
                ReqStage from, ReqStage to);

    bool enabled_ = DCL1_CHECK_ENABLED != 0;
    bool strictDestroy_ = false;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t registered_ = 0;
    std::uint64_t retiredCount_ = 0;
    std::uint64_t transitions_ = 0;
    // Keyed lookups only; never iterated on a ticked path.
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::array<Event, kEventRing> events_{};
    std::uint64_t eventCount_ = 0;
};

/** Shorthand for RequestLedger::instance(). */
inline RequestLedger &
ledger()
{
    return RequestLedger::instance();
}

} // namespace dcl1::check

#endif // DCL1_CHECK_REQUEST_LEDGER_HH
