/**
 * @file
 * Compile-out-able invariant checking.
 *
 * The simulator's results are only as trustworthy as its bookkeeping:
 * a single leaked request or double-counted flit silently skews IPC
 * and miss-rate numbers (the Accel-Sim correlation studies show this
 * class of bug dominating simulator error). This header provides the
 * zero-cost-when-disabled assertion layer used by every component.
 *
 * Build control: the CMake option DCL1_CHECK defines
 * DCL1_CHECK_ENABLED to 1 (checks compiled in; the default) or 0
 * (Release performance builds; every macro below expands to nothing).
 */

#ifndef DCL1_CHECK_CHECK_HH
#define DCL1_CHECK_CHECK_HH

#include "common/log.hh"

#ifndef DCL1_CHECK_ENABLED
#define DCL1_CHECK_ENABLED 1
#endif

#if DCL1_CHECK_ENABLED

/** Invariant assertion: panics (simulator bug) when @p cond is false. */
#define DCL1_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::dcl1::panic(__VA_ARGS__);                                     \
    } while (0)

/** Compile the statement(s) only in checking builds. */
#define DCL1_CHECK_ONLY(...) __VA_ARGS__

#else

#define DCL1_ASSERT(cond, ...)                                              \
    do {                                                                    \
    } while (0)

#define DCL1_CHECK_ONLY(...)

#endif // DCL1_CHECK_ENABLED

namespace dcl1::check
{

/** True when the checking layer is compiled in. */
inline constexpr bool checksCompiledIn = DCL1_CHECK_ENABLED != 0;

} // namespace dcl1::check

#endif // DCL1_CHECK_CHECK_HH
