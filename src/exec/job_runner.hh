/**
 * @file
 * Work-stealing thread pool executing independent simulation jobs.
 *
 * Threading model
 * ---------------
 * run() resolves a worker count W (min(opts.jobs, #jobs); opts.jobs=0
 * means one worker per hardware thread). W==1 executes every job
 * inline on the calling thread — no threads are spawned, which keeps
 * `--jobs=1` byte-for-byte equivalent to the historical serial tools.
 * For W>1, jobs are dealt round-robin onto per-worker deques; a worker
 * pops from the front of its own deque and steals from the back of its
 * neighbours' when it runs dry. Jobs are coarse (whole simulations),
 * so simple mutex-guarded deques are plenty.
 *
 * Fault isolation
 * ---------------
 * Each job runs under a SimErrorTrap: panic()/fatal() raised inside
 * the simulated machine (and any C++ exception) are captured into the
 * job's JobResult::error instead of terminating the process; the
 * remaining jobs keep running. The cycle-budget watchdog
 * (ExecOptions::cycleBudget) fails runaway jobs the same way.
 *
 * Retry with quarantine
 * ---------------------
 * A failed attempt is classified (FailureKind) before the engine
 * decides what to do with it. Watchdog timeouts retry up to
 * ExecOptions::maxRetries times with an escalating cycle budget;
 * unclassified worker exceptions retry at the same budget; panic() and
 * fatal() are deterministic — re-running an identical pure function
 * cannot help — so those jobs are quarantined on the first attempt.
 * Whatever the outcome, the batch completes with partial results.
 *
 * Durable runs
 * ------------
 * attachManifest() couples a batch to a RunManifest write-ahead log:
 * jobs whose key already carries an ok/quarantined record are satisfied
 * from the log without simulating (JobResult::resumed), and every newly
 * finished ok/quarantined job is appended before the batch moves on.
 * SIGINT (see exec/interrupt.hh) drains in-flight jobs, marks the rest
 * skipped, and finalizes the manifest as "interrupted" so the same
 * command line can resume later.
 *
 * Determinism
 * -----------
 * Results are stored by job index. Every simulation is a pure function
 * of its configuration (per-thread ledger, per-instance RNG/stats), so
 * the result vector — and anything derived from it in index order — is
 * identical for any W.
 */

#ifndef DCL1_EXEC_JOB_RUNNER_HH
#define DCL1_EXEC_JOB_RUNNER_HH

#include <vector>

#include "exec/job.hh"
#include "exec/result_sink.hh"

namespace dcl1::exec
{

class RunManifest;

/** See file comment. */
class JobRunner
{
  public:
    explicit JobRunner(ExecOptions opts = {});

    /** Attach an observer (not owned; must outlive run()). */
    void addSink(ResultSink *sink);

    /**
     * Couple the next run() to a durable-run manifest (not owned; must
     * outlive run()). Completed records satisfy matching jobs without
     * re-simulating; new completions are appended to the write-ahead
     * log as they land; run() finalizes the manifest on the way out —
     * unless a coordinator is attached, in which case the worker
     * driver owns finalization (one batch is one *round*, not the
     * whole run).
     */
    void attachManifest(RunManifest *manifest);

    /**
     * Couple the next run() to a multi-process cell coordinator (not
     * owned; must outlive run()). Every keyed, non-resumed job is
     * bracketed by tryAcquire / confirmPublish / release: a cell
     * leased by another worker is *deferred* (not failed), and a
     * result whose lease was reclaimed mid-run is *lost* (dropped
     * before it reaches the manifest). See exec/lease.hh.
     */
    void attachCoordinator(CellCoordinator *coordinator);

    /**
     * Execute every spec; blocks until all are done. Results are
     * indexed like @p specs. Never throws for job failures — inspect
     * JobResult::ok.
     */
    std::vector<JobResult> run(const std::vector<JobSpec> &specs);

    /** Worker count the last/next run resolves to for @p num_jobs. */
    unsigned resolveWorkers(std::size_t num_jobs) const;

    const ExecOptions &options() const { return opts_; }

  private:
    ExecOptions opts_;
    /** Serializes all sink callbacks (see SinkFanout). */
    SinkFanout sinks_;
    RunManifest *manifest_ = nullptr;
    CellCoordinator *coordinator_ = nullptr;
};

} // namespace dcl1::exec

#endif // DCL1_EXEC_JOB_RUNNER_HH
