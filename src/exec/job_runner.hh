/**
 * @file
 * Work-stealing thread pool executing independent simulation jobs.
 *
 * Threading model
 * ---------------
 * run() resolves a worker count W (min(opts.jobs, #jobs); opts.jobs=0
 * means one worker per hardware thread). W==1 executes every job
 * inline on the calling thread — no threads are spawned, which keeps
 * `--jobs=1` byte-for-byte equivalent to the historical serial tools.
 * For W>1, jobs are dealt round-robin onto per-worker deques; a worker
 * pops from the front of its own deque and steals from the back of its
 * neighbours' when it runs dry. Jobs are coarse (whole simulations),
 * so simple mutex-guarded deques are plenty.
 *
 * Fault isolation
 * ---------------
 * Each job runs under a SimErrorTrap: panic()/fatal() raised inside
 * the simulated machine (and any C++ exception) are captured into the
 * job's JobResult::error instead of terminating the process; the
 * remaining jobs keep running. The cycle-budget watchdog
 * (ExecOptions::cycleBudget) fails runaway jobs the same way.
 *
 * Determinism
 * -----------
 * Results are stored by job index. Every simulation is a pure function
 * of its configuration (per-thread ledger, per-instance RNG/stats), so
 * the result vector — and anything derived from it in index order — is
 * identical for any W.
 */

#ifndef DCL1_EXEC_JOB_RUNNER_HH
#define DCL1_EXEC_JOB_RUNNER_HH

#include <vector>

#include "exec/job.hh"
#include "exec/result_sink.hh"

namespace dcl1::exec
{

/** See file comment. */
class JobRunner
{
  public:
    explicit JobRunner(ExecOptions opts = {});

    /** Attach an observer (not owned; must outlive run()). */
    void addSink(ResultSink *sink);

    /**
     * Execute every spec; blocks until all are done. Results are
     * indexed like @p specs. Never throws for job failures — inspect
     * JobResult::ok.
     */
    std::vector<JobResult> run(const std::vector<JobSpec> &specs);

    /** Worker count the last/next run resolves to for @p num_jobs. */
    unsigned resolveWorkers(std::size_t num_jobs) const;

    const ExecOptions &options() const { return opts_; }

  private:
    ExecOptions opts_;
    std::vector<ResultSink *> sinks_;
};

} // namespace dcl1::exec

#endif // DCL1_EXEC_JOB_RUNNER_HH
