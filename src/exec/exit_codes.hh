/**
 * @file
 * The exit-code contract of the dcl1 tools.
 *
 * One authoritative definition, referenced by both tools' --help text,
 * the README and the CI smoke scripts; tests/test_exec.cc pins the
 * numeric values so they can never silently drift.
 */

#ifndef DCL1_EXEC_EXIT_CODES_HH
#define DCL1_EXEC_EXIT_CODES_HH

namespace dcl1::exec
{

/** Everything completed and every cell/run succeeded. */
inline constexpr int kExitOk = 0;

/** fatal(): impossible configuration or unusable option/environment
 *  (the process-wide convention; not engine-specific). */
inline constexpr int kExitConfigError = 1;

/** dcl1run: the single requested simulation failed (panic, budget). */
inline constexpr int kExitRunFailed = 2;

/** Sweep completed, but at least one cell failed for a *retryable*
 *  reason (watchdog timeout with retries exhausted, worker
 *  exception). Rows are dropped; rerunning or resuming with a larger
 *  budget may recover the missing cells. */
inline constexpr int kExitFailedCells = 3;

/** Sweep interrupted (SIGINT / --interrupt-after): in-flight jobs
 *  were drained, the run manifest was finalized, and the batch can be
 *  continued with --resume=DIR. No CSV is written. */
inline constexpr int kExitResumable = 4;

/** Sweep completed and every failed cell was *quarantined*: its
 *  failure is deterministic (panic or config error inside the model),
 *  so retrying — or resuming — will never recover it. Partial results
 *  were written; the quarantine report lists the poisoned cells. */
inline constexpr int kExitQuarantined = 5;

/** The named run directory exists but cannot be used by this
 *  invocation: its manifest was written by an incompatible build (WAL
 *  schema / DCL1_CHECK signature mismatch) or is not a dcl1 manifest
 *  at all. Distinct from kExitConfigError so fleet launchers can tell
 *  "wrong binary against this run directory" (stop the fleet) apart
 *  from a worker's bad flag. */
inline constexpr int kExitIncompatibleRunDir = 6;

/** One-paragraph contract shared by both tools' --help output. */
inline constexpr const char *kExitCodeContract =
    "exit codes: 0 ok; 1 bad configuration/options; 2 single run "
    "failed (dcl1run); 3 sweep completed with retryable failed cells "
    "(rows dropped); 4 sweep interrupted, resumable with --resume=DIR; "
    "5 sweep completed with deterministically failing (quarantined) "
    "cells; 6 run directory written by an incompatible build/schema";

} // namespace dcl1::exec

#endif // DCL1_EXEC_EXIT_CODES_HH
