#include "exec/job_set.hh"

#include "check/check.hh"
#include "common/log.hh"

namespace dcl1::exec
{

core::RunMetrics
runCell(const GridCell &cell, JobContext &ctx)
{
    // Fail a mis-budgeted cell before paying for construction.
    if (ctx.cycleBudget() != 0)
        ctx.checkCycleBudget(cell.opts.warmupCycles +
                             cell.opts.measureCycles);

    core::GpuSystem gpu(cell.sys, cell.design, cell.app);
    core::GpuSystem::CycleHeartbeat heartbeat;
    if (ctx.cycleBudget() != 0)
        heartbeat = [&ctx](Cycle now) { ctx.checkCycleBudget(now); };
    gpu.run(cell.opts.measureCycles, cell.opts.warmupCycles, heartbeat);
    // Full audit at the end of the measured interval, exactly like
    // core::runOnce; run() itself audits on a power-of-two cadence.
    DCL1_CHECK_ONLY(gpu.checkInvariants("exec::runCell"));
    return gpu.metrics();
}

std::size_t
JobSet::addCell(const core::SystemConfig &sys,
                const core::DesignConfig &design,
                const workload::WorkloadParams &app,
                const core::ExperimentOptions &opts,
                const std::string &key_suffix)
{
    ++cellsRequested_;
    const std::string key = csprintf(
        "%s|%s|%llu|%llu|%s|%llu|%s", design.name.c_str(),
        app.name.c_str(),
        static_cast<unsigned long long>(opts.measureCycles),
        static_cast<unsigned long long>(opts.warmupCycles),
        sys.summary().c_str(), static_cast<unsigned long long>(sys.seed),
        key_suffix.c_str());
    const auto it = keyToIndex_.find(key);
    if (it != keyToIndex_.end())
        return it->second;

    GridCell cell{sys, design, app, opts};
    JobSpec spec;
    spec.label = design.name + "/" + app.name;
    spec.fn = [cell = std::move(cell)](JobContext &ctx) {
        return runCell(cell, ctx);
    };
    specs_.push_back(std::move(spec));
    ++cellsScheduled_;
    const std::size_t index = specs_.size() - 1;
    keyToIndex_.emplace(key, index);
    return index;
}

std::size_t
JobSet::add(std::string label, JobFn fn)
{
    JobSpec spec;
    spec.label = std::move(label);
    spec.fn = std::move(fn);
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

} // namespace dcl1::exec
