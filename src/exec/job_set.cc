#include "exec/job_set.hh"

#include <cctype>

#include "check/check.hh"
#include "common/log.hh"
#include "exec/atomic_file.hh"
#include "exec/chaos.hh"
#include "exec/crash_record.hh"
#include "exec/result_sink.hh"

namespace dcl1::exec
{

namespace
{

/** "<dir>/job007-Sh40_T-AlexNet.jsonl" (crash-record sanitization). */
std::string
timelineFileName(std::size_t index, const std::string &label)
{
    std::string safe;
    for (const char c : label)
        safe += (std::isalnum(static_cast<unsigned char>(c)) ||
                 c == '-' || c == '+' || c == '.')
                    ? c
                    : '_';
    return csprintf("job%03zu-%s.jsonl", index, safe.c_str());
}

} // anonymous namespace

core::RunMetrics
runCell(const GridCell &cell, JobContext &ctx)
{
    // Crash-diagnostic cooperation: hand the engine a replayable
    // description of this cell up front, so even a death during
    // construction leaves a usable record.
    const std::string config = csprintf(
        "\"design\":\"%s\",\"app\":\"%s\",\"cores\":%u,\"slices\":%u,"
        "\"channels\":%u,\"seed\":%llu,\"measure\":%llu,\"warmup\":%llu",
        jsonEscape(cell.design.name).c_str(),
        jsonEscape(cell.app.name).c_str(), cell.sys.numCores,
        cell.sys.numL2Slices, cell.sys.numChannels,
        static_cast<unsigned long long>(cell.sys.seed),
        static_cast<unsigned long long>(cell.opts.measureCycles),
        static_cast<unsigned long long>(cell.opts.warmupCycles));
    ctx.setCrashContext(config);

    // Fail a mis-budgeted cell before paying for construction.
    if (ctx.cycleBudget() != 0)
        ctx.checkCycleBudget(cell.opts.warmupCycles +
                             cell.opts.measureCycles);

    core::GpuSystem gpu(cell.sys, cell.design, cell.app);

    // Per-cell timeline: rows land line-atomically, so even the
    // timeline of a job killed mid-run parses up to its last sample.
    std::unique_ptr<AppendLog> timeline_log;
    if (!cell.timelinePath.empty()) {
        timeline_log = std::make_unique<AppendLog>(cell.timelinePath);
        const Cycle interval = cell.timelineInterval != 0
                                   ? cell.timelineInterval
                                   : core::timelineIntervalFromEnv();
        AppendLog *log = timeline_log.get();
        gpu.enableTimeline(interval, [log](const std::string &row) {
            log->appendLine(row);
        });
        ctx.setTimelinePath(cell.timelinePath);
    }

    // Fault injection rides the same cycle heartbeat as budget
    // enforcement: a fresh cell bumps the chaos cell counter, and the
    // armed kill fires once this cell's simulation reaches the seeded
    // cycle — mid-simulation, lease held, nothing cleaned up.
    chaosCellStarted();
    const bool chaos_armed = chaosConfig().killAfterCells > 0;
    core::GpuSystem::CycleHeartbeat heartbeat;
    if (ctx.cycleBudget() != 0 || chaos_armed) {
        heartbeat = [&ctx, chaos_armed](Cycle now) {
            if (chaos_armed)
                chaosCycleHeartbeat(now);
            if (ctx.cycleBudget() != 0)
                ctx.checkCycleBudget(now);
        };
    }
    try {
        gpu.run(cell.opts.measureCycles, cell.opts.warmupCycles,
                heartbeat);
        gpu.finishTelemetry();
        // Full audit at the end of the measured interval, exactly like
        // core::runOnce; run() itself audits on a power-of-two cadence.
        DCL1_CHECK_ONLY(gpu.checkInvariants("exec::runCell"));
    } catch (...) {
        // The machine is still alive here: snapshot cycle, queue
        // depths, and (DCL1_CHECK) recent ledger events into the
        // crash context. Best-effort — never mask the real failure.
        try {
            ctx.setCrashContext(config + "," + crashSnapshotJson(gpu));
        } catch (...) {
        }
        throw;
    }
    return gpu.metrics();
}

std::size_t
JobSet::addCell(const core::SystemConfig &sys,
                const core::DesignConfig &design,
                const workload::WorkloadParams &app,
                const core::ExperimentOptions &opts,
                const std::string &key_suffix)
{
    ++cellsRequested_;
    const std::string key = csprintf(
        "%s|%s|%llu|%llu|%s|%llu|%s", design.name.c_str(),
        app.name.c_str(),
        static_cast<unsigned long long>(opts.measureCycles),
        static_cast<unsigned long long>(opts.warmupCycles),
        sys.summary().c_str(), static_cast<unsigned long long>(sys.seed),
        key_suffix.c_str());
    const auto it = keyToIndex_.find(key);
    if (it != keyToIndex_.end())
        return it->second;

    // Front-door validation: an impossible platform or design is a
    // config error at grid-build time, not a mid-batch worker death.
    sys.validate();
    design.validate(sys);

    GridCell cell{sys, design, app, opts, "", 0};
    JobSpec spec;
    spec.label = design.name + "/" + app.name;
    spec.key = key;
    if (!timelineDir_.empty()) {
        cell.timelinePath =
            timelineDir_ + "/" +
            timelineFileName(specs_.size(), spec.label);
        cell.timelineInterval = timelineInterval_;
    }
    spec.fn = [cell = std::move(cell)](JobContext &ctx) {
        return runCell(cell, ctx);
    };
    specs_.push_back(std::move(spec));
    ++cellsScheduled_;
    const std::size_t index = specs_.size() - 1;
    keyToIndex_.emplace(key, index);
    return index;
}

void
JobSet::setTimelineDir(std::string dir, Cycle interval)
{
    if (!dir.empty())
        ensureDirectory(dir);
    timelineDir_ = std::move(dir);
    timelineInterval_ = interval;
}

std::size_t
JobSet::add(std::string label, JobFn fn)
{
    JobSpec spec;
    spec.label = std::move(label);
    spec.fn = std::move(fn);
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

} // namespace dcl1::exec
