/**
 * @file
 * Dedicated lease-renewal thread for fleet workers.
 *
 * A worker's leases must keep their mtimes fresh while the worker is
 * busy simulating, or reclaimers would declare it dead mid-cell. The
 * HeartbeatThread renews every tracked lease each interval by
 * atomically rewriting its claim file with the next monotone sequence
 * number. Renewal failure means the lease was reclaimed (the worker
 * was presumed dead): the key is marked *lost* and dropped from
 * tracking, and the owning job's result is discarded before publish.
 *
 * The tracked/lost sets are shared with worker threads and guarded by
 * a dcl1::Mutex with DCL1_GUARDED_BY contracts the `-Wthread-safety`
 * lane verifies. The loop paces itself with short sleep slices (no
 * condition variable) so stop() latency stays bounded without waking
 * hardware timers at renewal frequency.
 *
 * Fault injection: when the chaos harness (exec/chaos.hh) is told to
 * drop heartbeats, the loop silently stops renewing while the worker
 * keeps simulating — exactly the "alive but stalled" zombie the
 * reclamation protocol has to get right.
 */

#ifndef DCL1_EXEC_HEARTBEAT_HH
#define DCL1_EXEC_HEARTBEAT_HH

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace dcl1::exec
{

class LeaseDir;

/** See file comment. */
class HeartbeatThread
{
  public:
    /** Renew tracked leases on @p leases every @p interval_ms. */
    HeartbeatThread(LeaseDir &leases, std::int64_t interval_ms);

    /** Stops and joins; every tracked lease simply stops renewing. */
    ~HeartbeatThread();

    HeartbeatThread(const HeartbeatThread &) = delete;
    HeartbeatThread &operator=(const HeartbeatThread &) = delete;

    /** Launch the renewal thread (idempotent). */
    void start();

    /** Stop and join the renewal thread (idempotent). */
    void stop();

    /** Begin renewing @p key (call once the claim is held). */
    void track(const std::string &key) DCL1_EXCLUDES(mutex_);

    /** Stop renewing @p key (released or abandoned). */
    void untrack(const std::string &key) DCL1_EXCLUDES(mutex_);

    /** Did a renewal discover that @p key's lease was reclaimed? */
    bool lost(const std::string &key) const DCL1_EXCLUDES(mutex_);

    /** Completed renewal sweeps (test observability). */
    std::uint64_t beats() const
    {
        return beats_.load(std::memory_order_relaxed);
    }

  private:
    void loop();

    LeaseDir &leases_;
    const std::int64_t intervalMs_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<std::uint64_t> beats_{0};
    mutable Mutex mutex_;
    std::set<std::string> tracked_ DCL1_GUARDED_BY(mutex_);
    std::set<std::string> lost_ DCL1_GUARDED_BY(mutex_);
};

} // namespace dcl1::exec

#endif // DCL1_EXEC_HEARTBEAT_HH
