#include "exec/run_manifest.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "check/check.hh"
#include "common/log.hh"
#include "exec/exit_codes.hh"
#include "exec/result_sink.hh"

namespace dcl1::exec
{

namespace
{

/** Bump when the WAL record layout changes incompatibly. */
constexpr int kWalSchema = 1;

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path);
    std::string text;
    for (std::string line; std::getline(in, line);) {
        text += line;
        text += '\n';
    }
    return text;
}

} // anonymous namespace

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        const char next = s[++i];
        switch (next) {
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u':
            if (i + 4 < s.size()) {
                out += static_cast<char>(
                    std::strtoul(s.substr(i + 1, 4).c_str(), nullptr,
                                 16));
                i += 4;
            }
            break;
          default:
            out += next; // \" and \\ (and anything unknown, verbatim)
        }
    }
    return out;
}

bool
jsonFieldString(const std::string &text, const char *field,
                std::string &out)
{
    const std::string needle = csprintf("\"%s\":\"", field);
    const std::size_t start = text.find(needle);
    if (start == std::string::npos)
        return false;
    std::size_t i = start + needle.size();
    std::string raw;
    while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) {
            raw += text[i];
            ++i;
        }
        raw += text[i];
        ++i;
    }
    if (i >= text.size())
        return false; // unterminated string: malformed record
    out = jsonUnescape(raw);
    return true;
}

std::string
jsonFieldRaw(const std::string &text, const char *field)
{
    const std::string needle = csprintf("\"%s\":", field);
    const std::size_t start = text.find(needle);
    if (start == std::string::npos)
        return "";
    std::size_t i = start + needle.size();
    if (i < text.size() && text[i] == '{') {
        // Flat nested object (our metrics): no inner braces/strings
        // containing braces, so scan to the matching close.
        const std::size_t close = text.find('}', i);
        if (close == std::string::npos)
            return "";
        return text.substr(i, close - i + 1);
    }
    std::string out;
    while (i < text.size() && text[i] != ',' && text[i] != '}' &&
           text[i] != '\n')
        out += text[i++];
    return out;
}

std::string
runMetricsJson(const core::RunMetrics &rm)
{
    // %.17g round-trips IEEE doubles exactly: resumed metrics are
    // bit-identical to freshly simulated ones, which is what keeps a
    // resumed CSV byte-identical to an uninterrupted run's.
    return csprintf(
        "{\"cycles\":%llu,\"instructions\":%llu,\"ipc\":%.17g,"
        "\"l1_accesses\":%llu,\"l1_misses\":%llu,\"l1_miss_rate\":%.17g,"
        "\"repl_ratio\":%.17g,\"avg_replicas\":%.17g,"
        "\"max_l1_port_util\":%.17g,\"max_core_reply_util\":%.17g,"
        "\"max_mem_reply_util\":%.17g,\"avg_read_latency\":%.17g,"
        "\"noc1_flits\":%llu,\"noc2_flits\":%llu,\"l2_accesses\":%llu,"
        "\"l2_misses\":%llu,\"dram_reads\":%llu,\"dram_writes\":%llu}",
        static_cast<unsigned long long>(rm.cycles),
        static_cast<unsigned long long>(rm.instructions), rm.ipc,
        static_cast<unsigned long long>(rm.l1Accesses),
        static_cast<unsigned long long>(rm.l1Misses), rm.l1MissRate,
        rm.replicationRatio, rm.avgReplicas, rm.maxL1PortUtil,
        rm.maxCoreReplyLinkUtil, rm.maxMemReplyLinkUtil,
        rm.avgReadLatency,
        static_cast<unsigned long long>(rm.noc1Flits),
        static_cast<unsigned long long>(rm.noc2Flits),
        static_cast<unsigned long long>(rm.l2Accesses),
        static_cast<unsigned long long>(rm.l2Misses),
        static_cast<unsigned long long>(rm.dramReads),
        static_cast<unsigned long long>(rm.dramWrites));
}

bool
parseRunMetricsJson(const std::string &json, core::RunMetrics &rm)
{
    auto u64 = [&](const char *field, std::uint64_t &out) {
        const std::string raw = jsonFieldRaw(json, field);
        if (raw.empty())
            return false;
        out = std::strtoull(raw.c_str(), nullptr, 10);
        return true;
    };
    auto f64 = [&](const char *field, double &out) {
        const std::string raw = jsonFieldRaw(json, field);
        if (raw.empty())
            return false;
        out = std::strtod(raw.c_str(), nullptr);
        return true;
    };
    return u64("cycles", rm.cycles) &&
           u64("instructions", rm.instructions) && f64("ipc", rm.ipc) &&
           u64("l1_accesses", rm.l1Accesses) &&
           u64("l1_misses", rm.l1Misses) &&
           f64("l1_miss_rate", rm.l1MissRate) &&
           f64("repl_ratio", rm.replicationRatio) &&
           f64("avg_replicas", rm.avgReplicas) &&
           f64("max_l1_port_util", rm.maxL1PortUtil) &&
           f64("max_core_reply_util", rm.maxCoreReplyLinkUtil) &&
           f64("max_mem_reply_util", rm.maxMemReplyLinkUtil) &&
           f64("avg_read_latency", rm.avgReadLatency) &&
           u64("noc1_flits", rm.noc1Flits) &&
           u64("noc2_flits", rm.noc2Flits) &&
           u64("l2_accesses", rm.l2Accesses) &&
           u64("l2_misses", rm.l2Misses) &&
           u64("dram_reads", rm.dramReads) &&
           u64("dram_writes", rm.dramWrites);
}

std::string
buildSignature()
{
    return csprintf("wal-schema=%d check=%d", kWalSchema,
                    check::checksCompiledIn ? 1 : 0);
}

std::string
JobRecord::toJsonLine() const
{
    return csprintf(
        "{\"key\":\"%s\",\"label\":\"%s\",\"ok\":%s,"
        "\"quarantined\":%s,\"attempts\":%u,\"kind\":\"%s\","
        "\"metrics\":%s,\"error\":\"%s\",\"timeline\":\"%s\"}",
        jsonEscape(key).c_str(), jsonEscape(label).c_str(),
        ok ? "true" : "false", quarantined ? "true" : "false", attempts,
        failureKindName(kind), runMetricsJson(metrics).c_str(),
        jsonEscape(error).c_str(), jsonEscape(timeline).c_str());
}

bool
JobRecord::fromJsonLine(const std::string &line, JobRecord &out)
{
    if (!jsonFieldString(line, "key", out.key) ||
        !jsonFieldString(line, "label", out.label))
        return false;
    const std::string ok = jsonFieldRaw(line, "ok");
    const std::string quarantined = jsonFieldRaw(line, "quarantined");
    const std::string attempts = jsonFieldRaw(line, "attempts");
    if (ok.empty() || quarantined.empty() || attempts.empty())
        return false;
    out.ok = ok == "true";
    out.quarantined = quarantined == "true";
    out.attempts = static_cast<unsigned>(
        std::strtoul(attempts.c_str(), nullptr, 10));
    std::string kind;
    if (jsonFieldString(line, "kind", kind)) {
        for (const auto k :
             {FailureKind::None, FailureKind::Timeout,
              FailureKind::SimBug, FailureKind::ConfigError,
              FailureKind::WorkerException})
            if (kind == failureKindName(k))
                out.kind = k;
    }
    jsonFieldString(line, "error", out.error);
    // Absent in schema-compatible records from before the telemetry
    // layer; those jobs simply have no timeline to point at.
    jsonFieldString(line, "timeline", out.timeline);
    const std::string metrics = jsonFieldRaw(line, "metrics");
    if (out.ok &&
        (metrics.empty() || !parseRunMetricsJson(metrics, out.metrics)))
        return false;
    return true;
}

RunManifest::RunManifest(std::string dir, std::string config)
    : dir_(std::move(dir)), config_(std::move(config)),
      wal_(dir_ + "/jobs.jsonl")
{
}

std::unique_ptr<RunManifest>
RunManifest::openOrCreate(const std::string &dir,
                          const std::string &config)
{
    if (dir.empty())
        fatal("durable run: empty run-directory path");
    ensureDirectory(dir);
    auto m = std::make_unique<RunManifest>(dir, config);

    const std::string manifest_path = dir + "/manifest.json";
    const std::string existing = readWholeFile(manifest_path);
    if (existing.empty()) {
        MutexLock lock(m->mutex_);
        m->writeManifestFile("running");
        return m;
    }

    // Incompatibility gets its own pinned exit code (6, distinct from
    // the generic config-error 1): a fleet launcher seeing it knows
    // *every* worker it would spawn against this directory is doomed,
    // where exit 1 just means one worker got a flag wrong.
    std::string stored_config, stored_signature;
    if (!jsonFieldString(existing, "config", stored_config) ||
        !jsonFieldString(existing, "signature", stored_signature)) {
        std::fprintf(stderr,
                     "run directory '%s': unreadable manifest.json — "
                     "not a dcl1 run directory? Use a fresh "
                     "directory.\n",
                     dir.c_str());
        std::exit(kExitIncompatibleRunDir);
    }
    if (stored_signature != buildSignature()) {
        std::fprintf(stderr,
                     "run directory '%s' was produced by an "
                     "incompatible build (%s vs %s); completed records "
                     "cannot be trusted. Use a fresh directory.\n",
                     dir.c_str(), stored_signature.c_str(),
                     buildSignature().c_str());
        std::exit(kExitIncompatibleRunDir);
    }
    if (stored_config != config)
        fatal("run directory '%s' belongs to a different batch:\n"
              "  stored:  %s\n  current: %s\n"
              "Resuming it would mix incompatible results; rerun with "
              "the original options or use a fresh directory.",
              dir.c_str(), stored_config.c_str(), config.c_str());

    {
        MutexLock lock(m->mutex_);
        m->loadRecords();
        // Keep a fleet coordinator summary a previous worker wrote:
        // later rewrites (a merge run, another worker's finalize)
        // must not silently drop the fleet's protocol statistics.
        const std::string coord = jsonFieldRaw(existing, "coordinator");
        if (!coord.empty())
            m->coordinatorJson_ = coord;
        m->writeManifestFile("running");
    }
    return m;
}

void
RunManifest::loadRecords()
{
    std::ifstream in(dir_ + "/jobs.jsonl");
    std::size_t malformed = 0;
    for (std::string line; std::getline(in, line);) {
        if (line.empty())
            continue;
        JobRecord rec;
        if (!JobRecord::fromJsonLine(line, rec)) {
            // A torn final line from a hard kill is expected once; the
            // job it described simply re-runs.
            ++malformed;
            continue;
        }
        records_[rec.key] = rec;
    }
    if (malformed > 0)
        warn("run directory '%s': %zu unparsable WAL line(s) ignored "
             "(likely a torn tail from a hard kill)",
             dir_.c_str(), malformed);
}

const JobRecord *
RunManifest::find(const std::string &key) const
{
    MutexLock lock(mutex_);
    const auto it = records_.find(key);
    return it == records_.end() ? nullptr : &it->second;
}

void
RunManifest::append(const JobRecord &record)
{
    if (record.key.empty())
        return;
    MutexLock lock(mutex_);
    wal_.appendLine(record.toJsonLine());
    records_[record.key] = record;
}

std::size_t
RunManifest::refresh()
{
    MutexLock lock(mutex_);
    const std::size_t before = records_.size();
    loadRecords();
    return records_.size() - before;
}

void
RunManifest::setCoordinatorSummary(std::string json_object)
{
    MutexLock lock(mutex_);
    coordinatorJson_ = std::move(json_object);
}

void
RunManifest::finalize(const std::string &status)
{
    MutexLock lock(mutex_);
    writeManifestFile(status);
}

void
RunManifest::writeManifestFile(const std::string &status)
{
    AtomicFileWriter out(dir_ + "/manifest.json");
    const std::string coordinator =
        coordinatorJson_.empty()
            ? std::string()
            : csprintf(",\"coordinator\":%s", coordinatorJson_.c_str());
    out.stream() << csprintf(
        "{\"signature\":\"%s\",\"config\":\"%s\",\"status\":\"%s\","
        "\"completed\":%zu%s}\n",
        jsonEscape(buildSignature()).c_str(),
        jsonEscape(config_).c_str(), jsonEscape(status).c_str(),
        records_.size(), coordinator.c_str());
    out.commit();
}

} // namespace dcl1::exec
