#include "exec/job_runner.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <thread>

#include "common/env.hh"
#include "common/log.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "exec/crash_record.hh"
#include "exec/interrupt.hh"
#include "exec/run_manifest.hh"

namespace dcl1::exec
{

namespace
{

// Host-side timing of the execution engine, never of simulated
// behavior; audited exception to the simulation no-wallclock rule.
using HostClock = std::chrono::steady_clock; // lint: wallclock-ok

double
msSince(HostClock::time_point start)
{
    return std::chrono::duration<double, std::milli>(HostClock::now() -
                                                     start)
        .count();
}

/** One worker's mutex-guarded job queue. */
struct WorkerDeque
{
    Mutex mutex;
    std::deque<std::size_t> jobs DCL1_GUARDED_BY(mutex);

    void
    pushBack(std::size_t index) DCL1_EXCLUDES(mutex)
    {
        MutexLock lock(mutex);
        jobs.push_back(index);
    }

    bool
    popFront(std::size_t &out) DCL1_EXCLUDES(mutex)
    {
        MutexLock lock(mutex);
        if (jobs.empty())
            return false;
        out = jobs.front();
        jobs.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &out) DCL1_EXCLUDES(mutex)
    {
        MutexLock lock(mutex);
        if (jobs.empty())
            return false;
        out = jobs.back();
        jobs.pop_back();
        return true;
    }
};

} // anonymous namespace

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return "none";
      case FailureKind::Timeout:
        return "timeout";
      case FailureKind::SimBug:
        return "sim-bug";
      case FailureKind::ConfigError:
        return "config-error";
      case FailureKind::WorkerException:
        return "worker-exception";
    }
    return "unknown";
}

unsigned
ExecOptions::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ExecOptions
ExecOptions::fromEnv()
{
    ExecOptions opts;
    opts.jobs = static_cast<unsigned>(
        envIntOr("DCL1_JOBS", 0, /*min_value=*/0, /*max_value=*/4096));
    opts.cycleBudget = static_cast<Cycle>(
        envIntOr("DCL1_JOB_BUDGET", 0, /*min_value=*/0,
                 std::numeric_limits<std::int64_t>::max()));
    opts.maxRetries = static_cast<unsigned>(
        envIntOr("DCL1_RETRIES", 2, /*min_value=*/0, /*max_value=*/100));
    opts.crashDir = envStrOr("DCL1_CRASH_DIR", opts.crashDir);
    opts.jsonlPath = envStrOr("DCL1_JOBS_LOG", opts.jsonlPath);
    opts.profile = envIsSet("DCL1_PROF");
    return opts;
}

void
JobContext::checkCycleBudget(Cycle simulated_cycles) const
{
    if (cycleBudget_ != 0 && simulated_cycles > cycleBudget_)
        throw CycleBudgetExceeded(csprintf(
            "job %zu exceeded its cycle budget (%llu > %llu simulated "
            "cycles)",
            index_, static_cast<unsigned long long>(simulated_cycles),
            static_cast<unsigned long long>(cycleBudget_)));
}

JobRunner::JobRunner(ExecOptions opts) : opts_(std::move(opts))
{
}

void
JobRunner::addSink(ResultSink *sink)
{
    sinks_.add(sink);
}

void
JobRunner::attachManifest(RunManifest *manifest)
{
    manifest_ = manifest;
}

void
JobRunner::attachCoordinator(CellCoordinator *coordinator)
{
    coordinator_ = coordinator;
}

unsigned
JobRunner::resolveWorkers(std::size_t num_jobs) const
{
    const unsigned requested =
        opts_.jobs == 0 ? ExecOptions::hardwareConcurrency() : opts_.jobs;
    const unsigned cap =
        static_cast<unsigned>(std::min<std::size_t>(num_jobs, 4096));
    return std::max(1u, std::min(requested, std::max(1u, cap)));
}

std::vector<JobResult>
JobRunner::run(const std::vector<JobSpec> &specs)
{
    const std::size_t n = specs.size();
    const unsigned workers = resolveWorkers(n);

    std::vector<JobResult> results(n);

    const HostClock::time_point batch_start = HostClock::now();
    sinks_.runStart(n, workers);

    // Resume prefill: jobs whose key already carries a terminal record
    // (ok or quarantined — retryable failures are never recorded) are
    // satisfied from the manifest without simulating. Runs in index
    // order on the calling thread, so resumed output is deterministic.
    std::vector<char> pending(n, 1);
    if (manifest_) {
        for (std::size_t i = 0; i < n; ++i) {
            if (specs[i].key.empty())
                continue;
            const JobRecord *rec = manifest_->find(specs[i].key);
            if (!rec || (!rec->ok && !rec->quarantined))
                continue;
            JobResult r;
            r.index = i;
            r.label = specs[i].label;
            r.key = specs[i].key;
            r.ok = rec->ok;
            r.error = rec->error;
            r.kind = rec->kind;
            r.attempts = rec->attempts;
            r.quarantined = rec->quarantined;
            r.resumed = true;
            r.metrics = rec->metrics;
            r.timelinePath = rec->timeline;
            results[i] = std::move(r);
            pending[i] = 0;
            sinks_.jobDone(results[i]);
        }
    }

    const std::string crash_dir =
        !opts_.crashDir.empty()
            ? opts_.crashDir
            : (manifest_ ? manifest_->crashDir() : std::string());

    // Executes one job with fault isolation and the retry-with-
    // quarantine policy; the only writer of results[index], so workers
    // never touch the same element.
    auto execute = [&](std::size_t index, unsigned worker) {
        const JobSpec &spec = specs[index];

        JobResult r;
        r.index = index;
        r.label = spec.label;
        r.key = spec.key;
        r.worker = worker;

        // Multi-process claim: exactly one worker process may own a
        // keyed cell at a time. Busy is not a failure — the cell is
        // deferred and the worker driver re-checks it next round.
        const bool coordinated = coordinator_ && !spec.key.empty();
        if (coordinated &&
            coordinator_->tryAcquire(spec.key) ==
                CellCoordinator::Claim::Busy) {
            r.deferred = true;
            results[index] = std::move(r);
            sinks_.jobDone(results[index]);
            return;
        }

        sinks_.jobStart(index, spec.label, worker);
        const HostClock::time_point job_start = HostClock::now();

        std::string crash_context;
        unsigned timeouts = 0;
        for (unsigned attempt = 0;; ++attempt) {
            // Timeout escalation: a job that timed out k times re-runs
            // with the budget scaled by escalation^k, so a near-miss
            // gets headroom. Worker-exception retries keep the
            // configured budget — the budget was not the problem.
            Cycle budget = opts_.cycleBudget;
            if (budget != 0 && timeouts > 0 &&
                opts_.budgetEscalation > 1.0)
                budget = static_cast<Cycle>(
                    double(budget) *
                    std::pow(opts_.budgetEscalation, double(timeouts)));

            JobContext ctx(index, worker, budget);
            r.kind = FailureKind::None;
            r.error.clear();
            // Fresh profiler per attempt: a retried job reports the
            // profile of the attempt that produced its result, not a
            // blend of failed ones.
            std::unique_ptr<prof::Profiler> profiler;
            if (opts_.profile)
                profiler = std::make_unique<prof::Profiler>();
            try {
                prof::TlsGuard prof_guard(profiler.get());
                SimErrorTrap trap;
                r.metrics = spec.fn(ctx);
                r.ok = true;
            } catch (const CycleBudgetExceeded &e) {
                r.error = e.what();
                r.kind = FailureKind::Timeout;
            } catch (const SimAbort &e) {
                r.error = e.what();
                r.kind = e.isPanic ? FailureKind::SimBug
                                   : FailureKind::ConfigError;
            } catch (const std::exception &e) {
                r.error = e.what();
                r.kind = FailureKind::WorkerException;
            } catch (...) {
                r.error = "unknown exception";
                r.kind = FailureKind::WorkerException;
            }
            r.attempts = attempt + 1;
            if (profiler)
                r.prof = profiler->report();
            if (!ctx.crashContext().empty())
                crash_context = ctx.crashContext();
            if (!ctx.timelinePath().empty())
                r.timelinePath = ctx.timelinePath();
            if (r.ok)
                break;
            if (r.kind == FailureKind::SimBug ||
                r.kind == FailureKind::ConfigError) {
                // Deterministic: the simulator is a pure function of
                // its configuration, so a retry cannot change anything.
                r.quarantined = true;
                break;
            }
            if (attempt >= opts_.maxRetries)
                break;
            if (r.kind == FailureKind::Timeout)
                ++timeouts;
        }
        r.wallMs = msSince(job_start);
        if (r.prof.enabled)
            r.prof.wallNs = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    HostClock::now() - job_start)
                    .count());

        // Pre-publish ownership verification: if the lease was
        // reclaimed while the job ran (this process was presumed
        // dead), the reclaimer's re-run owns the cell now — drop the
        // result rather than double-publish.
        if (coordinated && !coordinator_->confirmPublish(spec.key))
            r.lost = true;

        if (!r.ok && !r.lost && !crash_dir.empty())
            writeCrashRecord(crash_dir, r, crash_context);

        if (manifest_ && !spec.key.empty() && !r.lost &&
            (r.ok || r.quarantined)) {
            JobRecord rec;
            rec.key = spec.key;
            rec.label = spec.label;
            rec.ok = r.ok;
            rec.quarantined = r.quarantined;
            rec.attempts = r.attempts;
            rec.kind = r.kind;
            rec.error = r.error;
            rec.metrics = r.metrics;
            rec.timeline = r.timelinePath;
            // RunManifest::append is internally synchronized.
            manifest_->append(rec);
        }

        // Release only after the WAL append: a lease dropped first
        // would open a window where another worker claims and runs the
        // cell before this result becomes visible.
        if (coordinated)
            coordinator_->release(spec.key);

        results[index] = std::move(r);
        sinks_.jobDone(results[index]);
    };

    if (workers == 1) {
        // Inline serial mode: no threads, deterministic job order —
        // exactly the historical behavior of the serial tools.
        for (std::size_t i = 0; i < n; ++i) {
            if (interruptRequested())
                break;
            if (pending[i])
                execute(i, 0);
        }
    } else {
        std::vector<std::unique_ptr<WorkerDeque>> deques;
        for (unsigned w = 0; w < workers; ++w)
            deques.push_back(std::make_unique<WorkerDeque>());
        for (std::size_t i = 0; i < n; ++i)
            if (pending[i])
                deques[i % workers]->pushBack(i);

        auto worker_loop = [&](unsigned w) {
            std::size_t index = 0;
            for (;;) {
                // Cooperative SIGINT drain: the in-flight job finished
                // (or never started); stop pulling new ones.
                if (interruptRequested())
                    return;
                if (deques[w]->popFront(index)) {
                    execute(index, w);
                    continue;
                }
                bool stole = false;
                for (unsigned off = 1; off < workers && !stole; ++off)
                    stole = deques[(w + off) % workers]->stealBack(index);
                if (!stole)
                    return; // every deque empty: batch is finished
                execute(index, w);
            }
        };

        std::vector<std::thread> threads;
        for (unsigned w = 1; w < workers; ++w)
            threads.emplace_back(worker_loop, w);
        worker_loop(0); // the calling thread is worker 0
        for (std::thread &t : threads)
            t.join();
    }

    // Anything still pending after the pool drained was cut off by the
    // interrupt: mark it skipped so consumers can tell "never ran"
    // apart from "ran and failed".
    const bool interrupted = interruptRequested();
    for (std::size_t i = 0; i < n; ++i) {
        if (!pending[i] || results[i].attempts > 0 ||
            results[i].deferred)
            continue;
        results[i].index = i;
        results[i].label = specs[i].label;
        results[i].key = specs[i].key;
        results[i].skipped = true;
    }

    RunSummary summary;
    summary.totalJobs = n;
    summary.workers = workers;
    summary.interrupted = interrupted;
    summary.wallMs = msSince(batch_start);
    std::vector<std::size_t> by_time(n);
    for (std::size_t i = 0; i < n; ++i) {
        by_time[i] = i;
        summary.cpuMs += results[i].wallMs;
        if (results[i].skipped) {
            ++summary.skippedJobs;
            continue;
        }
        if (results[i].deferred) {
            ++summary.deferredJobs;
            continue;
        }
        if (results[i].lost)
            ++summary.lostJobs;
        if (results[i].resumed)
            ++summary.resumedJobs;
        if (!results[i].ok && !results[i].lost) {
            ++summary.failedJobs;
            if (results[i].quarantined)
                ++summary.quarantinedJobs;
        }
    }
    summary.utilization =
        summary.wallMs > 0.0
            ? summary.cpuMs / (summary.wallMs * double(workers))
            : 0.0;
    std::sort(by_time.begin(), by_time.end(),
              [&](std::size_t a, std::size_t b) {
                  return results[a].wallMs > results[b].wallMs;
              });
    by_time.resize(std::min<std::size_t>(n, 5));
    summary.slowest = std::move(by_time);

    // Under a coordinator one run() is one worker *round*; the worker
    // driver finalizes once, after its last round, with the fleet
    // status and the coordinator summary.
    if (manifest_ && !coordinator_)
        manifest_->finalize(interrupted ? "interrupted" : "complete");

    sinks_.runEnd(summary, results);
    return results;
}

} // namespace dcl1::exec
