#include "exec/job_runner.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/log.hh"

namespace dcl1::exec
{

namespace
{

// Host-side timing of the execution engine, never of simulated
// behavior; audited exception to the simulation no-wallclock rule.
using HostClock = std::chrono::steady_clock; // lint: wallclock-ok

double
msSince(HostClock::time_point start)
{
    return std::chrono::duration<double, std::milli>(HostClock::now() -
                                                     start)
        .count();
}

/** One worker's mutex-guarded job queue. */
struct WorkerDeque
{
    std::mutex mutex;
    std::deque<std::size_t> jobs;

    bool
    popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (jobs.empty())
            return false;
        out = jobs.front();
        jobs.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (jobs.empty())
            return false;
        out = jobs.back();
        jobs.pop_back();
        return true;
    }
};

} // anonymous namespace

unsigned
ExecOptions::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ExecOptions
ExecOptions::fromEnv()
{
    ExecOptions opts;
    opts.jobs = static_cast<unsigned>(
        envIntOr("DCL1_JOBS", 0, /*min_value=*/0, /*max_value=*/4096));
    opts.cycleBudget = static_cast<Cycle>(
        envIntOr("DCL1_JOB_BUDGET", 0, /*min_value=*/0,
                 std::numeric_limits<std::int64_t>::max()));
    if (const char *path = std::getenv("DCL1_JOBS_LOG"))
        opts.jsonlPath = path;
    return opts;
}

void
JobContext::checkCycleBudget(Cycle simulated_cycles) const
{
    if (cycleBudget_ != 0 && simulated_cycles > cycleBudget_)
        throw CycleBudgetExceeded(csprintf(
            "job %zu exceeded its cycle budget (%llu > %llu simulated "
            "cycles)",
            index_, static_cast<unsigned long long>(simulated_cycles),
            static_cast<unsigned long long>(cycleBudget_)));
}

JobRunner::JobRunner(ExecOptions opts) : opts_(std::move(opts))
{
}

void
JobRunner::addSink(ResultSink *sink)
{
    if (sink)
        sinks_.push_back(sink);
}

unsigned
JobRunner::resolveWorkers(std::size_t num_jobs) const
{
    const unsigned requested =
        opts_.jobs == 0 ? ExecOptions::hardwareConcurrency() : opts_.jobs;
    const unsigned cap =
        static_cast<unsigned>(std::min<std::size_t>(num_jobs, 4096));
    return std::max(1u, std::min(requested, std::max(1u, cap)));
}

std::vector<JobResult>
JobRunner::run(const std::vector<JobSpec> &specs)
{
    const std::size_t n = specs.size();
    const unsigned workers = resolveWorkers(n);

    std::vector<JobResult> results(n);
    std::mutex sink_mutex;

    auto for_sinks = [&](auto &&call) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        for (ResultSink *sink : sinks_)
            call(*sink);
    };

    const HostClock::time_point batch_start = HostClock::now();
    for_sinks([&](ResultSink &s) { s.onRunStart(n, workers); });

    // Executes one job with fault isolation; the only writer of
    // results[index], so workers never touch the same element.
    auto execute = [&](std::size_t index, unsigned worker) {
        const JobSpec &spec = specs[index];
        for_sinks([&](ResultSink &s) {
            s.onJobStart(index, spec.label, worker);
        });

        JobResult r;
        r.index = index;
        r.label = spec.label;
        r.worker = worker;
        const HostClock::time_point job_start = HostClock::now();
        JobContext ctx(index, worker, opts_.cycleBudget);
        try {
            SimErrorTrap trap;
            r.metrics = spec.fn(ctx);
            r.ok = true;
        } catch (const SimAbort &e) {
            r.error = e.what();
        } catch (const std::exception &e) {
            r.error = e.what();
        } catch (...) {
            r.error = "unknown exception";
        }
        r.wallMs = msSince(job_start);

        results[index] = std::move(r);
        for_sinks([&](ResultSink &s) { s.onJobDone(results[index]); });
    };

    if (workers == 1) {
        // Inline serial mode: no threads, deterministic job order —
        // exactly the historical behavior of the serial tools.
        for (std::size_t i = 0; i < n; ++i)
            execute(i, 0);
    } else {
        std::vector<std::unique_ptr<WorkerDeque>> deques;
        for (unsigned w = 0; w < workers; ++w)
            deques.push_back(std::make_unique<WorkerDeque>());
        for (std::size_t i = 0; i < n; ++i)
            deques[i % workers]->jobs.push_back(i);

        auto worker_loop = [&](unsigned w) {
            std::size_t index = 0;
            for (;;) {
                if (deques[w]->popFront(index)) {
                    execute(index, w);
                    continue;
                }
                bool stole = false;
                for (unsigned off = 1; off < workers && !stole; ++off)
                    stole = deques[(w + off) % workers]->stealBack(index);
                if (!stole)
                    return; // every deque empty: batch is finished
                execute(index, w);
            }
        };

        std::vector<std::thread> threads;
        for (unsigned w = 1; w < workers; ++w)
            threads.emplace_back(worker_loop, w);
        worker_loop(0); // the calling thread is worker 0
        for (std::thread &t : threads)
            t.join();
    }

    RunSummary summary;
    summary.totalJobs = n;
    summary.workers = workers;
    summary.wallMs = msSince(batch_start);
    std::vector<std::size_t> by_time(n);
    for (std::size_t i = 0; i < n; ++i) {
        by_time[i] = i;
        summary.cpuMs += results[i].wallMs;
        if (!results[i].ok)
            ++summary.failedJobs;
    }
    summary.utilization =
        summary.wallMs > 0.0
            ? summary.cpuMs / (summary.wallMs * double(workers))
            : 0.0;
    std::sort(by_time.begin(), by_time.end(),
              [&](std::size_t a, std::size_t b) {
                  return results[a].wallMs > results[b].wallMs;
              });
    by_time.resize(std::min<std::size_t>(n, 5));
    summary.slowest = std::move(by_time);

    for_sinks([&](ResultSink &s) { s.onRunEnd(summary, results); });
    return results;
}

} // namespace dcl1::exec
