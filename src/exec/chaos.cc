#include "exec/chaos.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/env.hh"
#include "common/log.hh"

namespace dcl1::exec
{

namespace
{

/**
 * Process-wide armed configuration. Written once at startup (flag /
 * env parsing), read from the simulation loop; plain object + atomic
 * cell counter keeps the disarmed fast path to one relaxed load.
 */
ChaosConfig chaos;

/** Fresh cells this process has started executing (1-based victim). */
std::atomic<std::size_t> cellsStarted{0};

} // anonymous namespace

ChaosConfig
ChaosConfig::parse(const std::string &spec)
{
    ChaosConfig config;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        const std::size_t eq = token.find('=');
        const std::string name = token.substr(0, eq);
        if (name == "drop-heartbeat") {
            if (eq != std::string::npos)
                fatal("DCL1_CHAOS: drop-heartbeat takes no value "
                      "(got '%s')", token.c_str());
            config.dropHeartbeat = true;
        } else if (name == "kill-after") {
            if (eq == std::string::npos)
                fatal("DCL1_CHAOS: kill-after needs a value "
                      "(kill-after=N)");
            config.killAfterCells = static_cast<std::size_t>(
                parseEnvInt("DCL1_CHAOS kill-after",
                            token.substr(eq + 1).c_str(), 1,
                            std::int64_t(1) << 40));
        } else if (name == "kill-at-cycle") {
            if (eq == std::string::npos)
                fatal("DCL1_CHAOS: kill-at-cycle needs a value "
                      "(kill-at-cycle=N)");
            config.killAtCycle = static_cast<Cycle>(
                parseEnvInt("DCL1_CHAOS kill-at-cycle",
                            token.substr(eq + 1).c_str(), 0,
                            std::int64_t(1) << 60));
        } else {
            fatal("DCL1_CHAOS: unknown token '%s' (expected "
                  "kill-after=N, kill-at-cycle=N, drop-heartbeat)",
                  token.c_str());
        }
    }
    return config;
}

ChaosConfig
ChaosConfig::fromEnv()
{
    return parse(envStrOr("DCL1_CHAOS", ""));
}

void
setChaosConfig(const ChaosConfig &config)
{
    chaos = config;
    cellsStarted.store(0, std::memory_order_relaxed);
}

const ChaosConfig &
chaosConfig()
{
    return chaos;
}

void
chaosCellStarted()
{
    cellsStarted.fetch_add(1, std::memory_order_relaxed);
}

void
chaosCycleHeartbeat(Cycle cell_cycle)
{
    if (chaos.killAfterCells == 0)
        return;
    if (cellsStarted.load(std::memory_order_relaxed) !=
        chaos.killAfterCells)
        return;
    if (cell_cycle < chaos.killAtCycle)
        return;
    // Die the way SIGKILL does: no destructors, no atexit, no lease
    // release, no manifest finalize. Anything the recovery protocol
    // would miss here it would also miss for a real crash.
    std::fprintf(stderr,
                 "dcl1-chaos: killing worker during cell %zu at cycle "
                 "%llu\n",
                 chaos.killAfterCells,
                 static_cast<unsigned long long>(cell_cycle));
    std::fflush(stderr);
    std::_Exit(kChaosKillStatus);
}

bool
chaosDropHeartbeat()
{
    return chaos.dropHeartbeat;
}

} // namespace dcl1::exec
