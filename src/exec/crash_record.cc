#include "exec/crash_record.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "check/request_ledger.hh"
#include "common/log.hh"
#include "core/gpu_system.hh"
#include "exec/atomic_file.hh"
#include "exec/result_sink.hh"
#include "exec/run_manifest.hh"

namespace dcl1::exec
{

std::string
crashSnapshotJson(core::GpuSystem &gpu)
{
    std::string state = csprintf(
        "\"state\":{\"cycle\":%llu",
        static_cast<unsigned long long>(gpu.cycle()));

    // DC-L1 node queue depths (Q1..Q4): the first thing to look at
    // for a deadlock or backpressure bug.
    if (!gpu.nodes().empty()) {
        state += ",\"nodes\":[";
        for (std::size_t i = 0; i < gpu.nodes().size(); ++i) {
            const auto &node = *gpu.nodes()[i];
            state += csprintf(
                "%s{\"q1\":%zu,\"q2\":%zu,\"q3\":%zu,\"q4\":%zu}",
                i == 0 ? "" : ",", node.q1Size(), node.q2Size(),
                node.q3Size(), node.q4Size());
        }
        state += "]";
    }

    state += ",\"dram\":[";
    for (std::size_t i = 0; i < gpu.channels().size(); ++i) {
        const auto &ch = *gpu.channels()[i];
        state += csprintf("%s{\"queued\":%zu,\"in_service\":%zu}",
                          i == 0 ? "" : ",", ch.queueSize(),
                          ch.inServiceSize());
    }
    state += "]}";

    // Request-ledger tail (DCL1_CHECK builds): the last lifecycle
    // events before death, straight from the auditing machinery.
    if (check::checksCompiledIn && check::ledger().enabled()) {
        state += csprintf(",\"ledger\":{\"live\":%zu,\"registered\":"
                          "%llu,\"retired\":%llu,\"recent\":%s}",
                          check::ledger().liveCount(),
                          static_cast<unsigned long long>(
                              check::ledger().registered()),
                          static_cast<unsigned long long>(
                              check::ledger().retired()),
                          check::ledger().recentEventsJson().c_str());
    }
    return state;
}

std::string
crashRecordName(std::size_t index, const std::string &label)
{
    std::string safe;
    for (const char c : label)
        safe += (std::isalnum(static_cast<unsigned char>(c)) ||
                 c == '-' || c == '+' || c == '.')
                    ? c
                    : '_';
    return csprintf("job%03zu-%s.json", index, safe.c_str());
}

void
writeCrashRecord(const std::string &dir, const JobResult &result,
                 const std::string &context)
{
    try {
        ensureDirectory(dir);
        AtomicFileWriter out(dir + "/" +
                             crashRecordName(result.index, result.label));
        out.stream() << "{"
                     << csprintf(
                            "\"job\":%zu,\"label\":\"%s\",\"kind\":"
                            "\"%s\",\"attempts\":%u,\"quarantined\":%s,"
                            "\"error\":\"%s\"",
                            result.index,
                            jsonEscape(result.label).c_str(),
                            failureKindName(result.kind), result.attempts,
                            result.quarantined ? "true" : "false",
                            jsonEscape(result.error).c_str());
        if (!context.empty())
            out.stream() << "," << context;
        out.stream() << "}\n";
        out.commit();
    } catch (const std::exception &e) {
        // Forensics best-effort: never let a crash-record failure mask
        // (or upgrade) the original job failure.
        warn("crash record for job %zu not written: %s", result.index,
             e.what());
    }
}

CrashConfig
loadCrashRecord(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open crash record '%s'", path.c_str());
    std::string text;
    for (std::string line; std::getline(in, line);) {
        text += line;
        text += '\n';
    }

    CrashConfig cfg;
    const bool has_app = jsonFieldString(text, "app", cfg.app);
    const bool has_trace = jsonFieldString(text, "trace", cfg.trace);
    if (!jsonFieldString(text, "design", cfg.design) ||
        (!has_app && !has_trace))
        fatal("crash record '%s' carries no replayable config "
              "(jobs must cooperate via JobContext::setCrashContext)",
              path.c_str());
    auto u64 = [&](const char *field, std::uint64_t fallback) {
        const std::string raw = jsonFieldRaw(text, field);
        return raw.empty() ? fallback
                           : std::strtoull(raw.c_str(), nullptr, 10);
    };
    cfg.cores = static_cast<std::uint32_t>(u64("cores", cfg.cores));
    cfg.slices = static_cast<std::uint32_t>(u64("slices", cfg.slices));
    cfg.channels =
        static_cast<std::uint32_t>(u64("channels", cfg.channels));
    cfg.seed = u64("seed", cfg.seed);
    cfg.measure = u64("measure", cfg.measure);
    cfg.warmup = u64("warmup", cfg.warmup);
    jsonFieldString(text, "label", cfg.label);
    jsonFieldString(text, "error", cfg.error);
    return cfg;
}

} // namespace dcl1::exec
