/**
 * @file
 * Structured crash diagnostics for failed jobs.
 *
 * A failed cell in an hours-long batch must be reproducible from its
 * record alone: the engine writes "<crashDir>/jobNNN-<label>.json"
 * containing the full job configuration, the failure classification
 * and error text, and — when the job cooperated via
 * JobContext::setCrashContext — the machine state at the moment of
 * death (current cycle, per-component queue depths, and the last
 * request-ledger events in DCL1_CHECK builds).
 *
 * `dcl1run --replay-crash=<file>` re-runs exactly the recorded
 * configuration, turning a forensic record back into a live,
 * debuggable simulation.
 */

#ifndef DCL1_EXEC_CRASH_RECORD_HH
#define DCL1_EXEC_CRASH_RECORD_HH

#include <string>

#include "common/types.hh"
#include "exec/job.hh"

namespace dcl1::core
{
class GpuSystem;
} // namespace dcl1::core

namespace dcl1::exec
{

/**
 * JSON fragment (no surrounding braces) describing the live machine:
 * `"state":{cycle, per-node queue depths, DRAM queues},"ledger":{...}`.
 * Call from a catch block while the GpuSystem is still alive.
 */
std::string crashSnapshotJson(core::GpuSystem &gpu);

/**
 * Write the crash record for @p result into @p dir (created when
 * missing). @p context is the job's crash-context fragment (config +
 * optional state). Never throws: forensics must not mask the original
 * failure.
 */
void writeCrashRecord(const std::string &dir, const JobResult &result,
                      const std::string &context);

/** File name the record for job @p index / @p label lands under. */
std::string crashRecordName(std::size_t index, const std::string &label);

/** Everything --replay-crash needs to rebuild the recorded cell. */
struct CrashConfig
{
    std::string design = "Baseline";
    std::string app;   ///< catalog app (empty when a trace was run)
    std::string trace; ///< trace file path (trace-mode records)
    std::uint32_t cores = 80;
    std::uint32_t slices = 32;
    std::uint32_t channels = 16;
    std::uint64_t seed = 1;
    Cycle measure = 30000;
    Cycle warmup = 40000;
    std::string label; ///< original job label (informational)
    std::string error; ///< recorded failure text (informational)
};

/** Load a crash record; fatal() when unreadable or config-less. */
CrashConfig loadCrashRecord(const std::string &path);

} // namespace dcl1::exec

#endif // DCL1_EXEC_CRASH_RECORD_HH
