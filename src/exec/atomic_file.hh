/**
 * @file
 * Crash-safe result-file writers.
 *
 * Two failure modes corrupt batch output when a run is killed midway:
 * a truncate-then-write file that dies half-written but *looks*
 * complete, and an interleaved/torn append that loses the tail of a
 * log. The two helpers here are the only sanctioned ways to write
 * result files (lint rule R7 `no-rawwrite` forbids raw std::ofstream /
 * fopen in tools/, bench/ and src/exec/ outside this translation
 * unit):
 *
 *  - AtomicFileWriter buffers everything in memory and publishes with
 *    write-tmp + flush + fsync + rename, so the destination either
 *    keeps its old content or atomically gains the complete new one.
 *  - AppendLog is a write-ahead-log appender: append mode, exactly one
 *    write() per record, flushed per record, so a kill can lose at
 *    most the record being written — never an earlier one, and a
 *    reader never sees an interleaved line.
 */

#ifndef DCL1_EXEC_ATOMIC_FILE_HH
#define DCL1_EXEC_ATOMIC_FILE_HH

#include <cstdio>
#include <sstream>
#include <string>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace dcl1::exec
{

/** Whole-file atomic publish: stream into a buffer, then commit(). */
class AtomicFileWriter
{
  public:
    explicit AtomicFileWriter(std::string path);
    ~AtomicFileWriter(); ///< discards the buffer if never committed

    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** Buffer to write the file content into. */
    std::ostream &stream() { return buf_; }

    /**
     * Publish: write the buffer to "<path>.tmp.<pid>" (per-process,
     * so concurrent fleet workers rewriting the same file never touch
     * each other's temp), flush + fsync, then rename over the
     * destination. fatal() on any I/O error (a result file that
     * silently failed to land is worse than a crash).
     */
    void commit();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ostringstream buf_;
    bool committed_ = false;
};

/**
 * Line-atomic append log (see file comment). Opened lazily.
 *
 * Thread-safe: the handle and the warn-once latch are guarded by an
 * internal mutex, so one AppendLog may be shared by concurrent workers
 * (the jobs.jsonl WAL and the JSONL sink are) — each appendLine() call
 * lands as one whole record regardless of the calling thread.
 */
class AppendLog
{
  public:
    explicit AppendLog(std::string path);
    ~AppendLog();

    AppendLog(const AppendLog &) = delete;
    AppendLog &operator=(const AppendLog &) = delete;

    /**
     * Append @p line (a trailing newline is added) with one write and
     * an immediate flush. @return false (after warning once) when the
     * file cannot be opened or written.
     */
    bool appendLine(const std::string &line) DCL1_EXCLUDES(mutex_);

    const std::string &path() const { return path_; }

  private:
    Mutex mutex_;
    std::string path_;
    std::FILE *file_ DCL1_GUARDED_BY(mutex_) = nullptr;
    bool warned_ DCL1_GUARDED_BY(mutex_) = false;
};

/**
 * Create directory @p path (and missing parents) if absent; fatal()
 * when it cannot be created.
 */
void ensureDirectory(const std::string &path);

} // namespace dcl1::exec

#endif // DCL1_EXEC_ATOMIC_FILE_HH
