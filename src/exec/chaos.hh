/**
 * @file
 * Deterministic fault injection for crash-tolerance testing.
 *
 * The fleet coordination protocol (leases, heartbeats, reclamation)
 * only earns trust if worker death is *provoked on purpose* at
 * reproducible points and the run still converges on byte-identical
 * results. The chaos harness arms two failure modes:
 *
 *  - kill-after=N: while executing its N-th freshly claimed cell (1-
 *    based), once the cell's simulation passes kill-at-cycle simulated
 *    cycles, the process dies via _Exit — no destructors, no manifest
 *    finalize, no lease release: exactly what SIGKILL mid-cell leaves
 *    behind. The seed point (cell ordinal, simulated cycle) is
 *    deterministic for a --jobs=1 worker.
 *
 *  - drop-heartbeat: the heartbeat thread silently stops renewing
 *    while the worker keeps simulating — the "alive but stalled"
 *    zombie whose leases age out, get reclaimed, and whose results
 *    must then be dropped unpublished.
 *
 * Armed via the DCL1_CHAOS environment variable (comma-separated
 * `kill-after=N`, `kill-at-cycle=N`, `drop-heartbeat`) or the
 * equivalent dcl1sweep --chaos-* flags. Off by default; the hooks
 * compile to a relaxed atomic load on the cell-start path and nothing
 * on the per-cycle path until armed.
 */

#ifndef DCL1_EXEC_CHAOS_HH
#define DCL1_EXEC_CHAOS_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace dcl1::exec
{

/** Armed failure modes (see file comment). */
struct ChaosConfig
{
    /** Die during the N-th freshly executed cell; 0 = disarmed. */
    std::size_t killAfterCells = 0;

    /** Simulated cycle within the victim cell at which to die. */
    Cycle killAtCycle = 2048;

    /** Stop renewing leases while continuing to simulate. */
    bool dropHeartbeat = false;

    bool any() const { return killAfterCells > 0 || dropHeartbeat; }

    /** Parse DCL1_CHAOS (strict: unknown tokens are fatal). */
    static ChaosConfig fromEnv();

    /** Parse a DCL1_CHAOS-style spec string (strict). */
    static ChaosConfig parse(const std::string &spec);
};

/** Arm (or disarm, with a default config) the process-wide harness. */
void setChaosConfig(const ChaosConfig &config);

/** The armed process-wide configuration. */
const ChaosConfig &chaosConfig();

/** A fresh (non-resumed) cell execution just started. */
void chaosCellStarted();

/** Per-cell run-loop heartbeat hook: dies at the seeded point. */
void chaosCycleHeartbeat(Cycle cell_cycle);

/** Should the heartbeat thread skip renewals? */
bool chaosDropHeartbeat();

/**
 * Exit status of a chaos kill: 128+9, what a shell reports for a
 * SIGKILLed process, so launchers treat both deaths identically.
 */
inline constexpr int kChaosKillStatus = 137;

} // namespace dcl1::exec

#endif // DCL1_EXEC_CHAOS_HH
