/**
 * @file
 * Durable run directories: manifest + per-job write-ahead log.
 *
 * A durable batch writes a *run directory*:
 *
 *     <dir>/manifest.json   identity + status (atomic rewrite)
 *     <dir>/jobs.jsonl      one record per finished job (WAL append)
 *     <dir>/crash/          crash records of failed jobs (.json)
 *
 * The manifest pins the run's identity: a configuration description
 * (tool, grid, cycle budgets, platform, seed) plus the build
 * signature (WAL schema, DCL1_CHECK). Reopening a directory whose
 * identity does not match the current invocation is refused — a
 * resumed half-batch silently mixed with different settings would
 * produce a CSV that *looks* complete and is wrong.
 *
 * Resume matching: a job is skipped iff a WAL record exists for its
 * JobSpec::key — (design, app, measure/warmup cycles, platform
 * summary, seed, key suffix) — and that record is either `ok` or
 * `quarantined`. Quarantined failures are deterministic, so re-running
 * them cannot help; retryable failures (timeout, worker exception) are
 * *not* recorded and therefore re-run on resume. Metrics round-trip
 * through "%.17g", so a resumed batch reproduces a clean run's CSV
 * byte for byte.
 */

#ifndef DCL1_EXEC_RUN_MANIFEST_HH
#define DCL1_EXEC_RUN_MANIFEST_HH

#include <map>
#include <memory>
#include <string>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "exec/atomic_file.hh"
#include "exec/job.hh"

namespace dcl1::exec
{

/// @name Minimal JSON field access (for the flat records we write)
/// @{

/** Inverse of jsonEscape (result_sink.hh). */
std::string jsonUnescape(const std::string &s);

/**
 * Find `"field":"<string>"` in @p text; true and the unescaped value
 * when present. Escaped string values cannot collide with the quoted
 * search pattern, so first occurrence is unambiguous for our records.
 */
bool jsonFieldString(const std::string &text, const char *field,
                     std::string &out);

/**
 * Raw (unquoted) value of `"field":` — number, bool, or object — as
 * the substring up to the next delimiter; empty when absent.
 */
std::string jsonFieldRaw(const std::string &text, const char *field);

/// @}

/** Serialize metrics as a JSON object; doubles use %.17g (exact). */
std::string runMetricsJson(const core::RunMetrics &rm);

/** Parse runMetricsJson output; false on any missing field. */
bool parseRunMetricsJson(const std::string &json, core::RunMetrics &rm);

/** Identity of the producing build (WAL schema + check mode). */
std::string buildSignature();

/** One completed-job WAL record. */
struct JobRecord
{
    std::string key;
    std::string label;
    bool ok = false;
    bool quarantined = false;
    unsigned attempts = 1;
    FailureKind kind = FailureKind::None;
    std::string error;
    core::RunMetrics metrics; ///< valid only when ok
    std::string timeline;     ///< timeline JSONL path ("" = none)

    /** One JSONL line. */
    std::string toJsonLine() const;

    /** Parse a toJsonLine() line; false on malformed input. */
    static bool fromJsonLine(const std::string &line, JobRecord &out);
};

/**
 * See file comment.
 *
 * Thread-safe: completed records and the WAL handle are guarded by an
 * internal mutex, so workers append concurrently while the engine
 * resolves resume matches — the JobRunner needs no lock of its own
 * around manifest calls.
 */
class RunManifest
{
  public:
    /**
     * Open @p dir as a durable run for @p config (a human-readable
     * configuration description). Creates the directory + manifest on
     * first use; on reopen, fatal()s unless the stored config and
     * build signature match, then loads every completed record.
     */
    static std::unique_ptr<RunManifest>
    openOrCreate(const std::string &dir, const std::string &config);

    /**
     * Completed (ok or quarantined) record for @p key, else null.
     * std::map nodes are stable, so the pointer survives later
     * append()s; records are resolved before workers start, and a key
     * is re-appended only with identical content, so the pointee never
     * changes under a reader.
     */
    const JobRecord *find(const std::string &key) const
        DCL1_EXCLUDES(mutex_);

    /** Record a finished job (WAL append; crash-safe per record). */
    void append(const JobRecord &record) DCL1_EXCLUDES(mutex_);

    /**
     * Re-read the WAL, absorbing records other worker processes
     * appended since open (O_APPEND writes land whole, so concurrent
     * appenders never tear a line). Fleet workers call this between
     * claim rounds; a key this process already holds is only ever
     * re-read with identical content (results are deterministic), so
     * find() pointers stay valid. Returns the records newly absorbed.
     */
    std::size_t refresh() DCL1_EXCLUDES(mutex_);

    /**
     * Attach the fleet coordinator summary — a complete JSON object
     * (e.g. {"claims":12,...}) — embedded as the "coordinator" field
     * of every later manifest rewrite. Empty = no field (the
     * single-process layout is unchanged).
     */
    void setCoordinatorSummary(std::string json_object)
        DCL1_EXCLUDES(mutex_);

    /** Current coordinator summary (set here, or loaded from the
     *  manifest a previous worker finalized); "" = none. */
    std::string
    coordinatorSummary() const DCL1_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return coordinatorJson_;
    }

    /** Rewrite the manifest with a final status ("complete",
     *  "interrupted"); atomic, so a crash keeps the old manifest. */
    void finalize(const std::string &status) DCL1_EXCLUDES(mutex_);

    std::size_t
    completedCount() const DCL1_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return records_.size();
    }

    const std::string &dir() const { return dir_; }
    std::string crashDir() const { return dir_ + "/crash"; }

    /** Use openOrCreate(); public only for std::make_unique. */
    RunManifest(std::string dir, std::string config);

  private:
    void writeManifestFile(const std::string &status)
        DCL1_REQUIRES(mutex_);
    void loadRecords() DCL1_REQUIRES(mutex_);

    std::string dir_;
    std::string config_;
    mutable Mutex mutex_;
    AppendLog wal_; ///< internally locked; ordered after mutex_
    std::map<std::string, JobRecord> records_ DCL1_GUARDED_BY(mutex_);
    std::string coordinatorJson_ DCL1_GUARDED_BY(mutex_);
};

} // namespace dcl1::exec

#endif // DCL1_EXEC_RUN_MANIFEST_HH
