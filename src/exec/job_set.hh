/**
 * @file
 * Declarative job sets over (platform, design, workload, options)
 * grids, with shared-cell memoization.
 *
 * addCell() dedupes: adding the same cell twice returns the first
 * job's index instead of scheduling a second simulation. This is what
 * lets a sweep list Baseline both as a speedup denominator and as an
 * output row while simulating it exactly once per app.
 *
 * Cells are keyed by (design name, app name, cycle budgets, platform
 * summary, seed). Callers that hand-mutate a DesignConfig or
 * WorkloadParams beyond what its name reflects must pass a
 * distinguishing @p key_suffix.
 */

#ifndef DCL1_EXEC_JOB_SET_HH
#define DCL1_EXEC_JOB_SET_HH

#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "exec/job.hh"

namespace dcl1::exec
{

/** One grid point: everything needed to run a simulation. */
struct GridCell
{
    core::SystemConfig sys;
    core::DesignConfig design;
    workload::WorkloadParams app;
    core::ExperimentOptions opts;

    /// @name Per-cell telemetry (set by JobSet::setTimelineDir)
    /// @{
    std::string timelinePath;   ///< timeline JSONL ("" = no timeline)
    Cycle timelineInterval = 0; ///< 0 = timelineIntervalFromEnv()
    /// @}
};

/**
 * Run one grid cell: semantically core::runOnce, plus the cooperative
 * cycle-budget watchdog wired into the GpuSystem run-loop heartbeat.
 */
core::RunMetrics runCell(const GridCell &cell, JobContext &ctx);

/** See file comment. */
class JobSet
{
  public:
    /**
     * Add one simulation cell; returns its job index. A cell equal to
     * a previously added one (same memo key) is NOT scheduled again —
     * the existing index is returned.
     */
    std::size_t addCell(const core::SystemConfig &sys,
                        const core::DesignConfig &design,
                        const workload::WorkloadParams &app,
                        const core::ExperimentOptions &opts,
                        const std::string &key_suffix = "");

    /** Add an arbitrary job (no memoization). Returns its index. */
    std::size_t add(std::string label, JobFn fn);

    /**
     * Emit a per-cell cycle-interval timeline for every cell added
     * *after* this call: "<dir>/job<index>-<label>.jsonl", written
     * through the crash-safe AppendLog. @p interval 0 defers to
     * DCL1_TIMELINE_INTERVAL.
     */
    void setTimelineDir(std::string dir, Cycle interval = 0);

    std::size_t size() const { return specs_.size(); }
    const std::string &label(std::size_t i) const
    {
        return specs_[i].label;
    }
    const std::vector<JobSpec> &specs() const { return specs_; }

    /// @name Memoization accounting (addCell calls vs unique jobs)
    /// @{
    std::size_t cellsRequested() const { return cellsRequested_; }
    std::size_t cellsDeduped() const
    {
        return cellsRequested_ - cellsScheduled_;
    }
    /// @}

  private:
    std::vector<JobSpec> specs_;
    std::map<std::string, std::size_t> keyToIndex_;
    std::size_t cellsRequested_ = 0;
    std::size_t cellsScheduled_ = 0;
    std::string timelineDir_;
    Cycle timelineInterval_ = 0;
};

} // namespace dcl1::exec

#endif // DCL1_EXEC_JOB_SET_HH
