/**
 * @file
 * Run observability: pluggable sinks fed by the JobRunner.
 *
 * Sinks observe job lifecycle events as they happen (completion
 * order!) and the end-of-run summary. The runner serializes all sink
 * calls under one mutex, so implementations need no locking of their
 * own; they must not block for long (they run inside worker threads).
 */

#ifndef DCL1_EXEC_RESULT_SINK_HH
#define DCL1_EXEC_RESULT_SINK_HH

#include <string>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "exec/atomic_file.hh"
#include "exec/job.hh"

namespace dcl1::exec
{

/** Aggregate batch statistics reported once at the end of a run. */
struct RunSummary
{
    std::size_t totalJobs = 0;
    std::size_t failedJobs = 0;
    /** Failed deterministically (panic/fatal); retries never help. */
    std::size_t quarantinedJobs = 0;
    /** Satisfied from the run manifest without simulating. */
    std::size_t resumedJobs = 0;
    /** Never started: the batch was interrupted first. */
    std::size_t skippedJobs = 0;
    /** Leased by another worker process; re-checked next round. */
    std::size_t deferredJobs = 0;
    /** Executed but dropped unpublished: the lease was reclaimed. */
    std::size_t lostJobs = 0;
    /** SIGINT (or injected interrupt): in-flight jobs were drained,
     *  the rest skipped; the batch is resumable. */
    bool interrupted = false;
    unsigned workers = 0;
    double wallMs = 0.0; ///< whole-batch host wall time
    double cpuMs = 0.0;  ///< sum of per-job wall times
    /** cpuMs / (wallMs * workers): 1.0 = perfectly busy pool. */
    double utilization = 0.0;
    /** Job indices sorted by descending wall time (at most five). */
    std::vector<std::size_t> slowest;
};

/** Lifecycle observer; default implementation ignores everything. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Batch is about to start. */
    virtual void onRunStart(std::size_t num_jobs, unsigned workers)
    {
        (void)num_jobs;
        (void)workers;
    }

    /** A worker picked up job @p index. */
    virtual void onJobStart(std::size_t index, const std::string &label,
                            unsigned worker)
    {
        (void)index;
        (void)label;
        (void)worker;
    }

    /** Job finished (ok or failed); called in completion order. */
    virtual void onJobDone(const JobResult &result) { (void)result; }

    /** Batch finished; @p results is ordered by job index. */
    virtual void onRunEnd(const RunSummary &summary,
                          const std::vector<JobResult> &results)
    {
        (void)summary;
        (void)results;
    }
};

/**
 * Human progress on stderr: a "[exec] 17/140 ok ..." line per finished
 * job plus an end-of-run summary with the slowest jobs and the pool
 * utilization.
 */
class ProgressSink : public ResultSink
{
  public:
    void onRunStart(std::size_t num_jobs, unsigned workers) override;
    void onJobDone(const JobResult &result) override;
    void onRunEnd(const RunSummary &summary,
                  const std::vector<JobResult> &results) override;

  private:
    std::size_t total_ = 0;
    std::size_t done_ = 0;
};

/**
 * Machine-readable per-job records: one JSON object per line, written
 * in completion order (each record carries its job index), plus a
 * final summary record. Records ride an AppendLog — append mode, one
 * write + flush per record — so a killed sweep leaves every finished
 * record intact and never a torn line, and successive runs extend the
 * log instead of truncating it.
 */
class JsonlSink : public ResultSink
{
  public:
    explicit JsonlSink(std::string path);

    void onJobDone(const JobResult &result) override;
    void onRunEnd(const RunSummary &summary,
                  const std::vector<JobResult> &results) override;

  private:
    AppendLog log_;
};

/**
 * The JobRunner's fan-out point: holds the registered sinks and
 * serializes every lifecycle callback under one mutex, which is the
 * "runner serializes all sink calls" guarantee the ResultSink contract
 * promises (implementations need no locking of their own). Worker
 * threads call the forwarding methods concurrently.
 */
class SinkFanout
{
  public:
    /** Register @p sink (not owned; null is ignored). */
    void add(ResultSink *sink) DCL1_EXCLUDES(mutex_);

    void runStart(std::size_t num_jobs, unsigned workers)
        DCL1_EXCLUDES(mutex_);
    void jobStart(std::size_t index, const std::string &label,
                  unsigned worker) DCL1_EXCLUDES(mutex_);
    void jobDone(const JobResult &result) DCL1_EXCLUDES(mutex_);
    void runEnd(const RunSummary &summary,
                const std::vector<JobResult> &results)
        DCL1_EXCLUDES(mutex_);

  private:
    Mutex mutex_;
    std::vector<ResultSink *> sinks_ DCL1_GUARDED_BY(mutex_);
};

/** Escape a string for embedding in a JSON double-quoted literal. */
std::string jsonEscape(const std::string &s);

} // namespace dcl1::exec

#endif // DCL1_EXEC_RESULT_SINK_HH
