#include "exec/determinism.hh"

#include <sstream>

namespace dcl1::exec
{

std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
statDigest(core::GpuSystem &gpu)
{
    std::ostringstream os;
    gpu.dumpStats(os);

    const core::RunMetrics rm = gpu.metrics();
    os << rm.cycles << ' ' << rm.instructions << ' ' << rm.ipc << ' '
       << rm.l1Accesses << ' ' << rm.l1Misses << ' ' << rm.l1MissRate
       << ' ' << rm.replicationRatio << ' ' << rm.avgReplicas << ' '
       << rm.avgReadLatency << ' ' << rm.noc1Flits << ' '
       << rm.noc2Flits << ' ' << rm.l2Accesses << ' ' << rm.l2Misses
       << ' ' << rm.dramReads << ' ' << rm.dramWrites;
    return fnv1a(os.str());
}

DeterminismResult
runTwiceAndCompare(const core::SystemConfig &sys,
                   const core::DesignConfig &design,
                   const workload::WorkloadParams &app,
                   Cycle measure_cycles, Cycle warmup_cycles)
{
    DeterminismResult result;
    {
        core::GpuSystem gpu(sys, design, app);
        gpu.run(measure_cycles, warmup_cycles);
        result.digestA = statDigest(gpu);
    }
    {
        core::GpuSystem gpu(sys, design, app);
        gpu.run(measure_cycles, warmup_cycles);
        result.digestB = statDigest(gpu);
    }
    result.ok = result.digestA == result.digestB;
    return result;
}

} // namespace dcl1::exec
