#include "exec/result_sink.hh"

#include "common/log.hh"

namespace dcl1::exec
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x",
                                static_cast<unsigned>(
                                    static_cast<unsigned char>(c)));
            else
                out += c;
        }
    }
    return out;
}

void
SinkFanout::add(ResultSink *sink)
{
    if (!sink)
        return;
    MutexLock lock(mutex_);
    sinks_.push_back(sink);
}

void
SinkFanout::runStart(std::size_t num_jobs, unsigned workers)
{
    MutexLock lock(mutex_);
    for (ResultSink *sink : sinks_)
        sink->onRunStart(num_jobs, workers);
}

void
SinkFanout::jobStart(std::size_t index, const std::string &label,
                     unsigned worker)
{
    MutexLock lock(mutex_);
    for (ResultSink *sink : sinks_)
        sink->onJobStart(index, label, worker);
}

void
SinkFanout::jobDone(const JobResult &result)
{
    MutexLock lock(mutex_);
    for (ResultSink *sink : sinks_)
        sink->onJobDone(result);
}

void
SinkFanout::runEnd(const RunSummary &summary,
                   const std::vector<JobResult> &results)
{
    MutexLock lock(mutex_);
    for (ResultSink *sink : sinks_)
        sink->onRunEnd(summary, results);
}

void
ProgressSink::onRunStart(std::size_t num_jobs, unsigned workers)
{
    total_ = num_jobs;
    done_ = 0;
    std::fprintf(stderr, "[exec] %zu job(s) on %u worker(s)\n", num_jobs,
                 workers);
}

void
ProgressSink::onJobDone(const JobResult &result)
{
    ++done_;
    if (result.deferred) {
        std::fprintf(stderr,
                     "[exec] %4zu/%zu dfer %-28s (leased elsewhere)\n",
                     done_, total_, result.label.c_str());
    } else if (result.lost) {
        std::fprintf(stderr,
                     "[exec] %4zu/%zu lost %-28s %9.1f ms (lease "
                     "reclaimed; result dropped)\n",
                     done_, total_, result.label.c_str(), result.wallMs);
    } else if (result.resumed) {
        std::fprintf(stderr, "[exec] %4zu/%zu skip %-28s (resumed%s)\n",
                     done_, total_, result.label.c_str(),
                     result.ok ? "" : ", quarantined");
    } else if (result.ok) {
        std::fprintf(stderr, "[exec] %4zu/%zu ok   %-28s %9.1f ms (w%u)%s\n",
                     done_, total_, result.label.c_str(), result.wallMs,
                     result.worker,
                     result.attempts > 1 ? " [retried]" : "");
    } else {
        std::fprintf(stderr,
                     "[exec] %4zu/%zu %s %-28s %9.1f ms (w%u, %u "
                     "attempt(s)): %s\n",
                     done_, total_,
                     result.quarantined ? "QUAR" : "FAIL",
                     result.label.c_str(), result.wallMs, result.worker,
                     result.attempts, result.error.c_str());
    }
}

void
ProgressSink::onRunEnd(const RunSummary &summary,
                       const std::vector<JobResult> &results)
{
    std::fprintf(stderr,
                 "[exec] done: %zu job(s), %zu failed (%zu quarantined), "
                 "%zu resumed, %.1f ms wall, "
                 "%.1f ms cpu, %.0f%% pool utilization (%u worker(s))\n",
                 summary.totalJobs, summary.failedJobs,
                 summary.quarantinedJobs, summary.resumedJobs,
                 summary.wallMs, summary.cpuMs,
                 100.0 * summary.utilization, summary.workers);
    if (summary.interrupted)
        std::fprintf(stderr,
                     "[exec] INTERRUPTED: %zu job(s) never started; "
                     "in-flight jobs were drained\n",
                     summary.skippedJobs);
    if (summary.deferredJobs > 0 || summary.lostJobs > 0)
        std::fprintf(stderr,
                     "[exec] fleet: %zu cell(s) deferred to other "
                     "workers, %zu result(s) dropped to reclaimed "
                     "leases\n",
                     summary.deferredJobs, summary.lostJobs);
    if (!summary.slowest.empty()) {
        std::fprintf(stderr, "[exec] slowest:\n");
        for (const std::size_t idx : summary.slowest)
            std::fprintf(stderr, "[exec]   %9.1f ms  %s\n",
                         results[idx].wallMs, results[idx].label.c_str());
    }
    // Surface where each job's timeline landed (including jobs that
    // failed or were resumed), so partial timelines are findable
    // without grepping jobs.jsonl.
    std::size_t timelines = 0;
    for (const JobResult &r : results)
        if (!r.timelinePath.empty())
            ++timelines;
    if (timelines > 0) {
        std::fprintf(stderr, "[exec] timelines (%zu):\n", timelines);
        for (const JobResult &r : results)
            if (!r.timelinePath.empty())
                std::fprintf(stderr, "[exec]   %-28s %s%s\n",
                             r.label.c_str(), r.timelinePath.c_str(),
                             r.ok ? "" : " [partial]");
    }
    // Aggregate host-phase attribution over the profiled jobs: the
    // at-a-glance answer to "where did this sweep's wall time go?"
    // (per-job trees live in jobs.jsonl).
    std::uint64_t self_ns[prof::kPhaseCount] = {};
    std::uint64_t wall_ns = 0;
    std::size_t profiled = 0;
    for (const JobResult &r : results) {
        if (!r.prof.enabled)
            continue;
        ++profiled;
        wall_ns += r.prof.wallNs;
        for (const prof::ReportNode &n : r.prof.nodes)
            self_ns[static_cast<std::size_t>(n.phase)] += n.selfNs;
    }
    if (profiled > 0 && wall_ns > 0) {
        std::fprintf(stderr,
                     "[exec] host phases (%zu profiled job(s), "
                     "%% of %.1f ms job wall time):\n",
                     profiled, static_cast<double>(wall_ns) / 1e6);
        for (std::size_t i = 0; i < prof::kPhaseCount; ++i)
            if (self_ns[i] > 0)
                std::fprintf(
                    stderr, "[exec]   %-10s %6.1f%%\n",
                    prof::phaseName(static_cast<prof::Phase>(i)),
                    100.0 * static_cast<double>(self_ns[i]) /
                        static_cast<double>(wall_ns));
    }
}

JsonlSink::JsonlSink(std::string path) : log_(std::move(path))
{
}

void
JsonlSink::onJobDone(const JobResult &result)
{
    if (result.skipped || result.deferred)
        return;
    const core::RunMetrics &m = result.metrics;
    // Host phase profile rides along as one nested object so fleet
    // tooling can attribute wall time per cell without new files.
    const std::string prof_field =
        result.prof.enabled ? "\"prof\":" + result.prof.json() + ","
                            : std::string();
    log_.appendLine(csprintf(
        "{\"job\":%zu,\"label\":\"%s\",\"ok\":%s,\"resumed\":%s,"
        "\"quarantined\":%s,\"kind\":\"%s\",\"attempts\":%u,"
        "\"worker\":%u,%s%s"
        "\"wall_ms\":%.3f,\"cycles\":%llu,\"instructions\":%llu,"
        "\"ipc\":%.6f,\"error\":\"%s\",\"timeline\":\"%s\"}",
        result.index, jsonEscape(result.label).c_str(),
        result.ok ? "true" : "false", result.resumed ? "true" : "false",
        result.quarantined ? "true" : "false",
        failureKindName(result.kind), result.attempts, result.worker,
        result.lost ? "\"lost\":true," : "", prof_field.c_str(),
        result.wallMs, static_cast<unsigned long long>(m.cycles),
        static_cast<unsigned long long>(m.instructions), m.ipc,
        jsonEscape(result.error).c_str(),
        jsonEscape(result.timelinePath).c_str()));
}

void
JsonlSink::onRunEnd(const RunSummary &summary,
                    const std::vector<JobResult> &results)
{
    (void)results;
    log_.appendLine(csprintf(
        "{\"summary\":true,\"jobs\":%zu,\"failed\":%zu,"
        "\"quarantined\":%zu,\"resumed\":%zu,\"skipped\":%zu,"
        "\"deferred\":%zu,\"lost\":%zu,\"interrupted\":%s,"
        "\"workers\":%u,\"wall_ms\":%.3f,\"cpu_ms\":%.3f,"
        "\"utilization\":%.4f}",
        summary.totalJobs, summary.failedJobs, summary.quarantinedJobs,
        summary.resumedJobs, summary.skippedJobs, summary.deferredJobs,
        summary.lostJobs,
        summary.interrupted ? "true" : "false", summary.workers,
        summary.wallMs, summary.cpuMs, summary.utilization));
}

} // namespace dcl1::exec
