#include "exec/result_sink.hh"

#include "common/log.hh"

namespace dcl1::exec
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x",
                                static_cast<unsigned>(
                                    static_cast<unsigned char>(c)));
            else
                out += c;
        }
    }
    return out;
}

void
ProgressSink::onRunStart(std::size_t num_jobs, unsigned workers)
{
    total_ = num_jobs;
    done_ = 0;
    std::fprintf(stderr, "[exec] %zu job(s) on %u worker(s)\n", num_jobs,
                 workers);
}

void
ProgressSink::onJobDone(const JobResult &result)
{
    ++done_;
    if (result.ok) {
        std::fprintf(stderr, "[exec] %4zu/%zu ok   %-28s %9.1f ms (w%u)\n",
                     done_, total_, result.label.c_str(), result.wallMs,
                     result.worker);
    } else {
        std::fprintf(stderr,
                     "[exec] %4zu/%zu FAIL %-28s %9.1f ms (w%u): %s\n",
                     done_, total_, result.label.c_str(), result.wallMs,
                     result.worker, result.error.c_str());
    }
}

void
ProgressSink::onRunEnd(const RunSummary &summary,
                       const std::vector<JobResult> &results)
{
    std::fprintf(stderr,
                 "[exec] done: %zu job(s), %zu failed, %.1f ms wall, "
                 "%.1f ms cpu, %.0f%% pool utilization (%u worker(s))\n",
                 summary.totalJobs, summary.failedJobs, summary.wallMs,
                 summary.cpuMs, 100.0 * summary.utilization,
                 summary.workers);
    if (!summary.slowest.empty()) {
        std::fprintf(stderr, "[exec] slowest:\n");
        for (const std::size_t idx : summary.slowest)
            std::fprintf(stderr, "[exec]   %9.1f ms  %s\n",
                         results[idx].wallMs, results[idx].label.c_str());
    }
}

JsonlSink::JsonlSink(std::string path) : path_(std::move(path))
{
}

JsonlSink::~JsonlSink()
{
    if (file_)
        std::fclose(file_);
}

void
JsonlSink::onJobDone(const JobResult &result)
{
    if (!file_) {
        file_ = std::fopen(path_.c_str(), "w");
        if (!file_) {
            warn("JsonlSink: cannot open '%s'; job records dropped",
                 path_.c_str());
            return;
        }
    }
    const core::RunMetrics &m = result.metrics;
    std::fprintf(
        file_,
        "{\"job\":%zu,\"label\":\"%s\",\"ok\":%s,\"worker\":%u,"
        "\"wall_ms\":%.3f,\"cycles\":%llu,\"instructions\":%llu,"
        "\"ipc\":%.6f,\"error\":\"%s\"}\n",
        result.index, jsonEscape(result.label).c_str(),
        result.ok ? "true" : "false", result.worker, result.wallMs,
        static_cast<unsigned long long>(m.cycles),
        static_cast<unsigned long long>(m.instructions), m.ipc,
        jsonEscape(result.error).c_str());
    std::fflush(file_);
}

void
JsonlSink::onRunEnd(const RunSummary &summary,
                    const std::vector<JobResult> &results)
{
    (void)results;
    if (!file_)
        return;
    std::fprintf(file_,
                 "{\"summary\":true,\"jobs\":%zu,\"failed\":%zu,"
                 "\"workers\":%u,\"wall_ms\":%.3f,\"cpu_ms\":%.3f,"
                 "\"utilization\":%.4f}\n",
                 summary.totalJobs, summary.failedJobs, summary.workers,
                 summary.wallMs, summary.cpuMs, summary.utilization);
    std::fflush(file_);
}

} // namespace dcl1::exec
