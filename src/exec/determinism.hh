/**
 * @file
 * Same-seed determinism harness.
 *
 * The simulator must be a pure function of (platform, design, workload,
 * seed): any dependence on unordered-container iteration order, address
 * layout, or uninitialized state eventually poisons benchmark
 * trajectories with run-to-run noise that looks like a real effect.
 * This harness runs the same configuration twice and compares a digest
 * of the complete statistics dump plus the headline metrics.
 *
 * Lives in src/exec/ (not src/check/): it *drives* whole GpuSystems,
 * which puts it above the core layer in the architecture DAG, whereas
 * src/check is the low-level instrumentation the models call into
 * (lint rule R11 `layering` enforces both directions).
 */

#ifndef DCL1_EXEC_DETERMINISM_HH
#define DCL1_EXEC_DETERMINISM_HH

#include <cstdint>
#include <string>

#include "core/design.hh"
#include "core/gpu_system.hh"
#include "core/system_config.hh"
#include "workload/workload.hh"

namespace dcl1::exec
{

/** FNV-1a over a byte string. */
std::uint64_t fnv1a(const std::string &bytes);

/**
 * Digest of a simulated system's observable state: the full component
 * statistics dump and the extracted RunMetrics. Two runs of the same
 * configuration must produce identical digests.
 */
std::uint64_t statDigest(core::GpuSystem &gpu);

/** Result of a determinism check. */
struct DeterminismResult
{
    bool ok = false;
    std::uint64_t digestA = 0;
    std::uint64_t digestB = 0;
};

/**
 * Build and run (sys, design, app) twice with identical cycle budgets
 * and compare digests.
 */
DeterminismResult
runTwiceAndCompare(const core::SystemConfig &sys,
                   const core::DesignConfig &design,
                   const workload::WorkloadParams &app,
                   Cycle measure_cycles, Cycle warmup_cycles);

} // namespace dcl1::exec

#endif // DCL1_EXEC_DETERMINISM_HH
