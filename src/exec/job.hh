/**
 * @file
 * Job model of the parallel experiment-execution engine.
 *
 * A *job* is one independent simulation (or any other self-contained
 * unit of work) described by a JobSpec and producing a JobResult. Jobs
 * never share simulated state: every GpuSystem is built, ticked and
 * torn down on the worker thread that runs the job, which is what
 * makes the thread-local invariant-checking machinery (request ledger,
 * fetch-leak flag) line up with the threading model for free.
 *
 * Results land indexed by *job index*, not completion order, so a
 * parallel run is observationally identical to a serial one for any
 * consumer that reads results after run() returns.
 *
 * Host-side wall-clock timing lives here deliberately: the execution
 * engine measures the *host*, never the simulated machine, so the
 * no-wallclock simulation lint does not apply (see the audited
 * `lint: wallclock-ok` annotations in job_runner.cc).
 */

#ifndef DCL1_EXEC_JOB_HH
#define DCL1_EXEC_JOB_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "common/types.hh"
#include "core/gpu_system.hh"
#include "prof/prof.hh"

namespace dcl1::exec
{

/** Thrown by JobContext::checkCycleBudget when a job overruns. */
class CycleBudgetExceeded : public std::runtime_error
{
  public:
    explicit CycleBudgetExceeded(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * Why a job failed; drives the retry-with-quarantine policy.
 *
 * Timeout (the cooperative cycle-budget watchdog fired) is the only
 * kind the policy considers possibly-spurious: the job is retried up
 * to ExecOptions::maxRetries times with an escalating budget.
 * WorkerException (any C++ exception the model did not classify, e.g.
 * bad_alloc under a loaded pool) is retried without escalation.
 * SimBug (panic) and ConfigError (fatal) are *deterministic* — the
 * simulator is a pure function of its configuration — so those jobs
 * are quarantined immediately and never burn a retry.
 */
enum class FailureKind : std::uint8_t
{
    None,            ///< job succeeded
    Timeout,         ///< cycle-budget watchdog fired (retryable)
    SimBug,          ///< panic(): internal invariant violated
    ConfigError,     ///< fatal(): impossible configuration
    WorkerException, ///< unclassified C++ exception on the worker
};

/** Human-readable FailureKind name (stable; used in crash records). */
const char *failureKindName(FailureKind kind);

/** Engine-wide knobs. */
struct ExecOptions
{
    /** Worker count; 0 = one per hardware thread. */
    unsigned jobs = 0;

    /**
     * Per-job simulated-cycle watchdog budget; 0 = unlimited. A grid
     * job whose warmup+measure interval exceeds the budget is failed
     * (mid-run, via the GpuSystem heartbeat) instead of hogging a
     * worker forever.
     */
    Cycle cycleBudget = 0;

    /**
     * Retries after the first failed attempt for *retryable* failures
     * (Timeout, WorkerException). Timeouts escalate: attempt k runs
     * with cycleBudget * budgetEscalation^k. Quarantined failures
     * (SimBug/ConfigError) never retry.
     */
    unsigned maxRetries = 2;

    /** Budget multiplier per timeout retry (>= 1). */
    double budgetEscalation = 2.0;

    /**
     * When non-empty, every job that ends failed writes a structured
     * crash record to "<crashDir>/<job>.json" (config, last cycle,
     * queue depths, recent ledger events) — replayable with
     * `dcl1run --replay-crash`. A durable run directory supplies its
     * own "crash/" subdirectory when this is unset.
     */
    std::string crashDir;

    /** Emit per-job progress lines to stderr. */
    bool progress = true;

    /** When non-empty, append one JSON record per job to this file. */
    std::string jsonlPath;

    /**
     * Install a host phase profiler (src/prof/) on each job's worker
     * thread and publish its Report through JobResult::prof and the
     * jobs.jsonl "prof" field. Purely observational: simulated output
     * is byte-identical either way.
     */
    bool profile = false;

    /** Worker count a value of jobs==0 resolves to. */
    static unsigned hardwareConcurrency();

    /**
     * Environment defaults: DCL1_JOBS (worker count), DCL1_JOB_BUDGET
     * (per-job cycle budget), DCL1_RETRIES (retry count),
     * DCL1_CRASH_DIR (crash-record directory), DCL1_JOBS_LOG (JSONL
     * path), DCL1_PROF (any value = host phase profiling on). All
     * strictly parsed.
     */
    static ExecOptions fromEnv();
};

/** Per-job view of the engine handed to the job function. */
class JobContext
{
  public:
    JobContext(std::size_t index, unsigned worker, Cycle cycle_budget)
        : index_(index), worker_(worker), cycleBudget_(cycle_budget)
    {
    }

    /** Index of this job in the submitted JobSet/spec vector. */
    std::size_t index() const { return index_; }

    /** Worker thread (0-based) executing the job. */
    unsigned worker() const { return worker_; }

    /** Configured per-job cycle budget (0 = unlimited). */
    Cycle cycleBudget() const { return cycleBudget_; }

    /**
     * Cooperative watchdog check: throw CycleBudgetExceeded when
     * @p simulated_cycles exceeds the configured budget. Grid jobs
     * call this from the GpuSystem run-loop heartbeat; custom jobs
     * with their own tick loops should call it periodically too.
     */
    void checkCycleBudget(Cycle simulated_cycles) const;

    /**
     * Attach crash-diagnostic context: a JSON *fragment* (one or more
     * `"field":value` members, no surrounding braces) describing the
     * job's configuration and — when set from a failure path — the
     * machine state at the moment of death. The engine embeds it in
     * the crash record it writes for a job that ends failed.
     */
    void setCrashContext(std::string json_fragment)
    {
        crashContext_ = std::move(json_fragment);
    }

    const std::string &crashContext() const { return crashContext_; }

    /**
     * Record where this job wrote its cycle-interval timeline (empty =
     * no timeline). Propagated into the JobResult, the per-job JSONL
     * record and the durable WAL, so a resumed run can locate the
     * partial timeline of a job it is skipping.
     */
    void setTimelinePath(std::string path)
    {
        timelinePath_ = std::move(path);
    }

    const std::string &timelinePath() const { return timelinePath_; }

  private:
    std::size_t index_;
    unsigned worker_;
    Cycle cycleBudget_;
    std::string crashContext_;
    std::string timelinePath_;
};

/**
 * Multi-process cell coordination (see exec/lease.hh for the file-
 * based implementation). When attached to a JobRunner, every keyed
 * job is bracketed by tryAcquire (Busy = another worker owns the cell
 * right now; the job is *deferred*, not failed) and, after execution,
 * confirmPublish + release. confirmPublish returning false means the
 * claim was reclaimed while the job ran: the result is dropped
 * (JobResult::lost) instead of published, so two workers can never
 * both record the same cell.
 */
class CellCoordinator
{
  public:
    virtual ~CellCoordinator() = default;

    enum class Claim : std::uint8_t
    {
        Acquired, ///< this worker owns the cell; run it
        Busy,     ///< claimed elsewhere; defer, re-check next round
    };

    /** Claim @p key before executing its job. */
    virtual Claim tryAcquire(const std::string &key) = 0;

    /** Still own @p key? Checked immediately before publishing. */
    virtual bool confirmPublish(const std::string &key) = 0;

    /** Done with @p key (published or dropped); release the claim. */
    virtual void release(const std::string &key) = 0;
};

/** The work itself: runs on one worker thread, returns the metrics. */
using JobFn = std::function<core::RunMetrics(JobContext &)>;

/** One schedulable unit. */
struct JobSpec
{
    std::string label; ///< "design/app" style display name
    JobFn fn;
    /**
     * Durable identity: (design, app, opts, platform, seed) key set by
     * JobSet::addCell. A run manifest matches completed records by
     * this key on resume; empty = the job is never resumed/recorded.
     * Explicitly value-initialized so brace-initializing only
     * {label, fn} — the unkeyed-job idiom all over the tests — stays
     * clean under -Wmissing-field-initializers.
     */
    std::string key{};
};

/** Outcome of one job; results are ordered by index, never by finish. */
struct JobResult
{
    std::size_t index = 0;
    std::string label;
    std::string key;          ///< durable identity (see JobSpec::key)
    bool ok = false;
    std::string error;        ///< captured panic/fatal/exception text
    FailureKind kind = FailureKind::None; ///< failure classification
    unsigned attempts = 0;    ///< executed attempts (0 = never ran)
    bool quarantined = false; ///< deterministic failure; never retried
    bool resumed = false;     ///< satisfied from a run manifest record
    bool skipped = false;     ///< batch interrupted before it started
    bool deferred = false;    ///< cell leased by another worker process
    /** Executed, but the lease was reclaimed mid-run: the result was
     *  dropped unpublished (the reclaimer's re-run owns the cell). */
    bool lost = false;
    core::RunMetrics metrics; ///< valid only when ok
    double wallMs = 0.0;      ///< host wall time of this job
    unsigned worker = 0;      ///< worker thread that executed it
    std::string timelinePath; ///< per-job timeline JSONL ("" = none)
    /** Host phase profile of the final attempt (enabled == false
     *  unless ExecOptions::profile was set). wallNs covers the whole
     *  job bracket, retries included. */
    prof::Report prof;
};

} // namespace dcl1::exec

#endif // DCL1_EXEC_JOB_HH
