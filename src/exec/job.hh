/**
 * @file
 * Job model of the parallel experiment-execution engine.
 *
 * A *job* is one independent simulation (or any other self-contained
 * unit of work) described by a JobSpec and producing a JobResult. Jobs
 * never share simulated state: every GpuSystem is built, ticked and
 * torn down on the worker thread that runs the job, which is what
 * makes the thread-local invariant-checking machinery (request ledger,
 * fetch-leak flag) line up with the threading model for free.
 *
 * Results land indexed by *job index*, not completion order, so a
 * parallel run is observationally identical to a serial one for any
 * consumer that reads results after run() returns.
 *
 * Host-side wall-clock timing lives here deliberately: the execution
 * engine measures the *host*, never the simulated machine, so the
 * no-wallclock simulation lint does not apply (see the audited
 * `lint: wallclock-ok` annotations in job_runner.cc).
 */

#ifndef DCL1_EXEC_JOB_HH
#define DCL1_EXEC_JOB_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "common/types.hh"
#include "core/gpu_system.hh"

namespace dcl1::exec
{

/** Thrown by JobContext::checkCycleBudget when a job overruns. */
class CycleBudgetExceeded : public std::runtime_error
{
  public:
    explicit CycleBudgetExceeded(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Engine-wide knobs. */
struct ExecOptions
{
    /** Worker count; 0 = one per hardware thread. */
    unsigned jobs = 0;

    /**
     * Per-job simulated-cycle watchdog budget; 0 = unlimited. A grid
     * job whose warmup+measure interval exceeds the budget is failed
     * (mid-run, via the GpuSystem heartbeat) instead of hogging a
     * worker forever.
     */
    Cycle cycleBudget = 0;

    /** Emit per-job progress lines to stderr. */
    bool progress = true;

    /** When non-empty, append one JSON record per job to this file. */
    std::string jsonlPath;

    /** Worker count a value of jobs==0 resolves to. */
    static unsigned hardwareConcurrency();

    /**
     * Environment defaults: DCL1_JOBS (worker count), DCL1_JOB_BUDGET
     * (per-job cycle budget), DCL1_JOBS_LOG (JSONL path). All strictly
     * parsed.
     */
    static ExecOptions fromEnv();
};

/** Per-job view of the engine handed to the job function. */
class JobContext
{
  public:
    JobContext(std::size_t index, unsigned worker, Cycle cycle_budget)
        : index_(index), worker_(worker), cycleBudget_(cycle_budget)
    {
    }

    /** Index of this job in the submitted JobSet/spec vector. */
    std::size_t index() const { return index_; }

    /** Worker thread (0-based) executing the job. */
    unsigned worker() const { return worker_; }

    /** Configured per-job cycle budget (0 = unlimited). */
    Cycle cycleBudget() const { return cycleBudget_; }

    /**
     * Cooperative watchdog check: throw CycleBudgetExceeded when
     * @p simulated_cycles exceeds the configured budget. Grid jobs
     * call this from the GpuSystem run-loop heartbeat; custom jobs
     * with their own tick loops should call it periodically too.
     */
    void checkCycleBudget(Cycle simulated_cycles) const;

  private:
    std::size_t index_;
    unsigned worker_;
    Cycle cycleBudget_;
};

/** The work itself: runs on one worker thread, returns the metrics. */
using JobFn = std::function<core::RunMetrics(JobContext &)>;

/** One schedulable unit. */
struct JobSpec
{
    std::string label; ///< "design/app" style display name
    JobFn fn;
};

/** Outcome of one job; results are ordered by index, never by finish. */
struct JobResult
{
    std::size_t index = 0;
    std::string label;
    bool ok = false;
    std::string error;        ///< captured panic/fatal/exception text
    core::RunMetrics metrics; ///< valid only when ok
    double wallMs = 0.0;      ///< host wall time of this job
    unsigned worker = 0;      ///< worker thread that executed it
};

} // namespace dcl1::exec

#endif // DCL1_EXEC_JOB_HH
