#include "exec/atomic_file.hh"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/log.hh"

namespace dcl1::exec
{

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path))
{
}

AtomicFileWriter::~AtomicFileWriter()
{
    // Uncommitted buffers are simply dropped: the destination file is
    // untouched, which is the whole point.
}

void
AtomicFileWriter::commit()
{
    if (committed_)
        panic("AtomicFileWriter: double commit of '%s'", path_.c_str());
    committed_ = true;

    // Per-process temp name: fleet workers rewrite the same manifest
    // concurrently, and a shared ".tmp" would let one process rename
    // another's half-written file (or fail on ENOENT after losing the
    // race). Each writes its own temp; rename(2) arbitrates.
    const std::string tmp =
        csprintf("%s.tmp.%ld", path_.c_str(),
                 static_cast<long>(::getpid()));
    // The one sanctioned raw write (see file comment in the header).
    std::FILE *f = std::fopen(tmp.c_str(), "w"); // lint: rawwrite-ok
    if (!f)
        fatal("cannot open '%s': %s", tmp.c_str(), std::strerror(errno));
    const std::string content = buf_.str();
    if (!content.empty() &&
        std::fwrite(content.data(), 1, content.size(), f) !=
            content.size()) {
        std::fclose(f);
        fatal("short write to '%s'", tmp.c_str());
    }
    if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
        std::fclose(f);
        fatal("cannot flush '%s': %s", tmp.c_str(),
              std::strerror(errno));
    }
    if (std::fclose(f) != 0)
        fatal("cannot close '%s': %s", tmp.c_str(),
              std::strerror(errno));
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        fatal("cannot rename '%s' -> '%s': %s", tmp.c_str(),
              path_.c_str(), std::strerror(errno));
}

AppendLog::AppendLog(std::string path) : path_(std::move(path))
{
}

AppendLog::~AppendLog()
{
    // No lock: destruction requires exclusive ownership by contract
    // (no other thread may still be appending), and the analysis does
    // not run on destructors anyway.
    if (file_)
        std::fclose(file_);
}

bool
AppendLog::appendLine(const std::string &line)
{
    MutexLock lock(mutex_);
    if (!file_) {
        if (warned_)
            return false;
        // Append mode: concurrent/successive runs extend the log, and
        // POSIX append semantics make each write land whole.
        file_ = std::fopen(path_.c_str(), "a"); // lint: rawwrite-ok
        if (!file_) {
            warned_ = true;
            warn("AppendLog: cannot open '%s' (%s); records dropped",
                 path_.c_str(), std::strerror(errno));
            return false;
        }
    }
    std::string record = line;
    record += '\n';
    // Exactly one write per record, flushed immediately: a crash can
    // lose only the record being written, never tear an earlier one.
    if (std::fwrite(record.data(), 1, record.size(), file_) !=
        record.size()) {
        if (!warned_) {
            warned_ = true;
            warn("AppendLog: short write to '%s'", path_.c_str());
        }
        return false;
    }
    std::fflush(file_);
    return true;
}

void
ensureDirectory(const std::string &path)
{
    if (path.empty())
        fatal("ensureDirectory: empty path");
    std::string partial;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial += path[i];
            continue;
        }
        if (!partial.empty() &&
            ::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
            fatal("cannot create directory '%s': %s", partial.c_str(),
                  std::strerror(errno));
        }
        if (i < path.size())
            partial += '/';
    }
}

} // namespace dcl1::exec
