/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for durable batch runs.
 *
 * A durable sweep must not die mid-record on Ctrl-C or a fleet
 * launcher's terminate: the handler only raises a flag; the JobRunner
 * stops dispatching new jobs, drains the ones already in flight,
 * finalizes the run manifest, and the tool exits with kExitResumable.
 * SIGTERM matters for fleet workers: orchestrators (dcl1fleet, CI
 * runners, kubelet-style supervisors) terminate with SIGTERM, and a
 * worker that drains cooperatively releases its leases and leaves a
 * resumable run directory instead of stale-lease debris. A second
 * signal (either one) restores the default disposition and re-raises,
 * so an impatient double Ctrl-C still force-kills.
 *
 * Tests (and the deterministic CI smoke) inject the same signal via
 * requestInterrupt() instead of delivering a real signal.
 */

#ifndef DCL1_EXEC_INTERRUPT_HH
#define DCL1_EXEC_INTERRUPT_HH

namespace dcl1::exec
{

/** Install the cooperative SIGINT+SIGTERM handler (idempotent). */
void installSignalHandlers();

/** Raise the interrupt flag (what the signal handler does). */
void requestInterrupt();

/** Has an interrupt been requested? Checked between jobs. */
bool interruptRequested();

/** Reset the flag (tests; a resumed batch starts clean). */
void clearInterrupt();

} // namespace dcl1::exec

#endif // DCL1_EXEC_INTERRUPT_HH
