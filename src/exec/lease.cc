#include "exec/lease.hh"

#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

#include "common/log.hh"
#include "exec/atomic_file.hh"
#include "exec/heartbeat.hh"
#include "exec/result_sink.hh"
#include "exec/run_manifest.hh"

namespace dcl1::exec
{

namespace
{

/**
 * Host wall-clock milliseconds (CLOCK_REALTIME), comparable with lease
 * file mtimes. Never observable by simulated behavior: the TTL only
 * decides *which worker* runs a cell, and every cell is a pure
 * function of its configuration.
 */
std::int64_t
nowMs()
{
    struct timespec ts = {};
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return std::int64_t(ts.tv_sec) * 1000 +
           std::int64_t(ts.tv_nsec) / 1000000;
}

/** mtime of @p path in ms since the epoch; -1 when stat fails. */
std::int64_t
mtimeMs(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return std::int64_t(st.st_mtim.tv_sec) * 1000 +
           std::int64_t(st.st_mtim.tv_nsec) / 1000000;
}

/** FNV-1a 64-bit: a stable cross-process key hash for file names. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** One lease record, serialized as a single JSON line. */
std::string
leaseJson(const std::string &key, const WorkerIdentity &who,
          std::uint64_t seq)
{
    return csprintf(
        "{\"key\":\"%s\",\"worker\":\"%s\",\"pid\":%ld,"
        "\"host\":\"%s\",\"seq\":%llu}\n",
        jsonEscape(key).c_str(), jsonEscape(who.id).c_str(), who.pid,
        jsonEscape(who.hostname).c_str(),
        static_cast<unsigned long long>(seq));
}

/**
 * Single-write POSIX file creation/replacement. `mode` O_EXCL is the
 * claim's atomic test-and-set; renewal writes a uniquely-named temp
 * file and renames it over the lease. Not AtomicFileWriter because a
 * claim must *fail* when the file exists (rename would smash it) and
 * a renewal racing a reclaimer must never fatal() the worker.
 */
bool
writeWhole(const std::string &path, const std::string &content,
           bool exclusive)
{
    const int flags =
        O_WRONLY | O_CREAT | (exclusive ? O_EXCL : O_TRUNC);
    const int fd = ::open(path.c_str(), flags, 0666);
    if (fd < 0)
        return false;
    const ssize_t wrote = ::write(fd, content.data(), content.size());
    const bool ok = wrote == static_cast<ssize_t>(content.size()) &&
                    ::fsync(fd) == 0;
    ::close(fd);
    if (!ok)
        ::unlink(path.c_str());
    return ok;
}

std::string
readWhole(const std::string &path)
{
    std::ifstream in(path);
    std::string text;
    for (std::string line; std::getline(in, line);) {
        text += line;
        text += '\n';
    }
    return text;
}

bool
pidAliveHere(long pid)
{
    if (pid <= 0)
        return false;
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

} // anonymous namespace

WorkerIdentity
WorkerIdentity::local(std::string id)
{
    WorkerIdentity who;
    who.id = std::move(id);
    who.pid = static_cast<long>(::getpid());
    char host[256] = {};
    if (::gethostname(host, sizeof(host) - 1) != 0)
        std::strcpy(host, "unknown-host");
    who.hostname = host;
    return who;
}

LeaseDir::LeaseDir(const std::string &run_dir, WorkerIdentity me,
                   std::int64_t ttl_ms)
    : dir_(run_dir + "/leases"), me_(std::move(me)), ttlMs_(ttl_ms)
{
    if (run_dir.empty())
        fatal("LeaseDir: empty run-directory path");
    if (ttlMs_ <= 0)
        fatal("LeaseDir: lease TTL must be positive (got %lld ms)",
              static_cast<long long>(ttlMs_));
    if (me_.id.empty())
        fatal("LeaseDir: empty worker id");
    ensureDirectory(dir_);
}

std::string
LeaseDir::leaseFileName(const std::string &key)
{
    // Keys carry '|', '/', '+'-style separators; the name keeps a
    // readable sanitized prefix and disambiguates with a stable hash.
    std::string safe;
    for (const char c : key) {
        if (safe.size() >= 40)
            break;
        safe += (std::isalnum(static_cast<unsigned char>(c)) ||
                 c == '-' || c == '.')
                    ? c
                    : '_';
    }
    return csprintf("%s-%016llx.lease", safe.c_str(),
                    static_cast<unsigned long long>(fnv1a(key)));
}

std::string
LeaseDir::path(const std::string &key) const
{
    return dir_ + "/" + leaseFileName(key);
}

bool
LeaseDir::tryClaim(const std::string &key)
{
    if (key.empty())
        return false;
    if (!writeWhole(path(key), leaseJson(key, me_, 1),
                    /*exclusive=*/true))
        return false; // EEXIST (claimed elsewhere) or I/O: defer
    claims_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
LeaseDir::readLease(const std::string &file, LeaseInfo &out) const
{
    out.file = file;
    const std::int64_t mtime = mtimeMs(file);
    out.ageMs = mtime < 0 ? 0 : nowMs() - mtime;
    const std::string text = readWhole(file);
    std::string pid_raw = jsonFieldRaw(text, "pid");
    std::string seq_raw = jsonFieldRaw(text, "seq");
    if (!jsonFieldString(text, "key", out.key) ||
        !jsonFieldString(text, "worker", out.workerId) ||
        !jsonFieldString(text, "host", out.hostname) ||
        pid_raw.empty() || seq_raw.empty()) {
        // Torn claim (killed between open and write) or garbage: the
        // scan keeps going; the TTL decides when it becomes debris.
        out.torn = true;
        return false;
    }
    out.pid = std::strtol(pid_raw.c_str(), nullptr, 10);
    out.seq = std::strtoull(seq_raw.c_str(), nullptr, 10);
    out.ownerAlive =
        out.hostname == me_.hostname && pidAliveHere(out.pid);
    return true;
}

bool
LeaseDir::owned(const std::string &key) const
{
    LeaseInfo info;
    return readLease(path(key), info) && info.workerId == me_.id &&
           info.pid == me_.pid;
}

bool
LeaseDir::verifyForPublish(const std::string &key) const
{
    if (owned(key))
        return true;
    lost_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

bool
LeaseDir::renew(const std::string &key)
{
    LeaseInfo info;
    const std::string lease = path(key);
    if (!readLease(lease, info) || info.workerId != me_.id ||
        info.pid != me_.pid) {
        // Reclaimed under us (or torn): ownership is gone. The caller
        // must drop the cell's result rather than double-publish.
        lost_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    // Unique temp name per worker: a renewal racing another process's
    // re-claim of the same cell never collides on the temp file.
    const std::string tmp = lease + ".renew-" + me_.id;
    if (!writeWhole(tmp, leaseJson(key, me_, info.seq + 1),
                    /*exclusive=*/false) ||
        ::rename(tmp.c_str(), lease.c_str()) != 0) {
        ::unlink(tmp.c_str());
        warn("lease renewal for '%s' failed (%s); lease will expire",
             key.c_str(), std::strerror(errno));
        return true; // still owned; the next beat may succeed
    }
    renewals_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
LeaseDir::release(const std::string &key)
{
    if (!owned(key))
        return; // reclaimed while we ran; nothing of ours to remove
    ::unlink(path(key).c_str());
    released_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LeaseInfo>
LeaseDir::scan(std::size_t *torn_out) const
{
    std::vector<LeaseInfo> out;
    std::size_t torn = 0;
    DIR *d = ::opendir(dir_.c_str());
    if (!d) {
        if (torn_out)
            *torn_out = 0;
        return out;
    }
    while (const struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        // Active leases only: tombstones and in-flight renewal temps
        // have suffixes after ".lease".
        if (name.size() < 6 ||
            name.compare(name.size() - 6, 6, ".lease") != 0)
            continue;
        LeaseInfo info;
        if (!readLease(dir_ + "/" + name, info))
            ++torn;
        out.push_back(std::move(info));
    }
    ::closedir(d);
    if (torn_out)
        *torn_out = torn;
    return out;
}

bool
LeaseDir::stale(const LeaseInfo &info) const
{
    if (info.workerId == me_.id && info.pid == me_.pid)
        return false; // never reclaim a lease this process holds
    return info.ageMs > ttlMs_;
}

bool
LeaseDir::reclaim(const LeaseInfo &info)
{
    // rename(2) is the exactly-once arbiter: of N concurrent
    // reclaimers each renaming to its own tombstone, one wins and the
    // rest get ENOENT. The tombstone stays behind as a crash-proof
    // record of the reclamation.
    const std::string tomb = csprintf(
        "%s.tomb-%s-%llu", info.file.c_str(), me_.id.c_str(),
        static_cast<unsigned long long>(
            tombSeq_.fetch_add(1, std::memory_order_relaxed)));
    if (::rename(info.file.c_str(), tomb.c_str()) != 0)
        return false;
    reclamations_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::size_t
LeaseDir::tombstoneCount() const
{
    std::size_t count = 0;
    DIR *d = ::opendir(dir_.c_str());
    if (!d)
        return 0;
    while (const struct dirent *ent = ::readdir(d))
        if (std::strstr(ent->d_name, ".lease.tomb-"))
            ++count;
    ::closedir(d);
    return count;
}

std::size_t
LeaseDir::orphanCount() const
{
    std::size_t count = 0;
    for (const LeaseInfo &info : scan())
        if (!info.torn && info.hostname == me_.hostname &&
            !info.ownerAlive)
            ++count;
    return count;
}

LeaseCounters
LeaseDir::counters() const
{
    LeaseCounters c;
    c.claims = claims_.load(std::memory_order_relaxed);
    c.renewals = renewals_.load(std::memory_order_relaxed);
    c.released = released_.load(std::memory_order_relaxed);
    c.reclamations = reclamations_.load(std::memory_order_relaxed);
    c.lost = lost_.load(std::memory_order_relaxed);
    return c;
}

LeaseCoordinator::LeaseCoordinator(LeaseDir &leases, HeartbeatThread *hb)
    : leases_(leases), hb_(hb)
{
}

CellCoordinator::Claim
LeaseCoordinator::tryAcquire(const std::string &key)
{
    if (!leases_.tryClaim(key))
        return Claim::Busy;
    if (hb_)
        hb_->track(key);
    return Claim::Acquired;
}

bool
LeaseCoordinator::confirmPublish(const std::string &key)
{
    // The heartbeat thread may already know the lease is gone (its
    // failed renewal counted the loss); otherwise the fresh read is
    // the authoritative pre-publish verification.
    if (hb_ && hb_->lost(key))
        return false;
    return leases_.verifyForPublish(key);
}

void
LeaseCoordinator::release(const std::string &key)
{
    if (hb_)
        hb_->untrack(key);
    leases_.release(key);
}

} // namespace dcl1::exec
