#include "exec/interrupt.hh"

#include <csignal>

namespace dcl1::exec
{

namespace
{

// Async-signal-safe state: the handler only touches this flag.
volatile std::sig_atomic_t interrupt_flag = 0;

extern "C" void
interruptHandler(int signum)
{
    if (interrupt_flag) {
        // Second signal: the sender means it. Restore the default
        // disposition and re-raise so the process dies with the
        // conventional status for that signal.
        std::signal(signum, SIG_DFL);
        std::raise(signum);
        return;
    }
    interrupt_flag = 1;
}

} // anonymous namespace

void
installSignalHandlers()
{
    std::signal(SIGINT, interruptHandler);
    // Fleet orchestrators stop workers with SIGTERM; a cooperative
    // drain releases leases and leaves the run directory resumable.
    std::signal(SIGTERM, interruptHandler);
}

void
requestInterrupt()
{
    interrupt_flag = 1;
}

bool
interruptRequested()
{
    return interrupt_flag != 0;
}

void
clearInterrupt()
{
    interrupt_flag = 0;
}

} // namespace dcl1::exec
