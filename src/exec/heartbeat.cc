#include "exec/heartbeat.hh"

#include <chrono>
#include <vector>

#include "common/log.hh"
#include "exec/chaos.hh"
#include "exec/lease.hh"

namespace dcl1::exec
{

namespace
{

// Host pacing of the renewal loop, never simulated time; audited
// exception to the simulation no-wallclock rule.
using HostClock = std::chrono::steady_clock; // lint: wallclock-ok

/** Stop-check granularity: bounds stop() latency, not renewal rate. */
constexpr std::int64_t kSliceMs = 10;

} // anonymous namespace

HeartbeatThread::HeartbeatThread(LeaseDir &leases,
                                 std::int64_t interval_ms)
    : leases_(leases), intervalMs_(interval_ms > 0 ? interval_ms : 1)
{
}

HeartbeatThread::~HeartbeatThread()
{
    stop();
}

void
HeartbeatThread::start()
{
    if (running_.exchange(true))
        return;
    stopRequested_.store(false);
    thread_ = std::thread([this] { loop(); });
}

void
HeartbeatThread::stop()
{
    if (!running_.exchange(false))
        return;
    stopRequested_.store(true);
    if (thread_.joinable())
        thread_.join();
}

void
HeartbeatThread::track(const std::string &key)
{
    MutexLock lock(mutex_);
    tracked_.insert(key);
    lost_.erase(key); // a re-claimed cell starts with a clean slate
}

void
HeartbeatThread::untrack(const std::string &key)
{
    MutexLock lock(mutex_);
    tracked_.erase(key);
}

bool
HeartbeatThread::lost(const std::string &key) const
{
    MutexLock lock(mutex_);
    return lost_.count(key) != 0;
}

void
HeartbeatThread::loop()
{
    auto next = HostClock::now() +
                std::chrono::milliseconds(intervalMs_);
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        if (HostClock::now() < next) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kSliceMs));
            continue;
        }
        next = HostClock::now() +
               std::chrono::milliseconds(intervalMs_);

        // Chaos "stalled worker": keep running, stop renewing. The
        // worker becomes a zombie whose leases age out and get
        // reclaimed while it still computes.
        if (chaosDropHeartbeat())
            continue;

        std::vector<std::string> keys;
        {
            MutexLock lock(mutex_);
            keys.assign(tracked_.begin(), tracked_.end());
        }
        for (const std::string &key : keys) {
            if (stopRequested_.load(std::memory_order_relaxed))
                return;
            if (leases_.renew(key))
                continue;
            // Reclaimed under us: remember the loss so the worker
            // drops the cell's result, and stop renewing a file that
            // is no longer ours (renewing would resurrect it).
            MutexLock lock(mutex_);
            tracked_.erase(key);
            lost_.insert(key);
        }
        beats_.fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace dcl1::exec
