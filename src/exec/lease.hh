/**
 * @file
 * File-based cooperative cell leases for multi-process sweeps.
 *
 * Any number of `dcl1sweep --worker` processes may share one durable
 * run directory. Before simulating a cell, a worker must *claim* it:
 * it creates `<run-dir>/leases/<cell>.lease` with O_CREAT|O_EXCL — an
 * atomic, kernel-arbitrated test-and-set that exactly one process can
 * win — and writes a single record carrying its worker id, pid,
 * hostname and a monotone heartbeat sequence. A dedicated heartbeat
 * thread (exec/heartbeat.hh) renews held leases by atomically
 * rewriting the file with seq+1, which also refreshes its mtime.
 *
 * Crash recovery is lease *reclamation*: a lease whose mtime is older
 * than the TTL belongs to a worker that died (or stalled) mid-cell.
 * Reclamation renames the lease file to a uniquely-named tombstone —
 * rename(2) succeeds for exactly one of any number of concurrent
 * reclaimers — after which the cell is claimable again and re-enters
 * the normal retry path. Tombstones double as a crash-proof
 * reclamation count for the manifest's coordinator summary.
 *
 * The protocol is cooperative, not watertight: a zombie that stalls
 * for longer than the TTL and then wakes can race its reclaimer in a
 * microsecond-wide window. Two backstops make that harmless. First, a
 * worker verifies it still owns its lease *before* publishing a
 * result; a lease lost to reclamation makes the zombie drop its
 * result (JobResult::lost) instead of double-publishing. Second, even
 * if both sides published, every simulation is a pure function of its
 * configuration, so duplicate WAL records for a cell are byte-
 * identical and the last-wins manifest load cannot change the CSV.
 *
 * Host wall-clock time (lease file mtimes vs. the TTL) is inherent to
 * this layer and never observable by simulated behavior; the audited
 * `lint: wallclock-ok` sites are all in lease.cc.
 */

#ifndef DCL1_EXEC_LEASE_HH
#define DCL1_EXEC_LEASE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/job.hh"

namespace dcl1::exec
{

/** Who holds (or held) a lease; embedded in every claim file. */
struct WorkerIdentity
{
    std::string id;       ///< stable worker name ("w0", "recover", ...)
    long pid = 0;         ///< process id on @ref hostname
    std::string hostname; ///< claimer's host (pid liveness scope)

    /** Identity of the calling process (pid + hostname filled in). */
    static WorkerIdentity local(std::string id);
};

/** One scanned lease file (see LeaseDir::scan). */
struct LeaseInfo
{
    std::string file;     ///< lease file path
    std::string key;      ///< claimed cell key ("" when torn)
    std::string workerId; ///< claiming worker's id
    long pid = 0;
    std::string hostname;
    std::uint64_t seq = 0;  ///< heartbeat sequence (1 = never renewed)
    std::int64_t ageMs = 0; ///< now - mtime: renewal recency
    bool torn = false;      ///< unparsable content (crash mid-claim)
    /** Claimer's pid is alive *on this host*; false for remote hosts,
     *  where only the TTL can decide. */
    bool ownerAlive = false;
};

/** Monotone per-process protocol counters (coordinator summary). */
struct LeaseCounters
{
    std::uint64_t claims = 0;       ///< successful tryClaim()s
    std::uint64_t renewals = 0;     ///< successful renew()s
    std::uint64_t released = 0;     ///< clean release()s
    std::uint64_t reclamations = 0; ///< stale leases this worker reclaimed
    std::uint64_t lost = 0;         ///< leases lost to reclamation
};

/** See file comment. */
class LeaseDir
{
  public:
    /**
     * Bind to `<run_dir>/leases` (created if absent) as @p me. A lease
     * not renewed for @p ttl_ms is considered abandoned; the TTL must
     * be a comfortable multiple of the heartbeat interval.
     */
    LeaseDir(const std::string &run_dir, WorkerIdentity me,
             std::int64_t ttl_ms);

    /**
     * Atomically claim @p key (O_CREAT|O_EXCL). True = this process
     * now owns the cell; false = another lease exists (or I/O failed,
     * treated as "busy" — never fatal, the cell is simply deferred).
     */
    bool tryClaim(const std::string &key);

    /**
     * Heartbeat renewal: verify the lease file still names this
     * worker, then atomically rewrite it with seq+1. False = the
     * lease is gone or owned by someone else (it was reclaimed);
     * the caller must treat the cell as lost and not publish.
     */
    bool renew(const std::string &key);

    /** Fresh-read ownership check. */
    bool owned(const std::string &key) const;

    /**
     * The pre-publish verification: owned(), but a lost lease is also
     * counted in LeaseCounters::lost (the zombie-drop statistic).
     */
    bool verifyForPublish(const std::string &key) const;

    /** Release a held lease (unlink); no-op when not owned anymore. */
    void release(const std::string &key);

    /**
     * Enumerate every lease file. Torn/truncated files (a worker
     * killed mid-claim) parse as LeaseInfo::torn instead of failing
     * the scan; @p torn_out (optional) counts them.
     */
    std::vector<LeaseInfo> scan(std::size_t *torn_out = nullptr) const;

    /**
     * Is @p info abandoned? True when its mtime age exceeds the TTL
     * and it is not this process's own live lease. Torn leases use
     * the same age threshold (claim-writes are tiny; an old torn file
     * is debris, a fresh one may still be mid-write).
     */
    bool stale(const LeaseInfo &info) const;

    /**
     * Reclaim a stale lease: rename it to a tombstone unique to this
     * reclaimer. Exactly one of any number of concurrent reclaimers
     * wins (rename(2) is atomic; the losers get ENOENT). True = this
     * process won and the cell is claimable again.
     */
    bool reclaim(const LeaseInfo &info);

    /** Reclamation tombstones on disk (crash-proof global count). */
    std::size_t tombstoneCount() const;

    /** Leases whose owner pid is dead on this host (zombie debris). */
    std::size_t orphanCount() const;

    LeaseCounters counters() const;

    const WorkerIdentity &identity() const { return me_; }
    std::int64_t ttlMs() const { return ttlMs_; }
    const std::string &dir() const { return dir_; }

    /** Lease file name for @p key: sanitized prefix + stable hash. */
    static std::string leaseFileName(const std::string &key);

  private:
    std::string path(const std::string &key) const;
    bool readLease(const std::string &file, LeaseInfo &out) const;

    std::string dir_;
    WorkerIdentity me_;
    std::int64_t ttlMs_;
    std::atomic<std::uint64_t> claims_{0};
    std::atomic<std::uint64_t> renewals_{0};
    std::atomic<std::uint64_t> released_{0};
    std::atomic<std::uint64_t> reclamations_{0};
    mutable std::atomic<std::uint64_t> lost_{0};
    std::atomic<std::uint64_t> tombSeq_{0}; ///< unique tombstone names
};

class HeartbeatThread;

/**
 * CellCoordinator (exec/job.hh) over a LeaseDir: the JobRunner asks
 * it before executing each keyed job. tryAcquire claims the lease and
 * registers it with the heartbeat thread; confirmPublish is the
 * pre-publish ownership verification; release unregisters + unlinks.
 */
class LeaseCoordinator : public CellCoordinator
{
  public:
    /** @p hb may be null (no renewal — unit tests, very short cells). */
    LeaseCoordinator(LeaseDir &leases, HeartbeatThread *hb);

    Claim tryAcquire(const std::string &key) override;
    bool confirmPublish(const std::string &key) override;
    void release(const std::string &key) override;

  private:
    LeaseDir &leases_;
    HeartbeatThread *hb_;
};

} // namespace dcl1::exec

#endif // DCL1_EXEC_LEASE_HH
