/**
 * @file
 * Open-loop arrival processes for the serving layer.
 *
 * A serve run offers a stream of kernel jobs to the machine regardless
 * of whether it keeps up (open loop): arrival times come from one of
 * the processes here, never from completion feedback. All processes
 * are pure functions of their constructor arguments, so the same
 * (rate, seed) pair always yields the same schedule — the foundation
 * of the byte-identical job-log guarantee.
 */

#ifndef DCL1_SERVE_ARRIVAL_HH
#define DCL1_SERVE_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace dcl1::serve
{

/** Successive interarrival gaps, in core cycles (each >= 1). */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Gap between the previous arrival and the next one. */
    virtual Cycle nextGap() = 0;
};

/**
 * Poisson arrivals at @p jobsPerKcycle jobs per kilocycle:
 * exponential interarrival times via inverse-CDF sampling from a
 * seed-derived Rng, rounded to whole cycles with a floor of 1.
 */
class PoissonArrivals : public ArrivalProcess
{
  public:
    PoissonArrivals(double jobsPerKcycle, std::uint64_t seed);

    Cycle nextGap() override;

    double ratePerKcycle() const { return rate_; }
    double meanGapCycles() const { return meanGap_; }

  private:
    double rate_;
    double meanGap_;
    Rng rng_;
};

/**
 * Replays an explicit gap sequence (trace-driven load). Drawing past
 * the end repeats the final gap, so a short trace describes a periodic
 * tail instead of ending the stream.
 */
class FixedArrivals : public ArrivalProcess
{
  public:
    explicit FixedArrivals(std::vector<Cycle> gaps);

    Cycle nextGap() override;

  private:
    std::vector<Cycle> gaps_;
    std::size_t next_ = 0;
};

} // namespace dcl1::serve

#endif // DCL1_SERVE_ARRIVAL_HH
