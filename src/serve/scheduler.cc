#include "serve/scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace dcl1::serve
{

CoreMap::CoreMap(std::uint32_t numCores)
    : free_(numCores, 1), freeCount_(numCores)
{
    if (numCores == 0)
        fatal("CoreMap needs at least one core");
}

std::uint32_t
CoreMap::freeInRange(CoreId lo, CoreId hi) const
{
    std::uint32_t n = 0;
    for (CoreId c = lo; c < hi && c < free_.size(); ++c)
        n += free_[c] ? 1u : 0u;
    return n;
}

std::vector<CoreId>
CoreMap::claimLowest(std::uint32_t n, CoreId lo, CoreId hi)
{
    std::vector<CoreId> out;
    out.reserve(n);
    for (CoreId c = lo; c < hi && c < free_.size() && out.size() < n; ++c) {
        if (free_[c]) {
            free_[c] = 0;
            --freeCount_;
            out.push_back(c);
        }
    }
    if (out.size() < n)
        panic("CoreMap: claimed %zu of %u cores in [%u, %u)", out.size(),
              n, lo, hi);
    return out;
}

void
CoreMap::release(const std::vector<CoreId> &cores)
{
    for (const CoreId c : cores) {
        if (c >= free_.size() || free_[c])
            panic("CoreMap: releasing core %u that is not claimed", c);
        free_[c] = 1;
        ++freeCount_;
    }
}

Policy
policyByName(const std::string &name)
{
    if (name == "fcfs")
        return Policy::Fcfs;
    if (name == "sjf")
        return Policy::Sjf;
    if (name == "rr")
        return Policy::RoundRobin;
    fatal("unknown scheduling policy '%s' (fcfs, sjf, rr)", name.c_str());
}

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::Fcfs:
        return "fcfs";
      case Policy::Sjf:
        return "sjf";
      case Policy::RoundRobin:
        return "rr";
    }
    panic("bad policy %u", static_cast<unsigned>(p));
}

namespace
{

class FcfsScheduler : public Scheduler
{
  public:
    explicit FcfsScheduler(std::uint32_t numCores) : numCores_(numCores) {}

    std::size_t
    pick(const std::vector<QueuedJob> &waiting, CoreMap &cores,
         std::vector<CoreId> &cores_out) override
    {
        if (waiting.empty())
            return npos;
        const QueuedJob &head = waiting.front();
        const std::uint32_t n =
            std::max(1u, std::min(head.cores, numCores_));
        if (cores.freeCount() < n)
            return npos;
        cores_out = cores.claimLowest(n, 0, numCores_);
        return 0;
    }

  private:
    std::uint32_t numCores_;
};

class SjfScheduler : public Scheduler
{
  public:
    explicit SjfScheduler(std::uint32_t numCores) : numCores_(numCores) {}

    std::size_t
    pick(const std::vector<QueuedJob> &waiting, CoreMap &cores,
         std::vector<CoreId> &cores_out) override
    {
        std::size_t best = npos;
        std::uint32_t best_n = 0;
        for (std::size_t i = 0; i < waiting.size(); ++i) {
            const std::uint32_t n =
                std::max(1u, std::min(waiting[i].cores, numCores_));
            if (cores.freeCount() < n)
                continue;
            // waiting is in arrival order, so strict < keeps the
            // earliest arrival among equal budgets.
            if (best == npos || waiting[i].budget < waiting[best].budget) {
                best = i;
                best_n = n;
            }
        }
        if (best == npos)
            return npos;
        cores_out = cores.claimLowest(best_n, 0, numCores_);
        return best;
    }

  private:
    std::uint32_t numCores_;
};

class RoundRobinScheduler : public Scheduler
{
  public:
    RoundRobinScheduler(std::uint32_t numCores, std::uint32_t numTenants)
        : numTenants_(numTenants), partition_(numCores / numTenants)
    {
        if (partition_ == 0)
            fatal("rr policy: %u tenants need at least %u cores",
                  numTenants, numTenants);
    }

    std::size_t
    pick(const std::vector<QueuedJob> &waiting, CoreMap &cores,
         std::vector<CoreId> &cores_out) override
    {
        for (std::uint32_t k = 0; k < numTenants_; ++k) {
            const std::uint32_t t = (next_ + k) % numTenants_;
            const CoreId lo = t * partition_;
            const CoreId hi = lo + partition_;
            for (std::size_t i = 0; i < waiting.size(); ++i) {
                if (waiting[i].tenant % numTenants_ != t)
                    continue;
                const std::uint32_t n =
                    std::max(1u, std::min(waiting[i].cores, partition_));
                if (cores.freeInRange(lo, hi) < n)
                    break; // tenant-local FCFS: no backfilling
                cores_out = cores.claimLowest(n, lo, hi);
                next_ = (t + 1) % numTenants_;
                return i;
            }
        }
        return npos;
    }

  private:
    std::uint32_t numTenants_;
    std::uint32_t partition_;
    std::uint32_t next_ = 0;
};

} // anonymous namespace

std::unique_ptr<Scheduler>
makeScheduler(Policy policy, std::uint32_t numCores,
              std::uint32_t numTenants)
{
    switch (policy) {
      case Policy::Fcfs:
        return std::make_unique<FcfsScheduler>(numCores);
      case Policy::Sjf:
        return std::make_unique<SjfScheduler>(numCores);
      case Policy::RoundRobin:
        return std::make_unique<RoundRobinScheduler>(
            numCores, std::max(1u, numTenants));
    }
    panic("bad policy %u", static_cast<unsigned>(policy));
}

} // namespace dcl1::serve
