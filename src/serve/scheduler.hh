/**
 * @file
 * Pluggable admission/placement policies for the serving layer.
 *
 * Each cycle the serving loop repeatedly asks the scheduler to pick
 * one waiting job and a set of free physical cores for it, until the
 * scheduler passes. Policies differ in which job they consider and
 * which cores they may hand out:
 *
 *  - FCFS: strict head-of-line — the oldest waiting job runs next or
 *    nothing does (no backfilling; queueing delay is honest).
 *  - SJF: smallest instruction budget that fits the free cores
 *    (backfills around a blocked large job; ties break by arrival).
 *  - RR: cores are statically partitioned across tenants (mix
 *    entries); each tenant runs FCFS within its partition and the
 *    pick rotates over tenants, so one tenant's burst cannot starve
 *    another — the isolation baseline for fairness studies.
 */

#ifndef DCL1_SERVE_SCHEDULER_HH
#define DCL1_SERVE_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dcl1::serve
{

/** Free/busy map of the machine's physical cores. */
class CoreMap
{
  public:
    explicit CoreMap(std::uint32_t numCores);

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(free_.size());
    }
    std::uint32_t freeCount() const { return freeCount_; }

    /** Free cores within [lo, hi). */
    std::uint32_t freeInRange(CoreId lo, CoreId hi) const;

    /**
     * Claim the @p n lowest-numbered free cores in [lo, hi); returns
     * them in ascending order. panic()s if fewer than @p n are free —
     * callers must check first.
     */
    std::vector<CoreId> claimLowest(std::uint32_t n, CoreId lo, CoreId hi);

    /** Return cores to the free pool. */
    void release(const std::vector<CoreId> &cores);

  private:
    std::vector<char> free_;
    std::uint32_t freeCount_ = 0;
};

/** A job waiting for cores. */
struct QueuedJob
{
    std::size_t id = 0;
    std::uint32_t tenant = 0; ///< mix-entry index
    std::uint32_t cores = 1;  ///< requested core count
    std::uint64_t budget = 1; ///< instruction budget
    Cycle arrival = 0;
};

/** Scheduling policy selector. */
enum class Policy : std::uint8_t
{
    Fcfs,
    Sjf,
    RoundRobin,
};

/** Parse "fcfs" / "sjf" / "rr"; fatal() on anything else. */
Policy policyByName(const std::string &name);

/** Stable lowercase name of a policy. */
const char *policyName(Policy p);

/** See file comment. */
class Scheduler
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    virtual ~Scheduler() = default;

    /**
     * Choose the next waiting job to start. @p waiting is in arrival
     * order. On success, claims cores from @p cores, fills
     * @p cores_out with them and returns the job's index in
     * @p waiting; returns npos when nothing can start this cycle.
     * A policy may grant fewer cores than requested (RR clamps to the
     * tenant's partition) but never zero.
     */
    virtual std::size_t pick(const std::vector<QueuedJob> &waiting,
                             CoreMap &cores,
                             std::vector<CoreId> &cores_out) = 0;
};

/**
 * Build a policy instance for a machine of @p numCores and a mix of
 * @p numTenants entries (RR fatal()s when numTenants > numCores).
 */
std::unique_ptr<Scheduler> makeScheduler(Policy policy,
                                         std::uint32_t numCores,
                                         std::uint32_t numTenants);

} // namespace dcl1::serve

#endif // DCL1_SERVE_SCHEDULER_HH
