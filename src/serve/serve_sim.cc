#include "serve/serve_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/log.hh"
#include "exec/determinism.hh"
#include "exec/result_sink.hh"
#include "serve/arrival.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic.hh"

namespace dcl1::serve
{

namespace
{

constexpr CoreId kUnmapped = std::numeric_limits<CoreId>::max();

/// Seed salts: distinct deterministic streams per role.
constexpr std::uint64_t kArrivalSalt = 0x5eedA881Aa11ull;
constexpr std::uint64_t kMixSalt = 0x5eedD8A3ull;

std::uint64_t
jobSeed(std::uint64_t baseSeed, std::size_t id)
{
    // Job 0 must reuse the base seed verbatim so a single-job serve
    // run reproduces the classic single-app path bit for bit.
    return baseSeed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(id));
}

/**
 * Job-private address window: jobs are spaced 2^44 bytes apart, far
 * above the synthetic layout's highest segment (bypass, < 2^41), so
 * concurrent tenants never alias a cache line.
 */
Addr
jobAddrOffset(std::size_t id)
{
    return static_cast<Addr>(id) << 44;
}

double
exactPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double n = static_cast<double>(sorted.size());
    const double rank = std::ceil(p / 100.0 * n);
    std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

} // anonymous namespace

JobStream::JobStream(std::unique_ptr<workload::TraceSource> inner,
                     const std::vector<CoreId> &physCores,
                     std::uint32_t numPhysCores, Addr addrOffset)
    : inner_(std::move(inner)), localOf_(numPhysCores, kUnmapped),
      offset_(addrOffset)
{
    for (std::size_t i = 0; i < physCores.size(); ++i) {
        const CoreId c = physCores[i];
        if (c >= numPhysCores)
            panic("JobStream: physical core %u out of range", c);
        if (localOf_[c] != kUnmapped)
            panic("JobStream: core %u granted twice", c);
        localOf_[c] = static_cast<CoreId>(i);
    }
}

CoreId
JobStream::localOf(CoreId phys) const
{
    if (phys >= localOf_.size() || localOf_[phys] == kUnmapped)
        panic("JobStream: core %u is not part of this job", phys);
    return localOf_[phys];
}

void
JobStream::nextInstr(CoreId core, WarpId warp, Cycle now,
                     workload::WarpInstr &out)
{
    inner_->nextInstr(localOf(core), warp, now, out);
    if (offset_ == 0)
        return;
    for (std::uint8_t i = 0; i < out.numAccesses; ++i)
        out.accesses[i].addr += offset_;
}

std::uint32_t
JobStream::warpsPerCore(CoreId core) const
{
    return inner_->warpsPerCore(localOf(core));
}

ServeSim::ServeSim(const core::SystemConfig &sys,
                   const core::DesignConfig &design, const JobMix &mix,
                   const ServeOptions &opts)
    : sys_(sys), design_(design), mix_(mix), opts_(opts),
      gpu_(std::make_unique<core::GpuSystem>(sys_, design_)),
      sched_(makeScheduler(
          opts_.policy, sys_.numCores,
          static_cast<std::uint32_t>(std::max<std::size_t>(
              1, mix_.entries.size())))),
      coreMap_(sys_.numCores), statGroup_("serve"),
      latencyDist_(std::max<std::uint64_t>(1, opts_.horizon / 64), 64),
      queueDist_(std::max<std::uint64_t>(1, opts_.horizon / 64), 64)
{
    if (mix_.entries.empty() && opts_.trace.empty())
        fatal("serve: no job mix and no job trace");
    if (opts_.horizon == 0)
        fatal("serve: horizon must be nonzero");
    statGroup_.addScalar("jobs_offered", &statOffered_);
    statGroup_.addScalar("jobs_started", &statStarted_);
    statGroup_.addScalar("jobs_completed", &statCompleted_);
    statGroup_.addScalar("jobs_censored", &statCensored_);
    statGroup_.addDistribution("latency", &latencyDist_);
    statGroup_.addDistribution("queue_delay", &queueDist_);
    planArrivals();
}

ServeSim::~ServeSim() = default;

std::uint32_t
ServeSim::defaultCoresFor(const std::string &app) const
{
    if (opts_.defaultCores != 0)
        return std::min(opts_.defaultCores, sys_.numCores);
    // Footprint-class sizing: bigger working sets get more cores (and
    // with them more aggregate L1), mirroring how a CTA scheduler
    // spreads a larger grid.
    const auto &info = workload::appByName(app);
    std::uint32_t denom = 4;
    switch (info.footprint) {
      case workload::FootprintClass::Small:
        denom = 8;
        break;
      case workload::FootprintClass::Medium:
        denom = 4;
        break;
      case workload::FootprintClass::Large:
        denom = 2;
        break;
    }
    return std::max(1u, sys_.numCores / denom);
}

void
ServeSim::planArrivals()
{
    plan_.clear();
    const auto resolve = [&](const std::string &app, std::uint32_t cores,
                             std::uint64_t budget, std::uint32_t tenant,
                             Cycle arrival) {
        PlannedJob p;
        p.app = app;
        p.tenant = tenant;
        p.arrival = arrival;
        p.cores = cores != 0 ? std::min(cores, sys_.numCores)
                             : defaultCoresFor(app);
        std::uint64_t b = budget != 0
                              ? budget
                              : workload::appByName(app).nominalInstrBudget;
        if (opts_.budgetScale != 1.0) {
            const double scaled =
                double(b) * std::max(0.0, opts_.budgetScale);
            b = scaled >= double(std::numeric_limits<std::uint64_t>::max())
                    ? std::numeric_limits<std::uint64_t>::max()
                    : static_cast<std::uint64_t>(scaled);
        }
        p.budget = std::max<std::uint64_t>(1, b);
        plan_.push_back(std::move(p));
    };

    if (!opts_.trace.empty()) {
        for (const TraceJob &j : opts_.trace) {
            // Tenant = first mix entry with the same app, else 0: a
            // trace drives arrivals but inherits the mix's tenant
            // structure (and per-entry defaults) when one is given.
            std::uint32_t tenant = 0;
            std::uint32_t cores = j.cores;
            std::uint64_t budget = j.budget;
            for (std::size_t e = 0; e < mix_.entries.size(); ++e) {
                if (mix_.entries[e].app == j.app) {
                    tenant = static_cast<std::uint32_t>(e);
                    if (cores == 0)
                        cores = mix_.entries[e].cores;
                    if (budget == 0)
                        budget = mix_.entries[e].budget;
                    break;
                }
            }
            resolve(j.app, cores, budget, tenant, j.arrival);
        }
        return;
    }

    PoissonArrivals arrivals(opts_.lambdaJobsPerKcycle,
                             opts_.seed ^ kArrivalSalt);
    Rng draw(opts_.seed ^ kMixSalt);
    MixSampler sampler(mix_);
    Cycle t = 0;
    for (std::size_t i = 0; i < opts_.numJobs; ++i) {
        t += arrivals.nextGap();
        const std::size_t e = sampler.draw(draw);
        const MixEntry &entry = mix_.entries[e];
        resolve(entry.app, entry.cores, entry.budget,
                static_cast<std::uint32_t>(e), t);
    }
}

ServeSummary
ServeSim::run(const core::GpuSystem::CycleHeartbeat &heartbeat)
{
    // Jobs arriving at cycle 0 (trace-driven) bind before the first
    // tick, exactly like the classic path's construction-time source.
    admitArrivals(0);
    startJobs(0);
    gpu_->run(opts_.horizon, 0, heartbeat,
              [this](Cycle now) { return onCycle(now); });

    const Cycle end = gpu_->cycle();
    // Capture the odometers of still-running jobs while their streams
    // are still bound; the horizon censored them mid-flight.
    for (const RunningJob &r : running_) {
        std::uint64_t instrs = 0;
        for (const CoreId c : r.cores)
            instrs += gpu_->cores()[c]->sourceInstructions();
        outcomes_[r.id].instructions = instrs;
    }
    for (JobOutcome &o : outcomes_) {
        if (o.completed)
            continue;
        o.latency = end - o.arrival;
        o.queueDelay = o.started ? o.start - o.arrival : end - o.arrival;
        ++statCensored_;
        latencyDist_.sample(o.latency);
        queueDist_.sample(o.queueDelay);
        emitJobLog(o);
    }
    return summarize(end);
}

bool
ServeSim::onCycle(Cycle now)
{
    reapCompletions(now);
    admitArrivals(now);
    startJobs(now);
    return finished_ < plan_.size();
}

void
ServeSim::admitArrivals(Cycle now)
{
    while (nextPlanned_ < plan_.size() &&
           plan_[nextPlanned_].arrival <= now) {
        const PlannedJob &p = plan_[nextPlanned_];
        QueuedJob q;
        q.id = outcomes_.size();
        q.tenant = p.tenant;
        q.cores = p.cores;
        q.budget = p.budget;
        q.arrival = p.arrival;

        JobOutcome o;
        o.id = q.id;
        o.app = p.app;
        o.tenant = p.tenant;
        o.coresRequested = p.cores;
        o.budget = p.budget;
        o.arrival = p.arrival;
        outcomes_.push_back(std::move(o));
        waiting_.push_back(q);
        ++statOffered_;
        ++nextPlanned_;
    }
}

void
ServeSim::startJobs(Cycle now)
{
    while (!waiting_.empty()) {
        std::vector<CoreId> granted;
        const std::size_t idx = sched_->pick(waiting_, coreMap_, granted);
        if (idx == Scheduler::npos)
            break;
        const QueuedJob q = waiting_[idx];
        waiting_.erase(waiting_.begin() +
                       static_cast<std::ptrdiff_t>(idx));

        JobOutcome &o = outcomes_[q.id];
        o.started = true;
        o.start = now;
        o.queueDelay = now - q.arrival;
        o.coresGranted = static_cast<std::uint32_t>(granted.size());
        ++statStarted_;

        const auto &info = workload::appByName(o.app);
        auto inner = std::make_unique<workload::SyntheticSource>(
            core::effectiveWorkload(design_, info.params),
            static_cast<std::uint32_t>(granted.size()), sys_.lineBytes,
            jobSeed(opts_.seed, q.id));
        auto stream = std::make_unique<JobStream>(
            std::move(inner), granted, sys_.numCores,
            jobAddrOffset(q.id));
        for (const CoreId c : granted)
            gpu_->cores()[c]->bindSource(stream.get());

        RunningJob r;
        r.id = q.id;
        r.cores = granted;
        r.stream = std::move(stream);
        running_.push_back(std::move(r));
    }
}

void
ServeSim::reapCompletions(Cycle now)
{
    auto &cores = gpu_->cores();
    for (std::size_t i = 0; i < running_.size();) {
        RunningJob &r = running_[i];
        JobOutcome &o = outcomes_[r.id];

        if (!r.closing) {
            std::uint64_t instrs = 0;
            for (const CoreId c : r.cores)
                instrs += cores[c]->sourceInstructions();
            if (instrs >= o.budget) {
                for (const CoreId c : r.cores)
                    cores[c]->closeSource();
                r.closing = true;
            }
        }

        if (r.closing) {
            bool busy = false;
            for (const CoreId c : r.cores)
                busy = busy || cores[c]->busy();
            if (!busy) {
                std::uint64_t instrs = 0;
                for (const CoreId c : r.cores) {
                    instrs += cores[c]->sourceInstructions();
                    cores[c]->unbindSource();
                }
                coreMap_.release(r.cores);
                o.instructions = instrs;
                o.complete = now;
                o.completed = true;
                o.latency = now - o.arrival;
                ++finished_;
                ++statCompleted_;
                latencyDist_.sample(o.latency);
                queueDist_.sample(o.queueDelay);
                emitJobLog(o);
                running_.erase(running_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                continue;
            }
        }
        ++i;
    }
}

void
ServeSim::emitJobLog(const JobOutcome &o)
{
    if (!jobLog_)
        return;
    std::ostringstream os;
    os << "{\"job\":" << o.id << ",\"app\":\"" << exec::jsonEscape(o.app)
       << "\",\"tenant\":" << o.tenant
       << ",\"cores_req\":" << o.coresRequested
       << ",\"cores\":" << o.coresGranted << ",\"budget\":" << o.budget
       << ",\"instructions\":" << o.instructions
       << ",\"arrival\":" << o.arrival;
    if (o.started)
        os << ",\"start\":" << o.start << ",\"queue\":" << o.queueDelay;
    if (o.completed)
        os << ",\"complete\":" << o.complete;
    os << ",\"latency\":" << o.latency << ",\"status\":\""
       << (o.completed ? "completed" : (o.started ? "censored" : "queued"))
       << "\"}";
    jobLog_(os.str());
}

ServeSummary
ServeSim::summarize(Cycle endCycle)
{
    ServeSummary s;
    s.endCycle = endCycle;
    s.offered = outcomes_.size();

    std::uint32_t numTenants = 0;
    for (const JobOutcome &o : outcomes_)
        numTenants = std::max(numTenants, o.tenant + 1);
    std::vector<double> slowdownSum(numTenants, 0.0);
    std::vector<std::uint64_t> slowdownCnt(numTenants, 0);

    std::vector<double> lats;
    lats.reserve(outcomes_.size());
    double latSum = 0.0;
    double queueSum = 0.0;
    for (const JobOutcome &o : outcomes_) {
        if (o.started)
            ++s.started;
        lats.push_back(double(o.latency));
        latSum += double(o.latency);
        queueSum += double(o.queueDelay);
        if (!o.completed)
            continue;
        ++s.completed;
        const double service = double(o.complete - o.start);
        const double slowdown =
            service > 0.0 ? double(o.latency) / service : 1.0;
        slowdownSum[o.tenant] += slowdown;
        ++slowdownCnt[o.tenant];
    }
    s.censored = s.offered - s.completed;

    std::sort(lats.begin(), lats.end());
    if (!lats.empty()) {
        s.meanLatency = latSum / double(lats.size());
        s.meanQueueDelay = queueSum / double(lats.size());
        s.p50Latency = exactPercentile(lats, 50.0);
        s.p95Latency = exactPercentile(lats, 95.0);
        s.p99Latency = exactPercentile(lats, 99.0);
    }

    if (endCycle > 0) {
        s.offeredPerKcycle =
            double(s.offered) * 1000.0 / double(endCycle);
        s.completedPerKcycle =
            double(s.completed) * 1000.0 / double(endCycle);
    }

    // Jain index over per-tenant goodput efficiency 1/mean(slowdown):
    // scale-free, 1.0 when every tenant is slowed equally.
    std::vector<double> xs;
    for (std::uint32_t t = 0; t < numTenants; ++t) {
        if (slowdownCnt[t] == 0)
            continue;
        const double mean = slowdownSum[t] / double(slowdownCnt[t]);
        xs.push_back(mean > 0.0 ? 1.0 / mean : 1.0);
    }
    if (xs.size() >= 2) {
        double sum = 0.0;
        double sq = 0.0;
        for (const double x : xs) {
            sum += x;
            sq += x * x;
        }
        s.jainFairness =
            sq > 0.0 ? (sum * sum) / (double(xs.size()) * sq) : 1.0;
    }

    s.machine = gpu_->metrics();
    return s;
}

EquivalenceReport
checkSingleJobEquivalence(const core::SystemConfig &sys,
                          const core::DesignConfig &design,
                          const std::string &appName, Cycle cycles)
{
    EquivalenceReport rep;
    {
        core::GpuSystem classic(sys, design,
                                workload::appByName(appName).params);
        classic.run(cycles, 0);
        rep.classicDigest = exec::statDigest(classic);
    }
    {
        JobMix mix;
        MixEntry e;
        e.app = appName;
        e.cores = sys.numCores;
        mix.entries.push_back(e);

        ServeOptions opts;
        opts.policy = Policy::Fcfs;
        opts.horizon = cycles;
        opts.seed = sys.seed;
        TraceJob j;
        j.arrival = 0;
        j.app = appName;
        j.cores = sys.numCores;
        // A budget no run can reach: the job spans the whole horizon,
        // so every simulated cycle matches the classic run's.
        j.budget = std::numeric_limits<std::uint64_t>::max() / 2;
        opts.trace.push_back(j);

        ServeSim sim(sys, design, mix, opts);
        sim.run();
        rep.serveDigest = exec::statDigest(sim.gpu());
    }
    rep.match = rep.classicDigest == rep.serveDigest;
    return rep;
}

} // namespace dcl1::serve
