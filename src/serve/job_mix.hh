/**
 * @file
 * Job mixes and job traces: what the arrival process offers.
 *
 * A JobMix is a weighted list of catalog applications; the serving
 * layer draws each arriving job's application from it. A JobTrace is
 * an explicit, pre-timed job list (trace-driven load) that bypasses
 * both the arrival process and the mix draw.
 *
 * The mix file format is a JSON array of objects:
 *
 *   [{"app": "T-AlexNet", "weight": 2, "cores": 16, "budget": 500000},
 *    {"app": "C-BFS"}]
 *
 * weight defaults to 1; cores and budget default to 0, meaning "use
 * the serving default" (footprint-class-sized cores, the catalog's
 * nominal instruction budget). The trace file format is JSONL, one
 * object per job with a required "cycle" (non-decreasing) plus the
 * same optional fields.
 */

#ifndef DCL1_SERVE_JOB_MIX_HH
#define DCL1_SERVE_JOB_MIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace dcl1::serve
{

/** One weighted component of a job mix. */
struct MixEntry
{
    std::string app;
    double weight = 1.0;
    std::uint32_t cores = 0;   ///< 0 = serving default for the app
    std::uint64_t budget = 0;  ///< 0 = catalog nominal budget
};

/** A weighted set of applications; entry index doubles as tenant id. */
struct JobMix
{
    std::vector<MixEntry> entries;
};

/** Uniform mix over comma-separated catalog app names. */
JobMix mixFromAppList(const std::string &csv);

/**
 * Parse mix JSON text. fatal()s with @p what and an offset on
 * malformed input, unknown keys, unknown apps, or non-positive
 * weights.
 */
JobMix parseMixJson(const std::string &text, const std::string &what);

/** Read and parse a mix file; fatal() on I/O or parse errors. */
JobMix loadMixFile(const std::string &path);

/** One pre-timed job of a trace-driven run. */
struct TraceJob
{
    Cycle arrival = 0;
    std::string app;
    std::uint32_t cores = 0;
    std::uint64_t budget = 0;
};

/** Parse JSONL trace text (see file comment). */
std::vector<TraceJob> parseJobTrace(const std::string &text,
                                    const std::string &what);

/** Read and parse a trace file; fatal() on I/O or parse errors. */
std::vector<TraceJob> loadJobTrace(const std::string &path);

/**
 * Weighted entry draw with cumulative weights fixed at construction;
 * the caller supplies the Rng so draw order stays with the schedule
 * generator.
 */
class MixSampler
{
  public:
    explicit MixSampler(const JobMix &mix);

    /** Index into mix.entries. */
    std::size_t draw(Rng &rng) const;

  private:
    std::vector<double> cumulative_;
};

} // namespace dcl1::serve

#endif // DCL1_SERVE_JOB_MIX_HH
