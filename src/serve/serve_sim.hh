/**
 * @file
 * ServeSim: the GPU as a shared service under open-loop traffic.
 *
 * One GpuSystem is built idle (no workload bound); a seed-derived
 * arrival schedule offers kernel jobs drawn from a JobMix (or an
 * explicit JobTrace), a Scheduler assigns free cores, and each started
 * job gets its own JobStream — a per-job SyntheticSource remapped onto
 * the granted physical cores and offset into a job-private address
 * window. A job completes when its cores have issued its instruction
 * budget and every in-flight request has drained; the completion cycle
 * is stamped, the cores are unbound and returned to the pool.
 *
 * Everything is a pure function of (platform, design, mix, options):
 * the same seed gives a byte-identical job log, and a single job
 * granted the whole machine reproduces the classic single-app path
 * bit for bit (checkSingleJobEquivalence proves it).
 */

#ifndef DCL1_SERVE_SERVE_SIM_HH
#define DCL1_SERVE_SERVE_SIM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/gpu_system.hh"
#include "serve/job_mix.hh"
#include "serve/scheduler.hh"
#include "stats/stats.hh"
#include "stats/timeline.hh"
#include "workload/workload.hh"

namespace dcl1::serve
{

/**
 * Per-job trace adapter: wraps a job-private inner source built for
 * the job's granted core count, maps physical core ids to job-local
 * ones, and adds a job-private address offset so concurrent tenants
 * never alias in the caches. Job 0 with an identity core map and zero
 * offset is transparent — the single-job equivalence guarantee.
 */
class JobStream : public workload::TraceSource
{
  public:
    JobStream(std::unique_ptr<workload::TraceSource> inner,
              const std::vector<CoreId> &physCores,
              std::uint32_t numPhysCores, Addr addrOffset);

    void nextInstr(CoreId core, WarpId warp, Cycle now,
                   workload::WarpInstr &out) override;
    std::uint32_t warpsPerCore(CoreId core) const override;

  private:
    CoreId localOf(CoreId phys) const;

    std::unique_ptr<workload::TraceSource> inner_;
    std::vector<CoreId> localOf_; ///< phys -> job-local, npos-free
    Addr offset_;
};

/** Final record of one offered job. */
struct JobOutcome
{
    std::size_t id = 0;
    std::string app;
    std::uint32_t tenant = 0;
    std::uint32_t coresRequested = 0;
    std::uint32_t coresGranted = 0;
    std::uint64_t budget = 0;
    std::uint64_t instructions = 0; ///< issued under this job's binding
    Cycle arrival = 0;
    Cycle start = 0;    ///< valid when started
    Cycle complete = 0; ///< valid when completed
    bool started = false;
    bool completed = false;
    /**
     * complete - arrival for completed jobs; for censored jobs the
     * end-of-run lower bound (endCycle - arrival), which keeps tail
     * percentiles honest past saturation instead of dropping exactly
     * the slowest jobs.
     */
    Cycle latency = 0;
    Cycle queueDelay = 0; ///< start - arrival (lower bound if waiting)
};

/** Aggregate results of a serve run. */
struct ServeSummary
{
    std::size_t offered = 0;
    std::size_t started = 0;
    std::size_t completed = 0;
    std::size_t censored = 0;
    Cycle endCycle = 0;
    double offeredPerKcycle = 0.0;
    double completedPerKcycle = 0.0; ///< goodput
    double meanLatency = 0.0;
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;
    double meanQueueDelay = 0.0;
    /**
     * Jain fairness index over per-tenant goodput efficiency (the
     * inverse of each tenant's mean slowdown); 1.0 = perfectly fair,
     * 1/numTenants = one tenant monopolizes. Tenants with no completed
     * jobs are excluded; 1.0 when fewer than two tenants completed.
     */
    double jainFairness = 1.0;
    core::RunMetrics machine;
};

/** Knobs of a serve run (see ServeSim). */
struct ServeOptions
{
    Policy policy = Policy::Fcfs;
    double lambdaJobsPerKcycle = 1.0;
    std::size_t numJobs = 100;    ///< offered-job cap (Poisson mode)
    Cycle horizon = 1'000'000;    ///< hard cycle cap
    std::uint64_t seed = 1;       ///< arrival/mix/job-stream seed
    double budgetScale = 1.0;     ///< scales every job's budget
    std::uint32_t defaultCores = 0; ///< 0 = footprint-class default
    std::vector<TraceJob> trace;  ///< non-empty = trace-driven load
};

/** See file comment. */
class ServeSim
{
  public:
    ServeSim(const core::SystemConfig &sys,
             const core::DesignConfig &design, const JobMix &mix,
             const ServeOptions &opts);
    ~ServeSim();

    ServeSim(const ServeSim &) = delete;
    ServeSim &operator=(const ServeSim &) = delete;

    /**
     * One JSONL line per job, emitted at its completion cycle
     * (censored jobs follow at end of run, in job order). Set before
     * run().
     */
    void setJobLogSink(stats::LineSink sink) { jobLog_ = std::move(sink); }

    /** Run to completion of all offered jobs or the horizon. */
    ServeSummary run(const core::GpuSystem::CycleHeartbeat &heartbeat = {});

    /** Outcomes of every offered job, by job id. Valid after run(). */
    const std::vector<JobOutcome> &outcomes() const { return outcomes_; }

    core::GpuSystem &gpu() { return *gpu_; }
    stats::StatGroup &statGroup() { return statGroup_; }

  private:
    struct PlannedJob
    {
        Cycle arrival = 0;
        std::uint32_t tenant = 0;
        std::uint32_t cores = 1;
        std::uint64_t budget = 1;
        std::string app;
    };

    struct RunningJob
    {
        std::size_t id = 0;
        std::vector<CoreId> cores;
        std::unique_ptr<JobStream> stream;
        bool closing = false;
    };

    void planArrivals();
    std::uint32_t defaultCoresFor(const std::string &app) const;
    bool onCycle(Cycle now);
    void admitArrivals(Cycle now);
    void reapCompletions(Cycle now);
    void startJobs(Cycle now);
    void emitJobLog(const JobOutcome &o);
    ServeSummary summarize(Cycle endCycle);

    core::SystemConfig sys_;
    core::DesignConfig design_;
    JobMix mix_;
    ServeOptions opts_;

    std::unique_ptr<core::GpuSystem> gpu_;
    std::unique_ptr<Scheduler> sched_;
    CoreMap coreMap_;

    std::vector<PlannedJob> plan_;
    std::size_t nextPlanned_ = 0;
    std::vector<QueuedJob> waiting_;
    std::vector<RunningJob> running_;
    std::vector<JobOutcome> outcomes_;
    std::size_t finished_ = 0;

    stats::LineSink jobLog_;

    stats::StatGroup statGroup_;
    stats::Scalar statOffered_;
    stats::Scalar statStarted_;
    stats::Scalar statCompleted_;
    stats::Scalar statCensored_;
    stats::Distribution latencyDist_;
    stats::Distribution queueDist_;
};

/** Result of the single-job-equals-single-app determinism check. */
struct EquivalenceReport
{
    std::uint64_t classicDigest = 0;
    std::uint64_t serveDigest = 0;
    bool match = false;
};

/**
 * Run @p appName for @p cycles the classic way (GpuSystem with the
 * built-in source) and as a one-job serve run granted every core, and
 * compare full stat digests. The refactor's honesty check: both paths
 * must be bit-identical.
 */
EquivalenceReport checkSingleJobEquivalence(
    const core::SystemConfig &sys, const core::DesignConfig &design,
    const std::string &appName, Cycle cycles);

} // namespace dcl1::serve

#endif // DCL1_SERVE_SERVE_SIM_HH
