#include "serve/arrival.hh"

#include <cmath>

#include "common/log.hh"

namespace dcl1::serve
{

PoissonArrivals::PoissonArrivals(double jobsPerKcycle, std::uint64_t seed)
    : rate_(jobsPerKcycle), meanGap_(0.0), rng_(seed)
{
    if (!(jobsPerKcycle > 0.0))
        fatal("Poisson arrival rate must be > 0 (got %f)", jobsPerKcycle);
    meanGap_ = 1000.0 / rate_;
}

Cycle
PoissonArrivals::nextGap()
{
    // Inverse CDF of Exp(1/meanGap). uniform() is in [0, 1), so the
    // log argument stays strictly positive.
    const double u = rng_.uniform();
    const double gap = -std::log(1.0 - u) * meanGap_;
    const double rounded = std::floor(gap + 0.5);
    if (rounded < 1.0)
        return 1;
    return static_cast<Cycle>(rounded);
}

FixedArrivals::FixedArrivals(std::vector<Cycle> gaps)
    : gaps_(std::move(gaps))
{
    if (gaps_.empty())
        fatal("FixedArrivals needs at least one gap");
    for (auto &g : gaps_)
        if (g == 0)
            g = 1;
}

Cycle
FixedArrivals::nextGap()
{
    const Cycle g = gaps_[next_];
    if (next_ + 1 < gaps_.size())
        ++next_;
    return g;
}

} // namespace dcl1::serve
