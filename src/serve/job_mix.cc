#include "serve/job_mix.hh"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "workload/app_catalog.hh"

namespace dcl1::serve
{

namespace
{

/**
 * Minimal recursive-descent scanner for the flat JSON shapes the mix
 * and trace formats use: arrays of objects whose values are strings or
 * numbers. Anything else (nesting, booleans, null) is a format error.
 */
struct Scanner
{
    const std::string &text;
    const std::string &what;
    std::size_t pos = 0;

    [[noreturn]] void
    bail(const char *msg) const
    {
        fatal("%s: %s at offset %zu", what.c_str(), msg, pos);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    atEnd()
    {
        skipWs();
        return pos >= text.size();
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            bail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            bail("unexpected character");
        ++pos;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\')
                bail("escapes are not supported in mix/trace strings");
            out.push_back(text[pos++]);
        }
        if (pos >= text.size())
            bail("unterminated string");
        ++pos;
        return out;
    }

    double
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E'))
            ++pos;
        if (pos == start)
            bail("expected a number");
        std::size_t used = 0;
        double v = 0.0;
        try {
            v = std::stod(text.substr(start, pos - start), &used);
        } catch (const std::exception &) {
            bail("malformed number");
        }
        if (used != pos - start)
            bail("malformed number");
        return v;
    }

    /** Parse one {..} object of string/number fields via @p field. */
    template <typename FieldFn>
    void
    parseObject(FieldFn &&field)
    {
        expect('{');
        if (peek() == '}') {
            ++pos;
            return;
        }
        while (true) {
            const std::string key = parseString();
            expect(':');
            field(key);
            const char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return;
        }
    }
};

std::uint64_t
asCount(double v, Scanner &s)
{
    if (!(v >= 0.0) || v != std::floor(v) || v > 1e18)
        s.bail("expected a non-negative integer");
    return static_cast<std::uint64_t>(v);
}

void
validateEntry(const MixEntry &e, const std::string &what)
{
    // appByName fatal()s on unknown names: every mix entry must point
    // at a real catalog application.
    workload::appByName(e.app);
    if (!(e.weight > 0.0))
        fatal("%s: app '%s' has non-positive weight", what.c_str(),
              e.app.c_str());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // anonymous namespace

JobMix
mixFromAppList(const std::string &csv)
{
    JobMix mix;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string name = csv.substr(start, comma - start);
        if (!name.empty()) {
            MixEntry e;
            e.app = name;
            validateEntry(e, "app list");
            mix.entries.push_back(std::move(e));
        }
        start = comma + 1;
    }
    if (mix.entries.empty())
        fatal("empty application list");
    return mix;
}

JobMix
parseMixJson(const std::string &text, const std::string &what)
{
    JobMix mix;
    Scanner s{text, what};
    s.expect('[');
    if (s.peek() != ']') {
        while (true) {
            MixEntry e;
            s.parseObject([&](const std::string &key) {
                if (key == "app")
                    e.app = s.parseString();
                else if (key == "weight")
                    e.weight = s.parseNumber();
                else if (key == "cores")
                    e.cores = static_cast<std::uint32_t>(
                        asCount(s.parseNumber(), s));
                else if (key == "budget")
                    e.budget = asCount(s.parseNumber(), s);
                else
                    s.bail("unknown mix entry key");
            });
            if (e.app.empty())
                s.bail("mix entry missing \"app\"");
            validateEntry(e, what);
            mix.entries.push_back(std::move(e));
            if (s.peek() == ',') {
                ++s.pos;
                continue;
            }
            break;
        }
    }
    s.expect(']');
    if (!s.atEnd())
        s.bail("trailing content after the mix array");
    if (mix.entries.empty())
        fatal("%s: mix has no entries", what.c_str());
    return mix;
}

JobMix
loadMixFile(const std::string &path)
{
    return parseMixJson(readFile(path), path);
}

std::vector<TraceJob>
parseJobTrace(const std::string &text, const std::string &what)
{
    std::vector<TraceJob> jobs;
    Scanner s{text, what};
    while (!s.atEnd()) {
        TraceJob j;
        bool haveCycle = false;
        s.parseObject([&](const std::string &key) {
            if (key == "cycle") {
                j.arrival = asCount(s.parseNumber(), s);
                haveCycle = true;
            } else if (key == "app") {
                j.app = s.parseString();
            } else if (key == "cores") {
                j.cores = static_cast<std::uint32_t>(
                    asCount(s.parseNumber(), s));
            } else if (key == "budget") {
                j.budget = asCount(s.parseNumber(), s);
            } else {
                s.bail("unknown trace job key");
            }
        });
        if (!haveCycle || j.app.empty())
            s.bail("trace job needs \"cycle\" and \"app\"");
        workload::appByName(j.app);
        if (!jobs.empty() && j.arrival < jobs.back().arrival)
            s.bail("trace arrival cycles must be non-decreasing");
        jobs.push_back(std::move(j));
    }
    if (jobs.empty())
        fatal("%s: trace has no jobs", what.c_str());
    return jobs;
}

std::vector<TraceJob>
loadJobTrace(const std::string &path)
{
    return parseJobTrace(readFile(path), path);
}

MixSampler::MixSampler(const JobMix &mix)
{
    double total = 0.0;
    for (const auto &e : mix.entries) {
        total += e.weight;
        cumulative_.push_back(total);
    }
    if (cumulative_.empty() || !(total > 0.0))
        fatal("mix sampler needs positive total weight");
}

std::size_t
MixSampler::draw(Rng &rng) const
{
    const double u = rng.uniform() * cumulative_.back();
    for (std::size_t i = 0; i < cumulative_.size(); ++i)
        if (u < cumulative_[i])
            return i;
    return cumulative_.size() - 1;
}

} // namespace dcl1::serve
