#include "noc/crossbar.hh"

#include <algorithm>

#include "check/check.hh"
#include "check/request_ledger.hh"
#include "common/log.hh"
#include "prof/prof.hh"

namespace dcl1::noc
{

Crossbar::Crossbar(const XbarParams &params)
    : params_(params), statGroup_(params.name)
{
    if (params.numInputs == 0 || params.numInputs > 128 ||
        params.numOutputs == 0 || params.numOutputs > 128) {
        fatal("Crossbar %s: ports must be 1..128 (got %ux%u)",
              params.name.c_str(), params.numInputs, params.numOutputs);
    }
    if (params.clockRatio <= 0.0 || params.clockRatio > 4.0)
        fatal("Crossbar %s: bad clock ratio %f", params.name.c_str(),
              params.clockRatio);

    voq_.resize(std::size_t(params.numInputs) * params.numOutputs);
    inputOcc_.assign(params.numInputs, 0);
    reqBits_.assign(params.numOutputs, {0, 0});
    grantPtr_.assign(params.numOutputs, 0);
    acceptPtr_.assign(params.numInputs, 0);
    inputFreeAt_.assign(params.numInputs, 0);
    outputFreeAt_.assign(params.numOutputs, 0);
    outReserved_.assign(params.numOutputs, 0);
    outQ_.resize(params.numOutputs);
    outputFlits_.assign(params.numOutputs, 0);

    statGroup_.addScalar("packets", &delivered_);
    statGroup_.addScalar("flits", &flits_);
    statGroup_.addScalar("latency_sum", &latencySum_);
}

bool
Crossbar::canInject(std::uint32_t input) const
{
    return inputOcc_[input] < params_.inputQueueCap;
}

void
Crossbar::inject(Packet pkt)
{
    if (pkt.src >= params_.numInputs || pkt.dst >= params_.numOutputs)
        panic("Crossbar %s: inject %u->%u out of range (%ux%u)",
              params_.name.c_str(), pkt.src, pkt.dst, params_.numInputs,
              params_.numOutputs);
    if (!canInject(pkt.src))
        panic("Crossbar %s: inject to full input %u",
              params_.name.c_str(), pkt.src);
    if (pkt.flits == 0)
        panic("Crossbar %s: zero-flit packet", params_.name.c_str());

    pkt.injectedAt = nocCycle_;
    DCL1_CHECK_ONLY({
        if (pkt.req)
            check::ledger().onTransition(*pkt.req,
                                         check::ReqStage::InNoc);
        ++chkInjectedPkts_;
        chkInjectedFlits_ += pkt.flits;
    });
    auto &q = voq_[voqIndex(pkt.src, pkt.dst)];
    if (q.empty())
        reqBits_[pkt.dst][pkt.src / 64] |= 1ull << (pkt.src % 64);
    ++inputOcc_[pkt.src];
    q.push_back(std::move(pkt));
}

std::optional<Packet>
Crossbar::eject(std::uint32_t output)
{
    auto &q = outQ_[output];
    if (q.empty())
        return std::nullopt;
    Packet pkt = std::move(q.front());
    q.pop_front();
    DCL1_CHECK_ONLY(++chkEjectedPkts_);
    return pkt;
}

bool
Crossbar::hasEjectable(std::uint32_t output) const
{
    return !outQ_[output].empty();
}

void
Crossbar::tick()
{
    // busy() is an O(ports) scan; only pay for it while profiled.
    if (prof::active() && !busy())
        DCL1_PROF_COUNT(QuiescentXbar, 1);
    phase_ += params_.clockRatio;
    while (phase_ >= 1.0) {
        phase_ -= 1.0;
        nocTick();
    }
}

void
Crossbar::nocTick()
{
    ++nocCycle_;

    // Land packets that finished switch traversal + pipeline.
    for (std::size_t i = 0; i < inTransit_.size();) {
        if (inTransit_[i].first <= nocCycle_) {
            Packet pkt = std::move(inTransit_[i].second);
            inTransit_[i] = std::move(inTransit_.back());
            inTransit_.pop_back();
            --outReserved_[pkt.dst];
            ++delivered_;
            flits_ += pkt.flits;
            outputFlits_[pkt.dst] += pkt.flits;
            latencySum_ += nocCycle_ - pkt.injectedAt;
            DCL1_CHECK_ONLY({
                ++chkDeliveredPkts_;
                chkDeliveredFlits_ += pkt.flits;
            });
            outQ_[pkt.dst].push_back(std::move(pkt));
        } else {
            ++i;
        }
    }

    allocate();

#if DCL1_CHECK_ENABLED
    // Full-state audit is O(inputs * outputs); amortize it.
    if ((nocCycle_ & 63) == 0)
        checkInvariants();
#endif
}

void
Crossbar::allocate()
{
    // --- single-iteration iSLIP ---
    // Grant phase: each free output grants one requesting, free input.
    // (input, output) pairs; small, bounded by numOutputs.
    std::array<std::pair<std::uint32_t, std::uint32_t>, 128> grants;
    std::uint32_t num_grants = 0;

    for (std::uint32_t out = 0; out < params_.numOutputs; ++out) {
        if (outputFreeAt_[out] > nocCycle_) {
            ++dbgOutBusy;
            continue;
        }
        // Backpressure: don't start a transfer that could overflow the
        // output queue.
        if (outQ_[out].size() + outReserved_[out] >= params_.outputQueueCap) {
            ++dbgOutQFull;
            continue;
        }
        const auto &bits = reqBits_[out];
        // Find the first requesting *and currently free* input at or
        // after the grant pointer.
        std::uint32_t granted = params_.numInputs;
        for (std::uint32_t off = 0; off < params_.numInputs; ++off) {
            const std::uint32_t in =
                (grantPtr_[out] + off) % params_.numInputs;
            if (!(bits[in / 64] & (1ull << (in % 64))))
                continue;
            if (inputFreeAt_[in] > nocCycle_)
                continue;
            granted = in;
            break;
        }
        if (granted < params_.numInputs) {
            grants[num_grants++] = {granted, out};
            ++dbgGrants;
        } else {
            bool any = bits[0] || bits[1];
            if (any)
                ++dbgNoFreeInput;
            else
                ++dbgNoRequest;
        }
    }

    // Accept phase: each input accepts at most one grant (RR pointer).
    for (std::uint32_t in = 0; in < params_.numInputs; ++in) {
        std::uint32_t best_out = params_.numOutputs;
        std::uint32_t best_dist = params_.numOutputs;
        for (std::uint32_t g = 0; g < num_grants; ++g) {
            if (grants[g].first != in)
                continue;
            const std::uint32_t out = grants[g].second;
            const std::uint32_t dist =
                (out + params_.numOutputs - acceptPtr_[in]) %
                params_.numOutputs;
            if (dist < best_dist) {
                best_dist = dist;
                best_out = out;
            }
        }
        if (best_out == params_.numOutputs)
            continue;

        // Start the transfer.
        auto &q = voq_[voqIndex(in, best_out)];
        Packet pkt = std::move(q.front());
        q.pop_front();
        if (q.empty())
            reqBits_[best_out][in / 64] &= ~(1ull << (in % 64));
        --inputOcc_[in];

        const Cycle busy = pkt.flits;
        inputFreeAt_[in] = nocCycle_ + busy;
        outputFreeAt_[best_out] = nocCycle_ + busy;
        ++outReserved_[best_out];
        inTransit_.emplace_back(
            nocCycle_ + busy + params_.routerLatency, std::move(pkt));

        ++dbgAccepts;

        // iSLIP pointer updates on successful match.
        grantPtr_[best_out] = (in + 1) % params_.numInputs;
        acceptPtr_[in] = (best_out + 1) % params_.numOutputs;
    }
}

std::array<std::uint64_t, 4>
Crossbar::dbgVoqState() const
{
    std::uint64_t sum_voq = 0, sum_occ = 0, nonempty = 0, bits_set = 0;
    for (const auto &q : voq_) {
        sum_voq += q.size();
        if (!q.empty())
            ++nonempty;
    }
    for (auto occ : inputOcc_)
        sum_occ += occ;
    for (const auto &b : reqBits_)
        bits_set += __builtin_popcountll(b[0]) + __builtin_popcountll(b[1]);
    return {sum_voq, sum_occ, nonempty, bits_set};
}

std::size_t
Crossbar::pendingPackets() const
{
    std::size_t pending = inTransit_.size();
    for (const auto occ : inputOcc_)
        pending += occ;
    for (const auto &q : outQ_)
        pending += q.size();
    return pending;
}

void
Crossbar::checkInvariants() const
{
#if DCL1_CHECK_ENABLED
    // Per-input credit accounting vs. actual VOQ occupancy, and
    // request bits exactly mirroring VOQ non-emptiness.
    for (std::uint32_t in = 0; in < params_.numInputs; ++in) {
        std::size_t occ = 0;
        for (std::uint32_t out = 0; out < params_.numOutputs; ++out) {
            const auto &q = voq_[voqIndex(in, out)];
            occ += q.size();
            const bool bit =
                (reqBits_[out][in / 64] >> (in % 64)) & 1ull;
            if (bit != !q.empty())
                panic("Crossbar %s: request bit %u->%u is %d but VOQ "
                      "holds %zu packets",
                      params_.name.c_str(), in, out, int(bit), q.size());
        }
        if (occ != inputOcc_[in])
            panic("Crossbar %s: input %u credit count %u != VOQ "
                  "occupancy %zu",
                  params_.name.c_str(), in, inputOcc_[in], occ);
        if (occ > params_.inputQueueCap)
            panic("Crossbar %s: input %u over capacity (%zu > %u)",
                  params_.name.c_str(), in, occ, params_.inputQueueCap);
    }

    // Output reservations vs. in-transit packets, and bounded output
    // queues (a reservation is a credit for a future outQ slot).
    std::vector<std::uint32_t> transit(params_.numOutputs, 0);
    std::uint64_t transit_flits = 0;
    for (const auto &t : inTransit_) {
        ++transit[t.second.dst];
        transit_flits += t.second.flits;
    }
    for (std::uint32_t out = 0; out < params_.numOutputs; ++out) {
        if (transit[out] != outReserved_[out])
            panic("Crossbar %s: output %u reservations %u != in-transit "
                  "packets %u",
                  params_.name.c_str(), out, outReserved_[out],
                  transit[out]);
        if (outQ_[out].size() + outReserved_[out] >
            params_.outputQueueCap)
            panic("Crossbar %s: output %u overcommitted (%zu queued + "
                  "%u reserved > cap %u)",
                  params_.name.c_str(), out, outQ_[out].size(),
                  outReserved_[out], params_.outputQueueCap);
    }

    // Conservation: every packet/flit ever injected is delivered or
    // still buffered or traversing (flits in == flits out per crossing).
    std::uint64_t voq_flits = 0;
    std::uint64_t voq_pkts = 0;
    for (const auto &q : voq_) {
        voq_pkts += q.size();
        for (const auto &p : q)
            voq_flits += p.flits;
    }
    if (chkInjectedPkts_ !=
        chkDeliveredPkts_ + voq_pkts + inTransit_.size())
        panic("Crossbar %s: packet conservation broken (%llu injected, "
              "%llu delivered, %llu buffered, %zu in transit)",
              params_.name.c_str(),
              static_cast<unsigned long long>(chkInjectedPkts_),
              static_cast<unsigned long long>(chkDeliveredPkts_),
              static_cast<unsigned long long>(voq_pkts),
              inTransit_.size());
    if (chkInjectedFlits_ !=
        chkDeliveredFlits_ + voq_flits + transit_flits)
        panic("Crossbar %s: flit conservation broken (%llu injected, "
              "%llu delivered, %llu buffered, %llu in transit)",
              params_.name.c_str(),
              static_cast<unsigned long long>(chkInjectedFlits_),
              static_cast<unsigned long long>(chkDeliveredFlits_),
              static_cast<unsigned long long>(voq_flits),
              static_cast<unsigned long long>(transit_flits));

    // Delivered packets either left through eject() or still wait in
    // an output queue.
    std::size_t outq_pkts = 0;
    for (const auto &q : outQ_)
        outq_pkts += q.size();
    if (chkDeliveredPkts_ != chkEjectedPkts_ + outq_pkts)
        panic("Crossbar %s: output-queue conservation broken "
              "(%llu delivered, %llu ejected, %zu queued)",
              params_.name.c_str(),
              static_cast<unsigned long long>(chkDeliveredPkts_),
              static_cast<unsigned long long>(chkEjectedPkts_),
              outq_pkts);
#endif // DCL1_CHECK_ENABLED
}

bool
Crossbar::busy() const
{
    if (!inTransit_.empty())
        return true;
    for (const auto &occ : inputOcc_)
        if (occ)
            return true;
    for (const auto &q : outQ_)
        if (!q.empty())
            return true;
    return false;
}

std::uint64_t
Crossbar::outputFlits(std::uint32_t output) const
{
    return outputFlits_[output];
}

double
Crossbar::outputUtilization(std::uint32_t output) const
{
    const Cycle cycles = nocCycle_ - statStartCycle_;
    return cycles ? double(outputFlits_[output]) / double(cycles) : 0.0;
}

double
Crossbar::avgPacketLatency() const
{
    const auto n = delivered_.value();
    return n ? double(latencySum_.value()) / double(n) : 0.0;
}

void
Crossbar::resetStats()
{
    delivered_.reset();
    flits_.reset();
    latencySum_.reset();
    std::fill(outputFlits_.begin(), outputFlits_.end(), 0);
    statStartCycle_ = nocCycle_;
}

} // namespace dcl1::noc
