/**
 * @file
 * Hierarchical two-stage crossbar network (CDXBar, after Zhao et al.
 * [10], [20]) used in the paper's Figure 19a sensitivity study.
 *
 * Request direction (Concentrate): Z local N*K crossbars concentrate
 * core traffic onto Z*K trunk links feeding one (Z*K) x M global
 * crossbar. Reply direction (Distribute) mirrors it: one M x (Z*K)
 * global crossbar fans out to Z local K*N crossbars. Stage clock
 * ratios are independent so the paper's CDXBar+2xNoC1 (local stage
 * doubled) and CDXBar+2xNoC (both doubled) variants can be modelled.
 */

#ifndef DCL1_NOC_CDXBAR_HH
#define DCL1_NOC_CDXBAR_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "noc/crossbar.hh"
#include "noc/packet.hh"

namespace dcl1::noc
{

/** Traffic direction through the hierarchy. */
enum class CdxDirection { Concentrate, Distribute };

/** Geometry of a CdXbarNet. */
struct CdxParams
{
    std::string name = "cdxbar";
    CdxDirection direction = CdxDirection::Concentrate;
    std::uint32_t clusters = 10;     ///< Z
    std::uint32_t perCluster = 8;    ///< N endpoints per local crossbar
    std::uint32_t trunksPerCluster = 4; ///< K
    std::uint32_t globalPorts = 32;  ///< M (far-side port count)
    double localClockRatio = 0.5;
    double globalClockRatio = 0.5;
    std::uint32_t inputQueueCap = 16;
    std::uint32_t outputQueueCap = 4;
    std::uint32_t routerLatency = 2;
};

/** See file comment. */
class CdXbarNet
{
  public:
    explicit CdXbarNet(const CdxParams &params);

    /** Number of near-side endpoints (cores). */
    std::uint32_t numNear() const;
    /** Number of far-side endpoints (L2 slices). */
    std::uint32_t numFar() const { return params_.globalPorts; }

    /**
     * Can endpoint @p src inject? For Concentrate, src is a near-side
     * (core) index; for Distribute a far-side (slice) index.
     */
    bool canInject(std::uint32_t src) const;

    /** Inject a request/reply from @p src to @p dst. */
    void inject(std::uint32_t src, std::uint32_t dst,
                mem::MemRequestPtr req, std::uint32_t flits);

    /** Pop a delivered packet at destination endpoint @p dst. */
    std::optional<mem::MemRequestPtr> eject(std::uint32_t dst);

    /** Advance one core cycle (both stages + inter-stage glue). */
    void tick();

    bool busy() const;

    const CdxParams &params() const { return params_; }
    Crossbar &globalXbar() { return *global_; }
    std::vector<std::unique_ptr<Crossbar>> &localXbars() { return locals_; }

    void resetStats();

    /** Packets buffered or in flight anywhere in either stage. */
    std::size_t pendingPackets() const;

    /**
     * Verify end-to-end conservation across the two stages
     * (DCL1_CHECK builds): every packet injected into the net was
     * either ejected or is still inside one of the crossbars.
     * panic()s on violation. Each member crossbar additionally runs
     * its own internal audit on its own cadence.
     */
    void checkInvariants() const;

  private:
    CdxParams params_;
    std::vector<std::unique_ptr<Crossbar>> locals_; ///< Z local xbars
    std::unique_ptr<Crossbar> global_;

    Cycle tickCount_ = 0;

    /// @name Net-level conservation counters (DCL1_CHECK)
    /// @{
    std::uint64_t chkInjectedPkts_ = 0;
    std::uint64_t chkEjectedPkts_ = 0;
    /// @}
};

} // namespace dcl1::noc

#endif // DCL1_NOC_CDXBAR_HH
