/**
 * @file
 * Flit-level crossbar switch with virtual output queues and a
 * single-iteration iSLIP allocator.
 *
 * Each input holds one VOQ per output. Every NoC cycle the allocator
 * matches free inputs to free outputs (request/grant/accept with
 * rotating priorities); a matched packet then occupies its input and
 * output ports for `flits` NoC cycles and appears in the output queue
 * after the router pipeline latency. The crossbar runs at a rational
 * ratio of the core clock (0.5 at the platform's 700 MHz; 1.0 when the
 * paper's *Boost* doubles NoC#1 frequency).
 */

#ifndef DCL1_NOC_CROSSBAR_HH
#define DCL1_NOC_CROSSBAR_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/packet.hh"
#include "stats/stats.hh"

namespace dcl1::noc
{

/** Static configuration of a crossbar. */
struct XbarParams
{
    std::string name = "xbar";
    std::uint32_t numInputs = 1;
    std::uint32_t numOutputs = 1;
    std::uint32_t inputQueueCap = 16; ///< packets buffered per input
    std::uint32_t outputQueueCap = 4; ///< packets buffered per output
    std::uint32_t routerLatency = 2;  ///< pipeline depth, NoC cycles
    double clockRatio = 0.5;          ///< NoC cycles per core cycle
};

/** See file comment. */
class Crossbar
{
  public:
    explicit Crossbar(const XbarParams &params);

    /** Room for another packet at @p input? */
    bool canInject(std::uint32_t input) const;

    /** Inject @p pkt (pkt.src/pkt.dst must be set; checked). */
    void inject(Packet pkt);

    /** Pop a delivered packet at @p output, if any. */
    std::optional<Packet> eject(std::uint32_t output);

    /** Peek whether @p output has a delivered packet. */
    bool hasEjectable(std::uint32_t output) const;

    /** Advance one *core* cycle (internally ticks on the clock ratio). */
    void tick();

    /** Any buffered or in-flight packets? */
    bool busy() const;

    const XbarParams &params() const { return params_; }
    Cycle nocCycles() const { return nocCycle_; }

    /// @name Statistics
    /// @{
    stats::StatGroup &statGroup() { return statGroup_; }
    std::uint64_t packetsDelivered() const { return delivered_.value(); }
    std::uint64_t totalFlits() const { return flits_.value(); }
    /** Flits delivered through @p output (for link utilization). */
    std::uint64_t outputFlits(std::uint32_t output) const;
    std::uint32_t inputOccupancy(std::uint32_t input) const
    {
        return inputOcc_[input];
    }
    std::size_t outQueueSize(std::uint32_t output) const
    {
        return outQ_[output].size();
    }
    /** Utilization of @p output's link: busy NoC cycles / NoC cycles. */
    double outputUtilization(std::uint32_t output) const;
    /** Mean in-network latency in NoC cycles. */
    double avgPacketLatency() const;
    void resetStats();
    /// @}

    /// @name Allocator debug counters (per nocTick sums)
    /// @{
    std::uint64_t dbgOutBusy = 0;
    std::uint64_t dbgOutQFull = 0;
    std::uint64_t dbgNoRequest = 0;
    std::uint64_t dbgNoFreeInput = 0;
    std::uint64_t dbgGrants = 0;
    std::uint64_t dbgAccepts = 0;
    /** Consistency probe: {sum voq sizes, sum inputOcc, nonempty voqs,
     *  set request bits}. */
    std::array<std::uint64_t, 4> dbgVoqState() const;
    /// @}

    /** Packets buffered or in flight anywhere inside the switch. */
    std::size_t pendingPackets() const;

    /**
     * Verify internal bookkeeping (DCL1_CHECK builds): VOQ occupancy
     * vs. per-input credits, request-bit consistency, per-output
     * reservations vs. in-transit packets, output-queue bounds, and
     * packet/flit conservation (everything injected is either
     * delivered or still inside). panic()s on violation.
     */
    void checkInvariants() const;

  private:
    void nocTick();
    void allocate();

    std::size_t voqIndex(std::uint32_t in, std::uint32_t out) const
    {
        return std::size_t(in) * params_.numOutputs + out;
    }

    XbarParams params_;

    std::vector<std::deque<Packet>> voq_;       ///< I*O queues
    std::vector<std::uint32_t> inputOcc_;       ///< packets per input
    std::vector<std::array<std::uint64_t, 2>> reqBits_; ///< per output
    std::vector<std::uint32_t> grantPtr_;       ///< per output (iSLIP)
    std::vector<std::uint32_t> acceptPtr_;      ///< per input (iSLIP)
    std::vector<Cycle> inputFreeAt_;            ///< NoC cycles
    std::vector<Cycle> outputFreeAt_;
    std::vector<std::uint32_t> outReserved_;    ///< in-transit per output

    /** Packets traversing the switch: ready NoC cycle + packet. */
    std::vector<std::pair<Cycle, Packet>> inTransit_;

    std::vector<std::deque<Packet>> outQ_;

    Cycle nocCycle_ = 0;
    double phase_ = 0.0;

    stats::StatGroup statGroup_;
    stats::Scalar delivered_;
    stats::Scalar flits_;
    stats::Scalar latencySum_;
    std::vector<std::uint64_t> outputFlits_;
    Cycle statStartCycle_ = 0;

    /// @name Conservation counters (DCL1_CHECK; never stat-reset)
    /// @{
    std::uint64_t chkInjectedPkts_ = 0;
    std::uint64_t chkInjectedFlits_ = 0;
    std::uint64_t chkDeliveredPkts_ = 0;
    std::uint64_t chkDeliveredFlits_ = 0;
    std::uint64_t chkEjectedPkts_ = 0;
    /// @}
};

} // namespace dcl1::noc

#endif // DCL1_NOC_CROSSBAR_HH
