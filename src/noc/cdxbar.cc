#include "noc/cdxbar.hh"

#include "check/check.hh"
#include "common/log.hh"

namespace dcl1::noc
{

CdXbarNet::CdXbarNet(const CdxParams &params) : params_(params)
{
    if (params.clusters == 0 || params.perCluster == 0 ||
        params.trunksPerCluster == 0 || params.globalPorts == 0) {
        fatal("CdXbarNet %s: all geometry fields must be nonzero",
              params.name.c_str());
    }

    const bool conc = params.direction == CdxDirection::Concentrate;
    for (std::uint32_t z = 0; z < params.clusters; ++z) {
        XbarParams xp;
        xp.name = params.name + ".local" + std::to_string(z);
        xp.numInputs = conc ? params.perCluster : params.trunksPerCluster;
        xp.numOutputs = conc ? params.trunksPerCluster : params.perCluster;
        xp.inputQueueCap = params.inputQueueCap;
        xp.outputQueueCap = params.outputQueueCap;
        xp.routerLatency = params.routerLatency;
        xp.clockRatio = params.localClockRatio;
        locals_.push_back(std::make_unique<Crossbar>(xp));
    }

    XbarParams gp;
    gp.name = params.name + ".global";
    const std::uint32_t trunks = params.clusters * params.trunksPerCluster;
    gp.numInputs = conc ? trunks : params.globalPorts;
    gp.numOutputs = conc ? params.globalPorts : trunks;
    gp.inputQueueCap = params.inputQueueCap;
    gp.outputQueueCap = params.outputQueueCap;
    gp.routerLatency = params.routerLatency;
    gp.clockRatio = params.globalClockRatio;
    global_ = std::make_unique<Crossbar>(gp);
}

std::uint32_t
CdXbarNet::numNear() const
{
    return params_.clusters * params_.perCluster;
}

bool
CdXbarNet::canInject(std::uint32_t src) const
{
    if (params_.direction == CdxDirection::Concentrate) {
        return locals_[src / params_.perCluster]->canInject(
            src % params_.perCluster);
    }
    return global_->canInject(src);
}

void
CdXbarNet::inject(std::uint32_t src, std::uint32_t dst,
                  mem::MemRequestPtr req, std::uint32_t flits)
{
    Packet pkt;
    pkt.flits = flits;
    pkt.endpoint = dst;
    pkt.req = std::move(req);
    DCL1_CHECK_ONLY(++chkInjectedPkts_);

    if (params_.direction == CdxDirection::Concentrate) {
        // Core -> local crossbar; trunk chosen by final destination so
        // traffic to different slices spreads over the K trunks.
        pkt.src = src % params_.perCluster;
        pkt.dst = dst % params_.trunksPerCluster;
        locals_[src / params_.perCluster]->inject(std::move(pkt));
    } else {
        // Slice -> global crossbar; trunk of the destination cluster
        // chosen by destination index for spread.
        const std::uint32_t cluster = dst / params_.perCluster;
        pkt.src = src;
        pkt.dst = cluster * params_.trunksPerCluster +
                  (dst % params_.trunksPerCluster);
        global_->inject(std::move(pkt));
    }
}

std::optional<mem::MemRequestPtr>
CdXbarNet::eject(std::uint32_t dst)
{
    std::optional<Packet> pkt;
    if (params_.direction == CdxDirection::Concentrate)
        pkt = global_->eject(dst);
    else
        pkt = locals_[dst / params_.perCluster]->eject(
            dst % params_.perCluster);
    if (!pkt)
        return std::nullopt;
    DCL1_CHECK_ONLY(++chkEjectedPkts_);
    return std::move(pkt->req);
}

void
CdXbarNet::tick()
{
    for (auto &local : locals_)
        local->tick();
    global_->tick();

#if DCL1_CHECK_ENABLED
    if ((++tickCount_ & 63) == 0)
        checkInvariants();
#endif

    // Inter-stage glue: move packets that finished one stage into the
    // next, respecting input-queue backpressure.
    if (params_.direction == CdxDirection::Concentrate) {
        for (std::uint32_t z = 0; z < params_.clusters; ++z) {
            for (std::uint32_t k = 0; k < params_.trunksPerCluster; ++k) {
                const std::uint32_t trunk =
                    z * params_.trunksPerCluster + k;
                while (locals_[z]->hasEjectable(k) &&
                       global_->canInject(trunk)) {
                    Packet pkt = *locals_[z]->eject(k);
                    pkt.src = trunk;
                    pkt.dst = pkt.endpoint;
                    global_->inject(std::move(pkt));
                }
            }
        }
    } else {
        for (std::uint32_t z = 0; z < params_.clusters; ++z) {
            for (std::uint32_t k = 0; k < params_.trunksPerCluster; ++k) {
                const std::uint32_t trunk =
                    z * params_.trunksPerCluster + k;
                while (global_->hasEjectable(trunk) &&
                       locals_[z]->canInject(k)) {
                    Packet pkt = *global_->eject(trunk);
                    pkt.src = k;
                    pkt.dst = pkt.endpoint % params_.perCluster;
                    locals_[z]->inject(std::move(pkt));
                }
            }
        }
    }
}

bool
CdXbarNet::busy() const
{
    if (global_->busy())
        return true;
    for (const auto &local : locals_)
        if (local->busy())
            return true;
    return false;
}

std::size_t
CdXbarNet::pendingPackets() const
{
    std::size_t pending = global_->pendingPackets();
    for (const auto &local : locals_)
        pending += local->pendingPackets();
    return pending;
}

void
CdXbarNet::checkInvariants() const
{
#if DCL1_CHECK_ENABLED
    const std::size_t inside = pendingPackets();
    if (chkInjectedPkts_ != chkEjectedPkts_ + inside)
        panic("CdXbarNet %s: packet conservation broken "
              "(%llu injected, %llu ejected, %zu inside)",
              params_.name.c_str(),
              static_cast<unsigned long long>(chkInjectedPkts_),
              static_cast<unsigned long long>(chkEjectedPkts_), inside);
#endif // DCL1_CHECK_ENABLED
}

void
CdXbarNet::resetStats()
{
    global_->resetStats();
    for (auto &local : locals_)
        local->resetStats();
}

} // namespace dcl1::noc
