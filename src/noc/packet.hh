/**
 * @file
 * NoC packet: a memory transaction plus its serialization cost in flits.
 *
 * The platform uses 32 B flits (Table II). Control-only packets (read
 * requests, write ACKs) are one flit; data-carrying packets add one
 * flit per 32 B of payload, so a full 128 B line reply serializes over
 * four flits — the source of the paper's "peak L1 bandwidth drop"
 * under DC-L1 designs.
 */

#ifndef DCL1_NOC_PACKET_HH
#define DCL1_NOC_PACKET_HH

#include <cstdint>

#include "common/bitutils.hh"
#include "common/types.hh"
#include "mem/request.hh"

namespace dcl1::noc
{

/** A packet in flight inside one crossbar. */
struct Packet
{
    std::uint32_t src = 0;  ///< input port of the current crossbar
    std::uint32_t dst = 0;  ///< output port of the current crossbar
    std::uint32_t flits = 1;
    Cycle injectedAt = 0;   ///< NoC cycle of injection (stats)

    /** Final endpoint for multi-stage networks. */
    std::uint32_t endpoint = 0;

    mem::MemRequestPtr req;
};

/** Serialization cost of a request on a network with @p flit_bytes. */
inline std::uint32_t
flitsFor(const mem::MemRequest &req,
         std::uint32_t flit_bytes = defaultFlitBytes)
{
    // One header/control flit; payload data rides in additional flits.
    if (req.payloadBytes == 0)
        return 1;
    return static_cast<std::uint32_t>(
        divCeil(req.payloadBytes, flit_bytes));
}

} // namespace dcl1::noc

#endif // DCL1_NOC_PACKET_HH
