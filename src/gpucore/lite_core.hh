/**
 * @file
 * Lite GPU core (compute unit) model.
 *
 * The core holds up to 48 resident wavefronts. Each cycle it issues one
 * instruction from a ready wavefront (round-robin): arithmetic
 * instructions retire immediately, memory instructions are coalesced
 * into line requests that drain through the LSU toward either the
 * core's private L1 (baseline) or the outbound queue toward NoC#1
 * (DC-L1 designs, the paper's "Lite Core" with no L1/MSHR). A
 * wavefront with outstanding read-class requests is descheduled until
 * all its replies arrive — this is the latency-hiding mechanism whose
 * effectiveness scales with occupancy and arithmetic intensity.
 */

#ifndef DCL1_GPUCORE_LITE_CORE_HH
#define DCL1_GPUCORE_LITE_CORE_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/cache_bank.hh"
#include "mem/queues.hh"
#include "mem/request.hh"
#include "stats/latency_attr.hh"
#include "stats/stats.hh"
#include "workload/workload.hh"

namespace dcl1::gpucore
{

/** Warp scheduling policy. */
enum class WarpSched : std::uint8_t
{
    LooseRoundRobin, ///< rotate over ready warps (GPGPU-Sim "lrr")
    GreedyThenOldest, ///< stick to one warp until it stalls ("gto")
};

/** Static configuration of a LiteCore. */
struct LiteCoreParams
{
    CoreId id = 0;
    WarpSched sched = WarpSched::LooseRoundRobin;
    std::uint32_t issueWidth = 1;
    std::uint32_t schedScanLimit = 8;  ///< warps examined per cycle
    std::uint32_t lsuQueueCap = 16;
    std::uint32_t outQueueCap = 8;
    std::uint32_t maxOutstandingWrites = 64;
    std::uint32_t lineBytes = defaultLineBytes;

    /** Baseline private-L1 mode; empty for DC-L1 "lite" mode. */
    bool hasL1 = false;
    mem::CacheBankParams l1;
};

/** See file comment. */
class LiteCore
{
  public:
    /**
     * @param params core configuration
     * @param source instruction stream generator (not owned; null
     *        builds an idle core that issues nothing until
     *        bindSource() attaches a stream — the serving layer's
     *        starting state)
     * @param listener replication directory for the private L1 (may be
     *        null; only used when hasL1)
     */
    LiteCore(const LiteCoreParams &params, workload::TraceSource *source,
             mem::CacheListener *listener = nullptr);

    /** Advance one core cycle. */
    void tick(Cycle now);

    /// @name Mid-run workload binding (serving layer)
    /// @{
    /**
     * Attach a new instruction stream to an idle core: warp contexts
     * and the ready list are rebuilt from the new stream's
     * warpsPerCore(), and the per-binding instruction counter restarts
     * at zero. panic()s if the core still has in-flight work.
     */
    void bindSource(workload::TraceSource *source);

    /**
     * Stop fetching new instructions from the bound stream; in-flight
     * memory requests keep draining. The core reports !busy() once the
     * last reply lands, at which point unbindSource() is legal.
     */
    void closeSource();

    /** Detach the stream from a drained core (panic()s if busy). */
    void unbindSource();

    bool hasSource() const { return source_ != nullptr; }
    bool sourceClosed() const { return sourceClosed_; }

    /**
     * Instructions issued since the last bindSource() (or since
     * construction). Unlike the instructions stat this is never reset
     * by resetStats() — it is the job-completion odometer.
     */
    std::uint64_t sourceInstructions() const
    {
        return bindingInstructions_;
    }
    /// @}

    /** Gate instruction issue (used by GpuSystem::drain). */
    void setIssueEnabled(bool enabled) { issueEnabled_ = enabled; }

    /**
     * Attach the system's latency-attribution sampler (null to
     * detach). The core is where requests are born and retire, so it
     * owns both attribution endpoints.
     */
    void setTelemetry(stats::LatencyAttribution *tlm) { tlm_ = tlm; }

    /// @name NoC-facing side
    /// @{
    /** Pop a request bound for the interconnect. */
    std::optional<mem::MemRequestPtr> takeOutbound();
    bool hasOutbound() const { return !outbound_.empty(); }
    /** Deliver a reply from the interconnect. */
    void deliverReply(mem::MemRequestPtr reply, Cycle now);
    /// @}

    /** Outstanding work (for drain checks)? */
    bool busy() const;

    CoreId id() const { return params_.id; }
    mem::CacheBank *l1() { return l1_.get(); }
    const mem::CacheBank *l1() const { return l1_.get(); }

    /// @name Statistics
    /// @{
    stats::StatGroup &statGroup() { return statGroup_; }
    std::uint64_t instructions() const { return instructions_.value(); }
    std::uint64_t memInstructions() const { return memInstrs_.value(); }
    std::uint64_t l1Accesses() const
    {
        return l1_ ? l1_->accesses() : 0;
    }
    /** Mean core->reply round-trip latency of read-class requests. */
    double avgReadLatency() const;
    std::size_t lsuSize() const { return lsu_.size(); }
    std::size_t outboundSize() const { return outbound_.size(); }
    std::size_t readyWarpCount() const { return readyWarps_.size(); }
    std::uint64_t outstandingReads() const { return outstandingReads_; }
    std::uint64_t readLatencySum() const { return readLatencySum_.value(); }
    std::uint64_t readsCompleted() const { return readsCompleted_.value(); }
    /** Mean cycles from coalescer to first (DC-)L1 service. */
    double
    avgPreServiceLatency() const
    {
        const auto n = readsCompleted_.value();
        return n ? double(preServiceSum_.value()) / double(n) : 0.0;
    }
    /// @}

  private:
    void issue(Cycle now);
    void drainLsu(Cycle now);
    void pumpL1(Cycle now);
    void wakeWarp(WarpId warp);

    struct WarpCtx
    {
        std::uint32_t pendingReads = 0;
        bool hasStashedInstr = false;
        workload::WarpInstr stashed;
    };

    LiteCoreParams params_;
    workload::TraceSource *source_;

    std::uint32_t numWarps_;
    std::vector<WarpCtx> warps_;
    std::deque<WarpId> readyWarps_;

    mem::BoundedQueue<mem::MemRequestPtr> lsu_;
    mem::BoundedQueue<mem::MemRequestPtr> outbound_;
    std::unique_ptr<mem::CacheBank> l1_;

    std::uint32_t outstandingWrites_ = 0;
    std::uint64_t outstandingReads_ = 0;
    bool issueEnabled_ = true;
    bool sourceClosed_ = false;
    std::uint64_t bindingInstructions_ = 0;
    stats::LatencyAttribution *tlm_ = nullptr;

    stats::StatGroup statGroup_;
    stats::Scalar instructions_;
    stats::Scalar memInstrs_;
    stats::Scalar arithInstrs_;
    stats::Scalar lsuStalls_;
    stats::Scalar noWarpCycles_;
    stats::Scalar readLatencySum_;
    stats::Scalar readsCompleted_;
    stats::Scalar preServiceSum_;
};

} // namespace dcl1::gpucore

#endif // DCL1_GPUCORE_LITE_CORE_HH
