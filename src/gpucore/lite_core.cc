#include "gpucore/lite_core.hh"

#include "check/check.hh"
#include "check/request_ledger.hh"
#include "common/log.hh"

namespace dcl1::gpucore
{

LiteCore::LiteCore(const LiteCoreParams &params,
                   workload::TraceSource *source,
                   mem::CacheListener *listener)
    : params_(params), source_(source), lsu_(params.lsuQueueCap),
      outbound_(params.outQueueCap),
      statGroup_("core" + std::to_string(params.id))
{
    // A null source builds an idle core (serving layer); bindSource()
    // attaches the first stream later.
    numWarps_ = source ? source->warpsPerCore(params.id) : 0;
    warps_.resize(numWarps_);
    for (WarpId w = 0; w < numWarps_; ++w)
        readyWarps_.push_back(w);

    if (params.hasL1) {
        mem::CacheBankParams l1p = params.l1;
        l1p.name = "l1";
        l1_ = std::make_unique<mem::CacheBank>(l1p, params.id, listener);
        statGroup_.addChild(&l1_->statGroup());
    }

    statGroup_.addScalar("instructions", &instructions_);
    statGroup_.addScalar("mem_instructions", &memInstrs_);
    statGroup_.addScalar("arith_instructions", &arithInstrs_);
    statGroup_.addScalar("lsu_stalls", &lsuStalls_);
    statGroup_.addScalar("no_warp_cycles", &noWarpCycles_);
    statGroup_.addScalar("read_latency_sum", &readLatencySum_);
    statGroup_.addScalar("reads_completed", &readsCompleted_);
    statGroup_.addScalar("pre_service_sum", &preServiceSum_);
}

void
LiteCore::tick(Cycle now)
{
    if (l1_)
        pumpL1(now);
    drainLsu(now);
    issue(now);
}

void
LiteCore::bindSource(workload::TraceSource *source)
{
    if (!source)
        fatal("core %u: bindSource(null)", params_.id);
    if (busy())
        panic("core %u: binding a stream onto a busy core", params_.id);
    source_ = source;
    sourceClosed_ = false;
    bindingInstructions_ = 0;
    numWarps_ = source->warpsPerCore(params_.id);
    warps_.assign(numWarps_, WarpCtx{});
    readyWarps_.clear();
    for (WarpId w = 0; w < numWarps_; ++w)
        readyWarps_.push_back(w);
}

void
LiteCore::closeSource()
{
    sourceClosed_ = true;
    // Stashed instructions were never issued (and never counted):
    // dropping them keeps the per-binding odometer honest and frees
    // their warps from a fetch that will no longer happen.
    for (auto &ctx : warps_)
        ctx.hasStashedInstr = false;
}

void
LiteCore::unbindSource()
{
    if (busy())
        panic("core %u: unbinding a busy core", params_.id);
    source_ = nullptr;
    sourceClosed_ = false;
    numWarps_ = 0;
    warps_.clear();
    readyWarps_.clear();
}

void
LiteCore::issue(Cycle now)
{
    if (!issueEnabled_ || !source_ || sourceClosed_)
        return;
    std::uint32_t issued = 0;
    std::uint32_t scanned = 0;

    while (issued < params_.issueWidth &&
           scanned < params_.schedScanLimit && !readyWarps_.empty()) {
        ++scanned;
        const WarpId w = readyWarps_.front();
        readyWarps_.pop_front();
        WarpCtx &ctx = warps_[w];

        workload::WarpInstr instr;
        if (ctx.hasStashedInstr) {
            instr = ctx.stashed;
        } else {
            source_->nextInstr(params_.id, w, now, instr);
        }

        if (!instr.isMem) {
            ++instructions_;
            ++bindingInstructions_;
            ++arithInstrs_;
            ++issued;
            ctx.hasStashedInstr = false;
            // GTO keeps issuing from the same warp until it stalls;
            // loose round-robin rotates.
            if (params_.sched == WarpSched::GreedyThenOldest)
                readyWarps_.push_front(w);
            else
                readyWarps_.push_back(w);
            continue;
        }

        // Check LSU space and the store-buffer bound for the whole
        // coalesced burst before committing anything.
        std::uint32_t reads = 0;
        std::uint32_t writes = 0;
        for (std::uint32_t i = 0; i < instr.numAccesses; ++i) {
            if (instr.accesses[i].op == mem::MemOp::Write)
                ++writes;
            else
                ++reads;
        }
        const bool lsu_ok =
            lsu_.size() + instr.numAccesses <= lsu_.capacity();
        const bool writes_ok =
            outstandingWrites_ + writes <= params_.maxOutstandingWrites;
        if (!lsu_ok || !writes_ok) {
            ++lsuStalls_;
            ctx.hasStashedInstr = true;
            ctx.stashed = instr;
            readyWarps_.push_back(w);
            continue;
        }

        ctx.hasStashedInstr = false;
        ++instructions_;
        ++bindingInstructions_;
        ++memInstrs_;
        ++issued;

        for (std::uint32_t i = 0; i < instr.numAccesses; ++i) {
            const auto &a = instr.accesses[i];
            auto req = mem::makeRequest(a.op, a.addr, a.bytes,
                                        params_.id, w, now);
            // Register with the lifecycle ledger at the injection
            // point: everything the machine does with this request
            // from here on is audited.
            DCL1_CHECK_ONLY(check::ledger().onCreate(*req, now));
            // Attribution samples read-class requests only: writes are
            // fire-and-forget and never enter readLatencySum.
            if (tlm_ && !req->isWrite())
                tlm_->onCreate(req->tlm, now);
            lsu_.push(std::move(req));
        }
        outstandingWrites_ += writes;
        ctx.pendingReads += reads;
        outstandingReads_ += reads;

        if (ctx.pendingReads == 0) {
            // Store-only instruction: the warp does not block.
            readyWarps_.push_back(w);
        }
    }

    if (readyWarps_.empty())
        ++noWarpCycles_;
}

void
LiteCore::drainLsu(Cycle now)
{
    std::uint32_t moved = 0;
    while (!lsu_.empty() && moved < 2) {
        mem::MemRequestPtr &head = lsu_.front();
        const bool to_l1 = l1_ && head->usesL1();
        if (to_l1) {
            // The L1 data port is single-issue per cycle; access()
            // leaves the head in place when structurally blocked.
            if (!l1_->canAccept(now))
                break;
            mem::AccessOutcome outcome = l1_->access(head, now);
            if (outcome == mem::AccessOutcome::Blocked)
                break;
            lsu_.pop();
            ++moved;
            break;
        }
        // Atomic / bypass in baseline mode, or everything in DC-L1
        // ("lite") mode, heads for the interconnect.
        if (!outbound_.canPush())
            break;
        outbound_.push(lsu_.pop());
        ++moved;
    }
}

void
LiteCore::pumpL1(Cycle now)
{
    // Completions: hits, filled misses, write ACKs.
    while (auto done = l1_->takeCompleted(now)) {
        mem::MemRequestPtr req = std::move(*done);
        DCL1_CHECK_ONLY(check::ledger().onRetire(*req));
        if (req->isWrite()) {
            if (outstandingWrites_ == 0)
                panic("core %u: write ACK underflow", params_.id);
            --outstandingWrites_;
            continue;
        }
        if (tlm_)
            tlm_->onRetire(req->tlm, now);
        readLatencySum_ += now - req->createdAt;
        preServiceSum_ += req->l1ServiceAt - req->createdAt;
        ++readsCompleted_;
        wakeWarp(req->warp);
    }

    // Misses / write-throughs head to the interconnect.
    while (l1_->hasDownstream() && outbound_.canPush()) {
        auto req = l1_->takeDownstream();
        if (!req)
            break;
        outbound_.push(std::move(*req));
    }
}

void
LiteCore::wakeWarp(WarpId warp)
{
    WarpCtx &ctx = warps_[warp];
    if (ctx.pendingReads == 0)
        panic("core %u: waking warp %u with no pending reads",
              params_.id, warp);
    --ctx.pendingReads;
    --outstandingReads_;
    if (ctx.pendingReads != 0)
        return;
    if (params_.sched == WarpSched::GreedyThenOldest) {
        // Keep the ready list ordered by warp id ("oldest" warp first).
        auto it = readyWarps_.begin();
        while (it != readyWarps_.end() && *it < warp)
            ++it;
        readyWarps_.insert(it, warp);
    } else {
        readyWarps_.push_back(warp);
    }
}

std::optional<mem::MemRequestPtr>
LiteCore::takeOutbound()
{
    auto req = outbound_.tryPop();
    // The caller is the interconnect: from here the request is on the
    // wire (the crossbar's inject() self-transitions InNoc -> InNoc).
    DCL1_CHECK_ONLY({
        if (req)
            check::ledger().onTransition(**req, check::ReqStage::InNoc);
    });
    return req;
}

void
LiteCore::deliverReply(mem::MemRequestPtr reply, Cycle now)
{
    if (!reply->isReply)
        panic("core %u: delivered non-reply", params_.id);

    if (l1_ && reply->usesL1()) {
        // Baseline: read fetch fills the L1; write ACK completes there.
        l1_->fill(std::move(reply), now);
        return;
    }

    DCL1_CHECK_ONLY(check::ledger().onRetire(*reply));
    if (reply->isWrite()) {
        if (outstandingWrites_ == 0)
            panic("core %u: write ACK underflow", params_.id);
        --outstandingWrites_;
        return;
    }
    if (tlm_)
        tlm_->onRetire(reply->tlm, now);
    readLatencySum_ += now - reply->createdAt;
    if (reply->l1ServiceAt >= reply->createdAt)
        preServiceSum_ += reply->l1ServiceAt - reply->createdAt;
    ++readsCompleted_;
    wakeWarp(reply->warp);
}

bool
LiteCore::busy() const
{
    if (!lsu_.empty() || !outbound_.empty())
        return true;
    if (outstandingReads_ != 0 || outstandingWrites_ != 0)
        return true;
    if (l1_ && l1_->busy())
        return true;
    return false;
}

double
LiteCore::avgReadLatency() const
{
    const auto n = readsCompleted_.value();
    return n ? double(readLatencySum_.value()) / double(n) : 0.0;
}

} // namespace dcl1::gpucore
