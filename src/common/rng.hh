/**
 * @file
 * Deterministic, fast pseudo-random number generator (xoshiro256**).
 *
 * Simulation results must be reproducible across runs and platforms, so
 * all stochastic components draw from per-component Rng instances seeded
 * from the experiment seed; std::rand and std::mt19937 are avoided for
 * speed and cross-library stability.
 */

#ifndef DCL1_COMMON_RNG_HH
#define DCL1_COMMON_RNG_HH

#include <cstdint>

namespace dcl1
{

/** xoshiro256** generator with convenience draws. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (splitmix64-expanded). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style multiply-shift; bias is negligible for our bounds.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace dcl1

#endif // DCL1_COMMON_RNG_HH
