/**
 * @file
 * Clang thread-safety-analysis attribute macros.
 *
 * Under clang, `-Wthread-safety` turns these annotations into a
 * compile-time data-race discipline: every member that may be touched
 * from more than one thread names the mutex that protects it
 * (DCL1_GUARDED_BY), and every function that assumes or manipulates a
 * lock says so in its signature (DCL1_REQUIRES / DCL1_ACQUIRE /
 * DCL1_RELEASE / DCL1_EXCLUDES). The analysis then rejects any access
 * path that does not hold the right lock — races are build errors
 * instead of TSan findings. The CI clang lane builds with
 * `-Wthread-safety -Werror`; on GCC every macro expands to nothing,
 * so the annotations are zero-cost documentation there.
 *
 * libstdc++'s std::mutex carries no capability attributes, so the
 * analysis cannot see through it; use the annotated wrapper types in
 * common/mutex.hh (dcl1::Mutex / dcl1::MutexLock) for any lock the
 * analysis should track.
 *
 * Naming follows the Clang documentation
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
 * DCL1_ to keep the macro namespace honest.
 */

#ifndef DCL1_COMMON_THREAD_ANNOTATIONS_HH
#define DCL1_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && !defined(SWIG)
#define DCL1_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DCL1_THREAD_ANNOTATION__(x) // no-op on GCC/MSVC
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define DCL1_CAPABILITY(x) DCL1_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII class that acquires a capability in its constructor
 *  and releases it in its destructor. */
#define DCL1_SCOPED_CAPABILITY DCL1_THREAD_ANNOTATION__(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define DCL1_GUARDED_BY(x) DCL1_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define DCL1_PT_GUARDED_BY(x) DCL1_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function that must be called with the listed capabilities held. */
#define DCL1_REQUIRES(...)                                                  \
    DCL1_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Function that must be called with shared access to the listed
 *  capabilities. */
#define DCL1_REQUIRES_SHARED(...)                                           \
    DCL1_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities and does not release
 *  them before returning. */
#define DCL1_ACQUIRE(...)                                                   \
    DCL1_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define DCL1_RELEASE(...)                                                   \
    DCL1_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns @p result. */
#define DCL1_TRY_ACQUIRE(result, ...)                                       \
    DCL1_THREAD_ANNOTATION__(try_acquire_capability(result, __VA_ARGS__))

/** Function that must be called *without* the listed capabilities held
 *  (it takes them itself; calling with them held would deadlock). */
#define DCL1_EXCLUDES(...)                                                  \
    DCL1_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Declares a lock-ordering edge: this capability is acquired before
 *  the listed ones. */
#define DCL1_ACQUIRED_BEFORE(...)                                           \
    DCL1_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/** Declares a lock-ordering edge: this capability is acquired after
 *  the listed ones. */
#define DCL1_ACQUIRED_AFTER(...)                                            \
    DCL1_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/** Function returning a reference to the capability protecting the
 *  returned/named data (lets accessors expose their lock). */
#define DCL1_RETURN_CAPABILITY(x)                                           \
    DCL1_THREAD_ANNOTATION__(lock_returned(x))

/** Escape hatch: disable the analysis for one function. Reserve for
 *  audited cases the analysis cannot express (init/teardown paths). */
#define DCL1_NO_THREAD_SAFETY_ANALYSIS                                      \
    DCL1_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif // DCL1_COMMON_THREAD_ANNOTATIONS_HH
