/**
 * @file
 * Small bit-manipulation helpers shared across modules.
 */

#ifndef DCL1_COMMON_BITUTILS_HH
#define DCL1_COMMON_BITUTILS_HH

#include <cstdint>

namespace dcl1
{

/** @return true iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be nonzero. */
constexpr std::uint32_t
log2Floor(std::uint64_t v)
{
    std::uint32_t r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** @return ceil(log2(v)); v must be nonzero. */
constexpr std::uint32_t
log2Ceil(std::uint64_t v)
{
    return v <= 1 ? 0 : log2Floor(v - 1) + 1;
}

/** @return ceil(a / b) for b != 0. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace dcl1

#endif // DCL1_COMMON_BITUTILS_HH
