/**
 * @file
 * Fundamental scalar types and identifiers used throughout dcl1sim.
 *
 * The conventions follow the paper's Table II platform: 128 B cache
 * lines, 256 B L2 interleave chunks, 32 B NoC flits.
 */

#ifndef DCL1_COMMON_TYPES_HH
#define DCL1_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dcl1
{

/** Byte address in the simulated global address space. */
using Addr = std::uint64_t;

/** Cache-line index (Addr >> log2(lineBytes)). */
using LineAddr = std::uint64_t;

/** Simulation time in core-clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of a GPU core (compute unit). */
using CoreId = std::uint32_t;

/** Identifier of a DC-L1 node. */
using NodeId = std::uint32_t;

/** Identifier of an L2 slice. */
using SliceId = std::uint32_t;

/** Identifier of a wavefront within a core. */
using WarpId = std::uint32_t;

/** Sentinel for "no id". */
inline constexpr std::uint32_t invalidId =
    std::numeric_limits<std::uint32_t>::max();

/** Sentinel cycle meaning "never". */
inline constexpr Cycle cycleNever = std::numeric_limits<Cycle>::max();

/** Default line size (bytes) used across the hierarchy. */
inline constexpr std::uint32_t defaultLineBytes = 128;

/** Default NoC flit size (bytes). */
inline constexpr std::uint32_t defaultFlitBytes = 32;

/** Default L2 address-interleave chunk (bytes). */
inline constexpr std::uint32_t defaultChunkBytes = 256;

} // namespace dcl1

#endif // DCL1_COMMON_TYPES_HH
