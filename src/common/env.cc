#include "common/env.hh"

#include <cerrno>
#include <cstdlib>

#include "common/log.hh"

namespace dcl1
{

std::int64_t
parseEnvInt(const char *name, const char *text, std::int64_t min_value,
            std::int64_t max_value)
{
    if (text == nullptr || *text == '\0')
        fatal("%s: empty value (expected an integer)", name);
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text)
        fatal("%s: '%s' is not a number", name, text);
    if (*end != '\0')
        fatal("%s: trailing garbage in '%s' (parsed up to '%s')", name,
              text, end);
    if (errno == ERANGE)
        fatal("%s: '%s' does not fit in a 64-bit integer", name, text);
    if (v < min_value || v > max_value)
        fatal("%s: %lld out of range [%lld, %lld]", name, v,
              static_cast<long long>(min_value),
              static_cast<long long>(max_value));
    return v;
}

std::int64_t
envIntOr(const char *name, std::int64_t fallback, std::int64_t min_value,
         std::int64_t max_value)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return fallback;
    return parseEnvInt(name, text, min_value, max_value);
}

std::string
envStrOr(const char *name, const std::string &fallback)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return fallback;
    if (*text == '\0')
        fatal("%s: set but empty — unset it or give it a value", name);
    return text;
}

bool
envIsSet(const char *name)
{
    return std::getenv(name) != nullptr;
}

} // namespace dcl1
