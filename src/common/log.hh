/**
 * @file
 * Error / status reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits(1).
 * warn()   - something is modelled approximately; simulation continues.
 * inform() - status message with no negative connotation.
 */

#ifndef DCL1_COMMON_LOG_HH
#define DCL1_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace dcl1
{

/** Verbosity for inform(); warnings and errors always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Process-wide log level (default Normal). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** Abort with a printf-style message: simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a printf-style message: user/configuration error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr (suppressed when Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dcl1

#endif // DCL1_COMMON_LOG_HH
