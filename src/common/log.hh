/**
 * @file
 * Error / status reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits(1).
 * warn()   - something is modelled approximately; simulation continues.
 * inform() - status message with no negative connotation.
 */

#ifndef DCL1_COMMON_LOG_HH
#define DCL1_COMMON_LOG_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace dcl1
{

/**
 * Thrown by panic()/fatal() instead of terminating the process while a
 * SimErrorTrap is active on the calling thread. Carries the formatted
 * message; isPanic distinguishes simulator bugs from config errors.
 */
class SimAbort : public std::runtime_error
{
  public:
    SimAbort(const std::string &msg, bool is_panic)
        : std::runtime_error(msg), isPanic(is_panic)
    {
    }

    const bool isPanic;
};

/**
 * RAII guard converting panic()/fatal() on the *current thread* into
 * SimAbort exceptions for the guard's lifetime. The execution engine
 * arms one around each job so a poisoned simulation is captured as a
 * failed-job record instead of killing the whole sweep. Nests safely.
 */
class SimErrorTrap
{
  public:
    SimErrorTrap();
    ~SimErrorTrap();

    SimErrorTrap(const SimErrorTrap &) = delete;
    SimErrorTrap &operator=(const SimErrorTrap &) = delete;

    /** True when a trap is active on the calling thread. */
    static bool active();
};

/** Verbosity for inform(); warnings and errors always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Process-wide log level (default Normal). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/**
 * Abort with a printf-style message: simulator bug. Throws SimAbort
 * instead when a SimErrorTrap is active on the calling thread.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit(1) with a printf-style message: user/configuration error.
 * Throws SimAbort instead when a SimErrorTrap is active on the
 * calling thread.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr (suppressed when Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dcl1

#endif // DCL1_COMMON_LOG_HH
