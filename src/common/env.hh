/**
 * @file
 * Strict environment-variable parsing.
 *
 * Every knob the simulator reads from the environment must either
 * parse completely or stop the run: a silently misparsed DCL1_CYCLES
 * ("30k" -> 30) produces results that look plausible and are wrong,
 * which is worse than any crash.
 */

#ifndef DCL1_COMMON_ENV_HH
#define DCL1_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace dcl1
{

/**
 * Parse @p text (the value of environment variable @p name) as a
 * decimal integer in [@p min_value, @p max_value].
 *
 * fatal()s — naming @p name and echoing @p text — on empty input,
 * non-numeric input, trailing garbage, or an out-of-range value.
 */
std::int64_t parseEnvInt(const char *name, const char *text,
                         std::int64_t min_value, std::int64_t max_value);

/**
 * Read environment variable @p name; when set, strict-parse it as
 * above, otherwise return @p fallback.
 */
std::int64_t envIntOr(const char *name, std::int64_t fallback,
                      std::int64_t min_value, std::int64_t max_value);

/**
 * Read string-valued environment variable @p name; @p fallback when
 * unset. A set-but-empty variable fatal()s — an empty path/name is
 * always a typo (e.g. `DCL1_RUN_DIR= dcl1sweep ...`), and treating it
 * as "unset" would silently drop the durable-run behavior the user
 * asked for.
 *
 * This is the one sanctioned front door for string environment knobs:
 * lint rule R12 `unchecked-env` flags direct getenv() anywhere outside
 * this translation unit.
 */
std::string envStrOr(const char *name, const std::string &fallback);

/** True when @p name is set (to anything, including empty). */
bool envIsSet(const char *name);

} // namespace dcl1

#endif // DCL1_COMMON_ENV_HH
