#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dcl1
{

namespace
{

// Atomic: worker threads of the execution engine read the level while
// the main thread may (rarely) set it.
std::atomic<LogLevel> gLogLevel{LogLevel::Normal};

// Depth, not flag, so traps nest; thread-local because each execution
// worker traps only its own job's errors.
thread_local int gErrorTrapDepth = 0;

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // anonymous namespace

LogLevel
logLevel()
{
    return gLogLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    gLogLevel.store(level, std::memory_order_relaxed);
}

SimErrorTrap::SimErrorTrap()
{
    ++gErrorTrapDepth;
}

SimErrorTrap::~SimErrorTrap()
{
    --gErrorTrapDepth;
}

bool
SimErrorTrap::active()
{
    return gErrorTrapDepth > 0;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (SimErrorTrap::active())
        throw SimAbort("panic: " + msg, /*is_panic=*/true);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (SimErrorTrap::active())
        throw SimAbort("fatal: " + msg, /*is_panic=*/false);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (gLogLevel == LogLevel::Quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace dcl1
