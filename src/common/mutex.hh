/**
 * @file
 * Annotated mutex wrappers the thread-safety analysis can see.
 *
 * libstdc++'s std::mutex / std::lock_guard carry no capability
 * attributes, so clang's `-Wthread-safety` cannot reason about code
 * that uses them directly. dcl1::Mutex wraps std::mutex as a
 * DCL1_CAPABILITY and dcl1::MutexLock wraps the RAII guard as a
 * DCL1_SCOPED_CAPABILITY, which is all the analysis needs to verify
 * every DCL1_GUARDED_BY access. Both are zero-overhead shims — the
 * annotations compile to nothing and the calls inline away.
 *
 * Convention: any mutex whose protected state is named by a
 * DCL1_GUARDED_BY annotation must be a dcl1::Mutex, locked through
 * dcl1::MutexLock (or explicit lock()/unlock() on functions annotated
 * DCL1_ACQUIRE/DCL1_RELEASE). Raw std::mutex is reserved for code the
 * analysis never sees (none in src/ today).
 */

#ifndef DCL1_COMMON_MUTEX_HH
#define DCL1_COMMON_MUTEX_HH

#include <mutex>

#include "common/thread_annotations.hh"

namespace dcl1
{

/** std::mutex annotated as a thread-safety-analysis capability. */
class DCL1_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() DCL1_ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() DCL1_RELEASE()
    {
        mutex_.unlock();
    }

    bool
    tryLock() DCL1_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

  private:
    std::mutex mutex_;
};

/** Scoped lock over a dcl1::Mutex (annotated std::lock_guard). */
class DCL1_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) DCL1_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() DCL1_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

} // namespace dcl1

#endif // DCL1_COMMON_MUTEX_HH
