#include "mem/dram.hh"

#include <algorithm>

#include "check/check.hh"
#include "check/request_ledger.hh"
#include "common/log.hh"
#include "prof/prof.hh"

namespace dcl1::mem
{

DramChannel::DramChannel(const DramParams &params)
    : params_(params), banks_(params.numBanks), statGroup_(params.name)
{
    if (params.numBanks == 0 || params.queueCap == 0)
        fatal("DramChannel: banks/queue must be nonzero");
    statGroup_.addScalar("reads", &reads_);
    statGroup_.addScalar("writes", &writes_);
    statGroup_.addScalar("row_hits", &rowHits_);
    statGroup_.addScalar("row_misses", &rowMisses_);
    statGroup_.addScalar("bus_busy_cycles", &busBusy_);
}

std::uint64_t
DramChannel::localRow(Addr addr) const
{
    // Channel-local chunk index -> row of rowBytes owned data.
    const std::uint64_t local_chunk =
        addr / params_.chunkBytes / params_.numChannels;
    return local_chunk / (params_.rowBytes / params_.chunkBytes);
}

std::uint32_t
DramChannel::bankOf(Addr addr) const
{
    // Spread consecutive local rows across banks.
    return static_cast<std::uint32_t>(localRow(addr) % params_.numBanks);
}

std::uint64_t
DramChannel::rowOf(Addr addr) const
{
    return localRow(addr) / params_.numBanks;
}

void
DramChannel::push(MemRequestPtr req, Cycle now)
{
    if (!canAccept())
        panic("dram %s: push to full queue", params_.name.c_str());
    DCL1_CHECK_ONLY(
        check::ledger().onTransition(*req, check::ReqStage::AtDram));
    stats::tlmEnter(req->tlm, stats::Seg::Dram, now);
    queue_.push_back(Queued{std::move(req), now});
}

void
DramChannel::tick(Cycle now)
{
    DCL1_ASSERT(now >= lastTick_,
                "dram %s: clock ran backwards (%llu after %llu)",
                params_.name.c_str(),
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(lastTick_));
    DCL1_CHECK_ONLY(lastTick_ = now);
    if (queue_.empty()) {
        DCL1_PROF_COUNT(QuiescentDram, 1);
        return;
    }

    // FR-FCFS: oldest row-hit first, else oldest request whose bank is
    // ready to start a new row cycle.
    auto pick = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const Addr addr = it->req->addr;
        Bank &bank = banks_[bankOf(addr)];
        if (bank.readyAt > now)
            continue;
        if (bank.openRow == rowOf(addr)) {
            pick = it;
            break; // oldest row hit wins outright
        }
        if (pick == queue_.end())
            pick = it; // remember the oldest schedulable row miss
    }
    if (pick == queue_.end())
        return;

    MemRequestPtr req = std::move(pick->req);
    queue_.erase(pick);

    const Addr addr = req->addr;
    Bank &bank = banks_[bankOf(addr)];
    const std::uint64_t row = rowOf(addr);

    Cycle col_ready = now;
    if (bank.openRow == row) {
        ++rowHits_;
    } else {
        ++rowMisses_;
        col_ready = now + params_.tRp + params_.tRcd;
        bank.openRow = row;
    }

    const Cycle data_start =
        std::max(col_ready + params_.tCl, busFreeAt_);
    const Cycle done = data_start + params_.burstCycles;
    busFreeAt_ = done;
    busBusy_ += params_.burstCycles;
    bank.readyAt = done;

    if (req->isWrite()) {
        ++writes_;
        if (req->core == invalidId) {
            // L2 writeback: fire-and-forget, no reply. This is the
            // end of the writeback's life.
            DCL1_CHECK_ONLY(check::ledger().onRetire(*req));
            return;
        }
        // Write-through from an L1/DC-L1: ACK when the data lands.
        req->isReply = true;
        req->payloadBytes = 0;
        inService_.emplace_back(done, std::move(req));
        return;
    }

    ++reads_;
    req->isReply = true;
    req->payloadBytes =
        req->isFetch() ? defaultLineBytes : req->bytes;
    inService_.emplace_back(done, std::move(req));
}

std::optional<MemRequestPtr>
DramChannel::takeCompleted(Cycle now)
{
    for (auto it = inService_.begin(); it != inService_.end(); ++it) {
        if (it->first <= now) {
            MemRequestPtr req = std::move(it->second);
            inService_.erase(it);
            return req;
        }
    }
    return std::nullopt;
}

} // namespace dcl1::mem
