/**
 * @file
 * One address-sliced L2 bank: NoC-facing queues around a write-back
 * CacheBank, connected to its memory channel.
 */

#ifndef DCL1_MEM_L2_SLICE_HH
#define DCL1_MEM_L2_SLICE_HH

#include <optional>

#include "common/types.hh"
#include "mem/cache_bank.hh"
#include "mem/dram.hh"
#include "mem/queues.hh"
#include "mem/request.hh"

namespace dcl1::mem
{

/** See file comment. */
class L2Slice
{
  public:
    /**
     * @param params bank geometry/timing (policy is forced to WriteBack)
     * @param slice_id this slice's id
     * @param channel backing memory channel (not owned)
     */
    L2Slice(CacheBankParams params, SliceId slice_id, DramChannel *channel);

    /** Room in the input queue (NoC ejection side)? */
    bool canAcceptRequest() const { return input_.canPush(); }

    /** Deliver a request from the NoC at cycle @p now. */
    void pushRequest(MemRequestPtr req, Cycle now);

    /**
     * Advance one core cycle: serve the input queue, drain bank misses
     * to DRAM, and collect DRAM completions.
     */
    void tick(Cycle now);

    /** Pop a reply bound for the NoC. */
    std::optional<MemRequestPtr> takeReply();

    /**
     * Deliver a completed DRAM access for this slice (the owner routes
     * channel completions here via MemRequest::slice).
     */
    void onDramReply(MemRequestPtr reply, Cycle now);

    /** In-flight work (for drain checks)? */
    bool busy() const;

    CacheBank &bank() { return bank_; }
    const CacheBank &bank() const { return bank_; }
    SliceId sliceId() const { return sliceId_; }

  private:
    SliceId sliceId_;
    CacheBank bank_;
    DramChannel *channel_;
    BoundedQueue<MemRequestPtr> input_;
    BoundedQueue<MemRequestPtr> replies_;
    std::uint64_t dramInFlight_ = 0;
    Cycle lastTick_ = 0; ///< monotonic-clock check (DCL1_CHECK)
};

} // namespace dcl1::mem

#endif // DCL1_MEM_L2_SLICE_HH
