/**
 * @file
 * Miss Status Holding Registers.
 *
 * One entry per outstanding line fetch; secondary misses to the same
 * line are merged as targets and completed together when the fill
 * arrives. In DC-L1 nodes the targets may come from different cores —
 * this cross-core merging is one source of the shared design's traffic
 * reduction.
 */

#ifndef DCL1_MEM_MSHR_HH
#define DCL1_MEM_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"

namespace dcl1::mem
{

/** Outcome of registering a miss. */
enum class MshrOutcome : std::uint8_t
{
    NewEntry,     ///< first miss on this line; caller must fetch
    Merged,       ///< merged into an in-flight fetch
    NoEntryFree,  ///< structural hazard: all entries busy
    NoTargetFree, ///< structural hazard: entry's target list full
};

/** MSHR file keyed by line address. */
class Mshr
{
  public:
    /**
     * @param num_entries maximum outstanding line fetches
     * @param targets_per_entry maximum merged requests per line
     *        (including the primary)
     */
    Mshr(std::uint32_t num_entries, std::uint32_t targets_per_entry);

    /**
     * Register a miss on @p line. If the outcome is Merged, ownership of
     * @p req moves into the entry; for NewEntry the caller keeps the
     * request and sends it downstream as the primary fetch. For the
     * structural-hazard outcomes @p req is untouched.
     */
    MshrOutcome registerMiss(LineAddr line, MemRequestPtr &req);

    /** @return true iff a fetch for @p line is outstanding. */
    bool hasEntry(LineAddr line) const;

    /**
     * Complete the fetch of @p line: remove the entry and return all
     * merged secondary targets (the primary travelled with the fetch).
     */
    std::vector<MemRequestPtr> completeFetch(LineAddr line);

    bool full() const { return entries_.size() >= numEntries_; }
    std::uint32_t numEntries() const { return numEntries_; }
    std::size_t inUse() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::vector<MemRequestPtr> targets;
        std::uint32_t totalTargets = 1; ///< including the primary
    };

    std::uint32_t numEntries_;
    std::uint32_t targetsPerEntry_;
    std::unordered_map<LineAddr, Entry> entries_;
};

} // namespace dcl1::mem

#endif // DCL1_MEM_MSHR_HH
