#include "mem/cache_bank.hh"

#include "check/check.hh"
#include "check/request_ledger.hh"
#include "common/log.hh"

namespace dcl1::mem
{

CacheBank::CacheBank(const CacheBankParams &params, std::uint32_t cache_id,
                     CacheListener *listener)
    : params_(params), cacheId_(cache_id), listener_(listener),
      tags_(params.numSets(), params.assoc, params.repl),
      mshr_(params.mshrs, params.targetsPerMshr),
      downstream_(params.downstreamCap), statGroup_(params.name)
{
    if (params.numSets() == 0)
        fatal("cache %s: size %u too small for %u-way %uB lines",
              params.name.c_str(), params.sizeBytes, params.assoc,
              params.lineBytes);
    statGroup_.addScalar("accesses", &accesses_);
    statGroup_.addScalar("hits", &hits_);
    statGroup_.addScalar("misses", &misses_);
    statGroup_.addScalar("read_accesses", &readAccesses_);
    statGroup_.addScalar("read_misses", &readMisses_);
    statGroup_.addScalar("write_accesses", &writeAccesses_);
    statGroup_.addScalar("write_hit_evicts", &writeHitEvicts_);
    statGroup_.addScalar("mshr_merges", &mshrMerges_);
    statGroup_.addScalar("blocked", &blocked_);
    statGroup_.addScalar("writebacks", &writebacks_);
}

bool
CacheBank::canAccept(Cycle now) const
{
    if (lastPortCycle_ == now)
        return false;
    // A deep completion backlog means the consumer is not draining
    // replies; model the stalled pipeline by refusing new work.
    if (completed_.size() > std::size_t(4) * (params_.latency + 1))
        return false;
    return true;
}

void
CacheBank::scheduleCompletion(MemRequestPtr req, Cycle ready)
{
    // Maintain nondecreasing order by insertion from the back; ready
    // times are almost always monotone, so this is nearly O(1).
    auto it = completed_.end();
    while (it != completed_.begin() && std::prev(it)->first > ready)
        --it;
    completed_.emplace(it, ready, std::move(req));
}

void
CacheBank::installLine(LineAddr line, bool dirty)
{
    if (tags_.contains(line))
        return; // e.g. write-validate raced with an in-flight fetch
    Victim victim = tags_.insert(line, dirty);
    if (listener_)
        listener_->onInstall(cacheId_, line);
    if (victim.valid) {
        if (listener_)
            listener_->onEvict(cacheId_, victim.line);
        if (victim.dirty) {
            auto wb = std::make_unique<MemRequest>();
            wb->op = MemOp::Write;
            wb->addr = victim.line * params_.lineBytes;
            wb->bytes = params_.lineBytes;
            wb->payloadBytes = params_.lineBytes;
            wb->core = invalidId;
            wb->fetchDepth = 0;
            // Writebacks are born inside this cache and audited like
            // any other request until DRAM absorbs them.
            DCL1_CHECK_ONLY(check::ledger().onCreate(
                *wb, 0, check::ReqStage::AtCache));
            pendingWritebacks_.push_back(std::move(wb));
            ++writebacks_;
        }
    }
}

AccessOutcome
CacheBank::access(MemRequestPtr &req, Cycle now)
{
    if (!canAccept(now))
        panic("cache %s: access without canAccept", params_.name.c_str());
    DCL1_ASSERT(lastPortCycle_ == cycleNever || now > lastPortCycle_,
                "cache %s: port clock ran backwards (%llu after %llu)",
                params_.name.c_str(),
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(lastPortCycle_));

    const LineAddr line = req->line(params_.lineBytes);
    const bool write = req->isWrite();

    // --- structural pre-checks (no state change, no stats) ---
    if (write && params_.policy == WritePolicy::WriteEvict) {
        if (downstream_.full()) {
            ++blocked_;
            ++dbgBlockedWriteDs;
            return AccessOutcome::Blocked;
        }
    } else if (!write && !params_.perfect && !tags_.contains(line)) {
        if (mshr_.hasEntry(line)) {
            // merge path checked below (may still fail on targets)
        } else if (mshr_.full() || downstream_.full()) {
            ++blocked_;
            if (mshr_.full())
                ++dbgBlockedMshrFull;
            else
                ++dbgBlockedReadDs;
            return AccessOutcome::Blocked;
        }
    }

    // --- the access now occupies the port ---
    lastPortCycle_ = now;
    ++accesses_;
    req->l1ServiceAt = now;
    stats::tlmEnter(req->tlm, params_.tlmSeg, now);
    DCL1_CHECK_ONLY(
        check::ledger().onTransition(*req, check::ReqStage::AtCache));

    if (write) {
        ++writeAccesses_;
        if (params_.policy == WritePolicy::WriteEvict) {
            // Write-evict + no-write-allocate: a hit evicts the line;
            // the write is always forwarded downstream and completes
            // when the ACK is passed back through fill().
            if (tags_.invalidate(line)) {
                ++writeHitEvicts_;
                ++hits_;
                if (listener_)
                    listener_->onEvict(cacheId_, line);
            } else {
                ++misses_;
            }
            req->payloadBytes = req->bytes;
            downstream_.push(std::move(req));
            return AccessOutcome::Miss;
        }
        // WriteBack: complete locally; allocate on miss (write-validate).
        if (tags_.probe(line)) {
            ++hits_;
            tags_.markDirty(line);
        } else {
            ++misses_;
            installLine(line, /*dirty=*/true);
        }
        req->isReply = true;
        req->payloadBytes = 0;
        scheduleCompletion(std::move(req), now + params_.latency);
        return AccessOutcome::Hit;
    }

    // Read-like access (Read / Atomic / Bypass routed to this bank).
    ++readAccesses_;
    if (params_.perfect || tags_.probe(line)) {
        ++hits_;
        if (req->isAtomic())
            tags_.markDirty(line);
        req->isReply = true;
        // A hit on an upstream cache's line fetch returns the whole
        // line; demand hits return the requested bytes.
        req->payloadBytes =
            req->isFetch() ? params_.lineBytes : req->bytes;
        scheduleCompletion(std::move(req), now + params_.latency);
        return AccessOutcome::Hit;
    }

    ++misses_;
    ++readMisses_;
    if (listener_)
        listener_->onMiss(cacheId_, line);

    MshrOutcome mo = mshr_.registerMiss(line, req);
    switch (mo) {
      case MshrOutcome::NewEntry:
        ++dbgFetchesSent;
        ++req->fetchDepth;
        req->payloadBytes = 0;
        downstream_.push(std::move(req));
        ++inFlightFetches_;
        return AccessOutcome::Miss;
      case MshrOutcome::Merged:
        ++mshrMerges_;
        return AccessOutcome::Miss;
      case MshrOutcome::NoTargetFree:
        // Roll back the stats charged above; the caller retries.
        ++blocked_;
        ++dbgBlockedTargets;
        accesses_.set(accesses_.value() - 1);
        readAccesses_.set(readAccesses_.value() - 1);
        misses_.set(misses_.value() - 1);
        readMisses_.set(readMisses_.value() - 1);
        return AccessOutcome::Blocked;
      case MshrOutcome::NoEntryFree:
        panic("cache %s: MSHR full after pre-check", params_.name.c_str());
    }
    panic("cache %s: unreachable", params_.name.c_str());
}

std::optional<MemRequestPtr>
CacheBank::takeCompleted(Cycle now)
{
    if (completed_.empty() || completed_.front().first > now)
        return std::nullopt;
    MemRequestPtr req = std::move(completed_.front().second);
    completed_.pop_front();
    return req;
}

std::optional<MemRequestPtr>
CacheBank::takeDownstream()
{
    while (!pendingWritebacks_.empty() && downstream_.canPush()) {
        downstream_.push(std::move(pendingWritebacks_.front()));
        pendingWritebacks_.pop_front();
    }
    return downstream_.tryPop();
}

bool
CacheBank::hasDownstream() const
{
    return !downstream_.empty() || !pendingWritebacks_.empty();
}

void
CacheBank::fill(MemRequestPtr reply, Cycle now)
{
    // The reply (from a NoC, a DRAM channel, or a surrounding node's
    // Q4) is now inside this cache level.
    DCL1_CHECK_ONLY(
        check::ledger().onTransition(*reply, check::ReqStage::AtCache));
    stats::tlmEnter(reply->tlm, params_.tlmSeg, now);
    if (reply->isWrite()) {
        // Write-through ACK (WriteEvict): complete the original write.
        scheduleCompletion(std::move(reply), now);
        return;
    }

    const LineAddr line = reply->line(params_.lineBytes);
    if (!reply->isFetch())
        panic("cache %s: fill with non-fetch read reply",
              params_.name.c_str());

    // Atomics never allocate; demand reads always do, and bypass
    // (instruction/texture/constant) traffic allocates in the L2 only.
    if (reply->op == MemOp::Read ||
        (reply->op == MemOp::Bypass &&
         params_.policy == WritePolicy::WriteBack)) {
        installLine(line, /*dirty=*/false);
    }

    ++dbgFillsReceived;
    std::vector<MemRequestPtr> targets = mshr_.completeFetch(line);
    if (inFlightFetches_ == 0)
        panic("cache %s: fetch fill underflow", params_.name.c_str());
    --inFlightFetches_;

    --reply->fetchDepth;
    reply->isReply = true;
    // Still an upstream cache's fetch? Then it carries the whole line.
    reply->payloadBytes =
        reply->isFetch() ? params_.lineBytes : reply->bytes;
    scheduleCompletion(std::move(reply), now);

    // Fan the merged targets out through the port, one per cycle.
    Cycle ready = now;
    for (auto &t : targets) {
        ++ready;
        t->isReply = true;
        t->payloadBytes = t->isFetch() ? params_.lineBytes : t->bytes;
        scheduleCompletion(std::move(t), ready);
    }
}

bool
CacheBank::busy() const
{
    return !completed_.empty() || mshr_.inUse() != 0 ||
           !downstream_.empty() || !pendingWritebacks_.empty();
}

} // namespace dcl1::mem
