#include "mem/replication_tracker.hh"

#include "common/log.hh"

namespace dcl1::mem
{

ReplicationTracker::ReplicationTracker(std::uint32_t num_caches)
    : numCaches_(num_caches), statGroup_("replication")
{
    if (num_caches == 0 || num_caches > 128)
        fatal("ReplicationTracker supports 1..128 caches, got %u",
              num_caches);
    statGroup_.addScalar("misses", &misses_);
    statGroup_.addScalar("replicated_misses", &replicated_);
    statGroup_.addScalar("installs", &installs_);
    statGroup_.addScalar("install_copies", &installCopies_);
}

void
ReplicationTracker::onInstall(std::uint32_t cache_id, LineAddr line)
{
    if (cache_id >= numCaches_)
        panic("ReplicationTracker: cache id %u out of range", cache_id);
    Presence &p = lines_[line];
    const std::uint64_t mask = 1ull << (cache_id % 64);
    auto &word = p.bits[cache_id / 64];
    if (word & mask)
        return; // duplicate install notification
    word |= mask;
    ++p.count;
    ++installs_;
    installCopies_ += p.count;
}

void
ReplicationTracker::onEvict(std::uint32_t cache_id, LineAddr line)
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return;
    Presence &p = it->second;
    const std::uint64_t mask = 1ull << (cache_id % 64);
    auto &word = p.bits[cache_id / 64];
    if (!(word & mask))
        return;
    word &= ~mask;
    if (--p.count == 0)
        lines_.erase(it);
}

void
ReplicationTracker::onMiss(std::uint32_t cache_id, LineAddr line)
{
    ++misses_;
    if (presentElsewhere(cache_id, line))
        ++replicated_;
}

std::uint32_t
ReplicationTracker::copies(LineAddr line) const
{
    auto it = lines_.find(line);
    return it == lines_.end() ? 0 : it->second.count;
}

bool
ReplicationTracker::presentElsewhere(std::uint32_t cache_id,
                                     LineAddr line) const
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return false;
    const Presence &p = it->second;
    if (p.count == 0)
        return false;
    const std::uint64_t mask = 1ull << (cache_id % 64);
    const bool self = it->second.bits[cache_id / 64] & mask;
    return p.count > (self ? 1u : 0u);
}

bool
ReplicationTracker::holds(std::uint32_t cache_id, LineAddr line) const
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return false;
    return it->second.bits[cache_id / 64] & (1ull << (cache_id % 64));
}

std::uint64_t
ReplicationTracker::totalPresence() const
{
    std::uint64_t total = 0;
    // Audit path only; never called from a ticked code path.
    for (const auto &kv : lines_) // lint: unordered-iter-ok
        total += kv.second.count;
    return total;
}

double
ReplicationTracker::replicationRatio() const
{
    const auto m = misses_.value();
    return m ? double(replicated_.value()) / double(m) : 0.0;
}

double
ReplicationTracker::avgReplicas() const
{
    const auto n = installs_.value();
    return n ? double(installCopies_.value()) / double(n) : 0.0;
}

void
ReplicationTracker::resetStats()
{
    misses_.reset();
    replicated_.reset();
    installs_.reset();
    installCopies_.reset();
}

} // namespace dcl1::mem
