/**
 * @file
 * A timed cache bank used for the private L1s, the DC-L1 caches, and the
 * L2 slices.
 *
 * The bank has a single tag/data port (one access per core cycle), a
 * fixed pipelined access latency, an MSHR file with cross-requester
 * merging, and a bounded downstream (miss/write-through) queue whose
 * fullness exerts backpressure on new accesses.
 *
 * Two write policies are supported, matching the paper's platform:
 *  - WriteEvict (L1/DC-L1): a write hit evicts the line; writes never
 *    allocate and are always forwarded downstream (write-through); the
 *    write completes when the downstream ACK is passed back via fill().
 *  - WriteBack (L2): write hits mark dirty and complete locally; write
 *    misses allocate-without-fetch (write-validate) and complete
 *    locally; dirty victims emit fire-and-forget writeback requests.
 */

#ifndef DCL1_MEM_CACHE_BANK_HH
#define DCL1_MEM_CACHE_BANK_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/types.hh"
#include "mem/mshr.hh"
#include "mem/queues.hh"
#include "mem/request.hh"
#include "mem/tag_array.hh"
#include "stats/latency_attr.hh"
#include "stats/stats.hh"

namespace dcl1::mem
{

/** Install/evict notifications, used by the replication directory. */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;
    /** @p cache_id identifies the notifying cache. */
    virtual void onInstall(std::uint32_t cache_id, LineAddr line) = 0;
    virtual void onEvict(std::uint32_t cache_id, LineAddr line) = 0;
    /** A demand miss occurred (before the fetch is sent). */
    virtual void onMiss(std::uint32_t cache_id, LineAddr line) = 0;
};

/** Write handling policy. */
enum class WritePolicy : std::uint8_t { WriteEvict, WriteBack };

/** Static configuration of a CacheBank. */
struct CacheBankParams
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 16 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = defaultLineBytes;
    std::uint32_t latency = 28;          ///< hit latency, core cycles
    std::uint32_t mshrs = 32;
    std::uint32_t targetsPerMshr = 8;
    std::uint32_t downstreamCap = 8;     ///< miss-queue depth
    WritePolicy policy = WritePolicy::WriteEvict;
    ReplPolicy repl = ReplPolicy::Lru;   ///< victim selection
    bool perfect = false;                ///< 100 % hit rate (reads)

    /** Latency-attribution segment this bank's time is charged to
     *  (Cache for L1/DC-L1 banks, L2 for the L2 slices). */
    stats::Seg tlmSeg = stats::Seg::Cache;

    std::uint32_t
    numSets() const
    {
        return sizeBytes / (lineBytes * assoc);
    }
};

/** Outcome of CacheBank::access. */
enum class AccessOutcome : std::uint8_t
{
    Hit,     ///< completes internally after the hit latency
    Miss,    ///< fetch sent downstream (or merged into an MSHR)
    Blocked, ///< structural hazard; caller retries later
};

/** See file comment. */
class CacheBank
{
  public:
    CacheBank(const CacheBankParams &params, std::uint32_t cache_id = 0,
              CacheListener *listener = nullptr);

    /**
     * Can the bank accept an access this cycle? False when the port was
     * already used at @p now or when the completion backlog indicates a
     * stalled pipeline.
     */
    bool canAccept(Cycle now) const;

    /**
     * Perform an access. On Hit/Miss ownership of @p req moves into the
     * bank; on Blocked the request is left with the caller.
     */
    AccessOutcome access(MemRequestPtr &req, Cycle now);

    /** Pop a completed request (hit or filled miss) ready at @p now. */
    std::optional<MemRequestPtr> takeCompleted(Cycle now);

    /** Pop a request bound for the next hierarchy level. */
    std::optional<MemRequestPtr> takeDownstream();

    /** True if a downstream request is waiting. */
    bool hasDownstream() const;

    /**
     * Deliver a downstream reply: a read-fetch fill or a write ACK. The
     * primary and all merged targets become completed replies.
     */
    void fill(MemRequestPtr reply, Cycle now);

    /** Are there in-flight operations (for drain checks)? */
    bool busy() const;

    const CacheBankParams &params() const { return params_; }
    std::uint32_t cacheId() const { return cacheId_; }
    TagArray &tags() { return tags_; }
    const TagArray &tags() const { return tags_; }

    /// @name Statistics
    /// @{
    stats::StatGroup &statGroup() { return statGroup_; }
    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    double
    missRate() const
    {
        const auto a = accesses_.value();
        return a ? double(misses_.value()) / double(a) : 0.0;
    }
    std::uint64_t mshrMerges() const { return mshrMerges_.value(); }
    std::uint64_t blockedEvents() const { return blocked_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    std::size_t completedBacklog() const { return completed_.size(); }
    std::size_t mshrInUse() const { return mshr_.inUse(); }
    std::size_t downstreamSize() const { return downstream_.size(); }
    /// @}

  private:
    void scheduleCompletion(MemRequestPtr req, Cycle ready);
    void installLine(LineAddr line, bool dirty);

    CacheBankParams params_;
    std::uint32_t cacheId_;
    CacheListener *listener_;

    TagArray tags_;
    Mshr mshr_;

    /** (readyCycle, request) in FIFO order (latency is constant). */
    std::deque<std::pair<Cycle, MemRequestPtr>> completed_;

    BoundedQueue<MemRequestPtr> downstream_;

    /** Writebacks waiting for downstream space (WriteBack policy). */
    std::deque<MemRequestPtr> pendingWritebacks_;

    Cycle lastPortCycle_ = cycleNever;
    std::uint64_t inFlightFetches_ = 0;

    stats::StatGroup statGroup_;
    stats::Scalar accesses_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar readAccesses_;
    stats::Scalar readMisses_;
    stats::Scalar writeAccesses_;
    stats::Scalar writeHitEvicts_;
    stats::Scalar mshrMerges_;
    stats::Scalar blocked_;
    stats::Scalar writebacks_;

  public:
    /// @name Debug: blocked-reason counters
    /// @{
    std::uint64_t dbgBlockedWriteDs = 0;
    std::uint64_t dbgBlockedMshrFull = 0;
    std::uint64_t dbgBlockedReadDs = 0;
    std::uint64_t dbgBlockedTargets = 0;
    std::uint64_t dbgFetchesSent = 0;
    std::uint64_t dbgFillsReceived = 0;
    /// @}
};

} // namespace dcl1::mem

#endif // DCL1_MEM_CACHE_BANK_HH
