/**
 * @file
 * GDDR5-like memory channel with banked timing and FR-FCFS scheduling.
 *
 * Timing is expressed directly in core cycles (the 924 MHz memory clock
 * of Table II is folded into the constants: one memory cycle is about
 * 1.515 core cycles at 1400 MHz), which keeps the whole simulator on a
 * single clock base. Each channel has a bounded request queue, N banks
 * with open-row state, and a shared data bus that serializes bursts.
 */

#ifndef DCL1_MEM_DRAM_HH
#define DCL1_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"
#include "stats/stats.hh"

namespace dcl1::mem
{

/** Timing/geometry parameters of one channel (core-cycle units). */
struct DramParams
{
    std::string name = "dram";
    std::uint32_t numBanks = 16;
    std::uint32_t queueCap = 64;
    std::uint32_t rowBytes = 2048;      ///< bytes per row per bank
    std::uint32_t burstCycles = 6;      ///< data-bus occupancy per line
    std::uint32_t tRcd = 18;            ///< activate -> column
    std::uint32_t tRp = 18;             ///< precharge
    std::uint32_t tCl = 18;             ///< column -> first data

    /**
     * Global interleaving context, used to form channel-local row
     * addresses: the channel owns every numChannels-th chunk of
     * chunkBytes, and rowBytes of *owned* data form one DRAM row (the
     * usual GPU memory-controller packing, which preserves row-buffer
     * locality under fine-grained channel interleaving).
     */
    std::uint32_t chunkBytes = defaultChunkBytes;
    std::uint32_t numChannels = 16;
};

/** One memory channel. */
class DramChannel
{
  public:
    explicit DramChannel(const DramParams &params);

    /** Is there room in the request queue? */
    bool canAccept() const { return queue_.size() < params_.queueCap; }

    /** Enqueue a request (read fetch / write / atomic). */
    void push(MemRequestPtr req, Cycle now);

    /** Advance one core cycle: schedule at most one request. */
    void tick(Cycle now);

    /** Pop a completed read/atomic reply ready at @p now. */
    std::optional<MemRequestPtr> takeCompleted(Cycle now);

    /** Any queued or in-flight work? */
    bool busy() const { return !queue_.empty() || !inService_.empty(); }

    const DramParams &params() const { return params_; }

    /// @name Statistics
    /// @{
    stats::StatGroup &statGroup() { return statGroup_; }
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }
    std::uint64_t busBusyCycles() const { return busBusy_.value(); }
    std::size_t queueSize() const { return queue_.size(); }
    std::size_t inServiceSize() const { return inService_.size(); }
    Cycle busFreeAt() const { return busFreeAt_; }
    /** Number of banks with readyAt > now. */
    std::uint32_t
    busyBanks(Cycle now) const
    {
        std::uint32_t n = 0;
        for (const auto &b : banks_)
            if (b.readyAt > now)
                ++n;
        return n;
    }
    /// @}

  private:
    struct Bank
    {
        std::uint64_t openRow = ~0ull;
        Cycle readyAt = 0;
    };

    struct Queued
    {
        MemRequestPtr req;
        Cycle arrived;
    };

    std::uint64_t localRow(Addr addr) const;
    std::uint32_t bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    DramParams params_;
    std::vector<Bank> banks_;
    std::deque<Queued> queue_;
    /** (completionCycle, request); unsorted, scanned on take. */
    std::vector<std::pair<Cycle, MemRequestPtr>> inService_;
    Cycle busFreeAt_ = 0;
    Cycle lastTick_ = 0; ///< monotonic-clock check (DCL1_CHECK)

    stats::StatGroup statGroup_;
    stats::Scalar reads_;
    stats::Scalar writes_;
    stats::Scalar rowHits_;
    stats::Scalar rowMisses_;
    stats::Scalar busBusy_;
};

} // namespace dcl1::mem

#endif // DCL1_MEM_DRAM_HH
