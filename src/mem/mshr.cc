#include "mem/mshr.hh"

#include "common/log.hh"

namespace dcl1::mem
{

bool gFetchLeakCheck = false;

MemRequest::~MemRequest()
{
    if (gFetchLeakCheck && fetchDepth > 0)
        panic("MemRequest destroyed while a registered fetch (line %llu)",
              static_cast<unsigned long long>(addr / defaultLineBytes));
}

Mshr::Mshr(std::uint32_t num_entries, std::uint32_t targets_per_entry)
    : numEntries_(num_entries), targetsPerEntry_(targets_per_entry)
{
    if (num_entries == 0 || targets_per_entry == 0)
        fatal("Mshr requires at least one entry and one target");
}

MshrOutcome
Mshr::registerMiss(LineAddr line, MemRequestPtr &req)
{
    auto it = entries_.find(line);
    if (it != entries_.end()) {
        Entry &e = it->second;
        if (e.totalTargets >= targetsPerEntry_)
            return MshrOutcome::NoTargetFree;
        e.targets.push_back(std::move(req));
        ++e.totalTargets;
        return MshrOutcome::Merged;
    }
    if (entries_.size() >= numEntries_)
        return MshrOutcome::NoEntryFree;
    entries_.emplace(line, Entry{});
    return MshrOutcome::NewEntry;
}

bool
Mshr::hasEntry(LineAddr line) const
{
    return entries_.count(line) != 0;
}

std::vector<MemRequestPtr>
Mshr::completeFetch(LineAddr line)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        panic("Mshr::completeFetch on line %llu with no entry",
              static_cast<unsigned long long>(line));
    std::vector<MemRequestPtr> targets = std::move(it->second.targets);
    entries_.erase(it);
    return targets;
}

} // namespace dcl1::mem
