#include "mem/mshr.hh"

#include "check/check.hh"
#include "check/request_ledger.hh"
#include "common/log.hh"

namespace dcl1::mem
{

thread_local bool gFetchLeakCheck = false;

MemRequest::~MemRequest()
{
    if (gFetchLeakCheck && fetchDepth > 0)
        panic("MemRequest destroyed while a registered fetch (line %llu)",
              static_cast<unsigned long long>(addr / defaultLineBytes));
    DCL1_CHECK_ONLY(check::ledger().onDestroy(*this));
}

Mshr::Mshr(std::uint32_t num_entries, std::uint32_t targets_per_entry)
    : numEntries_(num_entries), targetsPerEntry_(targets_per_entry)
{
    if (num_entries == 0 || targets_per_entry == 0)
        fatal("Mshr requires at least one entry and one target");
}

MshrOutcome
Mshr::registerMiss(LineAddr line, MemRequestPtr &req)
{
    auto it = entries_.find(line);
    if (it != entries_.end()) {
        Entry &e = it->second;
        if (e.totalTargets >= targetsPerEntry_)
            return MshrOutcome::NoTargetFree;
        // Merging an upstream cache's fetch as a secondary target is
        // fine (the L2 does it constantly); only this entry's own
        // primary fetch must never come back, and it never re-enters
        // registerMiss because the owning bank holds it downstream.
        DCL1_CHECK_ONLY(
            check::ledger().onTransition(*req, check::ReqStage::InMshr));
        e.targets.push_back(std::move(req));
        ++e.totalTargets;
        DCL1_ASSERT(e.totalTargets == e.targets.size() + 1,
                    "Mshr: target count diverged on line %llu",
                    static_cast<unsigned long long>(line));
        return MshrOutcome::Merged;
    }
    if (entries_.size() >= numEntries_)
        return MshrOutcome::NoEntryFree;
    entries_.emplace(line, Entry{});
    DCL1_ASSERT(entries_.size() <= numEntries_,
                "Mshr: entry count %zu exceeds capacity %u",
                entries_.size(), numEntries_);
    return MshrOutcome::NewEntry;
}

bool
Mshr::hasEntry(LineAddr line) const
{
    return entries_.count(line) != 0;
}

std::vector<MemRequestPtr>
Mshr::completeFetch(LineAddr line)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        panic("Mshr::completeFetch on line %llu with no entry",
              static_cast<unsigned long long>(line));
    DCL1_ASSERT(it->second.totalTargets == it->second.targets.size() + 1,
                "Mshr: target count diverged on line %llu",
                static_cast<unsigned long long>(line));
    std::vector<MemRequestPtr> targets = std::move(it->second.targets);
    entries_.erase(it);
    // Released targets are back inside the owning cache, which fans
    // them out through its completion port.
    DCL1_CHECK_ONLY(for (const auto &t : targets) check::ledger()
                        .onTransition(*t, check::ReqStage::AtCache));
    return targets;
}

} // namespace dcl1::mem
