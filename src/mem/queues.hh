/**
 * @file
 * Bounded FIFO used to model finite hardware queues with backpressure.
 */

#ifndef DCL1_MEM_QUEUES_HH
#define DCL1_MEM_QUEUES_HH

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "check/check.hh"
#include "common/log.hh"

namespace dcl1::mem
{

/**
 * A FIFO with a fixed capacity. Producers must check canPush() (or use
 * tryPush) so that full queues exert backpressure instead of growing.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity = 4) : capacity_(capacity) {}

    bool empty() const { return q_.empty(); }
    bool full() const { return q_.size() >= capacity_; }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool canPush() const { return !full(); }

    /** Push; caller must have checked canPush(). */
    void
    push(T v)
    {
        DCL1_ASSERT(!full(),
                    "BoundedQueue: push beyond capacity %zu", capacity_);
        q_.push_back(std::move(v));
    }

    /** @return true and consume @p v if space was available. */
    bool
    tryPush(T &v)
    {
        if (full())
            return false;
        q_.push_back(std::move(v));
        return true;
    }

    /** Front element; queue must be non-empty. */
    T &front() { return q_.front(); }
    const T &front() const { return q_.front(); }

    /** Pop and return the front element; queue must be non-empty. */
    T
    pop()
    {
        DCL1_ASSERT(!q_.empty(), "BoundedQueue: pop from empty queue");
        T v = std::move(q_.front());
        q_.pop_front();
        return v;
    }

    /** Pop the front element if present. */
    std::optional<T>
    tryPop()
    {
        if (q_.empty())
            return std::nullopt;
        std::optional<T> v(std::move(q_.front()));
        q_.pop_front();
        return v;
    }

    void clear() { q_.clear(); }

  private:
    std::size_t capacity_;
    std::deque<T> q_;
};

} // namespace dcl1::mem

#endif // DCL1_MEM_QUEUES_HH
