#include "mem/l2_slice.hh"

#include "check/check.hh"
#include "check/request_ledger.hh"
#include "common/log.hh"

namespace dcl1::mem
{

namespace
{

CacheBankParams
forceWriteBack(CacheBankParams params)
{
    params.policy = WritePolicy::WriteBack;
    return params;
}

} // anonymous namespace

L2Slice::L2Slice(CacheBankParams params, SliceId slice_id,
                 DramChannel *channel)
    : sliceId_(slice_id), bank_(forceWriteBack(std::move(params)), slice_id),
      channel_(channel), input_(16), replies_(16)
{
    if (!channel_)
        fatal("L2Slice %u: null memory channel", slice_id);
}

void
L2Slice::pushRequest(MemRequestPtr req, Cycle now)
{
    if (!input_.canPush())
        panic("L2Slice %u: push to full input queue", sliceId_);
    DCL1_CHECK_ONLY(
        check::ledger().onTransition(*req, check::ReqStage::AtCache));
    stats::tlmEnter(req->tlm, stats::Seg::L2, now);
    input_.push(std::move(req));
}

void
L2Slice::tick(Cycle now)
{
    DCL1_ASSERT(now >= lastTick_,
                "L2Slice %u: clock ran backwards (%llu after %llu)",
                sliceId_, static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(lastTick_));
    DCL1_CHECK_ONLY(lastTick_ = now);

    // DRAM completions are routed to onDramReply() by the owner (the
    // channel is shared between slices; see GpuSystem::tickMemory).

    // 1. Serve the head of the input queue if the bank port is free.
    if (!input_.empty() && bank_.canAccept(now)) {
        MemRequestPtr &head = input_.front();
        AccessOutcome outcome = bank_.access(head, now);
        if (outcome != AccessOutcome::Blocked)
            input_.pop();
    }

    // 2. Drain bank completions into the reply queue. Upstream
    // writebacks (no requester) are absorbed here, not replied to.
    while (replies_.canPush()) {
        auto done = bank_.takeCompleted(now);
        if (!done)
            break;
        if ((*done)->core == invalidId) {
            // Upstream writeback absorbed by the L2: end of its life.
            DCL1_CHECK_ONLY(check::ledger().onRetire(**done));
            continue;
        }
        replies_.push(std::move(*done));
    }

    // 3. Send bank misses/writebacks to the memory channel.
    while (bank_.hasDownstream() && channel_->canAccept()) {
        auto req = bank_.takeDownstream();
        if (!req)
            break;
        // Writes reaching DRAM are fire-and-forget writebacks; every
        // read-class request (including upstream fetches) replies.
        if (!(*req)->isWrite())
            ++dramInFlight_;
        channel_->push(std::move(*req), now);
    }
}

std::optional<MemRequestPtr>
L2Slice::takeReply()
{
    return replies_.tryPop();
}

void
L2Slice::onDramReply(MemRequestPtr reply, Cycle now)
{
    if (dramInFlight_ == 0)
        panic("L2Slice %u: DRAM reply underflow", sliceId_);
    --dramInFlight_;
    bank_.fill(std::move(reply), now);
}

bool
L2Slice::busy() const
{
    return !input_.empty() || !replies_.empty() || bank_.busy() ||
           dramInFlight_ != 0;
}

} // namespace dcl1::mem
