/**
 * @file
 * Global address interleaving: line -> L2 slice -> memory channel.
 *
 * As in the paper's Table II platform, the linear address space is
 * interleaved across the L2 slices in 256 B chunks; each memory channel
 * backs a fixed group of slices. Shared DC-L1 home selection (see
 * core/organization.hh) uses the same chunk index so that each DC-L1
 * communicates with exactly numSlices/M L2 slices.
 */

#ifndef DCL1_MEM_ADDRESS_MAP_HH
#define DCL1_MEM_ADDRESS_MAP_HH

#include "common/bitutils.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace dcl1::mem
{

/** See file comment. */
class AddressMap
{
  public:
    /**
     * @param num_slices number of L2 slices
     * @param num_channels number of memory channels (must divide
     *        num_slices)
     * @param chunk_bytes interleave granularity
     */
    AddressMap(std::uint32_t num_slices, std::uint32_t num_channels,
               std::uint32_t chunk_bytes = defaultChunkBytes)
        : numSlices_(num_slices), numChannels_(num_channels),
          chunkBytes_(chunk_bytes)
    {
        if (num_slices == 0 || num_channels == 0)
            fatal("AddressMap: slices/channels must be nonzero");
        if (num_slices % num_channels != 0)
            fatal("AddressMap: %u slices not divisible by %u channels",
                  num_slices, num_channels);
    }

    /** 256 B-chunk index of @p addr. */
    std::uint64_t chunk(Addr addr) const { return addr / chunkBytes_; }

    /** L2 slice serving @p addr. */
    SliceId
    slice(Addr addr) const
    {
        return static_cast<SliceId>(chunk(addr) % numSlices_);
    }

    /** Memory channel backing @p slice. */
    std::uint32_t
    channelOfSlice(SliceId slice) const
    {
        return slice % numChannels_;
    }

    /** Memory channel serving @p addr. */
    std::uint32_t channel(Addr addr) const
    {
        return channelOfSlice(slice(addr));
    }

    std::uint32_t numSlices() const { return numSlices_; }
    std::uint32_t numChannels() const { return numChannels_; }
    std::uint32_t chunkBytes() const { return chunkBytes_; }

  private:
    std::uint32_t numSlices_;
    std::uint32_t numChannels_;
    std::uint32_t chunkBytes_;
};

} // namespace dcl1::mem

#endif // DCL1_MEM_ADDRESS_MAP_HH
