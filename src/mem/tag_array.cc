#include "mem/tag_array.hh"

#include "common/log.hh"

namespace dcl1::mem
{

namespace
{

/** splitmix64 finalizer: cheap, high-quality 64-bit mixer. */
std::uint64_t
mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // anonymous namespace

TagArray::TagArray(std::uint32_t num_sets, std::uint32_t assoc,
                   ReplPolicy policy)
    : numSets_(num_sets), assoc_(assoc), policy_(policy)
{
    if (num_sets == 0 || assoc == 0)
        fatal("TagArray requires at least one set and one way");
    ways_.resize(std::size_t(numSets_) * assoc_);
}

std::uint32_t
TagArray::setIndex(LineAddr line) const
{
    return static_cast<std::uint32_t>(mix(line) % numSets_);
}

TagArray::Way *
TagArray::findWay(LineAddr line)
{
    const std::size_t base = std::size_t(setIndex(line)) * assoc_;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.line == line)
            return &way;
    }
    return nullptr;
}

const TagArray::Way *
TagArray::findWay(LineAddr line) const
{
    return const_cast<TagArray *>(this)->findWay(line);
}

bool
TagArray::probe(LineAddr line)
{
    Way *way = findWay(line);
    if (!way)
        return false;
    // FIFO and Random ignore recency; only LRU tracks touches.
    if (policy_ == ReplPolicy::Lru)
        way->lruStamp = ++stamp_;
    return true;
}

bool
TagArray::contains(LineAddr line) const
{
    return findWay(line) != nullptr;
}

Victim
TagArray::insert(LineAddr line, bool dirty)
{
    if (findWay(line))
        panic("TagArray::insert of already-resident line %llu",
              static_cast<unsigned long long>(line));

    const std::size_t base = std::size_t(setIndex(line)) * assoc_;
    Way *target = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (!way.valid) {
            target = &way;
            break;
        }
        if (!target || way.lruStamp < target->lruStamp)
            target = &way;
    }
    if (target->valid && policy_ == ReplPolicy::Random) {
        // xorshift64* draw over the ways of the set.
        rngState_ ^= rngState_ >> 12;
        rngState_ ^= rngState_ << 25;
        rngState_ ^= rngState_ >> 27;
        target = &ways_[base + (rngState_ * 0x2545f4914f6cdd1dull >> 32) %
                                   assoc_];
    }

    Victim victim;
    if (target->valid) {
        victim.valid = true;
        victim.dirty = target->dirty;
        victim.line = target->line;
    }
    target->valid = true;
    target->dirty = dirty;
    target->line = line;
    target->lruStamp = ++stamp_;
    return victim;
}

bool
TagArray::invalidate(LineAddr line)
{
    Way *way = findWay(line);
    if (!way)
        return false;
    way->valid = false;
    way->dirty = false;
    return true;
}

bool
TagArray::markDirty(LineAddr line)
{
    Way *way = findWay(line);
    if (!way)
        return false;
    way->dirty = true;
    return true;
}

void
TagArray::flush()
{
    for (auto &way : ways_) {
        way.valid = false;
        way.dirty = false;
    }
}

std::uint64_t
TagArray::occupancy() const
{
    std::uint64_t n = 0;
    for (const auto &way : ways_)
        if (way.valid)
            ++n;
    return n;
}

} // namespace dcl1::mem
