/**
 * @file
 * Set-associative tag array with true-LRU replacement.
 *
 * Set indices are hashed (splitmix64 finalizer) so that address-sliced
 * placement (home-bit / L2-bank interleaving fixes low line-address
 * bits) still spreads lines across all sets — the same reason GPU L2s
 * hash their set index.
 */

#ifndef DCL1_MEM_TAG_ARRAY_HH
#define DCL1_MEM_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dcl1::mem
{

/** Result of a tag insertion. */
struct Victim
{
    bool valid = false;  ///< a line was evicted
    bool dirty = false;  ///< the evicted line was dirty
    LineAddr line = 0;   ///< evicted line address
};

/** Victim-selection policy. */
enum class ReplPolicy : std::uint8_t
{
    Lru,    ///< true LRU (default; GPGPU-Sim's L1/L2 default)
    Fifo,   ///< insertion order, no touch update
    Random, ///< pseudo-random way (cheap hardware)
};

/** Set-associative tag array keyed by line address. */
class TagArray
{
  public:
    /**
     * @param num_sets number of sets (>= 1, any value)
     * @param assoc ways per set (>= 1)
     * @param policy victim-selection policy
     */
    TagArray(std::uint32_t num_sets, std::uint32_t assoc,
             ReplPolicy policy = ReplPolicy::Lru);

    /** @return true iff @p line is resident; updates LRU when found. */
    bool probe(LineAddr line);

    /** @return true iff @p line is resident; no LRU update. */
    bool contains(LineAddr line) const;

    /**
     * Insert @p line (must not be resident), evicting the LRU way if the
     * set is full.
     * @return description of the victim, if any.
     */
    Victim insert(LineAddr line, bool dirty = false);

    /** Invalidate @p line if resident. @return true if it was. */
    bool invalidate(LineAddr line);

    /** Mark @p line dirty if resident. @return true if it was. */
    bool markDirty(LineAddr line);

    /** Invalidate everything. */
    void flush();

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    /** Number of currently valid lines (O(capacity); for tests/stats). */
    std::uint64_t occupancy() const;

    /**
     * Invoke @p fn(line) for every valid line. O(capacity); audit and
     * debug use only, never from a ticked path.
     */
    template <typename Fn>
    void
    forEachValidLine(Fn &&fn) const
    {
        for (const auto &w : ways_)
            if (w.valid)
                fn(w.line);
    }

    /** Map a line address to its (hashed) set index. */
    std::uint32_t setIndex(LineAddr line) const;

  private:
    struct Way
    {
        LineAddr line = 0;
        std::uint64_t lruStamp = 0;
        bool valid = false;
        bool dirty = false;
    };

    Way *findWay(LineAddr line);
    const Way *findWay(LineAddr line) const;

    std::uint32_t numSets_;
    std::uint32_t assoc_;
    ReplPolicy policy_;
    std::uint64_t stamp_ = 0;
    std::uint64_t rngState_ = 0x2545f4914f6cdd1dull;
    std::vector<Way> ways_; ///< numSets_ * assoc_, set-major
};

} // namespace dcl1::mem

#endif // DCL1_MEM_TAG_ARRAY_HH
