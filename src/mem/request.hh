/**
 * @file
 * The memory transaction object threaded through the whole hierarchy.
 *
 * A MemRequest is created by a GPU core's coalescer, travels through the
 * (DC-)L1, the NoCs, the L2 and possibly DRAM, and is turned around in
 * place as a reply. Ownership is a unique_ptr moved from queue to queue;
 * MSHR merging stores secondary requests inside the MSHR entry.
 */

#ifndef DCL1_MEM_REQUEST_HH
#define DCL1_MEM_REQUEST_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "prof/prof.hh"
#include "stats/latency_attr.hh"

namespace dcl1::mem
{

/** Kind of memory operation. */
enum class MemOp : std::uint8_t
{
    Read,   ///< global-load line fetch (uses L1/DC-L1)
    Write,  ///< global-store (write-evict / no-write-allocate at L1)
    Atomic, ///< atomic op; skips L1/DC-L1, resolved at L2/MC
    Bypass, ///< non-L1 traffic (I-cache/texture/constant miss); skips DC-L1$
};

/** Debug: when true, destroying a request that is still a registered
 *  MSHR fetch aborts (it would leak the MSHR entry forever).
 *  Thread-local: GpuSystem::run arms it for its own cycle loop only,
 *  and concurrent simulations on other threads must not observe it. */
extern thread_local bool gFetchLeakCheck;

/** A single memory transaction. */
struct MemRequest
{
    ~MemRequest();

    MemOp op = MemOp::Read;
    bool isReply = false;

    /** Byte address of the access (line aligned for fetches). */
    Addr addr = 0;

    /** Bytes the requester actually needs (<= line size). */
    std::uint32_t bytes = 32;

    /**
     * Bytes moved on the current leg of the journey. Requests toward
     * memory carry this many payload bytes (write data; 0 for read
     * requests); replies carry the returned data. Used to compute NoC
     * flit counts.
     */
    std::uint32_t payloadBytes = 0;

    /** Issuing core and wavefront. */
    CoreId core = invalidId;
    WarpId warp = invalidId;

    /** Home DC-L1 node (set by the cache organization). */
    NodeId homeNode = invalidId;

    /** Target L2 slice (set by the address map). */
    SliceId slice = invalidId;

    /** Core cycle at which the coalescer created the request. */
    Cycle createdAt = 0;

    /** Core cycle at which the (DC-)L1 began serving the request. */
    Cycle l1ServiceAt = 0;

    /**
     * Number of cache levels that currently treat this request as
     * their MSHR primary line fetch. An L1 miss makes it an L1 fetch
     * (depth 1); missing again at the L2 makes it an L2 fetch too
     * (depth 2). Each level's fill() decrements it, so payload sizing
     * and fill routing can tell whose fetch a reply still is.
     */
    std::uint8_t fetchDepth = 0;

    /**
     * check::RequestLedger sequence number; 0 = untracked. Assigned at
     * registration, used to audit the request's lifecycle state
     * machine (see check/request_ledger.hh).
     */
    std::uint64_t chkSeq = 0;

    /**
     * Latency-attribution state; dormant (sampleId == 0) unless this
     * request was picked by the system's LatencyAttribution sampler
     * (see stats/latency_attr.hh).
     */
    stats::ReqTelemetry tlm;

    bool isFetch() const { return fetchDepth > 0; }

    bool isRead() const { return op == MemOp::Read; }
    bool isWrite() const { return op == MemOp::Write; }
    bool isAtomic() const { return op == MemOp::Atomic; }
    bool isBypass() const { return op == MemOp::Bypass; }

    /** Does this request look up the (DC-)L1 data cache? */
    bool usesL1() const { return op == MemOp::Read || op == MemOp::Write; }

    /** Line address for a given line size. */
    LineAddr
    line(std::uint32_t line_bytes = defaultLineBytes) const
    {
        return addr / line_bytes;
    }
};

using MemRequestPtr = std::unique_ptr<MemRequest>;

/** Convenience factory. */
inline MemRequestPtr
makeRequest(MemOp op, Addr addr, std::uint32_t bytes, CoreId core,
            WarpId warp, Cycle now)
{
    DCL1_PROF_COUNT(MemReqAlloc, 1);
    auto r = std::make_unique<MemRequest>();
    r->op = op;
    r->addr = addr;
    r->bytes = bytes;
    r->payloadBytes = (op == MemOp::Write) ? bytes : 0;
    r->core = core;
    r->warp = warp;
    r->createdAt = now;
    return r;
}

} // namespace dcl1::mem

#endif // DCL1_MEM_REQUEST_HH
