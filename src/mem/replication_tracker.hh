/**
 * @file
 * Presence directory for measuring cache-line replication across L1s.
 *
 * Maintained from CacheBank install/evict notifications; on each demand
 * miss it answers the paper's Figure 1 question: "could this miss have
 * been served by another L1?" It also tracks the average number of
 * replicas per installed line (Figure 16 discussion).
 */

#ifndef DCL1_MEM_REPLICATION_TRACKER_HH
#define DCL1_MEM_REPLICATION_TRACKER_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "mem/cache_bank.hh"
#include "stats/stats.hh"

namespace dcl1::mem
{

/** See file comment. */
class ReplicationTracker : public CacheListener
{
  public:
    /** @param num_caches number of tracked L1/DC-L1 caches (<= 128). */
    explicit ReplicationTracker(std::uint32_t num_caches);

    void onInstall(std::uint32_t cache_id, LineAddr line) override;
    void onEvict(std::uint32_t cache_id, LineAddr line) override;
    void onMiss(std::uint32_t cache_id, LineAddr line) override;

    /** Number of caches currently holding @p line. */
    std::uint32_t copies(LineAddr line) const;

    /** Is @p line held by any cache other than @p cache_id? */
    bool presentElsewhere(std::uint32_t cache_id, LineAddr line) const;

    /** Is @p line recorded as held by @p cache_id? */
    bool holds(std::uint32_t cache_id, LineAddr line) const;

    /**
     * Sum of per-line copy counts. O(lines); audit use only — must
     * equal the total tag-array occupancy of the tracked caches.
     */
    std::uint64_t totalPresence() const;

    /** Misses whose line was resident in another L1 / total misses. */
    double replicationRatio() const;

    /**
     * Average number of copies per line, weighted by install events
     * (i.e. the replica count observed when lines are installed).
     */
    double avgReplicas() const;

    std::uint64_t totalMisses() const { return misses_.value(); }
    std::uint64_t replicatedMisses() const { return replicated_.value(); }

    void resetStats();

    stats::StatGroup &statGroup() { return statGroup_; }

  private:
    struct Presence
    {
        std::array<std::uint64_t, 2> bits{};
        std::uint32_t count = 0;
    };

    std::uint32_t numCaches_;
    std::unordered_map<LineAddr, Presence> lines_;

    stats::StatGroup statGroup_;
    stats::Scalar misses_;
    stats::Scalar replicated_;
    stats::Scalar installs_;
    stats::Scalar installCopies_;
};

} // namespace dcl1::mem

#endif // DCL1_MEM_REPLICATION_TRACKER_HH
