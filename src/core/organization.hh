/**
 * @file
 * DC-L1 organization: which DC-L1 node serves a given (core, address).
 *
 * The machine's Y nodes are grouped into Z clusters of M = Y/Z nodes;
 * each cluster is accessed by numCores/Z cores. Within a cluster the
 * home node is selected by the "home bits" of the physical address —
 * here the 256 B-chunk index modulo M, the same interleave used for
 * the L2 slices, so each DC-L1 talks to exactly numSlices/M slices
 * (enabling the paper's partitioned NoC#2 crossbars).
 *
 *   Z == Y -> private aggregated design (PrY): M = 1, no home bits.
 *   Z == 1 -> fully shared design (ShY).
 */

#ifndef DCL1_CORE_ORGANIZATION_HH
#define DCL1_CORE_ORGANIZATION_HH

#include "common/log.hh"
#include "common/types.hh"
#include "core/design.hh"
#include "core/system_config.hh"
#include "mem/address_map.hh"

namespace dcl1::core
{

/** See file comment. */
class Organization
{
  public:
    Organization(const DesignConfig &design, const SystemConfig &sys)
        : numCores_(sys.numCores), numNodes_(design.numNodes),
          clusters_(design.clusters),
          nodesPerCluster_(design.nodesPerCluster()),
          coresPerCluster_(design.coresPerCluster(sys)),
          chunkBytes_(sys.chunkBytes), numSlices_(sys.numL2Slices)
    {
        design.validate(sys);
    }

    std::uint32_t numNodes() const { return numNodes_; }
    std::uint32_t clusters() const { return clusters_; }
    std::uint32_t nodesPerCluster() const { return nodesPerCluster_; }
    std::uint32_t coresPerCluster() const { return coresPerCluster_; }

    /** Cluster of a core. */
    std::uint32_t
    clusterOfCore(CoreId core) const
    {
        return core / coresPerCluster_;
    }

    /** Cluster of a node. */
    std::uint32_t
    clusterOfNode(NodeId node) const
    {
        return node / nodesPerCluster_;
    }

    /** Home index within a cluster (the "home bits"). */
    std::uint32_t
    homeWithinCluster(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (addr / chunkBytes_) % nodesPerCluster_);
    }

    /** The DC-L1 node serving @p addr for @p core. */
    NodeId
    homeNode(CoreId core, Addr addr) const
    {
        return clusterOfCore(core) * nodesPerCluster_ +
               homeWithinCluster(addr);
    }

    /**
     * Is NoC#2 partitioned into nodesPerCluster independent crossbars
     * (requires the home count to divide the slice count)?
     */
    bool
    partitionedNoc2() const
    {
        return nodesPerCluster_ > 1 && numSlices_ % nodesPerCluster_ == 0;
    }

    /**
     * Sanity: the L2 slice of @p addr must belong to the home's slice
     * group when NoC#2 is partitioned.
     */
    bool
    sliceMatchesHome(Addr addr, SliceId slice) const
    {
        if (!partitionedNoc2())
            return true;
        return slice % nodesPerCluster_ == homeWithinCluster(addr);
    }

  private:
    std::uint32_t numCores_;
    std::uint32_t numNodes_;
    std::uint32_t clusters_;
    std::uint32_t nodesPerCluster_;
    std::uint32_t coresPerCluster_;
    std::uint32_t chunkBytes_;
    std::uint32_t numSlices_;
};

} // namespace dcl1::core

#endif // DCL1_CORE_ORGANIZATION_HH
