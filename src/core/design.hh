/**
 * @file
 * Cache-hierarchy design points evaluated in the paper.
 *
 * A DesignConfig describes how the L1 level is organized:
 *  - PrivateBaseline: the conventional per-core private L1 (plus the
 *    CdXbar variant that swaps the monolithic crossbar for Zhao et
 *    al.'s hierarchical one, Fig. 19a).
 *  - DcL1: Y decoupled L1 nodes grouped into Z clusters. Each cluster
 *    of numCores/Z cores shares its Y/Z nodes with home-bit
 *    interleaving; Z == Y degenerates to the private aggregated design
 *    (PrY) and Z == 1 to the fully shared design (ShY).
 *
 * Presets reproduce the paper's named designs: Pr80/Pr40/Pr20/Pr10,
 * Sh40, Sh40+CZ, Sh40+C10+Boost, and the sensitivity variants.
 */

#ifndef DCL1_CORE_DESIGN_HH
#define DCL1_CORE_DESIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system_config.hh"

namespace dcl1::core
{

/** Top-level topology selector. */
enum class Topology : std::uint8_t
{
    PrivateBaseline, ///< per-core L1s + monolithic crossbar
    CdXbar,          ///< per-core L1s + hierarchical two-stage crossbar
    DcL1,            ///< decoupled L1 nodes (the paper's proposal)
};

/** See file comment. */
struct DesignConfig
{
    std::string name = "Baseline";
    Topology topology = Topology::PrivateBaseline;

    /// @name DC-L1 organization (topology == DcL1)
    /// @{
    std::uint32_t numNodes = 40; ///< Y
    std::uint32_t clusters = 10; ///< Z (1 = fully shared, Y = private)
    /// @}

    /** NoC#1 clock ratio (doubled to 1.0 by the Boost variant). */
    double noc1ClockRatio = 0.5;
    /** NoC#2 clock ratio (kept at baseline in the paper). */
    double noc2ClockRatio = 0.5;

    /// @name Study knobs
    /// @{
    double l1CapacityScale = 1.0; ///< 16.0 for Fig. 1, 2.0 for boosted
    bool perfectL1 = false;       ///< 100 % L1/DC-L1 hit rate (Fig. 4c)
    std::int32_t l1LatencyOverride = -1; ///< Fig. 19b sweep; -1 = auto
    bool distributedCta = false;  ///< distributed CTA scheduler [28]
    /**
     * Ablation of the paper's Sec. III choice: when true, DC-L1 read
     * replies to cores carry the whole 128 B line instead of only the
     * requested bytes, quadrupling NoC#1 reply serialization.
     */
    bool fullLineReplies = false;
    /// @}

    /// @name CdXbar geometry (topology == CdXbar)
    /// @{
    std::uint32_t cdxClusters = 10;
    std::uint32_t cdxTrunksPerCluster = 4;
    double cdxLocalClockRatio = 0.5;
    double cdxGlobalClockRatio = 0.5;
    /// @}

    /** Cores per DC-L1 node (aggregation factor). */
    std::uint32_t
    coresPerNode(const SystemConfig &sys) const
    {
        return sys.numCores / numNodes;
    }

    /** Nodes per cluster (M). */
    std::uint32_t nodesPerCluster() const { return numNodes / clusters; }

    /** Cores per cluster (N). */
    std::uint32_t
    coresPerCluster(const SystemConfig &sys) const
    {
        return sys.numCores / clusters;
    }

    /** Validate against a platform; fatal() on inconsistency. */
    void validate(const SystemConfig &sys) const;

    /**
     * DC-L1 hit latency: the paper reports a 7 % latency increase per
     * capacity doubling (28 -> 30 cycles for the 2x DC-L1s of Sh40).
     */
    std::uint32_t l1LatencyFor(const SystemConfig &sys) const;

    /** DC-L1 (or L1) capacity in bytes per node/core. */
    std::uint32_t l1SizeFor(const SystemConfig &sys) const;
};

/** One crossbar geometry in a design (for the DSENT-like model). */
struct XbarGeometry
{
    std::uint32_t numInputs = 0;
    std::uint32_t numOutputs = 0;
    std::uint32_t count = 0;     ///< instances (request+reply pairs)
    double clockRatio = 0.5;
    double linkMm = 12.3;        ///< link length (paper: 3.3/12.3 mm)
    std::uint32_t level = 2;     ///< 1 = NoC#1 (core side), 2 = NoC#2
};

/** The crossbar inventory of a design (NoC#1 + NoC#2 or baseline). */
std::vector<XbarGeometry> crossbarInventory(const DesignConfig &design,
                                            const SystemConfig &sys);

/// @name Design presets (paper names)
/// @{
DesignConfig baselineDesign();
DesignConfig privateDcl1(std::uint32_t num_nodes); ///< PrY
DesignConfig sharedDcl1(std::uint32_t num_nodes);  ///< ShY
DesignConfig clusteredDcl1(std::uint32_t num_nodes, std::uint32_t clusters,
                           bool boost = false); ///< ShY+CZ(+Boost)
DesignConfig cdxbarDesign(bool boost_local, bool boost_global);
/// @}

/// @name Preset modifiers
/// @{
DesignConfig withPerfectL1(DesignConfig d);
DesignConfig withCapacityScale(DesignConfig d, double scale);
DesignConfig withL1Latency(DesignConfig d, std::int32_t latency);
DesignConfig withDistributedCta(DesignConfig d);
DesignConfig withFullLineReplies(DesignConfig d);
/// @}

/**
 * Parse a design by its paper name: "Baseline", "PrY", "ShY",
 * "ShY+CZ", optional "+Boost", "CDXBar", "CDXBar+2xNoC1",
 * "CDXBar+2xNoC". fatal() on anything else.
 */
DesignConfig designByName(const std::string &name);

} // namespace dcl1::core

#endif // DCL1_CORE_DESIGN_HH
