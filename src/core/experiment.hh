/**
 * @file
 * Experiment runner: one simulation per (platform, design, app), with
 * environment-controlled cycle budgets, plus small aggregation helpers
 * used by the benchmark harnesses.
 */

#ifndef DCL1_CORE_EXPERIMENT_HH
#define DCL1_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/design.hh"
#include "core/gpu_system.hh"
#include "core/system_config.hh"
#include "workload/app_catalog.hh"

namespace dcl1::core
{

/** Simulation length control. */
struct ExperimentOptions
{
    Cycle measureCycles = 30000;
    Cycle warmupCycles = 40000;

    /**
     * Read DCL1_CYCLES / DCL1_WARMUP from the environment (defaults
     * above). Lets users trade fidelity for runtime.
     */
    static ExperimentOptions fromEnv();
};

/** Run one simulation and return its metrics. */
RunMetrics runOnce(const SystemConfig &sys, const DesignConfig &design,
                   const workload::WorkloadParams &app,
                   const ExperimentOptions &opts);

/** Geometric mean of strictly positive values. */
double geoMean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

} // namespace dcl1::core

#endif // DCL1_CORE_EXPERIMENT_HH
