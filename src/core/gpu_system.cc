#include "core/gpu_system.hh"

#include <algorithm>
#include <limits>

#include "check/check.hh"
#include "check/request_ledger.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "noc/packet.hh"
#include "prof/prof.hh"

namespace dcl1::core
{

Cycle
timelineIntervalFromEnv()
{
    return static_cast<Cycle>(
        envIntOr("DCL1_TIMELINE_INTERVAL", 1024, 1,
                 std::numeric_limits<std::int64_t>::max()));
}

workload::WorkloadParams
effectiveWorkload(const DesignConfig &design, workload::WorkloadParams app)
{
    if (design.distributedCta) {
        // The distributed CTA scheduler [28] maps nearby CTAs to the
        // same core, confining each core's shared accesses to a range
        // small enough that even a private L1 captures much of it
        // (this is why the scheduler shrinks the paper's DC-L1
        // headroom).
        app.ctaLocality = std::max(app.ctaLocality, 0.85);
    }
    return app;
}

GpuSystem::GpuSystem(const SystemConfig &sys, const DesignConfig &design,
                     const workload::WorkloadParams &app,
                     std::unique_ptr<workload::TraceSource> source)
    : sys_(sys), design_(design),
      addrMap_(sys.numL2Slices, sys.numChannels, sys.chunkBytes)
{
    DCL1_PROF_SCOPE(Build);
    sys_.validate();
    design_.validate(sys_);
    buildCommon(&app, std::move(source));
    switch (design_.topology) {
      case Topology::PrivateBaseline:
        buildBaseline();
        break;
      case Topology::CdXbar:
        buildCdx();
        break;
      case Topology::DcL1:
        buildDcl1();
        break;
    }
}

GpuSystem::GpuSystem(const SystemConfig &sys, const DesignConfig &design)
    : sys_(sys), design_(design),
      addrMap_(sys.numL2Slices, sys.numChannels, sys.chunkBytes)
{
    DCL1_PROF_SCOPE(Build);
    sys_.validate();
    design_.validate(sys_);
    buildCommon(nullptr, nullptr);
    switch (design_.topology) {
      case Topology::PrivateBaseline:
        buildBaseline();
        break;
      case Topology::CdXbar:
        buildCdx();
        break;
      case Topology::DcL1:
        buildDcl1();
        break;
    }
}

GpuSystem::~GpuSystem()
{
    // Never leave a dangling thread-local trace sink behind.
    if (trace_ && stats::tlsTraceSink() == trace_)
        stats::tlsTraceSink() = nullptr;
}

mem::CacheBankParams
GpuSystem::l1BankParams() const
{
    mem::CacheBankParams p;
    p.name = "l1";
    p.sizeBytes = design_.l1SizeFor(sys_);
    p.assoc = sys_.l1Assoc;
    p.lineBytes = sys_.lineBytes;
    p.latency = design_.l1LatencyFor(sys_);
    p.mshrs = sys_.l1Mshrs;
    p.targetsPerMshr = sys_.l1TargetsPerMshr;
    p.policy = sys_.l1WritePolicy;
    p.repl = sys_.l1Repl;
    p.perfect = design_.perfectL1;
    if (design_.topology == Topology::DcL1) {
        // Aggregated nodes serve several cores: scale the MSHR file
        // with the aggregation factor (capacity is aggregated), and
        // scale the merge-target capacity with the worst-case sharing
        // degree so cross-core merging does not head-of-line block Q1.
        p.mshrs = sys_.l1Mshrs * design_.coresPerNode(sys_);
        const std::uint32_t sharers = design_.coresPerCluster(sys_);
        p.targetsPerMshr = sys_.l1TargetsPerMshr *
                           std::max<std::uint32_t>(1, sharers / 4);
        p.downstreamCap = 8 * design_.coresPerNode(sys_);
    }
    // Larger caches need associativity to scale a little for LRU not
    // to be the bottleneck in capacity studies (16x L1 of Fig. 1).
    if (design_.l1CapacityScale > 1.0)
        p.assoc = sys_.l1Assoc * 2;
    return p;
}

mem::CacheBankParams
GpuSystem::l2BankParams() const
{
    mem::CacheBankParams p;
    p.name = "l2";
    p.sizeBytes = sys_.l2SliceSizeBytes;
    p.assoc = sys_.l2Assoc;
    p.lineBytes = sys_.lineBytes;
    p.latency = sys_.l2Latency;
    p.mshrs = sys_.l2Mshrs;
    p.targetsPerMshr = sys_.l2TargetsPerMshr;
    p.downstreamCap = 16;
    p.policy = mem::WritePolicy::WriteBack;
    p.repl = sys_.l2Repl;
    p.tlmSeg = stats::Seg::L2;
    return p;
}

void
GpuSystem::buildCommon(const workload::WorkloadParams *app,
                       std::unique_ptr<workload::TraceSource> source)
{
    if (source) {
        source_ = std::move(source);
    } else if (app) {
        source_ = std::make_unique<workload::SyntheticSource>(
            effectiveWorkload(design_, *app), sys_.numCores,
            sys_.lineBytes, sys_.seed);
    }

    const std::uint32_t tracked_caches =
        design_.topology == Topology::DcL1 ? design_.numNodes
                                           : sys_.numCores;
    tracker_ = std::make_unique<mem::ReplicationTracker>(tracked_caches);

    // Memory side is common to all topologies.
    for (std::uint32_t c = 0; c < sys_.numChannels; ++c) {
        mem::DramParams dp = sys_.dram;
        dp.name = "dram" + std::to_string(c);
        dp.chunkBytes = sys_.chunkBytes;
        dp.numChannels = sys_.numChannels;
        channels_.push_back(std::make_unique<mem::DramChannel>(dp));
    }
    for (SliceId s = 0; s < sys_.numL2Slices; ++s) {
        mem::CacheBankParams l2p = l2BankParams();
        l2p.name = "l2s" + std::to_string(s);
        slices_.push_back(std::make_unique<mem::L2Slice>(
            l2p, s, channels_[addrMap_.channelOfSlice(s)].get()));
    }
}

void
GpuSystem::buildBaseline()
{
    for (CoreId c = 0; c < sys_.numCores; ++c) {
        gpucore::LiteCoreParams cp;
        cp.id = c;
        cp.sched = sys_.warpScheduler;
        cp.lineBytes = sys_.lineBytes;
        cp.hasL1 = true;
        cp.l1 = l1BankParams();
        cores_.push_back(std::make_unique<gpucore::LiteCore>(
            cp, source_.get(), tracker_.get()));
    }

    noc::XbarParams req;
    req.name = "noc.req";
    req.numInputs = sys_.numCores;
    req.numOutputs = sys_.numL2Slices;
    req.clockRatio = design_.noc2ClockRatio;
    mainReq_ = std::make_unique<noc::Crossbar>(req);

    noc::XbarParams rep;
    rep.name = "noc.reply";
    rep.numInputs = sys_.numL2Slices;
    rep.numOutputs = sys_.numCores;
    rep.clockRatio = design_.noc2ClockRatio;
    mainReply_ = std::make_unique<noc::Crossbar>(rep);
}

void
GpuSystem::buildCdx()
{
    for (CoreId c = 0; c < sys_.numCores; ++c) {
        gpucore::LiteCoreParams cp;
        cp.id = c;
        cp.sched = sys_.warpScheduler;
        cp.lineBytes = sys_.lineBytes;
        cp.hasL1 = true;
        cp.l1 = l1BankParams();
        cores_.push_back(std::make_unique<gpucore::LiteCore>(
            cp, source_.get(), tracker_.get()));
    }

    noc::CdxParams req;
    req.name = "cdx.req";
    req.direction = noc::CdxDirection::Concentrate;
    req.clusters = design_.cdxClusters;
    req.perCluster = sys_.numCores / design_.cdxClusters;
    req.trunksPerCluster = design_.cdxTrunksPerCluster;
    req.globalPorts = sys_.numL2Slices;
    req.localClockRatio = design_.cdxLocalClockRatio;
    req.globalClockRatio = design_.cdxGlobalClockRatio;
    cdxReq_ = std::make_unique<noc::CdXbarNet>(req);

    noc::CdxParams rep = req;
    rep.name = "cdx.reply";
    rep.direction = noc::CdxDirection::Distribute;
    cdxReply_ = std::make_unique<noc::CdXbarNet>(rep);
}

void
GpuSystem::buildDcl1()
{
    org_ = std::make_unique<Organization>(design_, sys_);

    for (CoreId c = 0; c < sys_.numCores; ++c) {
        gpucore::LiteCoreParams cp;
        cp.id = c;
        cp.sched = sys_.warpScheduler;
        cp.lineBytes = sys_.lineBytes;
        cp.hasL1 = false; // the paper's "Lite Core"
        cores_.push_back(std::make_unique<gpucore::LiteCore>(
            cp, source_.get(), nullptr));
    }

    for (NodeId n = 0; n < design_.numNodes; ++n) {
        nodes_.push_back(std::make_unique<DcL1Node>(
            l1BankParams(), n, sys_.nodeQueueCap, tracker_.get(),
            design_.fullLineReplies));
    }

    const std::uint32_t z = design_.clusters;
    const std::uint32_t n_per = org_->coresPerCluster();
    const std::uint32_t m = org_->nodesPerCluster();

    for (std::uint32_t zi = 0; zi < z; ++zi) {
        noc::XbarParams req;
        req.name = "noc1.req" + std::to_string(zi);
        req.numInputs = n_per;
        req.numOutputs = m;
        req.clockRatio = design_.noc1ClockRatio;
        noc1Req_.push_back(std::make_unique<noc::Crossbar>(req));

        noc::XbarParams rep;
        rep.name = "noc1.reply" + std::to_string(zi);
        rep.numInputs = m;
        rep.numOutputs = n_per;
        rep.clockRatio = design_.noc1ClockRatio;
        noc1Reply_.push_back(std::make_unique<noc::Crossbar>(rep));
    }

    if (org_->partitionedNoc2()) {
        const std::uint32_t slices_per = sys_.numL2Slices / m;
        for (std::uint32_t g = 0; g < m; ++g) {
            noc::XbarParams req;
            req.name = "noc2.req" + std::to_string(g);
            req.numInputs = z;
            req.numOutputs = slices_per;
            req.clockRatio = design_.noc2ClockRatio;
            noc2Req_.push_back(std::make_unique<noc::Crossbar>(req));

            noc::XbarParams rep;
            rep.name = "noc2.reply" + std::to_string(g);
            rep.numInputs = slices_per;
            rep.numOutputs = z;
            rep.clockRatio = design_.noc2ClockRatio;
            noc2Reply_.push_back(std::make_unique<noc::Crossbar>(rep));
        }
    } else {
        noc::XbarParams req;
        req.name = "noc2.req";
        req.numInputs = design_.numNodes;
        req.numOutputs = sys_.numL2Slices;
        req.clockRatio = design_.noc2ClockRatio;
        noc2Req_.push_back(std::make_unique<noc::Crossbar>(req));

        noc::XbarParams rep;
        rep.name = "noc2.reply";
        rep.numInputs = sys_.numL2Slices;
        rep.numOutputs = design_.numNodes;
        rep.clockRatio = design_.noc2ClockRatio;
        noc2Reply_.push_back(std::make_unique<noc::Crossbar>(rep));
    }
}

void
GpuSystem::tickMemory()
{
    {
        DCL1_PROF_SCOPE(Dram);
        for (std::uint32_t c = 0; c < sys_.numChannels; ++c) {
            channels_[c]->tick(cycle_);
            while (auto done = channels_[c]->takeCompleted(cycle_)) {
                const SliceId s = (*done)->slice;
                if (s >= slices_.size())
                    panic("DRAM reply with bad slice %u", s);
                slices_[s]->onDramReply(std::move(*done), cycle_);
            }
        }
    }
    {
        DCL1_PROF_SCOPE(L2);
        for (auto &slice : slices_)
            slice->tick(cycle_);
    }
}

void
GpuSystem::countQuiescent()
{
    std::uint64_t idle_cores = 0;
    for (const auto &core : cores_)
        if (!core->busy())
            ++idle_cores;
    DCL1_PROF_COUNT(QuiescentCore, idle_cores);
    std::uint64_t idle_nodes = 0;
    for (const auto &node : nodes_)
        if (!node->busy())
            ++idle_nodes;
    DCL1_PROF_COUNT(QuiescentNode, idle_nodes);
}

void
GpuSystem::tickOnce()
{
    ++cycle_;
    DCL1_PROF_COUNT(TickCycles, 1);
    if (prof::active())
        countQuiescent();
    tickMemory();
    switch (design_.topology) {
      case Topology::PrivateBaseline:
        tickBaseline();
        break;
      case Topology::CdXbar:
        tickCdx();
        break;
      case Topology::DcL1:
        tickDcl1();
        break;
    }
}

void
GpuSystem::tickBaseline()
{
    {
        DCL1_PROF_SCOPE(Noc);
        // L2 replies -> reply crossbar.
        for (SliceId s = 0; s < sys_.numL2Slices; ++s) {
            while (mainReply_->canInject(s)) {
                auto reply = slices_[s]->takeReply();
                if (!reply)
                    break;
                stats::tlmEnter((*reply)->tlm, stats::Seg::NocReply,
                                cycle_);
                noc::Packet pkt;
                pkt.src = s;
                pkt.dst = (*reply)->core;
                pkt.flits = noc::flitsFor(**reply, sys_.flitBytes);
                pkt.req = std::move(*reply);
                mainReply_->inject(std::move(pkt));
            }
        }

        mainReq_->tick();
        mainReply_->tick();

        // Request ejection -> L2 slices (with backpressure).
        for (SliceId s = 0; s < sys_.numL2Slices; ++s) {
            while (mainReq_->hasEjectable(s) &&
                   slices_[s]->canAcceptRequest()) {
                auto pkt = mainReq_->eject(s);
                slices_[s]->pushRequest(std::move(pkt->req), cycle_);
            }
        }
        // Reply ejection -> cores.
        for (CoreId c = 0; c < sys_.numCores; ++c) {
            while (mainReply_->hasEjectable(c)) {
                auto pkt = mainReply_->eject(c);
                cores_[c]->deliverReply(std::move(pkt->req), cycle_);
            }
        }
    }

    // Core outbound (L1 misses, write-throughs, atomics, bypass).
    DCL1_PROF_SCOPE(Core);
    for (CoreId c = 0; c < sys_.numCores; ++c) {
        while (cores_[c]->hasOutbound() && mainReq_->canInject(c)) {
            auto req = cores_[c]->takeOutbound();
            (*req)->slice = addrMap_.slice((*req)->addr);
            stats::tlmEnter((*req)->tlm, stats::Seg::NocReq, cycle_);
            noc::Packet pkt;
            pkt.src = c;
            pkt.dst = (*req)->slice;
            pkt.flits = noc::flitsFor(**req, sys_.flitBytes);
            pkt.req = std::move(*req);
            mainReq_->inject(std::move(pkt));
        }
        cores_[c]->tick(cycle_);
    }
}

void
GpuSystem::tickCdx()
{
    {
        DCL1_PROF_SCOPE(Noc);
        for (SliceId s = 0; s < sys_.numL2Slices; ++s) {
            while (cdxReply_->canInject(s)) {
                auto reply = slices_[s]->takeReply();
                if (!reply)
                    break;
                const CoreId dst = (*reply)->core;
                const std::uint32_t flits =
                    noc::flitsFor(**reply, sys_.flitBytes);
                stats::tlmEnter((*reply)->tlm, stats::Seg::NocReply,
                                cycle_);
                cdxReply_->inject(s, dst, std::move(*reply), flits);
            }
        }

        cdxReq_->tick();
        cdxReply_->tick();

        for (SliceId s = 0; s < sys_.numL2Slices; ++s) {
            while (slices_[s]->canAcceptRequest()) {
                auto req = cdxReq_->eject(s);
                if (!req)
                    break;
                slices_[s]->pushRequest(std::move(*req), cycle_);
            }
        }
        for (CoreId c = 0; c < sys_.numCores; ++c) {
            while (auto reply = cdxReply_->eject(c))
                cores_[c]->deliverReply(std::move(*reply), cycle_);
        }
    }

    DCL1_PROF_SCOPE(Core);
    for (CoreId c = 0; c < sys_.numCores; ++c) {
        while (cores_[c]->hasOutbound() && cdxReq_->canInject(c)) {
            auto req = cores_[c]->takeOutbound();
            (*req)->slice = addrMap_.slice((*req)->addr);
            const std::uint32_t flits =
                noc::flitsFor(**req, sys_.flitBytes);
            const SliceId dst = (*req)->slice;
            stats::tlmEnter((*req)->tlm, stats::Seg::NocReq, cycle_);
            cdxReq_->inject(c, dst, std::move(*req), flits);
        }
        cores_[c]->tick(cycle_);
    }
}

void
GpuSystem::tickDcl1()
{
    const std::uint32_t m = org_->nodesPerCluster();
    const std::uint32_t n_per = org_->coresPerCluster();
    const bool partitioned = org_->partitionedNoc2();

    prof::ProfPhase noc_scope(prof::Phase::Noc);

    // L2 replies -> NoC#2 reply crossbars.
    for (SliceId s = 0; s < sys_.numL2Slices; ++s) {
        const std::uint32_t g = partitioned ? s % m : 0;
        const std::uint32_t in = partitioned ? s / m : s;
        noc::Crossbar &xbar = *noc2Reply_[g];
        while (xbar.canInject(in)) {
            auto reply = slices_[s]->takeReply();
            if (!reply)
                break;
            ++dbgL2Replies;
            const NodeId node = (*reply)->homeNode;
            stats::tlmEnter((*reply)->tlm, stats::Seg::NocReply, cycle_);
            noc::Packet pkt;
            pkt.src = in;
            pkt.dst = partitioned ? org_->clusterOfNode(node) : node;
            pkt.flits = noc::flitsFor(**reply, sys_.flitBytes);
            pkt.req = std::move(*reply);
            xbar.inject(std::move(pkt));
        }
    }

    for (auto &x : noc1Req_)
        x->tick();
    for (auto &x : noc1Reply_)
        x->tick();
    for (auto &x : noc2Req_)
        x->tick();
    for (auto &x : noc2Reply_)
        x->tick();

    // NoC#2 ejections.
    for (SliceId s = 0; s < sys_.numL2Slices; ++s) {
        const std::uint32_t g = partitioned ? s % m : 0;
        const std::uint32_t out = partitioned ? s / m : s;
        noc::Crossbar &xbar = *noc2Req_[g];
        while (xbar.hasEjectable(out) && slices_[s]->canAcceptRequest()) {
            auto pkt = xbar.eject(out);
            slices_[s]->pushRequest(std::move(pkt->req), cycle_);
        }
    }
    for (NodeId n = 0; n < design_.numNodes; ++n) {
        const std::uint32_t g = partitioned ? n % m : 0;
        const std::uint32_t out = partitioned ? org_->clusterOfNode(n) : n;
        noc::Crossbar &xbar = *noc2Reply_[g];
        while (xbar.hasEjectable(out) && nodes_[n]->canAcceptFromMem()) {
            auto pkt = xbar.eject(out);
            ++dbgNodeFromMem;
            // Time queued in Q4 (and the fill itself) is cache time.
            stats::tlmEnter(pkt->req->tlm, stats::Seg::Cache, cycle_);
            nodes_[n]->pushFromMem(std::move(pkt->req));
        }
    }

    // NoC#1 ejections.
    for (NodeId n = 0; n < design_.numNodes; ++n) {
        const std::uint32_t z = org_->clusterOfNode(n);
        const std::uint32_t local = n % m;
        noc::Crossbar &xbar = *noc1Req_[z];
        while (xbar.hasEjectable(local) &&
               nodes_[n]->canAcceptFromCore()) {
            auto pkt = xbar.eject(local);
            // Time queued in Q1 counts against the DC-L1 cache.
            stats::tlmEnter(pkt->req->tlm, stats::Seg::Cache, cycle_);
            nodes_[n]->pushFromCore(std::move(pkt->req));
        }
    }
    for (CoreId c = 0; c < sys_.numCores; ++c) {
        const std::uint32_t z = org_->clusterOfCore(c);
        const std::uint32_t local = c % n_per;
        noc::Crossbar &xbar = *noc1Reply_[z];
        while (xbar.hasEjectable(local)) {
            auto pkt = xbar.eject(local);
            cores_[c]->deliverReply(std::move(pkt->req), cycle_);
        }
    }

    noc_scope.stop();

    // DC-L1 nodes tick, then inject into both NoCs.
    prof::ProfPhase node_scope(prof::Phase::Node);
    for (NodeId n = 0; n < design_.numNodes; ++n) {
        DcL1Node &node = *nodes_[n];
        node.tick(cycle_);

        const std::uint32_t z = org_->clusterOfNode(n);
        const std::uint32_t local = n % m;

        // Q3 -> NoC#2 request side.
        {
            const std::uint32_t g = partitioned ? local : 0;
            const std::uint32_t in = partitioned ? z : n;
            noc::Crossbar &xbar = *noc2Req_[g];
            while (node.hasToMem() && xbar.canInject(in)) {
                auto req = node.takeToMem();
                ++dbgNodeToMem;
                (*req)->slice = addrMap_.slice((*req)->addr);
                stats::tlmEnter((*req)->tlm, stats::Seg::NocReq, cycle_);
                noc::Packet pkt;
                pkt.src = in;
                pkt.dst = partitioned ? (*req)->slice / m : (*req)->slice;
                pkt.flits = noc::flitsFor(**req, sys_.flitBytes);
                pkt.req = std::move(*req);
                xbar.inject(std::move(pkt));
            }
        }

        // Q2 -> NoC#1 reply side.
        {
            noc::Crossbar &xbar = *noc1Reply_[z];
            while (node.hasToCore() && xbar.canInject(local)) {
                auto reply = node.takeToCore();
                stats::tlmEnter((*reply)->tlm, stats::Seg::NocReply,
                                cycle_);
                noc::Packet pkt;
                pkt.src = local;
                pkt.dst = (*reply)->core % n_per;
                pkt.flits = noc::flitsFor(**reply, sys_.flitBytes);
                pkt.req = std::move(*reply);
                xbar.inject(std::move(pkt));
            }
        }
    }

    node_scope.stop();

    // Cores inject into NoC#1 request side, then tick.
    DCL1_PROF_SCOPE(Core);
    for (CoreId c = 0; c < sys_.numCores; ++c) {
        const std::uint32_t z = org_->clusterOfCore(c);
        const std::uint32_t local = c % n_per;
        noc::Crossbar &xbar = *noc1Req_[z];
        while (cores_[c]->hasOutbound() && xbar.canInject(local)) {
            auto req = cores_[c]->takeOutbound();
            const NodeId home = org_->homeNode(c, (*req)->addr);
            (*req)->homeNode = home;
            stats::tlmEnter((*req)->tlm, stats::Seg::NocReq, cycle_);
            noc::Packet pkt;
            pkt.src = local;
            pkt.dst = home % m;
            pkt.flits = noc::flitsFor(**req, sys_.flitBytes);
            pkt.req = std::move(*req);
            xbar.inject(std::move(pkt));
        }
        cores_[c]->tick(cycle_);
    }
}

namespace
{

/**
 * Arms the in-loop leak checks and guarantees they are disarmed even
 * when the loop is abandoned by an exception (cycle-budget watchdog,
 * trapped panic): teardown of a half-simulated machine legitimately
 * destroys in-flight requests.
 */
struct RunLoopGuard
{
    RunLoopGuard()
    {
        mem::gFetchLeakCheck = true;
        // Inside the cycle loop every request destruction must follow
        // a retirement; partially simulated systems torn down outside
        // run() legitimately destroy in-flight requests.
        DCL1_CHECK_ONLY(check::ledger().setStrictDestroy(true));
    }

    ~RunLoopGuard()
    {
        DCL1_CHECK_ONLY(check::ledger().setStrictDestroy(false));
        mem::gFetchLeakCheck = false;
    }
};

} // anonymous namespace

void
GpuSystem::run(Cycle measure_cycles, Cycle warmup_cycles,
               const CycleHeartbeat &heartbeat, const CycleHook &on_cycle)
{
    RunLoopGuard guard;
    DCL1_PROF_SCOPE(Run);
    for (Cycle i = 0; i < warmup_cycles; ++i) {
        tickOnce();
        if (timeline_) {
            DCL1_PROF_SCOPE(Telemetry);
            timeline_->maybeSample(cycle_);
        }
        if ((i & 4095) == 4095) {
            DCL1_CHECK_ONLY({
                DCL1_PROF_SCOPE(Check);
                checkInvariants("warmup");
            });
            if (heartbeat)
                heartbeat(cycle_);
        }
    }
    resetStats();
    for (Cycle i = 0; i < measure_cycles; ++i) {
        tickOnce();
        if (timeline_) {
            DCL1_PROF_SCOPE(Telemetry);
            timeline_->maybeSample(cycle_);
        }
        if (on_cycle && !on_cycle(cycle_))
            break;
        if ((i & 4095) == 4095) {
            DCL1_CHECK_ONLY({
                DCL1_PROF_SCOPE(Check);
                checkInvariants("measure");
            });
            if (heartbeat)
                heartbeat(cycle_);
        }
    }
}

void
GpuSystem::resetStats()
{
    // The timeline must emit the tail of the pre-reset interval while
    // the counters it differences still hold their pre-reset values.
    if (timeline_)
        timeline_->flushTail(cycle_);

    statStart_ = cycle_;
    for (auto &core : cores_)
        core->statGroup().reset();
    for (auto &node : nodes_)
        node->statGroup().reset();
    for (auto &slice : slices_)
        slice->bank().statGroup().reset();
    for (auto &ch : channels_)
        ch->statGroup().reset();
    tracker_->resetStats();

    auto reset_xbar = [](std::unique_ptr<noc::Crossbar> &x) {
        if (x)
            x->resetStats();
    };
    reset_xbar(mainReq_);
    reset_xbar(mainReply_);
    for (auto &x : noc1Req_)
        x->resetStats();
    for (auto &x : noc1Reply_)
        x->resetStats();
    for (auto &x : noc2Req_)
        x->resetStats();
    for (auto &x : noc2Reply_)
        x->resetStats();
    if (cdxReq_)
        cdxReq_->resetStats();
    if (cdxReply_)
        cdxReply_->resetStats();
    if (tlm_)
        tlm_->reset();

    // Counters just snapped back to zero: re-read every probe baseline
    // so the first measured interval differences against zero, not the
    // warmup totals (unsigned deltas would underflow otherwise).
    if (timeline_)
        timeline_->rebase(cycle_);
}

bool
GpuSystem::busy()
{
    for (auto &core : cores_)
        if (core->busy())
            return true;
    for (auto &node : nodes_)
        if (node->busy())
            return true;
    for (auto &slice : slices_)
        if (slice->busy())
            return true;
    for (auto &ch : channels_)
        if (ch->busy())
            return true;
    auto xbar_busy = [](std::unique_ptr<noc::Crossbar> &x) {
        return x && x->busy();
    };
    if (xbar_busy(mainReq_) || xbar_busy(mainReply_))
        return true;
    for (auto &x : noc1Req_)
        if (x->busy())
            return true;
    for (auto &x : noc1Reply_)
        if (x->busy())
            return true;
    for (auto &x : noc2Req_)
        if (x->busy())
            return true;
    for (auto &x : noc2Reply_)
        if (x->busy())
            return true;
    if (cdxReq_ && cdxReq_->busy())
        return true;
    if (cdxReply_ && cdxReply_->busy())
        return true;
    return false;
}

bool
GpuSystem::drain(Cycle max_cycles)
{
    draining_ = true;
    DCL1_PROF_SCOPE(Drain);
    for (auto &core : cores_)
        core->setIssueEnabled(false);
    Cycle waited = 0;
    while (busy() && waited < max_cycles) {
        tickOnce();
        ++waited;
    }
    for (auto &core : cores_)
        core->setIssueEnabled(true);
    draining_ = false;
    const bool drained = !busy();
    if (drained) {
        // With the machine empty, every registered request must have
        // retired, and directory/tag state must agree exactly.
        checkInvariants("drain");
        DCL1_CHECK_ONLY(check::ledger().audit("drain"));
    }
    return drained;
}

void
GpuSystem::checkInvariants(const char *where)
{
#if DCL1_CHECK_ENABLED
    // Tag arrays vs. the replication directory: every valid line in a
    // tracked cache must be recorded as held by that cache, and the
    // directory must hold no phantom presence (total copy count equals
    // total tag occupancy).
    std::uint64_t occupancy = 0;
    auto check_bank = [&](const mem::CacheBank &bank) {
        if (bank.params().perfect)
            return;
        bank.tags().forEachValidLine([&](LineAddr line) {
            ++occupancy;
            if (!tracker_->holds(bank.cacheId(), line))
                panic("checkInvariants(%s): cache %u holds line %llx "
                      "missing from the replication directory",
                      where, bank.cacheId(),
                      static_cast<unsigned long long>(line));
        });
    };
    if (design_.topology == Topology::DcL1) {
        for (const auto &node : nodes_)
            check_bank(node->cache());
    } else {
        for (const auto &core : cores_)
            if (core->l1())
                check_bank(*core->l1());
    }
    if (tracker_->totalPresence() != occupancy)
        panic("checkInvariants(%s): replication directory records %llu "
              "copies but tag arrays hold %llu lines",
              where,
              static_cast<unsigned long long>(tracker_->totalPresence()),
              static_cast<unsigned long long>(occupancy));

    // NoC internal bookkeeping (crossbars also self-audit on their own
    // NoC-cycle cadence; this forces a full sweep now).
    if (mainReq_)
        mainReq_->checkInvariants();
    if (mainReply_)
        mainReply_->checkInvariants();
    for (const auto &x : noc1Req_)
        x->checkInvariants();
    for (const auto &x : noc1Reply_)
        x->checkInvariants();
    for (const auto &x : noc2Req_)
        x->checkInvariants();
    for (const auto &x : noc2Reply_)
        x->checkInvariants();
    if (cdxReq_)
        cdxReq_->checkInvariants();
    if (cdxReply_)
        cdxReply_->checkInvariants();
#else
    (void)where;
#endif // DCL1_CHECK_ENABLED
}

void
GpuSystem::addStatChildren(stats::StatGroup &root)
{
    for (auto &core : cores_)
        root.addChild(&core->statGroup());
    for (auto &node : nodes_)
        root.addChild(&node->statGroup());
    for (auto &slice : slices_)
        root.addChild(&slice->bank().statGroup());
    for (auto &ch : channels_)
        root.addChild(&ch->statGroup());
    root.addChild(&tracker_->statGroup());
    auto add_xbar = [&](std::unique_ptr<noc::Crossbar> &x) {
        if (x)
            root.addChild(&x->statGroup());
    };
    add_xbar(mainReq_);
    add_xbar(mainReply_);
    for (auto &x : noc1Req_)
        root.addChild(&x->statGroup());
    for (auto &x : noc1Reply_)
        root.addChild(&x->statGroup());
    for (auto &x : noc2Req_)
        root.addChild(&x->statGroup());
    for (auto &x : noc2Reply_)
        root.addChild(&x->statGroup());
    if (tlm_)
        root.addChild(&tlm_->statGroup());
}

void
GpuSystem::dumpStats(std::ostream &os)
{
    stats::StatGroup root("gpu");
    addStatChildren(root);
    root.dump(os);
}

void
GpuSystem::dumpStatsJson(std::ostream &os)
{
    stats::StatGroup root("gpu");
    addStatChildren(root);
    root.dumpJson(os);
    os << "\n";
}

void
GpuSystem::enableTimeline(Cycle interval, stats::LineSink sink)
{
    timeline_ = std::make_unique<stats::TimelineSampler>(interval,
                                                         std::move(sink));
    registerTimelineProbes();
    timeline_->start(cycle_);
}

void
GpuSystem::registerTimelineProbes()
{
    stats::TimelineSampler &tl = *timeline_;
    const bool dcl1 = design_.topology == Topology::DcL1;

    tl.addPerCycle("ipc", [this] {
        std::uint64_t sum = 0;
        for (auto &core : cores_)
            sum += core->instructions();
        return sum;
    });

    auto l1_misses = [this, dcl1] {
        std::uint64_t sum = 0;
        if (dcl1) {
            for (auto &node : nodes_)
                sum += node->cache().misses();
        } else {
            for (auto &core : cores_)
                if (core->l1())
                    sum += core->l1()->misses();
        }
        return sum;
    };
    auto l1_accesses = [this, dcl1] {
        std::uint64_t sum = 0;
        if (dcl1) {
            for (auto &node : nodes_)
                sum += node->cache().accesses();
        } else {
            for (auto &core : cores_)
                if (core->l1())
                    sum += core->l1()->accesses();
        }
        return sum;
    };
    tl.addRatio("l1_miss_rate", l1_misses, l1_accesses);

    // Interval replication ratio, through the dotted-path stat lookup
    // the tracker registers its counters under.
    const stats::Scalar *rep =
        tracker_->statGroup().findScalar("replicated_misses");
    const stats::Scalar *all = tracker_->statGroup().findScalar("misses");
    if (rep && all) {
        tl.addRatio(
            "repl_ratio", [rep] { return rep->value(); },
            [all] { return all->value(); });
    }

    tl.addRatio(
        "l2_miss_rate",
        [this] {
            std::uint64_t sum = 0;
            for (auto &slice : slices_)
                sum += slice->bank().misses();
            return sum;
        },
        [this] {
            std::uint64_t sum = 0;
            for (auto &slice : slices_)
                sum += slice->bank().accesses();
            return sum;
        });

    switch (design_.topology) {
      case Topology::PrivateBaseline:
        tl.addPerCycle("noc2_flits", [this] {
            return mainReq_->totalFlits() + mainReply_->totalFlits();
        });
        break;
      case Topology::CdXbar:
        tl.addPerCycle("noc1_flits", [this] {
            std::uint64_t sum = 0;
            for (auto &x : cdxReq_->localXbars())
                sum += x->totalFlits();
            for (auto &x : cdxReply_->localXbars())
                sum += x->totalFlits();
            return sum;
        });
        tl.addPerCycle("noc2_flits", [this] {
            return cdxReq_->globalXbar().totalFlits() +
                   cdxReply_->globalXbar().totalFlits();
        });
        break;
      case Topology::DcL1:
        tl.addPerCycle("noc1_flits", [this] {
            std::uint64_t sum = 0;
            for (auto &x : noc1Req_)
                sum += x->totalFlits();
            for (auto &x : noc1Reply_)
                sum += x->totalFlits();
            return sum;
        });
        tl.addPerCycle("noc2_flits", [this] {
            std::uint64_t sum = 0;
            for (auto &x : noc2Req_)
                sum += x->totalFlits();
            for (auto &x : noc2Reply_)
                sum += x->totalFlits();
            return sum;
        });
        break;
    }

    auto mshr_in_use = [this, dcl1] {
        std::size_t sum = 0;
        if (dcl1) {
            for (auto &node : nodes_)
                sum += node->cache().mshrInUse();
        } else {
            for (auto &core : cores_)
                if (core->l1())
                    sum += core->l1()->mshrInUse();
        }
        return sum;
    };
    tl.addGauge("mshr_occupancy",
                [mshr_in_use] { return double(mshr_in_use()); });

    tl.addRatio(
        "dram_row_hit_rate",
        [this] {
            std::uint64_t sum = 0;
            for (auto &ch : channels_)
                if (const auto *h = ch->statGroup().findScalar("row_hits"))
                    sum += h->value();
            return sum;
        },
        [this] {
            std::uint64_t sum = 0;
            for (auto &ch : channels_) {
                if (const auto *h = ch->statGroup().findScalar("row_hits"))
                    sum += h->value();
                if (const auto *m =
                        ch->statGroup().findScalar("row_misses"))
                    sum += m->value();
            }
            return sum;
        });
    tl.addPerCycle("dram_access", [this] {
        std::uint64_t sum = 0;
        for (auto &ch : channels_)
            sum += ch->reads() + ch->writes();
        return sum;
    });
    auto dram_queue = [this] {
        std::size_t sum = 0;
        for (auto &ch : channels_)
            sum += ch->queueSize() + ch->inServiceSize();
        return sum;
    };
    tl.addGauge("dram_queue", [dram_queue] { return double(dram_queue()); });

    if (dcl1) {
        tl.addGaugeArray("node_q1", nodes_.size(), [this](std::size_t i) {
            return double(nodes_[i]->q1Size());
        });
        tl.addGaugeArray("node_q2", nodes_.size(), [this](std::size_t i) {
            return double(nodes_[i]->q2Size());
        });
        tl.addGaugeArray("node_q3", nodes_.size(), [this](std::size_t i) {
            return double(nodes_[i]->q3Size());
        });
        tl.addGaugeArray("node_q4", nodes_.size(), [this](std::size_t i) {
            return double(nodes_[i]->q4Size());
        });
    }

    // Per-interval utilization tracks for the trace exporter: already
    // decimated to one point per timeline interval.
    tl.setSampleHook([this, mshr_in_use, dram_queue](Cycle now, Cycle) {
        if (!trace_)
            return;
        trace_->counterEvent("mshr_occupancy", now, // lint: trace-ok
                             double(mshr_in_use()));
        trace_->counterEvent("dram_queue", now, // lint: trace-ok
                             double(dram_queue()));
    });
}

void
GpuSystem::enableLatency(std::uint32_t sample_every)
{
    tlm_ = std::make_unique<stats::LatencyAttribution>(
        sys_.seed ^ 0x9e3779b97f4a7c15ull, sample_every);
    for (auto &core : cores_)
        core->setTelemetry(tlm_.get());
}

void
GpuSystem::enableTrace(stats::TraceExport *trace)
{
    if (trace_ && stats::tlsTraceSink() == trace_)
        stats::tlsTraceSink() = nullptr;
    trace_ = trace;
    if (trace_)
        stats::tlsTraceSink() = trace_;
}

void
GpuSystem::finishTelemetry()
{
    if (timeline_)
        timeline_->finish(cycle_);
}

RunMetrics
GpuSystem::metrics()
{
    RunMetrics rm;
    rm.cycles = cycle_ - statStart_;
    if (rm.cycles == 0)
        return rm;

    for (const auto &core : cores_)
        rm.instructions += core->instructions();
    rm.ipc = double(rm.instructions) / double(rm.cycles);

    // (DC-)L1 cache statistics.
    auto account_bank = [&](const mem::CacheBank &bank) {
        rm.l1Accesses += bank.accesses();
        rm.l1Misses += bank.misses();
        const double util =
            double(bank.accesses()) / double(rm.cycles);
        rm.maxL1PortUtil = std::max(rm.maxL1PortUtil, util);
    };
    if (design_.topology == Topology::DcL1) {
        for (const auto &node : nodes_)
            account_bank(node->cache());
    } else {
        for (const auto &core : cores_)
            if (core->l1())
                account_bank(*core->l1());
    }
    rm.l1MissRate = rm.l1Accesses
                        ? double(rm.l1Misses) / double(rm.l1Accesses)
                        : 0.0;

    rm.replicationRatio = tracker_->replicationRatio();
    rm.avgReplicas = tracker_->avgReplicas();

    // Latency.
    std::uint64_t lat_sum = 0;
    std::uint64_t lat_cnt = 0;
    for (const auto &core : cores_) {
        lat_sum += core->readLatencySum();
        lat_cnt += core->readsCompleted();
    }
    rm.avgReadLatency = lat_cnt ? double(lat_sum) / double(lat_cnt) : 0.0;

    // NoC link utilizations and flit activity.
    auto max_out_util = [](const noc::Crossbar &x) {
        double best = 0.0;
        for (std::uint32_t o = 0; o < x.params().numOutputs; ++o)
            best = std::max(best, x.outputUtilization(o));
        return best;
    };
    if (design_.topology == Topology::DcL1) {
        for (const auto &x : noc1Reply_) {
            rm.maxCoreReplyLinkUtil =
                std::max(rm.maxCoreReplyLinkUtil, max_out_util(*x));
        }
        for (const auto &x : noc2Reply_) {
            rm.maxMemReplyLinkUtil =
                std::max(rm.maxMemReplyLinkUtil, max_out_util(*x));
        }
        for (const auto &x : noc1Req_)
            rm.noc1Flits += x->totalFlits();
        for (const auto &x : noc1Reply_)
            rm.noc1Flits += x->totalFlits();
        for (const auto &x : noc2Req_)
            rm.noc2Flits += x->totalFlits();
        for (const auto &x : noc2Reply_)
            rm.noc2Flits += x->totalFlits();
    } else if (design_.topology == Topology::PrivateBaseline) {
        rm.maxCoreReplyLinkUtil = max_out_util(*mainReply_);
        rm.maxMemReplyLinkUtil = rm.maxCoreReplyLinkUtil;
        rm.noc2Flits =
            mainReq_->totalFlits() + mainReply_->totalFlits();
    } else {
        rm.maxCoreReplyLinkUtil = 0.0;
        for (auto &x : cdxReply_->localXbars()) {
            rm.maxCoreReplyLinkUtil =
                std::max(rm.maxCoreReplyLinkUtil, max_out_util(*x));
        }
        rm.maxMemReplyLinkUtil =
            max_out_util(cdxReply_->globalXbar());
        for (auto &x : cdxReq_->localXbars())
            rm.noc1Flits += x->totalFlits();
        for (auto &x : cdxReply_->localXbars())
            rm.noc1Flits += x->totalFlits();
        rm.noc2Flits = cdxReq_->globalXbar().totalFlits() +
                       cdxReply_->globalXbar().totalFlits();
    }

    for (const auto &slice : slices_) {
        rm.l2Accesses += slice->bank().accesses();
        rm.l2Misses += slice->bank().misses();
    }
    for (const auto &ch : channels_) {
        rm.dramReads += ch->reads();
        rm.dramWrites += ch->writes();
    }
    return rm;
}

} // namespace dcl1::core
