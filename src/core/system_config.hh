/**
 * @file
 * Platform configuration (the paper's Table II).
 *
 * 80 cores at 1400 MHz with private 16 KB 4-way write-evict L1s
 * (28-cycle latency, 128 B lines), 32 address-sliced L2 banks behind a
 * 700 MHz 80x32 crossbar with 32 B flits, and 16 GDDR5 channels.
 */

#ifndef DCL1_CORE_SYSTEM_CONFIG_HH
#define DCL1_CORE_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "gpucore/lite_core.hh"
#include "mem/cache_bank.hh"
#include "mem/dram.hh"

namespace dcl1::core
{

/** See file comment. */
struct SystemConfig
{
    std::uint32_t numCores = 80;
    std::uint32_t numL2Slices = 32;
    std::uint32_t numChannels = 16;
    std::uint32_t lineBytes = defaultLineBytes;
    std::uint32_t flitBytes = defaultFlitBytes;
    std::uint32_t chunkBytes = defaultChunkBytes;

    /// @name Private L1 (per core)
    /// @{
    std::uint32_t l1SizeBytes = 16 * 1024;
    std::uint32_t l1Assoc = 4;
    std::uint32_t l1Latency = 28;
    std::uint32_t l1Mshrs = 32;
    std::uint32_t l1TargetsPerMshr = 8;
    /// @}

    /// @name L2 slice
    /// @{
    std::uint32_t l2SliceSizeBytes = 128 * 1024;
    std::uint32_t l2Assoc = 8;
    std::uint32_t l2Latency = 20;
    std::uint32_t l2Mshrs = 128;
    std::uint32_t l2TargetsPerMshr = 16;
    /// @}

    /** Cache replacement policies (ablation knob). */
    mem::ReplPolicy l1Repl = mem::ReplPolicy::Lru;
    mem::ReplPolicy l2Repl = mem::ReplPolicy::Lru;

    /** L1/DC-L1 write policy (the paper fixes write-evict; the
     *  write-back option is a *timing* ablation — no coherence is
     *  modelled, which is why GPUs use write-evict here). */
    mem::WritePolicy l1WritePolicy = mem::WritePolicy::WriteEvict;

    /** Warp scheduler (GPGPU-Sim lrr vs gto). */
    gpucore::WarpSched warpScheduler =
        gpucore::WarpSched::LooseRoundRobin;

    /** Baseline NoC clock as a fraction of the core clock (700 MHz). */
    double nocClockRatio = 0.5;

    /** DC-L1 node queue depth (Q1..Q4; paper: four 128 B entries). */
    std::uint32_t nodeQueueCap = 4;

    /** GDDR5-like channel timing (core-cycle units). */
    mem::DramParams dram;

    /** Experiment seed (workload streams are deterministic in it). */
    std::uint64_t seed = 1;

    /** Scale the machine (e.g. the 120-core sensitivity study). */
    static SystemConfig
    scaled(std::uint32_t cores, std::uint32_t slices,
           std::uint32_t channels)
    {
        SystemConfig cfg;
        cfg.numCores = cores;
        cfg.numL2Slices = slices;
        cfg.numChannels = channels;
        return cfg;
    }

    /**
     * Front-door validation: fatal() on a platform no machine can be
     * built from — zero cores/slices/channels, zero cache ways or
     * sets, a non-power-of-two set count (cache geometry the paper's
     * designs scale by doubling/halving; rejecting the remainder-y
     * cases keeps capacity-scaled DC-L1s exact),
     * flits that do not divide a line, or zero-depth queues/MSHRs.
     * GpuSystem runs this at construction; grid builders run it when
     * a cell is added so a bad sweep axis dies before any job runs.
     */
    void validate() const;

    /** Human-readable one-line summary. */
    std::string summary() const;
};

} // namespace dcl1::core

#endif // DCL1_CORE_SYSTEM_CONFIG_HH
