/**
 * @file
 * The DC-L1 node (paper Fig. 3): the decoupled L1 cache plus four
 * queues —
 *   Q1: requests arriving from the cores (via NoC#1),
 *   Q2: replies departing to the cores (via NoC#1),
 *   Q3: requests departing to L2/memory (via NoC#2),
 *   Q4: replies arriving from L2/memory (via NoC#2).
 *
 * L1 read/write requests access the DC-L1 cache (write-evict,
 * no-write-allocate); non-L1 traffic (instruction/texture/constant
 * misses) and atomics bypass the cache, moving Q1->Q3 and Q4->Q2.
 * Read replies to cores carry only the requested bytes, not the full
 * line.
 */

#ifndef DCL1_CORE_DCL1_NODE_HH
#define DCL1_CORE_DCL1_NODE_HH

#include <memory>
#include <optional>

#include "common/types.hh"
#include "mem/cache_bank.hh"
#include "mem/queues.hh"
#include "mem/request.hh"
#include "stats/stats.hh"

namespace dcl1::core
{

/** See file comment. */
class DcL1Node
{
  public:
    /**
     * @param cache_params DC-L1 cache geometry/timing
     * @param node_id this node's id (also the tracker cache id)
     * @param queue_cap Q1..Q4 depth (paper: 4 entries)
     * @param listener replication directory (may be null)
     */
    DcL1Node(const mem::CacheBankParams &cache_params, NodeId node_id,
             std::uint32_t queue_cap,
             mem::CacheListener *listener = nullptr,
             bool full_line_replies = false);

    /// @name Core-facing side (NoC#1)
    /// @{
    bool canAcceptFromCore() const { return q1_.canPush(); }
    void pushFromCore(mem::MemRequestPtr req);
    std::optional<mem::MemRequestPtr> takeToCore() { return q2_.tryPop(); }
    bool hasToCore() const { return !q2_.empty(); }
    /// @}

    /// @name Memory-facing side (NoC#2)
    /// @{
    bool canAcceptFromMem() const { return q4_.canPush(); }
    void pushFromMem(mem::MemRequestPtr reply);
    std::optional<mem::MemRequestPtr> takeToMem() { return q3_.tryPop(); }
    bool hasToMem() const { return !q3_.empty(); }
    /// @}

    /** Advance one core cycle. */
    void tick(Cycle now);

    /** In-flight work (for drain checks)? */
    bool busy() const;

    NodeId nodeId() const { return nodeId_; }
    mem::CacheBank &cache() { return *cache_; }
    const mem::CacheBank &cache() const { return *cache_; }

    std::size_t q1Size() const { return q1_.size(); }
    std::size_t q2Size() const { return q2_.size(); }
    std::size_t q3Size() const { return q3_.size(); }
    std::size_t q4Size() const { return q4_.size(); }

    stats::StatGroup &statGroup() { return statGroup_; }
    std::uint64_t bypassRequests() const { return bypasses_.value(); }

  private:
    NodeId nodeId_;
    bool fullLineReplies_;
    std::unique_ptr<mem::CacheBank> cache_;

    mem::BoundedQueue<mem::MemRequestPtr> q1_; ///< from cores
    mem::BoundedQueue<mem::MemRequestPtr> q2_; ///< to cores
    mem::BoundedQueue<mem::MemRequestPtr> q3_; ///< to L2/memory
    mem::BoundedQueue<mem::MemRequestPtr> q4_; ///< from L2/memory

    stats::StatGroup statGroup_;
    stats::Scalar bypasses_;
    stats::Scalar q1Stalls_;
    Cycle lastTick_ = 0; ///< monotonic-clock check (DCL1_CHECK)
};

} // namespace dcl1::core

#endif // DCL1_CORE_DCL1_NODE_HH
