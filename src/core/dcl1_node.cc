#include "core/dcl1_node.hh"

#include "check/check.hh"
#include "check/request_ledger.hh"
#include "common/log.hh"

namespace dcl1::core
{

DcL1Node::DcL1Node(const mem::CacheBankParams &cache_params,
                   NodeId node_id, std::uint32_t queue_cap,
                   mem::CacheListener *listener, bool full_line_replies)
    : nodeId_(node_id), fullLineReplies_(full_line_replies),
      q1_(queue_cap), q2_(queue_cap), q3_(queue_cap),
      q4_(queue_cap), statGroup_("node" + std::to_string(node_id))
{
    mem::CacheBankParams cp = cache_params;
    cp.name = "dcl1";
    cache_ = std::make_unique<mem::CacheBank>(cp, node_id, listener);
    statGroup_.addChild(&cache_->statGroup());
    statGroup_.addScalar("bypass_requests", &bypasses_);
    statGroup_.addScalar("q1_stalls", &q1Stalls_);
}

void
DcL1Node::pushFromCore(mem::MemRequestPtr req)
{
    if (!q1_.canPush())
        panic("node %u: Q1 overflow", nodeId_);
    DCL1_CHECK_ONLY(
        check::ledger().onTransition(*req, check::ReqStage::AtCache));
    q1_.push(std::move(req));
}

void
DcL1Node::pushFromMem(mem::MemRequestPtr reply)
{
    if (!q4_.canPush())
        panic("node %u: Q4 overflow", nodeId_);
    DCL1_CHECK_ONLY(
        check::ledger().onTransition(*reply, check::ReqStage::AtCache));
    q4_.push(std::move(reply));
}

void
DcL1Node::tick(Cycle now)
{
    DCL1_ASSERT(now >= lastTick_,
                "node %u: clock ran backwards (%llu after %llu)",
                nodeId_, static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(lastTick_));
    DCL1_CHECK_ONLY(lastTick_ = now);
    // Q4: replies from L2/memory. Non-L1 replies bypass to Q2; L1
    // replies (read fills, write ACKs) go through the cache, which
    // fans completed targets into its completion queue.
    if (!q4_.empty()) {
        mem::MemRequestPtr &head = q4_.front();
        if (head->usesL1()) {
            cache_->fill(q4_.pop(), now);
        } else if (q2_.canPush()) {
            q2_.push(q4_.pop());
        }
    }

    // Q1: requests from cores. Non-L1 requests and atomics bypass the
    // DC-L1$ (Q1 -> Q3); L1 requests access the cache.
    if (!q1_.empty()) {
        mem::MemRequestPtr &head = q1_.front();
        if (!head->usesL1()) {
            if (q3_.canPush()) {
                ++bypasses_;
                q3_.push(q1_.pop());
            } else {
                ++q1Stalls_;
            }
        } else if (cache_->canAccept(now)) {
            // access() only consumes the request when it is not
            // blocked, so the head can be retried in place.
            mem::AccessOutcome outcome = cache_->access(q1_.front(), now);
            if (outcome != mem::AccessOutcome::Blocked)
                q1_.pop();
            else
                ++q1Stalls_;
        } else {
            ++q1Stalls_;
        }
    }

    // Cache completions -> Q2 (replies to cores carry only the
    // requested bytes).
    while (q2_.canPush()) {
        auto done = cache_->takeCompleted(now);
        if (!done)
            break;
        // The paper's Sec. III choice: replies carry only the bytes
        // the core asked for; the +FullLine ablation sends the line.
        (*done)->payloadBytes =
            (*done)->isWrite()
                ? 0
                : (fullLineReplies_ ? cache_->params().lineBytes
                                    : (*done)->bytes);
        q2_.push(std::move(*done));
    }

    // Cache misses / write-throughs -> Q3.
    while (q3_.canPush() && cache_->hasDownstream()) {
        auto req = cache_->takeDownstream();
        if (!req)
            break;
        q3_.push(std::move(*req));
    }
}

bool
DcL1Node::busy() const
{
    return !q1_.empty() || !q2_.empty() || !q3_.empty() || !q4_.empty() ||
           cache_->busy();
}

} // namespace dcl1::core
