#include "core/experiment.hh"

#include <cmath>
#include <limits>

#include "check/check.hh"
#include "common/env.hh"
#include "common/log.hh"

namespace dcl1::core
{

ExperimentOptions
ExperimentOptions::fromEnv()
{
    // Strict parsing: "30k", "1e6" or "" must stop the run, not
    // silently truncate into a differently sized experiment.
    constexpr std::int64_t max = std::numeric_limits<std::int64_t>::max();
    ExperimentOptions opts;
    opts.measureCycles = static_cast<Cycle>(envIntOr(
        "DCL1_CYCLES", static_cast<std::int64_t>(opts.measureCycles),
        /*min_value=*/1, max));
    opts.warmupCycles = static_cast<Cycle>(envIntOr(
        "DCL1_WARMUP", static_cast<std::int64_t>(opts.warmupCycles),
        /*min_value=*/0, max));
    return opts;
}

RunMetrics
runOnce(const SystemConfig &sys, const DesignConfig &design,
        const workload::WorkloadParams &app, const ExperimentOptions &opts)
{
    GpuSystem gpu(sys, design, app);
    gpu.run(opts.measureCycles, opts.warmupCycles);
    // Full sweep at the end of the measured interval; run() only audits
    // on a power-of-two cadence.
    DCL1_CHECK_ONLY(gpu.checkInvariants("runOnce"));
    return gpu.metrics();
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geoMean requires positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

} // namespace dcl1::core
