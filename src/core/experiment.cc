#include "core/experiment.hh"

#include <cmath>
#include <cstdlib>

#include "check/check.hh"
#include "common/log.hh"

namespace dcl1::core
{

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opts;
    if (const char *s = std::getenv("DCL1_CYCLES")) {
        const long v = std::atol(s);
        if (v <= 0)
            fatal("DCL1_CYCLES must be positive, got '%s'", s);
        opts.measureCycles = static_cast<Cycle>(v);
    }
    if (const char *s = std::getenv("DCL1_WARMUP")) {
        const long v = std::atol(s);
        if (v < 0)
            fatal("DCL1_WARMUP must be non-negative, got '%s'", s);
        opts.warmupCycles = static_cast<Cycle>(v);
    }
    return opts;
}

RunMetrics
runOnce(const SystemConfig &sys, const DesignConfig &design,
        const workload::WorkloadParams &app, const ExperimentOptions &opts)
{
    GpuSystem gpu(sys, design, app);
    gpu.run(opts.measureCycles, opts.warmupCycles);
    // Full sweep at the end of the measured interval; run() only audits
    // on a power-of-two cadence.
    DCL1_CHECK_ONLY(gpu.checkInvariants("runOnce"));
    return gpu.metrics();
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geoMean requires positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

} // namespace dcl1::core
