/**
 * @file
 * GpuSystem: the fully wired simulated GPU for one (platform, design,
 * workload) triple, plus the cycle loop and metric extraction.
 *
 * Topologies:
 *  - PrivateBaseline: cores-with-L1 <-> 80x32 request/reply crossbars
 *    <-> L2 slices <-> DRAM channels.
 *  - CdXbar: same cores, hierarchical two-stage crossbars.
 *  - DcL1: lite cores <-> NoC#1 (Z crossbars of N x M) <-> DC-L1 nodes
 *    <-> NoC#2 (M crossbars of Z x L/M, or one full Y x L crossbar)
 *    <-> L2 slices <-> DRAM.
 */

#ifndef DCL1_CORE_GPU_SYSTEM_HH
#define DCL1_CORE_GPU_SYSTEM_HH

#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "common/types.hh"
#include "core/dcl1_node.hh"
#include "core/design.hh"
#include "core/organization.hh"
#include "core/system_config.hh"
#include "gpucore/lite_core.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/l2_slice.hh"
#include "mem/replication_tracker.hh"
#include "noc/cdxbar.hh"
#include "noc/crossbar.hh"
#include "stats/latency_attr.hh"
#include "stats/timeline.hh"
#include "stats/trace_export.hh"
#include "workload/synthetic.hh"

namespace dcl1::core
{

/**
 * Timeline sampling interval: DCL1_TIMELINE_INTERVAL (strictly
 * parsed), default 1024 cycles.
 */
Cycle timelineIntervalFromEnv();

/**
 * The workload a design actually runs: applies design-driven
 * adjustments (today: the distributed CTA scheduler's locality boost)
 * to the catalog parameters. GpuSystem's built-in source uses this;
 * external sources (the serving layer's per-job streams) must apply it
 * themselves to stay equivalent to the classic path.
 */
workload::WorkloadParams effectiveWorkload(const DesignConfig &design,
                                           workload::WorkloadParams app);

/** Results of a measured simulation interval. */
struct RunMetrics
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    double l1MissRate = 0.0;

    double replicationRatio = 0.0;
    double avgReplicas = 0.0;

    /** Max per-L1/DC-L1 data-port utilization (accesses / cycle). */
    double maxL1PortUtil = 0.0;
    /** Max utilization of reply links into the cores (NoC#1/baseline). */
    double maxCoreReplyLinkUtil = 0.0;
    /** Max utilization of reply links from L2 (NoC#2/baseline). */
    double maxMemReplyLinkUtil = 0.0;

    double avgReadLatency = 0.0; ///< core-observed RTT in core cycles

    std::uint64_t noc1Flits = 0; ///< 0 for baseline topologies
    std::uint64_t noc2Flits = 0;

    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
};

/** See file comment. */
class GpuSystem
{
  public:
    /**
     * @param sys platform configuration
     * @param design cache-hierarchy design point
     * @param app workload description (drives the built-in synthetic
     *        source unless @p source is given)
     * @param source optional external instruction source (e.g. a
     *        workload::TraceFileSource); app is then only metadata
     */
    GpuSystem(const SystemConfig &sys, const DesignConfig &design,
              const workload::WorkloadParams &app,
              std::unique_ptr<workload::TraceSource> source = nullptr);

    /**
     * Build an idle machine: every core starts with no instruction
     * stream and issues nothing. The serving layer binds and unbinds
     * per-job streams on individual cores mid-run
     * (LiteCore::bindSource).
     */
    GpuSystem(const SystemConfig &sys, const DesignConfig &design);

    ~GpuSystem();

    GpuSystem(const GpuSystem &) = delete;
    GpuSystem &operator=(const GpuSystem &) = delete;

    /**
     * Called every few-thousand cycles during run() with the current
     * global cycle. Used by the execution engine's cycle-budget
     * watchdog; may throw to abandon the run (run() restores its
     * bookkeeping flags on the way out, so teardown stays legal).
     */
    using CycleHeartbeat = std::function<void(Cycle)>;

    /**
     * Called after every measured cycle when set; return false to end
     * the run early. The serving layer drives job arrivals, scheduling
     * and completion detection from this hook while reusing run()'s
     * leak guards, timeline sampling and invariant cadence.
     */
    using CycleHook = std::function<bool(Cycle)>;

    /**
     * Simulate warmup + measure cycles; statistics cover only the
     * measured interval.
     */
    void run(Cycle measure_cycles, Cycle warmup_cycles = 0,
             const CycleHeartbeat &heartbeat = {},
             const CycleHook &on_cycle = {});

    /** Advance a single core cycle (exposed for tests). */
    void tickOnce();

    /** Reset all statistics (start of measured interval). */
    void resetStats();

    /** Any in-flight work anywhere in the machine? */
    bool busy();

    /**
     * Stop issuing new instructions and tick until every queue, MSHR,
     * NoC and DRAM channel drains (request-conservation check).
     * @return true if the machine drained within @p max_cycles.
     */
    bool drain(Cycle max_cycles = 100000);

    /** Dump every component's statistics as "path value" lines. */
    void dumpStats(std::ostream &os);

    /** Dump the same statistics tree as one JSON document. */
    void dumpStatsJson(std::ostream &os);

    /// @name Telemetry (all optional; zero-cost when not enabled)
    /// @{
    /**
     * Attach a cycle-interval timeline sampler emitting one JSONL row
     * per @p interval cycles through @p sink. Probes (IPC, miss rates,
     * flit rates, queue depths, ...) snapshot counter deltas, so rows
     * describe intervals, not cumulative state. Call before run().
     */
    void enableTimeline(Cycle interval, stats::LineSink sink);

    /**
     * Enable request-latency attribution, sampling 1 in
     * @p sample_every read requests (1 = all). Deterministically
     * seeded from the platform seed.
     */
    void enableLatency(std::uint32_t sample_every = 1);

    /**
     * Route sampled request lifecycles (and, when a timeline is also
     * enabled, per-interval utilization counters) into @p trace. The
     * exporter is bound to the calling thread — the thread that runs
     * the simulation. Not owned; pass nullptr to detach.
     */
    void enableTrace(stats::TraceExport *trace);

    /** Flush the timeline's final partial row. Call after run(). */
    void finishTelemetry();

    stats::TimelineSampler *timeline() { return timeline_.get(); }
    stats::LatencyAttribution *latency() { return tlm_.get(); }
    /// @}

    /**
     * System-wide invariant audit (DCL1_CHECK builds; no-op otherwise):
     * tag-array vs. replication-directory consistency and the internal
     * bookkeeping of every crossbar. panic()s on violation. run() calls
     * this periodically; drain() calls it (plus a request-ledger leak
     * audit) after a successful drain.
     */
    void checkInvariants(const char *where);

    /** Extract metrics for the interval since the last resetStats(). */
    RunMetrics metrics();

    Cycle cycle() const { return cycle_; }
    const SystemConfig &sysConfig() const { return sys_; }
    const DesignConfig &designConfig() const { return design_; }
    const Organization *organization() const { return org_.get(); }
    mem::ReplicationTracker &tracker() { return *tracker_; }
    std::vector<std::unique_ptr<gpucore::LiteCore>> &cores()
    {
        return cores_;
    }
    std::vector<std::unique_ptr<DcL1Node>> &nodes() { return nodes_; }
    std::vector<std::unique_ptr<mem::L2Slice>> &slices()
    {
        return slices_;
    }
    std::vector<std::unique_ptr<mem::DramChannel>> &channels()
    {
        return channels_;
    }
    std::vector<std::unique_ptr<noc::Crossbar>> &noc1ReqXbars()
    {
        return noc1Req_;
    }
    std::vector<std::unique_ptr<noc::Crossbar>> &noc1ReplyXbars()
    {
        return noc1Reply_;
    }
    std::vector<std::unique_ptr<noc::Crossbar>> &noc2ReqXbars()
    {
        return noc2Req_;
    }
    std::vector<std::unique_ptr<noc::Crossbar>> &noc2ReplyXbars()
    {
        return noc2Reply_;
    }

  private:
    /** @p app may be null: no built-in source, cores start idle. */
    void buildCommon(const workload::WorkloadParams *app,
                     std::unique_ptr<workload::TraceSource> source);
    void buildBaseline();
    void buildCdx();
    void buildDcl1();

    void tickMemory();
    void tickBaseline();
    void tickCdx();
    void tickDcl1();

    /**
     * Host-profiler bookkeeping (called only while prof::active()):
     * counts components that will tick this cycle with nothing to do,
     * the signal the event-driven-ticking arc needs to size its win.
     */
    void countQuiescent();

    mem::CacheBankParams l1BankParams() const;
    mem::CacheBankParams l2BankParams() const;

    /** Attach every component StatGroup (and telemetry) to @p root. */
    void addStatChildren(stats::StatGroup &root);
    void registerTimelineProbes();

    SystemConfig sys_;
    DesignConfig design_;

    mem::AddressMap addrMap_;
    std::unique_ptr<workload::TraceSource> source_;
    std::unique_ptr<mem::ReplicationTracker> tracker_;
    std::unique_ptr<Organization> org_;

    std::vector<std::unique_ptr<gpucore::LiteCore>> cores_;
    std::vector<std::unique_ptr<DcL1Node>> nodes_;
    std::vector<std::unique_ptr<mem::L2Slice>> slices_;
    std::vector<std::unique_ptr<mem::DramChannel>> channels_;

    /// @name Baseline / monolithic NoC
    /// @{
    std::unique_ptr<noc::Crossbar> mainReq_;
    std::unique_ptr<noc::Crossbar> mainReply_;
    /// @}

    /// @name CdXbar NoC
    /// @{
    std::unique_ptr<noc::CdXbarNet> cdxReq_;
    std::unique_ptr<noc::CdXbarNet> cdxReply_;
    /// @}

    /// @name DC-L1 NoCs
    /// @{
    std::vector<std::unique_ptr<noc::Crossbar>> noc1Req_;   ///< per Z
    std::vector<std::unique_ptr<noc::Crossbar>> noc1Reply_; ///< per Z
    std::vector<std::unique_ptr<noc::Crossbar>> noc2Req_;   ///< per M|1
    std::vector<std::unique_ptr<noc::Crossbar>> noc2Reply_;
    /// @}

    std::unique_ptr<stats::TimelineSampler> timeline_;
    std::unique_ptr<stats::LatencyAttribution> tlm_;
    stats::TraceExport *trace_ = nullptr; ///< not owned

    Cycle cycle_ = 0;
    Cycle statStart_ = 0;
    bool draining_ = false;

  public:
    /// @name Debug hop counters (tickDcl1)
    /// @{
    std::uint64_t dbgNodeToMem = 0;   ///< Q3 -> NoC#2 injections
    std::uint64_t dbgMemEject = 0;    ///< NoC#2 -> L2 ejections
    std::uint64_t dbgL2Replies = 0;   ///< L2 -> NoC#2 reply injections
    std::uint64_t dbgNodeFromMem = 0; ///< NoC#2 -> Q4 ejections
    /// @}
};

} // namespace dcl1::core

#endif // DCL1_CORE_GPU_SYSTEM_HH
