#include "core/design.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace dcl1::core
{

std::string
SystemConfig::summary() const
{
    return csprintf(
        "%u cores, %u L2 slices, %u channels, %uB lines, L1 %uKB/%u-way "
        "lat %u, L2 %uKB/%u-way lat %u, NoC ratio %.2f",
        numCores, numL2Slices, numChannels, lineBytes, l1SizeBytes / 1024,
        l1Assoc, l1Latency, l2SliceSizeBytes / 1024, l2Assoc, l2Latency,
        nocClockRatio);
}

void
SystemConfig::validate() const
{
    if (numCores == 0 || numL2Slices == 0 || numChannels == 0)
        fatal("platform: cores/L2 slices/DRAM channels must be nonzero "
              "(%u/%u/%u) — every crossbar would be zero-width",
              numCores, numL2Slices, numChannels);
    if (!isPowerOf2(lineBytes))
        fatal("platform: line size %uB is not a power of two",
              lineBytes);
    if (flitBytes == 0 || lineBytes % flitBytes != 0)
        fatal("platform: %uB flits do not divide %uB lines — a line "
              "could not be serialized into whole flits",
              flitBytes, lineBytes);
    if (chunkBytes == 0 || chunkBytes % lineBytes != 0)
        fatal("platform: %uB address-interleave chunks are not a "
              "multiple of %uB lines", chunkBytes, lineBytes);

    struct CacheGeom
    {
        const char *level;
        std::uint32_t sizeBytes, assoc, mshrs, targets;
    };
    for (const CacheGeom &c :
         {CacheGeom{"L1", l1SizeBytes, l1Assoc, l1Mshrs,
                    l1TargetsPerMshr},
          CacheGeom{"L2", l2SliceSizeBytes, l2Assoc, l2Mshrs,
                    l2TargetsPerMshr}}) {
        if (c.assoc == 0)
            fatal("platform: %s associativity is zero", c.level);
        const std::uint32_t sets = c.sizeBytes / (lineBytes * c.assoc);
        if (sets == 0)
            fatal("platform: %s geometry %uB/%u-way/%uB lines yields "
                  "zero sets", c.level, c.sizeBytes, c.assoc, lineBytes);
        if (!isPowerOf2(sets))
            fatal("platform: %s geometry %uB/%u-way/%uB lines yields "
                  "%u sets (not a power of two)",
                  c.level, c.sizeBytes, c.assoc, lineBytes, sets);
        if (c.mshrs == 0 || c.targets == 0)
            fatal("platform: %s MSHR geometry %u x %u targets must be "
                  "nonzero", c.level, c.mshrs, c.targets);
    }

    if (nocClockRatio <= 0.0)
        fatal("platform: NoC clock ratio %.3f must be positive",
              nocClockRatio);
    if (nodeQueueCap == 0)
        fatal("platform: DC-L1 node queue capacity is zero — every "
              "request path would be permanently blocked");
}

void
DesignConfig::validate(const SystemConfig &sys) const
{
    if (noc1ClockRatio <= 0.0 || noc2ClockRatio <= 0.0)
        fatal("design %s: NoC clock ratios must be positive (%.3f/%.3f)",
              name.c_str(), noc1ClockRatio, noc2ClockRatio);
    if (l1CapacityScale <= 0.0)
        fatal("design %s: L1 capacity scale %.3f must be positive",
              name.c_str(), l1CapacityScale);
    if (topology != Topology::DcL1) {
        if (topology == Topology::CdXbar) {
            if (cdxClusters == 0 || cdxTrunksPerCluster == 0)
                fatal("design %s: CdXbar clusters/trunks must be "
                      "nonzero (%u/%u) — the hierarchical crossbar "
                      "would be zero-width",
                      name.c_str(), cdxClusters, cdxTrunksPerCluster);
            if (sys.numCores % cdxClusters != 0)
                fatal("design %s: %u cores not divisible by %u CdXbar "
                      "clusters", name.c_str(), sys.numCores, cdxClusters);
        }
        return;
    }
    if (numNodes == 0 || clusters == 0)
        fatal("design %s: nodes/clusters must be nonzero", name.c_str());
    if (sys.numCores % numNodes != 0)
        fatal("design %s: %u cores not divisible by %u DC-L1 nodes",
              name.c_str(), sys.numCores, numNodes);
    if (numNodes % clusters != 0)
        fatal("design %s: %u nodes not divisible by %u clusters",
              name.c_str(), numNodes, clusters);
    if (sys.numCores % clusters != 0)
        fatal("design %s: %u cores not divisible by %u clusters",
              name.c_str(), sys.numCores, clusters);
    const std::uint32_t m = nodesPerCluster();
    if (m > 1 && sys.numL2Slices % m != 0) {
        // Partitioned NoC#2 impossible; a full crossbar is used instead
        // (this is the Sh40 case in the paper). Nothing to reject.
    }
}

std::uint32_t
DesignConfig::l1LatencyFor(const SystemConfig &sys) const
{
    if (l1LatencyOverride >= 0)
        return static_cast<std::uint32_t>(l1LatencyOverride);
    std::uint32_t lat = sys.l1Latency;
    if (topology == Topology::DcL1) {
        // +7 % per capacity doubling from aggregation (paper Sec. VIII:
        // 28 -> 30 cycles for the 2x DC-L1s of Sh40+C10+Boost).
        const double doublings =
            std::log2(double(coresPerNode(sys)) * l1CapacityScale);
        if (doublings > 0.0) {
            lat = static_cast<std::uint32_t>(
                std::lround(double(lat) * (1.0 + 0.07 * doublings)));
        }
    }
    return lat;
}

std::uint32_t
DesignConfig::l1SizeFor(const SystemConfig &sys) const
{
    double size = double(sys.l1SizeBytes) * l1CapacityScale;
    if (topology == Topology::DcL1)
        size *= coresPerNode(sys);
    return static_cast<std::uint32_t>(size);
}

std::vector<XbarGeometry>
crossbarInventory(const DesignConfig &design, const SystemConfig &sys)
{
    std::vector<XbarGeometry> inv;
    constexpr double kShortLinkMm = 3.3;
    constexpr double kLongLinkMm = 12.3;

    switch (design.topology) {
      case Topology::PrivateBaseline:
        // Request + reply monolithic crossbars.
        inv.push_back({sys.numCores, sys.numL2Slices, 1,
                       design.noc2ClockRatio, kLongLinkMm});
        inv.push_back({sys.numL2Slices, sys.numCores, 1,
                       design.noc2ClockRatio, kLongLinkMm});
        return inv;
      case Topology::CdXbar: {
        const std::uint32_t n = sys.numCores / design.cdxClusters;
        const std::uint32_t k = design.cdxTrunksPerCluster;
        const std::uint32_t trunks = design.cdxClusters * k;
        inv.push_back({n, k, design.cdxClusters,
                       design.cdxLocalClockRatio, kShortLinkMm, 1});
        inv.push_back({k, n, design.cdxClusters,
                       design.cdxLocalClockRatio, kShortLinkMm, 1});
        inv.push_back({trunks, sys.numL2Slices, 1,
                       design.cdxGlobalClockRatio, kLongLinkMm});
        inv.push_back({sys.numL2Slices, trunks, 1,
                       design.cdxGlobalClockRatio, kLongLinkMm});
        return inv;
      }
      case Topology::DcL1:
        break;
    }

    const std::uint32_t n = design.coresPerCluster(sys);
    const std::uint32_t m = design.nodesPerCluster();
    const std::uint32_t z = design.clusters;
    const std::uint32_t l = sys.numL2Slices;

    // NoC#1: Z crossbars of N x M (request) and M x N (reply).
    inv.push_back({n, m, z, design.noc1ClockRatio, kShortLinkMm, 1});
    inv.push_back({m, n, z, design.noc1ClockRatio, kShortLinkMm, 1});

    // NoC#2: partitioned when the per-cluster home count divides the
    // slice count; otherwise one full crossbar (the Sh40 case).
    if (m > 1 && l % m == 0) {
        inv.push_back({z, l / m, m, design.noc2ClockRatio, kLongLinkMm});
        inv.push_back({l / m, z, m, design.noc2ClockRatio, kLongLinkMm});
    } else {
        inv.push_back({design.numNodes, l, 1, design.noc2ClockRatio,
                       kLongLinkMm});
        inv.push_back({l, design.numNodes, 1, design.noc2ClockRatio,
                       kLongLinkMm});
    }
    return inv;
}

DesignConfig
baselineDesign()
{
    DesignConfig d;
    d.name = "Baseline";
    d.topology = Topology::PrivateBaseline;
    return d;
}

DesignConfig
privateDcl1(std::uint32_t num_nodes)
{
    DesignConfig d;
    d.name = csprintf("Pr%u", num_nodes);
    d.topology = Topology::DcL1;
    d.numNodes = num_nodes;
    d.clusters = num_nodes;
    return d;
}

DesignConfig
sharedDcl1(std::uint32_t num_nodes)
{
    DesignConfig d;
    d.name = csprintf("Sh%u", num_nodes);
    d.topology = Topology::DcL1;
    d.numNodes = num_nodes;
    d.clusters = 1;
    return d;
}

DesignConfig
clusteredDcl1(std::uint32_t num_nodes, std::uint32_t clusters, bool boost)
{
    DesignConfig d;
    d.topology = Topology::DcL1;
    d.numNodes = num_nodes;
    d.clusters = clusters;
    if (clusters == 1)
        d.name = csprintf("Sh%u", num_nodes);
    else if (clusters == num_nodes)
        d.name = csprintf("Pr%u", num_nodes);
    else
        d.name = csprintf("Sh%u+C%u", num_nodes, clusters);
    if (boost) {
        d.noc1ClockRatio = 1.0;
        d.name += "+Boost";
    }
    return d;
}

DesignConfig
cdxbarDesign(bool boost_local, bool boost_global)
{
    DesignConfig d;
    d.topology = Topology::CdXbar;
    d.name = "CDXBar";
    if (boost_local && boost_global)
        d.name += "+2xNoC";
    else if (boost_local)
        d.name += "+2xNoC1";
    d.cdxLocalClockRatio = boost_local ? 1.0 : 0.5;
    d.cdxGlobalClockRatio = boost_global ? 1.0 : 0.5;
    return d;
}

DesignConfig
withPerfectL1(DesignConfig d)
{
    d.perfectL1 = true;
    d.name += "+Perfect";
    return d;
}

DesignConfig
withCapacityScale(DesignConfig d, double scale)
{
    d.l1CapacityScale = scale;
    d.name += csprintf("+%gxCap", scale);
    return d;
}

DesignConfig
withL1Latency(DesignConfig d, std::int32_t latency)
{
    d.l1LatencyOverride = latency;
    d.name += csprintf("+Lat%d", latency);
    return d;
}

DesignConfig
withDistributedCta(DesignConfig d)
{
    d.distributedCta = true;
    d.name += "+DistCTA";
    return d;
}

DesignConfig
withFullLineReplies(DesignConfig d)
{
    d.fullLineReplies = true;
    d.name += "+FullLine";
    return d;
}

DesignConfig
designByName(const std::string &name)
{
    if (name == "Baseline" || name == "baseline")
        return baselineDesign();
    if (name == "CDXBar")
        return cdxbarDesign(false, false);
    if (name == "CDXBar+2xNoC1")
        return cdxbarDesign(true, false);
    if (name == "CDXBar+2xNoC")
        return cdxbarDesign(true, true);

    std::string rest = name;
    bool boost = false;
    const std::string boost_sfx = "+Boost";
    if (rest.size() > boost_sfx.size() &&
        rest.compare(rest.size() - boost_sfx.size(), boost_sfx.size(),
                     boost_sfx) == 0) {
        boost = true;
        rest.resize(rest.size() - boost_sfx.size());
    }

    auto parse_u32 = [&](const std::string &digits) -> std::uint32_t {
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            fatal("bad design name '%s'", name.c_str());
        return static_cast<std::uint32_t>(std::stoul(digits));
    };

    if (rest.rfind("Pr", 0) == 0) {
        if (boost)
            fatal("design '%s': Boost applies to clustered shared "
                  "designs", name.c_str());
        return privateDcl1(parse_u32(rest.substr(2)));
    }
    if (rest.rfind("Sh", 0) == 0) {
        const auto plus = rest.find("+C");
        if (plus == std::string::npos) {
            if (boost)
                fatal("design '%s': Boost needs a cluster count",
                      name.c_str());
            return sharedDcl1(parse_u32(rest.substr(2)));
        }
        const std::uint32_t y = parse_u32(rest.substr(2, plus - 2));
        const std::uint32_t z = parse_u32(rest.substr(plus + 2));
        return clusteredDcl1(y, z, boost);
    }
    fatal("unknown design '%s'", name.c_str());
}

} // namespace dcl1::core
