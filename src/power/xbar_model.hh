/**
 * @file
 * DSENT-like analytical crossbar area / power / frequency model.
 *
 * The paper models its NoCs with DSENT at 22 nm and reports *relative*
 * area and power between crossbar geometries (Figs. 6, 12, 13b, 18).
 * This model reproduces those relations with two scaling terms:
 *
 *  - fabric:  I x O x W^2 wire matrix (the crossbar proper),
 *  - ports:   per-port buffers + switch-allocator logic, linear in
 *             (I + O) per instance, with 1x1 "crossbars" (direct
 *             links) charged only a quarter port (no router).
 *
 * Static power uses the same terms with a buffer-heavy weighting;
 * maximum frequency falls logarithmically with radix. Coefficients
 * were fitted to the paper's published relative numbers (e.g. Pr40
 * -28 % NoC area, Sh40 +69 %, Sh40+C10 -50 %; 80x32 unable to run at
 * 2x the 700 MHz baseline while 8x4 can).
 */

#ifndef DCL1_POWER_XBAR_MODEL_HH
#define DCL1_POWER_XBAR_MODEL_HH

#include <cstdint>
#include <vector>

#include "core/design.hh"

namespace dcl1::power
{

/** Area/power/fmax results for a crossbar inventory. */
struct NocCost
{
    double areaMm2 = 0.0;
    double staticPowerW = 0.0;
};

/** See file comment. */
class XbarModel
{
  public:
    /** Flit width in bytes (Table II: 32 B). */
    explicit XbarModel(std::uint32_t flit_bytes = 32)
        : flitBytes_(flit_bytes)
    {}

    /** Area of one crossbar instance (mm^2, 22 nm-ish scale). */
    double area(const core::XbarGeometry &g) const;

    /** Static power of one instance (W). */
    double staticPower(const core::XbarGeometry &g) const;

    /** Maximum operating frequency (GHz). */
    double maxFrequencyGHz(std::uint32_t inputs,
                           std::uint32_t outputs) const;

    /** Energy per flit traversal (pJ) for a geometry. */
    double flitEnergyPj(const core::XbarGeometry &g) const;

    /** Total cost of a design's crossbar inventory. */
    NocCost
    cost(const std::vector<core::XbarGeometry> &inventory) const
    {
        NocCost total;
        for (const auto &g : inventory) {
            total.areaMm2 += area(g) * g.count;
            total.staticPowerW += staticPower(g) * g.count;
        }
        return total;
    }

  private:
    /** Effective port weight: direct links have no router. */
    static double
    portUnits(const core::XbarGeometry &g)
    {
        const double ports = double(g.numInputs) + double(g.numOutputs);
        if (g.numInputs == 1 && g.numOutputs == 1)
            return 0.25 * ports;
        return ports;
    }

    std::uint32_t flitBytes_;
};

} // namespace dcl1::power

#endif // DCL1_POWER_XBAR_MODEL_HH
