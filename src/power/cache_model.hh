/**
 * @file
 * CACTI-like cache / queue area accounting (paper Fig. 18b).
 *
 * Each cache bank costs its SRAM bytes plus a fixed per-bank overhead
 * (decoders, sense amplifiers, port logic). Aggregating 80 x 16 KB L1s
 * into 40 x 32 KB DC-L1s keeps the byte total but halves the bank
 * overhead — the paper's "8 % cache area savings / 50 % fewer cache
 * ports". DC-L1 node queues (Q1..Q4, four 128 B entries each) add the
 * paper's 6.25 % overhead relative to the total baseline L1 capacity.
 */

#ifndef DCL1_POWER_CACHE_MODEL_HH
#define DCL1_POWER_CACHE_MODEL_HH

#include <cstdint>

#include "core/design.hh"
#include "core/system_config.hh"

namespace dcl1::power
{

/** Area breakdown of the L1 level of a design. */
struct L1AreaBreakdown
{
    double cacheArea = 0.0;  ///< SRAM + per-bank overhead (KB-equiv)
    double queueArea = 0.0;  ///< DC-L1 node queues (KB-equiv)
    double totalArea = 0.0;
    std::uint32_t banks = 0; ///< number of L1/DC-L1 banks (= ports)
};

/** See file comment. */
class CacheAreaModel
{
  public:
    /** Fixed per-bank overhead in byte-equivalents (fitted: 8 %
     *  savings when halving the bank count of the 1.25 MB L1 level). */
    explicit CacheAreaModel(double bank_overhead_bytes = 3072.0)
        : bankOverheadBytes_(bank_overhead_bytes)
    {}

    /** Area of one bank of @p size_bytes (byte-equivalents). */
    double
    bankArea(std::uint64_t size_bytes) const
    {
        return double(size_bytes) + bankOverheadBytes_;
    }

    /** L1-level breakdown for a design on a platform. */
    L1AreaBreakdown l1Breakdown(const core::DesignConfig &design,
                                const core::SystemConfig &sys) const;

  private:
    double bankOverheadBytes_;
};

} // namespace dcl1::power

#endif // DCL1_POWER_CACHE_MODEL_HH
