#include "power/xbar_model.hh"

#include <cmath>

namespace dcl1::power
{

namespace
{

// Fitted against the paper's DSENT-derived relative numbers; see the
// file comment in xbar_model.hh. Units are nominal mm^2 / W at 22 nm.
constexpr double kFabricAreaCoeff = 1.62e-4; // per (in x out) at 32 B
constexpr double kPortAreaCoeff = 4.7 * kFabricAreaCoeff; // per port
constexpr double kFabricPowerCoeff = 2.0e-4;
constexpr double kPortPowerCoeff = 13.0 * kFabricPowerCoeff;

// fmax = kF0 / (1 + kFk * log2(max radix)) GHz.
constexpr double kF0 = 4.5;
constexpr double kFk = 0.5;

// Per-flit energy: fixed + log2(in*out) + link-length terms (pJ).
constexpr double kFlitE0 = 1.0;
constexpr double kFlitELog = 0.30;
constexpr double kFlitEMm = 0.15;

} // anonymous namespace

double
XbarModel::area(const core::XbarGeometry &g) const
{
    const double w_scale =
        double(flitBytes_) * double(flitBytes_) / (32.0 * 32.0);
    const double fabric = (g.numInputs == 1 && g.numOutputs == 1)
                              ? 0.0
                              : kFabricAreaCoeff * g.numInputs *
                                    g.numOutputs * w_scale;
    const double ports = kPortAreaCoeff * portUnits(g);
    return fabric + ports;
}

double
XbarModel::staticPower(const core::XbarGeometry &g) const
{
    const double fabric = (g.numInputs == 1 && g.numOutputs == 1)
                              ? 0.0
                              : kFabricPowerCoeff * g.numInputs *
                                    g.numOutputs;
    const double ports = kPortPowerCoeff * portUnits(g);
    return fabric + ports;
}

double
XbarModel::maxFrequencyGHz(std::uint32_t inputs,
                           std::uint32_t outputs) const
{
    const double radix = double(std::max(inputs, outputs));
    return kF0 / (1.0 + kFk * std::log2(std::max(radix, 1.0)));
}

double
XbarModel::flitEnergyPj(const core::XbarGeometry &g) const
{
    const double xbar_term =
        kFlitELog *
        std::log2(std::max(2.0, double(g.numInputs) * g.numOutputs));
    return kFlitE0 + xbar_term + kFlitEMm * g.linkMm;
}

} // namespace dcl1::power
