/**
 * @file
 * NoC energy accounting (paper Fig. 18a).
 *
 * Static power comes from the XbarModel; dynamic power charges each
 * NoC#1/NoC#2 flit the per-flit traversal energy of its crossbar
 * level. Reported energies combine both over the measured interval:
 *
 *   P_dyn  = sum(flits_level * E_flit(level)) / T
 *   E      = (P_static + P_dyn) * T
 *
 * with T the measured interval at the 1400 MHz core clock.
 */

#ifndef DCL1_POWER_ENERGY_MODEL_HH
#define DCL1_POWER_ENERGY_MODEL_HH

#include "core/design.hh"
#include "core/gpu_system.hh"
#include "power/xbar_model.hh"

namespace dcl1::power
{

/** Power/energy of one design running one workload interval. */
struct NocEnergyReport
{
    double staticPowerW = 0.0;
    double dynamicPowerW = 0.0;
    double totalPowerW = 0.0;
    double energyUj = 0.0;     ///< total NoC energy over the interval
    double seconds = 0.0;
};

/** See file comment. */
class NocEnergyModel
{
  public:
    explicit NocEnergyModel(XbarModel model = XbarModel(),
                            double core_clock_ghz = 1.4)
        : model_(model), coreClockGhz_(core_clock_ghz)
    {}

    /** Evaluate a design's NoC power for a measured run. */
    NocEnergyReport evaluate(const core::DesignConfig &design,
                             const core::SystemConfig &sys,
                             const core::RunMetrics &rm) const;

  private:
    XbarModel model_;
    double coreClockGhz_;
};

} // namespace dcl1::power

#endif // DCL1_POWER_ENERGY_MODEL_HH
