#include "power/cache_model.hh"

namespace dcl1::power
{

L1AreaBreakdown
CacheAreaModel::l1Breakdown(const core::DesignConfig &design,
                            const core::SystemConfig &sys) const
{
    L1AreaBreakdown out;
    if (design.topology == core::Topology::DcL1) {
        out.banks = design.numNodes;
        out.cacheArea =
            double(out.banks) * bankArea(design.l1SizeFor(sys));
        // Q1..Q4, each nodeQueueCap entries of one line.
        const double per_node_queues =
            4.0 * double(sys.nodeQueueCap) * double(sys.lineBytes);
        out.queueArea = double(out.banks) * per_node_queues;
    } else {
        out.banks = sys.numCores;
        out.cacheArea =
            double(out.banks) * bankArea(design.l1SizeFor(sys));
        out.queueArea = 0.0;
    }
    out.totalArea = out.cacheArea + out.queueArea;
    return out;
}

} // namespace dcl1::power
