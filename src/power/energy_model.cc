#include "power/energy_model.hh"

namespace dcl1::power
{

NocEnergyReport
NocEnergyModel::evaluate(const core::DesignConfig &design,
                         const core::SystemConfig &sys,
                         const core::RunMetrics &rm) const
{
    NocEnergyReport out;
    const auto inventory = core::crossbarInventory(design, sys);
    out.staticPowerW = model_.cost(inventory).staticPowerW;

    // Representative per-flit energies per NoC level (area-weighted
    // over the level's instances).
    double e1 = 0.0, w1 = 0.0;
    double e2 = 0.0, w2 = 0.0;
    for (const auto &g : inventory) {
        const double weight = double(g.count);
        if (g.level == 1) {
            e1 += model_.flitEnergyPj(g) * weight;
            w1 += weight;
        } else {
            e2 += model_.flitEnergyPj(g) * weight;
            w2 += weight;
        }
    }
    if (w1 > 0.0)
        e1 /= w1;
    if (w2 > 0.0)
        e2 /= w2;

    out.seconds = double(rm.cycles) / (coreClockGhz_ * 1e9);
    if (out.seconds <= 0.0)
        return out;

    const double dyn_pj =
        double(rm.noc1Flits) * e1 + double(rm.noc2Flits) * e2;
    out.dynamicPowerW = dyn_pj * 1e-12 / out.seconds;
    out.totalPowerW = out.staticPowerW + out.dynamicPowerW;
    out.energyUj = out.totalPowerW * out.seconds * 1e6;
    return out;
}

} // namespace dcl1::power
