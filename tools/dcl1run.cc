/**
 * @file
 * dcl1run — command-line simulator driver.
 *
 * Run one (design, workload) simulation on the Table II platform and
 * print headline metrics; optionally dump the full statistics tree.
 *
 *   dcl1run --design=Sh40+C10+Boost --app=T-AlexNet
 *   dcl1run --design=Baseline --trace=my.trace --cycles=100000
 *   dcl1run --list-apps
 *   dcl1run --list-designs
 *
 * Options:
 *   --design=NAME     Baseline | PrY | ShY | ShY+CZ[+Boost] | CDXBar*
 *   --app=NAME        application from the 28-app catalog
 *   --trace=FILE      replay a trace file instead of a catalog app
 *   --cycles=N        measured cycles        (default 30000)
 *   --warmup=N        warmup cycles          (default 40000)
 *   --cores=N --slices=N --channels=N        platform scaling
 *   --seed=N          workload seed
 *   --stats=FILE      dump the full statistics tree ('-' = stdout)
 *   --drain           drain in-flight traffic after the run and report
 *   --budget=N        fail the run after N simulated cycles (watchdog)
 *   --jsonl=FILE      append a JSON run record (timing, outcome)
 *
 * The simulation executes as a single job of the src/exec engine: a
 * panic inside the model is reported as a failed run (exit 2) with
 * its message instead of aborting, host wall time is measured, and
 * the optional cycle-budget watchdog bounds a runaway configuration.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>

#include "common/env.hh"
#include "common/log.hh"
#include "core/experiment.hh"
#include "core/gpu_system.hh"
#include "exec/job_runner.hh"
#include "workload/app_catalog.hh"
#include "workload/trace_file.hh"

using namespace dcl1;

namespace
{

/** --key=value parser; fatal() on unknown flags. */
struct Options
{
    std::string design = "Sh40+C10+Boost";
    std::string app = "T-AlexNet";
    std::string trace;
    std::string statsFile;
    Cycle cycles = 30000;
    Cycle warmup = 40000;
    std::uint32_t cores = 80;
    std::uint32_t slices = 32;
    std::uint32_t channels = 16;
    std::uint64_t seed = 1;
    dcl1::Cycle budget = 0;
    std::string jsonlFile;
    bool drain = false;
    bool listApps = false;
    bool listDesigns = false;
};

std::optional<std::string>
valueOf(const char *arg, const char *key)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=')
        return std::string(arg + n + 1);
    return std::nullopt;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (auto v = valueOf(a, "--design"))
            o.design = *v;
        else if (auto v = valueOf(a, "--app"))
            o.app = *v;
        else if (auto v = valueOf(a, "--trace"))
            o.trace = *v;
        else if (auto v = valueOf(a, "--stats"))
            o.statsFile = *v;
        else if (auto v = valueOf(a, "--cycles"))
            o.cycles = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--warmup"))
            o.warmup = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--cores"))
            o.cores = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--slices"))
            o.slices = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--channels"))
            o.channels = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--seed"))
            o.seed = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--budget"))
            o.budget = static_cast<Cycle>(parseEnvInt(
                "--budget", v->c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (auto v = valueOf(a, "--jsonl"))
            o.jsonlFile = *v;
        else if (std::strcmp(a, "--drain") == 0)
            o.drain = true;
        else if (std::strcmp(a, "--list-apps") == 0)
            o.listApps = true;
        else if (std::strcmp(a, "--list-designs") == 0)
            o.listDesigns = true;
        else
            fatal("unknown option '%s' (see the file comment)", a);
    }
    return o;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);

    if (o.listApps) {
        for (const auto &app : workload::appCatalog())
            std::printf("%-14s suite %s %s\n", app.params.name.c_str(),
                        app.params.suite.c_str(),
                        app.replicationSensitive
                            ? "(replication-sensitive)"
                            : "");
        return 0;
    }
    if (o.listDesigns) {
        std::printf("Baseline  PrY (Y in 80/40/20/10)  ShY  ShY+CZ  "
                    "ShY+CZ+Boost  CDXBar  CDXBar+2xNoC1  "
                    "CDXBar+2xNoC\n");
        return 0;
    }

    core::SystemConfig sys =
        core::SystemConfig::scaled(o.cores, o.slices, o.channels);
    sys.seed = o.seed;
    const core::DesignConfig design = core::designByName(o.design);

    std::unique_ptr<core::GpuSystem> gpu;
    std::unique_ptr<workload::TraceFileSource> trace_probe;
    if (!o.trace.empty()) {
        // Trace mode: wrap the trace as the workload via a synthetic
        // params shell (GpuSystem owns its own source for catalog
        // apps; for traces we simulate via the trace-driven app).
        workload::WorkloadParams shell;
        shell.name = o.trace;
        trace_probe = std::make_unique<workload::TraceFileSource>(
            o.trace, o.cores);
        shell.warpsPerCore = trace_probe->warpsPerCore(0);
        inform("trace '%s': %llu instructions, %u warps/core",
               o.trace.c_str(),
               static_cast<unsigned long long>(
                   trace_probe->instructionCount()),
               shell.warpsPerCore);
        gpu = std::make_unique<core::GpuSystem>(
            sys, design, shell,
            std::make_unique<workload::TraceFileSource>(o.trace,
                                                        o.cores));
    } else {
        const auto &app = workload::appByName(o.app);
        gpu = std::make_unique<core::GpuSystem>(sys, design, app.params);
    }

    // One job on the execution engine (inline on this thread, so
    // drain/stats below stay on the thread that built the machine):
    // faults become a reported failure, and the record carries host
    // wall time.
    exec::ExecOptions eopts;
    eopts.jobs = 1;
    eopts.cycleBudget = o.budget;
    exec::JobRunner runner(eopts);
    std::unique_ptr<exec::JsonlSink> jsonl;
    if (!o.jsonlFile.empty()) {
        jsonl = std::make_unique<exec::JsonlSink>(o.jsonlFile);
        runner.addSink(jsonl.get());
    }
    std::vector<exec::JobSpec> specs(1);
    specs[0].label =
        design.name + "/" + (o.trace.empty() ? o.app : o.trace);
    specs[0].fn = [&](exec::JobContext &ctx) {
        core::GpuSystem::CycleHeartbeat heartbeat;
        if (ctx.cycleBudget() != 0)
            heartbeat = [&ctx](Cycle now) { ctx.checkCycleBudget(now); };
        gpu->run(o.cycles, o.warmup, heartbeat);
        return gpu->metrics();
    };
    const std::vector<exec::JobResult> results = runner.run(specs);
    if (!results[0].ok) {
        std::fprintf(stderr, "dcl1run: simulation failed: %s\n",
                     results[0].error.c_str());
        return 2;
    }
    const core::RunMetrics &rm = results[0].metrics;

    std::printf("design     %s\n", design.name.c_str());
    std::printf("platform   %s\n", sys.summary().c_str());
    std::printf("workload   %s\n",
                o.trace.empty() ? o.app.c_str() : o.trace.c_str());
    std::printf("cycles     %llu (+%llu warmup)\n",
                static_cast<unsigned long long>(rm.cycles),
                static_cast<unsigned long long>(o.warmup));
    std::printf("IPC        %.3f\n", rm.ipc);
    std::printf("L1 miss    %.3f\n", rm.l1MissRate);
    std::printf("replratio  %.3f (avg replicas %.2f)\n",
                rm.replicationRatio, rm.avgReplicas);
    std::printf("read RTT   %.1f cycles\n", rm.avgReadLatency);
    std::printf("L2 miss    %.3f\n",
                rm.l2Accesses ? double(rm.l2Misses) / rm.l2Accesses
                              : 0.0);
    std::printf("DRAM       %llu reads, %llu writes\n",
                static_cast<unsigned long long>(rm.dramReads),
                static_cast<unsigned long long>(rm.dramWrites));
    // Host timing is observability, not simulation output: stderr, so
    // same-seed stdout stays byte-identical across runs.
    std::fprintf(stderr, "host time  %.1f ms\n", results[0].wallMs);

    if (o.drain) {
        const bool ok = gpu->drain();
        std::printf("drain      %s\n", ok ? "clean" : "TIMED OUT");
        if (!ok)
            return 2;
    }

    if (!o.statsFile.empty()) {
        if (o.statsFile == "-") {
            gpu->dumpStats(std::cout);
        } else {
            std::ofstream out(o.statsFile);
            if (!out)
                fatal("cannot open stats file '%s'",
                      o.statsFile.c_str());
            gpu->dumpStats(out);
            inform("stats written to %s", o.statsFile.c_str());
        }
    }
    return 0;
}
