/**
 * @file
 * dcl1run — command-line simulator driver.
 *
 * Run one (design, workload) simulation on the Table II platform and
 * print headline metrics; optionally dump the full statistics tree.
 *
 *   dcl1run --design=Sh40+C10+Boost --app=T-AlexNet
 *   dcl1run --design=Baseline --trace=my.trace --cycles=100000
 *   dcl1run --list-apps
 *   dcl1run --list-designs
 *
 * Options:
 *   --design=NAME     Baseline | PrY | ShY | ShY+CZ[+Boost] | CDXBar*
 *   --app=NAME        application from the 28-app catalog
 *   --trace=FILE      replay a trace file instead of a catalog app
 *   --cycles=N        measured cycles        (default 30000)
 *   --warmup=N        warmup cycles          (default 40000)
 *   --cores=N --slices=N --channels=N        platform scaling
 *   --seed=N          workload seed
 *   --stats=FILE      dump the full statistics tree ('-' = stdout;
 *                     files are published atomically via tmp+rename)
 *   --stats-json[=F]  the same tree as one JSON document ('-'/default
 *                     = stdout)
 *   --timeline[=F]    cycle-interval timeline JSONL (default
 *                     timeline.jsonl); one row per interval
 *   --timeline-interval=N  sampling interval in cycles (default
 *                     DCL1_TIMELINE_INTERVAL, 1024)
 *   --latency[=N]     request-latency attribution, sampling 1 in N
 *                     reads (default 1); prints a latency-breakdown
 *                     table under the headline metrics
 *   --trace           Chrome trace-event export to trace.json
 *                     (--trace-out=FILE renames it); implies --latency
 *   --drain           drain in-flight traffic after the run and report
 *   --profile[=FILE]  host phase profiling (src/prof/): self/total
 *                     wall-time table on stderr; FILE gets the full
 *                     JSON report (atomic). DCL1_PROF=1 equivalent.
 *                     Combined with --trace, host phase slices ride
 *                     along in the Chrome trace.
 *   --budget=N        fail the run after N simulated cycles (watchdog)
 *   --jsonl=FILE      append a JSON run record (timing, outcome)
 *   --crash-dir=DIR   write a structured crash record on failure
 *                     (DCL1_CRASH_DIR)
 *   --replay-crash=FILE  re-run the exact configuration recorded in a
 *                     crash record written by a failed batch cell
 *   --help            usage + the exit-code contract
 *
 * The simulation executes as a single job of the src/exec engine: a
 * panic inside the model is reported as a failed run (exit 2) with
 * its message instead of aborting, host wall time is measured, and
 * the optional cycle-budget watchdog bounds a runaway configuration.
 * On failure the job's crash context (configuration, last cycle,
 * queue depths, recent ledger events under DCL1_CHECK) lands in
 * --crash-dir, and `--replay-crash=<that file>` turns the forensic
 * record back into a live simulation.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>

#include "common/env.hh"
#include "common/log.hh"
#include "core/experiment.hh"
#include "core/gpu_system.hh"
#include "exec/atomic_file.hh"
#include "exec/crash_record.hh"
#include "exec/exit_codes.hh"
#include "exec/job_runner.hh"
#include "exec/result_sink.hh"
#include "stats/prof_trace.hh"
#include "workload/app_catalog.hh"
#include "workload/trace_file.hh"

using namespace dcl1;

namespace
{

/** --key=value parser; fatal() on unknown flags. */
struct Options
{
    std::string design = "Sh40+C10+Boost";
    std::string app = "T-AlexNet";
    std::string trace;
    std::string statsFile;
    std::string statsJsonFile;
    std::string timelineFile;
    Cycle timelineInterval = 0;    ///< 0 = DCL1_TIMELINE_INTERVAL
    std::string traceOutFile;
    std::uint32_t latencyEvery = 0; ///< 0 = attribution disabled
    Cycle cycles = 30000;
    Cycle warmup = 40000;
    std::uint32_t cores = 80;
    std::uint32_t slices = 32;
    std::uint32_t channels = 16;
    std::uint64_t seed = 1;
    dcl1::Cycle budget = 0;
    std::string jsonlFile;
    std::string crashDir;
    std::string replayCrash;
    bool profile = false;
    std::string profileFile;
    bool drain = false;
    bool listApps = false;
    bool listDesigns = false;
    bool help = false;
};

std::optional<std::string>
valueOf(const char *arg, const char *key)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=')
        return std::string(arg + n + 1);
    return std::nullopt;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (auto v = valueOf(a, "--design"))
            o.design = *v;
        else if (auto v = valueOf(a, "--app"))
            o.app = *v;
        else if (auto v = valueOf(a, "--trace"))
            o.trace = *v;
        else if (auto v = valueOf(a, "--stats"))
            o.statsFile = *v;
        else if (std::strcmp(a, "--stats-json") == 0)
            o.statsJsonFile = "-";
        else if (auto v = valueOf(a, "--stats-json"))
            o.statsJsonFile = *v;
        else if (std::strcmp(a, "--timeline") == 0)
            o.timelineFile = "timeline.jsonl";
        else if (auto v = valueOf(a, "--timeline"))
            o.timelineFile = *v;
        else if (auto v = valueOf(a, "--timeline-interval"))
            o.timelineInterval = static_cast<Cycle>(parseEnvInt(
                "--timeline-interval", v->c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (std::strcmp(a, "--trace") == 0)
            o.traceOutFile = "trace.json"; // bare: Chrome trace export
        else if (auto v = valueOf(a, "--trace-out"))
            o.traceOutFile = *v;
        else if (std::strcmp(a, "--latency") == 0)
            o.latencyEvery = 1;
        else if (auto v = valueOf(a, "--latency"))
            o.latencyEvery = static_cast<std::uint32_t>(parseEnvInt(
                "--latency", v->c_str(), 1,
                std::numeric_limits<std::uint32_t>::max()));
        else if (auto v = valueOf(a, "--cycles"))
            o.cycles = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--warmup"))
            o.warmup = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--cores"))
            o.cores = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--slices"))
            o.slices = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--channels"))
            o.channels = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--seed"))
            o.seed = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--budget"))
            o.budget = static_cast<Cycle>(parseEnvInt(
                "--budget", v->c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (auto v = valueOf(a, "--jsonl"))
            o.jsonlFile = *v;
        else if (auto v = valueOf(a, "--crash-dir"))
            o.crashDir = *v;
        else if (auto v = valueOf(a, "--replay-crash"))
            o.replayCrash = *v;
        else if (std::strcmp(a, "--profile") == 0)
            o.profile = true;
        else if (auto v = valueOf(a, "--profile")) {
            o.profile = true;
            o.profileFile = *v;
        } else if (std::strcmp(a, "--drain") == 0)
            o.drain = true;
        else if (std::strcmp(a, "--list-apps") == 0)
            o.listApps = true;
        else if (std::strcmp(a, "--list-designs") == 0)
            o.listDesigns = true;
        else if (std::strcmp(a, "--help") == 0 ||
                 std::strcmp(a, "-h") == 0)
            o.help = true;
        else
            fatal("unknown option '%s' (--help lists them)", a);
    }
    return o;
}

void
printHelp()
{
    std::printf(
        "dcl1run — run one (design, workload) simulation\n"
        "\n"
        "  --design=NAME     Baseline | PrY | ShY | ShY+CZ[+Boost] | "
        "CDXBar*\n"
        "  --app=NAME        application from the catalog "
        "(--list-apps)\n"
        "  --trace=FILE      replay a trace file instead\n"
        "  --cycles=N --warmup=N          simulated interval\n"
        "  --cores=N --slices=N --channels=N  platform scaling\n"
        "  --seed=N          workload seed\n"
        "  --stats=FILE      full statistics tree ('-' = stdout; "
        "atomic)\n"
        "  --stats-json[=F]  statistics tree as JSON ('-'/default = "
        "stdout)\n"
        "  --timeline[=F]    interval timeline JSONL "
        "(timeline.jsonl)\n"
        "  --timeline-interval=N  cycles per row "
        "(DCL1_TIMELINE_INTERVAL)\n"
        "  --latency[=N]     latency attribution, 1-in-N reads "
        "(default 1)\n"
        "  --trace           Chrome trace export to trace.json "
        "(--trace-out=FILE)\n"
        "  --drain           drain in-flight traffic and report\n"
        "  --profile[=FILE]  host phase profile: table on stderr, "
        "JSON to FILE\n"
        "  --budget=N        simulated-cycle watchdog\n"
        "  --jsonl=FILE      append a JSON run record\n"
        "  --crash-dir=DIR   crash record on failure (DCL1_CRASH_DIR)\n"
        "  --replay-crash=FILE  re-run a recorded crash exactly\n"
        "\n"
        "%s\n",
        exec::kExitCodeContract);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);

    if (o.help) {
        printHelp();
        return exec::kExitOk;
    }

    if (!o.replayCrash.empty()) {
        // Forensic replay: rebuild exactly the cell the crash record
        // describes; explicit command-line overrides still win where
        // given *after* the flag (parse order), but the point is a
        // faithful re-run.
        const exec::CrashConfig crash =
            exec::loadCrashRecord(o.replayCrash);
        o.design = crash.design;
        o.app = crash.app;
        o.trace = crash.trace;
        o.cores = crash.cores;
        o.slices = crash.slices;
        o.channels = crash.channels;
        o.seed = crash.seed;
        o.cycles = crash.measure;
        o.warmup = crash.warmup;
        inform("replaying crash record '%s' (%s): %s",
               o.replayCrash.c_str(), crash.label.c_str(),
               crash.error.empty() ? "no recorded error"
                                   : crash.error.c_str());
    }

    if (o.listApps) {
        for (const auto &app : workload::appCatalog())
            std::printf("%-14s suite %s %s\n", app.params.name.c_str(),
                        app.params.suite.c_str(),
                        app.replicationSensitive
                            ? "(replication-sensitive)"
                            : "");
        return 0;
    }
    if (o.listDesigns) {
        std::printf("Baseline  PrY (Y in 80/40/20/10)  ShY  ShY+CZ  "
                    "ShY+CZ+Boost  CDXBar  CDXBar+2xNoC1  "
                    "CDXBar+2xNoC\n");
        return 0;
    }

    core::SystemConfig sys =
        core::SystemConfig::scaled(o.cores, o.slices, o.channels);
    sys.seed = o.seed;
    const core::DesignConfig design = core::designByName(o.design);

    std::unique_ptr<core::GpuSystem> gpu;
    std::unique_ptr<workload::TraceFileSource> trace_probe;
    if (!o.trace.empty()) {
        // Trace mode: wrap the trace as the workload via a synthetic
        // params shell (GpuSystem owns its own source for catalog
        // apps; for traces we simulate via the trace-driven app).
        workload::WorkloadParams shell;
        shell.name = o.trace;
        trace_probe = std::make_unique<workload::TraceFileSource>(
            o.trace, o.cores);
        shell.warpsPerCore = trace_probe->warpsPerCore(0);
        inform("trace '%s': %llu instructions, %u warps/core",
               o.trace.c_str(),
               static_cast<unsigned long long>(
                   trace_probe->instructionCount()),
               shell.warpsPerCore);
        gpu = std::make_unique<core::GpuSystem>(
            sys, design, shell,
            std::make_unique<workload::TraceFileSource>(o.trace,
                                                        o.cores));
    } else {
        const auto &app = workload::appByName(o.app);
        gpu = std::make_unique<core::GpuSystem>(sys, design, app.params);
    }

    // Telemetry, all opt-in: attribution first (trace slices come from
    // attributed requests), then the timeline, then the trace sink.
    if (!o.traceOutFile.empty() && o.latencyEvery == 0)
        o.latencyEvery = 1;
    if (o.latencyEvery > 0)
        gpu->enableLatency(o.latencyEvery);
    std::unique_ptr<exec::AppendLog> timeline_log;
    if (!o.timelineFile.empty()) {
        timeline_log = std::make_unique<exec::AppendLog>(o.timelineFile);
        exec::AppendLog *log = timeline_log.get();
        const Cycle interval = o.timelineInterval != 0
                                   ? o.timelineInterval
                                   : core::timelineIntervalFromEnv();
        gpu->enableTimeline(interval, [log](const std::string &row) {
            log->appendLine(row);
        });
    }
    std::unique_ptr<stats::TraceExport> trace_export;
    if (!o.traceOutFile.empty()) {
        trace_export = std::make_unique<stats::TraceExport>();
        gpu->enableTrace(trace_export.get());
    }

    // One job on the execution engine (inline on this thread, so
    // drain/stats below stay on the thread that built the machine):
    // faults become a reported failure, and the record carries host
    // wall time.
    exec::ExecOptions eopts;
    eopts.jobs = 1;
    eopts.cycleBudget = o.budget;
    eopts.maxRetries = 0; // interactive single shot; no silent re-runs
    eopts.crashDir = o.crashDir;
    if (eopts.crashDir.empty())
        eopts.crashDir = envStrOr("DCL1_CRASH_DIR", "");
    eopts.profile = o.profile || envIsSet("DCL1_PROF");
    exec::JobRunner runner(eopts);
    std::unique_ptr<exec::JsonlSink> jsonl;
    if (!o.jsonlFile.empty()) {
        jsonl = std::make_unique<exec::JsonlSink>(o.jsonlFile);
        runner.addSink(jsonl.get());
    }
    std::vector<exec::JobSpec> specs(1);
    specs[0].label =
        design.name + "/" + (o.trace.empty() ? o.app : o.trace);
    // Crash-diagnostic cooperation (see exec/crash_record.hh): the
    // replayable configuration up front, the machine state on death.
    const std::string crash_cfg = csprintf(
        "\"design\":\"%s\",\"%s\":\"%s\",\"cores\":%u,\"slices\":%u,"
        "\"channels\":%u,\"seed\":%llu,\"measure\":%llu,\"warmup\":%llu",
        exec::jsonEscape(design.name).c_str(),
        o.trace.empty() ? "app" : "trace",
        exec::jsonEscape(o.trace.empty() ? o.app : o.trace).c_str(),
        o.cores, o.slices, o.channels,
        static_cast<unsigned long long>(o.seed),
        static_cast<unsigned long long>(o.cycles),
        static_cast<unsigned long long>(o.warmup));
    specs[0].fn = [&](exec::JobContext &ctx) {
        ctx.setCrashContext(crash_cfg);
        core::GpuSystem::CycleHeartbeat heartbeat;
        if (ctx.cycleBudget() != 0)
            heartbeat = [&ctx](Cycle now) { ctx.checkCycleBudget(now); };
        try {
            gpu->run(o.cycles, o.warmup, heartbeat);
            gpu->finishTelemetry();
        } catch (...) {
            try {
                ctx.setCrashContext(crash_cfg + "," +
                                    exec::crashSnapshotJson(*gpu));
            } catch (...) {
            }
            throw;
        }
        return gpu->metrics();
    };
    const std::vector<exec::JobResult> results = runner.run(specs);
    if (!results[0].ok) {
        std::fprintf(stderr, "dcl1run: simulation failed (%s): %s\n",
                     exec::failureKindName(results[0].kind),
                     results[0].error.c_str());
        if (!eopts.crashDir.empty())
            std::fprintf(
                stderr,
                "dcl1run: crash record: %s/%s (replay with "
                "--replay-crash)\n",
                eopts.crashDir.c_str(),
                exec::crashRecordName(0, results[0].label).c_str());
        return exec::kExitRunFailed;
    }
    const core::RunMetrics &rm = results[0].metrics;

    std::printf("design     %s\n", design.name.c_str());
    std::printf("platform   %s\n", sys.summary().c_str());
    std::printf("workload   %s\n",
                o.trace.empty() ? o.app.c_str() : o.trace.c_str());
    std::printf("cycles     %llu (+%llu warmup)\n",
                static_cast<unsigned long long>(rm.cycles),
                static_cast<unsigned long long>(o.warmup));
    std::printf("IPC        %.3f\n", rm.ipc);
    std::printf("L1 miss    %.3f\n", rm.l1MissRate);
    std::printf("replratio  %.3f (avg replicas %.2f)\n",
                rm.replicationRatio, rm.avgReplicas);
    std::printf("read RTT   %.1f cycles\n", rm.avgReadLatency);
    std::printf("L2 miss    %.3f\n",
                rm.l2Accesses ? double(rm.l2Misses) / rm.l2Accesses
                              : 0.0);
    std::printf("DRAM       %llu reads, %llu writes\n",
                static_cast<unsigned long long>(rm.dramReads),
                static_cast<unsigned long long>(rm.dramWrites));
    if (gpu->latency()) {
        std::fflush(stdout);
        gpu->latency()->printBreakdown(std::cout);
        std::cout.flush();
    }
    // Host timing is observability, not simulation output: stderr, so
    // same-seed stdout stays byte-identical across runs.
    std::fprintf(stderr, "host time  %.1f ms\n", results[0].wallMs);
    if (results[0].prof.enabled) {
        results[0].prof.writeTable(stderr);
        if (!o.profileFile.empty()) {
            exec::AtomicFileWriter out(o.profileFile);
            out.stream() << results[0].prof.json() << "\n";
            out.commit();
            inform("profile written to %s", o.profileFile.c_str());
        }
    }

    if (o.drain) {
        const bool ok = gpu->drain();
        std::printf("drain      %s\n", ok ? "clean" : "TIMED OUT");
        if (!ok)
            return exec::kExitRunFailed;
    }

    if (!o.statsFile.empty()) {
        if (o.statsFile == "-") {
            gpu->dumpStats(std::cout);
        } else {
            exec::AtomicFileWriter out(o.statsFile);
            gpu->dumpStats(out.stream());
            out.commit();
            inform("stats written to %s", o.statsFile.c_str());
        }
    }
    if (!o.statsJsonFile.empty()) {
        if (o.statsJsonFile == "-") {
            gpu->dumpStatsJson(std::cout);
        } else {
            exec::AtomicFileWriter out(o.statsJsonFile);
            gpu->dumpStatsJson(out.stream());
            out.commit();
            inform("stats JSON written to %s", o.statsJsonFile.c_str());
        }
    }
    if (trace_export) {
        // Host phase slices ride along on their own track when both
        // --trace and --profile are on.
        if (results[0].prof.enabled)
            stats::exportHostPhases(*trace_export, results[0].prof);
        exec::AtomicFileWriter out(o.traceOutFile);
        trace_export->writeJson(out.stream());
        out.commit();
        inform("trace written to %s (%zu events, %zu dropped)",
               o.traceOutFile.c_str(), trace_export->events(),
               trace_export->dropped());
    }
    if (timeline_log)
        inform("timeline written to %s (%llu rows)",
               o.timelineFile.c_str(),
               static_cast<unsigned long long>(
                   gpu->timeline() ? gpu->timeline()->rows() : 0));
    return exec::kExitOk;
}
