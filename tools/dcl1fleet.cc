/**
 * @file
 * dcl1fleet — multi-process sweep launcher over dcl1sweep --worker.
 *
 *   dcl1fleet --workers=4 --run-dir=runs/main --out=results.csv \
 *             --designs=Baseline,Pr40 --apps=T-AlexNet,C-BFS
 *
 * Spawns K local `dcl1sweep --worker` processes that cooperate on one
 * durable run directory through per-cell lease files (exec/lease.hh),
 * waits for all of them, then always runs one *recovery* worker — if
 * every first-wave worker crashed, the recovery worker reclaims their
 * stale leases and finishes the grid alone — and finally merges with
 * a plain `dcl1sweep --resume --out` run, which re-simulates nothing
 * and emits the CSV in grid order. Because every cell is a pure
 * function of its configuration and metrics round-trip exactly, the
 * merged CSV is byte-identical to a single-process `--jobs=1` run;
 * --verify re-computes that reference and compares, byte for byte.
 *
 * Crash testing: --chaos-kill=W:N[:C] arms deterministic fault
 * injection in worker W only (die mid-simulation of its N-th cell at
 * cycle C), and --chaos-drop-heartbeat=W turns worker W into a
 * zombie that keeps simulating but stops renewing its leases. A
 * worker death with status 137 (the chaos/SIGKILL status) is an
 * expected outcome; the fleet completes through the survivors and
 * the recovery pass.
 *
 * Grid flags the launcher does not recognize (--designs, --apps,
 * --budget, --jobs, ...) are forwarded verbatim to every dcl1sweep it
 * spawns, so the worker grid, the merge run, and the --verify
 * reference all describe the same batch.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/log.hh"
#include "exec/chaos.hh"
#include "exec/exit_codes.hh"

using namespace dcl1;

namespace
{

/** One armed fault, parsed from --chaos-kill=W:N[:C]. */
struct ChaosKill
{
    std::size_t worker = 0;
    long after = 0;
    long atCycle = -1; // -1 = leave the sweep default
};

void
printHelp()
{
    std::printf(
        "dcl1fleet — spawn K dcl1sweep --worker processes on one "
        "run directory,\nrecover crashed workers, merge, verify\n"
        "\n"
        "  --workers=K        worker processes (default 4)\n"
        "  --run-dir=DIR      shared durable run directory (required)\n"
        "  --out=FILE         merged CSV (required; written by a final\n"
        "                     --resume run after all workers exit)\n"
        "  --sweep-bin=PATH   dcl1sweep binary (default: next to\n"
        "                     dcl1fleet)\n"
        "  --lease-ttl-ms=N   worker lease TTL (default 30000; lower\n"
        "                     it when testing crash recovery)\n"
        "  --heartbeat-ms=N   worker lease renewal interval\n"
        "  --worker-idle-ms=N worker poll interval\n"
        "  --verify           also run a fresh single-process --jobs=1\n"
        "                     sweep and require the merged CSV to be\n"
        "                     byte-identical\n"
        "  --chaos-kill=W:N[:C]     kill worker W during its N-th cell\n"
        "                           (at simulated cycle C)\n"
        "  --chaos-drop-heartbeat=W worker W stops renewing leases\n"
        "                           (zombie) but keeps running\n"
        "\n"
        "Unrecognized --flags are forwarded to every spawned dcl1sweep\n"
        "(use them for --designs/--apps/--jobs/--budget/...).\n"
        "\n"
        "%s\n",
        exec::kExitCodeContract);
}

/** Spawn @p args (argv[0] = binary path); returns the child pid. */
pid_t
spawn(const std::vector<std::string> &args)
{
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const std::string &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("dcl1fleet: fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        ::execv(argv[0], argv.data());
        std::fprintf(stderr, "dcl1fleet: exec '%s' failed: %s\n",
                     argv[0], std::strerror(errno));
        std::_Exit(127);
    }
    return pid;
}

/** Wait for @p pid; returns the exit status, or 128+signal. */
int
await(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR)
            fatal("dcl1fleet: waitpid failed: %s",
                  std::strerror(errno));
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

/** Run @p args to completion; returns its exit status. */
int
run(const std::vector<std::string> &args)
{
    return await(spawn(args));
}

std::string
readWhole(const std::string &path)
{
    std::ifstream in(path);
    std::string text;
    for (std::string line; std::getline(in, line);) {
        text += line;
        text += '\n';
    }
    return text;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::size_t workers = 4;
    std::string run_dir = envStrOr("DCL1_RUN_DIR", "");
    std::string out_path;
    std::string sweep_bin;
    std::int64_t lease_ttl_ms = envIntOr(
        "DCL1_LEASE_TTL_MS", 30000, 1,
        std::numeric_limits<std::int64_t>::max() / 2);
    std::int64_t heartbeat_ms =
        envIntOr("DCL1_HEARTBEAT_MS", 0, 0, 86400000);
    std::int64_t idle_ms =
        envIntOr("DCL1_WORKER_IDLE_MS", 0, 0, 86400000);
    bool verify = false;
    std::vector<ChaosKill> kills;
    std::vector<std::size_t> heartbeat_drops;
    std::vector<std::string> forwarded;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--workers=", 0) == 0)
            workers = static_cast<std::size_t>(parseEnvInt(
                "--workers", a.substr(10).c_str(), 1, 1024));
        else if (a.rfind("--run-dir=", 0) == 0)
            run_dir = a.substr(10);
        else if (a.rfind("--out=", 0) == 0)
            out_path = a.substr(6);
        else if (a.rfind("--sweep-bin=", 0) == 0)
            sweep_bin = a.substr(12);
        else if (a.rfind("--lease-ttl-ms=", 0) == 0)
            lease_ttl_ms = parseEnvInt(
                "--lease-ttl-ms", a.substr(15).c_str(), 1,
                std::numeric_limits<std::int64_t>::max() / 2);
        else if (a.rfind("--heartbeat-ms=", 0) == 0)
            heartbeat_ms = parseEnvInt(
                "--heartbeat-ms", a.substr(15).c_str(), 1, 86400000);
        else if (a.rfind("--worker-idle-ms=", 0) == 0)
            idle_ms = parseEnvInt(
                "--worker-idle-ms", a.substr(17).c_str(), 1, 86400000);
        else if (a == "--verify")
            verify = true;
        else if (a.rfind("--chaos-kill=", 0) == 0) {
            // W:N[:C] — strict, like every other numeric option.
            const std::string spec = a.substr(13);
            const std::size_t c1 = spec.find(':');
            if (c1 == std::string::npos)
                fatal("--chaos-kill=%s: expected WORKER:AFTER[:CYCLE]",
                      spec.c_str());
            const std::size_t c2 = spec.find(':', c1 + 1);
            ChaosKill kill;
            kill.worker = static_cast<std::size_t>(parseEnvInt(
                "--chaos-kill worker", spec.substr(0, c1).c_str(), 0,
                1023));
            const std::string after =
                c2 == std::string::npos
                    ? spec.substr(c1 + 1)
                    : spec.substr(c1 + 1, c2 - c1 - 1);
            kill.after = parseEnvInt("--chaos-kill after",
                                     after.c_str(), 1,
                                     std::int64_t(1) << 40);
            if (c2 != std::string::npos)
                kill.atCycle = parseEnvInt(
                    "--chaos-kill cycle", spec.substr(c2 + 1).c_str(),
                    0, std::int64_t(1) << 60);
            kills.push_back(kill);
        } else if (a.rfind("--chaos-drop-heartbeat=", 0) == 0)
            heartbeat_drops.push_back(
                static_cast<std::size_t>(parseEnvInt(
                    "--chaos-drop-heartbeat", a.substr(23).c_str(), 0,
                    1023)));
        else if (a == "--help" || a == "-h") {
            printHelp();
            return exec::kExitOk;
        } else if (a.rfind("--", 0) == 0)
            forwarded.push_back(a);
        else
            fatal("unknown argument '%s' (--help lists the options)",
                  a.c_str());
    }
    if (run_dir.empty())
        fatal("dcl1fleet: --run-dir=DIR is required (workers "
              "coordinate through it)");
    if (out_path.empty())
        fatal("dcl1fleet: --out=FILE is required (the merged CSV)");
    if (sweep_bin.empty()) {
        // Default: dcl1sweep sits next to this binary.
        const std::string self = argv[0];
        const std::size_t slash = self.rfind('/');
        sweep_bin = slash == std::string::npos
                        ? "dcl1sweep"
                        : self.substr(0, slash + 1) + "dcl1sweep";
    }
    for (const ChaosKill &kill : kills)
        if (kill.worker >= workers)
            fatal("--chaos-kill names worker %zu but only %zu were "
                  "requested",
                  kill.worker, workers);
    for (const std::size_t w : heartbeat_drops)
        if (w >= workers)
            fatal("--chaos-drop-heartbeat names worker %zu but only "
                  "%zu were requested",
                  w, workers);

    // First wave: K workers sharing the run directory.
    auto workerArgs = [&](const std::string &id) {
        std::vector<std::string> args = {
            sweep_bin, "--worker", "--worker-id=" + id,
            "--run-dir=" + run_dir,
            csprintf("--lease-ttl-ms=%lld",
                     static_cast<long long>(lease_ttl_ms))};
        if (heartbeat_ms > 0)
            args.push_back(csprintf(
                "--heartbeat-ms=%lld",
                static_cast<long long>(heartbeat_ms)));
        if (idle_ms > 0)
            args.push_back(csprintf("--worker-idle-ms=%lld",
                                    static_cast<long long>(idle_ms)));
        args.insert(args.end(), forwarded.begin(), forwarded.end());
        return args;
    };

    std::vector<pid_t> pids;
    for (std::size_t w = 0; w < workers; ++w) {
        std::vector<std::string> args = workerArgs(csprintf("w%zu", w));
        for (const ChaosKill &kill : kills) {
            if (kill.worker != w)
                continue;
            args.push_back(
                csprintf("--chaos-kill-after=%ld", kill.after));
            if (kill.atCycle >= 0)
                args.push_back(csprintf("--chaos-kill-at-cycle=%ld",
                                        kill.atCycle));
        }
        for (const std::size_t drop : heartbeat_drops)
            if (drop == w)
                args.push_back("--chaos-drop-heartbeat");
        pids.push_back(spawn(args));
        std::fprintf(stderr, "[fleet] worker w%zu: pid %ld\n", w,
                     static_cast<long>(pids.back()));
    }

    std::size_t died = 0, resumable = 0, failed = 0;
    for (std::size_t w = 0; w < workers; ++w) {
        const int status = await(pids[w]);
        std::fprintf(stderr, "[fleet] worker w%zu exited %d%s\n", w,
                     status,
                     status == exec::kChaosKillStatus
                         ? " (killed; its leases will be reclaimed)"
                         : "");
        if (status == exec::kExitIncompatibleRunDir)
            // Every worker is running the same binary against the
            // same directory: they are all doomed the same way.
            fatal("dcl1fleet: run directory '%s' is incompatible with "
                  "this dcl1sweep build; use a fresh directory",
                  run_dir.c_str());
        if (status >= 128)
            ++died;
        else if (status == exec::kExitResumable)
            ++resumable;
        else if (status != exec::kExitOk)
            ++failed;
    }

    // Recovery pass: even if *every* worker crashed, one clean worker
    // reclaims their stale leases (after the TTL) and finishes the
    // grid. Harmless when nothing crashed — it sees a complete WAL
    // and exits after one round.
    std::fprintf(stderr,
                 "[fleet] recovery worker (%zu crashed, %zu "
                 "interrupted, %zu failed)\n",
                 died, resumable, failed);
    const int recover_status = run(workerArgs("recover"));
    if (recover_status != exec::kExitOk &&
        recover_status != exec::kExitFailedCells &&
        recover_status != exec::kExitQuarantined)
        fatal("dcl1fleet: recovery worker exited %d; run directory "
              "'%s' is left for inspection/--resume",
              recover_status, run_dir.c_str());

    // Merge: a plain resume run re-simulates nothing (every cell has
    // a WAL record) and writes the CSV in grid order.
    std::vector<std::string> merge = {sweep_bin, "--resume=" + run_dir,
                                      "--out=" + out_path, "--jobs=1"};
    merge.insert(merge.end(), forwarded.begin(), forwarded.end());
    const int merge_status = run(merge);
    if (merge_status != exec::kExitOk) {
        std::fprintf(stderr, "[fleet] merge run exited %d\n",
                     merge_status);
        return merge_status;
    }

    if (verify) {
        // Reference: one process, one thread, no run directory — the
        // historical serial tool. The fleet must match it exactly.
        const std::string ref_path = run_dir + "/verify-ref.csv";
        std::vector<std::string> ref = {sweep_bin, "--jobs=1",
                                        "--out=" + ref_path};
        ref.insert(ref.end(), forwarded.begin(), forwarded.end());
        const int ref_status = run(ref);
        if (ref_status != exec::kExitOk)
            fatal("dcl1fleet: --verify reference run exited %d",
                  ref_status);
        const std::string merged = readWhole(out_path);
        const std::string reference = readWhole(ref_path);
        if (merged.empty() || merged != reference) {
            std::fprintf(stderr,
                         "[fleet] VERIFY FAILED: '%s' differs from "
                         "the single-process reference '%s'\n",
                         out_path.c_str(), ref_path.c_str());
            return exec::kExitRunFailed;
        }
        std::fprintf(stderr,
                     "[fleet] verify ok: merged CSV is byte-identical "
                     "to the single-process reference\n");
    }

    std::fprintf(stderr, "[fleet] done: %zu worker(s) + recovery, "
                 "merged CSV at %s\n",
                 workers, out_path.c_str());
    return exec::kExitOk;
}
