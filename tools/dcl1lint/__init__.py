"""dcl1lint — simulator-aware static analysis for dcl1sim.

A small analyzer framework that replaces the historical regex script
(tools/lint_sim.py). It models C++ source precisely enough to be
trustworthy — comments and string literals are lexed into separate
channels, function bodies are tracked by brace scope, and the include
graph is checked against the architecture layering — while staying
dependency-free: when the python libclang binding is available it is
used for exact function extents, otherwise a built-in tokenizer
provides the same interface.

Entry points:
  python3 tools/dcl1lint [paths...]      # lint the tree
  python3 tools/dcl1lint --list-rules    # rule reference
  python3 tools/dcl1lint/selftest.py     # fixture self-test
"""

__version__ = "2.0"
