// R11 fixture: the serving layer must not reach up into entry points.

#include "tools/cli.hh" // expect: R11
#include "serve/serve_sim.hh"

void
serveModel()
{
}
