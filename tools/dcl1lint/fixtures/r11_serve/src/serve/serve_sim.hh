// R11 fixture: serve sits above exec and may include downward freely.

#ifndef FIXTURE_SERVE_SERVE_SIM_HH
#define FIXTURE_SERVE_SERVE_SIM_HH

#include "common/log.hh"
#include "exec/runner.hh"

#endif
