// R11 fixture: exec header, one band below serve.

#ifndef FIXTURE_EXEC_RUNNER_HH
#define FIXTURE_EXEC_RUNNER_HH

#include "common/log.hh"

#endif
