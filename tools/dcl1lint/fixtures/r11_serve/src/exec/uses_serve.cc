// R11 fixture: the execution engine must not know about serving.

#include "serve/serve_sim.hh" // expect: R11
#include "exec/runner.hh"

void
engine()
{
}
