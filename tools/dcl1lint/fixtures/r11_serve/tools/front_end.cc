// R11 fixture: entry points may include the serving layer.

#include "serve/serve_sim.hh"

int
main()
{
    return 0;
}
