// R0 fixture: suppressions that suppress nothing.

int
nothingToSuppressHere()
{
    int x = 1; // lint: unordered-iter-ok expect: R0
    // lint: bogus-ok expect: R0
    return x;
}

int
prose(std::FILE *f)
{
    /* Block comments are prose, not pragmas: lint: trace-ok stays
     * unrecognized there, so no stale warning for this mention. */
    const char *s = "nor in strings: lint: rawwrite-ok";
    return f != nullptr && s != nullptr;
}
