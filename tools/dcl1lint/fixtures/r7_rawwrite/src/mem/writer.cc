// R7 fixture (out of scope): model code is not covered by the rule —
// it has no business writing files at all, but that is a review
// matter, not R7's.

#include <fstream>

void
outOfScope(const char *path)
{
    std::ofstream out(path);
}
