// R7 fixture: raw result-file writes in tool code.

#include <cstdio>
#include <fstream>

void
bad(const char *path)
{
    std::ofstream out(path); // expect: R7
    std::FILE *f = std::fopen(path, "w"); // expect: R7
    std::FILE *g = fopen(path, "w"); // expect: R7
    (void)f;
    (void)g;
}

void
suppressed(const char *path)
{
    // lint: rawwrite-ok (fixture)
    std::ofstream out(path);
}

void
clean(const char *path)
{
    std::ifstream in(path); // reads are unaffected
    exec::AtomicFileWriter writer(path);
}
