// R11 fixture: prof sits just above common — every tick path hooks
// into it, so it must stay below stats and the models. Its audited
// host-clock reads are legal here (R6 honours the annotation under
// src/prof/).

#ifndef FIXTURE_PROF_PROF_HH
#define FIXTURE_PROF_PROF_HH

#include <chrono>

#include "common/log.hh"

inline long
nowNs()
{
    return std::chrono::steady_clock::now() // lint: wallclock-ok
        .time_since_epoch()
        .count();
}

#endif
