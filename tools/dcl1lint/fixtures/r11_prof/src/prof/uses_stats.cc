// R11 fixture: the profiler must not reach up into stats (the
// chrome-trace bridge lives in stats and includes prof, never the
// other way around).

#include "stats/trace.hh" // expect: R11
#include "prof/prof.hh"

void
profiler()
{
}
