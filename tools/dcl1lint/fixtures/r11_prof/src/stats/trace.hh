// R11 fixture: stats sits above prof and may include it freely (the
// chrome-trace bridge exports host phase reports).

#ifndef FIXTURE_STATS_TRACE_HH
#define FIXTURE_STATS_TRACE_HH

#include "prof/prof.hh"

#endif
