// R11 fixture: model code may hook into the profiler (downward
// include) — that is the whole point of the band placement.

#include "prof/prof.hh"

void
model()
{
}
