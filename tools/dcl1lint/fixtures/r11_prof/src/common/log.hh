// R11 fixture: common is the bottom band.

#ifndef FIXTURE_COMMON_LOG_HH
#define FIXTURE_COMMON_LOG_HH

#endif
