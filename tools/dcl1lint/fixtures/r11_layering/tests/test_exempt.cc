// R11 fixture: tests may include anything.

#include "exec/runner.hh"
#include "mem/a.hh"

void
testBody()
{
}
