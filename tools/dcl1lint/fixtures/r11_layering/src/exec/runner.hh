// R11 fixture: exec may freely include downward.

#ifndef FIXTURE_EXEC_RUNNER_HH
#define FIXTURE_EXEC_RUNNER_HH

#include "common/log.hh"
#include "mem/b.hh"

#endif
