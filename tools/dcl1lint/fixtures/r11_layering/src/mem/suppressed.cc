// R11 fixture: an annotated (grandfathered) upward include.

#include "core/design.hh" // lint: layering-ok (fixture)

void
grandfathered()
{
}
