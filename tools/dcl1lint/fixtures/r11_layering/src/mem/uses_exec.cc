// R11 fixture: a model reaching up into the execution engine.

#include "exec/runner.hh" // expect: R11
#include "common/log.hh"
#include "stats/group.hh"
#include "mem/a.hh"

void
model()
{
}
