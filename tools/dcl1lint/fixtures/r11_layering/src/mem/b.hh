// R11 fixture: the other half of the include cycle. Same band, so no
// layering violation — the cycle check catches it instead.

#ifndef FIXTURE_MEM_B_HH
#define FIXTURE_MEM_B_HH

#include "mem/a.hh"

#endif
