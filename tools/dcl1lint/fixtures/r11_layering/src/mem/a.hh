// R11 fixture: half of a file-level include cycle.

#ifndef FIXTURE_MEM_A_HH
#define FIXTURE_MEM_A_HH

#include "mem/b.hh" // expect: R11 (cycle reported here)

#endif
