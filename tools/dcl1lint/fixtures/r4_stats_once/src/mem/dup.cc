// R4 fixture: duplicate stat registration in one file.

void
registerStats(StatGroup &g, double *a, double *b)
{
    g.addScalar("hits", a);
    g.addScalar("misses", b);
    g.addScalar("hits", b); // expect: R4
    g.addDistribution(
        "latency", a);
    g.addDistribution( // expect: R4
        "latency", b);
    g.addScalar("evictions", a);
    g.addScalar("evictions", b); // lint: stats-once-ok (fixture)
}
