// R1 fixture: libc randomness vs the seeded Rng.

int
bad()
{
    return rand(); // expect: R1
}

int
suppressed()
{
    return rand(); // lint: libc-rand-ok (fixture)
}

int
clean(Rng &rng)
{
    // A comment mentioning rand() must not fire, nor must a string:
    const char *s = "call rand() here";
    return rng.next() + (s ? 1 : 0) + grand(1) + my_random_field;
}
