// R2 fixture: range-for over unordered containers.

#include "mem/iter.hh"

#include <unordered_set>

std::unordered_set<int> local_;

int
bad(Table &t)
{
    int sum = 0;
    for (const auto &kv : byAddr_) // expect: R2
        sum += kv.second;
    for (int v : local_) // expect: R2
        sum += v;
    return sum;
}

int
suppressed()
{
    int sum = 0;
    // Audit-only aggregate; order cannot leak. lint: unordered-iter-ok
    for (int v : local_)
        sum += v;
    return sum;
}

int
clean(Table &t)
{
    int sum = 0;
    for (const auto &kv : ordered_)
        sum += kv.second;
    return sum;
}
