// R2 fixture header: the member is declared here, iterated in the
// paired .cc — the rule must find the declaration across files.

#include <map>
#include <unordered_map>

class Table
{
    std::unordered_map<int, int> byAddr_;
    std::map<int, int> ordered_;
};
