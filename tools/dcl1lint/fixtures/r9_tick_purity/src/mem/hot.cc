// R9 fixture: heap growth inside hot-path methods.

#include "mem/hot.hh"

void
Cache::access(Request &req, Cycle now)
{
    inflight_.push_back(req.id); // expect: R9
    auto owned = std::make_unique<Line>(req.addr); // expect: R9
    byAddr_.insert({req.addr, now}); // expect: R9
    // Bounded: at most one entry per MSHR, reserved in the ctor.
    mshrs_.emplace_back(req.id, now); // lint: alloc-ok (fixture)
    pending_.push(req); // BoundedQueue enqueue: exempt by design
    hits_ += 1;
}

void
Cache::tick(Cycle now)
{
    if (scratch_.empty())
        scratch_.resize(kWays); // expect: R9
}

void
Cache::report()
{
    // Not a hot path: growth here is fine.
    names_.push_back("cache");
}
