// R5 fixture: fatal() reporting internal corruption must be panic().

void
bad(int credits)
{
    if (credits < 0)
        fatal("credit underflow on port %d", credits); // expect: R5
}

void
suppressed(int credits)
{
    // lint: fatal-ok (fixture)
    fatal("double free of request %d", credits);
}

void
clean(int cycles, int credits)
{
    if (cycles < 0)
        fatal("DCL1_CYCLES must be positive, got %d", cycles);
    if (credits < 0)
        panic("credit underflow on port %d", credits);
}
