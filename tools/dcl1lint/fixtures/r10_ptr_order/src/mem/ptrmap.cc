// R10 fixture: ordered containers keyed on pointer values.

#include <map>
#include <set>

struct Request;

class Tracker
{
    std::map<Request *, int> byPtr_; // expect: R10
    std::set<const Request *> live_; // expect: R10
    std::map<unsigned long, Request *> byId_; // value pointers are fine
    std::map<int, int> plain_;
    // The ledger hands out dense ids precisely so this map exists.
    std::map<Request *, int> audit_; // lint: ptr-order-ok (fixture)
};
