// R6 fixture: wall-clock reads in simulation code.

#include <chrono>
#include <ctime>

long
bad()
{
    auto t = std::chrono::steady_clock::now(); // expect: R6
    return time(nullptr) + clock(); // expect: R6
}

long
annotatedButOutsideExec()
{
    // The token exists but is only honoured under src/exec/ — this
    // still fires (with the explanatory message).
    return clock(); // lint: wallclock-ok expect: R6
}

long
clean(Cycle now)
{
    // Simulated time is the only clock here.
    return static_cast<long>(now);
}
