// R6 fixture (exec side): host timing is legitimate here when
// annotated, and still flagged when not.

#include <chrono>

double
suppressed()
{
    using HostClock = std::chrono::steady_clock; // lint: wallclock-ok
    return 0.0;
}

double
bad()
{
    auto t = std::chrono::system_clock::now(); // expect: R6
    (void)t;
    return 1.0;
}
