// R12 fixture (exempt): the sanctioned front door itself.

#include <cstdlib>

const char *
frontDoor(const char *name)
{
    return std::getenv(name);
}
