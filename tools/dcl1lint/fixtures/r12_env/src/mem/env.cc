// R12 fixture: direct environment reads outside common/env.hh.

#include <cstdlib>

const char *
bad()
{
    return std::getenv("DCL1_CACHE"); // expect: R12
}

const char *
alsoBad()
{
    return getenv("DCL1_CACHE"); // expect: R12
}

const char *
suppressed()
{
    return std::getenv("HOME"); // lint: env-ok (fixture)
}

void
clean()
{
    const std::string dir = envStrOr("DCL1_RUN_DIR", "");
    (void)dir;
}
