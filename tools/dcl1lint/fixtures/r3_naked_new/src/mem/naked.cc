// R3 fixture: naked new vs smart-pointer factories.

#include <memory>

struct Foo
{
    explicit Foo(int);
};

void
bad()
{
    Foo *p = new Foo(1); // expect: R3
    (void)p;
}

void
suppressed()
{
    Foo *p = new Foo(2); // lint: naked-new-ok (fixture)
    (void)p;
}

void
clean()
{
    auto p = std::make_unique<Foo>(3);
    // "new Foo(" inside a string or comment must not fire.
    const char *s = "new Foo(4)";
    (void)p;
    (void)s;
}
