// R11 fixture: a serving-band header the exec band must not reach.

#ifndef FIXTURE_SERVE_SCHEDULER_HH
#define FIXTURE_SERVE_SCHEDULER_HH

#include "exec/lease.hh"

#endif
