// R11 fixture: the simulated machine must never see fleet machinery —
// leases and heartbeats are host-side coordination, two bands up.

#include "exec/lease.hh" // expect: R11
#include "common/log.hh"

void
tickSystem()
{
}
