// R11 fixture: the lease/heartbeat layer must not know about serving
// policy — reclamation decisions cannot depend on job scheduling.

#include "serve/scheduler.hh" // expect: R11
#include "exec/lease.hh"

void
renewLoop()
{
}
