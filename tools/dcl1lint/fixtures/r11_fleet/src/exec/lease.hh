// R11 fixture: fleet-coordination primitives live in the exec band
// and may include downward freely.

#ifndef FIXTURE_EXEC_LEASE_HH
#define FIXTURE_EXEC_LEASE_HH

#include "common/log.hh"

#endif
