// R11 fixture: entry points sit above exec and may use leases freely.

#include "exec/lease.hh"

int
main()
{
    return 0;
}
