// R8 fixture: direct trace emission outside src/stats/.

void
bad(TraceExport &te)
{
    te.reqSlice(1, "issue", 0, 5); // expect: R8
    te.counterEvent("q", 10, 2.5); // expect: R8
}

void
suppressed(TraceExport *te)
{
    te->reqSlice(1, "issue", 0, 5); // lint: trace-ok (fixture)
}

void
clean(Attribution &attr)
{
    // The sampled slow path applies 1-in-N and the cap itself.
    attr.recordSlice(1, "issue", 0, 5);
}
