// R8 fixture (exempt): src/stats/ owns the emission paths.

void
exempt(TraceExport &te)
{
    te.reqSlice(1, "issue", 0, 5);
    te.counterEvent("q", 10, 2.5);
}
