"""Lexical source model: channels, suppressions, and function spans.

The regex linter this package replaces matched patterns against raw
lines, so a word in a comment or a log-message string could suppress or
trigger a rule. Here every file is lexed once into separate channels:

  code      — source with comments removed and literal contents blanked
              (string literals become `""`, char literals `''`)
  comments  — the text of `//` line comments, per line; suppression
              pragmas are only recognized here, so prose in block
              comments can *mention* `lint: wallclock-ok` without
              suppressing anything
  strings   — string-literal contents, attributed to the line where the
              literal starts (rule R4 reads stat names from this)

On top of the code channel a brace-scope pass recovers function spans
(name + line extent) for the hot-path purity rule. The libclang backend
(clang_backend.py) can replace those spans with exact AST extents; the
rules consume the same FileModel either way.
"""

import re
from dataclasses import dataclass, field

SUPPRESS_RE = re.compile(r"lint:\s*([a-z0-9][a-z0-9-]*-ok)")

# Keywords that can precede a parenthesis+brace without being functions.
_NON_FUNC_HEADS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "new", "delete", "throw", "case", "default",
    "operator", "alignas", "decltype", "static_assert", "assert",
}

_RAW_STR_OPEN = re.compile(r'(?:u8|[uUL])?R$')


@dataclass
class FuncSpan:
    """One function/method body: [open_line, end_line] inclusive."""

    name: str  # unqualified name, e.g. "access"
    qualname: str  # as written, e.g. "CacheBank::access"
    sig_line: int  # line the signature's opening paren sits on
    open_line: int = 0  # line of the body's '{'
    end_line: int = 0  # line of the matching '}'


@dataclass
class Suppression:
    """One `// lint: <token>` pragma. Applies to its own line and the
    line below (matching the historical `same line or line above`
    lookup direction)."""

    token: str
    line: int
    used: bool = False


@dataclass
class FileModel:
    """Everything the rules need to know about one source file."""

    rel: str  # path relative to the scan root, posix separators
    parts: tuple  # rel split on '/'
    raw_lines: list
    code: list  # code channel, same line count as raw_lines
    comments: list  # //-comment text per line ("" when none)
    strings: list  # list[list[str]] literal contents per start line
    preproc: set  # 0-based indices of preprocessor lines
    includes: list = field(default_factory=list)  # (line, "mem/foo.hh")
    suppressions: list = field(default_factory=list)
    functions: list = field(default_factory=list)  # FuncSpan
    backend: str = "tokenizer"

    def suppressed(self, token, line):
        """True (and mark used) if @p token is annotated on @p line or
        the line above it."""
        hit = False
        for s in self.suppressions:
            if s.token == token and s.line in (line, line - 1):
                s.used = True
                hit = True
        return hit

    def enclosing_functions(self, line):
        """All FuncSpans whose body contains @p line (outermost
        first)."""
        return [
            f
            for f in self.functions
            if f.open_line <= line <= f.end_line
        ]


def _lex(text):
    """Split @p text into the code / comments / strings channels."""
    code_lines, comment_lines, string_lines = [], [], []
    code, comment = [], []
    strings = []
    i, n = 0, len(text)
    state = "code"
    str_start_line = 0
    cur_str = []
    raw_delim = None
    line_no = 0  # 0-based index of the line being built

    def flush_line():
        nonlocal code, comment, strings, line_no
        code_lines.append("".join(code))
        comment_lines.append("".join(comment))
        string_lines.append(strings)
        code, comment, strings = [], [], []
        line_no += 1

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            if state == "line_comment":
                state = "code"
            flush_line()
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                code.append(" ")
                i += 2
                continue
            if ch == '"':
                head = "".join(code)
                if _RAW_STR_OPEN.search(head):
                    # R"delim( ... )delim"
                    m = re.match(r'"([^(\s]*)\(', text[i:])
                    raw_delim = ")" + (m.group(1) if m else "") + '"'
                    state = "raw_string"
                    code.append('""')
                    str_start_line = line_no
                    cur_str = []
                    i += len(m.group(0)) if m else 1
                    continue
                state = "string"
                code.append('""')
                str_start_line = line_no
                cur_str = []
                i += 1
                continue
            if ch == "'":
                prev = code[-1] if code else ""
                if prev.isalnum() or prev == "_":
                    # C++14 digit separator (1'000'000) or a literal
                    # suffix; not a character literal.
                    i += 1
                    continue
                state = "char"
                code.append("''")
                i += 1
                continue
            code.append(ch)
            i += 1
            continue
        if state == "line_comment":
            comment.append(ch)
            i += 1
            continue
        if state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        if state == "string":
            if ch == "\\":
                cur_str.append(text[i:i + 2])
                i += 2
                continue
            if ch == '"':
                state = "code"
                if str_start_line == line_no:
                    strings.append("".join(cur_str))
                elif str_start_line < len(string_lines):
                    # Started on an already-flushed line — cannot
                    # happen for a valid plain literal, be safe.
                    string_lines[str_start_line].append(
                        "".join(cur_str))
                i += 1
                continue
            cur_str.append(ch)
            i += 1
            continue
        if state == "char":
            if ch == "\\":
                i += 2
                continue
            if ch == "'":
                state = "code"
            i += 1
            continue
        if state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                strings.append("".join(cur_str))
                i += len(raw_delim)
                continue
            cur_str.append(ch)
            i += 1
            continue
    flush_line()
    return code_lines, comment_lines, string_lines


def _mark_preproc(code_lines):
    """0-based indices of preprocessor lines (incl. continuations)."""
    preproc = set()
    cont = False
    for idx, line in enumerate(code_lines):
        if cont or line.lstrip().startswith("#"):
            preproc.add(idx)
            cont = line.rstrip().endswith("\\")
        else:
            cont = False
    return preproc


def _signature_span(stmt, sig_line):
    """If the statement text preceding a '{' looks like a function
    signature, return a FuncSpan, else None."""
    sig = stmt.strip()
    if "(" not in sig or ")" not in sig:
        return None
    # Tail after the last ')': empty, cv/ref qualifiers, or virt
    # specifiers. (A trailing annotation macro like DCL1_EXCLUDES(m)
    # supplies the last ')' itself.)
    tail = sig[sig.rindex(")") + 1:].strip()
    if tail and not re.fullmatch(
            r"(?:const|noexcept|override|final|&|&&|\s)+", tail):
        return None
    prefix = sig[: sig.index("(")].rstrip()
    m = re.search(r"([A-Za-z_~][A-Za-z0-9_]*)$", prefix)
    if not m:
        return None  # lambda or cast, e.g. `[&](int x)`
    name = m.group(1)
    if name in _NON_FUNC_HEADS or name[0].isdigit():
        return None
    qm = re.search(r"([A-Za-z_~][A-Za-z0-9_:~]*)$", prefix)
    return FuncSpan(name=name, qualname=qm.group(1), sig_line=sig_line)


def extract_functions(code_lines, preproc):
    """Brace-scope pass over the code channel.

    Conservative by design: anything that does not look like
    `[qualified-]name(params) [qualifiers] {` is treated as a
    non-function scope (namespace, class, control statement, lambda).
    Nested constructs attribute their lines to every enclosing
    function span, which is the behavior the hot-path rule wants.
    """
    functions = []
    stack = []  # FuncSpan or None per open brace
    stmt = []
    stmt_line = 1
    has_content = False
    for idx, line in enumerate(code_lines):
        ln = idx + 1
        if idx in preproc:
            continue
        for ch in line:
            if ch == "{":
                span = _signature_span("".join(stmt), stmt_line)
                if span:
                    span.open_line = ln
                stack.append(span)
                stmt = []
                has_content = False
            elif ch in ";}":
                if ch == "}" and stack:
                    span = stack.pop()
                    if span:
                        span.end_line = ln
                        functions.append(span)
                stmt = []
                has_content = False
            else:
                if not has_content and not ch.isspace():
                    stmt_line = ln
                    has_content = True
                stmt.append(ch)
        stmt.append(" ")
    functions.sort(key=lambda f: f.open_line)
    return functions


_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def build_model(root, path):
    """Lex @p path (under @p root) into a FileModel."""
    text = path.read_text(encoding="utf-8", errors="replace")
    rel = path.relative_to(root).as_posix()
    code, comments, strings = _lex(text)
    raw_lines = text.splitlines()
    # splitlines() drops a trailing empty segment _lex keeps; align.
    while len(raw_lines) < len(code):
        raw_lines.append("")
    preproc = _mark_preproc(code)
    model = FileModel(
        rel=rel,
        parts=tuple(rel.split("/")),
        raw_lines=raw_lines,
        code=code,
        comments=comments,
        strings=strings,
        preproc=preproc,
    )
    for idx, raw in enumerate(raw_lines):
        m = _INCLUDE_RE.match(raw)
        if m:
            model.includes.append((idx + 1, m.group(1)))
    for idx, comment in enumerate(comments):
        for m in SUPPRESS_RE.finditer(comment):
            model.suppressions.append(
                Suppression(token=m.group(1), line=idx + 1))
    model.functions = extract_functions(code, preproc)
    return model
