"""Analysis driver: file collection, backend choice, rule execution.

The engine produces a flat, sorted list of Findings; baseline
application and exit-code policy live in cli.py so the engine can be
reused by the selftest with fixture trees.
"""

import pathlib

import clang_backend
import rules as rules_mod
from textmodel import build_model

SRC_EXTS = {".cc", ".hh"}
DEFAULT_DIRS = ("src", "tools", "bench", "tests")


class LintError(Exception):
    """Unrecoverable analyzer misconfiguration (exit code 2)."""


def collect_files(root, paths):
    """Resolve @p paths (default: the standard tree dirs) to a sorted
    list of source files under @p root. The analyzer's own fixture
    tree is always excluded — it exists to contain violations."""
    bases = []
    if paths:
        for p in paths:
            cand = pathlib.Path(p)
            if not cand.is_absolute():
                cand = root / cand
            if not cand.exists():
                raise LintError(f"no such path: {p}")
            bases.append(cand)
    else:
        bases = [root / d for d in DEFAULT_DIRS if (root / d).is_dir()]
    files = []
    for base in bases:
        if base.is_file():
            files.append(base)
            continue
        files.extend(
            p for p in sorted(base.rglob("*")) if p.suffix in SRC_EXTS)
    out = []
    seen = set()
    for p in files:
        rel = p.relative_to(root)
        if "dcl1lint" in rel.parts:
            continue
        if rel not in seen:
            seen.add(rel)
            out.append(p)
    return sorted(out)


def _attach_clang_spans(root, files, models, compile_commands):
    """Swap tokenizer function spans for AST extents where libclang
    can parse the file; returns the number of upgraded models."""
    cc_path = compile_commands or (root / "build" /
                                   "compile_commands.json")
    compile_args = (clang_backend.load_compile_args(cc_path)
                    if cc_path.is_file() else {})
    upgraded = 0
    for path, model in zip(files, models):
        spans = clang_backend.function_spans(root, path, compile_args)
        if spans is not None:
            model.functions = spans
            model.backend = "libclang"
            upgraded += 1
    return upgraded


def run(root, paths=None, backend="auto", compile_commands=None):
    """Lint @p paths under @p root.

    Returns (findings, models): findings are suppression-filtered and
    sorted, errors and R0 warnings together; baseline application is
    the caller's business.
    """
    root = pathlib.Path(root).resolve()
    files = collect_files(root, paths)
    if not files:
        raise LintError(f"no source files under {root} — bad --root?")
    models = [build_model(root, p) for p in files]

    backend_used = "tokenizer"
    if backend == "libclang" and not clang_backend.available():
        raise LintError(
            "--backend=libclang requested but the clang python "
            "binding is unavailable")
    if backend in ("auto", "libclang") and clang_backend.available():
        if _attach_clang_spans(root, files, models, compile_commands):
            backend_used = "libclang"

    ctx = rules_mod.Context(root, {m.rel: m for m in models})
    findings = []
    for model in models:
        for rule in rules_mod.FILE_RULES:
            findings.extend(rule.check(model, ctx))
    for rule in rules_mod.PROJECT_RULES:
        findings.extend(rule.check_project(models, ctx))
    findings.extend(_stale_suppressions(models))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings, models, backend_used


def _stale_suppressions(models):
    """R0: annotations that suppressed nothing this run."""
    r0 = rules_mod.STALE_SUPPRESSION
    out = []
    for model in models:
        for s in model.suppressions:
            if s.used:
                continue
            if s.token not in rules_mod.KNOWN_TOKENS:
                msg = (f"unknown suppression token `lint: {s.token}` "
                       "(see --list-rules for the valid tokens)")
            else:
                msg = (f"stale suppression `lint: {s.token}`: nothing "
                       "on this line or the line below matches the "
                       "rule it belongs to — delete it")
            out.append(rules_mod.Finding(
                rule_id=r0.id,
                rule_name=r0.name,
                path=model.rel,
                line=s.line,
                message=msg,
                severity="warning",
                snippet=(model.raw_lines[s.line - 1].strip()
                         if s.line <= len(model.raw_lines) else ""),
            ))
    return out
