"""SARIF 2.1.0 export for code-scanning upload.

One run, one result per finding. Baseline-matched findings are still
exported (with baselineState "unchanged" and an external suppression)
so the scanning UI shows accepted debt instead of hiding it; new
findings carry baselineState "new".
"""

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _rule_descriptor(rule):
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {
            "level": "error" if rule.severity == "error" else "warning",
        },
        "properties": (
            {"suppressionToken": f"lint: {rule.token}"}
            if rule.token else {}
        ),
    }


def _result(finding):
    result = {
        "ruleId": finding.rule_id,
        "level": finding.severity,
        "message": {
            "text": f"[{finding.rule_id}/{finding.rule_name}] "
                    f"{finding.message}",
        },
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {"startLine": max(1, finding.line)},
            },
        }],
        "baselineState": finding.baseline_state,
    }
    if finding.baseline_state == "unchanged":
        result["suppressions"] = [{
            "kind": "external",
            "justification": "accepted in tools/dcl1lint/baseline.json",
        }]
    if finding.snippet:
        loc = result["locations"][0]["physicalLocation"]
        loc["region"]["snippet"] = {"text": finding.snippet}
    return result


def render(findings, rules, tool_version):
    """Serialize @p findings to a SARIF JSON string."""
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "dcl1lint",
                    "informationUri":
                        "https://example.invalid/dcl1sim/dcl1lint",
                    "version": tool_version,
                    "rules": [_rule_descriptor(r) for r in rules],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root"}},
            },
            "results": [_result(f) for f in findings],
        }],
    }
    return json.dumps(log, indent=2) + "\n"
