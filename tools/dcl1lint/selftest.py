#!/usr/bin/env python3
"""dcl1lint self-test: fixtures, baseline workflow, SARIF shape.

Each fixture directory under fixtures/ is a miniature repository root.
Expected findings are declared inline: a `// expect: R9` marker in the
fixture source means exactly one R9 finding on that line (markers may
list several rule IDs). The comparison is exact in both directions, so
unmarked lines double as the per-rule "clean" cases.

Registered in CTest as LintSelftest; run directly with
  python3 tools/dcl1lint/selftest.py
"""

import contextlib
import io
import json
import os
import pathlib
import re
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cli  # noqa: E402
import engine  # noqa: E402

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
EXPECT_RE = re.compile(r"expect:\s*((?:R\d+\s*)+)")

_failures = []


def check(cond, what):
    if cond:
        return
    _failures.append(what)
    print(f"FAIL: {what}")


def expected_findings(fixture_root):
    """Multiset of (path, line, rule) from the inline markers."""
    expected = []
    for path in sorted(fixture_root.rglob("*")):
        if path.suffix not in engine.SRC_EXTS:
            continue
        rel = path.relative_to(fixture_root).as_posix()
        text = path.read_text(encoding="utf-8")
        for ln, line in enumerate(text.splitlines(), start=1):
            comment = line.split("//", 1)
            if len(comment) < 2:
                continue
            m = EXPECT_RE.search(comment[1])
            if m:
                for rid in m.group(1).split():
                    expected.append((rel, ln, rid))
    return sorted(expected)


def run_fixture(fixture_root):
    findings, _, _ = engine.run(fixture_root, backend="tokenizer")
    got = sorted(
        (f.path, f.line, f.rule_id) for f in findings)
    want = expected_findings(fixture_root)
    check(want, f"{fixture_root.name}: fixture declares no "
                "expectations — add `// expect: <rule>` markers")
    if got != want:
        missing = [x for x in want if x not in got]
        surplus = [x for x in got if x not in want]
        check(False,
              f"{fixture_root.name}: findings mismatch\n"
              f"  missing: {missing}\n  surplus: {surplus}")
    else:
        print(f"  {fixture_root.name}: "
              f"{len(want)} expected finding(s) matched")


def _cli(args):
    """Run the CLI with stdout captured; returns (rc, output)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = cli.main(args)
    return rc, out.getvalue()


def run_baseline_workflow(tmp):
    """Update-baseline must absorb findings; new ones must still
    fail; stale entries must warn."""
    root = tmp / "bl"
    shutil.copytree(FIXTURES / "r9_tick_purity", root)
    bl = root / "baseline.json"

    rc, _ = _cli(["--root", str(root), "--no-baseline"])
    check(rc == 1, "baseline: dirty fixture should exit 1")

    rc, _ = _cli(["--root", str(root), "--update-baseline",
                  "--baseline", str(bl)])
    check(rc == 0 and bl.is_file(),
          "baseline: --update-baseline should write the file")

    rc, out = _cli(["--root", str(root), "--baseline", str(bl)])
    check(rc == 0, f"baseline: accepted findings should pass\n{out}")

    hot = root / "src" / "mem" / "hot.cc"
    hot.write_text(
        hot.read_text(encoding="utf-8").replace(
            "hits_ += 1;", "extra_.push_back(now);"),
        encoding="utf-8")
    rc, out = _cli(["--root", str(root), "--baseline", str(bl)])
    check(rc == 1 and "extra_.push_back" not in out.split("R9")[0],
          "baseline: a new finding must fail even with a baseline")

    hot.write_text(
        hot.read_text(encoding="utf-8").replace(
            "extra_.push_back(now);", "hits_ += 1;").replace(
            "inflight_.push_back(req.id); // expect: R9", "// hoisted"),
        encoding="utf-8")
    rc, out = _cli(["--root", str(root), "--baseline", str(bl)])
    check(rc == 0 and "stale" in out,
          "baseline: a paid-off entry should warn as stale")
    print("  baseline workflow: OK")


def run_sarif_check(tmp):
    """SARIF output must be valid JSON with the fields the upload
    action needs."""
    sarif_path = tmp / "out.sarif"
    rc, _ = _cli(["--root", str(FIXTURES / "r9_tick_purity"),
                  "--no-baseline", "--sarif", str(sarif_path)])
    check(rc == 1, "sarif: fixture should still exit 1")
    doc = json.loads(sarif_path.read_text(encoding="utf-8"))
    check(doc.get("version") == "2.1.0", "sarif: version must be 2.1.0")
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    check(driver["name"] == "dcl1lint", "sarif: driver name")
    rule_ids = {r["id"] for r in driver["rules"]}
    check(rule_ids == {f"R{i}" for i in range(13)},
          f"sarif: rule metadata incomplete: {sorted(rule_ids)}")
    results = run["results"]
    check(results, "sarif: fixture findings must appear as results")
    for r in results:
        check(r["ruleId"] in rule_ids, "sarif: result references rule")
        loc = r["locations"][0]["physicalLocation"]
        check(loc["artifactLocation"]["uri"].startswith("src/"),
              "sarif: result carries a repo-relative uri")
        check(loc["region"]["startLine"] >= 1, "sarif: line number")
        check(r["baselineState"] in ("new", "unchanged"),
              "sarif: baselineState present")
    print("  sarif export: OK")


def run_cli_edges(tmp):
    rc, _ = _cli(["--root", str(tmp / "definitely-missing")])
    check(rc == 2, "cli: missing root should exit 2")
    rc, out = _cli(["--list-rules"])
    check(rc == 0 and "R11" in out and "layering" in out,
          "cli: --list-rules should describe every rule")
    print("  cli edge cases: OK")


def main():
    fixtures = sorted(
        d for d in FIXTURES.iterdir() if d.is_dir())
    check(len(fixtures) >= 16,
          f"expected at least one fixture per rule, found "
          f"{len(fixtures)}")
    print(f"dcl1lint selftest: {len(fixtures)} fixtures")
    for fixture_root in fixtures:
        run_fixture(fixture_root)
    with tempfile.TemporaryDirectory(prefix="dcl1lint-selftest-") \
            as tmpdir:
        tmp = pathlib.Path(tmpdir)
        run_baseline_workflow(tmp)
        run_sarif_check(tmp)
        run_cli_edges(tmp)
    if _failures:
        print(f"dcl1lint selftest: {len(_failures)} failure(s)")
        return 1
    print("dcl1lint selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
