"""Optional libclang backend: exact function extents from the AST.

When the python `clang` binding and a libclang shared library are
present, function/method spans are taken from real AST cursors instead
of the tokenizer's brace heuristic; everything else (channels,
suppressions, rules) is shared. When anything is missing or a parse
fails, the caller silently keeps the tokenizer spans — the analyzer
must work on a bare toolchain (the CI fallback lane and the developer
image ship no libclang).
"""

import json

from textmodel import FuncSpan

_FUNC_KINDS = None
_index = None


def available():
    """True when clang.cindex imports and an index can be built."""
    global _index, _FUNC_KINDS
    if _index is not None:
        return True
    try:
        from clang import cindex
        _index = cindex.Index.create()
        K = cindex.CursorKind
        _FUNC_KINDS = {
            K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
            K.DESTRUCTOR, K.FUNCTION_TEMPLATE, K.CONVERSION_FUNCTION,
        }
        return True
    except Exception:
        _index = None
        return False


def load_compile_args(compile_commands_path):
    """Map absolute file path -> argument list, from a
    compile_commands.json; {} when unreadable."""
    args_by_file = {}
    try:
        data = json.loads(
            compile_commands_path.read_text(encoding="utf-8"))
        for entry in data:
            args = entry.get("arguments")
            if not args and "command" in entry:
                args = entry["command"].split()
            if not args:
                continue
            # Drop the compiler and the input/output operands; keep
            # the flags that shape parsing.
            kept, skip = [], False
            for a in args[1:]:
                if skip:
                    skip = False
                    continue
                if a in ("-o", "-c"):
                    skip = a == "-o"
                    continue
                if a.endswith((".cc", ".cpp", ".o")):
                    continue
                kept.append(a)
            args_by_file[entry["file"]] = kept
    except Exception:
        pass
    return args_by_file


def function_spans(root, path, compile_args):
    """Parse @p path; return a list of FuncSpan or None on failure."""
    if not available():
        return None
    args = compile_args.get(str(path))
    if args is None:
        args = [
            "-x", "c++", "-std=c++17",
            "-I", str(root / "src"), "-I", str(root),
        ]
    try:
        tu = _index.parse(str(path), args=args)
    except Exception:
        return None
    spans = []

    def walk(cursor):
        for child in cursor.get_children():
            try:
                in_main = (child.location.file
                           and child.location.file.name == str(path))
            except Exception:
                in_main = False
            if not in_main:
                continue
            if child.kind in _FUNC_KINDS and child.is_definition():
                ext = child.extent
                spans.append(FuncSpan(
                    name=child.spelling,
                    qualname=child.displayname or child.spelling,
                    sig_line=ext.start.line,
                    open_line=ext.start.line,
                    end_line=ext.end.line,
                ))
            walk(child)

    try:
        walk(tu.cursor)
    except Exception:
        return None
    return spans
