"""Command-line front end for dcl1lint.

Exit codes: 0 clean (warnings allowed), 1 new error findings,
2 analyzer misconfiguration.
"""

import argparse
import pathlib
import sys

import baseline as baseline_mod
import engine
import rules as rules_mod
import sarif as sarif_mod


def _default_root():
    return pathlib.Path(__file__).resolve().parent.parent.parent


def _list_rules():
    print("dcl1lint rules (suppress with `// lint: <token>` on the "
          "flagged line or the line above):\n")
    for rule in rules_mod.rule_metadata():
        token = f"lint: {rule.token}" if rule.token else "—"
        print(f"  {rule.id:<4} {rule.name:<18} {rule.severity:<8} "
              f"{token}")
        for chunk in _wrap(rule.description, 66):
            print(f"       {chunk}")
        print()


def _wrap(text, width):
    words = text.split()
    line = []
    for w in words:
        if line and len(" ".join(line + [w])) > width:
            yield " ".join(line)
            line = []
        line.append(w)
    if line:
        yield " ".join(line)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="dcl1lint",
        description="Simulator-aware static analysis for dcl1sim.")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src tools "
                         "bench tests)")
    ap.add_argument("--root", type=pathlib.Path,
                    default=_default_root(),
                    help="repository root (default: two levels above "
                         "this package)")
    ap.add_argument("--baseline", type=pathlib.Path, default=None,
                    help="baseline file (default: "
                         "tools/dcl1lint/baseline.json under --root)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline: every finding is new")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to accept the current "
                         "findings, then exit 0")
    ap.add_argument("--sarif", metavar="FILE",
                    help="write a SARIF 2.1.0 log to FILE ('-' for "
                         "stdout)")
    ap.add_argument("--backend",
                    choices=("auto", "tokenizer", "libclang"),
                    default="auto",
                    help="function-extent backend (auto: libclang "
                         "when importable, else tokenizer)")
    ap.add_argument("--compile-commands", type=pathlib.Path,
                    default=None,
                    help="compile_commands.json for the libclang "
                         "backend (default: build/ under --root)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule reference and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    root = args.root.resolve()
    baseline_path = (args.baseline if args.baseline is not None
                     else root / "tools" / "dcl1lint" / "baseline.json")

    try:
        findings, models, backend_used = engine.run(
            root, paths=args.paths, backend=args.backend,
            compile_commands=args.compile_commands)
    except engine.LintError as e:
        print(f"dcl1lint: {e}", file=sys.stderr)
        return 2

    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity == "warning"]

    if args.update_baseline:
        baseline_mod.write(baseline_path, errors)
        print(f"dcl1lint: baseline updated with {len(errors)} "
              f"finding(s) -> {baseline_path}")
        new_errors, stale_entries = [], []
    elif args.no_baseline:
        new_errors, stale_entries = errors, []
    else:
        try:
            entries = baseline_mod.load(baseline_path)
        except (ValueError, KeyError) as e:
            print(f"dcl1lint: bad baseline: {e}", file=sys.stderr)
            return 2
        new_errors, stale_entries = baseline_mod.apply(errors, entries)

    for f in new_errors:
        print(f"{f.path}:{f.line}: [{f.rule_id}/{f.rule_name}] "
              f"{f.message}")
    for f in warnings:
        print(f"{f.path}:{f.line}: warning: [{f.rule_id}/"
              f"{f.rule_name}] {f.message}")
    for rule, path, snippet, count in stale_entries:
        print(f"{path}: warning: [baseline] {count} stale {rule} "
              f"entr{'y' if count == 1 else 'ies'} no longer "
              f"match(es) `{snippet}` — run --update-baseline")

    if args.sarif:
        import rules
        text = sarif_mod.render(
            findings, rules.rule_metadata(),
            tool_version=_tool_version())
        if args.sarif == "-":
            sys.stdout.write(text)
        else:
            pathlib.Path(args.sarif).write_text(text, encoding="utf-8")

    if args.update_baseline:
        return 0
    if new_errors:
        print(f"dcl1lint: {len(new_errors)} violation(s)")
        return 1
    baselined = len(errors) - len(new_errors)
    extras = [f"backend={backend_used}"]
    if baselined:
        extras.insert(0, f"{baselined} baselined")
    if warnings:
        extras.insert(0, f"{len(warnings)} warning(s)")
    print(f"dcl1lint: OK ({len(models)} files, {', '.join(extras)})")
    return 0


def _tool_version():
    try:
        import __init__ as pkg
        return pkg.__version__
    except Exception:
        return "2.0"
