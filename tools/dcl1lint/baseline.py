"""Findings baseline: accepted debt that must not grow.

The baseline records findings the tree knowingly carries (for example
the DRAM in-service worklist allocations that the planned MemRequest
arena will eventually remove). A finding matches a baseline entry on
(rule, path, snippet) — not on line number, so unrelated edits that
shift code do not invalidate the baseline — and each entry carries a
count, so a *second* identical-looking violation in the same file is
still reported as new.

  dcl1lint                       # new findings fail, baselined pass
  dcl1lint --update-baseline     # rewrite the baseline to match HEAD

Entries no longer matched by any finding are reported as warnings so
paid-off debt gets deleted from the file.
"""

import json

FORMAT_VERSION = 1


def _key(rule_id, path, snippet):
    return (rule_id, path, " ".join(snippet.split()))


def load(path):
    """Load baseline entries as {key: count}. Missing file = empty."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version "
            f"{data.get('version')!r} (expected {FORMAT_VERSION})")
    entries = {}
    for e in data.get("findings", []):
        k = _key(e["rule"], e["path"], e.get("snippet", ""))
        entries[k] = entries.get(k, 0) + int(e.get("count", 1))
    return entries


def apply(findings, entries):
    """Partition error findings against the baseline.

    Marks matched findings baseline_state="unchanged" and returns
    (new_findings, stale_entries) where stale_entries is a list of
    (rule, path, snippet, unmatched_count).
    """
    budget = dict(entries)
    new = []
    for f in findings:
        k = _key(f.rule_id, f.path, f.snippet)
        if budget.get(k, 0) > 0:
            budget[k] -= 1
            f.baseline_state = "unchanged"
        else:
            new.append(f)
    stale = [(rule, path, snippet, count)
             for (rule, path, snippet), count in sorted(budget.items())
             if count > 0]
    return new, stale


def write(path, findings):
    """Serialize @p findings as the new baseline."""
    counts = {}
    lines = {}
    for f in findings:
        k = _key(f.rule_id, f.path, f.snippet)
        counts[k] = counts.get(k, 0) + 1
        lines.setdefault(k, f.line)
    entries = [
        {
            "rule": rule,
            "path": p,
            "snippet": snippet,
            "count": count,
            # Advisory only — matching ignores it, humans grep for it.
            "near_line": lines[(rule, p, snippet)],
        }
        for (rule, p, snippet), count in sorted(counts.items())
    ]
    payload = {"version": FORMAT_VERSION, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8")
