"""Rule registry for dcl1lint.

Each rule has a stable ID (R1..R12 — R0 is the analyzer's own
stale-suppression check), a short name, and a suppression token that is
honoured when written as a `// lint: <token>` line comment on the
flagged line or the line directly above it. R1–R8 keep the exact
semantics (scopes, patterns, messages) of the retired regex linter,
tools/lint_sim.py; R9–R12 are new and need the lexical model.

Per-file rules implement check(model, ctx); project rules implement
check_project(models, ctx) and see the whole include graph.
"""

import re
from dataclasses import dataclass, field


@dataclass
class Finding:
    rule_id: str
    rule_name: str
    path: str
    line: int
    message: str
    severity: str = "error"  # "error" | "warning"
    snippet: str = ""
    baseline_state: str = "new"  # "new" | "unchanged" (set by baseline)


class Context:
    """Shared engine state the rules may consult."""

    def __init__(self, root, models_by_rel):
        self.root = root
        self.models_by_rel = models_by_rel

    def paired_header_text(self, model):
        """Raw text of the .hh next to a .cc (decls live in headers,
        iteration happens in the implementation file)."""
        if not model.rel.endswith(".cc"):
            return ""
        header_rel = model.rel[:-3] + ".hh"
        header = self.models_by_rel.get(header_rel)
        if header:
            return "\n".join(header.code)
        path = self.root / header_rel
        if path.is_file():
            return path.read_text(encoding="utf-8", errors="replace")
        return ""


def _in_src(model):
    return model.parts[0] == "src"


def _snippet(model, line):
    if 1 <= line <= len(model.raw_lines):
        return model.raw_lines[line - 1].strip()
    return ""


def _finding(rule, model, line, message, severity="error"):
    return Finding(
        rule_id=rule.id,
        rule_name=rule.name,
        path=model.rel,
        line=line,
        message=message,
        severity=severity,
        snippet=_snippet(model, line),
    )


class LibcRandRule:
    """R1: seeded-Rng-only randomness."""

    id = "R1"
    name = "no-libc-rand"
    token = "libc-rand-ok"
    severity = "error"
    description = ("rand()/srand()/random() are banned: simulation "
                   "randomness must flow through the seeded Rng so "
                   "runs stay reproducible.")
    RE = re.compile(r"(?<![\w:.])(?:s?rand|random)\s*\(")

    def check(self, model, ctx):
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if self.RE.search(code) and not model.suppressed(
                    self.token, ln):
                yield _finding(self, model, ln,
                               "use the seeded Rng, not libc rand")


class UnorderedIterRule:
    """R2: no iteration over unordered containers in simulation code."""

    id = "R2"
    name = "no-unordered-iter"
    token = "unordered-iter-ok"
    severity = "error"
    description = ("range-for over an unordered container inside src/ "
                   "is banned unless annotated: iteration order is "
                   "unspecified and poisons same-seed determinism the "
                   "moment it feeds any simulated decision.")
    RE_DECL = re.compile(
        r"std::unordered_(?:map|set)\s*<[^;{]*>\s*(\w+)\s*[;{=]")

    def check(self, model, ctx):
        if not _in_src(model):
            return
        names = set(self.RE_DECL.findall("\n".join(model.code)))
        names |= set(
            self.RE_DECL.findall(ctx.paired_header_text(model)))
        if not names:
            return
        re_iter = re.compile(
            r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))?("
            + "|".join(re.escape(n) for n in sorted(names))
            + r")\s*\)")
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if re_iter.search(code) and not model.suppressed(
                    self.token, ln):
                yield _finding(
                    self, model, ln,
                    "iterating an unordered container; order is "
                    "unspecified — annotate audit-only loops with "
                    f"`lint: {self.token}`")


class NakedNewRule:
    """R3: ownership must be expressed with smart pointers."""

    id = "R3"
    name = "no-naked-new"
    token = "naked-new-ok"
    severity = "error"
    description = ("`new X` outside make_unique/make_shared is banned "
                   "in src/; ownership must be expressed with smart "
                   "pointers.")
    RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_][\w:<>, ]*[({]")

    def check(self, model, ctx):
        if not _in_src(model):
            return
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if (self.RE.search(code)
                    and "make_unique" not in code
                    and "make_shared" not in code
                    and not model.suppressed(self.token, ln)):
                yield _finding(self, model, ln, "use std::make_unique")


class StatsOnceRule:
    """R4: one StatGroup must not register a stat name twice.

    The regex linter intended this rule but matched against lines whose
    string literals had already been blanked, so it could never fire;
    this implementation reads the names from the string channel.
    """

    id = "R4"
    name = "stats-once"
    token = "stats-once-ok"
    severity = "error"
    description = ("one registration scope (function) must not "
                   "register the same stat name twice in "
                   "addScalar/addDistribution (copy-paste duplicate "
                   "guard); separate functions build separate "
                   "StatGroups and may reuse names.")
    RE_CALL = re.compile(r"add(?:Scalar|Distribution)\s*\(\s*(\"\")?")

    def check(self, model, ctx):
        seen = {}
        for idx, code in enumerate(model.code):
            ln = idx + 1
            m = self.RE_CALL.search(code)
            if not m:
                continue
            spans = model.enclosing_functions(ln)
            scope = id(spans[-1]) if spans else None
            # The name is the first literal on this line when the call
            # and its first argument share a line, else the first
            # literal on the next line (wrapped call).
            if m.group(1) and model.strings[idx]:
                name = model.strings[idx][0]
            elif (not m.group(1) and idx + 1 < len(model.strings)
                    and model.strings[idx + 1]):
                name = model.strings[idx + 1][0]
            else:
                continue
            key = (scope, name)
            if key in seen:
                if not model.suppressed(self.token, ln):
                    yield _finding(
                        self, model, ln,
                        f'stat "{name}" already registered at line '
                        f"{seen[key]}")
            else:
                seen[key] = ln


class PanicVsFatalRule:
    """R5: internal-state corruption must panic(), not fatal()."""

    id = "R5"
    name = "panic-vs-fatal"
    token = "fatal-ok"
    severity = "error"
    description = ("fatal() is for configuration/user errors; a "
                   "message reporting internal state corruption "
                   "(underflow, leak, double, corrupt, invariant) "
                   "marks a simulator bug and must use panic().")
    RE_FATAL = re.compile(r"(?<![\w.])fatal\s*\(")
    RE_BUG_WORDS = re.compile(
        r"underflow|overflow(?!ed queue)|leak|double|corrupt|invariant",
        re.IGNORECASE)

    def check(self, model, ctx):
        if not _in_src(model):
            return
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if (self.RE_FATAL.search(code)
                    and self.RE_BUG_WORDS.search(model.raw_lines[idx])
                    and not model.suppressed(self.token, ln)):
                yield _finding(
                    self, model, ln,
                    "internal-state corruption is a simulator bug: "
                    "use panic(), reserve fatal() for config errors")


class WallclockRule:
    """R6: no host time in simulation code."""

    id = "R6"
    name = "no-wallclock"
    token = "wallclock-ok"
    severity = "error"
    description = ("wall-clock reads inside src/ break determinism. "
                   "The execution engine (src/exec/) and the host "
                   "phase profiler (src/prof/) time the *host* by "
                   "design; their audited sites carry "
                   "`lint: wallclock-ok`, honoured there and nowhere "
                   "else.")
    RE = re.compile(
        r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
        r"|std::chrono::(?:system|steady|high_resolution)_clock"
        r"|(?<![\w:.])clock\s*\(\s*\)")

    def check(self, model, ctx):
        if not _in_src(model):
            return
        in_host_band = model.parts[:2] in (("src", "exec"),
                                           ("src", "prof"))
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if not self.RE.search(code):
                continue
            annotated = model.suppressed(self.token, ln)
            if annotated and in_host_band:
                continue
            yield _finding(
                self, model, ln,
                "wall-clock time in simulation code breaks "
                f"determinism (`lint: {self.token}` is honoured only "
                "under src/exec/ and src/prof/)" if annotated else
                "wall-clock time in simulation code breaks "
                "determinism")


class RawWriteRule:
    """R7: result files must go through the crash-safe writers."""

    id = "R7"
    name = "no-rawwrite"
    token = "rawwrite-ok"
    severity = "error"
    description = ("raw output-file writes (std::ofstream, fopen) in "
                   "tools/, bench/ and src/exec/ are banned: a run "
                   "killed mid-write leaves a torn result file. Use "
                   "exec::AtomicFileWriter or exec::AppendLog.")
    # The retired regex linter's lookbehind rejected the "::" in
    # std::fopen, so the qualified spelling slipped through; match
    # both.
    RE = re.compile(
        r"std::ofstream|(?<![\w.])(?:std::|::)?fopen\s*\(")

    def check(self, model, ctx):
        if not (model.parts[0] in ("tools", "bench")
                or model.parts[:2] == ("src", "exec")):
            return
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if self.RE.search(code) and not model.suppressed(
                    self.token, ln):
                yield _finding(
                    self, model, ln,
                    "raw result-file write can be torn/truncated by a "
                    "kill; use exec::AtomicFileWriter or "
                    f"exec::AppendLog (`lint: {self.token}` for "
                    "audited exceptions)")


class TraceGatedRule:
    """R8: trace events must flow through sampled emission paths."""

    id = "R8"
    name = "trace-gated"
    token = "trace-ok"
    severity = "error"
    description = ("direct trace-event emission (reqSlice / "
                   "counterEvent) outside src/stats/ bypasses 1-in-N "
                   "sampling and the event cap; go through the "
                   "attribution slow path or the timeline hook.")
    RE = re.compile(
        r"(?<![\w.])(?:\w+(?:\.|->))?(?:reqSlice|counterEvent)\s*\(")

    def check(self, model, ctx):
        if model.parts[:2] == ("src", "stats"):
            return
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if self.RE.search(code) and not model.suppressed(
                    self.token, ln):
                yield _finding(
                    self, model, ln,
                    "direct trace emission bypasses sampling and the "
                    "event cap; go through the attribution slow path "
                    f"or the timeline hook (`lint: {self.token}` for "
                    "audited sites)")


class TickPurityRule:
    """R9: no heap growth inside per-cycle hot paths.

    tick()/access()/fill() run once per simulated cycle or request;
    allocation there is both a perf hazard and, for node-based
    containers, an address-layout source that can leak into iteration
    order. BoundedQueue::push/tryPush are exempt: they model a hardware
    enqueue into a capacity-checked structure whose memory is bounded
    by construction.
    """

    id = "R9"
    name = "tick-purity"
    token = "alloc-ok"
    severity = "error"
    description = ("heap allocation inside tick()/access()/fill() hot "
                   "paths is banned: hoist into the constructor, use a "
                   "preallocated structure, or annotate the audited "
                   "bounded case with `lint: alloc-ok`.")
    HOT_NAMES = {"tick", "access", "fill"}
    RE_ALLOC = re.compile(
        r"(?<![\w.])new\s+[A-Za-z_]"
        r"|\bmake_(?:unique|shared)\s*<"
        r"|(?:\.|->)(?:push_back|emplace_back|push_front|"
        r"emplace_front|emplace|insert|resize|reserve)\s*\("
        r"|(?<![\w.])csprintf\s*\(")

    def check(self, model, ctx):
        if not _in_src(model):
            return
        hot = [f for f in model.functions if f.name in self.HOT_NAMES]
        if not hot:
            return
        flagged = set()
        for span in hot:
            for ln in range(span.open_line, span.end_line + 1):
                if ln in flagged:
                    continue
                code = model.code[ln - 1]
                if not self.RE_ALLOC.search(code):
                    continue
                if model.suppressed(self.token, ln):
                    flagged.add(ln)
                    continue
                flagged.add(ln)
                yield _finding(
                    self, model, ln,
                    f"heap allocation inside hot path "
                    f"{span.qualname}(): hoist it out of the per-"
                    f"cycle loop or annotate the audited bounded "
                    f"case with `lint: {self.token}`")


class PointerOrderRule:
    """R10: no ordered containers keyed on pointer values."""

    id = "R10"
    name = "ptr-order"
    token = "ptr-order-ok"
    severity = "error"
    description = ("std::map/std::set keyed on a pointer orders "
                   "elements by allocator-dependent addresses, which "
                   "vary run to run; key on a stable ID instead.")
    RE = re.compile(
        r"std::(?:multi)?(?:map|set)\s*<\s*[^,<>;]*\*"
        r"|std::less\s*<\s*[^<>;]*\*")

    def check(self, model, ctx):
        if not _in_src(model):
            return
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if self.RE.search(code) and not model.suppressed(
                    self.token, ln):
                yield _finding(
                    self, model, ln,
                    "ordered container keyed on a pointer: iteration "
                    "order follows the allocator, not the simulation "
                    "— key on a stable ID (request id, set index)")


class EnvAccessRule:
    """R12: all environment reads go through common/env.hh."""

    id = "R12"
    name = "unchecked-env"
    token = "env-ok"
    severity = "error"
    description = ("direct getenv() bypasses the strict parse/fail "
                   "behavior of common/env.hh (envIntOr/envStrOr); a "
                   "silently misparsed knob produces plausible wrong "
                   "results.")
    RE = re.compile(r"\bgetenv\s*\(")
    EXEMPT = {"src/common/env.cc", "src/common/env.hh"}

    def check(self, model, ctx):
        if model.rel in self.EXEMPT:
            return
        for idx, code in enumerate(model.code):
            ln = idx + 1
            if self.RE.search(code) and not model.suppressed(
                    self.token, ln):
                yield _finding(
                    self, model, ln,
                    "direct getenv() skips strict parsing; use "
                    "envIntOr/envStrOr/envIsSet from common/env.hh")


class LayeringRule:
    """R11: the include graph must respect the architecture bands.

    A file may include headers from its own band or any band below it.
    The bands mirror the real architecture: common, the host phase
    profiler (prof — every tick path hooks into it, so it must sit
    below them all) and stats are substrate everything instruments
    through; the models (mem, noc, workload) and the check
    instrumentation they call into form one band (check speaks
    mem::MemRequest, mem instruments through the request ledger —
    that mutual coupling is why they share a band);
    gpucore composes mem+noc, core assembles systems, power models on
    top of core runs, exec drives whole systems, serve orchestrates
    multi-job traffic over exec-driven systems, and the entry points
    sit above everything. tests/ are exempt. The rule also rejects any
    file-level include cycle outright.
    """

    id = "R11"
    name = "layering"
    token = "layering-ok"
    severity = "error"
    description = ("an #include may only reach into the same or a "
                   "lower architecture band (common → prof → stats → "
                   "{mem, noc, workload, check} → gpucore → core → "
                   "power → exec → serve → {tools, bench}); "
                   "file-level include cycles are always errors.")
    BANDS = [
        ("common",),
        ("prof",),
        ("stats",),
        ("mem", "noc", "workload", "check"),
        ("gpucore",),
        ("core",),
        ("power",),
        ("exec",),
        ("serve",),
        ("tools", "bench", "examples"),
    ]

    def __init__(self):
        self.band_of = {}
        for rank, members in enumerate(self.BANDS):
            for m in members:
                self.band_of[m] = rank

    def _component(self, parts):
        if parts[0] == "src" and len(parts) > 1:
            return parts[1]
        return parts[0]

    def check_project(self, models, ctx):
        scanned = {m.rel: m for m in models}
        findings = []
        edges = {}
        for model in models:
            if model.parts[0] == "tests":
                continue
            comp = self._component(model.parts)
            rank = self.band_of.get(comp)
            if rank is None:
                continue
            for ln, inc in model.includes:
                inc_comp = inc.split("/")[0]
                inc_rank = self.band_of.get(inc_comp)
                # Resolve to a scanned file for cycle detection.
                for cand in ("src/" + inc, inc):
                    if cand in scanned:
                        edges.setdefault(model.rel, []).append(
                            (ln, cand))
                        break
                if inc_rank is None or inc_rank <= rank:
                    continue
                if model.suppressed(self.token, ln):
                    continue
                findings.append(_finding(
                    self, model, ln,
                    f"{comp} (band {rank}) must not include "
                    f"{inc_comp} (band {inc_rank}): an #include may "
                    "only reach the same or a lower architecture "
                    "band"))
        findings.extend(self._cycles(scanned, edges))
        return findings

    def _cycles(self, scanned, edges):
        # Iterative DFS cycle detection over the resolved file graph.
        WHITE, GREY, BLACK = 0, 1, 2
        color = {rel: 0 for rel in scanned}
        findings = []
        reported = set()
        for start in sorted(scanned):
            if color[start] != WHITE:
                continue
            stack = [(start, iter(edges.get(start, [])))]
            color[start] = GREY
            path = [start]
            while stack:
                rel, it = stack[-1]
                advanced = False
                for ln, dst in it:
                    if color.get(dst, BLACK) == GREY:
                        cycle = path[path.index(dst):] + [dst]
                        key = frozenset(cycle)
                        if key not in reported:
                            reported.add(key)
                            findings.append(_finding(
                                self, scanned[rel], ln,
                                "include cycle: "
                                + " -> ".join(cycle)))
                        continue
                    if color.get(dst, BLACK) == WHITE:
                        color[dst] = GREY
                        path.append(dst)
                        stack.append((dst, iter(edges.get(dst, []))))
                        advanced = True
                        break
                if not advanced:
                    color[rel] = BLACK
                    path.pop()
                    stack.pop()
        return findings


FILE_RULES = [
    LibcRandRule(), UnorderedIterRule(), NakedNewRule(),
    StatsOnceRule(), PanicVsFatalRule(), WallclockRule(),
    RawWriteRule(), TraceGatedRule(), TickPurityRule(),
    PointerOrderRule(), EnvAccessRule(),
]
PROJECT_RULES = [LayeringRule()]
ALL_RULES = FILE_RULES + PROJECT_RULES

# R0 is implemented by the engine (it needs the post-run suppression
# usage state) but registered here so --list-rules and SARIF metadata
# stay complete.
STALE_SUPPRESSION = type("StaleSuppression", (), {
    "id": "R0",
    "name": "stale-suppression",
    "token": None,
    "severity": "warning",
    "description": ("a `lint: <token>` annotation that no longer "
                    "suppresses anything (or names an unknown token) "
                    "is dead weight that misleads the next reader; "
                    "delete it."),
})()

KNOWN_TOKENS = {r.token for r in ALL_RULES if r.token}


def rule_metadata():
    """Stable-ordered rule list for --list-rules and SARIF."""
    return [STALE_SUPPRESSION] + sorted(
        ALL_RULES, key=lambda r: int(r.id[1:]))
