#!/usr/bin/env python3
"""Validate dcl1sim telemetry artifacts.

Checks the three telemetry outputs for structural sanity so CI can
catch a malformed emitter before a human tries to plot the data:

  timeline JSONL (--timeline FILE ...):
    - every line parses as one JSON object
    - required fields: cycle (int), dt (int >= 1), phase
      ("warmup"|"measure")
    - cycles strictly increase line to line; dt never exceeds the
      cycle gap
    - phase never flips back from "measure" to "warmup"
    - every row carries the same metric keys (one schema per file)

  Chrome trace JSON (--trace FILE ...):
    - parses; top-level "traceEvents" list
    - every event has ph in {"X", "C"}, integer ts >= 0
    - "X" events carry a name and an integer dur >= 0
    - "C" events carry args.value

  stats JSON (--stats FILE ...):
    - parses as one object with a "name" field; every "dists" entry
      carries count/sum/p50/p95/p99 and a buckets list

Exits non-zero on the first structural problem, printing file:line
context. Empty timelines (zero rows) fail: an enabled timeline that
emitted nothing is a wiring bug, not a quiet success.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_telemetry: {msg}", file=sys.stderr)
    sys.exit(1)


def check_timeline(path):
    keys = None
    last_cycle = None
    seen_measure = False
    rows = 0
    with open(path, encoding="utf-8") as f:
        for ln, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{ln}: bad JSON: {e}")
            if not isinstance(row, dict):
                fail(f"{path}:{ln}: row is not an object")
            for field, typ in (("cycle", int), ("dt", int)):
                if not isinstance(row.get(field), typ):
                    fail(f"{path}:{ln}: missing/invalid '{field}'")
            if row["dt"] < 1:
                fail(f"{path}:{ln}: dt {row['dt']} < 1")
            phase = row.get("phase")
            if phase not in ("warmup", "measure"):
                fail(f"{path}:{ln}: bad phase {phase!r}")
            if phase == "measure":
                seen_measure = True
            elif seen_measure:
                fail(f"{path}:{ln}: phase went back to warmup")
            if last_cycle is not None:
                if row["cycle"] <= last_cycle:
                    fail(
                        f"{path}:{ln}: cycle {row['cycle']} not after "
                        f"{last_cycle}"
                    )
                if row["dt"] > row["cycle"] - last_cycle:
                    fail(
                        f"{path}:{ln}: dt {row['dt']} exceeds the "
                        f"cycle gap"
                    )
            last_cycle = row["cycle"]
            row_keys = frozenset(row) - {"cycle", "dt", "phase"}
            if keys is None:
                keys = row_keys
            elif row_keys != keys:
                fail(f"{path}:{ln}: metric keys differ from first row")
            rows += 1
    if rows == 0:
        fail(f"{path}: timeline has no rows")
    print(f"check_telemetry: {path}: {rows} row(s), "
          f"{len(keys)} metric(s) OK")


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: bad JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents list")
    slices = counters = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("X", "C"):
            fail(f"{path}: event {i}: bad ph {ph!r}")
        ts = e.get("ts")
        if not isinstance(ts, int) or ts < 0:
            fail(f"{path}: event {i}: bad ts {ts!r}")
        if ph == "X":
            if not e.get("name"):
                fail(f"{path}: event {i}: slice without a name")
            dur = e.get("dur")
            if not isinstance(dur, int) or dur < 0:
                fail(f"{path}: event {i}: bad dur {dur!r}")
            slices += 1
        else:
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"{path}: event {i}: counter without args.value")
            counters += 1
    print(f"check_telemetry: {path}: {slices} slice(s), "
          f"{counters} counter sample(s) OK")


def check_dists(path, node, prefix=""):
    for name, d in node.get("dists", {}).items():
        where = f"{path}: dist {prefix}{name}"
        for field in ("count", "sum", "p50", "p95", "p99"):
            if not isinstance(d.get(field), (int, float)):
                fail(f"{where}: missing/invalid '{field}'")
        if not isinstance(d.get("buckets"), list):
            fail(f"{where}: missing buckets list")
    for child in node.get("children", []):
        check_dists(path, child, f"{prefix}{child.get('name', '?')}.")


def check_stats(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: bad JSON: {e}")
    if not isinstance(doc, dict) or "name" not in doc:
        fail(f"{path}: not a stats tree (no name)")
    check_dists(path, doc)
    print(f"check_telemetry: {path}: stats tree OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--timeline", action="append", default=[],
                    metavar="FILE", help="timeline JSONL to validate")
    ap.add_argument("--trace", action="append", default=[],
                    metavar="FILE", help="Chrome trace JSON to validate")
    ap.add_argument("--stats", action="append", default=[],
                    metavar="FILE", help="stats JSON dump to validate")
    args = ap.parse_args()
    if not (args.timeline or args.trace or args.stats):
        ap.error("nothing to check (pass --timeline/--trace/--stats)")
    for path in args.timeline:
        check_timeline(path)
    for path in args.trace:
        check_trace(path)
    for path in args.stats:
        check_stats(path)
    print("check_telemetry: all OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
