#!/usr/bin/env python3
"""Simulator-specific lint for dcl1sim.

Enforces rules a generic linter cannot know about:

  R1  no-libc-rand       rand()/srand()/random() are banned everywhere:
                         simulation randomness must flow through the
                         seeded Rng so runs stay reproducible.
  R2  no-unordered-iter  range-for over an unordered container inside
                         src/ is banned unless the line (or the line
                         above) carries `lint: unordered-iter-ok`.
                         Iteration order is unspecified and poisons
                         same-seed determinism the moment it feeds any
                         simulated decision.
  R3  no-naked-new       `new X` outside make_unique/make_shared is
                         banned in src/; ownership must be expressed
                         with smart pointers.
  R4  stats-once         a StatGroup must not register the same stat
                         name twice in one addScalar/addDistribution
                         call site file (copy-paste duplicate guard).
  R5  panic-vs-fatal     fatal() is for configuration/user errors and
                         belongs in constructors, factories and option
                         parsing; inside tick()/access()/fill()-style
                         hot paths an impossible condition is a
                         simulator bug and must use panic(). We flag
                         fatal() calls whose message clearly reports
                         internal state corruption ("underflow",
                         "leak", "double", "corrupt", "invariant").
  R6  no-wallclock       time(NULL)/clock()/chrono::{system,steady,
                         high_resolution}_clock inside src/ (outside
                         tools/bench) breaks determinism. The execution
                         engine (src/exec/ only) measures *host* wall
                         time by design; its audited call sites carry
                         `lint: wallclock-ok`, which is honoured there
                         and nowhere else.
  R7  no-rawwrite        raw output-file writes (std::ofstream, fopen)
                         in tools/, bench/ and src/exec/ are banned: a
                         run killed mid-write leaves a truncated or
                         torn result file that *looks* complete. Result
                         files must go through exec::AtomicFileWriter
                         (whole-file tmp+rename publish) or
                         exec::AppendLog (line-atomic WAL append); the
                         audited implementations of those helpers carry
                         `lint: rawwrite-ok`. Reads (std::ifstream) are
                         unaffected.
  R8  trace-gated        direct trace-event emission (reqSlice /
                         counterEvent) outside src/stats/ is banned
                         unless annotated `lint: trace-ok`. Trace
                         events must flow through the attribution slow
                         path or the timeline sample hook, which apply
                         the 1-in-N sampling and the event cap; an
                         unsampled call site can emit per-request or
                         per-cycle and silently blow the trace buffer.

Usage: tools/lint_sim.py [--root DIR]
Exits non-zero if any violation is found.
"""

import argparse
import pathlib
import re
import sys

SRC_EXTS = {".cc", ".hh"}

RE_LIBC_RAND = re.compile(r"(?<![\w:.])(?:s?rand|random)\s*\(")
RE_UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{]*>\s*(\w+)\s*[;{=]"
)
RE_NAKED_NEW = re.compile(r"(?<![\w.])new\s+[A-Za-z_][\w:<>, ]*[({]")
RE_STAT_REG = re.compile(
    r"add(?:Scalar|Distribution)\s*\(\s*\"([^\"]+)\""
)
RE_FATAL = re.compile(r"(?<![\w.])fatal\s*\(")
RE_BUG_WORDS = re.compile(
    r"underflow|overflow(?!ed queue)|leak|double|corrupt|invariant",
    re.IGNORECASE,
)
RE_WALLCLOCK = re.compile(
    r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    r"|std::chrono::(?:system|steady|high_resolution)_clock"
    r"|(?<![\w:.])clock\s*\(\s*\)"
)
RE_RAWWRITE = re.compile(r"std::ofstream|(?<![\w:.])fopen\s*\(")
ALLOW_COMMENT = "lint: unordered-iter-ok"
# Host-time measurement is legitimate only in the execution engine,
# which times jobs/batches of the *host*, never the simulated machine.
WALLCLOCK_ALLOW = "lint: wallclock-ok"
WALLCLOCK_ALLOWED_DIRS = {("src", "exec")}
# Result files must be written through the crash-safe helpers; only
# their own implementation may touch the filesystem directly.
RAWWRITE_ALLOW = "lint: rawwrite-ok"
# Trace events outside src/stats/ must come from audited, sampled call
# sites (the attribution slow path applies 1-in-N sampling; the
# timeline hook fires once per interval).
RE_TRACE_EMIT = re.compile(
    r"(?<![\w.])(?:\w+(?:\.|->))?(?:reqSlice|counterEvent)\s*\("
)
TRACE_ALLOW = "lint: trace-ok"


def rawwrite_scope(rel):
    """R7 applies where result files are produced: the tools, the
    benches, and the execution engine itself."""
    return rel.parts[0] in ("tools", "bench") or rel.parts[:2] == (
        "src",
        "exec",
    )


def strip_comments_and_strings(line):
    """Remove string literals and // comments (keeps lint pragmas out)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//")[0]


def lint_file(path, root):
    rel = path.relative_to(root)
    violations = []
    in_src = rel.parts[0] == "src"
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()

    # Names declared as unordered containers in this file or in the
    # paired header (members are declared in .hh, iterated in .cc).
    unordered_names = set(RE_UNORDERED_DECL.findall(text))
    if path.suffix == ".cc":
        header = path.with_suffix(".hh")
        if header.is_file():
            unordered_names |= set(
                RE_UNORDERED_DECL.findall(
                    header.read_text(encoding="utf-8", errors="replace")
                )
            )
    re_unordered_iter = (
        re.compile(
            r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))?("
            + "|".join(re.escape(n) for n in sorted(unordered_names))
            + r")\s*\)"
        )
        if unordered_names
        else None
    )

    stat_names = {}
    in_block_comment = False
    for ln, raw in enumerate(lines, start=1):
        allowed = ALLOW_COMMENT in raw or (
            ln >= 2 and ALLOW_COMMENT in lines[ln - 2]
        )
        wallclock_annotated = WALLCLOCK_ALLOW in raw or (
            ln >= 2 and WALLCLOCK_ALLOW in lines[ln - 2]
        )
        wallclock_allowed = (
            wallclock_annotated
            and rel.parts[:2] in WALLCLOCK_ALLOWED_DIRS
        )
        if in_block_comment:
            if "*/" in raw:
                in_block_comment = False
            continue
        line = strip_comments_and_strings(raw)
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*")[0]

        if RE_LIBC_RAND.search(line):
            violations.append(
                (ln, "no-libc-rand", "use the seeded Rng, not libc rand")
            )
        if in_src and re_unordered_iter and not allowed:
            if re_unordered_iter.search(line):
                violations.append(
                    (
                        ln,
                        "no-unordered-iter",
                        "iterating an unordered container; order is "
                        "unspecified — annotate audit-only loops with "
                        f"`{ALLOW_COMMENT}`",
                    )
                )
        if in_src and RE_NAKED_NEW.search(line):
            if "make_unique" not in line and "make_shared" not in line:
                violations.append(
                    (ln, "no-naked-new", "use std::make_unique")
                )
        rawwrite_allowed = RAWWRITE_ALLOW in raw or (
            ln >= 2 and RAWWRITE_ALLOW in lines[ln - 2]
        )
        if (
            rawwrite_scope(rel)
            and not rawwrite_allowed
            and RE_RAWWRITE.search(line)
        ):
            violations.append(
                (
                    ln,
                    "no-rawwrite",
                    "raw result-file write can be torn/truncated by a "
                    "kill; use exec::AtomicFileWriter or "
                    f"exec::AppendLog (`{RAWWRITE_ALLOW}` for audited "
                    "exceptions)",
                )
            )
        trace_allowed = TRACE_ALLOW in raw or (
            ln >= 2 and TRACE_ALLOW in lines[ln - 2]
        )
        if (
            rel.parts[:2] != ("src", "stats")
            and not trace_allowed
            and RE_TRACE_EMIT.search(line)
        ):
            violations.append(
                (
                    ln,
                    "trace-gated",
                    "direct trace emission bypasses sampling and the "
                    "event cap; go through the attribution slow path "
                    f"or the timeline hook (`{TRACE_ALLOW}` for "
                    "audited sites)",
                )
            )
        if in_src and not wallclock_allowed and RE_WALLCLOCK.search(line):
            violations.append(
                (
                    ln,
                    "no-wallclock",
                    "wall-clock time in simulation code breaks "
                    f"determinism (`{WALLCLOCK_ALLOW}` is honoured "
                    "only under src/exec/)"
                    if wallclock_annotated
                    else "wall-clock time in simulation code breaks "
                    "determinism",
                )
            )
        m = RE_FATAL.search(line)
        if in_src and m and RE_BUG_WORDS.search(raw):
            violations.append(
                (
                    ln,
                    "panic-vs-fatal",
                    "internal-state corruption is a simulator bug: "
                    "use panic(), reserve fatal() for config errors",
                )
            )
        for m in RE_STAT_REG.finditer(line):
            name = m.group(1)
            if name in stat_names:
                violations.append(
                    (
                        ln,
                        "stats-once",
                        f'stat "{name}" already registered at line '
                        f"{stat_names[name]}",
                    )
                )
            else:
                stat_names[name] = ln
    return [(rel, ln, rule, msg) for ln, rule, msg in violations]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
    )
    args = ap.parse_args()
    root = args.root.resolve()

    files = []
    for sub in ("src", "tools", "bench"):
        base = root / sub
        if base.is_dir():
            files += [
                p
                for p in sorted(base.rglob("*"))
                if p.suffix in SRC_EXTS
            ]

    if not files:
        print(f"lint_sim: no source files under {root} — bad --root?")
        return 2

    all_violations = []
    for path in files:
        all_violations += lint_file(path, root)

    for rel, ln, rule, msg in all_violations:
        print(f"{rel}:{ln}: [{rule}] {msg}")
    if all_violations:
        print(f"lint_sim: {len(all_violations)} violation(s)")
        return 1
    print(f"lint_sim: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
