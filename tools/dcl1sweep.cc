/**
 * @file
 * dcl1sweep — grid runner emitting CSV for external analysis/plotting.
 *
 *   dcl1sweep --designs=Baseline,Pr40,Sh40+C10+Boost \
 *             --apps=T-AlexNet,C-BFS --out=results.csv
 *
 * Omitting --apps sweeps the whole 28-app catalog; omitting --designs
 * sweeps the paper's main five. Columns: design, app, ipc, speedup,
 * l1_missrate, repl_ratio, avg_replicas, read_rtt, noc1_flits,
 * noc2_flits, dram_reads.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "core/experiment.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> design_names = {
        "Baseline", "Pr40", "Sh40", "Sh40+C10", "Sh40+C10+Boost"};
    std::vector<std::string> app_names;
    std::string out_path = "-";

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--designs=", 0) == 0)
            design_names = splitCsv(a.substr(10));
        else if (a.rfind("--apps=", 0) == 0)
            app_names = splitCsv(a.substr(7));
        else if (a.rfind("--out=", 0) == 0)
            out_path = a.substr(6);
        else
            fatal("unknown option '%s'", a.c_str());
    }
    if (app_names.empty())
        for (const auto &app : workload::appCatalog())
            app_names.push_back(app.params.name);

    std::ofstream file;
    std::ostream *os;
    if (out_path == "-") {
        os = &std::cout;
    } else {
        file.open(out_path);
        if (!file)
            fatal("cannot open '%s'", out_path.c_str());
        os = &file;
    }

    core::SystemConfig sys;
    const auto opts = core::ExperimentOptions::fromEnv();

    *os << "design,app,ipc,speedup,l1_missrate,repl_ratio,avg_replicas,"
           "read_rtt,noc1_flits,noc2_flits,dram_reads\n";
    for (const auto &app_name : app_names) {
        const auto &app = workload::appByName(app_name);
        const double base_ipc =
            core::runOnce(sys, core::baselineDesign(), app.params, opts)
                .ipc;
        for (const auto &dn : design_names) {
            const auto design = core::designByName(dn);
            std::fprintf(stderr, "[sweep] %-18s %s\n", dn.c_str(),
                         app_name.c_str());
            const auto rm =
                core::runOnce(sys, design, app.params, opts);
            *os << dn << ',' << app_name << ',' << rm.ipc << ','
                << (base_ipc > 0 ? rm.ipc / base_ipc : 0.0) << ','
                << rm.l1MissRate << ',' << rm.replicationRatio << ','
                << rm.avgReplicas << ',' << rm.avgReadLatency << ','
                << rm.noc1Flits << ',' << rm.noc2Flits << ','
                << rm.dramReads << '\n';
        }
    }
    return 0;
}
