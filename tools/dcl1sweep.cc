/**
 * @file
 * dcl1sweep — parallel grid runner emitting CSV for external
 * analysis/plotting.
 *
 *   dcl1sweep --designs=Baseline,Pr40,Sh40+C10+Boost \
 *             --apps=T-AlexNet,C-BFS --out=results.csv --jobs=8
 *
 * Omitting --apps sweeps the whole 28-app catalog; omitting --designs
 * sweeps the paper's main five. Columns: design, app, ipc, speedup,
 * l1_missrate, repl_ratio, avg_replicas, read_rtt, noc1_flits,
 * noc2_flits, dram_reads.
 *
 * The grid runs on the src/exec engine: independent cells execute
 * concurrently (--jobs=N or DCL1_JOBS; default one worker per
 * hardware thread), each app's Baseline run is simulated once and
 * reused as the speedup denominator (and as the Baseline row when
 * Baseline is listed in --designs), and rows are written in grid
 * order after the batch — CSV output is byte-identical for any
 * --jobs value. A job that panics or exceeds --budget becomes a
 * failed-job record (its row is skipped, the exit status is 3) while
 * the rest of the sweep completes. --jsonl=FILE (or DCL1_JOBS_LOG)
 * records per-job wall time and outcome.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "common/env.hh"
#include "common/log.hh"
#include "core/experiment.hh"
#include "exec/job_runner.hh"
#include "exec/job_set.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> design_names = {
        "Baseline", "Pr40", "Sh40", "Sh40+C10", "Sh40+C10+Boost"};
    std::vector<std::string> app_names;
    std::string out_path = "-";
    exec::ExecOptions eopts = exec::ExecOptions::fromEnv();

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--designs=", 0) == 0)
            design_names = splitCsv(a.substr(10));
        else if (a.rfind("--apps=", 0) == 0)
            app_names = splitCsv(a.substr(7));
        else if (a.rfind("--out=", 0) == 0)
            out_path = a.substr(6);
        else if (a.rfind("--jobs=", 0) == 0)
            eopts.jobs = static_cast<unsigned>(parseEnvInt(
                "--jobs", a.substr(7).c_str(), 1, 4096));
        else if (a.rfind("--budget=", 0) == 0)
            eopts.cycleBudget = static_cast<Cycle>(parseEnvInt(
                "--budget", a.substr(9).c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (a.rfind("--jsonl=", 0) == 0)
            eopts.jsonlPath = a.substr(8);
        else
            fatal("unknown option '%s'", a.c_str());
    }
    if (app_names.empty())
        for (const auto &app : workload::appCatalog())
            app_names.push_back(app.params.name);

    std::ofstream file;
    std::ostream *os;
    if (out_path == "-") {
        os = &std::cout;
    } else {
        file.open(out_path);
        if (!file)
            fatal("cannot open '%s'", out_path.c_str());
        os = &file;
    }

    core::SystemConfig sys;
    const auto opts = core::ExperimentOptions::fromEnv();

    // Declare the grid. Memoization makes the per-app Baseline run and
    // a "Baseline" entry in --designs the same job.
    exec::JobSet set;
    struct Row
    {
        std::size_t jobIndex;
        std::size_t baseIndex;
        std::string design;
        std::string app;
    };
    std::vector<Row> rows;
    for (const auto &app_name : app_names) {
        const auto &app = workload::appByName(app_name);
        const std::size_t base_index = set.addCell(
            sys, core::baselineDesign(), app.params, opts);
        for (const auto &dn : design_names) {
            const auto design = core::designByName(dn);
            const std::size_t index =
                set.addCell(sys, design, app.params, opts);
            rows.push_back({index, base_index, dn, app_name});
        }
    }

    exec::JobRunner runner(eopts);
    exec::ProgressSink progress;
    if (eopts.progress)
        runner.addSink(&progress);
    std::unique_ptr<exec::JsonlSink> jsonl;
    if (!eopts.jsonlPath.empty()) {
        jsonl = std::make_unique<exec::JsonlSink>(eopts.jsonlPath);
        runner.addSink(jsonl.get());
    }
    const std::vector<exec::JobResult> results = runner.run(set.specs());

    // Emit rows in grid order: output is independent of completion
    // order and therefore of --jobs.
    std::size_t failed = 0;
    *os << "design,app,ipc,speedup,l1_missrate,repl_ratio,avg_replicas,"
           "read_rtt,noc1_flits,noc2_flits,dram_reads\n";
    for (const Row &row : rows) {
        const exec::JobResult &r = results[row.jobIndex];
        const exec::JobResult &base = results[row.baseIndex];
        if (!r.ok || !base.ok) {
            ++failed;
            std::fprintf(stderr, "[sweep] dropping row %s,%s: %s\n",
                         row.design.c_str(), row.app.c_str(),
                         (!r.ok ? r.error : base.error).c_str());
            continue;
        }
        const core::RunMetrics &rm = r.metrics;
        const double base_ipc = base.metrics.ipc;
        *os << row.design << ',' << row.app << ',' << rm.ipc << ','
            << (base_ipc > 0 ? rm.ipc / base_ipc : 0.0) << ','
            << rm.l1MissRate << ',' << rm.replicationRatio << ','
            << rm.avgReplicas << ',' << rm.avgReadLatency << ','
            << rm.noc1Flits << ',' << rm.noc2Flits << ','
            << rm.dramReads << '\n';
    }
    if (failed) {
        std::fprintf(stderr, "[sweep] %zu row(s) dropped\n", failed);
        return 3;
    }
    return 0;
}
