/**
 * @file
 * dcl1sweep — parallel grid runner emitting CSV for external
 * analysis/plotting.
 *
 *   dcl1sweep --designs=Baseline,Pr40,Sh40+C10+Boost \
 *             --apps=T-AlexNet,C-BFS --out=results.csv --jobs=8
 *   dcl1sweep --run-dir=runs/main --out=results.csv   # durable
 *   dcl1sweep --resume=runs/main  --out=results.csv   # continue it
 *
 * Omitting --apps sweeps the whole 28-app catalog; omitting --designs
 * sweeps the paper's main five. Columns: design, app, ipc, speedup,
 * l1_missrate, repl_ratio, avg_replicas, read_rtt, noc1_flits,
 * noc2_flits, dram_reads.
 *
 * The grid runs on the src/exec engine: independent cells execute
 * concurrently (--jobs=N or DCL1_JOBS; default one worker per
 * hardware thread), each app's Baseline run is simulated once and
 * reused as the speedup denominator (and as the Baseline row when
 * Baseline is listed in --designs), and rows are written in grid
 * order after the batch — CSV output is byte-identical for any
 * --jobs value, and (via the run manifest's "%.17g" metric
 * round-trip) for any interrupt/resume split of the batch.
 *
 * Failures follow the retry-with-quarantine policy: a cell that
 * exceeds --budget retries up to --retries times with a doubling
 * budget; a panic/fatal inside the model is deterministic and is
 * quarantined immediately with a structured crash record under
 * <run-dir>/crash/ (or --crash-dir). The sweep always completes with
 * partial results; see --help for the exit-code contract. SIGINT
 * drains in-flight cells, finalizes the manifest, and exits
 * resumable. --jsonl=FILE (or DCL1_JOBS_LOG) appends per-job wall
 * time and outcome records.
 *
 * --timeline-dir[=DIR] writes one cycle-interval timeline JSONL per
 * cell (default DIR: <run-dir>/timeline, or ./timeline without a run
 * directory); --timeline-interval=N sets the row cadence. Each job's
 * timeline path is surfaced in the end-of-run report and recorded in
 * jobs.jsonl, so a resumed run can find the partial timelines of
 * cells it skips.
 *
 * --worker turns the process into a *fleet worker*: any number of
 * workers (local or remote, sharing the directory over a common
 * filesystem) cooperate on one run directory via per-cell lease files
 * (exec/lease.hh). A worker claims cells nobody else holds, renews
 * its claims from a heartbeat thread, reclaims leases of crashed
 * workers after --lease-ttl-ms, and loops until every cell has a
 * record. Workers write no CSV — run a final non-worker
 * `--resume=DIR --out=FILE` (or use tools/dcl1fleet) to merge. The
 * --chaos-* flags (or DCL1_CHAOS) arm deterministic fault injection
 * for testing the recovery path.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/env.hh"
#include "common/log.hh"
#include "core/experiment.hh"
#include "exec/chaos.hh"
#include "exec/exit_codes.hh"
#include "exec/heartbeat.hh"
#include "exec/interrupt.hh"
#include "exec/job_runner.hh"
#include "exec/job_set.hh"
#include "exec/lease.hh"
#include "exec/run_manifest.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
joinCsv(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ',';
        out += n;
    }
    return out;
}

/**
 * Deterministic interrupt injection for the kill-and-resume tests and
 * the CI smoke job: raises the same flag a real SIGINT would, after N
 * freshly simulated jobs have completed.
 */
class InterruptAfterSink : public exec::ResultSink
{
  public:
    explicit InterruptAfterSink(std::size_t after) : after_(after) {}

    void
    onJobDone(const exec::JobResult &result) override
    {
        if (result.resumed || result.skipped || result.deferred)
            return;
        if (++done_ >= after_)
            exec::requestInterrupt();
    }

  private:
    std::size_t after_;
    std::size_t done_ = 0;
};

void
printHelp()
{
    std::printf(
        "dcl1sweep — parallel (design, app) grid runner -> CSV\n"
        "\n"
        "  --designs=A,B,..   designs (default: the paper's main 5)\n"
        "  --apps=A,B,..      catalog apps (default: all 28)\n"
        "  --out=FILE         CSV output ('-' = stdout; files are\n"
        "                     published atomically via tmp+rename)\n"
        "  --jobs=N           worker threads (DCL1_JOBS; 0 = #cores)\n"
        "  --profile          host phase profiling (DCL1_PROF): "
        "per-cell\n"
        "                     trees in --jsonl records, aggregate "
        "phase\n"
        "                     shares on stderr; CSV is unchanged\n"
        "  --budget=N         per-cell simulated-cycle watchdog\n"
        "                     (DCL1_JOB_BUDGET)\n"
        "  --retries=N        retries for retryable failures, with a\n"
        "                     doubling budget on timeouts (DCL1_RETRIES;"
        "\n"
        "                     default 2)\n"
        "  --run-dir=DIR      durable run directory (DCL1_RUN_DIR):\n"
        "                     manifest + per-cell write-ahead log +\n"
        "                     crash records; safe to re-run/resume\n"
        "  --resume=DIR       like --run-dir, but requires DIR to hold\n"
        "                     an existing manifest; completed cells are\n"
        "                     skipped and the CSV comes out identical\n"
        "                     to an uninterrupted run\n"
        "  --crash-dir=DIR    crash records for failed cells\n"
        "                     (DCL1_CRASH_DIR; default <run-dir>/crash)\n"
        "  --jsonl=FILE       append per-job JSON records "
        "(DCL1_JOBS_LOG)\n"
        "  --timeline-dir[=DIR]  one timeline JSONL per cell (default\n"
        "                     <run-dir>/timeline or ./timeline)\n"
        "  --timeline-interval=N  cycles per timeline row\n"
        "                     (DCL1_TIMELINE_INTERVAL)\n"
        "  --interrupt-after=N  testing: inject SIGINT after N cells\n"
        "\n"
        "fleet mode (multi-process; see tools/dcl1fleet):\n"
        "  --worker           cooperate on --run-dir with other worker\n"
        "                     processes via per-cell lease files; write\n"
        "                     no CSV (merge with a final --resume run)\n"
        "  --worker-id=ID     stable worker name (default w<pid>)\n"
        "  --lease-ttl-ms=N   reclaim leases not renewed for N ms\n"
        "                     (DCL1_LEASE_TTL_MS; default 30000)\n"
        "  --heartbeat-ms=N   lease renewal interval (DCL1_HEARTBEAT_MS;"
        "\n"
        "                     default TTL/10)\n"
        "  --worker-idle-ms=N poll interval while other workers hold\n"
        "                     the remaining cells (DCL1_WORKER_IDLE_MS;\n"
        "                     default 200)\n"
        "\n"
        "fault injection (testing; also DCL1_CHAOS=kill-after=N,...):\n"
        "  --chaos-kill-after=N     _Exit(137) mid-simulation of the\n"
        "                           N-th freshly executed cell\n"
        "  --chaos-kill-at-cycle=N  simulated cycle of the kill\n"
        "                           (default 2048)\n"
        "  --chaos-drop-heartbeat   stop renewing leases but keep\n"
        "                           running (zombie worker)\n"
        "\n"
        "%s\n",
        exec::kExitCodeContract);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> design_names = {
        "Baseline", "Pr40", "Sh40", "Sh40+C10", "Sh40+C10+Boost"};
    std::vector<std::string> app_names;
    std::string out_path = "-";
    std::string run_dir;
    bool resume_only = false;
    std::size_t interrupt_after = 0;
    bool timeline_requested = false;
    std::string timeline_dir;
    Cycle timeline_interval = 0;
    bool worker_mode = false;
    std::string worker_id;
    std::int64_t lease_ttl_ms = envIntOr(
        "DCL1_LEASE_TTL_MS", 30000, 1,
        std::numeric_limits<std::int64_t>::max() / 2);
    std::int64_t heartbeat_ms =
        envIntOr("DCL1_HEARTBEAT_MS", 0, 0, 86400000);
    std::int64_t idle_ms =
        envIntOr("DCL1_WORKER_IDLE_MS", 200, 1, 86400000);
    exec::ChaosConfig chaos = exec::ChaosConfig::fromEnv();
    exec::ExecOptions eopts = exec::ExecOptions::fromEnv();
    run_dir = envStrOr("DCL1_RUN_DIR", run_dir);

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--designs=", 0) == 0)
            design_names = splitCsv(a.substr(10));
        else if (a.rfind("--apps=", 0) == 0)
            app_names = splitCsv(a.substr(7));
        else if (a.rfind("--out=", 0) == 0)
            out_path = a.substr(6);
        else if (a.rfind("--jobs=", 0) == 0)
            eopts.jobs = static_cast<unsigned>(parseEnvInt(
                "--jobs", a.substr(7).c_str(), 1, 4096));
        else if (a.rfind("--budget=", 0) == 0)
            eopts.cycleBudget = static_cast<Cycle>(parseEnvInt(
                "--budget", a.substr(9).c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (a.rfind("--retries=", 0) == 0)
            eopts.maxRetries = static_cast<unsigned>(parseEnvInt(
                "--retries", a.substr(10).c_str(), 0, 100));
        else if (a.rfind("--run-dir=", 0) == 0)
            run_dir = a.substr(10);
        else if (a.rfind("--resume=", 0) == 0) {
            run_dir = a.substr(9);
            resume_only = true;
        } else if (a.rfind("--crash-dir=", 0) == 0)
            eopts.crashDir = a.substr(12);
        else if (a.rfind("--jsonl=", 0) == 0)
            eopts.jsonlPath = a.substr(8);
        else if (a == "--timeline-dir")
            timeline_requested = true;
        else if (a.rfind("--timeline-dir=", 0) == 0) {
            timeline_dir = a.substr(15);
            timeline_requested = true;
        } else if (a.rfind("--timeline-interval=", 0) == 0)
            timeline_interval = static_cast<Cycle>(parseEnvInt(
                "--timeline-interval", a.substr(20).c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (a.rfind("--interrupt-after=", 0) == 0)
            interrupt_after = static_cast<std::size_t>(parseEnvInt(
                "--interrupt-after", a.substr(18).c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (a == "--profile")
            eopts.profile = true;
        else if (a == "--worker")
            worker_mode = true;
        else if (a.rfind("--worker-id=", 0) == 0)
            worker_id = a.substr(12);
        else if (a.rfind("--lease-ttl-ms=", 0) == 0)
            lease_ttl_ms = parseEnvInt(
                "--lease-ttl-ms", a.substr(15).c_str(), 1,
                std::numeric_limits<std::int64_t>::max() / 2);
        else if (a.rfind("--heartbeat-ms=", 0) == 0)
            heartbeat_ms = parseEnvInt(
                "--heartbeat-ms", a.substr(15).c_str(), 1, 86400000);
        else if (a.rfind("--worker-idle-ms=", 0) == 0)
            idle_ms = parseEnvInt(
                "--worker-idle-ms", a.substr(17).c_str(), 1, 86400000);
        else if (a.rfind("--chaos-kill-after=", 0) == 0)
            chaos.killAfterCells = static_cast<std::size_t>(parseEnvInt(
                "--chaos-kill-after", a.substr(19).c_str(), 1,
                std::int64_t(1) << 40));
        else if (a.rfind("--chaos-kill-at-cycle=", 0) == 0)
            chaos.killAtCycle = static_cast<Cycle>(parseEnvInt(
                "--chaos-kill-at-cycle", a.substr(22).c_str(), 0,
                std::int64_t(1) << 60));
        else if (a == "--chaos-drop-heartbeat")
            chaos.dropHeartbeat = true;
        else if (a == "--help" || a == "-h") {
            printHelp();
            return exec::kExitOk;
        } else
            fatal("unknown option '%s' (--help lists them)", a.c_str());
    }
    if (app_names.empty())
        for (const auto &app : workload::appCatalog())
            app_names.push_back(app.params.name);

    core::SystemConfig sys;
    const auto opts = core::ExperimentOptions::fromEnv();

    // Declare the grid. Memoization makes the per-app Baseline run and
    // a "Baseline" entry in --designs the same job.
    exec::JobSet set;
    if (timeline_requested) {
        if (timeline_dir.empty())
            timeline_dir =
                run_dir.empty() ? "timeline" : run_dir + "/timeline";
        set.setTimelineDir(timeline_dir, timeline_interval);
    }
    struct Row
    {
        std::size_t jobIndex;
        std::size_t baseIndex;
        std::string design;
        std::string app;
    };
    std::vector<Row> rows;
    for (const auto &app_name : app_names) {
        const auto &app = workload::appByName(app_name);
        const std::size_t base_index = set.addCell(
            sys, core::baselineDesign(), app.params, opts);
        for (const auto &dn : design_names) {
            const auto design = core::designByName(dn);
            const std::size_t index =
                set.addCell(sys, design, app.params, opts);
            rows.push_back({index, base_index, dn, app_name});
        }
    }

    // Durable-run identity: everything that determines the grid and
    // its results. Runtime knobs (--jobs, --budget, --retries) are
    // deliberately absent — resuming with a larger budget to recover
    // timed-out cells is the point of the retry policy.
    std::unique_ptr<exec::RunManifest> manifest;
    if (!run_dir.empty()) {
        const std::string config = csprintf(
            "dcl1sweep designs=%s apps=%s cycles=%llu/%llu "
            "platform=[%s] seed=%llu",
            joinCsv(design_names).c_str(), joinCsv(app_names).c_str(),
            static_cast<unsigned long long>(opts.measureCycles),
            static_cast<unsigned long long>(opts.warmupCycles),
            sys.summary().c_str(),
            static_cast<unsigned long long>(sys.seed));
        if (resume_only && !std::ifstream(run_dir + "/manifest.json"))
            fatal("--resume=%s: no manifest.json there — start the "
                  "batch with --run-dir=%s first",
                  run_dir.c_str(), run_dir.c_str());
        manifest = exec::RunManifest::openOrCreate(run_dir, config);
        if (manifest->completedCount() > 0)
            std::fprintf(stderr,
                         "[sweep] resuming '%s': %zu completed "
                         "record(s) on file\n",
                         run_dir.c_str(), manifest->completedCount());
    }

    exec::installSignalHandlers();
    exec::setChaosConfig(chaos);

    exec::JobRunner runner(eopts);
    if (manifest)
        runner.attachManifest(manifest.get());
    exec::ProgressSink progress;
    if (eopts.progress)
        runner.addSink(&progress);
    std::unique_ptr<exec::JsonlSink> jsonl;
    if (!eopts.jsonlPath.empty()) {
        jsonl = std::make_unique<exec::JsonlSink>(eopts.jsonlPath);
        runner.addSink(jsonl.get());
    }
    std::unique_ptr<InterruptAfterSink> injector;
    if (interrupt_after > 0) {
        injector = std::make_unique<InterruptAfterSink>(interrupt_after);
        runner.addSink(injector.get());
    }

    if (worker_mode) {
        if (!manifest)
            fatal("--worker requires --run-dir=DIR (or --resume=DIR): "
                  "fleet workers coordinate through a shared durable "
                  "run directory");
        if (worker_id.empty())
            worker_id = csprintf("w%ld", static_cast<long>(::getpid()));
        const std::int64_t hb_ms =
            heartbeat_ms > 0
                ? heartbeat_ms
                : std::max<std::int64_t>(1, lease_ttl_ms / 10);
        exec::LeaseDir leases(
            run_dir, exec::WorkerIdentity::local(worker_id),
            lease_ttl_ms);
        exec::HeartbeatThread heartbeat(leases, hb_ms);
        heartbeat.start();
        exec::LeaseCoordinator coordinator(leases, &heartbeat);
        runner.attachCoordinator(&coordinator);

        // Round loop: claim + run whatever is free, absorb records
        // other workers published, reclaim leases of dead workers,
        // and go idle while the remaining cells are owned elsewhere.
        std::set<std::string> failed_keys; // retries exhausted here
        std::size_t rounds = 0;
        bool interrupted = false;
        for (;;) {
            ++rounds;
            const std::vector<exec::JobResult> results =
                runner.run(set.specs());
            std::size_t fresh = 0;
            for (const exec::JobResult &r : results) {
                if (r.skipped || r.deferred || r.resumed ||
                    r.attempts == 0)
                    continue;
                ++fresh;
                if (!r.ok && !r.lost && !r.quarantined)
                    failed_keys.insert(r.key);
            }
            if (exec::interruptRequested()) {
                interrupted = true;
                break;
            }
            const std::size_t absorbed = manifest->refresh();
            std::size_t reclaimed = 0;
            for (const exec::LeaseInfo &info : leases.scan())
                if (leases.stale(info) && leases.reclaim(info))
                    ++reclaimed;
            if (reclaimed > 0)
                std::fprintf(stderr,
                             "[sweep] worker %s: reclaimed %zu stale "
                             "lease(s) (worker died or stalled past "
                             "%lld ms)\n",
                             worker_id.c_str(), reclaimed,
                             static_cast<long long>(lease_ttl_ms));
            // Cells still without a terminal record, less the ones
            // that exhausted their retries in this very process —
            // another worker may still pick those up, but we will not
            // spin on them alone.
            std::size_t remaining = 0;
            for (const exec::JobSpec &spec : set.specs()) {
                if (spec.key.empty())
                    continue;
                const exec::JobRecord *rec = manifest->find(spec.key);
                if (rec && (rec->ok || rec->quarantined))
                    continue;
                if (failed_keys.count(spec.key))
                    continue;
                ++remaining;
            }
            if (remaining == 0)
                break;
            if (fresh == 0 && absorbed == 0 && reclaimed == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(idle_ms));
        }
        heartbeat.stop();

        // Fleet-cumulative coordinator summary: merge this worker's
        // counters into the latest summary on disk (re-read here —
        // the copy loaded at open predates sibling workers' finalizes).
        // claims/renewals/released/lost/rounds stay approximate when
        // two workers finalize in the same instant (last writer wins);
        // reclamations (tombstone files), orphans and torn are
        // re-scanned from disk artifacts and exact however the fleet
        // died — a chaos-killed reclaimer's work is still counted.
        const exec::LeaseCounters c = leases.counters();
        std::string prior;
        {
            std::ifstream in(run_dir + "/manifest.json");
            std::string text((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
            prior = exec::jsonFieldRaw(text, "coordinator");
        }
        auto prev = [&prior](const char *field) -> unsigned long long {
            const std::string raw = exec::jsonFieldRaw(prior, field);
            return raw.empty()
                       ? 0
                       : std::strtoull(raw.c_str(), nullptr, 10);
        };
        std::size_t torn = 0;
        leases.scan(&torn);
        manifest->setCoordinatorSummary(csprintf(
            "{\"workers\":%llu,\"claims\":%llu,\"renewals\":%llu,"
            "\"released\":%llu,\"reclamations\":%zu,\"lost\":%llu,"
            "\"orphans\":%zu,\"torn\":%zu,\"rounds\":%llu}",
            prev("workers") + 1,
            prev("claims") + static_cast<unsigned long long>(c.claims),
            prev("renewals") +
                static_cast<unsigned long long>(c.renewals),
            prev("released") +
                static_cast<unsigned long long>(c.released),
            leases.tombstoneCount(),
            prev("lost") + static_cast<unsigned long long>(c.lost),
            leases.orphanCount(), torn,
            prev("rounds") + static_cast<unsigned long long>(rounds)));
        manifest->finalize(interrupted ? "interrupted" : "complete");

        if (interrupted) {
            std::fprintf(stderr,
                         "[sweep] worker %s interrupted; resume with "
                         "--resume=%s\n",
                         worker_id.c_str(), run_dir.c_str());
            return exec::kExitResumable;
        }
        // Workers publish to the WAL only; the CSV comes from a final
        // non-worker --resume run (or dcl1fleet's merge step).
        std::size_t quarantined_cells = 0;
        for (const exec::JobSpec &spec : set.specs()) {
            const exec::JobRecord *rec =
                spec.key.empty() ? nullptr : manifest->find(spec.key);
            if (rec && rec->quarantined)
                ++quarantined_cells;
        }
        std::fprintf(stderr,
                     "[sweep] worker %s done after %zu round(s): %zu "
                     "record(s) on file, %zu failed here, %zu "
                     "quarantined\n",
                     worker_id.c_str(), rounds,
                     manifest->completedCount(), failed_keys.size(),
                     quarantined_cells);
        if (!failed_keys.empty())
            return exec::kExitFailedCells;
        return quarantined_cells > 0 ? exec::kExitQuarantined
                                     : exec::kExitOk;
    }

    const std::vector<exec::JobResult> results = runner.run(set.specs());

    // Interrupted: no CSV — a partial file that looks complete is the
    // exact failure mode the durable layer exists to prevent.
    bool interrupted = false;
    for (const exec::JobResult &r : results)
        interrupted = interrupted || r.skipped;
    if (exec::interruptRequested())
        interrupted = true;
    if (interrupted) {
        std::fprintf(stderr,
                     "[sweep] interrupted; %s\n",
                     run_dir.empty()
                         ? "no run directory, progress was not saved "
                           "(use --run-dir=DIR)"
                         : csprintf("resume with --resume=%s",
                                    run_dir.c_str())
                               .c_str());
        return exec::kExitResumable;
    }

    // Emit rows in grid order: output is independent of completion
    // order and therefore of --jobs and of any interrupt/resume split.
    std::ostringstream csv;
    std::size_t failed_rows = 0;
    csv << "design,app,ipc,speedup,l1_missrate,repl_ratio,avg_replicas,"
           "read_rtt,noc1_flits,noc2_flits,dram_reads\n";
    for (const Row &row : rows) {
        const exec::JobResult &r = results[row.jobIndex];
        const exec::JobResult &base = results[row.baseIndex];
        if (!r.ok || !base.ok) {
            ++failed_rows;
            std::fprintf(stderr, "[sweep] dropping row %s,%s: %s\n",
                         row.design.c_str(), row.app.c_str(),
                         (!r.ok ? r.error : base.error).c_str());
            continue;
        }
        const core::RunMetrics &rm = r.metrics;
        const double base_ipc = base.metrics.ipc;
        csv << row.design << ',' << row.app << ',' << rm.ipc << ','
            << (base_ipc > 0 ? rm.ipc / base_ipc : 0.0) << ','
            << rm.l1MissRate << ',' << rm.replicationRatio << ','
            << rm.avgReplicas << ',' << rm.avgReadLatency << ','
            << rm.noc1Flits << ',' << rm.noc2Flits << ','
            << rm.dramReads << '\n';
    }

    if (out_path == "-") {
        std::cout << csv.str();
    } else {
        // Atomic publish: the CSV either keeps its previous content or
        // gains the complete new one; a kill mid-write cannot leave a
        // plausible-looking truncated file.
        exec::AtomicFileWriter out(out_path);
        out.stream() << csv.str();
        out.commit();
    }

    // Quarantine report + exit-code contract (see exec/exit_codes.hh).
    std::size_t failed_cells = 0, quarantined_cells = 0;
    for (const exec::JobResult &r : results) {
        if (r.ok)
            continue;
        ++failed_cells;
        if (r.quarantined)
            ++quarantined_cells;
    }
    if (quarantined_cells > 0) {
        std::fprintf(stderr,
                     "[sweep] quarantined (deterministic failures; "
                     "retry/resume cannot recover them):\n");
        for (const exec::JobResult &r : results)
            if (r.quarantined)
                std::fprintf(stderr, "[sweep]   %-28s %s: %s\n",
                             r.label.c_str(),
                             exec::failureKindName(r.kind),
                             r.error.c_str());
    }
    if (failed_rows > 0)
        std::fprintf(stderr, "[sweep] %zu row(s) dropped\n",
                     failed_rows);
    if (failed_cells == 0)
        return exec::kExitOk;
    return failed_cells == quarantined_cells ? exec::kExitQuarantined
                                             : exec::kExitFailedCells;
}
