#!/usr/bin/env python3
"""Compare two BENCH_perf.json host-performance artifacts.

Usage:
    perfdiff.py BASELINE.json CURRENT.json [options]
    perfdiff.py --selftest

Options:
    --tolerance=F   relative slowdown allowed before a design counts
                    as a regression (default 0.15; an injected 20 %
                    slowdown must always trip the default gate)
    --warn-only     report regressions but exit 0 (CI trend lane on
                    shared runners, where absolute rates are noisy)
    --selftest      run the built-in checks (no files needed)

Exit codes:
    0  no regression (or --warn-only)
    1  at least one design regressed beyond tolerance
    2  usage / file / schema error

Comparison model: designs are matched by name on sim_cycles_per_sec
(the run-loop rate, build excluded). A design present on only one
side is reported but never fails the gate — the pinned set may grow.
A fingerprint mismatch (different CPU, core count, compiler, or
DCL1_CHECK flavor) downgrades every regression to a warning, because
cross-machine rates do not obey any tolerance band worth enforcing;
the variance policy lives in examples/perf/README.md.
"""

import json
import sys


def die(msg):
    print(msg, file=sys.stderr)
    sys.exit(2)

SCHEMA = "dcl1-perf-v1"
DEFAULT_TOLERANCE = 0.15


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        die(f"perfdiff: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        die(f"perfdiff: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    return doc


def by_design(doc):
    return {d["design"]: d for d in doc.get("designs", [])}


def fingerprints_match(a, b):
    fa, fb = a.get("fingerprint", {}), b.get("fingerprint", {})
    return all(fa.get(k) == fb.get(k)
               for k in ("cpu", "cores", "compiler", "checks"))


def compare(base, cur, tolerance):
    """Return (lines, regressions) comparing cur against base."""
    lines, regressions = [], []
    bd, cd = by_design(base), by_design(cur)
    for name in sorted(set(bd) | set(cd)):
        if name not in bd:
            lines.append(f"  {name:<18} NEW (no baseline)")
            continue
        if name not in cd:
            lines.append(f"  {name:<18} MISSING from current run")
            continue
        old = bd[name]["sim_cycles_per_sec"]
        new = cd[name]["sim_cycles_per_sec"]
        if old <= 0:
            lines.append(f"  {name:<18} baseline rate <= 0, skipped")
            continue
        rel = (new - old) / old
        tag = "ok"
        if rel < -tolerance:
            tag = "REGRESSION"
            regressions.append((name, rel))
        elif rel > tolerance:
            tag = "improved"
        lines.append(
            f"  {name:<18} {old:14.0f} -> {new:14.0f} cyc/s "
            f"({rel:+7.1%})  {tag}")
    return lines, regressions


def selftest():
    def doc(rates):
        return {
            "schema": SCHEMA,
            "fingerprint": {"cpu": "x", "cores": 8,
                            "compiler": "g", "checks": False},
            "designs": [
                {"design": n, "sim_cycles_per_sec": r}
                for n, r in rates.items()
            ],
        }

    base = doc({"Baseline": 1e6, "Sh40": 2e6})
    # 20 % slowdown on one design must trip the default gate.
    slow = doc({"Baseline": 0.8e6, "Sh40": 2e6})
    _, regs = compare(base, slow, DEFAULT_TOLERANCE)
    assert [r[0] for r in regs] == ["Baseline"], regs
    # Inside the band: no regression.
    ok = doc({"Baseline": 0.9e6, "Sh40": 2.1e6})
    _, regs = compare(base, ok, DEFAULT_TOLERANCE)
    assert regs == [], regs
    # Speedups never fail.
    fast = doc({"Baseline": 2e6, "Sh40": 4e6})
    _, regs = compare(base, fast, DEFAULT_TOLERANCE)
    assert regs == [], regs
    # New/missing designs never fail.
    grown = doc({"Baseline": 1e6, "Sh40": 2e6, "CDXBar": 1e6})
    _, regs = compare(base, grown, DEFAULT_TOLERANCE)
    assert regs == [], regs
    _, regs = compare(grown, base, DEFAULT_TOLERANCE)
    assert regs == [], regs
    # Fingerprint comparison.
    other = doc({"Baseline": 1e6})
    other["fingerprint"]["cpu"] = "y"
    assert fingerprints_match(base, base)
    assert not fingerprints_match(base, other)
    print("perfdiff selftest: all checks passed")
    return 0


def main(argv):
    tolerance = DEFAULT_TOLERANCE
    warn_only = False
    paths = []
    for a in argv[1:]:
        if a == "--selftest":
            return selftest()
        if a == "--warn-only":
            warn_only = True
        elif a.startswith("--tolerance="):
            try:
                tolerance = float(a.split("=", 1)[1])
            except ValueError:
                die(f"perfdiff: bad tolerance in {a!r}")
            if not 0 < tolerance < 1:
                die("perfdiff: tolerance must be in (0,1)")
        elif a.startswith("-"):
            die(f"perfdiff: unknown option {a!r}")
        else:
            paths.append(a)
    if len(paths) != 2:
        die(__doc__.strip())

    base, cur = load(paths[0]), load(paths[1])
    same_machine = fingerprints_match(base, cur)
    lines, regressions = compare(base, cur, tolerance)

    print(f"perfdiff: {paths[0]} -> {paths[1]} "
          f"(tolerance {tolerance:.0%})")
    for line in lines:
        print(line)
    if not same_machine:
        print("perfdiff: WARNING: fingerprints differ "
              f"({base.get('fingerprint')} vs {cur.get('fingerprint')}); "
              "rates are not comparable, regressions downgraded to "
              "warnings")
    if regressions:
        worst = min(regressions, key=lambda r: r[1])
        print(f"perfdiff: {len(regressions)} design(s) regressed "
              f"(worst: {worst[0]} {worst[1]:+.1%})")
        if warn_only or not same_machine:
            print("perfdiff: warn-only: not failing the gate")
            return 0
        return 1
    print("perfdiff: no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
