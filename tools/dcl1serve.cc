/**
 * @file
 * dcl1serve — multi-tenant serving driver: open-loop kernel-job
 * traffic over one shared GPU, tail-latency and fairness metrics.
 *
 *   dcl1serve --apps=mix.json --lambda=0.5 --policy=fcfs --seed=7
 *   dcl1serve --apps=T-AlexNet,C-BFS --lambda=0.2,0.5,1.0,2.0 \
 *             --policy=fcfs,sjf,rr --design=Baseline,Sh40+C10+Boost \
 *             --csv=sweep.csv
 *   dcl1serve --equivalence-check --app=T-AlexNet --design=Baseline
 *
 * Options:
 *   --apps=X          job mix: a .json mix file (array of
 *                     {"app","weight","cores","budget"} objects) or a
 *                     comma list of catalog apps (equal weights)
 *   --arrivals=FILE   trace-driven arrivals (JSONL of {"cycle","app"
 *                     [,"cores","budget"]}); disables --lambda
 *   --lambda=R[,R..]  offered load sweep, jobs per 1000 cycles
 *   --policy=P[,P..]  fcfs | sjf | rr
 *   --design=D[,D..]  design presets (see dcl1run --list-designs)
 *   --num-jobs=N      offered jobs per cell        (default 100)
 *   --horizon=N       hard cycle cap               (default 1000000)
 *   --seed=N          arrival/mix/job-stream seed  (default 1)
 *   --cores=N --slices=N --channels=N              platform scaling
 *   --default-cores=N cores per job when the mix doesn't say
 *                     (default: footprint-class sizing)
 *   --budget-scale=X  scale every job's instruction budget
 *   --job-log=FILE    per-job JSONL (single cell only)
 *   --job-log-dir=DIR per-job JSONL per cell, <design>_<policy>_<L>.jsonl
 *   --csv=FILE        summary CSV, one row per cell (atomic)
 *   --jobs=N          worker threads (default: hardware)
 *   --budget=N        per-cell simulated-cycle watchdog
 *   --equivalence-check  verify one serve job granted every core
 *                     reproduces the classic path (--app, --design,
 *                     --cycles, --seed); exit 2 on digest mismatch
 *   --help            usage + the exit-code contract
 *
 * Determinism: the same flags and seed give byte-identical stdout,
 * CSV, and job logs for any --jobs value — job-log lines are emitted
 * at simulated completion cycles, summary rows in cell order after
 * the batch. Host wall time goes to stderr only.
 */

#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/env.hh"
#include "common/log.hh"
#include "core/experiment.hh"
#include "core/gpu_system.hh"
#include "exec/atomic_file.hh"
#include "exec/exit_codes.hh"
#include "exec/job_runner.hh"
#include "exec/result_sink.hh"
#include "serve/serve_sim.hh"
#include "stats/stats.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

namespace
{

struct Options
{
    std::string apps = "T-AlexNet";
    std::string arrivalsFile;
    std::string lambdas = "0.5";
    std::string policies = "fcfs";
    std::string designs = "Baseline";
    std::size_t numJobs = 100;
    Cycle horizon = 1'000'000;
    std::uint64_t seed = 1;
    std::uint32_t cores = 80;
    std::uint32_t slices = 32;
    std::uint32_t channels = 16;
    std::uint32_t defaultCores = 0;
    double budgetScale = 1.0;
    std::string jobLogFile;
    std::string jobLogDir;
    std::string csvFile;
    std::size_t workers = 0;
    Cycle budget = 0;
    bool equivalenceCheck = false;
    std::string eqApp = "T-AlexNet";
    Cycle eqCycles = 20000;
    bool help = false;
};

std::optional<std::string>
valueOf(const char *arg, const char *key)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=')
        return std::string(arg + n + 1);
    return std::nullopt;
}

double
parseDouble(const char *flag, const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("%s: '%s' is not a number", flag, text.c_str());
    return v;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (auto v = valueOf(a, "--apps"))
            o.apps = *v;
        else if (auto v = valueOf(a, "--arrivals"))
            o.arrivalsFile = *v;
        else if (auto v = valueOf(a, "--lambda"))
            o.lambdas = *v;
        else if (auto v = valueOf(a, "--policy"))
            o.policies = *v;
        else if (auto v = valueOf(a, "--design"))
            o.designs = *v;
        else if (auto v = valueOf(a, "--num-jobs"))
            o.numJobs = static_cast<std::size_t>(parseEnvInt(
                "--num-jobs", v->c_str(), 1, 1'000'000'000));
        else if (auto v = valueOf(a, "--horizon"))
            o.horizon = static_cast<Cycle>(parseEnvInt(
                "--horizon", v->c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (auto v = valueOf(a, "--seed"))
            o.seed = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--cores"))
            o.cores = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--slices"))
            o.slices = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--channels"))
            o.channels = std::strtoul(v->c_str(), nullptr, 10);
        else if (auto v = valueOf(a, "--default-cores"))
            o.defaultCores = static_cast<std::uint32_t>(parseEnvInt(
                "--default-cores", v->c_str(), 1, 1'000'000));
        else if (auto v = valueOf(a, "--budget-scale"))
            o.budgetScale = parseDouble("--budget-scale", *v);
        else if (auto v = valueOf(a, "--job-log"))
            o.jobLogFile = *v;
        else if (auto v = valueOf(a, "--job-log-dir"))
            o.jobLogDir = *v;
        else if (auto v = valueOf(a, "--csv"))
            o.csvFile = *v;
        else if (auto v = valueOf(a, "--jobs"))
            o.workers = static_cast<std::size_t>(
                parseEnvInt("--jobs", v->c_str(), 1, 4096));
        else if (auto v = valueOf(a, "--budget"))
            o.budget = static_cast<Cycle>(parseEnvInt(
                "--budget", v->c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (std::strcmp(a, "--equivalence-check") == 0)
            o.equivalenceCheck = true;
        else if (auto v = valueOf(a, "--app"))
            o.eqApp = *v;
        else if (auto v = valueOf(a, "--cycles"))
            o.eqCycles = static_cast<Cycle>(parseEnvInt(
                "--cycles", v->c_str(), 1,
                std::numeric_limits<std::int64_t>::max()));
        else if (std::strcmp(a, "--help") == 0 ||
                 std::strcmp(a, "-h") == 0)
            o.help = true;
        else
            fatal("unknown option '%s' (--help lists them)", a);
    }
    return o;
}

void
printHelp()
{
    std::printf(
        "dcl1serve — multi-tenant serving: open-loop job traffic, "
        "tail latency\n"
        "\n"
        "  --apps=X          mix .json file or comma list of catalog "
        "apps\n"
        "  --arrivals=FILE   trace-driven arrivals JSONL (disables "
        "--lambda)\n"
        "  --lambda=R[,R..]  offered load, jobs per 1000 cycles\n"
        "  --policy=P[,P..]  fcfs | sjf | rr\n"
        "  --design=D[,D..]  design presets (dcl1run --list-designs)\n"
        "  --num-jobs=N --horizon=N --seed=N      traffic shape\n"
        "  --cores=N --slices=N --channels=N      platform scaling\n"
        "  --default-cores=N --budget-scale=X     job sizing\n"
        "  --job-log=FILE    per-job JSONL (single cell only)\n"
        "  --job-log-dir=DIR per-job JSONL per cell\n"
        "  --csv=FILE        summary CSV, one row per cell (atomic)\n"
        "  --jobs=N          worker threads\n"
        "  --budget=N        per-cell simulated-cycle watchdog\n"
        "  --equivalence-check  single-job serve == classic single-app\n"
        "                    (--app=NAME --design=NAME --cycles=N "
        "--seed=N)\n"
        "\n"
        "%s\n",
        exec::kExitCodeContract);
}

/** One (design, policy, lambda) point of the sweep. */
struct Cell
{
    std::string design;
    serve::Policy policy = serve::Policy::Fcfs;
    double lambda = 0.0;
    serve::ServeSummary summary;
};

std::string
csvRow(const Cell &c, std::uint64_t seed)
{
    const serve::ServeSummary &s = c.summary;
    std::string row;
    row += c.design;
    row += ',';
    row += serve::policyName(c.policy);
    row += ',';
    row += stats::formatDouble(c.lambda);
    row += ',';
    row += std::to_string(seed);
    row += ',';
    row += std::to_string(s.offered);
    row += ',';
    row += std::to_string(s.started);
    row += ',';
    row += std::to_string(s.completed);
    row += ',';
    row += std::to_string(s.censored);
    row += ',';
    row += std::to_string(s.endCycle);
    row += ',';
    row += stats::formatDouble(s.offeredPerKcycle);
    row += ',';
    row += stats::formatDouble(s.completedPerKcycle);
    row += ',';
    row += stats::formatDouble(s.meanLatency);
    row += ',';
    row += stats::formatDouble(s.p50Latency);
    row += ',';
    row += stats::formatDouble(s.p95Latency);
    row += ',';
    row += stats::formatDouble(s.p99Latency);
    row += ',';
    row += stats::formatDouble(s.meanQueueDelay);
    row += ',';
    row += stats::formatDouble(s.jainFairness);
    row += ',';
    row += stats::formatDouble(s.machine.ipc);
    row += ',';
    row += stats::formatDouble(s.machine.l1MissRate);
    return row;
}

std::string
jobLogPathFor(const std::string &dir, const Cell &c)
{
    std::string lam = stats::formatDouble(c.lambda);
    for (char &ch : lam)
        if (ch == '.')
            ch = 'p';
    return dir + "/" + c.design + "_" + serve::policyName(c.policy) +
           "_" + lam + ".jsonl";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);

    if (o.help) {
        printHelp();
        return exec::kExitOk;
    }

    core::SystemConfig sys =
        core::SystemConfig::scaled(o.cores, o.slices, o.channels);
    sys.seed = o.seed;

    if (o.equivalenceCheck) {
        const std::vector<std::string> designs = splitCsv(o.designs);
        bool all_ok = true;
        for (const std::string &dname : designs) {
            const core::DesignConfig design = core::designByName(dname);
            const serve::EquivalenceReport rep =
                serve::checkSingleJobEquivalence(sys, design, o.eqApp,
                                                 o.eqCycles);
            std::printf("%-18s %-14s classic %016llx serve %016llx  %s\n",
                        dname.c_str(), o.eqApp.c_str(),
                        static_cast<unsigned long long>(rep.classicDigest),
                        static_cast<unsigned long long>(rep.serveDigest),
                        rep.match ? "MATCH" : "MISMATCH");
            all_ok = all_ok && rep.match;
        }
        return all_ok ? exec::kExitOk : exec::kExitRunFailed;
    }

    // Job mix: a .json mix file or a comma list of catalog apps.
    const bool mixIsFile =
        o.apps.size() > 5 &&
        o.apps.compare(o.apps.size() - 5, 5, ".json") == 0;
    const serve::JobMix mix = mixIsFile ? serve::loadMixFile(o.apps)
                                        : serve::mixFromAppList(o.apps);

    std::vector<serve::TraceJob> trace;
    if (!o.arrivalsFile.empty())
        trace = serve::loadJobTrace(o.arrivalsFile);

    const std::vector<std::string> designs = splitCsv(o.designs);
    const std::vector<std::string> policies = splitCsv(o.policies);
    std::vector<double> lambdas;
    if (trace.empty())
        for (const std::string &l : splitCsv(o.lambdas))
            lambdas.push_back(parseDouble("--lambda", l));
    else
        lambdas.push_back(0.0); // trace-driven: one load point
    if (designs.empty() || policies.empty() || lambdas.empty())
        fatal("need at least one design, policy, and lambda");

    std::vector<Cell> cells;
    for (const std::string &d : designs)
        for (const std::string &p : policies)
            for (const double l : lambdas) {
                Cell c;
                c.design = d;
                c.policy = serve::policyByName(p);
                c.lambda = l;
                cells.push_back(std::move(c));
            }

    if (!o.jobLogFile.empty() && cells.size() > 1)
        fatal("--job-log needs a single cell (%zu configured); "
              "use --job-log-dir",
              cells.size());

    exec::ExecOptions eopts;
    eopts.jobs = o.workers;
    eopts.cycleBudget = o.budget;
    eopts.maxRetries = 0;
    exec::JobRunner runner(eopts);
    std::vector<exec::JobSpec> specs(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        Cell &cell = cells[i];
        specs[i].label = cell.design + "/" +
                         serve::policyName(cell.policy) + "/" +
                         stats::formatDouble(cell.lambda);
        specs[i].fn = [&, i](exec::JobContext &ctx) {
            Cell &me = cells[i];
            const core::DesignConfig design =
                core::designByName(me.design);
            serve::ServeOptions sopts;
            sopts.policy = me.policy;
            sopts.lambdaJobsPerKcycle =
                me.lambda > 0.0 ? me.lambda : 1.0;
            sopts.numJobs = o.numJobs;
            sopts.horizon = o.horizon;
            sopts.seed = o.seed;
            sopts.budgetScale = o.budgetScale;
            sopts.defaultCores = o.defaultCores;
            sopts.trace = trace;
            serve::ServeSim sim(sys, design, mix, sopts);
            std::unique_ptr<exec::AppendLog> log;
            std::string path = o.jobLogFile;
            if (path.empty() && !o.jobLogDir.empty())
                path = jobLogPathFor(o.jobLogDir, me);
            if (!path.empty()) {
                log = std::make_unique<exec::AppendLog>(path);
                exec::AppendLog *raw = log.get();
                sim.setJobLogSink([raw](const std::string &line) {
                    raw->appendLine(line);
                });
            }
            core::GpuSystem::CycleHeartbeat heartbeat;
            if (ctx.cycleBudget() != 0)
                heartbeat = [&ctx](Cycle now) {
                    ctx.checkCycleBudget(now);
                };
            me.summary = sim.run(heartbeat);
            return me.summary.machine;
        };
    }
    const std::vector<exec::JobResult> results = runner.run(specs);

    bool failed = false;
    for (const exec::JobResult &r : results) {
        if (r.ok)
            continue;
        failed = true;
        std::fprintf(stderr, "dcl1serve: cell %s failed (%s): %s\n",
                     r.label.c_str(), exec::failureKindName(r.kind),
                     r.error.c_str());
    }

    std::printf("platform   %s\n", sys.summary().c_str());
    std::printf("mix        %s (%zu entr%s)%s\n", o.apps.c_str(),
                mix.entries.size(),
                mix.entries.size() == 1 ? "y" : "ies",
                trace.empty() ? "" : " [trace-driven arrivals]");
    std::printf("%-18s %-5s %7s %6s %6s %5s %9s %9s %9s %7s %6s\n",
                "design", "pol", "lambda", "jobs", "done", "cens",
                "p50", "p95", "p99", "goodput", "jain");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!results[i].ok) {
            std::printf("%-18s %-5s %7s  FAILED\n",
                        cells[i].design.c_str(),
                        serve::policyName(cells[i].policy),
                        stats::formatDouble(cells[i].lambda).c_str());
            continue;
        }
        const serve::ServeSummary &s = cells[i].summary;
        std::printf(
            "%-18s %-5s %7s %6zu %6zu %5zu %9.0f %9.0f %9.0f %7.3f "
            "%6.3f\n",
            cells[i].design.c_str(), serve::policyName(cells[i].policy),
            stats::formatDouble(cells[i].lambda).c_str(), s.offered,
            s.completed, s.censored, s.p50Latency, s.p95Latency,
            s.p99Latency, s.completedPerKcycle, s.jainFairness);
    }

    if (!o.csvFile.empty()) {
        exec::AtomicFileWriter out(o.csvFile);
        out.stream() << "design,policy,lambda,seed,offered,started,"
                        "completed,censored,end_cycle,"
                        "offered_per_kcycle,goodput_per_kcycle,"
                        "mean_latency,p50_latency,p95_latency,"
                        "p99_latency,mean_queue_delay,jain_fairness,"
                        "ipc,l1_missrate\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!results[i].ok)
                continue;
            out.stream() << csvRow(cells[i], o.seed) << "\n";
        }
        out.commit();
        inform("summary CSV written to %s", o.csvFile.c_str());
    }

    double total_ms = 0.0;
    for (const exec::JobResult &r : results)
        total_ms += r.wallMs;
    std::fprintf(stderr, "host time  %.1f ms over %zu cells\n",
                 total_ms, cells.size());

    return failed ? exec::kExitRunFailed : exec::kExitOk;
}
