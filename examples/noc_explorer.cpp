/**
 * @file
 * Standalone NoC model exploration: area, static power, maximum
 * frequency and per-flit energy for arbitrary crossbar geometries —
 * the DSENT-like model without any simulation.
 *
 * Usage: noc_explorer [inputs outputs]
 */

#include <cstdio>
#include <cstdlib>

#include "core/design.hh"
#include "power/xbar_model.hh"

using namespace dcl1;
using namespace dcl1::core;
using namespace dcl1::power;

int
main(int argc, char **argv)
{
    XbarModel model;

    if (argc == 3) {
        const std::uint32_t in = std::atoi(argv[1]);
        const std::uint32_t out = std::atoi(argv[2]);
        XbarGeometry g{in, out, 1, 0.5, 12.3, 2};
        std::printf("%ux%u crossbar: area %.4f mm2, static %.4f W, "
                    "fmax %.2f GHz, %.2f pJ/flit\n",
                    in, out, model.area(g), model.staticPower(g),
                    model.maxFrequencyGHz(in, out),
                    model.flitEnergyPj(g));
        return 0;
    }

    SystemConfig sys;
    std::printf("NoC cost of every design (normalized to baseline):\n");
    std::printf("%-16s %8s %8s %10s\n", "design", "area", "static",
                "minFmax");
    const NocCost base =
        model.cost(crossbarInventory(baselineDesign(), sys));
    for (const auto &d :
         {baselineDesign(), privateDcl1(80), privateDcl1(40),
          privateDcl1(20), privateDcl1(10), sharedDcl1(40),
          clusteredDcl1(40, 5), clusteredDcl1(40, 10),
          clusteredDcl1(40, 20), cdxbarDesign(false, false)}) {
        const auto inv = crossbarInventory(d, sys);
        const NocCost c = model.cost(inv);
        double fmin = 1e9;
        for (const auto &g : inv) {
            const double f =
                model.maxFrequencyGHz(g.numInputs, g.numOutputs);
            fmin = f < fmin ? f : fmin;
        }
        std::printf("%-16s %8.2f %8.2f %8.2fGHz\n", d.name.c_str(),
                    c.areaMm2 / base.areaMm2,
                    c.staticPowerW / base.staticPowerW, fmin);
    }
    return 0;
}
