/** @file Scratch probe: dump detailed RunMetrics for one app/design. */

#include <cstdio>

#include "core/experiment.hh"
#include "core/gpu_system.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "T-AlexNet";
    const std::string design_name = argc > 2 ? argv[2] : "all";
    const workload::AppInfo &app = workload::appByName(app_name);

    core::SystemConfig sys;
    const auto opts = core::ExperimentOptions::fromEnv();

    std::vector<core::DesignConfig> designs = {
        core::baselineDesign(),       core::privateDcl1(80),
        core::privateDcl1(40),        core::sharedDcl1(40),
        core::clusteredDcl1(40, 10),  core::clusteredDcl1(40, 10, true),
    };

    std::printf("%-16s %7s %6s %6s %6s %7s %7s %9s %9s %9s %8s %8s\n",
                "design", "IPC", "l1mr", "repl", "l2mr", "lat",
                "preLat", "l1acc", "noc1Fl", "noc2Fl", "dramR", "dramW");
    for (const auto &d : designs) {
        if (design_name != "all" && d.name != design_name)
            continue;
        core::GpuSystem gpu(sys, d, app.params);
        gpu.run(opts.measureCycles, opts.warmupCycles);
        auto rm = gpu.metrics();
        double pre_sum = 0, pre_n = 0;
        for (auto &c : gpu.cores()) {
            pre_sum += c->avgPreServiceLatency() * c->readsCompleted();
            pre_n += c->readsCompleted();
        }
        const double pre = pre_n ? pre_sum / pre_n : 0;
        std::uint64_t blocked = 0, merges = 0, lsu_stalls = 0;
        auto bank_stats = [&](mem::CacheBank &b) {
            blocked += b.blockedEvents();
            merges += b.mshrMerges();
        };
        for (auto &c : gpu.cores()) {
            if (c->l1())
                bank_stats(*c->l1());
            if (auto *sc = c->statGroup().findScalar("lsu_stalls"))
                lsu_stalls += sc->value();
        }
        for (auto &n : gpu.nodes())
            bank_stats(n->cache());
        std::printf("   blocked=%llu merges=%llu lsuStalls=%llu\n",
                    (unsigned long long)blocked,
                    (unsigned long long)merges,
                    (unsigned long long)lsu_stalls);
        const double l2mr =
            rm.l2Accesses ? double(rm.l2Misses) / rm.l2Accesses : 0;
        std::printf(
            "%-16s %7.3f %6.3f %6.3f %6.3f %7.1f %7.3f %9llu %9llu "
            "%9llu %8llu %8llu\n",
            d.name.c_str(), rm.ipc, rm.l1MissRate, rm.replicationRatio,
            l2mr, rm.avgReadLatency, pre,
            (unsigned long long)rm.l1Accesses,
            (unsigned long long)rm.noc1Flits,
            (unsigned long long)rm.noc2Flits,
            (unsigned long long)rm.dramReads,
            (unsigned long long)rm.dramWrites);
    }
    return 0;
}
