/**
 * @file
 * Quickstart: build the baseline GPU and the paper's final design
 * (Sh40+C10+Boost), run one application on both, and print the
 * headline metrics.
 *
 * Usage: quickstart [app-name] (default T-AlexNet)
 */

#include <cstdio>

#include "core/experiment.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "T-AlexNet";
    const workload::AppInfo &app = workload::appByName(app_name);

    core::SystemConfig sys;
    const auto opts = core::ExperimentOptions::fromEnv();

    std::printf("dcl1sim quickstart: %s on [%s]\n", app_name.c_str(),
                sys.summary().c_str());
    std::printf("%-18s %8s %8s %8s %8s %8s\n", "design", "IPC",
                "missrate", "repl", "portutil", "lat");

    for (const core::DesignConfig &design :
         {core::baselineDesign(),
          core::clusteredDcl1(40, 10, /*boost=*/true)}) {
        const core::RunMetrics rm =
            core::runOnce(sys, design, app.params, opts);
        std::printf("%-18s %8.3f %8.3f %8.3f %8.3f %8.1f\n",
                    design.name.c_str(), rm.ipc, rm.l1MissRate,
                    rm.replicationRatio, rm.maxL1PortUtil,
                    rm.avgReadLatency);
    }
    return 0;
}
