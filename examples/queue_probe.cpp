/** @file Scratch probe: dump steady-state queue occupancies. */

#include <cstdio>

#include "core/experiment.hh"
#include "core/gpu_system.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "T-AlexNet";
    const std::string design_name = argc > 2 ? argv[2] : "Sh40";
    const workload::AppInfo &app = workload::appByName(app_name);
    core::SystemConfig sys;

    std::vector<core::DesignConfig> designs = {
        core::baselineDesign(),      core::privateDcl1(80),
        core::privateDcl1(40),       core::sharedDcl1(40),
        core::clusteredDcl1(40, 10), core::clusteredDcl1(40, 10, true),
    };
    for (const auto &d : designs) {
        if (d.name != design_name)
            continue;
        core::GpuSystem gpu(sys, d, app.params);
        gpu.run(12000, 0);
        // Aggregate queue occupancy snapshot.
        double lsu = 0, outb = 0, ready = 0, outst = 0;
        for (auto &c : gpu.cores()) {
            lsu += c->lsuSize();
            outb += c->outboundSize();
            ready += c->readyWarpCount();
            outst += c->outstandingReads();
        }
        std::printf("cores: lsu=%.1f outb=%.1f readyW=%.1f outstR=%.1f\n",
                    lsu / 80, outb / 80, ready / 80, outst / 80);
        if (!gpu.nodes().empty()) {
            double q1 = 0, q2 = 0, q3 = 0, q4 = 0, comp = 0, mshr = 0,
                   ds = 0;
            for (auto &n : gpu.nodes()) {
                q1 += n->q1Size();
                q2 += n->q2Size();
                q3 += n->q3Size();
                q4 += n->q4Size();
                comp += n->cache().completedBacklog();
                mshr += n->cache().mshrInUse();
                ds += n->cache().downstreamSize();
            }
            const double nn = double(gpu.nodes().size());
            std::printf("nodes: q1=%.2f q2=%.2f q3=%.2f q4=%.2f "
                        "compBk=%.2f mshr=%.2f ds=%.2f\n",
                        q1 / nn, q2 / nn, q3 / nn, q4 / nn, comp / nn,
                        mshr / nn, ds / nn);
        } else {
            double comp = 0, mshr = 0, ds = 0;
            for (auto &c : gpu.cores()) {
                comp += c->l1()->completedBacklog();
                mshr += c->l1()->mshrInUse();
                ds += c->l1()->downstreamSize();
            }
            std::printf("l1s: compBk=%.2f mshr=%.2f ds=%.2f\n",
                        comp / 80, mshr / 80, ds / 80);
        }
        // NoC#1 request crossbar internals (DC-L1 designs).
        if (!gpu.nodes().empty()) {
            // Access crossbars indirectly via metrics; dump via cores'
            // injection view instead: count how often canInject fails.
        }
        for (auto &x : gpu.noc1ReqXbars()) {
            double occ = 0, outq = 0;
            for (uint32_t i = 0; i < x->params().numInputs; ++i)
                occ += x->inputOccupancy(i);
            for (uint32_t o = 0; o < x->params().numOutputs; ++o)
                outq += x->outQueueSize(o);
            std::printf("noc1req: nocCyc=%llu pkts=%llu occ/in=%.2f "
                        "outq/out=%.2f lat=%.1f thru=%.3f pkt/noccyc\n",
                        (unsigned long long)x->nocCycles(),
                        (unsigned long long)x->packetsDelivered(),
                        occ / x->params().numInputs,
                        outq / x->params().numOutputs,
                        x->avgPacketLatency(),
                        double(x->packetsDelivered()) / x->nocCycles());
            std::printf("  alloc: busy=%llu outqFull=%llu noReq=%llu "
                        "noFreeIn=%llu grants=%llu accepts=%llu\n",
                        (unsigned long long)x->dbgOutBusy,
                        (unsigned long long)x->dbgOutQFull,
                        (unsigned long long)x->dbgNoRequest,
                        (unsigned long long)x->dbgNoFreeInput,
                        (unsigned long long)x->dbgGrants,
                        (unsigned long long)x->dbgAccepts);
            auto st = x->dbgVoqState();
            std::printf("  voq: pkts=%llu occSum=%llu nonemptyVoq=%llu "
                        "bitsSet=%llu\n",
                        (unsigned long long)st[0],
                        (unsigned long long)st[1],
                        (unsigned long long)st[2],
                        (unsigned long long)st[3]);
        }
        if (!gpu.nodes().empty()) {
            std::printf("per-node q1/compBk/mshr/acc: ");
            for (size_t i = 0; i < gpu.nodes().size(); ++i) {
                auto &n = gpu.nodes()[i];
                std::printf("%zu:%zu/%zu/%zu/%llu ", i, n->q1Size(),
                            n->cache().completedBacklog(),
                            n->cache().mshrInUse(),
                            (unsigned long long)n->cache().accesses());
                if (i % 8 == 7)
                    std::printf("\n  ");
            }
            std::printf("\n");
        }
        if (!gpu.nodes().empty()) {
            std::uint64_t bw = 0, bm = 0, br = 0, bt = 0;
            for (auto &n : gpu.nodes()) {
                bw += n->cache().dbgBlockedWriteDs;
                bm += n->cache().dbgBlockedMshrFull;
                br += n->cache().dbgBlockedReadDs;
                bt += n->cache().dbgBlockedTargets;
            }
            std::printf("node blocked reasons: writeDs=%llu mshrFull=%llu "
                        "readDs=%llu targets=%llu\n",
                        (unsigned long long)bw, (unsigned long long)bm,
                        (unsigned long long)br, (unsigned long long)bt);
        }
        auto xdump = [](const char *tag,
                        std::vector<std::unique_ptr<noc::Crossbar>> &xs) {
            for (auto &x : xs) {
                double occ = 0;
                for (uint32_t i = 0; i < x->params().numInputs; ++i)
                    occ += x->inputOccupancy(i);
                std::printf("%s[%s]: thru=%.3f/noccyc lat=%.1f occ/in=%.2f"
                            " outqFull=%llu noReq=%llu\n",
                            tag, x->params().name.c_str(),
                            double(x->packetsDelivered()) /
                                std::max<uint64_t>(1, x->nocCycles()),
                            x->avgPacketLatency(), occ /
                                x->params().numInputs,
                            (unsigned long long)x->dbgOutQFull,
                            (unsigned long long)x->dbgNoRequest);
            }
        };
        std::uint64_t nf = 0, nfill = 0, lf = 0, lfill = 0;
        for (auto &n : gpu.nodes()) {
            nf += n->cache().dbgFetchesSent;
            nfill += n->cache().dbgFillsReceived;
        }
        for (auto &sl : gpu.slices()) {
            lf += sl->bank().dbgFetchesSent;
            lfill += sl->bank().dbgFillsReceived;
        }
        std::printf("node fetches=%llu fills=%llu | l2 fetches=%llu "
                    "fills=%llu\n",
                    (unsigned long long)nf, (unsigned long long)nfill,
                    (unsigned long long)lf, (unsigned long long)lfill);
        std::printf("hops: nodeToMem=%llu memEject=%llu l2Replies=%llu "
                    "nodeFromMem=%llu\n",
                    (unsigned long long)gpu.dbgNodeToMem,
                    (unsigned long long)gpu.dbgMemEject,
                    (unsigned long long)gpu.dbgL2Replies,
                    (unsigned long long)gpu.dbgNodeFromMem);
        {
            double q = 0, insvc = 0, busy = 0;
            std::uint64_t rh = 0, rmiss = 0;
            for (auto &ch : gpu.channels()) {
                q += ch->queueSize();
                insvc += ch->inServiceSize();
                busy += ch->busyBanks(gpu.cycle());
                rh += ch->rowHits();
                rmiss += ch->rowMisses();
            }
            std::printf("dram: q=%.1f insvc=%.1f busyBanks=%.1f "
                        "rowHit=%llu rowMiss=%llu\n",
                        q / 16, insvc / 16, busy / 16,
                        (unsigned long long)rh,
                        (unsigned long long)rmiss);
        }
        xdump("n1rep", gpu.noc1ReplyXbars());
        xdump("n2req", gpu.noc2ReqXbars());
        xdump("n2rep", gpu.noc2ReplyXbars());
        double sin = 0, srep = 0;
        for (auto &s : gpu.slices()) {
            sin += s->bank().mshrInUse();
            srep += s->bank().completedBacklog();
        }
        std::printf("l2: mshr=%.2f compBk=%.2f\n", sin / 32, srep / 32);
        {
            std::uint64_t bw = 0, bm = 0, br = 0, bt = 0, wb = 0, ds = 0;
            for (auto &sl : gpu.slices()) {
                bw += sl->bank().dbgBlockedWriteDs;
                bm += sl->bank().dbgBlockedMshrFull;
                br += sl->bank().dbgBlockedReadDs;
                bt += sl->bank().dbgBlockedTargets;
                wb += sl->bank().writebacks();
                ds += sl->bank().downstreamSize();
            }
            std::printf("l2 blocked: writeDs=%llu mshrFull=%llu readDs=%llu"
                        " targets=%llu | wbs=%llu dsSize=%llu\n",
                        (unsigned long long)bw, (unsigned long long)bm,
                        (unsigned long long)br, (unsigned long long)bt,
                        (unsigned long long)wb, (unsigned long long)ds);
        }
    }
    return 0;
}
