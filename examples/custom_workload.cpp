/**
 * @file
 * Define a custom synthetic workload through the public API and
 * evaluate whether it would benefit from the paper's DC-L1 designs.
 *
 * The example models a hypothetical embedding-table lookup kernel:
 * every core reads a shared table a few times larger than one L1, with
 * a small hot set and moderate arithmetic intensity — then prints a
 * recommendation based on the measured replication profile.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "workload/workload.hh"

using namespace dcl1;

int
main()
{
    // 1. Describe the kernel's memory behaviour.
    workload::WorkloadParams app;
    app.name = "embedding-lookup";
    app.suite = "custom";
    app.warpsPerCore = 32;
    app.memRatio = 0.4;          // 40 % of instructions access memory
    app.sharedLines = 1200;      // 150 KB shared embedding table
    app.sharedFrac = 0.9;        // most accesses hit the table
    app.sharedPattern = workload::Pattern::HotCold;
    app.hotLines = 64;           // popular embeddings
    app.hotProb = 0.3;
    app.privateLines = 2048;     // per-core activation buffers
    app.coalescedAccesses = 2;   // semi-coalesced gathers
    app.writeFrac = 0.02;

    core::SystemConfig sys;
    const auto opts = core::ExperimentOptions::fromEnv();

    // 2. Profile it on the conventional GPU.
    const auto base =
        core::runOnce(sys, core::baselineDesign(), app, opts);
    std::printf("baseline profile of '%s':\n", app.name.c_str());
    std::printf("  IPC %.2f, L1 miss rate %.1f%%, replication ratio "
                "%.1f%%, avg replicas %.1f\n",
                base.ipc, 100 * base.l1MissRate,
                100 * base.replicationRatio, base.avgReplicas);

    const bool candidate =
        base.replicationRatio > 0.25 && base.l1MissRate > 0.5;
    std::printf("  -> %s by the paper's replication-sensitivity "
                "criteria\n\n",
                candidate ? "replication-sensitive"
                          : "not replication-sensitive");

    // 3. Evaluate the paper's designs.
    std::printf("%-18s %8s %9s %9s\n", "design", "speedup", "missrate",
                "replicas");
    for (const auto &d :
         {core::privateDcl1(40), core::sharedDcl1(40),
          core::clusteredDcl1(40, 10),
          core::clusteredDcl1(40, 10, /*boost=*/true)}) {
        const auto rm = core::runOnce(sys, d, app, opts);
        std::printf("%-18s %7.2fx %9.3f %9.2f\n", d.name.c_str(),
                    rm.ipc / base.ipc, rm.l1MissRate, rm.avgReplicas);
    }
    return 0;
}
