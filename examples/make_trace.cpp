/**
 * @file
 * Generate a demo trace file and replay it through the simulator —
 * the end-to-end workflow for users who want to drive dcl1sim with
 * traces of real applications instead of the synthetic catalog.
 *
 * The demo kernel is a tiled matrix multiply sketch: every core's
 * warps stream their private C-tile while re-reading a shared B-tile
 * (the replication pattern the DC-L1 designs target).
 *
 * Usage: make_trace [out.trace]
 */

#include <cstdio>
#include <fstream>

#include "common/log.hh"
#include "core/experiment.hh"
#include "core/gpu_system.hh"
#include "workload/trace_file.hh"

using namespace dcl1;

namespace
{

void
emitTrace(const std::string &path, std::uint32_t cores,
          std::uint32_t warps)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());

    out << "# demo tiled-GEMM trace: shared B tile + private C tiles\n";
    const Addr b_tile = 0x0;             // shared across all cores
    const std::uint64_t b_lines = 512;   // 64 KB shared tile
    const Addr c_base = 0x4000000;       // private per core

    for (std::uint32_t c = 0; c < cores; ++c) {
        for (std::uint32_t w = 0; w < warps; ++w) {
            for (int step = 0; step < 64; ++step) {
                // Two coalesced loads of the shared tile...
                const Addr b0 =
                    b_tile + ((c * 37 + w * 11 + step) % b_lines) * 128;
                out << c << ' ' << w << " R " << std::hex << b0
                    << std::dec << " 32 +\n";
                out << c << ' ' << w << " R " << std::hex << (b0 + 128)
                    << std::dec << " 32\n";
                // ...some arithmetic...
                out << c << ' ' << w << " X 3\n";
                // ...and a private accumulator store every few steps.
                if (step % 4 == 3) {
                    const Addr c0 = c_base + c * 0x10000 +
                                    (w * 64 + step) * 128;
                    out << c << ' ' << w << " W " << std::hex << c0
                        << std::dec << " 32\n";
                }
            }
        }
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : "demo_gemm.trace";
    core::SystemConfig sys;
    emitTrace(path, sys.numCores, 8);
    std::printf("wrote %s\n", path.c_str());

    const auto opts = core::ExperimentOptions::fromEnv();
    std::printf("%-18s %8s %9s %9s\n", "design", "IPC", "missrate",
                "replratio");
    for (const auto &d :
         {core::baselineDesign(), core::clusteredDcl1(40, 10, true)}) {
        workload::WorkloadParams shell;
        shell.name = path;
        core::GpuSystem gpu(
            sys, d, shell,
            std::make_unique<workload::TraceFileSource>(path,
                                                        sys.numCores));
        gpu.run(opts.measureCycles, opts.warmupCycles);
        const auto rm = gpu.metrics();
        std::printf("%-18s %8.2f %9.3f %9.3f\n", d.name.c_str(), rm.ipc,
                    rm.l1MissRate, rm.replicationRatio);
    }
    return 0;
}
