/**
 * @file
 * Calibration sweep: every app against the paper's Fig. 1 criteria
 * (replication ratio, miss rate, 16x-capacity speedup) and the design
 * speedups. Slow (28 apps x 7 runs); used during development.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

int
main(int argc, char **argv)
{
    core::SystemConfig sys;
    const auto opts = core::ExperimentOptions::fromEnv();
    const std::string only = argc > 1 ? argv[1] : "";

    std::printf("%-13s %s %6s %6s %7s | %6s %6s %6s %6s %6s\n", "app",
                "C", "repl", "l1mr", "16x", "Pr80", "Pr40", "Sh40",
                "C10", "Boost");
    for (const auto &app : workload::appCatalog()) {
        if (!only.empty() && app.params.name != only)
            continue;
        const auto base =
            core::runOnce(sys, core::baselineDesign(), app.params, opts);
        const auto big = core::runOnce(
            sys, core::withCapacityScale(core::baselineDesign(), 16.0),
            app.params, opts);
        double sp[5];
        const core::DesignConfig designs[5] = {
            core::privateDcl1(80), core::privateDcl1(40),
            core::sharedDcl1(40), core::clusteredDcl1(40, 10),
            core::clusteredDcl1(40, 10, true)};
        for (int i = 0; i < 5; ++i) {
            sp[i] = core::runOnce(sys, designs[i], app.params, opts).ipc /
                    base.ipc;
        }
        std::printf("%-13s %c %6.3f %6.3f %6.2fx | %6.2f %6.2f %6.2f "
                    "%6.2f %6.2f\n",
                    app.params.name.c_str(),
                    app.replicationSensitive ? 'S'
                    : app.poorUnderSh40      ? 'P'
                                             : '-',
                    base.replicationRatio, base.l1MissRate,
                    big.ipc / base.ipc, sp[0], sp[1], sp[2], sp[3],
                    sp[4]);
    }
    return 0;
}
