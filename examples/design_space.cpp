/**
 * @file
 * Design-space exploration: sweep DC-L1 node counts and cluster counts
 * for one application and report performance, miss rate, NoC area and
 * static power — the trade-off study at the heart of the paper.
 *
 * Usage: design_space [app-name] (default C-BFS)
 */

#include <cstdio>

#include "core/experiment.hh"
#include "power/xbar_model.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "C-BFS";
    const workload::AppInfo &app = workload::appByName(app_name);

    core::SystemConfig sys;
    const auto opts = core::ExperimentOptions::fromEnv();
    power::XbarModel noc_model;

    const auto base =
        core::runOnce(sys, core::baselineDesign(), app.params, opts);
    const auto base_cost = noc_model.cost(
        core::crossbarInventory(core::baselineDesign(), sys));

    std::printf("design space for %s (baseline IPC %.2f)\n",
                app_name.c_str(), base.ipc);
    std::printf("%-16s %8s %9s %8s %8s\n", "design", "speedup",
                "missrate", "nocArea", "nocPwr");

    std::vector<core::DesignConfig> designs;
    for (std::uint32_t y : {80u, 40u, 20u, 10u})
        designs.push_back(core::privateDcl1(y));
    for (std::uint32_t z : {1u, 5u, 10u, 20u})
        designs.push_back(core::clusteredDcl1(40, z));
    designs.push_back(core::clusteredDcl1(40, 10, /*boost=*/true));

    for (const auto &d : designs) {
        const auto rm = core::runOnce(sys, d, app.params, opts);
        const auto cost =
            noc_model.cost(core::crossbarInventory(d, sys));
        std::printf("%-16s %7.2fx %9.3f %8.2f %8.2f\n", d.name.c_str(),
                    rm.ipc / base.ipc, rm.l1MissRate,
                    cost.areaMm2 / base_cost.areaMm2,
                    cost.staticPowerW / base_cost.staticPowerW);
    }
    std::printf("\n(areas and power are normalized to the baseline "
                "80x32 NoC)\n");
    return 0;
}
