/**
 * @file
 * Figure 1 + Sec. II-A: per-application replication ratio, raw L1 miss
 * rate, IPC improvement under a 16x L1, and the replication-free
 * estimate (shared organization), sorted by replication ratio as in
 * the paper. Replication-sensitive apps are flagged with '*'.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 1 / Section II-A",
              "Replication ratio, L1 miss rate, 16x-capacity IPC, and "
              "the no-replication estimate per application");

    struct Row
    {
        std::string name;
        bool sensitive;
        double repl, mr, sp16, sp_norepl, mr_norepl;
    };
    std::vector<Row> rows;

    const auto big = core::withCapacityScale(core::baselineDesign(), 16.0);
    const auto shared = core::sharedDcl1(40);
    h.prefetch({big, shared}, h.apps());

    for (const auto &app : h.apps()) {
        const auto &base = h.baseline(app);
        Row r;
        r.name = app.params.name;
        r.sensitive = app.replicationSensitive;
        r.repl = base.replicationRatio;
        r.mr = base.l1MissRate;
        r.sp16 = h.speedup(big, app);
        r.sp_norepl = h.speedup(shared, app);
        r.mr_norepl = base.l1MissRate > 0.0
                          ? 1.0 - h.run(shared, app).l1MissRate /
                                      base.l1MissRate
                          : 0.0;
        rows.push_back(r);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.repl < b.repl; });

    header("per application (ascending replication ratio)");
    std::printf("%-14s %9s %8s %8s | %10s %10s\n", "app", "replratio",
                "L1 miss", "IPC@16x", "noreplIPC", "missredux");
    double s_sp = 0, s_mr = 0;
    int n_s = 0;
    for (const auto &r : rows) {
        std::printf("%-13s%c %9.3f %8.3f %7.2fx | %9.2fx %9.1f%%\n",
                    r.name.c_str(), r.sensitive ? '*' : ' ', r.repl,
                    r.mr, r.sp16, r.sp_norepl, 100.0 * r.mr_norepl);
        if (r.sensitive) {
            s_sp += r.sp_norepl;
            s_mr += r.mr_norepl;
            ++n_s;
        }
    }
    header("replication-sensitive summary (Sec. II-A)");
    std::printf("no-replication design: avg miss-rate reduction %.1f%% "
                "(paper: 89.5%%), avg IPC %.2fx (paper: 2.9x)\n",
                100.0 * s_mr / n_s, s_sp / n_s);
    std::printf("classification criteria (paper): repl>25%%, miss>50%%, "
                "16x speedup>5%%\n");
    return 0;
}
