/**
 * @file
 * Extension study (paper Sec. VIII-A closing claim): "our proposed
 * designs are expected to improve performance with larger DC-L1s or
 * boosted NoC resources." Sweeps DC-L1 capacity (1x/2x/4x the paper's
 * budget) and an additionally boosted NoC#2 on top of Sh40+C10+Boost,
 * for the replication-sensitive applications.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "common/log.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Extension: scaling DC-L1 capacity and NoC resources",
              "Paper Sec. VIII-A: bigger DC-L1s / faster NoCs should "
              "extend the benefit");

    const auto apps = h.apps(/*sensitive_only=*/true);

    {
        const auto boost = core::clusteredDcl1(40, 10, true);
        core::DesignConfig noc2 = boost;
        noc2.noc2ClockRatio = 1.0;
        noc2.name = "Sh40+C10+Boost+2xNoC2";
        h.prefetch({boost, core::withCapacityScale(boost, 2.0),
                    core::withCapacityScale(boost, 4.0), noc2},
                   apps);
    }

    header("DC-L1 capacity scaling on Sh40+C10+Boost (avg speedup)");
    columns("", {"1x", "2x", "4x"});
    std::vector<double> cap_avg;
    for (double scale : {1.0, 2.0, 4.0}) {
        core::DesignConfig d = core::clusteredDcl1(40, 10, true);
        if (scale != 1.0)
            d = core::withCapacityScale(d, scale);
        double sum = 0;
        for (const auto &app : apps)
            sum += h.speedup(d, app);
        cap_avg.push_back(sum / double(apps.size()));
    }
    row("speedup", cap_avg, "%8.2f");

    header("additionally boosting NoC#2 (avg speedup)");
    {
        core::DesignConfig d = core::clusteredDcl1(40, 10, true);
        d.noc2ClockRatio = 1.0;
        d.name = "Sh40+C10+Boost+2xNoC2";
        double base_sum = 0, sum = 0;
        for (const auto &app : apps) {
            base_sum += h.speedup(core::clusteredDcl1(40, 10, true), app);
            sum += h.speedup(d, app);
        }
        columns("", {"Boost", "+2xNoC2"});
        row("speedup",
            {base_sum / double(apps.size()), sum / double(apps.size())},
            "%8.2f");
        std::printf("(the paper keeps NoC#2 at 700 MHz because the "
                    "10x8 crossbars see little traffic; the headroom "
                    "above quantifies that choice)\n");
    }
    return 0;
}
