/**
 * @file
 * Figure 15: speedup S-curves — the per-application speedups of each
 * proposed design over baseline, sorted ascending.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 15", "Speedup S-curves across all applications");

    const std::vector<core::DesignConfig> designs = {
        core::privateDcl1(40), core::sharedDcl1(40),
        core::clusteredDcl1(40, 10), core::clusteredDcl1(40, 10, true)};
    h.prefetch(designs, h.apps());

    for (const auto &d : designs) {
        std::vector<std::pair<double, std::string>> sp;
        for (const auto &app : h.apps())
            sp.emplace_back(h.speedup(d, app), app.params.name);
        std::sort(sp.begin(), sp.end());

        header(d.name + " (ascending speedup)");
        double tail_min = sp.front().first;
        for (const auto &[v, name] : sp)
            std::printf("%-14s %7.2fx\n", name.c_str(), v);
        std::printf("tail (min) = %.2fx\n", tail_min);
    }
    std::printf("\npaper: Sh40+C10+Boost pushes the tail of the S-curve "
                "toward 1.0 while keeping the replication-sensitive "
                "head high\n");
    return 0;
}
