/**
 * @file
 * Figure 14: IPC of the four proposed designs (Pr40, Sh40, Sh40+C10,
 * Sh40+C10+Boost) on the replication-sensitive applications, plus the
 * replication-insensitive and overall averages, normalized to the
 * private-L1 baseline.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 14", "Overall IPC of the proposed designs");

    const std::vector<core::DesignConfig> designs = {
        core::privateDcl1(40), core::sharedDcl1(40),
        core::clusteredDcl1(40, 10), core::clusteredDcl1(40, 10, true)};
    h.prefetch(designs, h.apps());

    header("replication-sensitive apps, IPC normalized to baseline");
    columns("app", {"Pr40", "Sh40", "C10", "C10+Bst"});
    std::vector<double> s_sum(4, 0);
    const auto s_apps = h.apps(/*sensitive_only=*/true);
    for (const auto &app : s_apps) {
        std::vector<double> vals;
        for (std::size_t i = 0; i < designs.size(); ++i) {
            vals.push_back(h.speedup(designs[i], app));
            s_sum[i] += vals.back();
        }
        row(app.params.name, vals, "%8.2f");
    }
    std::vector<double> s_avg;
    for (double v : s_sum)
        s_avg.push_back(v / double(s_apps.size()));
    row("AVG(sens)", s_avg, "%8.2f");
    std::printf("paper: Pr40 1.15, Sh40 1.48, Sh40+C10 1.41, "
                "Sh40+C10+Boost 1.75 (up to 8x)\n");

    header("replication-insensitive and overall averages");
    const auto i_apps = h.apps(false, /*insensitive_only=*/true);
    std::vector<double> i_sum(4, 0);
    for (const auto &app : i_apps)
        for (std::size_t i = 0; i < designs.size(); ++i)
            i_sum[i] += h.speedup(designs[i], app);
    std::vector<double> i_avg, all_avg;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        i_avg.push_back(i_sum[i] / double(i_apps.size()));
        all_avg.push_back((s_sum[i] + i_sum[i]) /
                          double(s_apps.size() + i_apps.size()));
    }
    columns("", {"Pr40", "Sh40", "C10", "C10+Bst"});
    row("AVG(insens)", i_avg, "%8.2f");
    row("AVG(all)", all_avg, "%8.2f");
    std::printf("paper: insensitive 0.93 / 0.78 / 0.89 / >0.99; "
                "overall Sh40+C10+Boost 1.27\n");
    return 0;
}
