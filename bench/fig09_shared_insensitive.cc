/**
 * @file
 * Figure 9: Sh40 on the replication-insensitive applications. The five
 * "poor-performing" apps (C-NN, C-RAY, P-3MM, P-GEMM, P-2DCONV) are
 * flagged; R-SC is expected to improve (load balance).
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 9",
              "Sh40 on the replication-insensitive applications");

    const auto sh40 = core::sharedDcl1(40);
    h.prefetch({sh40}, h.apps(false, /*insensitive_only=*/true));
    struct Row
    {
        std::string name;
        bool poor;
        double sp;
    };
    std::vector<Row> rows;
    for (const auto &app : h.apps(false, /*insensitive_only=*/true))
        rows.push_back({app.params.name, app.poorUnderSh40,
                        h.speedup(sh40, app)});
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.sp < b.sp; });

    header("IPC normalized to baseline (ascending; ! = poor performer)");
    double worst = 1e9;
    for (const auto &r : rows) {
        std::printf("%-13s%c %8.2f\n", r.name.c_str(),
                    r.poor ? '!' : ' ', r.sp);
        if (r.poor)
            worst = std::min(worst, r.sp);
    }
    std::printf("\npaper: most apps ~1.0; R-SC above 1.0; five poor "
                "performers drop 40-85%% (worst here: %.0f%%)\n",
                100.0 * (1.0 - worst));
    return 0;
}
