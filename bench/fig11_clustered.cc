/**
 * @file
 * Figure 11: the clustered shared DC-L1 design under different cluster
 * counts (C1 = Sh40 ... C40 = Pr40) on the replication-sensitive apps:
 * (a) L1 miss rate and (b) IPC, normalized to baseline.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 11",
              "Cluster-count sweep (C1=Sh40 .. C40=Pr40), "
              "replication-sensitive apps");

    const std::vector<std::uint32_t> cluster_counts = {1, 5, 10, 20, 40};
    const auto apps = h.apps(/*sensitive_only=*/true);

    std::vector<core::DesignConfig> designs;
    for (const std::uint32_t c : cluster_counts)
        designs.push_back(core::clusteredDcl1(40, c));
    h.prefetch(designs, apps);

    header("(a) miss rate normalized to baseline");
    columns("app", {"C1", "C5", "C10", "C20", "C40"});
    std::vector<double> mr_sum(5, 0), ipc_sum(5, 0);
    for (const auto &app : apps) {
        std::vector<double> vals;
        for (std::size_t i = 0; i < cluster_counts.size(); ++i) {
            const auto d = core::clusteredDcl1(40, cluster_counts[i]);
            const double base_mr = h.baseline(app).l1MissRate;
            const double mr =
                base_mr > 0 ? h.run(d, app).l1MissRate / base_mr : 1.0;
            vals.push_back(mr);
            mr_sum[i] += mr;
            ipc_sum[i] += h.speedup(d, app);
        }
        row(app.params.name, vals, "%8.2f");
    }
    std::vector<double> mr_avg, ipc_avg;
    for (std::size_t i = 0; i < cluster_counts.size(); ++i) {
        mr_avg.push_back(mr_sum[i] / double(apps.size()));
        ipc_avg.push_back(ipc_sum[i] / double(apps.size()));
    }
    row("AVG", mr_avg, "%8.2f");
    std::printf("paper avg miss-rate reduction: C1 89%%, C5 72%%, C10 "
                "61%%, C20 41%%, C40 19%%\n");

    header("(b) IPC normalized to baseline");
    columns("app", {"C1", "C5", "C10", "C20", "C40"});
    for (const auto &app : apps) {
        std::vector<double> vals;
        for (std::uint32_t z : cluster_counts)
            vals.push_back(h.speedup(core::clusteredDcl1(40, z), app));
        row(app.params.name, vals, "%8.2f");
    }
    row("AVG", ipc_avg, "%8.2f");
    std::printf("paper avg IPC: C1 1.48, C10 1.41, C40 1.15\n");
    return 0;
}
