/**
 * @file
 * Figure 19:
 *  (a) hierarchical crossbar (CDXBar) variants vs. Sh40+C10+Boost,
 *      averaged over the replication-sensitive and -insensitive sets;
 *  (b) L1 access-latency sweep (0..64 cycles) for Sh40+C10+Boost,
 *      each point normalized to a baseline with the same L1 latency.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "common/log.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 19",
              "CDXBar comparison and L1 access-latency sensitivity");

    header("(a) CDXBar variants, IPC normalized to baseline (averages)");
    const std::vector<core::DesignConfig> designs = {
        core::cdxbarDesign(false, false), core::cdxbarDesign(true, false),
        core::cdxbarDesign(true, true), core::clusteredDcl1(40, 10, true)};
    {
        std::vector<core::DesignConfig> grid = designs;
        for (const std::int32_t lat : {0, 16, 28, 48, 64}) {
            grid.push_back(core::withL1Latency(core::baselineDesign(), lat));
            grid.push_back(core::withL1Latency(
                core::clusteredDcl1(40, 10, true), lat));
        }
        h.prefetch(grid, h.apps());
    }
    columns("", {"CDXBar", "+2xNoC1", "+2xNoC", "C10+Bst"});

    for (bool sensitive : {true, false}) {
        const auto apps = h.apps(sensitive, !sensitive);
        std::vector<double> avg;
        for (const auto &d : designs) {
            double sum = 0;
            for (const auto &app : apps)
                sum += h.speedup(d, app);
            avg.push_back(sum / double(apps.size()));
        }
        row(sensitive ? "sensitive" : "insensitive", avg, "%8.2f");
    }
    std::printf("paper: CDXBar 0.86/0.93, CDXBar+2xNoC1 ~CDXBar, "
                "CDXBar+2xNoC 1.29/1.05, Sh40+C10+Boost 1.75/0.99\n");

    header("(b) L1 access-latency sweep (normalized per-latency)");
    columns("latency", {"speedup(sens)", "speedup(ins)"});
    for (std::int32_t lat : {0, 16, 28, 48, 64}) {
        const auto base_l =
            core::withL1Latency(core::baselineDesign(), lat);
        const auto boost_l =
            core::withL1Latency(core::clusteredDcl1(40, 10, true), lat);
        double s_sum = 0, i_sum = 0;
        int s_n = 0, i_n = 0;
        for (const auto &app : h.apps()) {
            const double sp =
                h.run(boost_l, app).ipc / h.run(base_l, app).ipc;
            if (app.replicationSensitive) {
                s_sum += sp;
                ++s_n;
            } else {
                i_sum += sp;
                ++i_n;
            }
        }
        row(csprintf("%d cyc", lat),
            {s_n ? s_sum / s_n : 0.0, i_n ? i_sum / i_n : 0.0}, "%12.2f");
    }
    std::printf("paper: 1.66x for the sensitive apps even at zero "
                "latency; <1%% drop for the insensitive apps\n");
    return 0;
}
