/**
 * @file
 * Figure 8: the fully shared Sh40 design on the replication-sensitive
 * applications — (a) DC-L1 miss rate and (b) IPC, normalized to the
 * private-L1 baseline.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 8",
              "Sh40 on the replication-sensitive applications");

    const auto sh40 = core::sharedDcl1(40);
    h.prefetch({sh40}, h.apps(/*sensitive_only=*/true));
    header("(a) miss rate and (b) IPC, normalized to baseline");
    columns("app", {"missrate", "IPC"});

    double mr_sum = 0, ipc_sum = 0, mr_min = 1e9, mr_max = -1e9,
           ipc_max = 0;
    std::string ipc_max_app;
    const auto apps = h.apps(/*sensitive_only=*/true);
    for (const auto &app : apps) {
        const auto &base = h.baseline(app);
        const auto &sh = h.run(sh40, app);
        const double mr =
            base.l1MissRate > 0 ? sh.l1MissRate / base.l1MissRate : 1.0;
        const double sp = h.speedup(sh40, app);
        row(app.params.name, {mr, sp}, "%8.2f");
        mr_sum += 1.0 - mr;
        mr_min = std::min(mr_min, 1.0 - mr);
        mr_max = std::max(mr_max, 1.0 - mr);
        ipc_sum += sp;
        if (sp > ipc_max) {
            ipc_max = sp;
            ipc_max_app = app.params.name;
        }
    }
    const double n = double(apps.size());
    std::printf("\nmiss-rate reduction: avg %.0f%% (paper 89%%), min "
                "%.0f%% (paper 27%%), max %.0f%% (paper 99%%)\n",
                100 * mr_sum / n, 100 * mr_min, 100 * mr_max);
    std::printf("IPC: avg %.2fx (paper 1.48x), max %.2fx on %s (paper "
                "2.9x on T-AlexNet)\n",
                ipc_sum / n, ipc_max, ipc_max_app.c_str());
    return 0;
}
