/**
 * @file
 * Shared harness for the paper-reproduction benchmarks.
 *
 * Every bench binary reproduces one table or figure: it runs the
 * required (design, application) grid on the Table II platform and
 * prints the same rows/series the paper reports, normalized to the
 * private-L1 baseline.
 *
 * Environment:
 *   DCL1_CYCLES / DCL1_WARMUP - simulation length per run
 *   DCL1_CACHE=<file>         - optional cross-binary result cache
 *   DCL1_APPS=a,b,c           - restrict the app set (smoke runs)
 */

#ifndef DCL1_BENCH_BENCH_COMMON_HH
#define DCL1_BENCH_BENCH_COMMON_HH

#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "workload/app_catalog.hh"

namespace dcl1::bench
{

/** Shared bench state: platform, cycle budget, result cache. */
class Harness
{
  public:
    /**
     * @param title human title, e.g. "Figure 14"
     * @param what one-line description of what is reproduced
     */
    Harness(const std::string &title, const std::string &what);
    ~Harness();

    /** Run (or fetch from cache) one simulation. */
    const core::RunMetrics &run(const core::DesignConfig &design,
                                const workload::AppInfo &app);

    /** Baseline metrics for @p app (cached like any run). */
    const core::RunMetrics &
    baseline(const workload::AppInfo &app)
    {
        return run(core::baselineDesign(), app);
    }

    /** IPC speedup of @p design over baseline for @p app. */
    double speedup(const core::DesignConfig &design,
                   const workload::AppInfo &app);

    /** Apps honouring the DCL1_APPS filter. */
    std::vector<workload::AppInfo> apps(bool sensitive_only = false,
                                        bool insensitive_only = false);

    const core::SystemConfig &sys() const { return sys_; }
    const core::ExperimentOptions &opts() const { return opts_; }

  private:
    std::string cacheKey(const core::DesignConfig &design,
                         const std::string &app) const;
    void loadCache();
    void saveCache() const;

    core::SystemConfig sys_;
    core::ExperimentOptions opts_;
    std::string cacheFile_;
    std::map<std::string, core::RunMetrics> results_;
    bool cacheDirty_ = false;
};

/// @name Table formatting helpers
/// @{

/** Print a section header. */
void header(const std::string &title);

/** Print a row label followed by a series of values. */
void row(const std::string &label, const std::vector<double> &values,
         const char *fmt = "%8.3f");

/** Print a column-header row. */
void columns(const std::string &label,
             const std::vector<std::string> &names);

/// @}

} // namespace dcl1::bench

#endif // DCL1_BENCH_BENCH_COMMON_HH
