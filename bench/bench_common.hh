/**
 * @file
 * Shared harness for the paper-reproduction benchmarks.
 *
 * Every bench binary reproduces one table or figure: it runs the
 * required (design, application) grid on the Table II platform and
 * prints the same rows/series the paper reports, normalized to the
 * private-L1 baseline.
 *
 * Environment:
 *   DCL1_CYCLES / DCL1_WARMUP - simulation length per run
 *   DCL1_CACHE=<file>         - optional cross-binary result cache
 *   DCL1_APPS=a,b,c           - restrict the app set (smoke runs)
 *   DCL1_JOBS=N               - parallel workers for prefetch()
 *                               (default: one per hardware thread)
 *   DCL1_JOBS_LOG=<file>      - per-job JSONL timing records
 *   DCL1_TIMELINE=<dir>       - one cycle-interval timeline JSONL per
 *                               prefetched cell (see src/stats/)
 *   DCL1_TIMELINE_INTERVAL=N  - cycles per timeline row
 */

#ifndef DCL1_BENCH_BENCH_COMMON_HH
#define DCL1_BENCH_BENCH_COMMON_HH

#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "exec/job_set.hh"
#include "workload/app_catalog.hh"

namespace dcl1::bench
{

/** Shared bench state: platform, cycle budget, result cache. */
class Harness
{
  public:
    /**
     * @param title human title, e.g. "Figure 14"
     * @param what one-line description of what is reproduced
     */
    Harness(const std::string &title, const std::string &what);
    ~Harness();

    /**
     * Simulate every missing (design, app) cell of the grid — plus
     * each app's Baseline unless @p with_baseline is false — on the
     * parallel execution engine (DCL1_JOBS workers), filling the
     * result cache so the subsequent run()/speedup() calls that print
     * the table are pure lookups. Printed output is identical to the
     * serial harness: results are keyed, never ordered by completion.
     * A cell that fails in the prefetch is left uncached; the serial
     * run() that needs it will re-run it and surface the real error.
     */
    void prefetch(const std::vector<core::DesignConfig> &designs,
                  const std::vector<workload::AppInfo> &apps,
                  bool with_baseline = true);

    /** Run (or fetch from cache) one simulation. */
    const core::RunMetrics &run(const core::DesignConfig &design,
                                const workload::AppInfo &app);

    /** Baseline metrics for @p app (cached like any run). */
    const core::RunMetrics &
    baseline(const workload::AppInfo &app)
    {
        return run(core::baselineDesign(), app);
    }

    /** IPC speedup of @p design over baseline for @p app. */
    double speedup(const core::DesignConfig &design,
                   const workload::AppInfo &app);

    /** Apps honouring the DCL1_APPS filter. */
    std::vector<workload::AppInfo> apps(bool sensitive_only = false,
                                        bool insensitive_only = false);

    const core::SystemConfig &sys() const { return sys_; }
    const core::ExperimentOptions &opts() const { return opts_; }

  private:
    std::string cacheKey(const core::DesignConfig &design,
                         const std::string &app) const;
    void loadCache();
    void saveCache() const;

    core::SystemConfig sys_;
    core::ExperimentOptions opts_;
    std::string cacheFile_;
    std::map<std::string, core::RunMetrics> results_;
    bool cacheDirty_ = false;
};

/**
 * Run a prepared JobSet on the parallel engine (DCL1_JOBS workers,
 * optional DCL1_JOBS_LOG JSONL records) and return the per-job results
 * in job order. Benches whose grids fall outside the Harness cache
 * (custom platforms, modified SystemConfig fields) use this directly;
 * failed jobs are returned as-is with ok == false.
 */
std::vector<exec::JobResult> runJobSet(const exec::JobSet &set);

/**
 * Destination for a `BENCH_*.json` result file: @p filename placed
 * under DCL1_BENCH_DIR (created on demand) when set, else the working
 * directory. Every bench that emits a BENCH artifact must build its
 * path here and publish through exec::AtomicFileWriter — never a raw
 * path into the cwd — so CI can collect all artifacts from one
 * directory.
 */
std::string benchOutputPath(const std::string &filename);

/**
 * Machine fingerprint as one JSON object: CPU model (from
 * /proc/cpuinfo), hardware thread count, compiler version, and
 * whether DCL1_CHECK invariant checking is compiled in. Embedded in
 * perf artifacts so tools/perfdiff can warn when two BENCH_perf.json
 * files came from different machines or build flavors.
 */
std::string machineFingerprintJson();

/// @name Table formatting helpers
/// @{

/** Print a section header. */
void header(const std::string &title);

/** Print a row label followed by a series of values. */
void row(const std::string &label, const std::vector<double> &values,
         const char *fmt = "%8.3f");

/** Print a column-header row. */
void columns(const std::string &label,
             const std::vector<std::string> &names);

/// @}

} // namespace dcl1::bench

#endif // DCL1_BENCH_BENCH_COMMON_HH
